// Command gncg inspects and manipulates GNCG instances stored as JSON
// (see gncg.InstanceJSON): compute costs, check equilibrium tiers, find
// best responses, run dynamics, and compute optimum candidates.
//
// Usage:
//
//	gncg analyze   -in instance.json
//	gncg br        -in instance.json -agent 3 [-approx]
//	gncg dynamics  -in instance.json [-mover greedy|br|addonly] [-moves 10000] [-out result.json]
//	gncg opt       -in instance.json
//	gncg random    -kind points|tree|onetwo -n 12 -alpha 1.5 -seed 7 -out instance.json
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"gncg"
	"gncg/internal/gen"
	"gncg/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "br":
		err = cmdBR(os.Args[2:])
	case "dynamics":
		err = cmdDynamics(os.Args[2:])
	case "opt":
		err = cmdOpt(os.Args[2:])
	case "random":
		err = cmdRandom(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gncg:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gncg <analyze|br|dynamics|opt|random> [flags]
run "gncg <subcommand> -h" for flags`)
}

func loadInstance(path string) (*gncg.Game, gncg.Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, gncg.Profile{}, err
	}
	return gncg.UnmarshalInstance(data)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("in", "", "instance JSON path")
	exact := fs.Bool("exact", true, "run the exact Nash check (exponential; small n only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, p, err := loadInstance(*in)
	if err != nil {
		return err
	}
	s := gncg.NewState(g, p)
	fmt.Printf("agents: %d  alpha: %g  class: %s\n", g.N(), g.Alpha, gncg.ClassifyHost(g.Host, 1e-9))
	fmt.Printf("edges: %d  connected: %v\n", p.EdgeCount(), s.Connected())
	fmt.Printf("social cost: %s (edge %s + dist %s)\n",
		report.Format(s.SocialCost()), report.Format(s.TotalEdgeCost()), report.Format(s.TotalDistCost()))
	fmt.Printf("add-only equilibrium: %v\n", gncg.IsAddOnlyEquilibrium(s))
	fmt.Printf("greedy equilibrium:   %v (factor %s)\n", gncg.IsGreedyEquilibrium(s), report.Format(gncg.GreedyApproxFactor(s)))
	if *exact {
		if g.N() > 18 {
			fmt.Println("nash equilibrium:     skipped (n > 18; pass -exact=false to silence)")
		} else {
			fmt.Printf("nash equilibrium:     %v (factor %s)\n", gncg.IsNashEquilibrium(s), report.Format(gncg.NashApproxFactor(s)))
		}
	}
	t := report.NewTable("per-agent costs", "agent", "edge cost", "dist cost", "total")
	for u := 0; u < g.N(); u++ {
		t.AddRow(u, s.EdgeCost(u), s.DistCost(u), s.Cost(u))
	}
	t.Render(os.Stdout)
	return nil
}

func cmdBR(args []string) error {
	fs := flag.NewFlagSet("br", flag.ExitOnError)
	in := fs.String("in", "", "instance JSON path")
	agent := fs.Int("agent", 0, "agent index")
	approx := fs.Bool("approx", false, "use the polynomial 3-approximate response")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, p, err := loadInstance(*in)
	if err != nil {
		return err
	}
	s := gncg.NewState(g, p)
	if *agent < 0 || *agent >= g.N() {
		return fmt.Errorf("agent %d out of range [0,%d)", *agent, g.N())
	}
	cur := s.Cost(*agent)
	var br gncg.BestResponse
	if *approx {
		br = gncg.ApproxBestResponse(s, *agent)
	} else {
		br = gncg.ExactBestResponse(s, *agent)
	}
	fmt.Printf("agent %d current cost: %s\n", *agent, report.Format(cur))
	fmt.Printf("best response: buy %v  cost %s", br.Strategy, report.Format(br.Cost))
	if g.Improves(br.Cost, cur) {
		fmt.Printf("  (improves by %s)\n", report.Format(cur-br.Cost))
	} else {
		fmt.Println("  (no improvement: agent is best-responding)")
	}
	return nil
}

func cmdDynamics(args []string) error {
	fs := flag.NewFlagSet("dynamics", flag.ExitOnError)
	in := fs.String("in", "", "instance JSON path")
	mover := fs.String("mover", "greedy", "greedy | br | addonly | approx")
	moves := fs.Int("moves", 10000, "move budget")
	seed := fs.Int64("seed", 0, "scheduler seed (0 = round robin)")
	outPath := fs.String("out", "", "write resulting instance JSON here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, p, err := loadInstance(*in)
	if err != nil {
		return err
	}
	s := gncg.NewState(g, p)
	var mv gncg.Mover
	switch *mover {
	case "greedy":
		mv = gncg.GreedyMover
	case "br":
		mv = gncg.BestResponseMover
	case "addonly":
		mv = gncg.AddOnlyMover
	case "approx":
		mv = gncg.ApproxBRMover
	default:
		return fmt.Errorf("unknown mover %q", *mover)
	}
	sched := gncg.RoundRobinScheduler()
	if *seed != 0 {
		sched = gncg.RandomScheduler(*seed)
	}
	res := gncg.RunDynamics(s, mv, sched, *moves)
	fmt.Printf("outcome: %s after %d moves (%d rounds)\n", res.Outcome, res.Moves, res.Rounds)
	if res.Outcome == gncg.CycleDetected {
		fmt.Printf("improving-move cycle: starts after move %d, length %d — FIP violated\n",
			res.CycleStart, res.CycleLen)
	}
	fmt.Printf("social cost: %s\n", report.Format(s.SocialCost()))
	if *outPath != "" {
		data, err := gncg.MarshalInstance(g, s.P)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *outPath)
	}
	return nil
}

func cmdOpt(args []string) error {
	fs := flag.NewFlagSet("opt", flag.ExitOnError)
	in := fs.String("in", "", "instance JSON path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, _, err := loadInstance(*in)
	if err != nil {
		return err
	}
	lb := gncg.SocialOptimumLowerBound(g)
	fmt.Printf("certified lower bound: %s\n", report.Format(lb))
	if g.N() <= 7 {
		exact, err := gncg.SocialOptimumExact(g)
		if err != nil {
			return err
		}
		fmt.Printf("exact optimum: %s with %d edges\n", report.Format(exact.Cost), len(exact.Edges))
		return nil
	}
	heur := gncg.SocialOptimumHeuristic(g)
	fmt.Printf("heuristic optimum candidate: %s with %d edges (gap to LB: %s)\n",
		report.Format(heur.Cost), len(heur.Edges), report.Format(heur.Cost-lb))
	return nil
}

func cmdRandom(args []string) error {
	fs := flag.NewFlagSet("random", flag.ExitOnError)
	kind := fs.String("kind", "points", "points | tree | onetwo | metric | nonmetric")
	n := fs.Int("n", 10, "number of agents")
	alpha := fs.Float64("alpha", 1, "edge price parameter")
	seed := fs.Int64("seed", 1, "generator seed")
	outPath := fs.String("out", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *alpha <= 0 || math.IsNaN(*alpha) {
		return fmt.Errorf("alpha must be positive")
	}
	var h *gncg.Host
	var err error
	switch *kind {
	case "points":
		h = hostOf(gen.Points(*seed, *n, 2, 100, 2))
	case "tree":
		h = hostOf(gen.Tree(*seed, *n, 1, 10))
	case "onetwo":
		h = hostOf(gen.OneTwo(*seed, *n, 0.4))
	case "metric":
		h = hostOf(gen.Metric(*seed, *n, 0.3, 9))
	case "nonmetric":
		h, err = gncg.HostFromMatrix(gen.NonMetric(*seed, *n, 10))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	g := gncg.NewGame(h, *alpha)
	data, err := gncg.MarshalInstance(g, gncg.EmptyProfile(*n))
	if err != nil {
		return err
	}
	if *outPath == "" {
		fmt.Println(string(data))
		return nil
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", *outPath)
	return nil
}

// hostOf adapts a metric space to a host through the public facade.
func hostOf(s interface {
	Size() int
	Dist(i, j int) float64
}) *gncg.Host {
	n := s.Size()
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			if i != j {
				w[i][j] = s.Dist(i, j)
			}
		}
	}
	h, err := gncg.HostFromMatrix(w)
	if err != nil {
		panic(err)
	}
	return h
}
