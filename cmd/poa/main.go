// Command poa sweeps the paper's Price-of-Anarchy lower-bound families
// over α grids and size ladders, printing the measured ratio, the
// closed-form prediction and the verification tier per cell. It is the
// focused companion to cmd/experiments for regenerating Figures 3, 6, 9
// and 10 at custom resolutions.
//
// Usage:
//
//	poa -family thm15 -alphas 0.5,1,2,4 -sizes 4,8,16,64
//	poa -family thm19 -alphas 1,4 -sizes 1,2,5,10,25
//	poa -family thm8a1 -sizes 2,4,8
//	poa -family thm8half -alphas 0.5,0.75,0.9 -sizes 2,4,8
//	poa -family lemma8 -alphas 1,3 -sizes 3,5,8
//	poa -family thm15 -sizes 1000,2500,4000 -verify-workers 0
//
// Hosts are lazy, so size ladders extend to thousands of agents in O(n)
// memory (e.g. `poa -family thm15 -sizes 1000,2500,5000`); instances
// beyond the verification tiers' reach report their measured ratio with
// tier "unchecked" instead of launching a quadratic stability check.
// -verify-workers shards the equilibrium checks (0 = GOMAXPROCS): the
// greedy tier's size cutoff scales ~√workers, so multi-core runs verify
// rungs a single worker would leave unchecked, with verdicts identical
// to the serial check. The cert_skipped column counts agents whose
// gain-bound certificate proved them stable without a candidate scan.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gncg/internal/game"
	"gncg/internal/poa"
	"gncg/internal/report"
)

var csvOut = flag.Bool("csv", false, "emit CSV instead of aligned tables")

func main() {
	family := flag.String("family", "thm15", "thm15 | thm19 | thm8a1 | thm8half | lemma8")
	alphasFlag := flag.String("alphas", "1,4", "comma-separated alpha grid")
	sizesFlag := flag.String("sizes", "4,8,16", "comma-separated size ladder (n, d or N per family)")
	verifyWorkers := flag.Int("verify-workers", 1, "equilibrium-verification workers per cell (0 = GOMAXPROCS); raises the greedy tier's size cutoff ~sqrt(workers)")
	candidates := flag.String("candidates", "", "geometric candidate generation: on or off (default: $GNCG_CANDIDATES, else on)")
	flag.Parse()
	switch mode := *candidates; {
	case mode == "":
		if env := os.Getenv("GNCG_CANDIDATES"); env == "off" {
			game.SetCandidateGeneration(false)
		}
	case mode == "on" || mode == "off":
		game.SetCandidateGeneration(mode == "on")
	default:
		fail(fmt.Errorf("invalid -candidates mode %q (want on or off)", mode))
	}
	if *csvOut {
		fmt.Println("family,alpha,size,ratio,predicted,tier,stable,verify_workers,cert_skipped")
	}

	alphas, err := parseFloats(*alphasFlag)
	if err != nil {
		fail(err)
	}
	sizes, err := parseInts(*sizesFlag)
	if err != nil {
		fail(err)
	}

	sweep := func(title string, alpha float64) {
		rows, err := poa.SweepFamily(*family, alpha, sizes, *verifyWorkers)
		if err != nil {
			fail(err)
		}
		render(title, rows)
	}

	switch *family {
	case "thm15":
		for _, a := range alphas {
			sweep(fmt.Sprintf("Thm 15 T-GNCG star, alpha=%g (limit %.4f)", a, (a+2)/2), a)
		}
	case "thm19":
		for _, a := range alphas {
			sweep(fmt.Sprintf("Thm 19 l1 cross-polytope, alpha=%g (limit %.4f)", a, (a+2)/2), a)
		}
	case "thm8a1":
		sweep("Thm 8 1-2 clique-of-stars, alpha=1 (limit 1.5)", 1)
	case "thm8half":
		for _, a := range alphas {
			if a < 0.5 || a >= 1 {
				fail(fmt.Errorf("thm8half requires 0.5 <= alpha < 1, got %g", a))
			}
			sweep(fmt.Sprintf("Thm 8 1-2 clique-of-stars, alpha=%g (limit %.4f)", a, 3/(a+2)), a)
		}
	case "lemma8":
		for _, a := range alphas {
			sweep(fmt.Sprintf("Lemma 8 path-vs-star, alpha=%g", a), a)
		}
	default:
		fail(fmt.Errorf("unknown family %q", *family))
	}
}

func render(title string, rows []poa.Row) {
	if *csvOut {
		w := csv.NewWriter(os.Stdout)
		for _, r := range rows {
			rec := []string{
				title,
				strconv.FormatFloat(r.Alpha, 'g', -1, 64),
				strconv.Itoa(r.Size),
				strconv.FormatFloat(r.Ratio, 'g', 10, 64),
				strconv.FormatFloat(r.Predicted, 'g', 10, 64),
				r.Tier.String(),
				strconv.FormatBool(r.Stable),
				strconv.Itoa(r.VerifyWorkers),
				strconv.Itoa(r.CertSkipped),
			}
			if err := w.Write(rec); err != nil {
				fail(err)
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			fail(err)
		}
		return
	}
	t := report.NewTable(title, "size", "ratio", "predicted", "tier", "stable", "workers", "cert_skipped")
	for _, r := range rows {
		stable, workers, skipped := "-", "-", "-"
		if r.Tier != poa.TierNone {
			stable = report.Check(r.Stable)
			workers = strconv.Itoa(r.VerifyWorkers)
		}
		if r.Tier == poa.TierGreedy {
			skipped = strconv.Itoa(r.CertSkipped)
		}
		t.AddRow(r.Size, r.Ratio, r.Predicted, r.Tier.String(), stable, workers, skipped)
	}
	t.Render(os.Stdout)
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad int %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "poa:", err)
	os.Exit(1)
}
