package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"gncg/internal/dynamics"
	"gncg/internal/game"
	"gncg/internal/sweep"
)

// TestMain doubles as the experiments binary: the coordinate subcommand
// re-executes os.Executable(), which under `go test` is the test binary,
// so the child-mode env var routes those subprocesses into main().
func TestMain(m *testing.M) {
	if os.Getenv("GNCG_EXPERIMENTS_CHILD") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// cheapSelection is a fast but representative slice of the registry: a
// scalar experiment, a seeds ladder, and an alpha×n grid.
const cheapSelection = "fig1,thm20,fig9"

func selectCheap(t *testing.T) []sweep.Experiment {
	t.Helper()
	ensureRegistered()
	exps, err := sweep.Select(cheapSelection)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 3 {
		t.Fatalf("selected %d experiments, want 3", len(exps))
	}
	return exps
}

// TestRegistryComplete: every experiment of the paper's reproduction is
// registered and selectable, and tag selection works on the real
// registry.
func TestRegistryComplete(t *testing.T) {
	ensureRegistered()
	want := []string{
		"fig1", "thm1", "lemmas", "approx", "fig2", "thm5", "fig3", "thm9",
		"thm10", "thm11", "thm12", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "thm18", "fig10", "thm20", "conj1", "ncg", "oneinf",
		"empirical", "pos", "table1", "scale", "scale_greedy", "equilibrium",
		"equilibrium_xl", "cycle_census", "model_compare",
	}
	if got := len(sweep.All()); got != len(want) {
		t.Fatalf("registry has %d experiments, want %d", got, len(want))
	}
	for _, name := range want {
		if _, ok := sweep.Lookup(name); !ok {
			t.Errorf("experiment %q not registered", name)
		}
	}
	poaExps, err := sweep.Select("poa")
	if err != nil {
		t.Fatal(err)
	}
	if len(poaExps) < 5 {
		t.Fatalf("tag 'poa' selects only %d experiments", len(poaExps))
	}
}

// TestExperimentsShardDeterminism runs real (cheap) experiments sharded
// and unsharded and requires byte-identical merged JSON — the engine
// contract exercised end-to-end through actual paper reproductions.
func TestExperimentsShardDeterminism(t *testing.T) {
	exps := selectCheap(t)
	ref, err := sweep.Run(exps, sweep.Config{Quick: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.FirstErr(); err != nil {
		t.Fatal(err)
	}
	var refJSON bytes.Buffer
	if err := ref.EncodeJSON(&refJSON); err != nil {
		t.Fatal(err)
	}
	var parts []*sweep.ResultSet
	for shard := 0; shard < 2; shard++ {
		rs, err := sweep.Run(exps, sweep.Config{Quick: true, Shards: 2, Shard: shard})
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, rs)
	}
	mergedSet, err := sweep.Merge(parts...)
	if err != nil {
		t.Fatal(err)
	}
	var merged bytes.Buffer
	if err := mergedSet.EncodeJSON(&merged); err != nil {
		t.Fatal(err)
	}
	if merged.String() != refJSON.String() {
		t.Fatal("merged 2-shard JSON differs from unsharded run")
	}
}

// TestMergeSubcommandRoundTrip drives the merge subcommand end-to-end on
// real experiments: K shard JSON files merged through mergeMain must be
// byte-identical to the unsharded run's output.
func TestMergeSubcommandRoundTrip(t *testing.T) {
	exps := selectCheap(t)
	ref, err := sweep.Run(exps, sweep.Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var refJSON, refCSV bytes.Buffer
	if err := ref.EncodeJSON(&refJSON); err != nil {
		t.Fatal(err)
	}
	if err := ref.EncodeCSV(&refCSV); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const shards = 3
	var files []string
	for shard := 0; shard < shards; shard++ {
		rs, err := sweep.Run(exps, sweep.Config{Quick: true, Shards: shards, Shard: shard})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("shard%d.json", shard))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.EncodeJSON(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		files = append(files, path)
	}
	// Pass shards out of order and one duplicated: Merge dedups by seq.
	args := []string{
		"-out", filepath.Join(dir, "merged.json"),
		"-csv", filepath.Join(dir, "merged.csv"),
		files[2], files[0], files[1], files[0],
	}
	var stderr bytes.Buffer
	if code := mergeMain(args, &stderr); code != 0 {
		t.Fatalf("mergeMain exited %d: %s", code, stderr.String())
	}
	gotJSON, err := os.ReadFile(filepath.Join(dir, "merged.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != refJSON.String() {
		t.Fatal("merged JSON differs from unsharded run")
	}
	gotCSV, err := os.ReadFile(filepath.Join(dir, "merged.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(gotCSV) != refCSV.String() {
		t.Fatal("merged CSV differs from unsharded run")
	}
}

// TestCoordinateSubcommand drives the shard-launch coordinator end to
// end: `coordinate -shards 3` (which re-executes this test binary in
// child mode K times) must produce JSON byte-identical both to an
// unsharded in-process run and to manually-launched shards piped through
// the merge subcommand, keep the per-shard files it is asked to keep,
// and emit per-experiment wide CSVs.
func TestCoordinateSubcommand(t *testing.T) {
	t.Setenv("GNCG_EXPERIMENTS_CHILD", "1")
	exps := selectCheap(t)
	ref, err := sweep.Run(exps, sweep.Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var refJSON bytes.Buffer
	if err := ref.EncodeJSON(&refJSON); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	const shards = 3
	var manualFiles []string
	for shard := 0; shard < shards; shard++ {
		rs, err := sweep.Run(exps, sweep.Config{Quick: true, Shards: shards, Shard: shard})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("manual%d.json", shard))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.EncodeJSON(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		manualFiles = append(manualFiles, path)
	}
	manualOut := filepath.Join(dir, "manual-merged.json")
	var stderr bytes.Buffer
	if code := mergeMain(append([]string{"-out", manualOut}, manualFiles...), &stderr); code != 0 {
		t.Fatalf("mergeMain exited %d: %s", code, stderr.String())
	}

	coordOut := filepath.Join(dir, "coord.json")
	shardDir := filepath.Join(dir, "shards")
	wideDir := filepath.Join(dir, "wide")
	stderr.Reset()
	code := coordinateMain([]string{
		"-shards", fmt.Sprint(shards), "-quick", "-run", cheapSelection,
		"-out", coordOut, "-shard-dir", shardDir, "-wide", wideDir,
	}, &stderr)
	if code != 0 {
		t.Fatalf("coordinateMain exited %d: %s", code, stderr.String())
	}

	coordJSON, err := os.ReadFile(coordOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(coordJSON) != refJSON.String() {
		t.Fatal("coordinate output differs from unsharded run")
	}
	manualJSON, err := os.ReadFile(manualOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(coordJSON) != string(manualJSON) {
		t.Fatal("coordinate output differs from manual shards piped through merge")
	}
	// The kept shard files are the real subprocess outputs and must match
	// the manual in-process shard runs byte-for-byte.
	for shard := 0; shard < shards; shard++ {
		got, err := os.ReadFile(filepath.Join(shardDir, fmt.Sprintf("shard-%d.json", shard)))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(manualFiles[shard])
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("coordinate shard %d differs from manual shard run", shard)
		}
	}
	for _, e := range exps {
		csvPath := filepath.Join(wideDir, e.Name+".csv")
		if _, err := os.Stat(csvPath); err != nil {
			t.Errorf("wide CSV missing for %s: %v", e.Name, err)
		}
	}
}

func TestCoordinateSubcommandErrors(t *testing.T) {
	var stderr bytes.Buffer
	if code := coordinateMain([]string{"-shards", "0"}, &stderr); code != 2 {
		t.Fatalf("coordinate -shards 0 exited %d, want 2", code)
	}
	stderr.Reset()
	if code := coordinateMain([]string{"-run", "no-such-exp"}, &stderr); code != 2 {
		t.Fatalf("coordinate with bad selector exited %d, want 2", code)
	}
}

func TestMergeSubcommandErrors(t *testing.T) {
	var stderr bytes.Buffer
	if code := mergeMain(nil, &stderr); code != 2 {
		t.Fatalf("merge with no inputs exited %d, want 2", code)
	}
	stderr.Reset()
	if code := mergeMain([]string{"no-such-file.json"}, &stderr); code != 1 {
		t.Fatalf("merge of missing file exited %d, want 1", code)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := mergeMain([]string{bad}, &stderr); code != 1 {
		t.Fatalf("merge of invalid file exited %d, want 1", code)
	}
}

// TestCacheChurnProbeDeterministic: the probe that records cache
// counters in full-mode equilibrium cells feeds the nightly
// byte-identity gate, so it must be a pure function of the converged
// state — repeated probes (fresh clone each) agree exactly — and must
// actually exercise the counters it reports.
func TestCacheChurnProbeDeterministic(t *testing.T) {
	h, alpha, start := equilibriumConfig("l2", 250)
	g := game.New(h, alpha)
	s := game.NewState(g, start)
	res := dynamics.RunToConvergence(s, dynamics.GreedyMover, dynamics.RoundRobin{},
		dynamics.Budget{MaxRounds: 32, MaxMoves: 5000})
	if res.Outcome != dynamics.Converged {
		t.Fatalf("l2 star rung did not converge: %v", res.Outcome)
	}
	a := cacheChurnProbe(s)
	b := cacheChurnProbe(s)
	if a != b {
		t.Fatalf("probe not deterministic:\n%+v\n%+v", a, b)
	}
	if a.Hits == 0 || a.Misses == 0 || a.BatchRepairs == 0 {
		t.Fatalf("probe left counters unexercised: %+v", a)
	}
	if a.Capacity != 250 {
		t.Fatalf("probe capacity = %d, want 250 (cap == n caches everything)", a.Capacity)
	}
}

// TestExperimentRecordsSane spot-checks the content of a converted
// experiment: thm20's closed-form PASS verdicts must survive the sweep
// refactor.
func TestExperimentRecordsSane(t *testing.T) {
	ensureRegistered()
	e, ok := sweep.Lookup("thm20")
	if !ok {
		t.Fatal("thm20 missing")
	}
	rs, err := sweep.Run([]sweep.Experiment{e}, sweep.Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if len(rs.Cells) != 4 {
		t.Fatalf("thm20 has %d cells, want 4", len(rs.Cells))
	}
	for _, c := range rs.Cells {
		if len(c.Records) != 1 {
			t.Fatalf("cell %d has %d records", c.Cell.Index, len(c.Records))
		}
		for _, key := range []string{"ne_exact", "opt_exact"} {
			v, ok := c.Records[0].Get(key)
			if !ok || v != "PASS" {
				t.Fatalf("cell alpha=%v: %s = %v, want PASS", c.Cell.Float("alpha"), key, v)
			}
		}
	}
}

// TestGoldenQuickSweep pins the quick sweep's entire JSON output to a
// checked-in golden file, cell by cell. The golden's cells for the
// pre-rules-layer experiments are byte-identical to the output of the
// binary built before game.Rules existed (verified offline when the
// golden was minted), so this test is the executable statement of the
// refactor's core contract: the default "sum" rules perform the exact
// same float operations in the exact same order as the old hardwired
// cost code, for every registered experiment. model_compare's cells
// ride in the same golden, pinning the non-default models too.
//
// If a deliberate experiment change breaks this test, regenerate with
//
//	go run ./cmd/experiments -quick -tables=false -out cmd/experiments/testdata/golden_quick.json
//
// and say so in the commit message — an unexplained diff here is a cost
// regression, not a golden refresh.
func TestGoldenQuickSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick sweep is too slow for -short")
	}
	ensureRegistered()
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_quick.json"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sweep.DecodeJSON(bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sweep.Run(sweep.All(), sweep.Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := got.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(want.Cells) {
		t.Fatalf("quick sweep produced %d cells, golden has %d", len(got.Cells), len(want.Cells))
	}
	mismatches := 0
	for i := range want.Cells {
		w, g := sweep.CellJSON(want.Cells[i]), sweep.CellJSON(got.Cells[i])
		if !bytes.Equal(w, g) {
			mismatches++
			if mismatches <= 5 {
				t.Errorf("cell %d (%s) drifted from golden:\n  want %s\n  got  %s",
					want.Cells[i].Seq, want.Cells[i].Experiment, w, g)
			}
		}
	}
	if mismatches > 5 {
		t.Errorf("... and %d more drifted cells", mismatches-5)
	}
	// The whole encoded stream must match too: cell-by-cell identity
	// plus byte-identical framing is what the sharding gate relies on.
	var buf bytes.Buffer
	if err := got.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), golden) && mismatches == 0 {
		t.Error("cells match but encoded stream differs from golden (framing drift)")
	}
}
