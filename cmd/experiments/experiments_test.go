package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"gncg/internal/sweep"
)

// cheapSelection is a fast but representative slice of the registry: a
// scalar experiment, a seeds ladder, and an alpha×n grid.
const cheapSelection = "fig1,thm20,fig9"

func selectCheap(t *testing.T) []sweep.Experiment {
	t.Helper()
	ensureRegistered()
	exps, err := sweep.Select(cheapSelection)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 3 {
		t.Fatalf("selected %d experiments, want 3", len(exps))
	}
	return exps
}

// TestRegistryComplete: every experiment of the paper's reproduction is
// registered and selectable, and tag selection works on the real
// registry.
func TestRegistryComplete(t *testing.T) {
	ensureRegistered()
	want := []string{
		"fig1", "thm1", "lemmas", "approx", "fig2", "thm5", "fig3", "thm9",
		"thm10", "thm11", "thm12", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "thm18", "fig10", "thm20", "conj1", "ncg", "oneinf",
		"empirical", "pos", "table1", "scale", "scale_greedy", "equilibrium",
	}
	if got := len(sweep.All()); got != len(want) {
		t.Fatalf("registry has %d experiments, want %d", got, len(want))
	}
	for _, name := range want {
		if _, ok := sweep.Lookup(name); !ok {
			t.Errorf("experiment %q not registered", name)
		}
	}
	poaExps, err := sweep.Select("poa")
	if err != nil {
		t.Fatal(err)
	}
	if len(poaExps) < 5 {
		t.Fatalf("tag 'poa' selects only %d experiments", len(poaExps))
	}
}

// TestExperimentsShardDeterminism runs real (cheap) experiments sharded
// and unsharded and requires byte-identical merged JSON — the engine
// contract exercised end-to-end through actual paper reproductions.
func TestExperimentsShardDeterminism(t *testing.T) {
	exps := selectCheap(t)
	ref, err := sweep.Run(exps, sweep.Config{Quick: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.FirstErr(); err != nil {
		t.Fatal(err)
	}
	var refJSON bytes.Buffer
	if err := ref.EncodeJSON(&refJSON); err != nil {
		t.Fatal(err)
	}
	var parts []*sweep.ResultSet
	for shard := 0; shard < 2; shard++ {
		rs, err := sweep.Run(exps, sweep.Config{Quick: true, Shards: 2, Shard: shard})
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, rs)
	}
	var merged bytes.Buffer
	if err := sweep.Merge(parts...).EncodeJSON(&merged); err != nil {
		t.Fatal(err)
	}
	if merged.String() != refJSON.String() {
		t.Fatal("merged 2-shard JSON differs from unsharded run")
	}
}

// TestMergeSubcommandRoundTrip drives the merge subcommand end-to-end on
// real experiments: K shard JSON files merged through mergeMain must be
// byte-identical to the unsharded run's output.
func TestMergeSubcommandRoundTrip(t *testing.T) {
	exps := selectCheap(t)
	ref, err := sweep.Run(exps, sweep.Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var refJSON, refCSV bytes.Buffer
	if err := ref.EncodeJSON(&refJSON); err != nil {
		t.Fatal(err)
	}
	if err := ref.EncodeCSV(&refCSV); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const shards = 3
	var files []string
	for shard := 0; shard < shards; shard++ {
		rs, err := sweep.Run(exps, sweep.Config{Quick: true, Shards: shards, Shard: shard})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("shard%d.json", shard))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.EncodeJSON(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		files = append(files, path)
	}
	// Pass shards out of order and one duplicated: Merge dedups by seq.
	args := []string{
		"-out", filepath.Join(dir, "merged.json"),
		"-csv", filepath.Join(dir, "merged.csv"),
		files[2], files[0], files[1], files[0],
	}
	var stderr bytes.Buffer
	if code := mergeMain(args, &stderr); code != 0 {
		t.Fatalf("mergeMain exited %d: %s", code, stderr.String())
	}
	gotJSON, err := os.ReadFile(filepath.Join(dir, "merged.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != refJSON.String() {
		t.Fatal("merged JSON differs from unsharded run")
	}
	gotCSV, err := os.ReadFile(filepath.Join(dir, "merged.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(gotCSV) != refCSV.String() {
		t.Fatal("merged CSV differs from unsharded run")
	}
}

func TestMergeSubcommandErrors(t *testing.T) {
	var stderr bytes.Buffer
	if code := mergeMain(nil, &stderr); code != 2 {
		t.Fatalf("merge with no inputs exited %d, want 2", code)
	}
	stderr.Reset()
	if code := mergeMain([]string{"no-such-file.json"}, &stderr); code != 1 {
		t.Fatalf("merge of missing file exited %d, want 1", code)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := mergeMain([]string{bad}, &stderr); code != 1 {
		t.Fatalf("merge of invalid file exited %d, want 1", code)
	}
}

// TestExperimentRecordsSane spot-checks the content of a converted
// experiment: thm20's closed-form PASS verdicts must survive the sweep
// refactor.
func TestExperimentRecordsSane(t *testing.T) {
	ensureRegistered()
	e, ok := sweep.Lookup("thm20")
	if !ok {
		t.Fatal("thm20 missing")
	}
	rs, err := sweep.Run([]sweep.Experiment{e}, sweep.Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if len(rs.Cells) != 4 {
		t.Fatalf("thm20 has %d cells, want 4", len(rs.Cells))
	}
	for _, c := range rs.Cells {
		if len(c.Records) != 1 {
			t.Fatalf("cell %d has %d records", c.Cell.Index, len(c.Records))
		}
		for _, key := range []string{"ne_exact", "opt_exact"} {
			v, ok := c.Records[0].Get(key)
			if !ok || v != "PASS" {
				t.Fatalf("cell alpha=%v: %s = %v, want PASS", c.Cell.Alpha, key, v)
			}
		}
	}
}
