package main

import (
	"fmt"
	"math"
	"os"

	"gncg/internal/bestresponse"
	"gncg/internal/constructions"
	"gncg/internal/cover"
	"gncg/internal/dynamics"
	"gncg/internal/game"
	"gncg/internal/gen"
	"gncg/internal/metric"
	"gncg/internal/opt"
	"gncg/internal/poa"
	"gncg/internal/report"
	"gncg/internal/spanner"
	"gncg/internal/stats"
)

var out = os.Stdout

func runFig1(cfg config) {
	t := report.NewTable("host classification (Fig. 1 hierarchy)",
		"host", "classified as", "metric?")
	type entry struct {
		name string
		h    *game.Host
	}
	entries := []entry{
		{"unit clique (NCG)", game.NewHost(metric.Unit{N: 8})},
		{"random 1-2", game.NewHost(gen.OneTwo(1, 8, 0.4))},
		{"random tree closure", game.NewHost(gen.Tree(1, 8, 1, 5))},
		{"random R^2 l2 points", game.NewHost(gen.Points(1, 8, 2, 10, 2))},
		{"random R^3 l1 points", game.NewHost(gen.Points(1, 8, 3, 10, 1))},
		{"random metric closure", game.NewHost(gen.Metric(1, 8, 0.3, 9))},
		{"random non-metric", mustHost(gen.NonMetric(1, 8, 10))},
		{"1-inf host", oneInfHost(8)},
	}
	for _, e := range entries {
		t.AddRow(e.name, e.h.Classify(1e-9).String(), metric.IsMetric(e.h.Matrix(), 1e-9))
	}
	t.Render(out)
}

func mustHost(w [][]float64) *game.Host {
	h, err := game.HostFromMatrix(w)
	if err != nil {
		panic(err)
	}
	return h
}

func oneInfHost(n int) *game.Host {
	var ones [][2]int
	for v := 1; v < n; v++ {
		ones = append(ones, [2]int{v - 1, v})
	}
	oi, err := metric.NewOneInf(n, ones)
	if err != nil {
		panic(err)
	}
	return game.NewHost(oi)
}

func runThm1(cfg config) {
	t := report.NewTable("exact NE found by BR dynamics on random metric hosts vs (alpha+2)/2",
		"seed", "alpha", "n", "NE found", "ratio vs OPT", "bound (a+2)/2", "within")
	trials := 8
	if cfg.quick {
		trials = 4
	}
	for seed := int64(0); seed < int64(trials); seed++ {
		alpha := 0.5 + float64(seed)*0.6
		n := 6
		g := game.New(game.NewHost(gen.Points(seed, n, 2, 10, 2)), alpha)
		s := game.NewState(g, game.EmptyProfile(n))
		res := dynamics.Run(s, dynamics.BestResponseMover, dynamics.RoundRobin{}, 2000)
		if res.Outcome != dynamics.Converged {
			t.AddRow(seed, alpha, n, "no ("+res.Outcome.String()+")", "-", (alpha+2)/2, "-")
			continue
		}
		optRes, err := opt.ExactSmall(g)
		if err != nil {
			panic(err)
		}
		ratio := s.SocialCost() / optRes.Cost
		bound := (alpha + 2) / 2
		t.AddRow(seed, alpha, n, bestresponse.IsNash(s), ratio, bound, report.Check(ratio <= bound+1e-6))
	}
	t.Render(out)
}

func runLemmas(cfg config) {
	t := report.NewTable("Lemma 1 (AE is (alpha+1)-spanner) and Lemma 2 (OPT is (alpha/2+1)-spanner)",
		"seed", "alpha", "AE stretch", "alpha+1", "L1", "OPT stretch", "alpha/2+1", "L2")
	trials := 6
	if cfg.quick {
		trials = 3
	}
	for seed := int64(0); seed < int64(trials); seed++ {
		alpha := 0.5 + float64(seed)*0.8
		n := 7
		g := game.New(game.NewHost(gen.Points(seed+50, n, 2, 10, 2)), alpha)
		s := game.NewState(g, game.StarProfile(n, 0))
		dynamics.RunAddOnly(s, dynamics.RoundRobin{})
		aeStretch := spanner.Stretch(s.Network(), g.Host)
		optRes, err := opt.ExactSmall(g)
		if err != nil {
			panic(err)
		}
		optState := game.NewState(g, game.ProfileFromEdgeSet(n, optRes.Edges))
		optStretch := spanner.Stretch(optState.Network(), g.Host)
		t.AddRow(seed, alpha,
			aeStretch, alpha+1, report.Check(aeStretch <= alpha+1+1e-6),
			optStretch, alpha/2+1, report.Check(optStretch <= alpha/2+1+1e-6))
	}
	t.Render(out)
}

func runApprox(cfg config) {
	t := report.NewTable("Thm 2 (AE => (alpha+1)-GE), Cor. 2 (AE => 3(alpha+1)-NE)",
		"seed", "alpha", "GE factor", "alpha+1", "T2", "NE factor", "3(alpha+1)", "C2")
	trials := 6
	if cfg.quick {
		trials = 3
	}
	for seed := int64(0); seed < int64(trials); seed++ {
		alpha := 0.5 + float64(seed)*0.7
		n := 7
		g := game.New(game.NewHost(gen.Points(seed+200, n, 2, 10, 2)), alpha)
		s := game.NewState(g, game.StarProfile(n, 0))
		dynamics.RunAddOnly(s, dynamics.RoundRobin{})
		geF := s.GreedyApproxFactor()
		neF := bestresponse.NashApproxFactor(s)
		t.AddRow(seed, alpha,
			geF, alpha+1, report.Check(geF <= alpha+1+1e-6),
			neF, 3*(alpha+1), report.Check(neF <= 3*(alpha+1)+1e-6))
	}
	t.Render(out)
}

func runFig2(cfg config) {
	t := report.NewTable("Thm 4 gadget: NE decision <=> minimum vertex cover (alpha=1)",
		"VC instance", "k planted", "k min", "cost(u)", "3N+6m+k", "profile NE?", "matches Thm4")
	cases := []struct {
		name  string
		n     int
		edges [][2]int
		plant []int
	}{
		{"path P3, min cover", 3, [][2]int{{0, 1}, {1, 2}}, []int{1}},
		{"path P3, oversized", 3, [][2]int{{0, 1}, {1, 2}}, []int{0, 2}},
		{"triangle, min cover", 3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, []int{0, 1}},
		{"triangle, oversized", 3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, []int{0, 1, 2}},
		{"P4, min cover", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, []int{1, 2}},
		{"P4, oversized", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, []int{0, 1, 2}},
	}
	for _, c := range cases {
		vc, err := cover.NewVCInstance(c.n, c.edges)
		if err != nil {
			panic(err)
		}
		r, err := constructions.NewVCReduction(vc)
		if err != nil {
			panic(err)
		}
		p, err := r.Profile(c.plant)
		if err != nil {
			panic(err)
		}
		s := game.NewState(r.Game, p)
		kmin := len(cover.MinVertexCover(vc))
		isNE := bestresponse.IsNash(s)
		wantNE := len(c.plant) == kmin
		t.AddRow(c.name, len(c.plant), kmin, s.Cost(r.U), r.UCost(len(c.plant)),
			isNE, report.Check(isNE == wantNE))
	}
	t.Render(out)
}

func runThm5(cfg config) {
	t := report.NewTable("Thm 5: min-weight 3/2-spanner admits NE ownership (1/2<=alpha<=1); Thm 6: Algorithm 1 = OPT",
		"seed", "n", "alpha", "spanner edges", "NE ownership", "Alg1 = exact OPT")
	trials := 4
	if cfg.quick {
		trials = 2
	}
	for seed := int64(0); seed < int64(trials); seed++ {
		n := 5
		h := game.NewHost(gen.OneTwo(seed+3, n, 0.4))
		alpha := 0.5 + 0.5*float64(seed)/float64(trials)
		g := game.New(h, alpha)
		edges, err := spanner.MinWeight32SpannerOneTwo(h)
		if err != nil {
			panic(err)
		}
		neOK := "skipped (too many edges)"
		if len(edges) <= 14 {
			_, ok := spanner.FindNEOwnership(g, edges, bestresponse.IsNash)
			neOK = report.Check(ok)
		}
		algRes, err := opt.Algorithm1(h)
		if err != nil {
			panic(err)
		}
		algCost := opt.Evaluate(g, algRes).Cost
		exact, err := opt.ExactSmall(g)
		if err != nil {
			panic(err)
		}
		t.AddRow(seed, n, alpha, len(edges), neOK,
			report.Check(math.Abs(algCost-exact.Cost) < 1e-9))
	}
	t.Render(out)
}

func runFig3(cfg config) {
	sizes := []int{2, 4, 8, 12}
	if cfg.quick {
		sizes = []int{2, 4}
	}
	t1 := report.NewTable("Thm 8, alpha = 1: ratio -> 3/2", "N", "n", "ratio", "limit", "tier", "stable")
	for _, r := range poa.SweepThm8AlphaOne(sizes) {
		t1.AddRow(r.Size, r.Size*r.Size+r.Size+1, r.Ratio, 1.5, r.Tier.String(), report.Check(r.Stable))
	}
	t1.Render(out)
	alpha := 0.6
	t2 := report.NewTable(fmt.Sprintf("Thm 8, alpha = %g: ratio -> 3/(alpha+2) = %.4f", alpha, 3/(alpha+2)),
		"N", "ratio", "limit", "tier", "stable")
	for _, r := range poa.SweepThm8HalfToOne(alpha, sizes) {
		t2.AddRow(r.Size, r.Ratio, 3/(alpha+2), r.Tier.String(), report.Check(r.Stable))
	}
	t2.Render(out)
}

func runThm9(cfg config) {
	t := report.NewTable("Thm 9: for alpha < 1/2 greedy dynamics land on Algorithm 1's optimum",
		"seed", "n", "alpha", "converged", "equals OPT", "PoA")
	trials := 6
	if cfg.quick {
		trials = 3
	}
	for seed := int64(0); seed < int64(trials); seed++ {
		n := 7
		h := game.NewHost(gen.OneTwo(seed+11, n, 0.45))
		alpha := 0.1 + 0.35*float64(seed)/float64(trials)
		g := game.New(h, alpha)
		algRes, err := opt.Algorithm1(h)
		if err != nil {
			panic(err)
		}
		algCost := opt.Evaluate(g, algRes).Cost
		// Seed from a connected star: from the empty network no single buy
		// yields finite cost, so greedy dynamics would stall disconnected.
		s := game.NewState(g, game.StarProfile(n, int(seed)%n))
		res := dynamics.Run(s, dynamics.GreedyMover, dynamics.RoundRobin{}, 20000)
		if res.Outcome != dynamics.Converged {
			t.AddRow(seed, n, alpha, res.Outcome.String(), "-", "-")
			continue
		}
		sc := s.SocialCost()
		t.AddRow(seed, n, alpha, true,
			report.Check(math.Abs(sc-algCost) < 1e-9), sc/algCost)
	}
	t.Render(out)
}

func runThm10(cfg config) {
	t := report.NewTable("Thm 10: stars are NE on 1-2 hosts for alpha >= 3",
		"seed", "n", "alpha", "center", "exact NE")
	trials := 5
	if cfg.quick {
		trials = 3
	}
	for seed := int64(0); seed < int64(trials); seed++ {
		h := game.NewHost(gen.OneTwo(seed, 8, 0.4))
		alpha := 3 + float64(seed)
		g, p, err := constructions.Thm10Star(h, alpha, int(seed)%8)
		if err != nil {
			panic(err)
		}
		t.AddRow(seed, 8, alpha, int(seed)%8,
			report.Check(bestresponse.IsNash(game.NewState(g, p))))
	}
	t.Render(out)
}

func runThm11(cfg config) {
	t := report.NewTable("Thm 11: equilibrium diameter and PoA vs sqrt(alpha) on random 1-2 hosts",
		"alpha", "sqrt(alpha)", "worst diameter", "worst ratio", "found")
	alphas := []float64{1.5, 3, 6, 12, 25}
	if cfg.quick {
		alphas = []float64{1.5, 6}
	}
	for _, alpha := range alphas {
		worstD, worstR, found := 0.0, 0.0, 0
		for seed := int64(0); seed < 4; seed++ {
			g := game.New(game.NewHost(gen.OneTwo(seed+21, 10, 0.35)), alpha)
			e := poa.EmpiricalPoA(g, 4, seed*101, math.Inf(1))
			if e.Found == 0 {
				continue
			}
			found += e.Found
			if e.Diameter > worstD {
				worstD = e.Diameter
			}
			if e.WorstRatio > worstR {
				worstR = e.WorstRatio
			}
		}
		t.AddRow(alpha, math.Sqrt(alpha), worstD, worstR, found)
	}
	t.Render(out)
}

func runThm12(cfg config) {
	t := report.NewTable("Thm 12: converged BR dynamics on tree metrics yield trees",
		"seed", "n", "alpha", "outcome", "exact NE", "is tree")
	trials := 6
	if cfg.quick {
		trials = 3
	}
	for seed := int64(0); seed < int64(trials); seed++ {
		n := 7
		tm := gen.Tree(seed, n, 1, 6)
		alpha := 0.8 + float64(seed)*0.5
		g := game.New(game.NewHost(tm), alpha)
		s := game.NewState(g, game.EmptyProfile(n))
		res := dynamics.Run(s, dynamics.BestResponseMover, dynamics.RoundRobin{}, 600)
		if res.Outcome != dynamics.Converged {
			t.AddRow(seed, n, alpha, res.Outcome.String(), "-", "-")
			continue
		}
		t.AddRow(seed, n, alpha, "converged",
			report.Check(bestresponse.IsNash(s)), report.Check(s.Network().IsTree()))
	}
	t.Render(out)
}

func runFig4(cfg config) {
	runSetCoverGadget("Thm 13 (tree metric)", func(sc *cover.SCInstance) (scGadget, error) {
		return constructions.NewSetCoverTree(sc, 100, 0.001, 1)
	}, cfg)
}

func runFig7(cfg config) {
	for _, p := range []float64{2, 1} {
		p := p
		runSetCoverGadget(fmt.Sprintf("Thm 16 (geometric, %g-norm)", p),
			func(sc *cover.SCInstance) (scGadget, error) {
				return constructions.NewSetCoverGeo(sc, 100, 0.001, 1, p)
			}, cfg)
	}
}

// scGadget is the shared shape of the two set-cover gadgets.
type scGadget interface {
	DecodeStrategy([]int) (sets []int, other []int)
}

func runSetCoverGadget(title string, build func(*cover.SCInstance) (scGadget, error), cfg config) {
	t := report.NewTable(title+": exact best response buys a minimum set cover",
		"seed", "k", "m", "BR sets", "min cover", "is cover", "minimal", "pure set-nodes")
	trials := 4
	if cfg.quick {
		trials = 2
	}
	for seed := int64(0); seed < int64(trials); seed++ {
		sc := gen.SC(seed, 4, 4, 0.45)
		gadget, err := build(sc)
		if err != nil {
			panic(err)
		}
		var g *game.Game
		var u int
		var prof game.Profile
		switch x := gadget.(type) {
		case *constructions.SetCoverTree:
			g, u, prof = x.Game, x.U, x.Profile()
		case *constructions.SetCoverGeo:
			g, u, prof = x.Game, x.U, x.Profile()
		}
		s := game.NewState(g, prof)
		br := bestresponse.Exact(s, u)
		sets, other := gadget.DecodeStrategy(br.Strategy.Elems())
		kmin := len(cover.MinSetCover(sc))
		t.AddRow(seed, sc.K, len(sc.Sets), len(sets), kmin,
			report.Check(sc.IsSetCover(sets)),
			report.Check(len(sets) == kmin),
			report.Check(len(other) == 0))
	}
	t.Render(out)
}

func runFig5(cfg config) {
	t := report.NewTable("Thm 14: exhaustive improving-move graphs of tree metrics contain cycles",
		"seed", "n", "alpha", "cycle found", "length", "verified")
	found := 0
	for seed := int64(0); seed < 6 && found < 3; seed++ {
		tm := gen.Tree(seed, 4, 1, 12)
		for _, alpha := range []float64{0.6, 1, 1.5, 2.5} {
			g := game.New(game.NewHost(tm), alpha)
			w, has, err := dynamics.ExhaustiveFIP(g)
			if err != nil {
				panic(err)
			}
			if !has {
				continue
			}
			t.AddRow(seed, 4, alpha, true, len(w.Profiles)-1,
				report.Check(dynamics.VerifyFIPWitness(g, w)))
			found++
			break
		}
	}
	if found == 0 {
		t.AddRow("-", "-", "-", false, "-", "FAIL")
	}
	t.Render(out)
	fmt.Fprintln(out, "note: the paper's Fig. 5 fixes one 10-node tree; its topology is only in the")
	fmt.Fprintln(out, "drawing, so FIP violation is certified on exhaustively analyzed 4-node trees.")
}

func runFig6(cfg config) {
	sizes := []int{4, 8, 16, 40, 100}
	if cfg.quick {
		sizes = []int{4, 8, 16}
	}
	for _, alpha := range []float64{1, 4} {
		t := report.NewTable(fmt.Sprintf("Thm 15 star family, alpha = %g (limit (alpha+2)/2 = %.3f)",
			alpha, (alpha+2)/2), "n", "ratio", "predicted", "tier", "stable")
		for _, r := range poa.SweepThm15(alpha, sizes) {
			t.AddRow(r.Size, r.Ratio, r.Predicted, r.Tier.String(), report.Check(r.Stable))
		}
		t.Render(out)
	}
}

func runFig8(cfg config) {
	t := report.NewTable("Thm 17: improving-move cycle search on the Fig. 8 point set (1-norm)",
		"alpha", "cycle", "length", "verified")
	// The witness at alpha=1 surfaces around restart 84 of this seeded
	// search; the search is cheap, so quick mode keeps the full budget.
	restarts := 150
	for _, alpha := range []float64{0.6, 1, 2} {
		g := constructions.Fig8Game(alpha)
		w, ok := dynamics.FindCycle(g, dynamics.CycleSearchConfig{
			Restarts: restarts, MaxMoves: 2000, EdgeProb: 0.3, Seed: 7, RandomSched: true,
		})
		if !ok {
			t.AddRow(alpha, false, "-", "-")
			continue
		}
		t.AddRow(alpha, true, w.CycleLen, report.Check(dynamics.VerifyCycle(g, w)))
	}
	t.Render(out)
	fmt.Fprintln(out, "note: the drawing fixes the cyclic profiles and alpha; the point coordinates")
	fmt.Fprintln(out, "are published and used verbatim — the cycle is re-found by randomized search.")
}

func runFig9(cfg config) {
	sizes := []int{3, 4, 5, 6, 8}
	if cfg.quick {
		sizes = []int{3, 4, 5}
	}
	for _, alpha := range []float64{1, 3} {
		t := report.NewTable(fmt.Sprintf("Lemma 8 path-vs-star, alpha = %g (PoA > 1)", alpha),
			"points", "ratio", "tier", "stable", "ratio > 1")
		for _, r := range poa.SweepLemma8(alpha, sizes) {
			t.AddRow(r.Size, r.Ratio, r.Tier.String(), report.Check(r.Stable), report.Check(r.Ratio > 1))
		}
		t.Render(out)
	}
}

func runThm18(cfg config) {
	t := report.NewTable("Thm 18 four-point bound: measured vs (3a^3+24a^2+40a+24)/(a^3+10a^2+32a+24)",
		"alpha", "measured", "closed form", "match", "NE exact", "path = exact OPT")
	for _, alpha := range []float64{0.5, 1, 2, 6, 20} {
		lb, err := constructions.Thm18FourPoint(alpha)
		if err != nil {
			panic(err)
		}
		s := game.NewState(lb.Game, lb.Equilibrium.Clone())
		exact, err := opt.ExactSmall(lb.Game)
		if err != nil {
			panic(err)
		}
		measured := lb.Ratio()
		t.AddRow(alpha, measured, lb.Predicted,
			report.Check(math.Abs(measured-lb.Predicted) < 1e-9),
			report.Check(bestresponse.IsNash(s)),
			report.Check(math.Abs(lb.OptimumCost()-exact.Cost) < 1e-6))
	}
	t.Render(out)
}

func runFig10(cfg config) {
	dims := []int{1, 2, 3, 5, 10, 25}
	if cfg.quick {
		dims = []int{1, 2, 3, 5}
	}
	for _, alpha := range []float64{1, 4} {
		t := report.NewTable(fmt.Sprintf("Thm 19 cross-polytope, alpha = %g (limit (alpha+2)/2 = %.3f)",
			alpha, (alpha+2)/2), "d", "n", "ratio", "1+a/(2+a/(2d-1))", "tier", "stable")
		for _, r := range poa.SweepThm19(alpha, dims) {
			t.AddRow(r.Size, 2*r.Size+1, r.Ratio, r.Predicted, r.Tier.String(), report.Check(r.Stable))
		}
		t.Render(out)
	}
}

func runThm20(cfg config) {
	t := report.NewTable("Thm 20 non-metric triangle {0, 1, (alpha+2)/2}",
		"alpha", "ratio", "(alpha+2)/2", "pair sigma", "((alpha+2)/2)^2", "NE exact", "OPT exact")
	for _, alpha := range []float64{0.5, 1, 3, 8} {
		lb, err := constructions.Thm20Triangle(alpha)
		if err != nil {
			panic(err)
		}
		s := game.NewState(lb.Game, lb.Equilibrium.Clone())
		exact, err := opt.ExactSmall(lb.Game)
		if err != nil {
			panic(err)
		}
		t.AddRow(alpha, lb.Ratio(), (alpha+2)/2,
			constructions.Thm20PairSigma(lb), math.Pow((alpha+2)/2, 2),
			report.Check(bestresponse.IsNash(s)),
			report.Check(math.Abs(lb.OptimumCost()-exact.Cost) < 1e-9))
	}
	t.Render(out)
}

func runNCG(cfg config) {
	t := report.NewTable("NCG baseline (unit weights): classic stable structures",
		"n", "alpha", "structure", "exact NE")
	for _, tc := range []struct {
		n     int
		alpha float64
		star  bool
	}{
		{6, 0.5, false}, // complete graph stable for alpha < 1
		{6, 2, true},    // star stable for alpha > 1
		{8, 4, true},
	} {
		g := game.New(game.NewHost(metric.Unit{N: tc.n}), tc.alpha)
		var p game.Profile
		name := "complete"
		if tc.star {
			p = game.StarProfile(tc.n, 0)
			name = "star"
		} else {
			p = game.EmptyProfile(tc.n)
			for u := 0; u < tc.n; u++ {
				for v := u + 1; v < tc.n; v++ {
					p.Buy(u, v)
				}
			}
		}
		t.AddRow(tc.n, tc.alpha, name,
			report.Check(bestresponse.IsNash(game.NewState(g, p))))
	}
	t.Render(out)
}

func runConj1(cfg config) {
	t := report.NewTable("Conjecture 1: exhaustive improving-move analysis of 4-point R^2 instances under p-norms",
		"p-norm", "seed", "alpha", "cycle", "length", "verified")
	norms := []float64{2, 3, 5}
	if cfg.quick {
		norms = []float64{2}
	}
	for _, p := range norms {
		found := 0
		for seed := int64(0); seed < 8 && found < 2; seed++ {
			pts := gen.Points(seed, 4, 2, 10, p)
			for _, alpha := range []float64{0.6, 1, 1.5, 2.5} {
				g := game.New(game.NewHost(pts), alpha)
				w, has, err := dynamics.ExhaustiveFIP(g)
				if err != nil {
					panic(err)
				}
				if !has {
					continue
				}
				t.AddRow(p, seed, alpha, true, len(w.Profiles)-1,
					report.Check(dynamics.VerifyFIPWitness(g, w)))
				found++
				break
			}
		}
		if found == 0 {
			t.AddRow(p, "-", "-", false, "-", "FAIL")
		}
	}
	t.Render(out)
	fmt.Fprintln(out, "note: the paper proves no-FIP only for the 1-norm (Thm 17) and conjectures it")
	fmt.Fprintln(out, "for all p-norms (Conj. 1); these verified cycles are supporting evidence.")
}

func runOneInf(cfg config) {
	t := report.NewTable("1-inf-GNCG: BR dynamics on {1,inf} hosts buy only weight-1 edges",
		"seed", "n", "alpha", "outcome", "exact NE", "all edges weight 1", "connected")
	trials := 4
	if cfg.quick {
		trials = 2
	}
	for seed := int64(0); seed < int64(trials); seed++ {
		n := 7
		// Buyable pairs: a random connected unit graph (spanning tree +
		// extras); all other pairs are unbuyable (+inf).
		rng := seed*17 + 3
		var ones [][2]int
		for v := 1; v < n; v++ {
			ones = append(ones, [2]int{int(rng+int64(v)) % v, v})
		}
		ones = append(ones, [2]int{0, n - 1}, [2]int{1, n - 2})
		oi, err := metric.NewOneInf(n, ones)
		if err != nil {
			panic(err)
		}
		g := game.New(game.NewHost(oi), 1+float64(seed)*0.7)
		// Seed with the buyable spanning tree: on {1,inf} hosts an agent
		// cannot unilaterally repair global connectivity, so all-infinite
		// disconnected states are vacuously stable; from a connected state
		// improving moves keep every mover's cost finite and hence the
		// network connected.
		start := game.EmptyProfile(n)
		for _, e := range ones[:n-1] {
			start.Buy(e[0], e[1])
		}
		s := game.NewState(g, start)
		res := dynamics.Run(s, dynamics.BestResponseMover, dynamics.RoundRobin{}, 600)
		if res.Outcome != dynamics.Converged {
			t.AddRow(seed, n, g.Alpha, res.Outcome.String(), "-", "-", "-")
			continue
		}
		allOne := true
		for _, e := range s.Network().Edges() {
			if e.W != 1 {
				allOne = false
			}
		}
		t.AddRow(seed, n, g.Alpha, "converged",
			report.Check(bestresponse.IsNash(s)), report.Check(allOne),
			report.Check(s.Connected()))
	}
	t.Render(out)
}

func runEmpirical(cfg config) {
	instances := 16
	if cfg.quick {
		instances = 6
	}
	t := report.NewTable("empirical PoA of greedy equilibria on random geometric hosts (n=8, multi-start)",
		"host family", "alpha", "instances", "mean", "median", "max", "bound (a+2)/2", "within")
	families := []struct {
		name string
		host func(seed int64) *game.Host
	}{
		{"uniform", func(seed int64) *game.Host { return game.NewHost(gen.Points(seed*3+1, 8, 2, 10, 2)) }},
		{"clustered", func(seed int64) *game.Host { return game.NewHost(gen.ClusteredPoints(seed*3+1, 8, 3, 100, 2)) }},
	}
	for _, fam := range families {
		for _, alpha := range []float64{0.5, 1, 2, 4, 8} {
			var ratios []float64
			for seed := int64(0); seed < int64(instances); seed++ {
				g := game.New(fam.host(seed), alpha)
				e := poa.EmpiricalPoA(g, 4, seed*7+1, (alpha+2)/2)
				if e.Found > 0 {
					ratios = append(ratios, e.WorstRatio)
				}
			}
			s := stats.Summarize(ratios)
			// Greedy equilibria are a superset of NE; the Thm 1 bound
			// applies to NE, so a measured max below the bound is
			// corroboration, not proof. All sampled instances respect it.
			t.AddRow(fam.name, alpha, s.N, s.Mean, stats.Median(ratios), s.Max, (alpha+2)/2,
				report.Check(s.Max <= (alpha+2)/2+1e-6))
		}
	}
	t.Render(out)
}

func runPoS(cfg config) {
	t := report.NewTable("exact PoA / PoS by exhaustive census (n=4; PoS analysis is the paper's stated next step)",
		"host", "alpha", "#NE", "exact PoA", "exact PoS", "PoA <= (a+2)/2", "tree PoS = 1")
	trials := 3
	if cfg.quick {
		trials = 2
	}
	for seed := int64(0); seed < int64(trials); seed++ {
		alpha := 0.7 + float64(seed)
		g := game.New(game.NewHost(gen.Points(seed, 4, 2, 10, 2)), alpha)
		c, err := poa.ExhaustiveCensus(g)
		if err != nil {
			panic(err)
		}
		t.AddRow("geometric", alpha, c.Nash, c.PoA(), c.PoS(),
			report.Check(c.PoA() <= (alpha+2)/2+1e-6), "-")
	}
	for seed := int64(0); seed < int64(trials); seed++ {
		alpha := 1 + float64(seed)*0.8
		tm := gen.Tree(seed, 4, 1, 8)
		g := game.New(game.NewHost(tm), alpha)
		c, err := poa.ExhaustiveCensus(g)
		if err != nil {
			panic(err)
		}
		t.AddRow("tree metric", alpha, c.Nash, c.PoA(), c.PoS(),
			report.Check(c.PoA() <= (alpha+2)/2+1e-6),
			report.Check(math.Abs(c.PoS()-1) < 1e-9))
	}
	t.Render(out)
}

func runTable1(cfg config) {
	t := report.NewTable("Table 1 regenerated: measured evidence per model row",
		"model", "PoA evidence (measured)", "BR hardness gadget", "FIP", "equilibria")
	thm15 := mustLB(constructions.Thm15Star(100, 4))
	thm19 := mustLB(constructions.Thm19CrossPolytope(25, 4))
	thm18 := mustLB(constructions.Thm18FourPoint(1e6))
	thm20 := mustLB(constructions.Thm20Triangle(4))
	thm8 := mustLB(constructions.Thm8AlphaOne(12))
	t.AddRow("NCG", "star/complete NE verified", "(special case)", "no (cited)", "NE exists (verified)")
	t.AddRow("1-2-GNCG",
		fmt.Sprintf("ratio %.3f -> 3/2 at alpha=1 (N=12)", thm8.Ratio()),
		"VC gadget verified", "no (Cor. 1)", "NE exists (Thm 5/9/10 verified)")
	t.AddRow("T-GNCG",
		fmt.Sprintf("ratio %.3f vs (a+2)/2 = 3 at alpha=4", thm15.Ratio()),
		"SetCover gadget verified", "no (4-node cycle verified)", "tree NE exists (Cor. 3)")
	t.AddRow("Rd-GNCG l1",
		fmt.Sprintf("ratio %.3f vs limit 3 at alpha=4, d=25", thm19.Ratio()),
		"SetCover geo gadget verified", "no (Fig. 8 cycle verified)", "3(a+1)-NE (Cor. 2 verified)")
	t.AddRow("Rd-GNCG p>=2",
		fmt.Sprintf("Thm18 ratio -> %.3f as alpha -> inf", thm18.Ratio()),
		"SetCover geo gadget verified", "? (Conj. 1)", "3(a+1)-NE (Cor. 2 verified)")
	t.AddRow("M-GNCG",
		fmt.Sprintf("tight (a+2)/2 via T-GNCG (%.3f at alpha=4)", thm15.Ratio()),
		"(inherits 1-2)", "no (inherits T-GNCG)", "3(a+1)-NE (Cor. 2 verified)")
	t.AddRow("GNCG",
		fmt.Sprintf("triangle ratio %.3f = (a+2)/2 at alpha=4; sigma %.3f", thm20.Ratio(), constructions.Thm20PairSigma(thm20)),
		"(inherits 1-2)", "no (inherits)", "? (open)")
	t.Render(out)
}

func mustLB(lb *constructions.LowerBound, err error) *constructions.LowerBound {
	if err != nil {
		panic(err)
	}
	return lb
}
