package main

import (
	"fmt"
	"math"

	"gncg/internal/bestresponse"
	"gncg/internal/constructions"
	"gncg/internal/cover"
	"gncg/internal/dynamics"
	"gncg/internal/game"
	"gncg/internal/gen"
	"gncg/internal/metric"
	"gncg/internal/opt"
	"gncg/internal/poa"
	"gncg/internal/report"
	"gncg/internal/rules"
	"gncg/internal/spanner"
	"gncg/internal/stats"
	"gncg/internal/sweep"
)

// registerAll populates the sweep registry with every table and figure of
// the paper. Each experiment declares its parameter grid (shrunk in quick
// mode) and a cell function; the engine owns fan-out, sharding and
// encoding. Registration order fixes output order.
func registerAll() {
	registerFig1()
	registerThm1()
	registerLemmas()
	registerApprox()
	registerFig2()
	registerThm5()
	registerFig3()
	registerThm9()
	registerThm10()
	registerThm11()
	registerThm12()
	registerFig4()
	registerFig5()
	registerFig6()
	registerFig7()
	registerFig8()
	registerFig9()
	registerThm18()
	registerFig10()
	registerThm20()
	registerConj1()
	registerNCG()
	registerOneInf()
	registerEmpirical()
	registerPoS()
	registerTable1()
	registerScale()
	registerScaleGreedy()
	registerEquilibrium()
	registerEquilibriumXL()
	registerCycleCensus()
	registerModelCompare()
}

func seeds(full, quick int, isQuick bool) []int64 {
	if isQuick {
		return sweep.Seq(quick)
	}
	return sweep.Seq(full)
}

// space declares a quick-independent parameter space from its axes.
func space(axes ...sweep.Axis) func(bool) sweep.Space {
	return func(bool) sweep.Space { return sweep.Space{Axes: axes} }
}

// seedSpace declares the common trials-only space, shrunk in quick mode.
func seedSpace(full, quick int) func(bool) sweep.Space {
	return func(q bool) sweep.Space {
		return sweep.Space{Axes: []sweep.Axis{sweep.Int64s("seed", seeds(full, quick, q)...)}}
	}
}

func registerFig1() {
	sweep.Register(sweep.Experiment{
		Name: "fig1", Title: "Fig. 1: model hierarchy classification",
		Tags: []string{"model"},
		Run: func(p sweep.Params) []sweep.Record {
			type entry struct {
				name string
				h    *game.Host
			}
			entries := []entry{
				{"unit clique (NCG)", game.NewHost(metric.Unit{N: 8})},
				{"random 1-2", game.NewHost(gen.OneTwo(1, 8, 0.4))},
				{"random tree closure", game.NewHost(gen.Tree(1, 8, 1, 5))},
				{"random R^2 l2 points", game.NewHost(gen.Points(1, 8, 2, 10, 2))},
				{"random R^3 l1 points", game.NewHost(gen.Points(1, 8, 3, 10, 1))},
				{"random metric closure", game.NewHost(gen.Metric(1, 8, 0.3, 9))},
				{"random non-metric", mustHost(gen.NonMetric(1, 8, 10))},
				{"1-inf host", oneInfHost(8)},
			}
			var recs []sweep.Record
			for _, e := range entries {
				recs = append(recs, sweep.R(
					"host", e.name,
					"classified_as", e.h.Classify(1e-9).String(),
					"metric", e.h.IsMetric(1e-9)))
			}
			return recs
		},
	})
}

func mustHost(w [][]float64) *game.Host {
	h, err := game.HostFromMatrix(w)
	if err != nil {
		panic(err)
	}
	return h
}

func oneInfHost(n int) *game.Host {
	var ones [][2]int
	for v := 1; v < n; v++ {
		ones = append(ones, [2]int{v - 1, v})
	}
	oi, err := metric.NewOneInf(n, ones)
	if err != nil {
		panic(err)
	}
	return game.NewHost(oi)
}

func registerThm1() {
	sweep.Register(sweep.Experiment{
		Name: "thm1", Title: "Thm 1: PoA <= (alpha+2)/2 upper-bound sanity (M-GNCG)",
		Tags:  []string{"poa", "dynamics"},
		Space: seedSpace(8, 4),
		Run: func(p sweep.Params) []sweep.Record {
			alpha := 0.5 + float64(p.Seed())*0.6
			n := 6
			g := game.New(game.NewHost(gen.Points(p.Seed(), n, 2, 10, 2)), alpha)
			s := game.NewState(g, game.EmptyProfile(n))
			res := dynamics.Run(s, dynamics.BestResponseMover, dynamics.RoundRobin{}, 2000)
			if res.Outcome != dynamics.Converged {
				return []sweep.Record{sweep.R("alpha", alpha, "n", n,
					"ne_found", "no ("+res.Outcome.String()+")")}
			}
			optRes, err := opt.ExactSmall(g)
			if err != nil {
				panic(err)
			}
			ratio := s.SocialCost() / optRes.Cost
			bound := (alpha + 2) / 2
			return []sweep.Record{sweep.R("alpha", alpha, "n", n,
				"ne_found", bestresponse.IsNash(s),
				"ratio_vs_opt", ratio, "bound", bound,
				"within", report.Check(ratio <= bound+1e-6))}
		},
	})
}

func registerLemmas() {
	sweep.Register(sweep.Experiment{
		Name: "lemmas", Title: "Lemmas 1-2: AE is (alpha+1)-spanner; OPT is (alpha/2+1)-spanner",
		Tags:  []string{"spanner", "equilibria"},
		Space: seedSpace(6, 3),
		Run: func(p sweep.Params) []sweep.Record {
			alpha := 0.5 + float64(p.Seed())*0.8
			n := 7
			g := game.New(game.NewHost(gen.Points(p.Seed()+50, n, 2, 10, 2)), alpha)
			s := game.NewState(g, game.StarProfile(n, 0))
			dynamics.RunAddOnly(s, dynamics.RoundRobin{})
			aeStretch := spanner.Stretch(s.Network(), g.Host)
			optRes, err := opt.ExactSmall(g)
			if err != nil {
				panic(err)
			}
			optState := game.NewState(g, game.ProfileFromEdgeSet(n, optRes.Edges))
			optStretch := spanner.Stretch(optState.Network(), g.Host)
			return []sweep.Record{sweep.R("alpha", alpha,
				"ae_stretch", aeStretch, "l1_bound", alpha+1,
				"l1", report.Check(aeStretch <= alpha+1+1e-6),
				"opt_stretch", optStretch, "l2_bound", alpha/2+1,
				"l2", report.Check(optStretch <= alpha/2+1+1e-6))}
		},
	})
}

func registerApprox() {
	sweep.Register(sweep.Experiment{
		Name: "approx", Title: "Thm 2 (AE => (alpha+1)-GE), Cor. 2 (AE => 3(alpha+1)-NE)",
		Tags:  []string{"equilibria"},
		Space: seedSpace(6, 3),
		Run: func(p sweep.Params) []sweep.Record {
			alpha := 0.5 + float64(p.Seed())*0.7
			n := 7
			g := game.New(game.NewHost(gen.Points(p.Seed()+200, n, 2, 10, 2)), alpha)
			s := game.NewState(g, game.StarProfile(n, 0))
			dynamics.RunAddOnly(s, dynamics.RoundRobin{})
			geF := s.GreedyApproxFactor()
			neF := bestresponse.NashApproxFactor(s)
			return []sweep.Record{sweep.R("alpha", alpha,
				"ge_factor", geF, "t2_bound", alpha+1,
				"t2", report.Check(geF <= alpha+1+1e-6),
				"ne_factor", neF, "c2_bound", 3*(alpha+1),
				"c2", report.Check(neF <= 3*(alpha+1)+1e-6))}
		},
	})
}

func registerFig2() {
	sweep.Register(sweep.Experiment{
		Name: "fig2", Title: "Fig. 2 + Thm 4: NE decision <=> minimum vertex cover (alpha=1)",
		Tags: []string{"hardness", "gadget"},
		Run: func(p sweep.Params) []sweep.Record {
			cases := []struct {
				name  string
				n     int
				edges [][2]int
				plant []int
			}{
				{"path P3, min cover", 3, [][2]int{{0, 1}, {1, 2}}, []int{1}},
				{"path P3, oversized", 3, [][2]int{{0, 1}, {1, 2}}, []int{0, 2}},
				{"triangle, min cover", 3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, []int{0, 1}},
				{"triangle, oversized", 3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, []int{0, 1, 2}},
				{"P4, min cover", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, []int{1, 2}},
				{"P4, oversized", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, []int{0, 1, 2}},
			}
			var recs []sweep.Record
			for _, c := range cases {
				vc, err := cover.NewVCInstance(c.n, c.edges)
				if err != nil {
					panic(err)
				}
				r, err := constructions.NewVCReduction(vc)
				if err != nil {
					panic(err)
				}
				prof, err := r.Profile(c.plant)
				if err != nil {
					panic(err)
				}
				s := game.NewState(r.Game, prof)
				kmin := len(cover.MinVertexCover(vc))
				isNE := bestresponse.IsNash(s)
				wantNE := len(c.plant) == kmin
				recs = append(recs, sweep.R("vc_instance", c.name,
					"k_planted", len(c.plant), "k_min", kmin,
					"cost_u", s.Cost(r.U), "threshold", r.UCost(len(c.plant)),
					"profile_ne", isNE, "matches_thm4", report.Check(isNE == wantNE)))
			}
			return recs
		},
	})
}

func registerThm5() {
	// full/quick are shared by the grid and the alpha formula so widening
	// the seed ladder cannot silently push alpha out of Thm 5's range.
	const full, quick = 4, 2
	sweep.Register(sweep.Experiment{
		Name: "thm5", Title: "Thm 5 + 6: 1-2 NE existence via 3/2-spanners; Algorithm 1 = OPT",
		Tags:  []string{"equilibria", "opt"},
		Space: seedSpace(full, quick),
		Run: func(p sweep.Params) []sweep.Record {
			trials := len(seeds(full, quick, p.Quick))
			n := 5
			h := game.NewHost(gen.OneTwo(p.Seed()+3, n, 0.4))
			alpha := 0.5 + 0.5*float64(p.Seed())/float64(trials)
			g := game.New(h, alpha)
			edges, err := spanner.MinWeight32SpannerOneTwo(h)
			if err != nil {
				panic(err)
			}
			neOK := "skipped (too many edges)"
			if len(edges) <= 14 {
				_, ok := spanner.FindNEOwnership(g, edges, bestresponse.IsNash)
				neOK = report.Check(ok)
			}
			algRes, err := opt.Algorithm1(h)
			if err != nil {
				panic(err)
			}
			algCost := opt.Evaluate(g, algRes).Cost
			exact, err := opt.ExactSmall(g)
			if err != nil {
				panic(err)
			}
			return []sweep.Record{sweep.R("n", n, "alpha", alpha,
				"spanner_edges", len(edges), "ne_ownership", neOK,
				"alg1_is_opt", report.Check(math.Abs(algCost-exact.Cost) < 1e-9))}
		},
	})
}

func registerFig3() {
	sweep.Register(sweep.Experiment{
		Name: "fig3", Title: "Fig. 3 + Thm 8: 1-2 PoA lower bounds (3/2 and 3/(alpha+2))",
		Tags: []string{"poa", "sweep"},
		Space: func(quick bool) sweep.Space {
			ns := sweep.Ints("n", 2, 4, 8, 12)
			if quick {
				ns = sweep.Ints("n", 2, 4)
			}
			return sweep.Space{Axes: []sweep.Axis{sweep.Floats("alpha", 1, 0.6), ns}}
		},
		Schema: []string{"nodes", "ratio", "limit", "tier", "stable"},
		Run: func(p sweep.Params) []sweep.Record {
			if p.Float("alpha") == 1 {
				r := poa.SweepThm8AlphaOne([]int{p.Int("n")})[0]
				return []sweep.Record{sweep.R("nodes", r.Size*r.Size+r.Size+1,
					"ratio", r.Ratio, "limit", 1.5,
					"tier", r.Tier.String(), "stable", report.Check(r.Stable))}
			}
			r := poa.SweepThm8HalfToOne(p.Float("alpha"), []int{p.Int("n")})[0]
			return []sweep.Record{sweep.R("nodes", r.Size*r.Size+r.Size+1,
				"ratio", r.Ratio, "limit", 3/(p.Float("alpha")+2),
				"tier", r.Tier.String(), "stable", report.Check(r.Stable))}
		},
	})
}

func registerThm9() {
	// Shared by the grid and the alpha formula: alpha must stay < 1/2.
	const full, quick = 6, 3
	sweep.Register(sweep.Experiment{
		Name: "thm9", Title: "Thm 9: for alpha < 1/2 greedy dynamics land on Algorithm 1's optimum",
		Tags:  []string{"poa", "dynamics"},
		Space: seedSpace(full, quick),
		Run: func(p sweep.Params) []sweep.Record {
			trials := len(seeds(full, quick, p.Quick))
			n := 7
			h := game.NewHost(gen.OneTwo(p.Seed()+11, n, 0.45))
			alpha := 0.1 + 0.35*float64(p.Seed())/float64(trials)
			g := game.New(h, alpha)
			algRes, err := opt.Algorithm1(h)
			if err != nil {
				panic(err)
			}
			algCost := opt.Evaluate(g, algRes).Cost
			// Seed from a connected star: from the empty network no single buy
			// yields finite cost, so greedy dynamics would stall disconnected.
			s := game.NewState(g, game.StarProfile(n, int(p.Seed())%n))
			res := dynamics.Run(s, dynamics.GreedyMover, dynamics.RoundRobin{}, 20000)
			if res.Outcome != dynamics.Converged {
				return []sweep.Record{sweep.R("n", n, "alpha", alpha, "converged", res.Outcome.String())}
			}
			sc := s.SocialCost()
			return []sweep.Record{sweep.R("n", n, "alpha", alpha, "converged", true,
				"equals_opt", report.Check(math.Abs(sc-algCost) < 1e-9), "poa", sc/algCost)}
		},
	})
}

func registerThm10() {
	sweep.Register(sweep.Experiment{
		Name: "thm10", Title: "Thm 10: stars are NE on 1-2 hosts for alpha >= 3",
		Tags:  []string{"equilibria"},
		Space: seedSpace(5, 3),
		Run: func(p sweep.Params) []sweep.Record {
			h := game.NewHost(gen.OneTwo(p.Seed(), 8, 0.4))
			alpha := 3 + float64(p.Seed())
			g, prof, err := constructions.Thm10Star(h, alpha, int(p.Seed())%8)
			if err != nil {
				panic(err)
			}
			return []sweep.Record{sweep.R("n", 8, "alpha", alpha, "center", int(p.Seed())%8,
				"exact_ne", report.Check(bestresponse.IsNash(game.NewState(g, prof))))}
		},
	})
}

func registerThm11() {
	sweep.Register(sweep.Experiment{
		Name: "thm11", Title: "Thm 11: equilibrium diameter and PoA vs sqrt(alpha) on random 1-2 hosts",
		Tags: []string{"poa", "simulation"},
		Space: func(quick bool) sweep.Space {
			alphas := sweep.Floats("alpha", 1.5, 3, 6, 12, 25)
			if quick {
				alphas = sweep.Floats("alpha", 1.5, 6)
			}
			return sweep.Space{Axes: []sweep.Axis{alphas}}
		},
		Run: func(p sweep.Params) []sweep.Record {
			worstD, worstR, found := 0.0, 0.0, 0
			for seed := int64(0); seed < 4; seed++ {
				g := game.New(game.NewHost(gen.OneTwo(seed+21, 10, 0.35)), p.Float("alpha"))
				e := poa.EmpiricalPoA(g, 4, seed*101, math.Inf(1))
				if e.Found == 0 {
					continue
				}
				found += e.Found
				worstD = math.Max(worstD, e.Diameter)
				worstR = math.Max(worstR, e.WorstRatio)
			}
			return []sweep.Record{sweep.R("sqrt_alpha", math.Sqrt(p.Float("alpha")),
				"worst_diameter", worstD, "worst_ratio", worstR, "found", found)}
		},
	})
}

func registerThm12() {
	sweep.Register(sweep.Experiment{
		Name: "thm12", Title: "Thm 12: converged BR dynamics on tree metrics yield trees",
		Tags:  []string{"equilibria", "dynamics"},
		Space: seedSpace(6, 3),
		Run: func(p sweep.Params) []sweep.Record {
			n := 7
			tm := gen.Tree(p.Seed(), n, 1, 6)
			alpha := 0.8 + float64(p.Seed())*0.5
			g := game.New(game.NewHost(tm), alpha)
			s := game.NewState(g, game.EmptyProfile(n))
			res := dynamics.Run(s, dynamics.BestResponseMover, dynamics.RoundRobin{}, 600)
			if res.Outcome != dynamics.Converged {
				return []sweep.Record{sweep.R("n", n, "alpha", alpha, "outcome", res.Outcome.String())}
			}
			return []sweep.Record{sweep.R("n", n, "alpha", alpha, "outcome", "converged",
				"exact_ne", report.Check(bestresponse.IsNash(s)),
				"is_tree", report.Check(s.Network().IsTree()))}
		},
	})
}

// scGadget is the shared shape of the two set-cover gadgets.
type scGadget interface {
	DecodeStrategy([]int) (sets []int, other []int)
}

// setCoverCell runs one seed of a set-cover best-response gadget.
func setCoverCell(seed int64, build func(*cover.SCInstance) (scGadget, error)) []sweep.Record {
	sc := gen.SC(seed, 4, 4, 0.45)
	gadget, err := build(sc)
	if err != nil {
		panic(err)
	}
	var g *game.Game
	var u int
	var prof game.Profile
	switch x := gadget.(type) {
	case *constructions.SetCoverTree:
		g, u, prof = x.Game, x.U, x.Profile()
	case *constructions.SetCoverGeo:
		g, u, prof = x.Game, x.U, x.Profile()
	}
	s := game.NewState(g, prof)
	br := bestresponse.Exact(s, u)
	sets, other := gadget.DecodeStrategy(br.Strategy.Elems())
	kmin := len(cover.MinSetCover(sc))
	return []sweep.Record{sweep.R("k", sc.K, "m", len(sc.Sets),
		"br_sets", len(sets), "min_cover", kmin,
		"is_cover", report.Check(sc.IsSetCover(sets)),
		"minimal", report.Check(len(sets) == kmin),
		"pure_set_nodes", report.Check(len(other) == 0))}
}

func registerFig4() {
	sweep.Register(sweep.Experiment{
		Name: "fig4", Title: "Fig. 4 + Thm 13: Set Cover -> best response (T-GNCG)",
		Tags:  []string{"hardness", "gadget"},
		Space: seedSpace(4, 2),
		Run: func(p sweep.Params) []sweep.Record {
			return setCoverCell(p.Seed(), func(sc *cover.SCInstance) (scGadget, error) {
				return constructions.NewSetCoverTree(sc, 100, 0.001, 1)
			})
		},
	})
}

func registerFig5() {
	sweep.Register(sweep.Experiment{
		Name: "fig5", Title: "Fig. 5 + Thm 14: improving-move cycles on tree metrics",
		Note: "the paper's Fig. 5 fixes one 10-node tree; its topology is only in the " +
			"drawing, so FIP violation is certified on exhaustively analyzed 4-node trees.",
		Tags: []string{"dynamics", "fip"},
		Run: func(p sweep.Params) []sweep.Record {
			var recs []sweep.Record
			found := 0
			for seed := int64(0); seed < 6 && found < 3; seed++ {
				tm := gen.Tree(seed, 4, 1, 12)
				for _, alpha := range []float64{0.6, 1, 1.5, 2.5} {
					g := game.New(game.NewHost(tm), alpha)
					w, has, err := dynamics.ExhaustiveFIP(g)
					if err != nil {
						panic(err)
					}
					if !has {
						continue
					}
					recs = append(recs, sweep.R("seed", seed, "n", 4, "alpha", alpha,
						"cycle_found", true, "length", len(w.Profiles)-1,
						"verified", report.Check(dynamics.VerifyFIPWitness(g, w))))
					found++
					break
				}
			}
			if found == 0 {
				recs = append(recs, sweep.R("cycle_found", false, "verified", "FAIL"))
			}
			return recs
		},
	})
}

func registerFig6() {
	sweep.Register(sweep.Experiment{
		Name: "fig6", Title: "Fig. 6 + Thm 15: T-GNCG PoA -> (alpha+2)/2",
		Tags: []string{"poa", "sweep"},
		Space: func(quick bool) sweep.Space {
			ns := sweep.Ints("n", 4, 8, 16, 40, 100)
			if quick {
				ns = sweep.Ints("n", 4, 8, 16)
			}
			return sweep.Space{Axes: []sweep.Axis{sweep.Floats("alpha", 1, 4), ns}}
		},
		Schema: []string{"ratio", "predicted", "limit", "tier", "stable"},
		Run: func(p sweep.Params) []sweep.Record {
			r := poa.SweepThm15(p.Float("alpha"), []int{p.Int("n")})[0]
			return []sweep.Record{sweep.R("ratio", r.Ratio, "predicted", r.Predicted,
				"limit", (p.Float("alpha")+2)/2,
				"tier", r.Tier.String(), "stable", report.Check(r.Stable))}
		},
	})
}

func registerFig7() {
	sweep.Register(sweep.Experiment{
		Name: "fig7", Title: "Fig. 7 + Thm 16: Set Cover -> best response (Rd-GNCG)",
		Tags: []string{"hardness", "gadget"},
		Space: func(quick bool) sweep.Space {
			return sweep.Space{Axes: []sweep.Axis{
				sweep.Floats("norm", 2, 1),
				sweep.Int64s("seed", seeds(4, 2, quick)...),
			}}
		},
		Run: func(p sweep.Params) []sweep.Record {
			return setCoverCell(p.Seed(), func(sc *cover.SCInstance) (scGadget, error) {
				return constructions.NewSetCoverGeo(sc, 100, 0.001, 1, p.Float("norm"))
			})
		},
	})
}

func registerFig8() {
	sweep.Register(sweep.Experiment{
		Name: "fig8", Title: "Fig. 8 + Thm 17: improving-move cycle on the Fig 8 points (1-norm)",
		Note: "the drawing fixes the cyclic profiles and alpha; the point coordinates " +
			"are published and used verbatim — the cycle is re-found by randomized search.",
		Tags:  []string{"dynamics", "fip"},
		Space: space(sweep.Floats("alpha", 0.6, 1, 2)),
		Run: func(p sweep.Params) []sweep.Record {
			// The witness at alpha=1 surfaces around restart 84 of this seeded
			// search; the search is cheap, so quick mode keeps the full budget.
			g := constructions.Fig8Game(p.Float("alpha"))
			w, ok := dynamics.FindCycle(g, dynamics.CycleSearchConfig{
				Restarts: 150, MaxMoves: 2000, EdgeProb: 0.3, Seed: 7, RandomSched: true,
			})
			if !ok {
				return []sweep.Record{sweep.R("cycle", false)}
			}
			return []sweep.Record{sweep.R("cycle", true, "length", w.CycleLen,
				"verified", report.Check(dynamics.VerifyCycle(g, w)))}
		},
	})
}

func registerFig9() {
	sweep.Register(sweep.Experiment{
		Name: "fig9", Title: "Fig. 9 + Lemma 8: geometric path vs star, PoA > 1",
		Tags: []string{"poa", "sweep"},
		Space: func(quick bool) sweep.Space {
			ns := sweep.Ints("n", 3, 4, 5, 6, 8)
			if quick {
				ns = sweep.Ints("n", 3, 4, 5)
			}
			return sweep.Space{Axes: []sweep.Axis{sweep.Floats("alpha", 1, 3), ns}}
		},
		Schema: []string{"ratio", "tier", "stable", "gt_one"},
		Run: func(p sweep.Params) []sweep.Record {
			r := poa.SweepLemma8(p.Float("alpha"), []int{p.Int("n")})[0]
			return []sweep.Record{sweep.R("ratio", r.Ratio, "tier", r.Tier.String(),
				"stable", report.Check(r.Stable), "gt_one", report.Check(r.Ratio > 1))}
		},
	})
}

func registerThm18() {
	sweep.Register(sweep.Experiment{
		Name: "thm18", Title: "Thm 18: four-point closed-form lower bound",
		Tags:  []string{"poa"},
		Space: space(sweep.Floats("alpha", 0.5, 1, 2, 6, 20)),
		Run: func(p sweep.Params) []sweep.Record {
			lb, err := constructions.Thm18FourPoint(p.Float("alpha"))
			if err != nil {
				panic(err)
			}
			s := game.NewState(lb.Game, lb.Equilibrium.Clone())
			exact, err := opt.ExactSmall(lb.Game)
			if err != nil {
				panic(err)
			}
			measured := lb.Ratio()
			return []sweep.Record{sweep.R("measured", measured, "closed_form", lb.Predicted,
				"match", report.Check(math.Abs(measured-lb.Predicted) < 1e-9),
				"ne_exact", report.Check(bestresponse.IsNash(s)),
				"path_is_opt", report.Check(math.Abs(lb.OptimumCost()-exact.Cost) < 1e-6))}
		},
	})
}

func registerFig10() {
	sweep.Register(sweep.Experiment{
		Name: "fig10", Title: "Fig. 10 + Thm 19: l1 cross-polytope, PoA -> (alpha+2)/2",
		Tags: []string{"poa", "sweep"},
		Space: func(quick bool) sweep.Space {
			ns := sweep.Ints("n", 1, 2, 3, 5, 10, 25)
			if quick {
				ns = sweep.Ints("n", 1, 2, 3, 5)
			}
			return sweep.Space{Axes: []sweep.Axis{sweep.Floats("alpha", 1, 4), ns}}
		},
		Schema: []string{"nodes", "ratio", "predicted", "limit", "tier", "stable"},
		Run: func(p sweep.Params) []sweep.Record {
			r := poa.SweepThm19(p.Float("alpha"), []int{p.Int("n")})[0]
			return []sweep.Record{sweep.R("nodes", 2*r.Size+1, "ratio", r.Ratio,
				"predicted", r.Predicted, "limit", (p.Float("alpha")+2)/2,
				"tier", r.Tier.String(), "stable", report.Check(r.Stable))}
		},
	})
}

func registerThm20() {
	sweep.Register(sweep.Experiment{
		Name: "thm20", Title: "Thm 20: non-metric triangle, sigma = ((alpha+2)/2)^2",
		Tags:  []string{"poa", "nonmetric"},
		Space: space(sweep.Floats("alpha", 0.5, 1, 3, 8)),
		Run: func(p sweep.Params) []sweep.Record {
			lb, err := constructions.Thm20Triangle(p.Float("alpha"))
			if err != nil {
				panic(err)
			}
			s := game.NewState(lb.Game, lb.Equilibrium.Clone())
			exact, err := opt.ExactSmall(lb.Game)
			if err != nil {
				panic(err)
			}
			return []sweep.Record{sweep.R("ratio", lb.Ratio(), "limit", (p.Float("alpha")+2)/2,
				"pair_sigma", constructions.Thm20PairSigma(lb),
				"sigma_bound", math.Pow((p.Float("alpha")+2)/2, 2),
				"ne_exact", report.Check(bestresponse.IsNash(s)),
				"opt_exact", report.Check(math.Abs(lb.OptimumCost()-exact.Cost) < 1e-9))}
		},
	})
}

func registerConj1() {
	sweep.Register(sweep.Experiment{
		Name: "conj1", Title: "Conjecture 1: improving-move cycles under p-norms, p >= 2",
		Note: "the paper proves no-FIP only for the 1-norm (Thm 17) and conjectures it " +
			"for all p-norms (Conj. 1); these verified cycles are supporting evidence.",
		Tags: []string{"dynamics", "fip"},
		Space: func(quick bool) sweep.Space {
			norms := sweep.Floats("norm", 2, 3, 5)
			if quick {
				norms = sweep.Floats("norm", 2)
			}
			return sweep.Space{Axes: []sweep.Axis{norms}}
		},
		Run: func(p sweep.Params) []sweep.Record {
			var recs []sweep.Record
			found := 0
			for seed := int64(0); seed < 8 && found < 2; seed++ {
				pts := gen.Points(seed, 4, 2, 10, p.Float("norm"))
				for _, alpha := range []float64{0.6, 1, 1.5, 2.5} {
					g := game.New(game.NewHost(pts), alpha)
					w, has, err := dynamics.ExhaustiveFIP(g)
					if err != nil {
						panic(err)
					}
					if !has {
						continue
					}
					recs = append(recs, sweep.R("seed", seed, "alpha", alpha,
						"cycle", true, "length", len(w.Profiles)-1,
						"verified", report.Check(dynamics.VerifyFIPWitness(g, w))))
					found++
					break
				}
			}
			if found == 0 {
				recs = append(recs, sweep.R("cycle", false, "verified", "FAIL"))
			}
			return recs
		},
	})
}

func registerNCG() {
	sweep.Register(sweep.Experiment{
		Name: "ncg", Title: "NCG baseline (unit weights): classic stable structures",
		Tags: []string{"baseline"},
		Run: func(p sweep.Params) []sweep.Record {
			var recs []sweep.Record
			for _, tc := range []struct {
				n     int
				alpha float64
				star  bool
			}{
				{6, 0.5, false}, // complete graph stable for alpha < 1
				{6, 2, true},    // star stable for alpha > 1
				{8, 4, true},
			} {
				g := game.New(game.NewHost(metric.Unit{N: tc.n}), tc.alpha)
				var prof game.Profile
				name := "complete"
				if tc.star {
					prof = game.StarProfile(tc.n, 0)
					name = "star"
				} else {
					prof = game.EmptyProfile(tc.n)
					for u := 0; u < tc.n; u++ {
						for v := u + 1; v < tc.n; v++ {
							prof.Buy(u, v)
						}
					}
				}
				recs = append(recs, sweep.R("n", tc.n, "alpha", tc.alpha, "structure", name,
					"exact_ne", report.Check(bestresponse.IsNash(game.NewState(g, prof)))))
			}
			return recs
		},
	})
}

func registerOneInf() {
	sweep.Register(sweep.Experiment{
		Name: "oneinf", Title: "1-inf-GNCG: BR dynamics on {1,inf} hosts buy only weight-1 edges",
		Tags:  []string{"model", "dynamics"},
		Space: seedSpace(4, 2),
		Run: func(p sweep.Params) []sweep.Record {
			n := 7
			// Buyable pairs: a random connected unit graph (spanning tree +
			// extras); all other pairs are unbuyable (+inf).
			rng := p.Seed()*17 + 3
			var ones [][2]int
			for v := 1; v < n; v++ {
				ones = append(ones, [2]int{int(rng+int64(v)) % v, v})
			}
			ones = append(ones, [2]int{0, n - 1}, [2]int{1, n - 2})
			oi, err := metric.NewOneInf(n, ones)
			if err != nil {
				panic(err)
			}
			g := game.New(game.NewHost(oi), 1+float64(p.Seed())*0.7)
			// Seed with the buyable spanning tree: on {1,inf} hosts an agent
			// cannot unilaterally repair global connectivity, so all-infinite
			// disconnected states are vacuously stable; from a connected state
			// improving moves keep every mover's cost finite and hence the
			// network connected.
			start := game.EmptyProfile(n)
			for _, e := range ones[:n-1] {
				start.Buy(e[0], e[1])
			}
			s := game.NewState(g, start)
			res := dynamics.Run(s, dynamics.BestResponseMover, dynamics.RoundRobin{}, 600)
			if res.Outcome != dynamics.Converged {
				return []sweep.Record{sweep.R("n", n, "alpha", g.Alpha, "outcome", res.Outcome.String())}
			}
			allOne := true
			for _, e := range s.Network().Edges() {
				if e.W != 1 {
					allOne = false
				}
			}
			return []sweep.Record{sweep.R("n", n, "alpha", g.Alpha, "outcome", "converged",
				"exact_ne", report.Check(bestresponse.IsNash(s)),
				"all_weight_one", report.Check(allOne),
				"connected", report.Check(s.Connected()))}
		},
	})
}

func registerEmpirical() {
	hostFor := func(class string, seed int64) *game.Host {
		switch class {
		case "uniform":
			return game.NewHost(gen.Points(seed*3+1, 8, 2, 10, 2))
		case "clustered":
			return game.NewHost(gen.ClusteredPoints(seed*3+1, 8, 3, 100, 2))
		default:
			panic(fmt.Sprintf("unknown host class %q", class))
		}
	}
	sweep.Register(sweep.Experiment{
		Name: "empirical", Title: "Simulation: empirical PoA of greedy equilibria on random geometric hosts (n=8, multi-start)",
		Tags: []string{"poa", "simulation"},
		Space: space(
			sweep.Strings("host", "uniform", "clustered"),
			sweep.Floats("alpha", 0.5, 1, 2, 4, 8)),
		Schema: []string{"instances", "mean", "median", "max", "bound", "within"},
		Run: func(p sweep.Params) []sweep.Record {
			instances := 16
			if p.Quick {
				instances = 6
			}
			var ratios []float64
			for seed := int64(0); seed < int64(instances); seed++ {
				g := game.New(hostFor(p.Str("host"), seed), p.Float("alpha"))
				e := poa.EmpiricalPoA(g, 4, seed*7+1, (p.Float("alpha")+2)/2)
				if e.Found > 0 {
					ratios = append(ratios, e.WorstRatio)
				}
			}
			s := stats.Summarize(ratios)
			// Greedy equilibria are a superset of NE; the Thm 1 bound
			// applies to NE, so a measured max below the bound is
			// corroboration, not proof. All sampled instances respect it.
			return []sweep.Record{sweep.R("instances", s.N,
				"mean", s.Mean, "median", stats.Median(ratios), "max", s.Max,
				"bound", (p.Float("alpha")+2)/2,
				"within", report.Check(s.Max <= (p.Float("alpha")+2)/2+1e-6))}
		},
	})
}

func registerPoS() {
	sweep.Register(sweep.Experiment{
		Name: "pos", Title: "Extension: exact PoA/PoS by exhaustive census (n=4)",
		Tags: []string{"extension", "poa"},
		Space: func(quick bool) sweep.Space {
			return sweep.Space{Axes: []sweep.Axis{
				sweep.Strings("host", "geometric", "tree"),
				sweep.Int64s("seed", seeds(3, 2, quick)...),
			}}
		},
		Run: func(p sweep.Params) []sweep.Record {
			var g *game.Game
			var alpha float64
			switch p.Str("host") {
			case "geometric":
				alpha = 0.7 + float64(p.Seed())
				g = game.New(game.NewHost(gen.Points(p.Seed(), 4, 2, 10, 2)), alpha)
			case "tree":
				alpha = 1 + float64(p.Seed())*0.8
				g = game.New(game.NewHost(gen.Tree(p.Seed(), 4, 1, 8)), alpha)
			default:
				panic(fmt.Sprintf("unknown host class %q", p.Str("host")))
			}
			c, err := poa.ExhaustiveCensus(g)
			if err != nil {
				panic(err)
			}
			treePoS := "-"
			if p.Str("host") == "tree" {
				treePoS = report.Check(math.Abs(c.PoS()-1) < 1e-9)
			}
			return []sweep.Record{sweep.R("alpha", alpha, "num_ne", c.Nash,
				"exact_poa", c.PoA(), "exact_pos", c.PoS(),
				"poa_within", report.Check(c.PoA() <= (alpha+2)/2+1e-6),
				"tree_pos_one", treePoS)}
		},
	})
}

func registerTable1() {
	sweep.Register(sweep.Experiment{
		Name: "table1", Title: "Table 1 regenerated: measured evidence per model row",
		Tags: []string{"summary"},
		Run: func(p sweep.Params) []sweep.Record {
			thm15 := mustLB(constructions.Thm15Star(100, 4))
			thm19 := mustLB(constructions.Thm19CrossPolytope(25, 4))
			thm18 := mustLB(constructions.Thm18FourPoint(1e6))
			thm20 := mustLB(constructions.Thm20Triangle(4))
			thm8 := mustLB(constructions.Thm8AlphaOne(12))
			row := func(model, evidence, gadget, fip, eq string) sweep.Record {
				return sweep.R("model", model, "poa_evidence", evidence,
					"br_hardness_gadget", gadget, "fip", fip, "equilibria", eq)
			}
			return []sweep.Record{
				row("NCG", "star/complete NE verified", "(special case)", "no (cited)", "NE exists (verified)"),
				row("1-2-GNCG",
					fmt.Sprintf("ratio %.3f -> 3/2 at alpha=1 (N=12)", thm8.Ratio()),
					"VC gadget verified", "no (Cor. 1)", "NE exists (Thm 5/9/10 verified)"),
				row("T-GNCG",
					fmt.Sprintf("ratio %.3f vs (a+2)/2 = 3 at alpha=4", thm15.Ratio()),
					"SetCover gadget verified", "no (4-node cycle verified)", "tree NE exists (Cor. 3)"),
				row("Rd-GNCG l1",
					fmt.Sprintf("ratio %.3f vs limit 3 at alpha=4, d=25", thm19.Ratio()),
					"SetCover geo gadget verified", "no (Fig. 8 cycle verified)", "3(a+1)-NE (Cor. 2 verified)"),
				row("Rd-GNCG p>=2",
					fmt.Sprintf("Thm18 ratio -> %.3f as alpha -> inf", thm18.Ratio()),
					"SetCover geo gadget verified", "? (Conj. 1)", "3(a+1)-NE (Cor. 2 verified)"),
				row("M-GNCG",
					fmt.Sprintf("tight (a+2)/2 via T-GNCG (%.3f at alpha=4)", thm15.Ratio()),
					"(inherits 1-2)", "no (inherits T-GNCG)", "3(a+1)-NE (Cor. 2 verified)"),
				row("GNCG",
					fmt.Sprintf("triangle ratio %.3f = (a+2)/2 at alpha=4; sigma %.3f",
						thm20.Ratio(), constructions.Thm20PairSigma(thm20)),
					"(inherits 1-2)", "no (inherits)", "? (open)"),
			}
		},
	})
}

func mustLB(lb *constructions.LowerBound, err error) *constructions.LowerBound {
	if err != nil {
		panic(err)
	}
	return lb
}

// registerScale is the lazy-host scale ladder: game states on 10k-point
// R^2 hosts, previously infeasible because host construction alone
// materialized an O(n²) matrix (800 MB of float64 at n=10k). Every cost
// here is checked against the closed form for a star network, so the
// ladder is a correctness experiment as well as a scaling one.
func registerScale() {
	sweep.Register(sweep.Experiment{
		Name: "scale", Title: "Scale: lazy-host n-ladder (Rd-GNCG, l2) with closed-form star verification",
		Note: "hosts stay implicit (O(n) memory); sampled agent costs are verified against " +
			"the exact closed form for star networks, and speculative single-edge moves are " +
			"evaluated through the same lazy path used by greedy dynamics.",
		Tags: []string{"scale", "simulation"},
		Space: func(quick bool) sweep.Space {
			ns := sweep.Ints("n", 2500, 5000, 10000)
			if quick {
				ns = sweep.Ints("n", 1000, 2500)
			}
			return sweep.Space{Axes: []sweep.Axis{ns}}
		},
		Schema: []string{"alpha", "star_social_cost", "sampled_costs", "cost_check", "improving_buys"},
		Run: func(p sweep.Params) []sweep.Record {
			n := p.Int("n")
			alpha := 2.0
			h := game.NewHost(gen.Points(7, n, 2, 1000, 2))
			g := game.New(h, alpha)
			s := game.NewState(g, game.StarProfile(n, 0))
			// Closed forms on the star G(s): d(u,v) = w(u,0) + w(0,v), so
			// with S = Σ_{v>0} w(0,v): Cost(leaf u) = (n-2)·w(u,0) + S,
			// Cost(center) = (α+1)·S, and the social cost is
			// α·S + (2n-2)·S... both O(n) to compute.
			S := 0.0
			for v := 1; v < n; v++ {
				S += h.Weight(0, v)
			}
			rng := p.RNG()
			sample := 32
			if sample > n-1 {
				sample = n - 1
			}
			maxErr := 0.0
			for i := 0; i < sample; i++ {
				u := 1 + rng.Intn(n-1)
				want := float64(n-2)*h.Weight(u, 0) + S
				if err := math.Abs(s.Cost(u) - want); err > maxErr {
					maxErr = err
				}
			}
			if err := math.Abs(s.Cost(0) - (alpha+1)*S); err > maxErr {
				maxErr = err
			}
			// Speculative move evaluation (the greedy-dynamics hot path):
			// sample random buys and count strict improvements.
			improving := 0
			for i := 0; i < sample; i++ {
				u := 1 + rng.Intn(n-1)
				v := 1 + rng.Intn(n-1)
				if v == u {
					continue
				}
				m := game.Move{Agent: u, Kind: game.Buy, V: v}
				if g.Improves(s.CostAfter(m), s.Cost(u)) {
					improving++
				}
			}
			return []sweep.Record{sweep.R("n", n, "alpha", alpha,
				"star_social_cost", alpha*S+float64(2*n-2)*S,
				"sampled_costs", sample,
				"cost_check", report.Check(maxErr < 1e-6*S),
				"improving_buys", improving)}
		},
	})
}

// registerScaleGreedy is the greedy-dynamics scale ladder: actual
// BestSingleMove scans and applied moves at n = 500/1000/2500, the
// workload the pruned candidate scan and the incremental distance repair
// (Ramalingam–Reps row repair across each move) exist for. Previously a
// single scan at n = 2500 paid ~n fresh Dijkstras through the
// invalidate-everything cache, capping greedy dynamics near a few hundred
// agents. Each cell also cross-checks repaired rows against fresh
// Dijkstra bit-for-bit, so the ladder doubles as a scale correctness
// experiment.
func registerScaleGreedy() {
	sweep.Register(sweep.Experiment{
		Name: "scale_greedy", Title: "Scale: greedy-dynamics ladder (pruned scans + incremental distance repair)",
		Note: "a deterministic sample of agents plays best single-edge moves from the star; " +
			"cached rows survive every move via in-place repair and are verified bit-equal " +
			"to fresh Dijkstra at the end.",
		Tags: []string{"scale", "dynamics", "simulation"},
		// The full rung set is cheap enough for the CI quick sweep, and
		// keeping both modes identical pins the n=2500 rung into the
		// sharded byte-determinism check.
		Space:  space(sweep.Ints("n", 500, 1000, 2500)),
		Schema: []string{"alpha", "movers", "moves_applied", "mover_cost_saved", "repair_bitexact", "edges_after", "social_cost_after"},
		Run: func(p sweep.Params) []sweep.Record {
			n := p.Int("n")
			alpha := 8.0
			g := game.New(game.NewHost(gen.Points(11, n, 2, 1000, 2)), alpha)
			s := game.NewState(g, game.StarProfile(n, 0))
			rng := p.RNG()
			const movers = 32
			moves, improvedCost := 0, 0.0
			for i := 0; i < movers; i++ {
				u := 1 + rng.Intn(n-1)
				before := s.Cost(u)
				m, after, ok := s.BestSingleMove(u)
				if !ok {
					continue
				}
				s.Apply(m)
				moves++
				improvedCost += before - after
			}
			// Repair correctness at scale: sampled repaired rows must be
			// bit-equal to a fresh Dijkstra on the mutated network.
			bitExact := true
			for i := 0; i < 16; i++ {
				src := rng.Intn(n)
				got := s.Dist(src)
				want := s.Network().Dijkstra(src)
				for x := range want {
					if got[x] != want[x] {
						bitExact = false
					}
				}
			}
			return []sweep.Record{sweep.R("n", n, "alpha", alpha,
				"movers", movers, "moves_applied", moves,
				"mover_cost_saved", improvedCost,
				"repair_bitexact", report.Check(bitExact),
				"edges_after", s.Network().M(),
				"social_cost_after", s.SocialCost())}
		},
	})
}

// equilibriumPathN is the largest rung that runs full rewiring dynamics
// from a deliberately-bad start (a path profile): thousands of applied
// moves before convergence. equilibriumExactN is the largest rung whose
// reached equilibrium is re-verified against the exact (unpruned) move
// oracle for every agent — since PR 6 through the certified parallel
// verifier (game.VerifyGreedyEquilibrium with Exact set), whose
// gain-bound certificates skip most agents' quadratic scans and whose
// workers shard the rest, which is what pushed both limits to 2500:
// the n = 2500 tree rung now plays full path-start dynamics AND gets
// every agent exactly verified. Above equilibriumExactN the oracle
// checks a deterministic 48-agent sample (an exhaustive exact scan at
// n = 10⁴ would dominate the whole sweep, and exact scans at
// path-derived equilibria cost ~100× their star-state price because
// every speculative edge change repairs far more distances).
const (
	equilibriumPathN  = 2500
	equilibriumExactN = 2500
)

// equilibriumConfig picks, per host class, parameters under which greedy
// round-robin dynamics converge (pinned by the nightly gate). The
// choices are deliberate:
//
//   - tree metrics: α = n, path start up to equilibriumPathN (2500
//     since PR 6). The rewiring tier: dynamics converge in a handful
//     of rounds through hundreds-to-thousands of applied moves, to
//     near-optimal equilibria (poa_vs_lb ≈ 1.002–1.01 — Cor. 3
//     territory: tree hosts have PoS 1).
//   - ℓ2 points: α = 16n from the star. Path-start greedy dynamics on
//     ℓ2 hosts hit genuine improving-move cycles (n = 500 cycles
//     forever where n = 250 and n = 1000 converge — found while tuning
//     this ladder, consistent with the paper's Conjecture 1 that
//     p-norm GNCGs lack the FIP), so the ℓ2 rungs certify star
//     equilibria instead of promising a convergence no theorem backs.
//   - 1-2 hosts: α = 3 from the star, which Thm 10 makes a Nash (hence
//     greedy) equilibrium at every n: the rung certifies stability at
//     scale — low-α 1-2 dynamics buy Θ(n²) edges and are not a
//     feasible full-convergence workload.
func equilibriumConfig(class string, n int) (h *game.Host, alpha float64, start game.Profile) {
	switch class {
	case "l2":
		h, alpha = game.NewHost(gen.Points(13, n, 2, 1000, 2)), 16*float64(n)
	case "tree":
		h, alpha = game.NewHost(gen.Tree(13, n, 1, 6)), float64(n)
	case "onetwo":
		h, alpha = game.NewHost(gen.OneTwo(13, n, 0.3)), 3
	default:
		panic(fmt.Sprintf("unknown equilibrium host class %q", class))
	}
	if class == "tree" && n <= equilibriumPathN {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return h, alpha, game.PathProfile(n, order)
	}
	return h, alpha, game.StarProfile(n, 0)
}

// registerEquilibrium is the paper's headline empirical claim run at
// scale: greedy dynamics played to convergence (not a bounded move
// sample) on ℓ2, tree and 1-2 hosts across an n-ladder to 10⁴, with the
// empirical Price of Anarchy measured against the certified optimum
// lower bound α·MST(H) + Σ d_H (opt.LowerBound). Convergence itself
// certifies a greedy equilibrium under the pruned scan; the certified
// parallel verifier (exact oracle for uncertified agents) re-verifies it
// — all agents up to n = 2500, a deterministic sample beyond. Budgets
// are deterministic (rounds/moves, never wall clock) and verification
// verdicts are worker-invariant, so cells stay byte-identical under
// sharding; only the wall-clock verify_ms column (full mode, volatile-
// allowlisted in ci/check_shards.py) differs between runs.
func registerEquilibrium() {
	sweep.Register(sweep.Experiment{
		Name: "equilibrium", Title: "Scale: greedy dynamics to convergence — equilibrium ladder with empirical PoA",
		Note: "tree rungs <= 2500 play path-start rewiring dynamics to convergence; " +
			"other cells certify star equilibria (path-start l2 dynamics can cycle — " +
			"Conjecture 1). The certified parallel verifier re-checks every agent up " +
			"to n = 2500 with the exact unpruned oracle (gain-bound certificates skip " +
			"provably stable agents — cert_skipped — and workers shard the rest) and " +
			"a deterministic sample beyond. poa_vs_lb divides the final " +
			"social cost by a certified OPT lower bound, so it upper-bounds the " +
			"state's true ratio: the rewiring tier lands near 1 (the paper's Sec. 5 " +
			"near-optimality observations), while star certification at large alpha " +
			"sits at the star/MST weight ratio — far below the (alpha+2)/2 bound.",
		Tags: []string{"scale", "dynamics", "equilibrium"},
		Space: func(quick bool) sweep.Space {
			ns := sweep.Ints("n", 500, 1000, 2500, 5000, 10000)
			if quick {
				ns = sweep.Ints("n", 250, 500)
			}
			return sweep.Space{Axes: []sweep.Axis{
				sweep.Strings("host", "l2", "tree", "onetwo"), ns}}
		},
		Schema: []string{"alpha", "outcome", "rounds", "moves", "social_cost", "opt_lb",
			"poa_vs_lb", "exact_oracle_ne",
			"verify_workers", "cert_skipped", "verify_ms",
			"candidate_scans", "candidates_scanned", "excess_skips",
			"exhaustive_scans", "fallbacks",
			"cache_cap", "cache_probe_hits", "cache_probe_misses",
			"cache_probe_evictions", "cache_probe_repairs"},
		Run: func(p sweep.Params) []sweep.Record {
			n := p.Int("n")
			h, alpha, start := equilibriumConfig(p.Str("host"), n)
			g := game.New(h, alpha)
			s := game.NewState(g, start)
			// The round cap guards hypothetical cycling (every cell must
			// terminate deterministically); the validated configurations
			// converge well inside it.
			budget := dynamics.Budget{MaxRounds: 32, MaxMoves: 20 * n}
			res := dynamics.RunToConvergence(s, dynamics.GreedyMover, dynamics.RoundRobin{}, budget)
			// The dynamics' scan telemetry, before verification: the
			// verifier works on clones (their counters are discarded) and
			// the sampled exact oracle runs unpruned scans, which do not
			// count — so these numbers describe exactly the convergence
			// run above.
			scan := s.ScanStats()
			lb := opt.LowerBound(g)

			verified := "-"
			var verification dynamics.Verification
			var haveVerification bool
			if res.Outcome == dynamics.Converged {
				if n <= equilibriumExactN {
					// The certified parallel verifier with the exact oracle:
					// verdict bit-identical to a serial all-agents
					// BestSingleMoveExact sweep (the pre-PR 6 loop here) for
					// any worker count, so the exact_oracle_ne column's
					// encoding is unchanged.
					verification, haveVerification = dynamics.VerifyConvergence(
						res, s, game.VerifyOptions{Exact: true})
					verified = report.Check(verification.Stable)
				} else {
					// 48 distinct agents, drawn without replacement.
					sample := p.RNG().Perm(n)[:48]
					ok := true
					for _, u := range sample {
						_, _, improving := s.BestSingleMoveExact(u)
						if improving {
							ok = false
							break
						}
					}
					verified = report.Check(ok) + " (sampled)"
				}
			}
			kv := []any{"host", p.Str("host"), "n", n, "alpha", alpha,
				"outcome", res.Outcome.String(),
				"rounds", res.Rounds, "moves", res.Moves,
				"social_cost", res.SocialCost, "opt_lb", lb,
				"poa_vs_lb", res.PoA(lb),
				"exact_oracle_ne", verified}
			// Cache observability and verification telemetry ride along in
			// full mode only: quick-mode cells keep their historical
			// byte-exact encoding, the nightly ladder gets the churn data
			// plus worker count / certificate skip rate / wall time of the
			// parallel verify (verify_ms is wall clock, hence volatile:
			// check_shards.py allowlists it when comparing shard merges).
			if !p.Quick {
				kv = append(kv,
					"candidate_scans", scan.CandidateScans,
					"candidates_scanned", scan.CandidatesScanned,
					"excess_skips", scan.ExcessSkips,
					"exhaustive_scans", scan.ExhaustiveScans,
					"fallbacks", scan.Fallbacks)
				st := cacheChurnProbe(s)
				kv = append(kv,
					"cache_cap", st.Capacity,
					"cache_probe_hits", st.Hits,
					"cache_probe_misses", st.Misses,
					"cache_probe_evictions", st.Evictions,
					"cache_probe_repairs", st.BatchRepairs)
				if haveVerification {
					kv = append(kv,
						"verify_workers", verification.Workers,
						"cert_skipped", verification.CertSkipped,
						"verify_ms", verification.Elapsed.Milliseconds())
				}
			}
			return []sweep.Record{sweep.R(kv...)}
		},
	})
}

// cacheChurnProbe answers the ROADMAP's row-cache churn question — does
// round-robin access at n = 10⁴ (where the cap is smaller than n)
// degrade the clock sweep to FIFO? — with the cache's new observability
// counters. It probes a fresh clone of the converged state so the
// numbers are single-threaded-deterministic and hence byte-stable under
// sharding; the live state's own counters include parallel cost queries
// (SocialCost fan-out), whose duplicate-miss accounting is
// timing-dependent. Two sequential round-robin passes over all agents
// measure the steady-state hit rate and eviction churn; a deterministic
// strategy toggle plus a bounded re-read then exercises the batch-repair
// path so all exported counters carry data.
func cacheChurnProbe(s *game.State) game.CacheStats {
	n := s.G.N()
	c := s.Clone()
	for pass := 0; pass < 2; pass++ {
		for u := 0; u < n; u++ {
			c.DistCost(u)
		}
	}
	// Toggle agent 0's ownership of the last agent; if the toggle flips a
	// network edge (it does unless n-1 already buys towards 0), stale
	// cached rows batch-repair on their next read.
	strat := c.P.S[0].Clone()
	if strat.Has(n - 1) {
		strat.Remove(n - 1)
	} else {
		strat.Add(n - 1)
	}
	c.SetStrategy(0, strat)
	for u := 0; u < n && u < 256; u++ {
		c.DistCost(u)
	}
	return c.CacheStats()
}

// registerCycleCensus maps where greedy dynamics on p-norm hosts stop
// converging — the empirical face of the paper's Conjecture 1 (no FIP
// for any p-norm) and of the improving-move cycles PR 4 stumbled on
// while tuning the equilibrium ladder. Each cell plays greedy dynamics
// under dynamics.Run, whose recurrence detector stores every visited
// profile, so a reported cycle is an exact profile recurrence; the cell
// then independently replays the history through dynamics.VerifyCycle.
// The grid is the census ROADMAP asked for and a demo of what the open
// axis space buys: (n, α-scale, scheduler, start-profile) crosses an
// int axis, a float axis and two categorical string axes — a
// combination the engine's old closed five-field grid could not even
// declare.
func registerCycleCensus() {
	sweep.Register(sweep.Experiment{
		Name: "cycle_census", Title: "Conjecture 1 census: greedy-dynamics convergence map on p-norm hosts",
		Note: "alpha = alpha_scale * n. Path starts at moderate alpha are where verified " +
			"improving-move cycles live (exact profile recurrence, independently replayed); " +
			"star starts converge immediately at these alphas. A 'converged' cell is evidence " +
			"of nothing beyond itself — FIP refutation is one-sided.",
		Tags: []string{"dynamics", "conjecture1"},
		Space: func(quick bool) sweep.Space {
			// The full census brackets the α ≈ n transition densely
			// (0.5–1.5 in quarter steps is where path starts flip between
			// converging and cycling) and crosses the host p-norm, since
			// Conjecture 1 claims no FIP for ANY p ∈ [1, ∞]. The full
			// grid also crosses the point-cloud seed — the ROADMAP's
			// remaining ensemble dimension — so "this point cloud
			// cycles" separates from "ℓp clouds cycle". Quick keeps the
			// original seed-13, p=2, scale∈{1,2} slice so its cost (and
			// byte encoding) is unchanged.
			ns := sweep.Ints("n", 40, 60, 80, 100, 150)
			scales := sweep.Floats("alpha_scale", 0.5, 0.75, 1, 1.25, 1.5, 2, 4, 8)
			norms := sweep.Floats("p", 1, 2, math.Inf(1))
			if quick {
				ns = sweep.Ints("n", 80, 100)
				scales = sweep.Floats("alpha_scale", 1, 2)
				norms = sweep.Floats("p", 2)
			}
			axes := []sweep.Axis{ns, scales, norms}
			if !quick {
				axes = append(axes, sweep.Int64s("host_seed", 13, 101, 977))
			}
			axes = append(axes,
				sweep.Strings("sched", "rr", "random"),
				sweep.Strings("start", "path", "star"))
			return sweep.Space{Axes: axes}
		},
		Schema: []string{"alpha", "outcome", "rounds", "moves", "cycle_start", "cycle_len", "verified"},
		Run: func(p sweep.Params) []sweep.Record {
			n := p.Int("n")
			alpha := p.Float("alpha_scale") * float64(n)
			// The quick slice has no host_seed axis and stays on the
			// historical seed-13 cloud.
			hostSeed := int64(13)
			if p.Has("host_seed") {
				hostSeed = p.Int64("host_seed")
			}
			g := game.New(game.NewHost(gen.Points(hostSeed, n, 2, 1000, p.Float("p"))), alpha)
			var start game.Profile
			switch p.Str("start") {
			case "path":
				order := make([]int, n)
				for i := range order {
					order[i] = i
				}
				start = game.PathProfile(n, order)
			case "star":
				start = game.StarProfile(n, 0)
			default:
				panic(fmt.Sprintf("unknown start profile %q", p.Str("start")))
			}
			var sched dynamics.Scheduler = dynamics.RoundRobin{}
			if p.Str("sched") == "random" {
				sched = dynamics.RandomOrder{Rng: p.RNG()}
			}
			s := game.NewState(g, start.Clone())
			res := dynamics.Run(s, dynamics.GreedyMover, sched, 40*n)
			cycleStart, cycleLen, verified := any("-"), any("-"), any("-")
			if res.Outcome == dynamics.CycleDetected {
				w := dynamics.CycleWitness{
					Initial:    start,
					Moves:      res.History,
					CycleStart: res.CycleStart,
					CycleLen:   res.CycleLen,
				}
				cycleStart, cycleLen = res.CycleStart, res.CycleLen
				verified = report.Check(dynamics.VerifyCycle(g, w))
			}
			return []sweep.Record{sweep.R("alpha", alpha,
				"outcome", res.Outcome.String(),
				"rounds", res.Rounds, "moves", res.Moves,
				"cycle_start", cycleStart, "cycle_len", cycleLen,
				"verified", verified)}
		},
	})
}

// registerModelCompare is the rules layer's showcase: the same engine —
// hosts, greedy dynamics, certified parallel verification, OPT lower
// bounds — swept across an axis of *cost models* instead of mere
// parameters. Each cell resolves its model through the rules registry,
// plays greedy round-robin dynamics from a common start, and certifies
// the reached state with the gain-bound verifier at two worker counts,
// recording whether the verdicts agree (they must: verification is
// worker-invariant under every model, which the -race tests in
// internal/rules also pin). The alpha parameter is derived per model
// from the host's own weight scale so all three models play a
// comparable regime: price 1 per unit weight (sum), a flat price of one
// mean edge weight (unit), a budget of three mean edge weights
// (budget).
func registerModelCompare() {
	sweep.Register(sweep.Experiment{
		Name: "model_compare", Title: "Rules axis: greedy dynamics and certified verification across cost models",
		Note: "model=sum is the paper's GNCG; unit prices every edge a flat alpha " +
			"(Fabrikant et al.); budget makes edges free under a per-agent spend cap " +
			"(bounded-budget NCG) — its star start is deliberately over budget, so the " +
			"feasible column shows whether repair moves were taken (deletions never " +
			"improve a distance-only cost, so greedy dynamics keep the inherited star: " +
			"feasibility is a start-state property there, not a convergence failure). " +
			"exact_nash_tier records the model gate: budget deviations are not per-edge " +
			"separable, so the UMFL exact-Nash tier rejects them (greedy certification " +
			"still applies).",
		Tags: []string{"dynamics", "rules", "model"},
		Space: func(quick bool) sweep.Space {
			ns := sweep.Ints("n", 30, 60)
			starts := sweep.Strings("start", "star", "path")
			if quick {
				ns = sweep.Ints("n", 30)
				starts = sweep.Strings("start", "star")
			}
			return sweep.Space{Axes: []sweep.Axis{
				sweep.Strings("model", "sum", "budget", "unit"),
				sweep.Strings("host", "l2", "tree", "onetwo"),
				ns, starts,
			}}
		},
		Schema: []string{"alpha", "outcome", "rounds", "moves", "social_cost",
			"opt_lb", "poa_vs_lb", "feasible", "greedy_stable", "cert_skipped",
			"workers_invariant", "exact_nash_tier"},
		Run: func(p sweep.Params) []sweep.Record {
			n := p.Int("n")
			var h *game.Host
			switch p.Str("host") {
			case "l2":
				h = game.NewHost(gen.Points(13, n, 2, 1000, 2))
			case "tree":
				h = game.NewHost(gen.Tree(13, n, 1, 6))
			case "onetwo":
				h = game.NewHost(gen.OneTwo(13, n, 0.3))
			default:
				panic(fmt.Sprintf("unknown model_compare host class %q", p.Str("host")))
			}
			model := rules.MustByName(p.Str("model"))
			// Mean weight out of node 0, folded in index order: the
			// deterministic scale anchor for the per-model alpha.
			meanW := 0.0
			for v := 1; v < n; v++ {
				meanW += h.Weight(0, v)
			}
			meanW /= float64(n - 1)
			var alpha float64
			switch p.Str("model") {
			case "sum":
				alpha = 1
			case "unit":
				alpha = meanW
			case "budget":
				alpha = 3 * meanW
			default:
				panic(fmt.Sprintf("unknown model_compare model %q", p.Str("model")))
			}
			g := game.NewWithRules(h, alpha, model)
			// Both starts are connected: from a sufficiently disconnected
			// profile no single-edge move yields finite cost under any
			// model, so greedy dynamics would trivially freeze at +Inf.
			start := game.StarProfile(n, 0)
			if p.Str("start") == "path" {
				order := make([]int, n)
				for i := range order {
					order[i] = i
				}
				start = game.PathProfile(n, order)
			}
			s := game.NewState(g, start)
			budget := dynamics.Budget{MaxRounds: 64, MaxMoves: 40 * n}
			res := dynamics.RunToConvergence(s, dynamics.GreedyMover, dynamics.RoundRobin{}, budget)
			lb := opt.LowerBound(g)
			v1 := game.VerifyGreedyEquilibrium(s, game.VerifyOptions{Workers: 1})
			v3 := game.VerifyGreedyEquilibrium(s, game.VerifyOptions{Workers: 3})
			invariant := v1.Stable == v3.Stable && v1.FirstImproving == v3.FirstImproving &&
				v1.CertSkipped == v3.CertSkipped && v1.Scanned == v3.Scanned
			exactTier := "umfl"
			if !model.ExactNashViaUMFL() {
				exactTier = "rejected"
			}
			return []sweep.Record{sweep.R(
				"model", p.Str("model"), "host", p.Str("host"), "n", n,
				"start", p.Str("start"), "alpha", alpha,
				"outcome", res.Outcome.String(),
				"rounds", res.Rounds, "moves", res.Moves,
				"social_cost", res.SocialCost, "opt_lb", lb,
				"poa_vs_lb", res.PoA(lb),
				"feasible", report.Check(s.FeasibleProfile()),
				"greedy_stable", report.Check(v1.Stable),
				"cert_skipped", v1.CertSkipped,
				"workers_invariant", report.Check(invariant),
				"exact_nash_tier", exactTier)}
		},
	})
}
