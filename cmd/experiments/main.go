// Command experiments regenerates the quantitative content of every table
// and figure in "Geometric Network Creation Games" (SPAA 2019): the
// results matrix (Table 1), the model hierarchy (Fig. 1), the hardness
// gadgets (Figs. 2, 4, 7), the PoA lower-bound families (Figs. 3, 6, 9,
// 10 and Thms 8, 15, 18, 19, 20), the dynamics non-convergence witnesses
// (Figs. 5, 8), and the structural lemmas (Lemmas 1-2, Thms 2-3, Cor. 2).
//
// Usage:
//
//	experiments            # run everything
//	experiments fig6 thm18 # run selected experiments
//	experiments -list      # list experiment ids
//	experiments -quick     # smaller size ladders (CI-friendly)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
)

type experiment struct {
	id    string
	title string
	run   func(cfg config)
}

type config struct {
	quick bool
}

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	quick := flag.Bool("quick", false, "smaller size ladders")
	flag.Parse()

	exps := registry()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.id, e.title)
		}
		return
	}
	cfg := config{quick: *quick}
	selected := flag.Args()
	if len(selected) == 0 {
		for _, e := range exps {
			runOne(e, cfg)
		}
		return
	}
	byID := map[string]experiment{}
	for _, e := range exps {
		byID[e.id] = e
	}
	var unknown []string
	for _, id := range selected {
		if _, ok := byID[id]; !ok {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "unknown experiment ids: %v (use -list)\n", unknown)
		os.Exit(2)
	}
	for _, id := range selected {
		runOne(byID[id], cfg)
	}
}

func runOne(e experiment, cfg config) {
	fmt.Printf("\n######## %s — %s ########\n", e.id, e.title)
	e.run(cfg)
}

func registry() []experiment {
	return []experiment{
		{"fig1", "Fig. 1: model hierarchy classification", runFig1},
		{"thm1", "Thm 1: PoA <= (alpha+2)/2 upper-bound sanity (M-GNCG)", runThm1},
		{"lemmas", "Lemmas 1-2: AE and OPT spanner factors", runLemmas},
		{"approx", "Thm 2 + Thm 3 + Cor. 2: approximate equilibria", runApprox},
		{"fig2", "Fig. 2 + Thm 4: Vertex Cover -> NE-decision gadget", runFig2},
		{"thm5", "Thm 5 + 6: 1-2 NE existence via 3/2-spanners; Algorithm 1", runThm5},
		{"fig3", "Fig. 3 + Thm 8: 1-2 PoA lower bounds (3/2 and 3/(alpha+2))", runFig3},
		{"thm9", "Thm 9: PoA = 1 for alpha < 1/2 (1-2)", runThm9},
		{"thm10", "Thm 10: stars are NE for alpha >= 3 (1-2)", runThm10},
		{"thm11", "Thm 11: PoA = O(sqrt(alpha)) diameter sweep (1-2)", runThm11},
		{"thm12", "Thm 12: NE on tree metrics are trees", runThm12},
		{"fig4", "Fig. 4 + Thm 13: Set Cover -> best response (T-GNCG)", runFig4},
		{"fig5", "Fig. 5 + Thm 14: improving-move cycles on tree metrics", runFig5},
		{"fig6", "Fig. 6 + Thm 15: T-GNCG PoA -> (alpha+2)/2", runFig6},
		{"fig7", "Fig. 7 + Thm 16: Set Cover -> best response (Rd-GNCG)", runFig7},
		{"fig8", "Fig. 8 + Thm 17: improving-move cycle on the Fig 8 points", runFig8},
		{"fig9", "Fig. 9 + Lemma 8: geometric path vs star, PoA > 1", runFig9},
		{"thm18", "Thm 18: four-point closed-form lower bound", runThm18},
		{"fig10", "Fig. 10 + Thm 19: l1 cross-polytope, PoA -> (alpha+2)/2", runFig10},
		{"thm20", "Thm 20: non-metric triangle, sigma = ((alpha+2)/2)^2", runThm20},
		{"conj1", "Conjecture 1: improving-move cycles under p-norms, p >= 2", runConj1},
		{"ncg", "NCG baseline row of Table 1 (unit weights)", runNCG},
		{"oneinf", "1-inf-GNCG row: dynamics on {1,inf} hosts", runOneInf},
		{"empirical", "Simulation: empirical PoA distribution on random hosts", runEmpirical},
		{"pos", "Extension: exact PoA/PoS census on tiny instances", runPoS},
		{"table1", "Table 1: results matrix regenerated", runTable1},
	}
}
