// Command experiments regenerates the quantitative content of every table
// and figure in "Geometric Network Creation Games" (SPAA 2019) through the
// sharded sweep engine (internal/sweep): the results matrix (Table 1), the
// model hierarchy (Fig. 1), the hardness gadgets (Figs. 2, 4, 7), the PoA
// lower-bound families (Figs. 3, 6, 9, 10 and Thms 8, 15, 18, 19, 20), the
// dynamics non-convergence witnesses (Figs. 5, 8, the cycle census), and
// the structural lemmas (Lemmas 1-2, Thms 2-3, Cor. 2).
//
// Usage:
//
//	experiments                        # run everything, print tables
//	experiments -run fig6,thm18        # run selected experiments by name
//	experiments -run poa               # ...or by tag
//	experiments -list                  # list experiment ids, tags, cell counts
//	experiments -quick                 # smaller size ladders (CI-friendly)
//	experiments -out results.json      # deterministic JSON results
//	experiments -csv results.csv       # long-format CSV results
//	experiments -wide dir/             # wide-format CSV, one file per experiment
//	experiments -shards 8 -shard 0     # run shard 0 of 8
//	experiments -workers 4             # bound cell-level parallelism
//
//	experiments merge -out merged.json shard0.json shard1.json ...
//	                                   # combine shard outputs (sweep.Merge)
//	experiments coordinate -shards 4 -out merged.json
//	                                   # launch 4 shard subprocesses and merge
//	experiments serve -job dir/ -shards 4 -out merged.json
//	                                   # durable work-stealing run: journal,
//	                                   # lease protocol, /status endpoint
//	experiments serve -job dir/ -resume
//	                                   # continue a crashed/interrupted job
//	experiments work -connect 127.0.0.1:PORT
//	                                   # join a running job as an extra shard
//
// Sharded runs of the same selection are deterministic: the merged output
// of all K shards is byte-identical to an unsharded run, for any K and
// any worker count. The merge subcommand decodes shard JSON files,
// deduplicates and reorders cells by global sequence number (failing
// loudly if the inputs disagree on a cell's parameters), and re-encodes —
// no manual JSON surgery required. The coordinate subcommand automates
// the whole workflow in one invocation: it re-executes this binary K
// times with static shard assignment (`-shards K -shard i` over the
// deterministic cell sequence), collects the shard JSON, and merges.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"gncg/internal/game"
	"gncg/internal/sweep"
)

// applyCandidateMode resolves the geometric candidate-generation toggle
// from, in precedence order, the -candidates flag, the GNCG_CANDIDATES
// environment variable, and the built-in default (on), applies it
// process-wide, and re-exports the resolved mode into the environment so
// shard and worker subprocesses (coordinate, serve, work) inherit it —
// an A/B sweep stays in one mode across every process it spawns.
func applyCandidateMode(flagVal string) error {
	mode := flagVal
	if mode == "" {
		mode = os.Getenv("GNCG_CANDIDATES")
	}
	switch mode {
	case "":
		mode = "on"
	case "on", "off":
	default:
		return fmt.Errorf("invalid -candidates mode %q (want on or off)", mode)
	}
	game.SetCandidateGeneration(mode == "on")
	return os.Setenv("GNCG_CANDIDATES", mode)
}

// candidatesFlag registers the shared -candidates flag spelling on a
// subcommand flag set.
func candidatesFlag(fs *flag.FlagSet) *string {
	return fs.String("candidates", "", "geometric candidate generation: on or off (default: $GNCG_CANDIDATES, else on)")
}

// registerOnce guards the global registry: main registers exactly once,
// and tests can call ensureRegistered freely.
var registerOnce sync.Once

func ensureRegistered() { registerOnce.Do(registerAll) }

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "merge":
			os.Exit(mergeMain(os.Args[2:], os.Stderr))
		case "coordinate":
			os.Exit(coordinateMain(os.Args[2:], os.Stderr))
		case "serve":
			os.Exit(serveMain(os.Args[2:], os.Stderr))
		case "work":
			os.Exit(workMain(os.Args[2:], os.Stderr))
		}
	}
	list := flag.Bool("list", false, "list experiment ids, tags and cell counts, then exit")
	quick := flag.Bool("quick", false, "smaller size ladders")
	run := flag.String("run", "", "comma-separated experiment names and/or tags (default: all)")
	shards := flag.Int("shards", 1, "total number of shards the sweep is partitioned into")
	shard := flag.Int("shard", 0, "this process's shard index in [0, shards)")
	workers := flag.Int("workers", 0, "worker goroutines per shard (0 = GOMAXPROCS)")
	outPath := flag.String("out", "", "write deterministic JSON results to this file ('-' = stdout)")
	csvPath := flag.String("csv", "", "write long-format CSV results to this file ('-' = stdout)")
	widePath := flag.String("wide", "", "write wide-format CSV results (one <experiment>.csv per experiment) into this directory")
	tables := flag.Bool("tables", true, "render result tables to stdout")
	progress := flag.Bool("progress", false, "report per-cell progress on stderr")
	candidates := flag.String("candidates", "", "geometric candidate generation: on or off (default: $GNCG_CANDIDATES, else on)")
	flag.Parse()

	if err := applyCandidateMode(*candidates); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ensureRegistered()

	if *list {
		for _, e := range sweep.All() {
			fmt.Printf("%-12s %-28s cells=%-3d %s\n",
				e.Name, "["+strings.Join(e.Tags, ",")+"]", len(e.Cells(*quick)), e.Title)
		}
		fmt.Printf("\ntags: %s\n", strings.Join(sweep.Tags(), ", "))
		return
	}

	// Positional arguments are accepted as extra selectors, preserving the
	// old `experiments fig6 thm18` invocation style.
	spec := *run
	if args := flag.Args(); len(args) > 0 {
		if spec != "" {
			spec += ","
		}
		spec += strings.Join(args, ",")
	}
	exps, err := sweep.Select(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v (use -list)\n", err)
		os.Exit(2)
	}

	if *outPath == "-" && *csvPath == "-" {
		fmt.Fprintln(os.Stderr, "-out - and -csv - cannot share stdout")
		os.Exit(2)
	}
	// Machine-readable output on stdout must not be interleaved with the
	// text tables; drop the tables unless the user explicitly forced them.
	if *outPath == "-" || *csvPath == "-" {
		explicit := false
		flag.Visit(func(f *flag.Flag) { explicit = explicit || f.Name == "tables" })
		if !explicit {
			*tables = false
		}
	}

	cfg := sweep.Config{
		Quick: *quick, Workers: *workers,
		Shards: *shards, Shard: *shard,
	}
	if *progress {
		cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	rs, err := sweep.Run(exps, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *tables {
		sweep.RenderText(os.Stdout, rs)
	}
	if err := writeResults(rs, *outPath, *csvPath, *widePath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := rs.FirstErr(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// mergeMain implements the merge subcommand: decode shard JSON outputs,
// combine them with sweep.Merge and re-encode. Merging all K shards of a
// run reproduces the unsharded output byte-for-byte; inputs that
// disagree on a cell's parameters (shards of different runs or binaries)
// fail loudly instead of silently dropping a version.
func mergeMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	outPath := fs.String("out", "-", "write merged JSON to this file ('-' = stdout)")
	csvPath := fs.String("csv", "", "write merged long-format CSV to this file ('-' = stdout)")
	widePath := fs.String("wide", "", "write merged wide-format CSV (one <experiment>.csv per experiment) into this directory")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: experiments merge [-out merged.json] [-csv merged.csv] [-wide dir] shard.json...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	files := fs.Args()
	if len(files) == 0 {
		fs.Usage()
		return 2
	}
	if *outPath == "-" && *csvPath == "-" {
		fmt.Fprintln(stderr, "-out - and -csv - cannot share stdout")
		return 2
	}
	merged, code := mergeFiles(files, stderr)
	if code != 0 {
		return code
	}
	if err := writeResults(merged, *outPath, *csvPath, *widePath); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

// mergeFiles decodes shard JSON files, merges them (failing loudly on
// disagreeing cells) and restores rendering metadata from the registry —
// the shared tail of the merge and coordinate subcommands. On failure it
// reports to stderr and returns a nonzero exit code.
func mergeFiles(files []string, stderr io.Writer) (*sweep.ResultSet, int) {
	var sets []*sweep.ResultSet
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return nil, 1
		}
		rs, err := sweep.DecodeJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", path, err)
			return nil, 1
		}
		sets = append(sets, rs)
	}
	merged, err := sweep.Merge(sets...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return nil, 1
	}
	// The interchange format strips rendering metadata; wide-CSV schemas
	// come back from the registry.
	ensureRegistered()
	merged.AttachMeta()
	return merged, 0
}

// coordinateMain implements the coordinate subcommand: the shard-launch
// coordinator the sharding workflow previously left to hand-rolled CI
// matrices. It re-executes this binary as K shard subprocesses with
// static assignment over the deterministic cell sequence (`-shards K
// -shard i`), collects their JSON, and merges — so the output is
// byte-identical to an unsharded run of the same selection.
func coordinateMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("coordinate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	shards := fs.Int("shards", 2, "number of shard subprocesses to launch")
	quick := fs.Bool("quick", false, "smaller size ladders")
	run := fs.String("run", "", "comma-separated experiment names and/or tags (default: all)")
	workers := fs.Int("workers", 0, "worker goroutines per shard (0 = GOMAXPROCS each; beware oversubscription)")
	outPath := fs.String("out", "", "write merged JSON to this file ('-' = stdout)")
	csvPath := fs.String("csv", "", "write merged long-format CSV to this file ('-' = stdout)")
	widePath := fs.String("wide", "", "write merged wide-format CSV (one <experiment>.csv per experiment) into this directory")
	shardDir := fs.String("shard-dir", "", "keep per-shard JSON files (shard-<i>.json) in this directory (default: a temp dir, removed)")
	progress := fs.Bool("progress", false, "shards report per-cell progress on stderr")
	candidates := candidatesFlag(fs)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: experiments coordinate -shards K [-quick] [-run spec] [-out merged.json] [-csv merged.csv] [-wide dir] [selector...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *shards < 1 {
		fmt.Fprintf(stderr, "coordinate: -shards %d out of range\n", *shards)
		return 2
	}
	if err := applyCandidateMode(*candidates); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *outPath == "-" && *csvPath == "-" {
		fmt.Fprintln(stderr, "-out - and -csv - cannot share stdout")
		return 2
	}
	spec := *run
	if rest := fs.Args(); len(rest) > 0 {
		if spec != "" {
			spec += ","
		}
		spec += strings.Join(rest, ",")
	}
	// Validate the selection up front: a bad selector should fail once
	// here, not K times in the children.
	ensureRegistered()
	if _, err := sweep.Select(spec); err != nil {
		fmt.Fprintf(stderr, "%v (use -list)\n", err)
		return 2
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "coordinate: cannot locate own binary: %v\n", err)
		return 1
	}
	dir := *shardDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "gncg-shards-")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	// The K children stream diagnostics live, one "[shard N]"-prefixed
	// line at a time, onto one serialized writer — long sweeps stay
	// observable while running. A crashed child is retried with bounded
	// backoff (the shard is a deterministic pure function of its index,
	// so a rerun reproduces it exactly); a child exiting 1 wrote its
	// results but carried a failed cell, which retrying cannot change, so
	// it is not relaunched.
	out := &lockedWriter{w: stderr}
	files := make([]string, *shards)
	errs := make([]error, *shards)
	var wg sync.WaitGroup
	for i := 0; i < *shards; i++ {
		files[i] = filepath.Join(dir, fmt.Sprintf("shard-%d.json", i))
		cargs := []string{
			"-run", spec, "-tables=false",
			"-shards", fmt.Sprint(*shards), "-shard", fmt.Sprint(i),
			"-workers", fmt.Sprint(*workers),
			"-out", files[i],
		}
		if *quick {
			cargs = append(cargs, "-quick")
		}
		if *progress {
			cargs = append(cargs, "-progress")
		}
		wg.Add(1)
		go func(i int, cargs []string) {
			defer wg.Done()
			errs[i] = superviseChild(childSpec{
				exe: exe, args: cargs, prefix: fmt.Sprintf("[shard %d] ", i), out: out,
				attempts: 3, backoff: 500 * time.Millisecond,
				noRetryExit: []int{1, 2},
			})
		}(i, cargs)
	}
	wg.Wait()
	failed := false
	for i, err := range errs {
		if err != nil {
			// Exit 1 means the shard's results were written but carry a
			// failed cell; the merged FirstErr below reports it properly.
			// Any other failure (still crashing after retries) is fatal.
			var ee *exec.ExitError
			if errors.As(err, &ee) && ee.ExitCode() == 1 {
				failed = true
				continue
			}
			fmt.Fprintf(stderr, "coordinate: shard %d: %v\n", i, err)
			return 1
		}
	}
	merged, code := mergeFiles(files, stderr)
	if code != 0 {
		return code
	}
	if err := writeResults(merged, *outPath, *csvPath, *widePath); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := merged.FirstErr(); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if failed {
		fmt.Fprintln(stderr, "coordinate: a shard exited 1 but the merged set carries no failed cell")
		return 1
	}
	return 0
}

// lockedWriter serializes concurrent writers (the coordinator's shard
// subprocesses) onto one underlying stream.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// writeResults writes the selected encodings of one result set: JSON,
// long-format CSV, and the per-experiment wide-format CSV directory.
func writeResults(rs *sweep.ResultSet, outPath, csvPath, widePath string) error {
	if err := writeOut(outPath, rs.EncodeJSON); err != nil {
		return err
	}
	if err := writeOut(csvPath, rs.EncodeCSV); err != nil {
		return err
	}
	if widePath == "" {
		return nil
	}
	if err := os.MkdirAll(widePath, 0o755); err != nil {
		return err
	}
	for _, w := range rs.WideTables() {
		path := filepath.Join(widePath, w.Experiment+".csv")
		if err := writeOut(path, w.Table.EncodeCSV); err != nil {
			return err
		}
	}
	return nil
}

func writeOut(path string, encode func(w io.Writer) error) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		return encode(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
