// Command experiments regenerates the quantitative content of every table
// and figure in "Geometric Network Creation Games" (SPAA 2019) through the
// sharded sweep engine (internal/sweep): the results matrix (Table 1), the
// model hierarchy (Fig. 1), the hardness gadgets (Figs. 2, 4, 7), the PoA
// lower-bound families (Figs. 3, 6, 9, 10 and Thms 8, 15, 18, 19, 20), the
// dynamics non-convergence witnesses (Figs. 5, 8), and the structural
// lemmas (Lemmas 1-2, Thms 2-3, Cor. 2).
//
// Usage:
//
//	experiments                        # run everything, print tables
//	experiments -run fig6,thm18        # run selected experiments by name
//	experiments -run poa               # ...or by tag
//	experiments -list                  # list experiment ids, tags, cell counts
//	experiments -quick                 # smaller size ladders (CI-friendly)
//	experiments -out results.json      # deterministic JSON results
//	experiments -csv results.csv       # long-format CSV results
//	experiments -shards 8 -shard 0     # run shard 0 of 8
//	experiments -workers 4             # bound cell-level parallelism
//
//	experiments merge -out merged.json shard0.json shard1.json ...
//	                                   # combine shard outputs (sweep.Merge)
//
// Sharded runs of the same selection are deterministic: the merged output
// of all K shards is byte-identical to an unsharded run, for any K and
// any worker count. The merge subcommand decodes shard JSON files,
// deduplicates and reorders cells by global sequence number, and
// re-encodes — no manual JSON surgery required.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"gncg/internal/sweep"
)

// registerOnce guards the global registry: main registers exactly once,
// and tests can call ensureRegistered freely.
var registerOnce sync.Once

func ensureRegistered() { registerOnce.Do(registerAll) }

func main() {
	if len(os.Args) > 1 && os.Args[1] == "merge" {
		os.Exit(mergeMain(os.Args[2:], os.Stderr))
	}
	list := flag.Bool("list", false, "list experiment ids, tags and cell counts, then exit")
	quick := flag.Bool("quick", false, "smaller size ladders")
	run := flag.String("run", "", "comma-separated experiment names and/or tags (default: all)")
	shards := flag.Int("shards", 1, "total number of shards the sweep is partitioned into")
	shard := flag.Int("shard", 0, "this process's shard index in [0, shards)")
	workers := flag.Int("workers", 0, "worker goroutines per shard (0 = GOMAXPROCS)")
	outPath := flag.String("out", "", "write deterministic JSON results to this file ('-' = stdout)")
	csvPath := flag.String("csv", "", "write long-format CSV results to this file ('-' = stdout)")
	tables := flag.Bool("tables", true, "render result tables to stdout")
	progress := flag.Bool("progress", false, "report per-cell progress on stderr")
	flag.Parse()

	ensureRegistered()

	if *list {
		for _, e := range sweep.All() {
			fmt.Printf("%-10s %-28s cells=%-3d %s\n",
				e.Name, "["+strings.Join(e.Tags, ",")+"]", len(e.Cells(*quick)), e.Title)
		}
		fmt.Printf("\ntags: %s\n", strings.Join(sweep.Tags(), ", "))
		return
	}

	// Positional arguments are accepted as extra selectors, preserving the
	// old `experiments fig6 thm18` invocation style.
	spec := *run
	if args := flag.Args(); len(args) > 0 {
		if spec != "" {
			spec += ","
		}
		spec += strings.Join(args, ",")
	}
	exps, err := sweep.Select(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v (use -list)\n", err)
		os.Exit(2)
	}

	if *outPath == "-" && *csvPath == "-" {
		fmt.Fprintln(os.Stderr, "-out - and -csv - cannot share stdout")
		os.Exit(2)
	}
	// Machine-readable output on stdout must not be interleaved with the
	// text tables; drop the tables unless the user explicitly forced them.
	if *outPath == "-" || *csvPath == "-" {
		explicit := false
		flag.Visit(func(f *flag.Flag) { explicit = explicit || f.Name == "tables" })
		if !explicit {
			*tables = false
		}
	}

	cfg := sweep.Config{
		Quick: *quick, Workers: *workers,
		Shards: *shards, Shard: *shard,
	}
	if *progress {
		cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	rs, err := sweep.Run(exps, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *tables {
		sweep.RenderText(os.Stdout, rs)
	}
	if err := writeOut(*outPath, rs.EncodeJSON); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := writeOut(*csvPath, rs.EncodeCSV); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := rs.FirstErr(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// mergeMain implements the merge subcommand: decode shard JSON outputs,
// combine them with sweep.Merge and re-encode. Merging all K shards of a
// run reproduces the unsharded output byte-for-byte.
func mergeMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	outPath := fs.String("out", "-", "write merged JSON to this file ('-' = stdout)")
	csvPath := fs.String("csv", "", "write merged long-format CSV to this file ('-' = stdout)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: experiments merge [-out merged.json] [-csv merged.csv] shard.json...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	files := fs.Args()
	if len(files) == 0 {
		fs.Usage()
		return 2
	}
	if *outPath == "-" && *csvPath == "-" {
		fmt.Fprintln(stderr, "-out - and -csv - cannot share stdout")
		return 2
	}
	var sets []*sweep.ResultSet
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		rs, err := sweep.DecodeJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", path, err)
			return 1
		}
		sets = append(sets, rs)
	}
	merged := sweep.Merge(sets...)
	if err := writeOut(*outPath, merged.EncodeJSON); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := writeOut(*csvPath, merged.EncodeCSV); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

func writeOut(path string, encode func(w io.Writer) error) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		return encode(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
