package main

import (
	"fmt"

	"gncg/internal/dynamics"
	"gncg/internal/game"
	"gncg/internal/gen"
	"gncg/internal/graph"
	"gncg/internal/metric"
	"gncg/internal/parallel"
	"gncg/internal/report"
	"gncg/internal/sweep"
)

// The equilibrium_xl ladder is the geometric candidate generation
// tentpole run at the scale it exists for: n = 25000 / 50000 / 100000 on
// ℓ2 and tree hosts — sizes where an exhaustive O(n) best-response scan
// per agent (let alone the O(n log n) bound-sort behind it) stops being
// a feasible per-round unit of work. It is registered as its own
// experiment rather than extra rungs of `equilibrium` for two reasons:
// the 1-2 host axis cannot come along (its dense boolean matrix is Θ(n²)
// memory), and the nightly workflow runs this ladder once, unsharded, in
// a dedicated step outside the sharded determinism drill — so its tags
// deliberately match none of the nightly's other -run selections.
//
// The certified OPT lower bound α·MST(H) + Σ_{u≠v} d_H(u,v) is computed
// by host-specific O(n²)-or-better routines below instead of
// opt.LowerBound, whose generic Prim pass over Host.Weight (an interface
// call, O(log n) LCA on tree hosts) prices a 10⁵-vertex cell in tens of
// minutes on its own.

// xlSampleFull / xlSampleHuge size the deterministic exact-oracle spot
// check of the reached state: 48 agents (matching the equilibrium
// ladder's sampled tier) up to xlSampleCut, 16 beyond — an exact scan
// replays every candidate move with no pruning, so its price per agent
// grows superlinearly with n and the sample shrinks where the scan is
// dearest.
const (
	xlSampleCut  = 25000
	xlSampleFull = 48
	xlSampleHuge = 16
)

// xlVerifyWorkers caps verification parallelism by footprint: each
// verify worker clones the state, and a clone's profile bitsets alone
// are n²/8 bytes — 1.25 GB at n = 10⁵ — so the largest rungs bound the
// clone count instead of taking a worker per core. Verdicts are
// worker-count-invariant by the verifier's contract; only wall time and
// memory change.
func xlVerifyWorkers(n int) int {
	if n > xlSampleCut {
		return 4
	}
	return 0 // GOMAXPROCS
}

func registerEquilibriumXL() {
	sweep.Register(sweep.Experiment{
		Name: "equilibrium_xl", Title: "Scale: greedy dynamics at n = 10⁵ — geometric candidate generation ladder",
		Note: "Star-start greedy dynamics on l2 (alpha = 16n) and tree (alpha = n) hosts " +
			"at sizes only the geometric scan tiers reach: the excess certificate and " +
			"the CandidateSource cutoff radius keep per-agent scans output-sensitive, " +
			"and the candidate_* columns record how each cell's scans were served " +
			"(the nightly gate pins the tree n = 25000 rung to zero fallbacks). " +
			"ne_certified is the parallel certified verifier over ALL agents " +
			"(gain-bound certificates + pruned scans, verdict worker-invariant); " +
			"exact_sample_ne re-checks a deterministic sample of non-center agents " +
			"against the unpruned exact oracle — the star center, owning n-1 edges, " +
			"would cost a Θ(n²) exact swap scan and is covered by the certified tier. " +
			"opt_lb uses host-specific O(n²) closed forms (tree closures: the defining " +
			"tree is an MST of its own closure, and per-edge cut counting folds the " +
			"distance sum in O(n)).",
		Tags: []string{"xl"},
		Space: func(quick bool) sweep.Space {
			ns := sweep.Ints("n", 25000, 50000, 100000)
			if quick {
				ns = sweep.Ints("n", 400)
			}
			return sweep.Space{Axes: []sweep.Axis{
				sweep.Strings("host", "l2", "tree"), ns}}
		},
		Schema: []string{"alpha", "outcome", "rounds", "moves", "social_cost", "opt_lb",
			"poa_vs_lb", "ne_certified", "exact_sample_ne",
			"verify_workers", "cert_skipped", "verify_ms",
			"candidate_scans", "candidates_scanned", "excess_skips",
			"exhaustive_scans", "fallbacks"},
		Run: func(p sweep.Params) []sweep.Record {
			n := p.Int("n")
			class := p.Str("host")
			var (
				h             *game.Host
				alpha         float64
				mstW, distSum float64
			)
			switch class {
			case "l2":
				ps := gen.Points(13, n, 2, 1000, 2)
				h, alpha = game.NewHost(ps), 16*float64(n)
				mstW, distSum = l2MSTWeight(ps.Coords), l2DistanceSum(ps.Coords)
			case "tree":
				tm := gen.Tree(13, n, 1, 6)
				h, alpha = game.NewHost(tm), float64(n)
				edges := tm.Edges()
				mstW, distSum = edgeWeightSum(edges), treeClosureDistanceSum(n, edges)
			default:
				panic(fmt.Sprintf("unknown equilibrium_xl host class %q", class))
			}
			g := game.New(h, alpha)
			lb := g.Rules().SpanningEdgeCostLB(alpha, mstW, n) + distSum
			s := game.NewState(g, game.StarProfile(n, 0))
			budget := dynamics.Budget{MaxRounds: 32, MaxMoves: 20 * n}
			res := dynamics.RunToConvergence(s, dynamics.GreedyMover, dynamics.RoundRobin{}, budget)
			// Scan telemetry of the convergence run alone: verification
			// works on clones (counters discarded) and the exact-oracle
			// sample runs unpruned scans, which never count.
			scan := s.ScanStats()

			certified := "-"
			var verification dynamics.Verification
			var haveVerification bool
			if res.Outcome == dynamics.Converged {
				verification, haveVerification = dynamics.VerifyConvergence(
					res, s, game.VerifyOptions{Workers: xlVerifyWorkers(n)})
				certified = report.Check(verification.Stable)
			}
			sampled := "-"
			if !p.Quick && res.Outcome == dynamics.Converged {
				k := xlSampleFull
				if n > xlSampleCut {
					k = xlSampleHuge
				}
				// Distinct non-center agents, drawn without replacement.
				sample := p.RNG().Perm(n - 1)[:k]
				ok := true
				for _, u := range sample {
					_, _, improving := s.BestSingleMoveExact(u + 1)
					if improving {
						ok = false
						break
					}
				}
				sampled = fmt.Sprintf("%s (%d sampled)", report.Check(ok), k)
			}
			kv := []any{"host", class, "n", n, "alpha", alpha,
				"outcome", res.Outcome.String(),
				"rounds", res.Rounds, "moves", res.Moves,
				"social_cost", res.SocialCost, "opt_lb", lb,
				"poa_vs_lb", res.PoA(lb),
				"ne_certified", certified,
				"exact_sample_ne", sampled}
			// Full mode only, like the equilibrium ladder: quick cells stay
			// byte-identical between candidate modes (the candidate-exactness
			// gate compares them), and scan counters differ by mode by
			// design; verify_ms is wall clock on top.
			if !p.Quick {
				kv = append(kv,
					"candidate_scans", scan.CandidateScans,
					"candidates_scanned", scan.CandidatesScanned,
					"excess_skips", scan.ExcessSkips,
					"exhaustive_scans", scan.ExhaustiveScans,
					"fallbacks", scan.Fallbacks)
				if haveVerification {
					kv = append(kv,
						"verify_workers", verification.Workers,
						"cert_skipped", verification.CertSkipped,
						"verify_ms", verification.Elapsed.Milliseconds())
				}
			}
			return []sweep.Record{sweep.R(kv...)}
		},
	})
}

// l2MSTWeight is opt.metricMSTWeight specialized to raw ℓ2 coordinates:
// Prim with an O(n) frontier array, O(n²) distance evaluations with no
// interface dispatch. Deterministic — minimum-key vertex by lowest index
// on ties, weights folded in insertion order.
func l2MSTWeight(coords [][]float64) float64 {
	n := len(coords)
	if n <= 1 {
		return 0
	}
	inTree := make([]bool, n)
	key := make([]float64, n)
	for v := 1; v < n; v++ {
		key[v] = metric.PNormDist(coords[0], coords[v], 2)
	}
	inTree[0] = true
	total := 0.0
	for round := 1; round < n; round++ {
		best := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (best < 0 || key[v] < key[best]) {
				best = v
			}
		}
		inTree[best] = true
		total += key[best]
		cb := coords[best]
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if w := metric.PNormDist(cb, coords[v], 2); w < key[v] {
					key[v] = w
				}
			}
		}
	}
	return total
}

// l2DistanceSum returns Σ_{u≠v} ||c_u − c_v||₂ over ordered pairs,
// parallel over rows with a deterministic fold.
func l2DistanceSum(coords [][]float64) float64 {
	n := len(coords)
	return parallel.Reduce(n, 0.0,
		func(u int) float64 {
			row := 0.0
			cu := coords[u]
			for v := 0; v < n; v++ {
				if v != u {
					row += metric.PNormDist(cu, coords[v], 2)
				}
			}
			return row
		},
		func(a, b float64) float64 { return a + b })
}

// edgeWeightSum returns Σ_e w_e — for a tree metric this IS the MST
// weight of the complete closure graph: every closure edge (u,v) weighs
// the full u–v path, so by the cut property no tree edge can be beaten.
func edgeWeightSum(edges []graph.Edge) float64 {
	total := 0.0
	for _, e := range edges {
		total += e.W
	}
	return total
}

// treeClosureDistanceSum returns Σ_{u≠v} d_T(u,v) over ordered pairs in
// O(n): each tree edge e lies on the path of exactly cnt_e·(n−cnt_e)
// unordered pairs, where cnt_e is the vertex count on its child side.
func treeClosureDistanceSum(n int, edges []graph.Edge) float64 {
	head := make([]int32, n+1)
	for _, e := range edges {
		head[e.U+1]++
		head[e.V+1]++
	}
	for v := 0; v < n; v++ {
		head[v+1] += head[v]
	}
	to := make([]int32, 2*len(edges))
	ew := make([]float64, 2*len(edges))
	next := append([]int32(nil), head[:n]...)
	for _, e := range edges {
		to[next[e.U]], ew[next[e.U]] = int32(e.V), e.W
		next[e.U]++
		to[next[e.V]], ew[next[e.V]] = int32(e.U), e.W
		next[e.V]++
	}
	parent := make([]int32, n)
	parentW := make([]float64, n)
	order := make([]int32, 0, n)
	seen := make([]bool, n)
	parent[0], seen[0] = -1, true
	stack := append(make([]int32, 0, 64), 0)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		for e := head[v]; e < head[v+1]; e++ {
			c := to[e]
			if !seen[c] {
				seen[c] = true
				parent[c], parentW[c] = v, ew[e]
				stack = append(stack, c)
			}
		}
	}
	// order places every parent before its children; the reverse walk
	// accumulates subtree sizes bottom-up.
	size := make([]int64, n)
	total := 0.0
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		size[v]++
		if p := parent[v]; p >= 0 {
			size[p] += size[v]
			cnt := float64(size[v])
			total += 2 * parentW[v] * cnt * (float64(n) - cnt)
		}
	}
	return total
}
