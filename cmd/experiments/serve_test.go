package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"gncg/internal/coord"
	"gncg/internal/sweep"
)

// refServe computes the uninterrupted unsharded reference for the cheap
// selection: the canonical JSON plus every wide CSV, the exact bytes any
// serve run — however crashed and resumed — must reproduce.
func refServe(t *testing.T) (refJSON string, refWide map[string]string) {
	t.Helper()
	exps := selectCheap(t)
	ref, err := sweep.Run(exps, sweep.Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ref.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	refJSON = buf.String()
	refWide = map[string]string{}
	for _, w := range ref.WideTables() {
		var wb bytes.Buffer
		if err := w.Table.EncodeCSV(&wb); err != nil {
			t.Fatal(err)
		}
		refWide[w.Experiment] = wb.String()
	}
	return refJSON, refWide
}

func checkWide(t *testing.T, dir string, refWide map[string]string) {
	t.Helper()
	for name, want := range refWide {
		got, err := os.ReadFile(filepath.Join(dir, name+".csv"))
		if err != nil {
			t.Fatalf("wide CSV for %s: %v", name, err)
		}
		if string(got) != want {
			t.Fatalf("wide CSV for %s differs from unsharded run", name)
		}
	}
}

// TestServeSubcommand drives a clean work-stealing service run end to
// end through the CLI surface: serveMain launches real `work` shard
// subprocesses (this test binary in child mode) over loopback HTTP, and
// the merged output must be byte-identical to the plain unsharded run.
func TestServeSubcommand(t *testing.T) {
	t.Setenv("GNCG_EXPERIMENTS_CHILD", "1")
	refJSON, refWide := refServe(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "out.json")
	wideDir := filepath.Join(dir, "wide")
	var stderr bytes.Buffer
	code := serveMain([]string{
		"-job", filepath.Join(dir, "job"), "-shards", "2", "-quick",
		"-run", cheapSelection, "-out", out, "-wide", wideDir,
	}, &stderr)
	if code != 0 {
		t.Fatalf("serveMain exited %d: %s", code, stderr.String())
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != refJSON {
		t.Fatal("serve output differs from unsharded run")
	}
	checkWide(t, wideDir, refWide)
	// The journal must carry every cell verbatim (the nightly gate diffs
	// it against the full output).
	if _, err := os.Stat(filepath.Join(dir, "job", "journal.jsonl")); err != nil {
		t.Fatal(err)
	}
}

// TestServeKillResume is the CLI crash drill: a real serve subprocess is
// SIGKILLed mid-job with cells journaled but the job incomplete, then
// `serve -resume` (inheriting selection and quick from the journal
// header) finishes the remainder. Output must be byte-identical to the
// uninterrupted unsharded run, and the resumed coordinator must start
// from the journaled progress instead of recomputing.
func TestServeKillResume(t *testing.T) {
	t.Setenv("GNCG_EXPERIMENTS_CHILD", "1")
	refJSON, refWide := refServe(t)
	dir := t.TempDir()
	jobDir := filepath.Join(dir, "job")

	// Phase 1: a coordinator with no local shards — progress happens only
	// when we make it, so the kill window is deterministic.
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	var serveLog bytes.Buffer
	cmd := exec.Command(exe, "serve", "-job", jobDir, "-shards", "0",
		"-quick", "-run", cheapSelection, "-out", filepath.Join(dir, "never.json"))
	cmd.Stderr = &serveLog
	cmd.Stdout = &serveLog
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	addr := waitForAddr(t, jobDir, &serveLog)

	// Stage partial progress through the real lease protocol: an external
	// worker with a 2-lease budget journals a few cells and exits.
	resolve := func(spec string, quick bool) ([]sweep.Experiment, error) {
		ensureRegistered()
		return sweep.Select(spec)
	}
	if err := coord.RunWorker(addr, coord.WorkerOptions{
		Name: "stager", Resolve: resolve, MaxLeases: 2, Batch: 2,
	}); err != nil {
		t.Fatal(err)
	}

	// The /status endpoint of the live subprocess must show a genuinely
	// partial running job before we pull the trigger.
	st := getStatus(t, addr)
	if st.State != "running" || st.Progress.Done == 0 || st.Progress.Done >= st.Job.Cells {
		t.Fatalf("staged status not mid-run: %+v", st)
	}
	staged := st.Progress.Done

	// SIGKILL: no shutdown hooks, no flushing beyond what Append already
	// fsynced. The flock dies with the process.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Phase 2: resume. Selection and -quick are inherited from the
	// journal header — passing them again is deliberately omitted.
	out := filepath.Join(dir, "resumed.json")
	wideDir := filepath.Join(dir, "wide")
	var stderr bytes.Buffer
	code := serveMain([]string{
		"-job", jobDir, "-resume", "-shards", "2",
		"-out", out, "-wide", wideDir,
	}, &stderr)
	if code != 0 {
		t.Fatalf("resume exited %d: %s", code, stderr.String())
	}
	// The resumed coordinator announces the inherited job with the
	// journaled progress intact.
	want := regexp.MustCompile(fmt.Sprintf(`\(%d cells, %d done\)`, st.Job.Cells, staged))
	if !want.MatchString(stderr.String()) {
		t.Fatalf("resume did not start from %d journaled cells:\n%s", staged, stderr.String())
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != refJSON {
		t.Fatal("crash/resume output differs from uninterrupted unsharded run")
	}
	checkWide(t, wideDir, refWide)
	// Resume compacted the crashed journal into a snapshot, which is the
	// canonical encoding of the cells it held.
	snap, err := os.ReadFile(filepath.Join(jobDir, "snapshot.json"))
	if err != nil {
		t.Fatal(err)
	}
	snapSet, err := sweep.DecodeJSON(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if len(snapSet.Cells) != staged {
		t.Fatalf("snapshot holds %d cells, crashed run had journaled %d", len(snapSet.Cells), staged)
	}
}

// TestServeArgErrors covers the CLI guard rails: a job dir is mandatory,
// and resuming under a different selection than the journal header fails
// loudly instead of mixing runs.
func TestServeArgErrors(t *testing.T) {
	var stderr bytes.Buffer
	if code := serveMain(nil, &stderr); code != 2 {
		t.Fatalf("serve without -job exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-job") {
		t.Fatalf("missing-job diagnostic:\n%s", stderr.String())
	}

	// Seed a job dir with one selection, then try to resume another.
	t.Setenv("GNCG_EXPERIMENTS_CHILD", "1")
	dir := t.TempDir()
	stderr.Reset()
	if code := serveMain([]string{"-job", dir, "-shards", "1", "-quick", "-run", "fig1"}, &stderr); code != 0 {
		t.Fatalf("seeding run exited %d: %s", code, stderr.String())
	}
	stderr.Reset()
	if code := serveMain([]string{"-job", dir, "-resume", "-run", "thm20", "-quick"}, &stderr); code != 1 {
		t.Fatalf("resume with mismatched selection exited %d, want 1:\n%s", code, stderr.String())
	}
	// Reopening without -resume must also refuse.
	stderr.Reset()
	if code := serveMain([]string{"-job", dir, "-run", "fig1", "-quick"}, &stderr); code != 1 {
		t.Fatalf("reopen without -resume exited %d, want 1:\n%s", code, stderr.String())
	}
}

func waitForAddr(t *testing.T, jobDir string, log *bytes.Buffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		raw, err := os.ReadFile(filepath.Join(jobDir, "status.addr"))
		if err == nil && len(bytes.TrimSpace(raw)) > 0 {
			return string(bytes.TrimSpace(raw))
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("serve subprocess never wrote status.addr; log:\n%s", log.String())
	return ""
}

func getStatus(t *testing.T, addr string) coord.Status {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st coord.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}
