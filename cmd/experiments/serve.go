package main

// The serve and work subcommands: the always-on face of the sweep
// engine. `experiments serve` opens (or resumes) a durable job store,
// exposes the coordinator over loopback HTTP (lease protocol for shard
// workers, /status and /results for dashboards) and by default launches
// K local `experiments work` subprocesses that lease small cell ranges,
// heartbeat, and checkpoint results incrementally. Any crash — a
// SIGKILLed worker, or the coordinator itself — loses at most the
// in-flight leases: re-running `serve -resume -job DIR` replays the
// journal and computes only what is missing, and the final output is
// byte-identical to a single-process unsharded run.

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"gncg/internal/coord"
	"gncg/internal/sweep"
)

// serveMain implements the serve subcommand.
func serveMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jobDir := fs.String("job", "", "durable job directory (journal + snapshot + status.addr); required")
	resume := fs.Bool("resume", false, "continue the job already journaled in -job (selection inherited from its header)")
	listen := fs.String("listen", "127.0.0.1:0", "HTTP listen address for the lease protocol and the /status endpoint")
	shards := fs.Int("shards", 2, "local worker subprocesses to launch (0 = none; external `experiments work -connect` shards may join)")
	quick := fs.Bool("quick", false, "smaller size ladders")
	run := fs.String("run", "", "comma-separated experiment names and/or tags (default: all)")
	workers := fs.Int("workers", 0, "worker goroutines per shard (0 = GOMAXPROCS each; beware oversubscription)")
	batch := fs.Int("batch", 0, "cells per lease (0 = adaptive: pending/(4*shards), clamped to [1,16])")
	leaseTTL := fs.Duration("lease-ttl", 60*time.Second, "lease heartbeat deadline before cells are re-issued")
	outPath := fs.String("out", "", "write merged JSON to this file ('-' = stdout)")
	csvPath := fs.String("csv", "", "write merged long-format CSV to this file ('-' = stdout)")
	widePath := fs.String("wide", "", "write merged wide-format CSV (one <experiment>.csv per experiment) into this directory")
	progress := fs.Bool("progress", false, "report scheduling and per-cell progress on stderr")
	linger := fs.Duration("linger", 0, "keep /status and /results up this long after completion (POST /shutdown ends it early)")
	candidates := candidatesFlag(fs)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: experiments serve -job DIR [-resume] [-shards K] [-listen addr] [-run spec] [-quick] [-out merged.json] [selector...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jobDir == "" {
		fmt.Fprintln(stderr, "serve: -job DIR is required (the journal is the whole point)")
		fs.Usage()
		return 2
	}
	if err := applyCandidateMode(*candidates); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	spec := *run
	if rest := fs.Args(); len(rest) > 0 {
		if spec != "" {
			spec += ","
		}
		spec += strings.Join(rest, ",")
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	// On resume, inherit the journaled selection unless flags insist;
	// insisting on a different one fails loudly in coord.Open.
	if *resume {
		prev, ok, err := coord.ReadSpec(*jobDir)
		if err != nil {
			fmt.Fprintf(stderr, "serve: %v\n", err)
			return 1
		}
		if ok {
			if !explicit["run"] && len(fs.Args()) == 0 {
				spec = prev.Spec
			}
			if !explicit["quick"] {
				*quick = prev.Quick
			}
		}
	}
	ensureRegistered()
	exps, err := sweep.Select(spec)
	if err != nil {
		fmt.Fprintf(stderr, "%v (use -list)\n", err)
		return 2
	}
	if *outPath == "-" && *csvPath == "-" {
		fmt.Fprintln(stderr, "-out - and -csv - cannot share stdout")
		return 2
	}

	jobSpec := coord.SpecFor(spec, *quick, exps)
	store, err := coord.Open(*jobDir, jobSpec, *resume)
	if err != nil {
		fmt.Fprintf(stderr, "serve: %v\n", err)
		return 1
	}
	defer store.Close()

	logf := func(format string, args ...any) {
		if *progress {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	co, err := coord.New(store, sweep.Enumerate(exps, *quick), coord.Options{
		LeaseTTL: *leaseTTL, Batch: *batch, Logf: logf,
	})
	if err != nil {
		fmt.Fprintf(stderr, "serve: %v\n", err)
		return 1
	}
	srv := coord.NewServer(co)
	addr, err := srv.Start(*listen)
	if err != nil {
		fmt.Fprintf(stderr, "serve: %v\n", err)
		return 1
	}
	defer srv.Close()
	// status.addr lets dashboards, CI smoke tests and resuming humans find
	// the endpoint without parsing logs.
	addrFile := filepath.Join(*jobDir, "status.addr")
	if err := os.WriteFile(addrFile, []byte(addr+"\n"), 0o644); err != nil {
		fmt.Fprintf(stderr, "serve: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "serve: job %q (%d cells, %d done) listening on http://%s\n",
		spec, jobSpec.Cells, store.CountDone(), addr)

	// Local shard workers: re-exec this binary in work mode. Each child's
	// diagnostics stream live under a [shard N] prefix; crashed children
	// restart with bounded backoff (the journal makes restarts cheap — a
	// restarted shard re-leases, it does not redo finished cells).
	out := &lockedWriter{w: stderr}
	kill := make(chan struct{})
	var killOnce sync.Once
	var wg sync.WaitGroup
	workerErrs := make([]error, *shards)
	exe, err := os.Executable()
	if err != nil && *shards > 0 {
		fmt.Fprintf(stderr, "serve: cannot locate own binary: %v\n", err)
		return 1
	}
	for i := 0; i < *shards; i++ {
		name := fmt.Sprintf("shard-%d", i)
		cargs := []string{"work", "-connect", addr, "-name", name,
			"-workers", fmt.Sprint(*workers), "-batch", fmt.Sprint(*batch)}
		if *progress {
			cargs = append(cargs, "-progress")
		}
		wg.Add(1)
		go func(i int, name string, cargs []string) {
			defer wg.Done()
			workerErrs[i] = superviseChild(childSpec{
				exe: exe, args: cargs, prefix: "[" + name + "] ", out: out,
				attempts: 4, backoff: 500 * time.Millisecond,
				stop: kill, done: co.Done(),
			})
		}(i, name, cargs)
	}

	code := 0
	select {
	case <-co.Done():
	case <-srv.ShutdownRequested():
		st := co.Status()
		fmt.Fprintf(stderr, "serve: shutdown requested with job incomplete (%d/%d cells done); journal keeps the progress — resume with `serve -resume -job %s`\n",
			st.Progress.Done, st.Job.Cells, *jobDir)
		code = 1
	}
	killOnce.Do(func() { close(kill) })
	wg.Wait()
	if code == 0 {
		for i, werr := range workerErrs {
			if werr != nil {
				fmt.Fprintf(stderr, "serve: shard-%d: %v\n", i, werr)
			}
		}
		// Completion is judged by the store, not the children: external
		// shards may have done the work of a dead local one.
		if store.CountDone() != jobSpec.Cells {
			fmt.Fprintf(stderr, "serve: all local shards exited with %d/%d cells done; resume with `serve -resume -job %s`\n",
				store.CountDone(), jobSpec.Cells, *jobDir)
			return 1
		}
		rs, err := store.Results()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		rs.AttachMeta()
		if err := writeResults(rs, *outPath, *csvPath, *widePath); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := rs.FirstErr(); err != nil {
			fmt.Fprintln(stderr, err)
			code = 1
		}
	}
	if *linger > 0 {
		fmt.Fprintf(stderr, "serve: lingering %s on http://%s (POST /shutdown to stop)\n", *linger, addr)
		select {
		case <-time.After(*linger):
		case <-srv.ShutdownRequested():
		}
	}
	return code
}

// workMain implements the work subcommand: one shard worker leasing from
// a coordinator. Normally spawned by serve, but equally happy started by
// hand on the same machine to join (or steal from) a running job.
func workMain(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("work", flag.ContinueOnError)
	fs.SetOutput(stderr)
	connect := fs.String("connect", "", "coordinator address (host:port, from the job dir's status.addr); required")
	name := fs.String("name", "", "shard name in leases and telemetry (default worker-<pid>)")
	workers := fs.Int("workers", 0, "worker goroutines for cells of one lease (0 = GOMAXPROCS)")
	batch := fs.Int("batch", 0, "max cells to request per lease (0 = coordinator's policy)")
	progress := fs.Bool("progress", false, "report per-lease progress on stderr")
	candidates := candidatesFlag(fs)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: experiments work -connect host:port [-name shard-X] [-workers N]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *connect == "" {
		fs.Usage()
		return 2
	}
	if err := applyCandidateMode(*candidates); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *name == "" {
		*name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	opts := coord.WorkerOptions{
		Name: *name, Workers: *workers, Batch: *batch,
		Resolve: func(spec string, quick bool) ([]sweep.Experiment, error) {
			ensureRegistered()
			return sweep.Select(spec)
		},
	}
	if *progress {
		opts.Logf = func(format string, args ...any) { fmt.Fprintf(stderr, format+"\n", args...) }
	}
	if err := coord.RunWorker(*connect, opts); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

// childSpec describes one supervised subprocess of a coordinator.
type childSpec struct {
	exe    string
	args   []string
	prefix string
	out    *lockedWriter
	// attempts bounds total launches; backoff doubles between them.
	attempts int
	backoff  time.Duration
	// stop kills the child and ends supervision (shutdown path).
	stop <-chan struct{}
	// done suppresses restarts once closed (job complete; a child dying
	// after the last report is not a failure).
	done <-chan struct{}
	// noRetryExit lists exit codes that are deterministic outcomes, not
	// crashes: retrying them cannot change anything.
	noRetryExit []int
}

// superviseChild runs a child with live line-prefixed diagnostics and
// bounded crash retry. The first failure's streamed output is also
// captured (bounded) so the eventual error report preserves the original
// diagnostics even after retries overwrite the terminal.
func superviseChild(spec childSpec) error {
	var firstErr error
	var firstDiag string
	backoff := spec.backoff
	for attempt := 1; ; attempt++ {
		pw := newPrefixWriter(spec.out, spec.prefix)
		cmd := exec.Command(spec.exe, spec.args...)
		cmd.Stdout = pw
		cmd.Stderr = pw
		err := cmd.Start()
		if err == nil {
			waited := make(chan error, 1)
			go func() { waited <- cmd.Wait() }()
			select {
			case err = <-waited:
			case <-spec.stop:
				cmd.Process.Kill()
				<-waited
				pw.Flush()
				return firstErr
			}
		}
		pw.Flush()
		if err == nil {
			return nil
		}
		if firstErr == nil {
			firstErr = err
			firstDiag = pw.Captured()
		}
		if ee, ok := err.(*exec.ExitError); ok {
			for _, code := range spec.noRetryExit {
				if ee.ExitCode() == code {
					return failure(firstErr, firstDiag)
				}
			}
		}
		select {
		case <-spec.done:
			// The job finished without this child; its death is noise.
			return nil
		default:
		}
		if attempt >= spec.attempts {
			return fmt.Errorf("%w (after %d attempts)", failure(firstErr, firstDiag), attempt)
		}
		fmt.Fprintf(pw, "child crashed (%v); retrying in %s (attempt %d/%d)\n",
			err, backoff, attempt+1, spec.attempts)
		pw.Flush()
		select {
		case <-spec.stop:
			return firstErr
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// failure decorates a child error with the preserved first-failure
// diagnostics.
func failure(err error, diag string) error {
	if strings.TrimSpace(diag) == "" {
		return err
	}
	return fmt.Errorf("%w; first failure's diagnostics:\n%s", err, strings.TrimSpace(diag))
}

// prefixWriter streams a child's output live, one "[shard N] "-prefixed
// line at a time, onto a shared serialized writer — long nightly sweeps
// stay observable while running instead of dumping interleaved stderr at
// exit. It also keeps a bounded copy for post-mortem error reports.
type prefixWriter struct {
	out    *lockedWriter
	prefix string
	mu     sync.Mutex
	line   []byte // pending partial line
	keep   []byte // bounded capture for diagnostics preservation
}

const prefixCaptureMax = 16 << 10

func newPrefixWriter(out *lockedWriter, prefix string) *prefixWriter {
	return &prefixWriter{out: out, prefix: prefix}
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.keep) < prefixCaptureMax {
		n := prefixCaptureMax - len(p.keep)
		if n > len(b) {
			n = len(b)
		}
		p.keep = append(p.keep, b[:n]...)
	}
	p.line = append(p.line, b...)
	for {
		i := bytes.IndexByte(p.line, '\n')
		if i < 0 {
			break
		}
		p.emit(p.line[:i+1])
		p.line = p.line[i+1:]
	}
	return len(b), nil
}

// Flush emits any pending partial line (child exit without trailing
// newline).
func (p *prefixWriter) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.line) > 0 {
		p.emit(append(p.line, '\n'))
		p.line = nil
	}
}

// Captured returns the bounded copy of everything written so far.
func (p *prefixWriter) Captured() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return string(p.keep)
}

func (p *prefixWriter) emit(line []byte) {
	buf := make([]byte, 0, len(p.prefix)+len(line))
	buf = append(buf, p.prefix...)
	buf = append(buf, line...)
	p.out.Write(buf)
}
