// Command benchdiff compares two benchmark runs and fails on large
// regressions: the CI perf-trajectory gate. Inputs are either `go test
// -json` event streams (the BENCH_baseline.json artifacts CI uploads per
// run) or plain `go test -bench` text output.
//
// Usage:
//
//	benchdiff -old prev/BENCH_baseline.json -new BENCH_baseline.json
//
// Time comparisons are benchstat-flavoured but tuned for 1x-iteration
// smoke runs: a benchmark regresses only if it got both much slower
// (default 4x) and absolutely slow (default 50ms), which filters the
// noise floor of single-iteration timings across runners. Allocation
// counts are deterministic, so allocs/op is compared tightly (default
// +25% and +1000 allocs).
//
// -speedup asserts intra-run ratios within the -new file alone
// ("Slow/Fast>=K", comma-separated): both benchmarks come from the same
// run on the same runner, so the ratio is immune to the cross-runner
// variance that forces the generous regression thresholds. When only
// -speedup checks are requested, -old may be omitted.
//
// Exit status: 0 = no regressions and all speedup floors hold, 1 =
// regressions or failed floors, 2 = usage or parse error.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	oldPath := flag.String("old", "", "baseline benchmark output (go test -json or plain text)")
	newPath := flag.String("new", "", "fresh benchmark output to compare against the baseline")
	timeRatio := flag.Float64("time-ratio", DefaultThresholds().TimeRatio, "ns/op regression ratio")
	timeFloor := flag.Float64("time-floor", DefaultThresholds().TimeFloor, "ns/op absolute floor below which time regressions are ignored")
	allocRatio := flag.Float64("alloc-ratio", DefaultThresholds().AllocRatio, "allocs/op regression ratio")
	allocFloor := flag.Float64("alloc-floor", DefaultThresholds().AllocFloor, "allocs/op absolute delta floor")
	speedup := flag.String("speedup", "", "comma-separated Slow/Fast>=K floors checked within the -new run (e.g. BenchmarkScan/BenchmarkGeo>=5)")
	flag.Parse()
	specs, err := ParseSpeedups(*speedup)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// -old is optional when only intra-run speedup floors are requested.
	if *newPath == "" || (*oldPath == "" && len(specs) == 0) {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -old baseline.json -new fresh.json [-speedup Slow/Fast>=K]")
		os.Exit(2)
	}
	cur, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	failed := false
	for _, f := range CheckSpeedups(cur, specs) {
		fmt.Println(f)
		failed = true
	}
	if len(specs) > 0 && !failed {
		fmt.Printf("benchdiff: %d speedup floor(s) hold\n", len(specs))
	}
	if *oldPath == "" {
		if failed {
			os.Exit(1)
		}
		return
	}
	old, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	common := Common(old, cur)
	fmt.Printf("benchdiff: %d baseline benchmarks, %d fresh, %d common\n", len(old), len(cur), common)
	if common == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark names in common — comparing different formats? (-json baselines key by package.Benchmark, plain text by bare name)")
		os.Exit(2)
	}
	for _, name := range Missing(old, cur) {
		fmt.Printf("MISSING %s (present in baseline, absent in fresh run)\n", name)
	}
	th := Thresholds{TimeRatio: *timeRatio, TimeFloor: *timeFloor, AllocRatio: *allocRatio, AllocFloor: *allocFloor}
	regs := Compare(old, cur, th)
	for _, r := range regs {
		fmt.Println(r)
	}
	if len(regs) > 0 {
		fmt.Printf("benchdiff: %d regression(s)\n", len(regs))
		failed = true
	} else {
		fmt.Println("benchdiff: no regressions")
	}
	if failed {
		os.Exit(1)
	}
}

func parseFile(path string) (map[string]BenchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := ParseBench(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return res, nil
}
