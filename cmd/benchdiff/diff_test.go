package main

import (
	"strings"
	"testing"
)

const jsonStream = `{"Action":"start","Package":"gncg"}
{"Action":"output","Package":"gncg","Output":"goos: linux\n"}
{"Action":"output","Package":"gncg","Output":"BenchmarkFast-8   \t       1\t    500000 ns/op\t  1000 B/op\t      50 allocs/op\n"}
{"Action":"output","Package":"gncg","Output":"BenchmarkSlow-8   \t       1\t 100000000 ns/op\t  2000 B/op\t    5000 allocs/op\n"}
{"Action":"output","Package":"gncg","Output":"BenchmarkMetric-8 \t       2\t  60000000 ns/op\t         1.500 poa\n"}
{"Action":"output","Package":"gncg","Test":"BenchmarkSplit","Output":"BenchmarkSplit\n"}
{"Action":"output","Package":"gncg","Test":"BenchmarkSplit","Output":"       1\t  70000000 ns/op\t  12 allocs/op\n"}
{"Action":"output","Package":"gncg/internal/graph","Output":"BenchmarkFast-8   \t       1\t    900000 ns/op\n"}
{"Action":"output","Package":"gncg","Output":"ok  \tgncg\t1.2s\n"}
`

func TestParseBenchJSONStream(t *testing.T) {
	res, err := ParseBench(strings.NewReader(jsonStream))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(res))
	}
	// A result event whose Output omits the name (go test -json splits it
	// into a separate write) must fall back to the event's Test field.
	if res["gncg.BenchmarkSplit"].Metrics["ns/op"] != 70000000 || res["gncg.BenchmarkSplit"].Metrics["allocs/op"] != 12 {
		t.Fatalf("split result event parsed wrong: %v", res["gncg.BenchmarkSplit"].Metrics)
	}
	fast, ok := res["gncg.BenchmarkFast"]
	if !ok {
		t.Fatal("gncg.BenchmarkFast missing (GOMAXPROCS suffix not stripped?)")
	}
	if fast.Metrics["ns/op"] != 500000 || fast.Metrics["allocs/op"] != 50 {
		t.Fatalf("BenchmarkFast metrics wrong: %v", fast.Metrics)
	}
	if res["gncg.BenchmarkMetric"].Metrics["poa"] != 1.5 {
		t.Fatalf("custom metric lost: %v", res["gncg.BenchmarkMetric"].Metrics)
	}
	// Same-named benchmarks in different packages must not collide.
	if res["gncg/internal/graph.BenchmarkFast"].Metrics["ns/op"] != 900000 {
		t.Fatalf("cross-package benchmark collided: %v", res)
	}
}

func TestParseBenchPlainText(t *testing.T) {
	plain := "goos: linux\nBenchmarkX-4   10   2000 ns/op   100 B/op   3 allocs/op\nPASS\n"
	res, err := ParseBench(strings.NewReader(plain))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res["BenchmarkX"].Metrics["ns/op"] != 2000 {
		t.Fatalf("plain-text parse wrong: %v", res)
	}
}

func bench(ns, allocs float64) BenchResult {
	m := map[string]float64{"ns/op": ns}
	if allocs >= 0 {
		m["allocs/op"] = allocs
	}
	return BenchResult{Metrics: m}
}

func TestCompareThresholds(t *testing.T) {
	th := DefaultThresholds()
	old := map[string]BenchResult{
		"A": bench(60e6, 100),    // time 5x worse and above floor -> flagged
		"B": bench(1e6, 100),     // time 10x worse but under 50ms floor -> ignored
		"C": bench(60e6, 100000), // allocs +50% -> flagged
		"D": bench(60e6, 100),    // small alloc delta under floor -> ignored
		"E": bench(60e6, 100),    // improved -> ignored
		"F": bench(60e6, -1),     // no allocs metric -> time only
		"G": bench(60e6, 100),    // missing in new -> not a regression
	}
	cur := map[string]BenchResult{
		"A": bench(300e6, 100),
		"B": bench(10e6, 100),
		"C": bench(60e6, 150000),
		"D": bench(60e6, 600),
		"E": bench(10e6, 50),
		"F": bench(61e6, 123),
		"H": bench(1e9, 1e9), // new benchmark -> not a regression
	}
	regs := Compare(old, cur, th)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions %v, want 2", len(regs), regs)
	}
	if regs[0].Name != "A" || regs[0].Metric != "ns/op" {
		t.Fatalf("first regression = %v, want A ns/op", regs[0])
	}
	if regs[1].Name != "C" || regs[1].Metric != "allocs/op" {
		t.Fatalf("second regression = %v, want C allocs/op", regs[1])
	}
	missing := Missing(old, cur)
	if len(missing) != 1 || missing[0] != "G" {
		t.Fatalf("missing = %v, want [G]", missing)
	}
}

func TestCommonCountsOverlap(t *testing.T) {
	old := map[string]BenchResult{"gncg.BenchmarkA": bench(1, 1), "gncg.BenchmarkB": bench(1, 1)}
	cur := map[string]BenchResult{"BenchmarkA": bench(1, 1), "BenchmarkB": bench(1, 1)}
	// Format mismatch (qualified vs bare keys): zero overlap, which the
	// CLI must treat as an error rather than a vacuous pass.
	if got := Common(old, cur); got != 0 {
		t.Fatalf("Common across formats = %d, want 0", got)
	}
	if got := Common(old, old); got != 2 {
		t.Fatalf("Common self = %d, want 2", got)
	}
}

func TestCompareBoundaryConditions(t *testing.T) {
	th := Thresholds{TimeRatio: 2, TimeFloor: 0, AllocRatio: 1.1, AllocFloor: 0}
	old := map[string]BenchResult{"X": bench(100, 10)}
	// Exactly at the ratio is not a regression (strict >).
	if regs := Compare(old, map[string]BenchResult{"X": bench(200, 11)}, th); len(regs) != 0 {
		t.Fatalf("boundary flagged: %v", regs)
	}
	if regs := Compare(old, map[string]BenchResult{"X": bench(201, 12)}, th); len(regs) != 2 {
		t.Fatalf("past-boundary not flagged: %v", regs)
	}
}

func TestParseSpeedups(t *testing.T) {
	specs, err := ParseSpeedups("BenchmarkSlow/BenchmarkFast>=5, A/B>=1.5,")
	if err != nil {
		t.Fatal(err)
	}
	want := []SpeedupSpec{
		{Slow: "BenchmarkSlow", Fast: "BenchmarkFast", Min: 5},
		{Slow: "A", Fast: "B", Min: 1.5},
	}
	if len(specs) != len(want) {
		t.Fatalf("got %v, want %v", specs, want)
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Fatalf("spec %d = %v, want %v", i, specs[i], want[i])
		}
	}
	if specs, err := ParseSpeedups(""); err != nil || len(specs) != 0 {
		t.Fatalf("empty spec: %v, %v", specs, err)
	}
	for _, bad := range []string{"A/B", "A>=3", "A/B>=x", "A/B>=0", "A/B>=-1", "/B>=2", "A/>=2"} {
		if _, err := ParseSpeedups(bad); err == nil {
			t.Fatalf("ParseSpeedups(%q) accepted", bad)
		}
	}
}

func TestCheckSpeedups(t *testing.T) {
	res := map[string]BenchResult{
		"gncg.BenchmarkSlow": bench(1000, 0),
		"gncg.BenchmarkFast": bench(100, 0),
		"gncg.BenchmarkDead": {Name: "BenchmarkDead", Metrics: map[string]float64{}},
	}
	// Holds at exactly the floor (10x >= 10), via suffix match on
	// package-qualified keys.
	if fails := CheckSpeedups(res, []SpeedupSpec{{Slow: "BenchmarkSlow", Fast: "BenchmarkFast", Min: 10}}); len(fails) != 0 {
		t.Fatalf("10x floor failed: %v", fails)
	}
	// Trips just past the floor.
	fails := CheckSpeedups(res, []SpeedupSpec{{Slow: "BenchmarkSlow", Fast: "BenchmarkFast", Min: 10.01}})
	if len(fails) != 1 || fails[0].Err != nil || fails[0].Got != 10 {
		t.Fatalf("10.01x floor: %v", fails)
	}
	// Missing benchmark and missing ns/op are failures, not skips.
	for _, sp := range []SpeedupSpec{
		{Slow: "BenchmarkGone", Fast: "BenchmarkFast", Min: 2},
		{Slow: "BenchmarkSlow", Fast: "BenchmarkDead", Min: 2},
	} {
		if fails := CheckSpeedups(res, []SpeedupSpec{sp}); len(fails) != 1 || fails[0].Err == nil {
			t.Fatalf("%v: %v", sp, fails)
		}
	}
	// Exact key match wins; ambiguous suffix errors.
	res["other.BenchmarkFast"] = bench(1, 0)
	if fails := CheckSpeedups(res, []SpeedupSpec{{Slow: "BenchmarkSlow", Fast: "BenchmarkFast", Min: 2}}); len(fails) != 1 || fails[0].Err == nil {
		t.Fatalf("ambiguous suffix not flagged: %v", fails)
	}
	res["BenchmarkFast"] = bench(500, 0)
	if fails := CheckSpeedups(res, []SpeedupSpec{{Slow: "BenchmarkSlow", Fast: "BenchmarkFast", Min: 2}}); len(fails) != 0 {
		t.Fatalf("exact key did not win: %v", fails)
	}
}
