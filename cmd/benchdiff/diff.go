package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one benchmark's parsed metrics: unit -> value (e.g.
// "ns/op" -> 706520, "allocs/op" -> 2025, plus any custom ReportMetric
// units like "poa").
type BenchResult struct {
	Name    string
	Metrics map[string]float64
}

// benchLine matches a full Go benchmark result line:
//
//	BenchmarkFoo-8   1   706520 ns/op   338064 B/op   2025 allocs/op
//
// The -N GOMAXPROCS suffix is stripped from the key so baselines compare
// across machines with different core counts.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+\s+.+)$`)

// bareResult matches a result line with the name elided — `go test -json`
// sometimes splits the name and the stats into separate output events, in
// which case only the event's Test field carries the name.
var bareResult = regexp.MustCompile(`^\d+\s+.+$`)

// ParseBench reads benchmark results from r, which may be either a
// `go test -json` event stream (the CI baseline artifact) or plain
// `go test -bench` text output. Results are keyed by package-qualified
// benchmark name ("pkg.BenchmarkFoo") when the package is known (-json
// streams), so same-named benchmarks in different packages never collide;
// plain text carries no package and keys by bare name. Later results for
// the same key overwrite earlier ones (reruns).
func ParseBench(r io.Reader) (map[string]BenchResult, error) {
	out := map[string]BenchResult{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line, testName, pkg := sc.Text(), "", ""
		if strings.HasPrefix(line, "{") {
			var ev struct {
				Action  string `json:"Action"`
				Package string `json:"Package"`
				Test    string `json:"Test"`
				Output  string `json:"Output"`
			}
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action != "output" {
					continue
				}
				line = strings.TrimSuffix(ev.Output, "\n")
				testName, pkg = ev.Test, ev.Package
			}
		}
		parseBenchLine(strings.TrimSpace(line), testName, pkg, out)
	}
	return out, sc.Err()
}

// parseBenchLine adds the line's metrics to out if it is a benchmark
// result line; anything else is ignored. testName and pkg are the
// surrounding -json event's Test and Package fields: the former names
// result lines whose Output omits the name, the latter qualifies the key.
func parseBenchLine(line, testName, pkg string, out map[string]BenchResult) {
	var name, rest string
	if m := benchLine.FindStringSubmatch(line); m != nil {
		name, rest = m[1], m[2]
	} else if strings.HasPrefix(testName, "Benchmark") && bareResult.MatchString(line) {
		name, rest = testName, line
	} else {
		return
	}
	if pkg != "" {
		name = pkg + "." + name
	}
	fields := strings.Fields(rest)[1:] // drop the iteration count
	if len(fields)%2 != 0 {
		return
	}
	metrics := map[string]float64{}
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return
		}
		metrics[fields[i+1]] = v
	}
	if _, ok := metrics["ns/op"]; !ok {
		return
	}
	out[name] = BenchResult{Name: name, Metrics: metrics}
}

// Thresholds configures what counts as a regression. Single-iteration
// (benchtime 1x) smoke runs are noisy, so time comparisons use a generous
// ratio plus an absolute floor; allocation counts are deterministic and
// compared tightly.
type Thresholds struct {
	TimeRatio  float64 // flag if new ns/op > old * TimeRatio ...
	TimeFloor  float64 // ... and new ns/op > TimeFloor
	AllocRatio float64 // flag if new allocs/op > old * AllocRatio ...
	AllocFloor float64 // ... and new - old > AllocFloor
}

// DefaultThresholds matches the CI bench-smoke cadence: 1x iterations,
// cross-runner variance.
func DefaultThresholds() Thresholds {
	return Thresholds{TimeRatio: 4, TimeFloor: 50e6, AllocRatio: 1.25, AllocFloor: 1000}
}

// Regression is one flagged metric change.
type Regression struct {
	Name     string
	Metric   string
	Old, New float64
}

func (r Regression) String() string {
	return fmt.Sprintf("REGRESSION %s %s: %.6g -> %.6g (%.2fx)", r.Name, r.Metric, r.Old, r.New, r.New/r.Old)
}

// Compare flags regressions of new against old under the thresholds.
// Benchmarks present on only one side are never regressions (added or
// removed benchmarks are reported separately by the caller). Results are
// sorted by benchmark name for deterministic output.
func Compare(old, cur map[string]BenchResult, th Thresholds) []Regression {
	var regs []Regression
	for name, o := range old {
		n, ok := cur[name]
		if !ok {
			continue
		}
		if on, nn := o.Metrics["ns/op"], n.Metrics["ns/op"]; on > 0 && nn > on*th.TimeRatio && nn > th.TimeFloor {
			regs = append(regs, Regression{Name: name, Metric: "ns/op", Old: on, New: nn})
		}
		oa, haveOld := o.Metrics["allocs/op"]
		na, haveNew := n.Metrics["allocs/op"]
		if haveOld && haveNew && oa > 0 && na > oa*th.AllocRatio && na-oa > th.AllocFloor {
			regs = append(regs, Regression{Name: name, Metric: "allocs/op", Old: oa, New: na})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}

// Common counts benchmark keys present on both sides. Zero overlap
// between two non-empty runs means the comparison is vacuous (typically a
// format mismatch: -json baselines carry package-qualified keys, plain
// text does not), so the caller must fail instead of passing.
func Common(old, cur map[string]BenchResult) int {
	n := 0
	for name := range old {
		if _, ok := cur[name]; ok {
			n++
		}
	}
	return n
}

// Missing returns the names present in old but absent from cur, sorted: a
// deleted benchmark silently shrinks coverage, so the caller surfaces it.
func Missing(old, cur map[string]BenchResult) []string {
	var out []string
	for name := range old {
		if _, ok := cur[name]; !ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// SpeedupSpec is one "Slow/Fast>=K" assertion checked within a single
// benchmark run: the Slow benchmark's ns/op must be at least K times the
// Fast benchmark's ns/op. This gates intra-run ratios (e.g. the
// geometric candidate scan vs the pruned exhaustive scan on the same
// workload), which — unlike cross-run comparisons — are immune to
// runner speed variance.
type SpeedupSpec struct {
	Slow, Fast string
	Min        float64
}

// ParseSpeedups parses a comma-separated list of "Slow/Fast>=K" specs.
func ParseSpeedups(s string) ([]SpeedupSpec, error) {
	var specs []SpeedupSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		names, minStr, ok := strings.Cut(part, ">=")
		if !ok {
			return nil, fmt.Errorf("speedup spec %q: want Slow/Fast>=K", part)
		}
		slow, fast, ok := strings.Cut(names, "/")
		if !ok || strings.TrimSpace(slow) == "" || strings.TrimSpace(fast) == "" {
			return nil, fmt.Errorf("speedup spec %q: want Slow/Fast>=K", part)
		}
		min, err := strconv.ParseFloat(strings.TrimSpace(minStr), 64)
		if err != nil || min <= 0 {
			return nil, fmt.Errorf("speedup spec %q: bad ratio %q", part, minStr)
		}
		specs = append(specs, SpeedupSpec{Slow: strings.TrimSpace(slow), Fast: strings.TrimSpace(fast), Min: min})
	}
	return specs, nil
}

// findBench resolves a spec name against a result set. Exact key match
// wins; otherwise a unique suffix match on the package-qualified key
// ("pkg.BenchmarkFoo") is accepted, so specs can name bare benchmarks
// against -json inputs. Ambiguous or absent names return an error.
func findBench(res map[string]BenchResult, name string) (BenchResult, error) {
	if r, ok := res[name]; ok {
		return r, nil
	}
	var hits []string
	for key := range res {
		if strings.HasSuffix(key, "."+name) {
			hits = append(hits, key)
		}
	}
	switch len(hits) {
	case 1:
		return res[hits[0]], nil
	case 0:
		return BenchResult{}, fmt.Errorf("benchmark %q not found in run", name)
	default:
		sort.Strings(hits)
		return BenchResult{}, fmt.Errorf("benchmark %q is ambiguous: %v", name, hits)
	}
}

// SpeedupFailure is one speedup floor that did not hold.
type SpeedupFailure struct {
	Spec SpeedupSpec
	Got  float64 // actual slow/fast ratio; 0 if a side was unresolvable
	Err  error   // non-nil when a benchmark was missing or had no ns/op
}

func (f SpeedupFailure) String() string {
	if f.Err != nil {
		return fmt.Sprintf("SPEEDUP %s/%s>=%.3g: %v", f.Spec.Slow, f.Spec.Fast, f.Spec.Min, f.Err)
	}
	return fmt.Sprintf("SPEEDUP %s/%s: %.2fx, want >=%.3gx", f.Spec.Slow, f.Spec.Fast, f.Got, f.Spec.Min)
}

// CheckSpeedups evaluates each spec against one result set and returns
// the failures. An unresolvable benchmark or a missing ns/op metric is a
// failure, not a skip — a speedup floor that silently stops measuring
// is worse than one that trips.
func CheckSpeedups(res map[string]BenchResult, specs []SpeedupSpec) []SpeedupFailure {
	var fails []SpeedupFailure
	for _, sp := range specs {
		slow, err := findBench(res, sp.Slow)
		if err != nil {
			fails = append(fails, SpeedupFailure{Spec: sp, Err: err})
			continue
		}
		fast, err := findBench(res, sp.Fast)
		if err != nil {
			fails = append(fails, SpeedupFailure{Spec: sp, Err: err})
			continue
		}
		sn, fn := slow.Metrics["ns/op"], fast.Metrics["ns/op"]
		if sn <= 0 || fn <= 0 {
			fails = append(fails, SpeedupFailure{Spec: sp, Err: fmt.Errorf("missing ns/op (slow=%v fast=%v)", sn, fn)})
			continue
		}
		if ratio := sn / fn; ratio < sp.Min {
			fails = append(fails, SpeedupFailure{Spec: sp, Got: ratio})
		}
	}
	return fails
}
