// Package bitset provides dense bit sets over a fixed universe {0,...,n-1}.
//
// Bit sets are the representation of agent strategies in the network
// creation game: agent u's strategy S_u is the set of node indices u buys
// an edge towards. The operations below are the ones the game engine and
// the best-response solvers need: membership, mutation, iteration in
// increasing order, cardinality, equality and hashing (for cycle detection
// in dynamics).
package bitset

import "math/bits"

const wordBits = 64

// Set is a bit set over a universe fixed at creation time.
// The zero value is an empty set over an empty universe; use New for a
// usable set.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set over the universe {0,...,n-1}.
func New(n int) Set {
	if n < 0 {
		panic("bitset: negative universe size")
	}
	return Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromSlice returns a set over {0,...,n-1} containing exactly the listed
// elements.
func FromSlice(n int, elems []int) Set {
	s := New(n)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Universe returns the size n of the universe the set ranges over.
func (s Set) Universe() int { return s.n }

// Add inserts element e. It panics if e is outside the universe.
func (s Set) Add(e int) {
	s.check(e)
	s.words[e/wordBits] |= 1 << uint(e%wordBits)
}

// Remove deletes element e if present. It panics if e is outside the
// universe.
func (s Set) Remove(e int) {
	s.check(e)
	s.words[e/wordBits] &^= 1 << uint(e%wordBits)
}

// Has reports whether element e is in the set.
func (s Set) Has(e int) bool {
	if e < 0 || e >= s.n {
		return false
	}
	return s.words[e/wordBits]&(1<<uint(e%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Clear removes all elements.
func (s Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Equal reports whether s and t contain the same elements over the same
// universe.
func (s Set) Equal(t Set) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// Elems returns the elements in increasing order.
func (s Set) Elems() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(e int) { out = append(out, e) })
	return out
}

// ForEach calls fn for every element in increasing order.
func (s Set) ForEach(fn func(e int)) {
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(base + b)
			w &= w - 1
		}
	}
}

// ForEachSymDiff calls fn, in increasing order, for every element in
// exactly one of s and t: the vertices whose membership a strategy change
// actually flips. The universes must match. The scan XORs all n/64 words;
// fn is invoked only |difference| times, which is what lets the game
// engine do O(|difference|) per-edge work on a strategy update instead of
// re-examining every vertex.
func (s Set) ForEachSymDiff(t Set, fn func(e int)) {
	if s.n != t.n {
		panic("bitset: universe mismatch")
	}
	for wi, w := range s.words {
		w ^= t.words[wi]
		base := wi * wordBits
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(base + b)
			w &= w - 1
		}
	}
}

// Union adds every element of t to s. The universes must match.
func (s Set) Union(t Set) {
	if s.n != t.n {
		panic("bitset: universe mismatch")
	}
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// Subtract removes every element of t from s. The universes must match.
func (s Set) Subtract(t Set) {
	if s.n != t.n {
		panic("bitset: universe mismatch")
	}
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// Intersects reports whether s and t share at least one element.
func (s Set) Intersects(t Set) bool {
	if s.n != t.n {
		panic("bitset: universe mismatch")
	}
	for i := range s.words {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Hash folds the set contents into a 64-bit FNV-1a value, for use in
// visited-state tables during dynamics.
func (s Set) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range s.words {
		for b := 0; b < 8; b++ {
			h ^= (w >> (8 * uint(b))) & 0xff
			h *= prime
		}
	}
	return h
}

func (s Set) check(e int) {
	if e < 0 || e >= s.n {
		panic("bitset: element out of range")
	}
}
