package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(129)
	if got := s.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	for _, e := range []int{0, 63, 64, 129} {
		if !s.Has(e) {
			t.Errorf("Has(%d) = false, want true", e)
		}
	}
	if s.Has(1) || s.Has(128) {
		t.Error("unexpected membership")
	}
	s.Remove(63)
	if s.Has(63) {
		t.Error("Remove(63) did not remove")
	}
	if got, want := s.Elems(), []int{0, 64, 129}; len(got) != len(want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Elems = %v, want %v", got, want)
			}
		}
	}
}

func TestHasOutOfRange(t *testing.T) {
	s := New(10)
	if s.Has(-1) || s.Has(10) || s.Has(1000) {
		t.Error("Has out of range must be false")
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add out of range did not panic")
		}
	}()
	New(4).Add(4)
}

func TestCloneIndependence(t *testing.T) {
	s := FromSlice(20, []int{1, 2, 3})
	c := s.Clone()
	c.Add(10)
	if s.Has(10) {
		t.Error("Clone shares storage with original")
	}
	s.Remove(1)
	if !c.Has(1) {
		t.Error("original mutation leaked into clone")
	}
}

func TestEqualAndHash(t *testing.T) {
	a := FromSlice(100, []int{5, 50, 99})
	b := FromSlice(100, []int{5, 50, 99})
	c := FromSlice(100, []int{5, 50})
	if !a.Equal(b) {
		t.Error("equal sets not Equal")
	}
	if a.Equal(c) {
		t.Error("unequal sets Equal")
	}
	if a.Hash() != b.Hash() {
		t.Error("equal sets hash differently")
	}
	if a.Equal(FromSlice(101, []int{5, 50, 99})) {
		t.Error("sets over different universes must not be Equal")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromSlice(64, []int{1, 2, 3})
	b := FromSlice(64, []int{3, 4})
	u := a.Clone()
	u.Union(b)
	if u.Count() != 4 {
		t.Errorf("union count = %d, want 4", u.Count())
	}
	d := a.Clone()
	d.Subtract(b)
	if d.Has(3) || !d.Has(1) || d.Count() != 2 {
		t.Errorf("subtract wrong: %v", d.Elems())
	}
	if !a.Intersects(b) {
		t.Error("a and b intersect")
	}
	if a.Intersects(FromSlice(64, []int{10})) {
		t.Error("disjoint sets reported intersecting")
	}
}

// TestQuickAgainstMapModel drives random operation sequences against a
// map-based reference implementation.
func TestQuickAgainstMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		s := New(n)
		ref := map[int]bool{}
		for op := 0; op < 300; op++ {
			e := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Add(e)
				ref[e] = true
			case 1:
				s.Remove(e)
				delete(ref, e)
			case 2:
				if s.Has(e) != ref[e] {
					return false
				}
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for _, e := range s.Elems() {
			if !ref[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestForEachOrder(t *testing.T) {
	s := FromSlice(300, []int{7, 3, 250, 64, 65})
	prev := -1
	s.ForEach(func(e int) {
		if e <= prev {
			t.Fatalf("ForEach out of order: %d after %d", e, prev)
		}
		prev = e
	})
}

func TestForEachSymDiff(t *testing.T) {
	s := FromSlice(300, []int{1, 3, 64, 250})
	u := FromSlice(300, []int{3, 65, 250, 299})
	var got []int
	prev := -1
	s.ForEachSymDiff(u, func(e int) {
		if e <= prev {
			t.Fatalf("ForEachSymDiff out of order: %d after %d", e, prev)
		}
		prev = e
		got = append(got, e)
	})
	want := []int{1, 64, 65, 299}
	if len(got) != len(want) {
		t.Fatalf("symdiff = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("symdiff = %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("universe mismatch did not panic")
		}
	}()
	s.ForEachSymDiff(New(5), func(int) {})
}
