package geom

import "gncg/internal/graph"

// treeMargin is the relative slack the truncated traversal adds to its
// radius before pruning. Path distances are accumulated edge-by-edge
// from the query vertex, while the consumer's final membership check
// (metric.TreeMetric's LCA labels) evaluates the same real sum in a
// different association order; the two float results can differ by a
// few ulps per path edge. The margin turns that divergence into pure
// over-inclusion — a vertex inside the radius under either evaluation
// is always visited — and the consumer's exact check trims the rest.
const treeMargin = 1e-9

// TreeIndex answers radius queries on the metric closure of an
// edge-weighted tree by truncated traversal: starting from the query
// vertex, it walks the tree and stops descending once the accumulated
// path distance exceeds the (margin-slackened) radius. Edge weights are
// non-negative, so path distance is monotone non-decreasing along every
// root-to-leaf walk — in float arithmetic too, since adding a
// non-negative term never decreases a sum — which is what makes the
// truncation sound. Queries cost O(visited) and are read-only.
type TreeIndex struct {
	n    int
	head []int32 // CSR offsets into to/w, length n+1
	to   []int32
	w    []float64
}

// NewTreeIndex builds the adjacency index of a tree given as an edge
// list (the same representation metric.NewTreeMetric validates; the
// index trusts its caller and does no re-validation).
func NewTreeIndex(n int, edges []graph.Edge) *TreeIndex {
	t := &TreeIndex{n: n, head: make([]int32, n+1)}
	for _, e := range edges {
		t.head[e.U+1]++
		t.head[e.V+1]++
	}
	for v := 0; v < n; v++ {
		t.head[v+1] += t.head[v]
	}
	t.to = make([]int32, 2*len(edges))
	t.w = make([]float64, 2*len(edges))
	next := make([]int32, n)
	copy(next, t.head[:n])
	for _, e := range edges {
		t.to[next[e.U]], t.w[next[e.U]] = int32(e.V), e.W
		next[e.U]++
		t.to[next[e.V]], t.w[next[e.V]] = int32(e.U), e.W
		next[e.V]++
	}
	return t
}

// ForEachWithin calls fn(v, pathDist) for every vertex v — the query
// vertex u included, at distance 0 — whose accumulated path distance
// from u is at most r·(1+treeMargin). The reported set is a superset of
// every vertex within tree distance r under any float evaluation of the
// path sum; callers needing the exact radius set re-check each vertex
// against their own distance function. Traversal order is a
// deterministic DFS; r < 0 reports nothing.
func (t *TreeIndex) ForEachWithin(u int, r float64, fn func(v int, pathDist float64)) {
	if r < 0 {
		return
	}
	limit := r + r*treeMargin
	type frame struct {
		v    int32
		from int32
		d    float64
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{int32(u), -1, 0})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		fn(int(f.v), f.d)
		for e := t.head[f.v]; e < t.head[f.v+1]; e++ {
			v := t.to[e]
			if v == f.from {
				continue
			}
			if d := f.d + t.w[e]; d <= limit {
				stack = append(stack, frame{v, f.v, d})
			}
		}
	}
}

// Size returns the number of indexed vertices.
func (t *TreeIndex) Size() int { return t.n }

// ForEachNeighbor calls fn(v, w) for every tree edge (u, v) of weight w
// incident to u, in CSR order.
func (t *TreeIndex) ForEachNeighbor(u int, fn func(v int, w float64)) {
	for i := t.head[u]; i < t.head[u+1]; i++ {
		fn(int(t.to[i]), t.w[i])
	}
}
