// Package geom holds the geometric index structures behind candidate
// generation in the best-response hot path: a kd-tree over point hosts
// (Rd–GNCG) and a truncated-traversal index over tree hosts (T–GNCG).
//
// Both answer neighborhood queries — "every point within host distance r
// of u" — in output-sensitive time instead of a linear scan, which is
// what lets game.BestSingleMove visit O(polylog n + k) candidates per
// agent (ROADMAP: "Break the 10⁴ ceiling"). The structures are exact
// accelerators, never approximations: a query's result set is defined
// point-for-point against the brute-force scan of the same distance
// function, and internal pruning is engineered so float rounding can
// only ever over-include, with a final per-point distance check making
// the output bit-equal to brute force (pinned by property tests).
package geom

import (
	"math"
	"sort"
)

// kdLeafSize bounds the number of points a leaf holds before it splits.
// Leaves are scanned linearly with exact distance checks, so the value
// trades tree depth against per-leaf work; it does not affect results.
const kdLeafSize = 16

// pruneMargin is the relative safety slack applied to every box-prune
// test. For the 1-, 2- and ∞-norms the box distance below is a
// float-monotone lower bound on every contained point's distance
// (see boxDist), so no margin is needed; general p-norms go through
// math.Pow, which Go does not guarantee to be correctly rounded, and the
// margin absorbs its ulp-level wobble. Over-inclusion is always sound —
// every reported point passes an exact distance check.
const pruneMargin = 1e-12

// KDTree is a static kd-tree over a point set under a p-norm. Build it
// once with NewKDTree; queries are read-only and safe for concurrent
// use. Results are deterministic: they depend only on the point set, the
// norm and the query, never on traversal order.
type KDTree struct {
	coords [][]float64
	p      float64
	dim    int
	idx    []int // point indices, permuted so each leaf owns a range
	nodes  []kdNode
}

// kdNode is one tree node. Leaves (left < 0) own idx[start:end];
// internal nodes split on an axis chosen at build time. Every node
// carries its bounding box for distance-based pruning.
type kdNode struct {
	left, right int // children; -1 on leaves
	start, end  int // idx range covered by this subtree
	bbLo, bbHi  []float64
}

// NewKDTree builds a kd-tree over coords under the p-norm (p >= 1 or
// +Inf — the caller validates, metric.Points already has). The
// coordinate slices are referenced, not copied, and must not be mutated
// afterwards. Splits cut the widest bounding-box extent at the median,
// with points ordered by (coordinate, index) so the build is fully
// deterministic; duplicate points land in well-defined leaves.
func NewKDTree(coords [][]float64, p float64) *KDTree {
	t := &KDTree{coords: coords, p: p}
	if len(coords) > 0 {
		t.dim = len(coords[0])
	}
	t.idx = make([]int, len(coords))
	for i := range t.idx {
		t.idx[i] = i
	}
	if len(coords) > 0 {
		t.build(0, len(coords))
	}
	return t
}

// build constructs the subtree over idx[start:end] and returns its node
// index (appended to t.nodes).
func (t *KDTree) build(start, end int) int {
	lo := make([]float64, t.dim)
	hi := make([]float64, t.dim)
	for d := 0; d < t.dim; d++ {
		lo[d] = math.Inf(1)
		hi[d] = math.Inf(-1)
	}
	for _, i := range t.idx[start:end] {
		c := t.coords[i]
		for d := 0; d < t.dim; d++ {
			if c[d] < lo[d] {
				lo[d] = c[d]
			}
			if c[d] > hi[d] {
				hi[d] = c[d]
			}
		}
	}
	self := len(t.nodes)
	t.nodes = append(t.nodes, kdNode{left: -1, right: -1, start: start, end: end, bbLo: lo, bbHi: hi})
	if end-start <= kdLeafSize || t.dim == 0 {
		return self
	}
	// Split the widest extent (smallest axis index on ties — a
	// deterministic choice, not a correctness one).
	axis, width := 0, -1.0
	for d := 0; d < t.dim; d++ {
		if w := hi[d] - lo[d]; w > width {
			axis, width = d, w
		}
	}
	if width <= 0 {
		// All points coincide (duplicates): splitting cannot make
		// progress, so keep an oversized leaf. Queries still check each
		// point exactly.
		return self
	}
	sub := t.idx[start:end]
	sort.Slice(sub, func(a, b int) bool {
		ca, cb := t.coords[sub[a]][axis], t.coords[sub[b]][axis]
		if ca != cb {
			return ca < cb
		}
		return sub[a] < sub[b]
	})
	mid := start + (end-start)/2
	left := t.build(start, mid)
	right := t.build(mid, end)
	t.nodes[self].left = left
	t.nodes[self].right = right
	return self
}

// boxDist returns a lower bound on the p-norm distance from q to any
// point inside the box [lo, hi], computed in exactly PNormDist's
// evaluation shape (same per-axis terms, same accumulation order, same
// final root). For each axis the gap max(0, lo−q, q−hi) is, by the
// monotonicity of float subtraction, at most the float value |x−q| of
// any in-box coordinate x; squaring, summation, sqrt and max are all
// float-monotone, so for p ∈ {1, 2, ∞} the bound holds bit-for-bit
// against the distances the membership check computes. General p-norms
// additionally rely on math.Pow monotonicity, which pruneMargin covers
// at the call sites.
func (t *KDTree) boxDist(q, lo, hi []float64) float64 {
	switch {
	case math.IsInf(t.p, 1):
		maxg := 0.0
		for d := range q {
			if g := gap(q[d], lo[d], hi[d]); g > maxg {
				maxg = g
			}
		}
		return maxg
	case t.p == 1:
		s := 0.0
		for d := range q {
			s += gap(q[d], lo[d], hi[d])
		}
		return s
	case t.p == 2:
		s := 0.0
		for d := range q {
			g := gap(q[d], lo[d], hi[d])
			s += g * g
		}
		return math.Sqrt(s)
	default:
		s := 0.0
		for d := range q {
			s += math.Pow(gap(q[d], lo[d], hi[d]), t.p)
		}
		return math.Pow(s, 1/t.p)
	}
}

// gap returns the per-axis distance from coordinate q to the interval
// [lo, hi]: 0 inside, else the distance to the nearer endpoint.
func gap(q, lo, hi float64) float64 {
	switch {
	case q < lo:
		return lo - q
	case q > hi:
		return q - hi
	default:
		return 0
	}
}

// dist returns the exact p-norm distance from q to point i, in the same
// shape metric.PNormDist uses (the loops are duplicated rather than
// imported to keep geom free of the metric package; the property tests
// pin the two bit-equal).
func (t *KDTree) dist(q []float64, i int) float64 {
	b := t.coords[i]
	switch {
	case math.IsInf(t.p, 1):
		maxd := 0.0
		for d := range q {
			if v := math.Abs(q[d] - b[d]); v > maxd {
				maxd = v
			}
		}
		return maxd
	case t.p == 1:
		s := 0.0
		for d := range q {
			s += math.Abs(q[d] - b[d])
		}
		return s
	case t.p == 2:
		s := 0.0
		for d := range q {
			v := q[d] - b[d]
			s += v * v
		}
		return math.Sqrt(s)
	default:
		s := 0.0
		for d := range q {
			s += math.Pow(math.Abs(q[d]-b[d]), t.p)
		}
		return math.Pow(s, 1/t.p)
	}
}

// AppendWithin appends to buf the index of every point at p-norm
// distance <= r from q, in ascending index order — exactly the set a
// brute-force scan with the same distance function reports — and
// returns the extended slice. Boxes are pruned only when their
// margin-slackened lower bound exceeds r; every surviving point passes
// an exact distance check, so pruning can only save work, never change
// the result.
func (t *KDTree) AppendWithin(q []float64, r float64, buf []int) []int {
	if len(t.nodes) == 0 || r < 0 {
		return buf
	}
	first := len(buf)
	limit := r + r*pruneMargin
	var walk func(ni int)
	walk = func(ni int) {
		nd := &t.nodes[ni]
		if t.boxDist(q, nd.bbLo, nd.bbHi) > limit {
			return
		}
		if nd.left < 0 {
			for _, i := range t.idx[nd.start:nd.end] {
				if t.dist(q, i) <= r {
					buf = append(buf, i)
				}
			}
			return
		}
		walk(nd.left)
		walk(nd.right)
	}
	walk(0)
	sort.Ints(buf[first:])
	return buf
}

// KNearest returns the indices of the k points nearest to q, ordered by
// (distance, index) ascending — the exact answer a brute-force sort
// under the same comparator produces, duplicate points and distance
// ties included. At most Size() indices are returned; k <= 0 yields
// nil.
func (t *KDTree) KNearest(q []float64, k int) []int {
	if k <= 0 || len(t.nodes) == 0 {
		return nil
	}
	if k > len(t.coords) {
		k = len(t.coords)
	}
	type cand struct {
		d float64
		i int
	}
	// best holds the running k nearest, sorted by (d, i). k is small in
	// every intended use; insertion keeps the code free of heap
	// tie-break subtleties.
	best := make([]cand, 0, k)
	worse := func(a, b cand) bool { return a.d > b.d || (a.d == b.d && a.i > b.i) }
	add := func(c cand) {
		if len(best) == k {
			if worse(c, best[k-1]) {
				return
			}
			best = best[:k-1]
		}
		at := sort.Search(len(best), func(j int) bool { return worse(best[j], c) })
		best = append(best, cand{})
		copy(best[at+1:], best[at:])
		best[at] = c
	}
	var walk func(ni int)
	walk = func(ni int) {
		nd := &t.nodes[ni]
		if len(best) == k {
			worst := best[k-1].d
			if t.boxDist(q, nd.bbLo, nd.bbHi) > worst+worst*pruneMargin {
				return
			}
		}
		if nd.left < 0 {
			for _, i := range t.idx[nd.start:nd.end] {
				add(cand{t.dist(q, i), i})
			}
			return
		}
		// Nearer child first so the pruning radius tightens early; the
		// order affects only work, never the result.
		dl := t.boxDist(q, t.nodes[nd.left].bbLo, t.nodes[nd.left].bbHi)
		dr := t.boxDist(q, t.nodes[nd.right].bbLo, t.nodes[nd.right].bbHi)
		if dl <= dr {
			walk(nd.left)
			walk(nd.right)
		} else {
			walk(nd.right)
			walk(nd.left)
		}
	}
	walk(0)
	out := make([]int, len(best))
	for j, c := range best {
		out[j] = c.i
	}
	return out
}

// Size returns the number of indexed points.
func (t *KDTree) Size() int { return len(t.coords) }
