package geom_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"gncg/internal/geom"
	"gncg/internal/graph"
	"gncg/internal/metric"
)

// genCoords returns n random points in [0,scale)^d with roughly a
// quarter of them exact duplicates of earlier points — the degenerate
// case the kd-tree's median split and tie handling must survive.
func genCoords(rng *rand.Rand, n, d int, scale float64) [][]float64 {
	coords := make([][]float64, n)
	for i := range coords {
		if i > 0 && rng.Intn(4) == 0 {
			src := coords[rng.Intn(i)]
			coords[i] = append([]float64(nil), src...)
			continue
		}
		c := make([]float64, d)
		for j := range c {
			c[j] = rng.Float64() * scale
		}
		coords[i] = c
	}
	return coords
}

// bruteWithin is the contract's reference: every index with exact
// distance at most r, ascending.
func bruteWithin(coords [][]float64, p float64, q []float64, r float64) []int {
	var out []int
	for i, c := range coords {
		if metric.PNormDist(q, c, p) <= r {
			out = append(out, i)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestKDTreeRangeMatchesBruteForce pins AppendWithin bit-equality
// against the brute-force scan over ℓ1, ℓ2, ℓ∞ and a general p-norm,
// across dimensions, duplicate-heavy point sets, and radii that land
// exactly ON pairwise distances (the tie case float slop would break).
func TestKDTreeRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range []float64{1, 2, math.Inf(1), 2.5} {
		for _, d := range []int{1, 2, 3} {
			for _, n := range []int{1, 2, 17, 64, 200} {
				coords := genCoords(rng, n, d, 100)
				kd := geom.NewKDTree(coords, p)
				if kd.Size() != n {
					t.Fatalf("p=%v d=%d n=%d: Size=%d", p, d, n, kd.Size())
				}
				for trial := 0; trial < 20; trial++ {
					u := rng.Intn(n)
					q := coords[u]
					var r float64
					switch trial % 4 {
					case 0: // a radius exactly on a pairwise distance: tie inclusion
						r = metric.PNormDist(q, coords[rng.Intn(n)], p)
					case 1:
						r = 0
					case 2:
						r = rng.Float64() * 50
					case 3:
						r = -1 // nothing within a negative radius
					}
					got := kd.AppendWithin(q, r, nil)
					want := bruteWithin(coords, p, q, r)
					if !equalInts(got, want) {
						t.Fatalf("p=%v d=%d n=%d u=%d r=%v:\n got %v\nwant %v",
							p, d, n, u, r, got, want)
					}
				}
			}
		}
	}
}

// TestKDTreeRangeAppendsToBuffer: AppendWithin must append after the
// existing prefix, untouched.
func TestKDTreeRangeAppendsToBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	coords := genCoords(rng, 50, 2, 10)
	kd := geom.NewKDTree(coords, 2)
	buf := []int{-7, -8}
	buf = kd.AppendWithin(coords[3], 5, buf)
	if buf[0] != -7 || buf[1] != -8 {
		t.Fatalf("prefix clobbered: %v", buf[:2])
	}
	if want := bruteWithin(coords, 2, coords[3], 5); !equalInts(buf[2:], want) {
		t.Fatalf("appended tail %v, want %v", buf[2:], want)
	}
}

// TestKDTreeKNearestMatchesBruteForce pins KNearest against a full sort
// by (distance, index) — including k larger than n and duplicate points
// tied at identical distances.
func TestKDTreeKNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, p := range []float64{1, 2, math.Inf(1), 3} {
		for _, n := range []int{1, 5, 33, 120} {
			coords := genCoords(rng, n, 2, 100)
			kd := geom.NewKDTree(coords, p)
			for _, k := range []int{0, 1, 3, n, n + 5} {
				u := rng.Intn(n)
				q := coords[u]
				got := kd.KNearest(q, k)
				type di struct {
					d float64
					i int
				}
				all := make([]di, n)
				for i, c := range coords {
					all[i] = di{metric.PNormDist(q, c, p), i}
				}
				sort.Slice(all, func(a, b int) bool {
					if all[a].d != all[b].d {
						return all[a].d < all[b].d
					}
					return all[a].i < all[b].i
				})
				wantK := k
				if wantK > n {
					wantK = n
				}
				want := make([]int, wantK)
				for i := range want {
					want[i] = all[i].i
				}
				if !equalInts(got, want) {
					t.Fatalf("p=%v n=%d k=%d u=%d:\n got %v\nwant %v", p, n, k, u, got, want)
				}
			}
		}
	}
}

// randomTree returns a random spanning tree where roughly one edge in
// four has weight exactly zero — the tie-heavy degenerate case for
// truncated traversal.
func randomTree(rng *rand.Rand, n int) []graph.Edge {
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		w := rng.Float64() * 5
		if rng.Intn(4) == 0 {
			w = 0
		}
		edges = append(edges, graph.Edge{U: rng.Intn(v), V: v, W: w})
	}
	return edges
}

// TestTreeIndexWithinMatchesBruteForce: filtering ForEachWithin's
// visited set by the exact path distance must reproduce the brute-force
// radius set — the visited superset never misses a vertex inside r.
// Exact path distances are computed by an independent traversal with
// the same root-to-leaf association order, so the floats agree term by
// term.
func TestTreeIndexWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{1, 2, 10, 60, 150} {
		edges := randomTree(rng, n)
		idx := geom.NewTreeIndex(n, edges)
		if idx.Size() != n {
			t.Fatalf("n=%d: Size=%d", n, idx.Size())
		}
		adj := make(map[int][][2]float64) // v -> list of (to, w)
		for _, e := range edges {
			adj[e.U] = append(adj[e.U], [2]float64{float64(e.V), e.W})
			adj[e.V] = append(adj[e.V], [2]float64{float64(e.U), e.W})
		}
		trueDist := func(u int) []float64 {
			d := make([]float64, n)
			for i := range d {
				d[i] = math.Inf(1)
			}
			d[u] = 0
			stack := []int{u}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, e := range adj[v] {
					to := int(e[0])
					if math.IsInf(d[to], 1) {
						d[to] = d[v] + e[1]
						stack = append(stack, to)
					}
				}
			}
			return d
		}
		for trial := 0; trial < 15; trial++ {
			u := rng.Intn(n)
			d := trueDist(u)
			var r float64
			switch trial % 3 {
			case 0:
				r = d[rng.Intn(n)] // exactly on a vertex distance
			case 1:
				r = rng.Float64() * 10
			case 2:
				r = 0
			}
			var got []int
			idx.ForEachWithin(u, r, func(v int, pd float64) {
				if pd <= r {
					got = append(got, v)
				}
			})
			sort.Ints(got)
			var want []int
			for v := 0; v < n; v++ {
				if d[v] <= r {
					want = append(want, v)
				}
			}
			if !equalInts(got, want) {
				t.Fatalf("n=%d u=%d r=%v:\n got %v\nwant %v", n, u, r, got, want)
			}
		}
	}
}
