package gen

import (
	"math"
	"testing"

	"gncg/internal/metric"
)

func TestPointsDeterministicAndInRange(t *testing.T) {
	a := Points(7, 20, 3, 10, 2)
	b := Points(7, 20, 3, 10, 2)
	if a.Size() != 20 || a.Dim() != 3 {
		t.Fatalf("shape %d x %d", a.Size(), a.Dim())
	}
	for i := range a.Coords {
		for k := range a.Coords[i] {
			if a.Coords[i][k] != b.Coords[i][k] {
				t.Fatal("same seed produced different points")
			}
			if a.Coords[i][k] < 0 || a.Coords[i][k] > 10 {
				t.Fatalf("coordinate %v out of [0,10]", a.Coords[i][k])
			}
		}
	}
	c := Points(8, 20, 3, 10, 2)
	same := true
	for i := range a.Coords {
		for k := range a.Coords[i] {
			if a.Coords[i][k] != c.Coords[i][k] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical point sets")
	}
}

func TestClusteredPointsShape(t *testing.T) {
	ps := ClusteredPoints(3, 30, 4, 100, 2)
	if ps.Size() != 30 || ps.Dim() != 2 {
		t.Fatalf("shape %d x %d", ps.Size(), ps.Dim())
	}
	if !metric.IsMetric(metric.Matrix(ps), 1e-9) {
		t.Fatal("clustered points not metric")
	}
}

func TestTreeValidMetric(t *testing.T) {
	tm := Tree(5, 15, 1, 10)
	if tm.Size() != 15 {
		t.Fatalf("size %d", tm.Size())
	}
	m := metric.Matrix(tm)
	if !metric.IsMetric(m, 1e-9) {
		t.Fatal("tree metric violates triangle inequality")
	}
	for i := 0; i < 15; i++ {
		for j := i + 1; j < 15; j++ {
			if m[i][j] < 1-1e-9 {
				t.Fatalf("tree distance %v below min edge weight", m[i][j])
			}
		}
	}
}

func TestOneTwoClassification(t *testing.T) {
	ot := OneTwo(9, 12, 0.4)
	cl := metric.Classify(metric.Matrix(ot), 1e-9)
	if cl != metric.ClassOneTwo && cl != metric.ClassUnit {
		t.Fatalf("classified as %v", cl)
	}
}

func TestMetricGeneratorIsMetric(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		sp := Metric(seed, 10, 0.3, 9)
		if !metric.IsMetric(metric.Matrix(sp), 1e-9) {
			t.Fatalf("seed %d: closure not metric", seed)
		}
	}
}

func TestNonMetricShape(t *testing.T) {
	w := NonMetric(4, 8, 10)
	for i := range w {
		if w[i][i] != 0 {
			t.Fatal("nonzero diagonal")
		}
		for j := range w {
			if w[i][j] != w[j][i] || w[i][j] < 0 || math.IsNaN(w[i][j]) {
				t.Fatalf("bad weight at (%d,%d): %v", i, j, w[i][j])
			}
		}
	}
}

func TestVCGenerator(t *testing.T) {
	ins := VC(3, 12, 0.5, 3)
	deg := make([]int, ins.N)
	for _, e := range ins.Edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	for v, d := range deg {
		if d > 3 {
			t.Fatalf("vertex %d has degree %d > maxDeg 3", v, d)
		}
	}
	unbounded := VC(3, 12, 0.5, 0)
	if len(unbounded.Edges) < len(ins.Edges) {
		t.Fatal("degree cap increased edge count")
	}
}

func TestSCGeneratorCovers(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		ins := SC(seed, 8, 5, 0.3)
		all := make([]int, len(ins.Sets))
		for i := range all {
			all[i] = i
		}
		if !ins.IsSetCover(all) {
			t.Fatalf("seed %d: generated instance is not coverable", seed)
		}
	}
}
