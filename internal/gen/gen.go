// Package gen produces the randomized workloads the experiments run on:
// point sets in R^d, random weighted trees, random {1,2} hosts, random
// metric hosts, and random Vertex-Cover / Set-Cover instances. All
// generators are deterministic functions of an explicit seed, so every
// experiment result is reproducible from its printed parameters.
package gen

import (
	"math/rand"

	"gncg/internal/cover"
	"gncg/internal/graph"
	"gncg/internal/metric"
)

// Points returns n points drawn uniformly from [0,scale]^d under the
// given p-norm.
func Points(seed int64, n, d int, scale, p float64) *metric.Points {
	rng := rand.New(rand.NewSource(seed))
	coords := make([][]float64, n)
	for i := range coords {
		coords[i] = make([]float64, d)
		for k := range coords[i] {
			coords[i][k] = rng.Float64() * scale
		}
	}
	pts, err := metric.NewPoints(coords, p)
	if err != nil {
		panic("gen: " + err.Error()) // p validated by caller contract
	}
	return pts
}

// ClusteredPoints returns n points grouped around k cluster centers in
// [0,scale]^2 with the given cluster spread: the workload shape of
// city-like fiber deployments.
func ClusteredPoints(seed int64, n, k int, scale, spread float64) *metric.Points {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][2]float64, k)
	for i := range centers {
		centers[i] = [2]float64{rng.Float64() * scale, rng.Float64() * scale}
	}
	coords := make([][]float64, n)
	for i := range coords {
		c := centers[rng.Intn(k)]
		coords[i] = []float64{
			c[0] + rng.NormFloat64()*spread,
			c[1] + rng.NormFloat64()*spread,
		}
	}
	pts, err := metric.NewPoints(coords, 2)
	if err != nil {
		panic("gen: " + err.Error())
	}
	return pts
}

// Tree returns a random weighted tree metric on n nodes: each node v > 0
// attaches to a uniform earlier node with weight in [minW, maxW].
func Tree(seed int64, n int, minW, maxW float64) *metric.TreeMetric {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{
			U: rng.Intn(v),
			V: v,
			W: minW + rng.Float64()*(maxW-minW),
		})
	}
	tm, err := metric.NewTreeMetric(n, edges)
	if err != nil {
		panic("gen: " + err.Error())
	}
	return tm
}

// OneTwo returns a random {1,2} host on n nodes where each pair is a
// 1-edge with probability p1.
func OneTwo(seed int64, n int, p1 float64) *metric.OneTwo {
	rng := rand.New(rand.NewSource(seed))
	var ones [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p1 {
				ones = append(ones, [2]int{u, v})
			}
		}
	}
	ot, err := metric.NewOneTwo(n, ones)
	if err != nil {
		panic("gen: " + err.Error())
	}
	return ot
}

// Metric returns a random metric host: the metric closure of a connected
// random weighted graph (a spanning tree plus extra edges with
// probability pExtra, weights in [1, maxW]).
func Metric(seed int64, n int, pExtra, maxW float64) metric.Space {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v, 1+rng.Float64()*(maxW-1))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && rng.Float64() < pExtra {
				g.AddEdge(u, v, 1+rng.Float64()*(maxW-1))
			}
		}
	}
	return metric.Closure(g)
}

// NonMetric returns a random symmetric weight matrix with weights in
// (0, maxW], with no triangle-inequality guarantee: a general GNCG host.
func NonMetric(seed int64, n int, maxW float64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			x := rng.Float64() * maxW
			w[u][v], w[v][u] = x, x
		}
	}
	return w
}

// VC returns a random Vertex Cover instance: an Erdős–Rényi graph with
// edge probability p. Subcubic instances (the hard case Thm 4 cites) can
// be requested via maxDeg > 0.
func VC(seed int64, n int, p float64, maxDeg int) *cover.VCInstance {
	rng := rand.New(rand.NewSource(seed))
	deg := make([]int, n)
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() >= p {
				continue
			}
			if maxDeg > 0 && (deg[u] >= maxDeg || deg[v] >= maxDeg) {
				continue
			}
			edges = append(edges, [2]int{u, v})
			deg[u]++
			deg[v]++
		}
	}
	ins, err := cover.NewVCInstance(n, edges)
	if err != nil {
		panic("gen: " + err.Error())
	}
	return ins
}

// SC returns a random Set Cover instance over universe size k with m
// random sets (each element joins each set with probability p), padded
// with singletons so a cover always exists.
func SC(seed int64, k, m int, p float64) *cover.SCInstance {
	rng := rand.New(rand.NewSource(seed))
	var sets [][]int
	for i := 0; i < m; i++ {
		var s []int
		for e := 0; e < k; e++ {
			if rng.Float64() < p {
				s = append(s, e)
			}
		}
		if len(s) > 0 {
			sets = append(sets, s)
		}
	}
	seen := make([]bool, k)
	for _, s := range sets {
		for _, e := range s {
			seen[e] = true
		}
	}
	for e, ok := range seen {
		if !ok {
			sets = append(sets, []int{e})
		}
	}
	ins, err := cover.NewSCInstance(k, sets)
	if err != nil {
		panic("gen: " + err.Error())
	}
	return ins
}
