package spanner

import (
	"math"
	"math/rand"
	"testing"

	"gncg/internal/bestresponse"
	"gncg/internal/game"
	"gncg/internal/graph"
	"gncg/internal/metric"
)

func onetwoHost(t *testing.T, n int, ones [][2]int) *game.Host {
	t.Helper()
	ot, err := metric.NewOneTwo(n, ones)
	if err != nil {
		t.Fatal(err)
	}
	return game.NewHost(ot)
}

func TestIsKSpannerBasics(t *testing.T) {
	h := game.NewHost(metric.Unit{N: 4})
	star := graph.New(4)
	for v := 1; v < 4; v++ {
		star.AddEdge(0, v, 1)
	}
	if !IsKSpanner(star, h, 2, 1e-9) {
		t.Fatal("unit star is a 2-spanner")
	}
	if IsKSpanner(star, h, 1.5, 1e-9) {
		t.Fatal("unit star is not a 1.5-spanner")
	}
	if got := Stretch(star, h); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Stretch = %v, want 2", got)
	}
}

func TestStretchDisconnected(t *testing.T) {
	h := game.NewHost(metric.Unit{N: 3})
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	if got := Stretch(g, h); !math.IsInf(got, 1) {
		t.Fatalf("disconnected stretch = %v, want +Inf", got)
	}
}

func TestMinWeightSpannerKeepsOneEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(5)
		var ones [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.35 {
					ones = append(ones, [2]int{u, v})
				}
			}
		}
		h := onetwoHost(t, n, ones)
		edges, err := MinWeight32SpannerOneTwo(h)
		if err != nil {
			t.Fatal(err)
		}
		net := graph.FromEdges(n, edges)
		for _, e := range ones {
			if !net.HasEdge(e[0], e[1]) {
				t.Fatal("spanner dropped a 1-edge (violates Lemma 5)")
			}
		}
		if !IsKSpanner(net, h, 1.5, 1e-9) {
			t.Fatal("result is not a 3/2-spanner")
		}
		// Lemma 5's second claim: minimum-weight 3/2-spanners of 1-2
		// hosts have diameter at most 3.
		if d := net.Diameter(); d > 3 {
			t.Fatalf("min 3/2-spanner has diameter %v > 3 (Lemma 5)", d)
		}
	}
}

func TestMinWeightSpannerIsMinimal(t *testing.T) {
	// Host: 4 nodes, single 1-edge (0,1). All other pairs are 2-edges and
	// any single 2-edge already satisfies d <= 3 through... verify against
	// exhaustive minimal solution by weight comparison.
	h := onetwoHost(t, 4, [][2]int{{0, 1}})
	edges, err := MinWeight32SpannerOneTwo(h)
	if err != nil {
		t.Fatal(err)
	}
	got := graph.FromEdges(4, edges)
	// Exhaustive: iterate all subsets of the five 2-edges.
	twos := [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	bestW := math.Inf(1)
	for mask := 0; mask < 1<<len(twos); mask++ {
		g := graph.New(4)
		g.AddEdge(0, 1, 1)
		for i, p := range twos {
			if mask&(1<<i) != 0 {
				g.AddEdge(p[0], p[1], 2)
			}
		}
		if IsKSpanner(g, h, 1.5, 1e-9) && g.TotalWeight() < bestW {
			bestW = g.TotalWeight()
		}
	}
	if math.Abs(got.TotalWeight()-bestW) > 1e-9 {
		t.Fatalf("spanner weight %v, exhaustive minimum %v", got.TotalWeight(), bestW)
	}
}

// TestGreedySpannerValidAndBoundedByExact: the greedy 3/2-spanner is
// always valid and never lighter than the exact minimum.
func TestGreedySpannerValidAndBoundedByExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(4)
		var ones [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.35 {
					ones = append(ones, [2]int{u, v})
				}
			}
		}
		h := onetwoHost(t, n, ones)
		greedy, err := Greedy32SpannerOneTwo(h)
		if err != nil {
			t.Fatal(err)
		}
		gNet := graph.FromEdges(n, greedy)
		if !IsKSpanner(gNet, h, 1.5, 1e-9) {
			t.Fatal("greedy result is not a 3/2-spanner")
		}
		exact, err := MinWeight32SpannerOneTwo(h)
		if err != nil {
			t.Fatal(err)
		}
		eNet := graph.FromEdges(n, exact)
		if gNet.TotalWeight() < eNet.TotalWeight()-1e-9 {
			t.Fatalf("greedy weight %v below exact minimum %v", gNet.TotalWeight(), eNet.TotalWeight())
		}
	}
}

// TestGreedySpannerScales: the greedy heuristic handles a host size the
// exact search refuses.
func TestGreedySpannerScales(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 30
	var ones [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.12 {
				ones = append(ones, [2]int{u, v})
			}
		}
	}
	h := onetwoHost(t, n, ones)
	if _, err := MinWeight32SpannerOneTwo(h); err == nil {
		t.Skip("instance small enough for exact search; not a scaling test")
	}
	edges, err := Greedy32SpannerOneTwo(h)
	if err != nil {
		t.Fatal(err)
	}
	if !IsKSpanner(graph.FromEdges(n, edges), h, 1.5, 1e-9) {
		t.Fatal("greedy result is not a 3/2-spanner at n=30")
	}
}

// TestThm5SpannerAdmitsNEOwnership: the paper's NE existence for the
// 1-2–GNCG with 1/2 <= alpha <= 1 — a minimum-weight 3/2-spanner has an
// ownership assignment that is a Nash equilibrium.
func TestThm5SpannerAdmitsNEOwnership(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		n := 4 + rng.Intn(2)
		var ones [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.4 {
					ones = append(ones, [2]int{u, v})
				}
			}
		}
		h := onetwoHost(t, n, ones)
		edges, err := MinWeight32SpannerOneTwo(h)
		if err != nil {
			t.Fatal(err)
		}
		if len(edges) > 14 {
			continue // keep the orientation search small
		}
		alpha := 0.5 + rng.Float64()*0.5
		g := game.New(h, alpha)
		_, ok := FindNEOwnership(g, edges, bestresponse.IsNash)
		if !ok {
			t.Fatalf("trial %d (n=%d, alpha=%v): no NE ownership for min-weight 3/2-spanner", trial, n, alpha)
		}
	}
}

func TestFindNEOwnershipNegative(t *testing.T) {
	// A unit triangle at alpha=10: the triangle is wasteful, so no
	// orientation of ALL three edges is an NE (deleting always helps).
	h := game.NewHost(metric.Unit{N: 3})
	g := game.New(h, 10)
	edges := []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1}}
	if _, ok := FindNEOwnership(g, edges, bestresponse.IsNash); ok {
		t.Fatal("triangle at alpha=10 should admit no NE ownership")
	}
}
