// Package spanner provides the k-spanner machinery behind the paper's
// structural lemmas: Lemma 1 (every add-only equilibrium is an
// (α+1)-spanner of the host), Lemma 2 (every social optimum is an
// (α/2+1)-spanner), Lemma 5 and Thm 5 (minimum-weight 3/2-spanners of 1-2
// hosts can be assigned an edge ownership that makes them Nash
// equilibria — the paper's NE existence proof for 1/2 ≤ α ≤ 1).
package spanner

import (
	"fmt"
	"math"

	"gncg/internal/game"
	"gncg/internal/graph"
	"gncg/internal/parallel"
)

// IsKSpanner reports whether the network is a k-spanner of the host:
// d_net(u,v) <= k * d_H(u,v) + eps for all pairs, where d_H is the
// shortest-path distance in the (complete) host graph.
func IsKSpanner(net *graph.Graph, h *game.Host, k, eps float64) bool {
	n := h.N()
	if net.N() != n {
		panic("spanner: network and host size mismatch")
	}
	hostG := hostGraph(h)
	dH := hostG.APSP()
	dG := net.APSP()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if math.IsInf(dH[u][v], 1) {
				continue // unbuyable pair constrains nothing
			}
			if dG[u][v] > k*dH[u][v]+eps {
				return false
			}
		}
	}
	return true
}

// Stretch returns the maximum over pairs of d_net(u,v)/d_H(u,v): the
// smallest k for which the network is a k-spanner. Pairs with d_H = 0 are
// skipped unless their network distance is positive, which yields +Inf.
func Stretch(net *graph.Graph, h *game.Host) float64 {
	n := h.N()
	dH := hostGraph(h).APSP()
	dG := net.APSP()
	worst := 1.0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if math.IsInf(dH[u][v], 1) {
				continue
			}
			if dH[u][v] == 0 {
				if dG[u][v] > 0 {
					return math.Inf(1)
				}
				continue
			}
			if r := dG[u][v] / dH[u][v]; r > worst {
				worst = r
			}
		}
	}
	return worst
}

func hostGraph(h *game.Host) *graph.Graph {
	g := graph.New(h.N())
	h.ForEachFinitePair(func(u, v int, w float64) {
		g.AddEdge(u, v, w)
	})
	return g
}

// MinWeight32SpannerOneTwo computes a minimum-weight 3/2-spanner of a
// 1-2 host exactly, by branch-and-bound over which 2-edges to include.
// By Lemma 5 such a spanner must contain every 1-edge, and a 2-edge pair
// (u,v) is satisfied iff d_G(u,v) <= 3. The search is exponential in the
// number of "uncovered" 2-edges, fine for the verification tier.
func MinWeight32SpannerOneTwo(h *game.Host) ([]graph.Edge, error) {
	n := h.N()
	base := graph.New(n)
	var twos [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			switch h.Weight(u, v) {
			case 1:
				base.AddEdge(u, v, 1)
			case 2:
				twos = append(twos, [2]int{u, v})
			default:
				return nil, fmt.Errorf("spanner: not a 1-2 host: w(%d,%d)=%v", u, v, h.Weight(u, v))
			}
		}
	}
	// A pair (u,v) at 1-edge distance <= 3 is already satisfied; the rest
	// ("demands") need help from added 2-edges.
	d0 := base.APSP()
	var demands [][2]int
	for _, p := range twos {
		if d0[p[0]][p[1]] > 3 {
			demands = append(demands, p)
		}
	}
	if len(demands) == 0 {
		return base.Edges(), nil
	}
	if len(twos) > 24 {
		return nil, fmt.Errorf("spanner: exact search over %d 2-edges is too large", len(twos))
	}
	satisfied := func(sel []bool) bool {
		g := base.Clone()
		for i, p := range twos {
			if sel[i] {
				g.AddEdge(p[0], p[1], 2)
			}
		}
		d := g.APSP()
		for _, p := range demands {
			if d[p[0]][p[1]] > 3 {
				return false
			}
		}
		return true
	}
	bestCount := math.MaxInt
	var bestSel []bool
	var rec func(i, count int, sel []bool)
	rec = func(i, count int, sel []bool) {
		if count >= bestCount {
			return
		}
		if i == len(twos) {
			if satisfied(sel) {
				bestCount = count
				bestSel = append([]bool(nil), sel...)
			}
			return
		}
		// Prefer sparse solutions: try excluding first.
		sel[i] = false
		rec(i+1, count, sel)
		sel[i] = true
		rec(i+1, count+1, sel)
		sel[i] = false
	}
	rec(0, 0, make([]bool, len(twos)))
	if bestSel == nil {
		return nil, fmt.Errorf("spanner: no 3/2-spanner exists (unreachable for 1-2 hosts)")
	}
	out := base.Clone()
	for i, p := range twos {
		if bestSel[i] {
			out.AddEdge(p[0], p[1], 2)
		}
	}
	return out.Edges(), nil
}

// Greedy32SpannerOneTwo computes a (not necessarily minimum) 3/2-spanner
// of a 1-2 host: all 1-edges plus greedily chosen 2-edges, each picked to
// satisfy the largest number of still-violated 2-edge demands. It scales
// to hosts far beyond the exact search; the exact solver remains the
// reference for small instances.
func Greedy32SpannerOneTwo(h *game.Host) ([]graph.Edge, error) {
	n := h.N()
	base := graph.New(n)
	var twos [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			switch h.Weight(u, v) {
			case 1:
				base.AddEdge(u, v, 1)
			case 2:
				twos = append(twos, [2]int{u, v})
			default:
				return nil, fmt.Errorf("spanner: not a 1-2 host: w(%d,%d)=%v", u, v, h.Weight(u, v))
			}
		}
	}
	violated := func(g *graph.Graph) [][2]int {
		d := g.APSP()
		var out [][2]int
		for _, p := range twos {
			if d[p[0]][p[1]] > 3 {
				out = append(out, p)
			}
		}
		return out
	}
	cur := base.Clone()
	for {
		demands := violated(cur)
		if len(demands) == 0 {
			return cur.Edges(), nil
		}
		// Greedy step: the candidate 2-edge fixing the most demands.
		bestEdge := [2]int{-1, -1}
		bestFixed := -1
		for _, cand := range twos {
			if cur.HasEdge(cand[0], cand[1]) {
				continue
			}
			trial := cur.Clone()
			trial.AddEdge(cand[0], cand[1], 2)
			fixed := len(demands) - len(violated(trial))
			if fixed > bestFixed {
				bestFixed = fixed
				bestEdge = cand
			}
		}
		if bestFixed <= 0 {
			// Adding the violated demands' own edges always fixes them, so
			// this is unreachable; guard against infinite loops anyway.
			cur.AddEdge(demands[0][0], demands[0][1], 2)
			continue
		}
		cur.AddEdge(bestEdge[0], bestEdge[1], 2)
	}
}

// FindNEOwnership searches for an edge-ownership assignment of the given
// edge set under which the resulting profile is a Nash equilibrium, using
// the supplied exact checker. It enumerates all 2^m orientations, in
// parallel, so it is only usable for small edge sets (m <= 20); Thm 5
// guarantees success for minimum-weight 3/2-spanners of 1-2 hosts with
// 1/2 <= α <= 1.
func FindNEOwnership(g *game.Game, edges []graph.Edge, isNash func(*game.State) bool) (game.Profile, bool) {
	m := len(edges)
	if m > 20 {
		panic(fmt.Sprintf("spanner: ownership search over 2^%d orientations", m))
	}
	total := 1 << m
	found := parallel.Map(total, func(mask int) *game.Profile {
		p := game.EmptyProfile(g.N())
		for i, e := range edges {
			if mask&(1<<i) != 0 {
				p.Buy(e.U, e.V)
			} else {
				p.Buy(e.V, e.U)
			}
		}
		s := game.NewState(g, p)
		if isNash(s) {
			return &p
		}
		return nil
	})
	for _, p := range found {
		if p != nil {
			return *p, true
		}
	}
	return game.Profile{}, false
}
