package cover

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func bruteForceVC(ins *VCInstance) int {
	best := ins.N
	for mask := 0; mask < 1<<ins.N; mask++ {
		var cov []int
		for v := 0; v < ins.N; v++ {
			if mask&(1<<v) != 0 {
				cov = append(cov, v)
			}
		}
		if len(cov) < best && ins.IsVertexCover(cov) {
			best = len(cov)
		}
	}
	return best
}

func bruteForceSC(ins *SCInstance) int {
	best := len(ins.Sets)
	for mask := 0; mask < 1<<len(ins.Sets); mask++ {
		var ch []int
		for i := range ins.Sets {
			if mask&(1<<i) != 0 {
				ch = append(ch, i)
			}
		}
		if len(ch) < best && ins.IsSetCover(ch) {
			best = len(ch)
		}
	}
	return best
}

func TestVCValidation(t *testing.T) {
	if _, err := NewVCInstance(3, [][2]int{{0, 3}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := NewVCInstance(3, [][2]int{{1, 1}}); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestMinVertexCoverKnown(t *testing.T) {
	// Path on 5 vertices: minimum cover has size 2 (vertices 1 and 3).
	ins, err := NewVCInstance(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	cov := MinVertexCover(ins)
	if len(cov) != 2 || !ins.IsVertexCover(cov) {
		t.Fatalf("MinVertexCover = %v", cov)
	}
	// Triangle: minimum cover has size 2.
	tri, _ := NewVCInstance(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	if got := MinVertexCover(tri); len(got) != 2 {
		t.Fatalf("triangle cover = %v", got)
	}
	// Empty edge set: empty cover.
	empty, _ := NewVCInstance(4, nil)
	if got := MinVertexCover(empty); len(got) != 0 {
		t.Fatalf("empty graph cover = %v", got)
	}
}

func TestMinVertexCoverMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		ins, err := NewVCInstance(n, edges)
		if err != nil {
			return false
		}
		got := MinVertexCover(ins)
		return ins.IsVertexCover(got) && len(got) == bruteForceVC(ins)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyVertexCoverIsCover(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(10)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.4 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		ins, _ := NewVCInstance(n, edges)
		if !ins.IsVertexCover(GreedyVertexCover(ins)) {
			t.Fatal("greedy result is not a cover")
		}
	}
}

func TestSCValidation(t *testing.T) {
	if _, err := NewSCInstance(3, [][]int{{0, 1}}); err == nil {
		t.Error("uncoverable universe accepted")
	}
	if _, err := NewSCInstance(2, [][]int{{0, 1}, {}}); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := NewSCInstance(2, [][]int{{0, 2}}); err == nil {
		t.Error("out-of-range element accepted")
	}
}

func TestMinSetCoverKnown(t *testing.T) {
	// Universe {0..4}; sets: {0,1,2}, {3,4}, {0,3}, {1,4}, {2}. Optimal 2.
	ins, err := NewSCInstance(5, [][]int{{0, 1, 2}, {3, 4}, {0, 3}, {1, 4}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	got := MinSetCover(ins)
	if len(got) != 2 || !ins.IsSetCover(got) {
		t.Fatalf("MinSetCover = %v", got)
	}
}

func TestMinSetCoverMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(7)
		m := 2 + rng.Intn(6)
		sets := make([][]int, 0, m+1)
		for i := 0; i < m; i++ {
			var s []int
			for e := 0; e < k; e++ {
				if rng.Float64() < 0.4 {
					s = append(s, e)
				}
			}
			if len(s) > 0 {
				sets = append(sets, s)
			}
		}
		// Guarantee coverage with singletons of uncovered elements.
		seen := make([]bool, k)
		for _, s := range sets {
			for _, e := range s {
				seen[e] = true
			}
		}
		for e, ok := range seen {
			if !ok {
				sets = append(sets, []int{e})
			}
		}
		ins, err := NewSCInstance(k, sets)
		if err != nil {
			return false
		}
		got := MinSetCover(ins)
		return ins.IsSetCover(got) && len(got) == bruteForceSC(ins)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedySetCoverIsCover(t *testing.T) {
	ins, _ := NewSCInstance(6, [][]int{{0, 1, 2, 3}, {4, 5}, {0, 4}, {1, 5}, {2}, {3}})
	if !ins.IsSetCover(GreedySetCover(ins)) {
		t.Fatal("greedy result is not a cover")
	}
}
