// Package cover provides exact and greedy solvers for Vertex Cover and
// Set Cover: the NP-hard problems the paper reduces from. Thm 4 reduces
// Vertex Cover to deciding whether a 1-2–GNCG profile is a Nash
// equilibrium; Thms 13 and 16 reduce Minimum Set Cover to best-response
// computation in the T–GNCG and Rd–GNCG. The experiment harness uses
// these solvers as independent oracles to verify the reductions'
// correspondence on concrete instances.
package cover

import (
	"fmt"
	"math"
	"sort"
)

// VCInstance is an undirected simple graph given by its edges.
type VCInstance struct {
	N     int
	Edges [][2]int
}

// NewVCInstance validates the edge list.
func NewVCInstance(n int, edges [][2]int) (*VCInstance, error) {
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n || e[0] == e[1] {
			return nil, fmt.Errorf("cover: invalid edge (%d,%d) on %d vertices", e[0], e[1], n)
		}
	}
	return &VCInstance{N: n, Edges: edges}, nil
}

// IsVertexCover reports whether the vertex set covers every edge.
func (ins *VCInstance) IsVertexCover(cover []int) bool {
	in := make([]bool, ins.N)
	for _, v := range cover {
		if v < 0 || v >= ins.N {
			return false
		}
		in[v] = true
	}
	for _, e := range ins.Edges {
		if !in[e[0]] && !in[e[1]] {
			return false
		}
	}
	return true
}

// MinVertexCover computes a minimum vertex cover by branch-and-bound:
// pick an uncovered edge and branch on which endpoint joins the cover.
// Exponential in the worst case (the problem is NP-hard, even on
// subcubic graphs, which is what Thm 4 leans on) but fast for the small
// gadget-validation instances.
func MinVertexCover(ins *VCInstance) []int {
	best := make([]int, 0, ins.N)
	for v := 0; v < ins.N; v++ {
		best = append(best, v) // trivial cover: everything
	}
	in := make([]bool, ins.N)
	var rec func(count int)
	rec = func(count int) {
		if count >= len(best) {
			return
		}
		// Find an uncovered edge.
		var un *[2]int
		for i := range ins.Edges {
			e := &ins.Edges[i]
			if !in[e[0]] && !in[e[1]] {
				un = e
				break
			}
		}
		if un == nil {
			best = best[:0]
			for v := 0; v < ins.N; v++ {
				if in[v] {
					best = append(best, v)
				}
			}
			return
		}
		for _, v := range []int{un[0], un[1]} {
			in[v] = true
			rec(count + 1)
			in[v] = false
		}
	}
	rec(0)
	out := append([]int(nil), best...)
	sort.Ints(out)
	return out
}

// GreedyVertexCover returns a (not necessarily minimum) cover by
// repeatedly taking the endpoint of highest uncovered degree.
func GreedyVertexCover(ins *VCInstance) []int {
	in := make([]bool, ins.N)
	covered := make([]bool, len(ins.Edges))
	var out []int
	for {
		deg := make([]int, ins.N)
		remaining := 0
		for i, e := range ins.Edges {
			if covered[i] {
				continue
			}
			remaining++
			deg[e[0]]++
			deg[e[1]]++
		}
		if remaining == 0 {
			break
		}
		bestV, bestDeg := -1, 0
		for v, d := range deg {
			if d > bestDeg {
				bestV, bestDeg = v, d
			}
		}
		in[bestV] = true
		out = append(out, bestV)
		for i, e := range ins.Edges {
			if !covered[i] && (e[0] == bestV || e[1] == bestV) {
				covered[i] = true
			}
		}
	}
	sort.Ints(out)
	return out
}

// SCInstance is a set-cover instance: a universe {0,...,K-1} and a
// collection of subsets. Every element must appear in at least one set
// for a cover to exist.
type SCInstance struct {
	K    int
	Sets [][]int
}

// NewSCInstance validates element ranges and that the union covers the
// universe.
func NewSCInstance(k int, sets [][]int) (*SCInstance, error) {
	seen := make([]bool, k)
	for i, s := range sets {
		if len(s) == 0 {
			return nil, fmt.Errorf("cover: set %d is empty", i)
		}
		for _, e := range s {
			if e < 0 || e >= k {
				return nil, fmt.Errorf("cover: element %d out of range in set %d", e, i)
			}
			seen[e] = true
		}
	}
	for e, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("cover: element %d is in no set", e)
		}
	}
	return &SCInstance{K: k, Sets: sets}, nil
}

// IsSetCover reports whether the chosen set indices cover the universe.
func (ins *SCInstance) IsSetCover(chosen []int) bool {
	seen := make([]bool, ins.K)
	for _, i := range chosen {
		if i < 0 || i >= len(ins.Sets) {
			return false
		}
		for _, e := range ins.Sets[i] {
			seen[e] = true
		}
	}
	for _, ok := range seen {
		if !ok {
			return false
		}
	}
	return true
}

// MinSetCover computes a minimum set cover by branch-and-bound on the
// lowest-index uncovered element, seeded with the greedy cover and
// bounded by ceil(uncovered / largest set size).
func MinSetCover(ins *SCInstance) []int {
	best := GreedySetCover(ins)
	maxSize := 0
	for _, s := range ins.Sets {
		if len(s) > maxSize {
			maxSize = len(s)
		}
	}
	// setsWith[e] lists sets containing element e.
	setsWith := make([][]int, ins.K)
	for i, s := range ins.Sets {
		for _, e := range s {
			setsWith[e] = append(setsWith[e], i)
		}
	}
	coverCount := make([]int, ins.K)
	var chosen []int
	uncovered := ins.K
	var rec func()
	rec = func() {
		if len(chosen) >= len(best) {
			return
		}
		if uncovered == 0 {
			best = append([]int(nil), chosen...)
			return
		}
		if len(chosen)+int(math.Ceil(float64(uncovered)/float64(maxSize))) >= len(best) {
			return
		}
		// Branch on the first uncovered element.
		e := -1
		for x := 0; x < ins.K; x++ {
			if coverCount[x] == 0 {
				e = x
				break
			}
		}
		for _, si := range setsWith[e] {
			chosen = append(chosen, si)
			for _, x := range ins.Sets[si] {
				if coverCount[x] == 0 {
					uncovered--
				}
				coverCount[x]++
			}
			rec()
			for _, x := range ins.Sets[si] {
				coverCount[x]--
				if coverCount[x] == 0 {
					uncovered++
				}
			}
			chosen = chosen[:len(chosen)-1]
		}
	}
	rec()
	out := append([]int(nil), best...)
	sort.Ints(out)
	return out
}

// GreedySetCover returns the classical ln(k)-approximate cover: take the
// set covering the most uncovered elements until done.
func GreedySetCover(ins *SCInstance) []int {
	covered := make([]bool, ins.K)
	remaining := ins.K
	var out []int
	for remaining > 0 {
		bestSet, bestGain := -1, 0
		for i, s := range ins.Sets {
			gain := 0
			for _, e := range s {
				if !covered[e] {
					gain++
				}
			}
			if gain > bestGain {
				bestSet, bestGain = i, gain
			}
		}
		if bestSet < 0 {
			break // unreachable for validated instances
		}
		out = append(out, bestSet)
		for _, e := range ins.Sets[bestSet] {
			if !covered[e] {
				covered[e] = true
				remaining--
			}
		}
	}
	sort.Ints(out)
	return out
}
