package rules

import (
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"gncg/internal/bestresponse"
	"gncg/internal/game"
	"gncg/internal/metric"
)

// randMatrixHost builds a random symmetric host with weights in
// [0.5, 4.5] — every pair buyable, so all three models price every move
// finitely and the certificate bounds are stressed on real numbers.
func randMatrixHost(t *testing.T, rng *rand.Rand, n int) *game.Host {
	t.Helper()
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w[i][j] = 0.5 + 4*rng.Float64()
			w[j][i] = w[i][j]
		}
	}
	h, err := game.HostFromMatrix(w)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func randProfile(rng *rand.Rand, n int, p float64) game.Profile {
	prof := game.EmptyProfile(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if v != u && rng.Float64() < p {
				prof.Buy(u, v)
			}
		}
	}
	return prof
}

// modelAlpha picks a regime where the parameter bites: a mid-range edge
// price for sum and unit, a budget that random profiles straddle (some
// agents over, some under) for budget.
func modelAlpha(model string, rng *rand.Rand) float64 {
	if model == "budget" {
		return 3 + 5*rng.Float64()
	}
	return 0.5 + 6*rng.Float64()
}

// TestCertificateSoundness is the game package's certificate test run
// across the whole rules registry: under every cost model, whenever an
// agent's gain-bound certificate rules out acquisitions, exhaustive
// evaluation of its (feasibility-filtered) buys and swaps must agree
// that none improves. Random — not settled — states stress the bounds
// hardest; the budget cells additionally exercise certificates on
// infeasible-start states, where the repair rule shapes the move set.
func TestCertificateSoundness(t *testing.T) {
	for _, model := range Names() {
		r := MustByName(model)
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(100 + seed))
			n := 6 + rng.Intn(5)
			g := game.NewWithRules(randMatrixHost(t, rng, n), modelAlpha(model, rng), r)
			s := game.NewState(g, randProfile(rng, n, 0.4))
			for u := 0; u < n; u++ {
				cur := s.Cost(u)
				cert, ok := s.AcquireGainCertificate(u)
				if !ok || !cert.RulesOutAcquisitions(g.Eps) {
					continue
				}
				for _, m := range s.CandidateMoves(u) {
					if m.Kind == game.Delete {
						continue
					}
					if after := s.CostAfter(m); g.Improves(after, cur) {
						t.Fatalf("%s seed %d: certificate for agent %d ruled out acquisitions, but %v improves %v -> %v (bound %v + refund %v, slack %v)",
							model, seed, u, m, cur, after, cert.AcquireBound, cert.MaxRefund, cert.Slack)
					}
				}
			}
		}
	}
}

// serialOracleVerify is the reference the parallel verifier is pinned
// against: an in-order exhaustive scan of every agent with the unpruned
// exact oracle (which applies the model's feasibility predicate to
// every candidate, so it is the right serial referee for all models).
func serialOracleVerify(s *game.State) (stable bool, firstImproving int) {
	stable, firstImproving = true, -1
	for u := 0; u < s.G.N(); u++ {
		if _, _, improving := s.BestSingleMoveExact(u); improving {
			return false, u
		}
	}
	return stable, firstImproving
}

// settle plays greedy round-robin dynamics in place for at most
// maxRounds rounds, producing near-equilibrium states where the
// certificates actually fire.
func settle(s *game.State, maxRounds int) {
	n := s.G.N()
	for r := 0; r < maxRounds; r++ {
		moved := false
		for u := 0; u < n; u++ {
			if m, _, ok := s.BestSingleMove(u); ok {
				s.Apply(m)
				moved = true
			}
		}
		if !moved {
			return
		}
	}
}

// TestVerifierWorkerInvariance extends the verifier's sharding contract
// to the rules registry: under every model, the parallel verifier's
// verdict (Stable, FirstImproving) is bit-identical to the serial exact
// oracle for worker counts {1, 4, GOMAXPROCS}, with certificates on and
// off and both scan oracles, and CertSkipped is identical across worker
// counts. Run under -race in CI this also checks per-worker clone
// isolation on the non-default models' code paths.
func TestVerifierWorkerInvariance(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, model := range Names() {
		r := MustByName(model)
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(200 + seed))
			n := 6 + rng.Intn(5)
			g := game.NewWithRules(randMatrixHost(t, rng, n), modelAlpha(model, rng), r)
			s := game.NewState(g, randProfile(rng, n, 0.3))
			if seed%2 == 1 {
				settle(s, 8)
			}
			wantStable, wantFirst := serialOracleVerify(s.Clone())
			wantSkipped := -1
			for _, workers := range workerCounts {
				for _, exact := range []bool{false, true} {
					for _, noCerts := range []bool{false, true} {
						res := game.VerifyGreedyEquilibrium(s, game.VerifyOptions{
							Workers: workers, Exact: exact, NoCertificates: noCerts,
						})
						if res.Stable != wantStable || res.FirstImproving != wantFirst {
							t.Fatalf("%s seed %d workers=%d exact=%v nocerts=%v: got (stable=%v first=%d), oracle (stable=%v first=%d)",
								model, seed, workers, exact, noCerts,
								res.Stable, res.FirstImproving, wantStable, wantFirst)
						}
						if noCerts {
							continue
						}
						if wantSkipped == -1 {
							wantSkipped = res.CertSkipped
						} else if res.CertSkipped != wantSkipped {
							t.Fatalf("%s seed %d workers=%d exact=%v: CertSkipped=%d, want %d (must be worker-invariant)",
								model, seed, workers, exact, res.CertSkipped, wantSkipped)
						}
					}
				}
			}
		}
	}
}

// TestUnitCoincidesWithSumOnUnitHost: on a unit-weight host the flat
// per-edge price equals the per-unit-weight price, so the two models
// are the same game — every agent cost and every greedy move must
// agree exactly.
func TestUnitCoincidesWithSumOnUnitHost(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 9
	alpha := 1.7
	gSum := game.New(game.NewHost(metric.Unit{N: n}), alpha)
	gUnit := game.NewWithRules(game.NewHost(metric.Unit{N: n}), alpha, MustByName("unit"))
	for trial := 0; trial < 6; trial++ {
		p := randProfile(rng, n, 0.35)
		sSum := game.NewState(gSum, p.Clone())
		sUnit := game.NewState(gUnit, p.Clone())
		for u := 0; u < n; u++ {
			if cs, cu := sSum.Cost(u), sUnit.Cost(u); cs != cu {
				t.Fatalf("trial %d agent %d: sum cost %v, unit cost %v", trial, u, cs, cu)
			}
			mS, cS, okS := sSum.BestSingleMoveExact(u)
			mU, cU, okU := sUnit.BestSingleMoveExact(u)
			if okS != okU || (okS && (mS != mU || cS != cU)) {
				t.Fatalf("trial %d agent %d: sum move (%v,%v,%v) != unit move (%v,%v,%v)",
					trial, u, mS, cS, okS, mU, cU, okU)
			}
		}
	}
}

// TestBudgetFeasibility pins the budget model's two predicates: the
// profile-level budget check and the single-move repair rule (a move
// from an over-budget strategy is admissible iff it lands within budget
// or strictly reduces spend — so infeasible starts can always repair,
// and feasible states can never leave the budget set).
func TestBudgetFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 8
	h := randMatrixHost(t, rng, n)
	budget := MustByName("budget")

	// Mean incident weight as the budget scale: one edge affordable,
	// a full star not.
	meanW := 0.0
	for v := 1; v < n; v++ {
		meanW += h.Weight(0, v)
	}
	meanW /= float64(n - 1)
	g := game.NewWithRules(h, 2*meanW, budget)

	star := game.NewState(g, game.StarProfile(n, 0))
	if star.FeasibleProfile() {
		t.Fatalf("full star (spend %v) should exceed budget %v", game.SpendOnStrategy(g, 0, star.P.S[0]), g.Alpha)
	}
	if game.NewState(g, game.EmptyProfile(n)).FeasibleProfile() != true {
		t.Fatal("empty profile must be budget-feasible")
	}

	// Repair rule: from the over-budget star, every delete by the
	// center reduces spend and must be admissible; every buy by a leaf
	// that stays within budget must be admissible too.
	r := g.Rules()
	for _, m := range star.CandidateMoves(0) {
		if m.Kind != game.Delete {
			spend := game.SpendOnStrategy(g, 0, m.NewStrategy(star.P.S[0]))
			if spend > g.Alpha+g.Eps && spend >= game.SpendOnStrategy(g, 0, star.P.S[0]) {
				t.Fatalf("over-budget center offered non-repair move %v (spend %v, budget %v)", m, spend, g.Alpha)
			}
		}
	}
	if !r.MoveFeasible(star, game.Move{Agent: 0, Kind: game.Delete, V: 1}) {
		t.Fatal("spend-reducing delete must be admissible from an over-budget state")
	}

	// A feasible agent must be refused any move that would overspend.
	oneEdge := game.EmptyProfile(n)
	oneEdge.Buy(1, 2)
	s := game.NewState(g, oneEdge)
	over := 0
	for v := 0; v < n; v++ {
		if v == 1 || s.P.S[1].Has(v) {
			continue
		}
		m := game.Move{Agent: 1, Kind: game.Buy, V: v}
		spend := game.SpendOnStrategy(g, 1, m.NewStrategy(s.P.S[1]))
		if spend > g.Alpha+g.Eps {
			over++
			if r.MoveFeasible(s, m) {
				t.Fatalf("buy %v admitted despite spend %v > budget %v", m, spend, g.Alpha)
			}
		}
	}
	if over == 0 {
		t.Fatal("test regime too loose: no candidate buy exceeded the budget")
	}
}

// TestExactNashTierRejectsBudget: the UMFL exact-Nash tier must refuse
// the budget model loudly (multi-edge deviations are not per-edge
// separable there), not silently return an unsound verdict.
func TestExactNashTierRejectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 6
	g := game.NewWithRules(randMatrixHost(t, rng, n), 5, MustByName("budget"))
	s := game.NewState(g, game.StarProfile(n, 0))
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("VerifyNashWorkers accepted the budget model; want panic")
		}
		msg, ok := rec.(string)
		if !ok || !strings.Contains(msg, "budget") {
			t.Fatalf("panic %v does not name the rejected model", rec)
		}
	}()
	bestresponse.VerifyNashWorkers(s, 2)
}

// TestRegistry pins the registry surface: sorted names, lookup of every
// name, a helpful error for unknown models, and the default identity.
func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"budget", "sum", "unit"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	for _, name := range names {
		r, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if r.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, r.Name())
		}
	}
	if _, err := ByName("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("ByName(unknown) error %v should name the model", err)
	}
	if game.New(randMatrixHost(t, rand.New(rand.NewSource(1)), 4), 1).Rules().Name() != "sum" {
		t.Fatal("default game rules are not the sum model")
	}
}
