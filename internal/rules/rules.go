// Package rules collects the concrete cost models of the NCG family
// beyond the paper's default, plus the name registry the sweep engine's
// model axis resolves through. The game engine itself (package game) is
// model-agnostic and owns only the Rules interface and the default
// SumRules; this package adds:
//
//   - "budget": the bounded-budget NCG of Ehsani et al. (PAPERS.md).
//     Edges are free but each agent may buy at most a fixed total host
//     weight; the game's Alpha parameter is reinterpreted as that
//     per-agent budget B, and an agent's cost is its distance cost
//     alone. Feasibility is a cross-edge constraint, so the UMFL
//     best-response reduction does not apply (ExactNashViaUMFL is
//     false) and the exact-Nash verification tier rejects the model.
//   - "unit": the classic unit-price model of Fabrikant et al. (the
//     degenerate host of Àlvarez & Messegué): every edge costs a flat α
//     regardless of host weight. On a unit-weight host it coincides
//     with the paper's sum model, which the cross-model tests exploit.
//
// All models here keep DistTerm = t·d (linear in d), so the
// gain-bound pruning and certificate machinery stays sound for each
// (GainBoundsSound is true); the budget model's feasibility gate runs
// in the move enumeration underneath the bounds.
package rules

import (
	"fmt"
	"math"
	"sort"

	"gncg/internal/bitset"
	"gncg/internal/game"
)

// Budget is the bounded-budget NCG: Alpha is the per-agent budget B on
// total purchased host weight, edges are otherwise free, and an agent's
// cost is its traffic-weighted distance sum. A strategy is feasible iff
// its host-weight spend is at most B (+ the game's tolerance); a move
// from an over-budget strategy is additionally admitted when it
// strictly decreases spend, so dynamics can repair infeasible starts
// (e.g. a star center handed more edges than B) instead of deadlocking.
type Budget struct{}

// Name returns "budget".
func (Budget) Name() string { return "budget" }

// StrategyCost returns 0: purchases are free under the budget cap.
func (Budget) StrategyCost(*game.State, int) float64 { return 0 }

// DistTerm returns t·d.
func (Budget) DistTerm(t, d float64) float64 { return t * d }

// AcquirePrice returns 0 for buyable pairs and +Inf for unbuyable ones
// (+Inf host weights stay unbuyable in every model).
func (Budget) AcquirePrice(_, w float64) float64 {
	if math.IsInf(w, 1) {
		return w
	}
	return 0
}

// MoveFeasible admits m iff the resulting strategy is within budget, or
// strictly cheaper than the current one (the repair rule).
func (Budget) MoveFeasible(s *game.State, m game.Move) bool {
	g := s.G
	cur := game.SpendOnStrategy(g, m.Agent, s.P.S[m.Agent])
	next := game.SpendOnStrategy(g, m.Agent, m.NewStrategy(s.P.S[m.Agent]))
	return next <= g.Alpha+g.Eps || next < cur
}

// Feasible reports whether strat's host-weight spend is within budget.
func (Budget) Feasible(g *game.Game, u int, strat bitset.Set) bool {
	return game.SpendOnStrategy(g, u, strat) <= g.Alpha+g.Eps
}

// GainBoundsSound reports true: DistTerm is linear in d, and pricing
// acquisitions at 0 only loosens the bounds.
func (Budget) GainBoundsSound() bool { return true }

// ExactNashViaUMFL reports false: the budget cap couples facility
// choices across edges, which UMFL cannot express.
func (Budget) ExactNashViaUMFL() bool { return false }

// SpanningEdgeCostLB returns 0: edges are free.
func (Budget) SpanningEdgeCostLB(_, _ float64, _ int) float64 { return 0 }

// Unit is the flat-price model: every buyable edge costs α, whatever
// its host weight. Distances still follow the host weights, so on a
// non-unit host the model separates edge-price structure from distance
// structure; on a unit-weight host it is exactly the paper's sum model.
type Unit struct{}

// Name returns "unit".
func (Unit) Name() string { return "unit" }

// StrategyCost returns α·|S_u|, +Inf if u owns an unbuyable pair.
func (Unit) StrategyCost(s *game.State, u int) float64 {
	count, inf := 0, false
	s.P.S[u].ForEach(func(v int) {
		if math.IsInf(s.G.Host.Weight(u, v), 1) {
			inf = true
		}
		count++
	})
	if inf {
		return math.Inf(1)
	}
	return s.G.Alpha * float64(count)
}

// DistTerm returns t·d.
func (Unit) DistTerm(t, d float64) float64 { return t * d }

// AcquirePrice returns α for buyable pairs and +Inf for unbuyable ones.
func (Unit) AcquirePrice(alpha, w float64) float64 {
	if math.IsInf(w, 1) {
		return w
	}
	return alpha
}

// MoveFeasible always reports true: the model is unconstrained.
func (Unit) MoveFeasible(*game.State, game.Move) bool { return true }

// Feasible always reports true.
func (Unit) Feasible(*game.Game, int, bitset.Set) bool { return true }

// GainBoundsSound reports true: DistTerm is linear in d.
func (Unit) GainBoundsSound() bool { return true }

// ExactNashViaUMFL reports true: the cost is separable per edge, so
// the Thm 3 reduction applies with flat opening costs.
func (Unit) ExactNashViaUMFL() bool { return true }

// SpanningEdgeCostLB returns α·(n−1): a connected spanning subgraph
// has at least n−1 edges, each priced α.
func (Unit) SpanningEdgeCostLB(alpha, _ float64, n int) float64 {
	if n <= 1 {
		return 0
	}
	return alpha * float64(n-1)
}

// registry maps model names to their Rules values. Models are stateless
// singletons; the map is written only at init time and read-only after,
// so lookups are safe from concurrent sweep cells.
var registry = map[string]game.Rules{
	game.SumRules{}.Name(): game.SumRules{},
	Budget{}.Name():        Budget{},
	Unit{}.Name():          Unit{},
}

// ByName resolves a model name ("sum", "budget", "unit") to its Rules
// value. The error lists the known models for sweep-axis typos.
func ByName(name string) (game.Rules, error) {
	if r, ok := registry[name]; ok {
		return r, nil
	}
	return nil, fmt.Errorf("rules: unknown cost model %q (known: %v)", name, Names())
}

// MustByName is ByName for callers holding a registry-produced name
// (sweep cells iterating a model axis); it panics on unknown names.
func MustByName(name string) game.Rules {
	r, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return r
}

// Names returns the registered model names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
