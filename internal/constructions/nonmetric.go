package constructions

import (
	"fmt"

	"gncg/internal/game"
	"gncg/internal/graph"
	"gncg/internal/metric"
)

// Thm20Triangle builds the paper's closing non-metric witness: a 3-cycle
// with weights w(a,b) = 0, w(b,c) = 1, w(a,c) = (α+2)/2 (which violates
// the triangle inequality for every α > 0). The social optimum is the
// path {(a,b),(b,c)}; the path {(a,b),(a,c)} with a owning both edges is
// a Nash equilibrium. The ratio of the two is exactly (α+2)/2, while the
// pairwise contribution ratio σ of the pair (a,c) is ((α+2)/2)² — the
// value showing Thm 20's per-pair technique cannot beat ((α+2)/2)².
func Thm20Triangle(alpha float64) (*LowerBound, error) {
	if alpha <= 0 {
		return nil, fmt.Errorf("constructions: Thm20Triangle needs alpha > 0, got %v", alpha)
	}
	heavy := (alpha + 2) / 2
	w := [][]float64{
		{0, 0, heavy},
		{0, 0, 1},
		{heavy, 1, 0},
	}
	sp, err := metric.FromMatrix(w)
	if err != nil {
		return nil, err
	}
	g := game.New(game.NewHost(sp), alpha)
	ne := game.EmptyProfile(3)
	ne.Buy(0, 1) // a buys the 0-weight edge
	ne.Buy(0, 2) // a buys the heavy edge
	return &LowerBound{
		Name:        fmt.Sprintf("Thm20 non-metric triangle (alpha=%g)", alpha),
		Game:        g,
		Equilibrium: ne,
		Optimum: []graph.Edge{
			{U: 0, V: 1, W: 0},
			{U: 1, V: 2, W: 1},
		},
		Predicted: (alpha + 2) / 2,
	}, nil
}

// Thm20PairSigma computes the per-pair contribution ratio σ of Thm 20 for
// the heavy pair (a,c) of the triangle witness:
//
//	σ = (α·w·x + 2 d_NE) / (α·w·x* + 2 d_OPT),
//
// where x/x* indicate whether the NE/OPT contains the edge (a,c). For the
// witness this is exactly ((α+2)/2)².
func Thm20PairSigma(lb *LowerBound) float64 {
	g := lb.Game
	neState := game.NewState(g, lb.Equilibrium.Clone())
	optNet := graph.FromEdges(3, lb.Optimum)
	w := g.Host.Weight(0, 2)
	x, xStar := 0.0, 0.0
	if lb.Equilibrium.HasEdge(0, 2) {
		x = 1
	}
	if optNet.HasEdge(0, 2) {
		xStar = 1
	}
	dNE := neState.Network().Dijkstra(0)[2]
	dOPT := optNet.Dijkstra(0)[2]
	return (g.Alpha*w*x + 2*dNE) / (g.Alpha*w*xStar + 2*dOPT)
}
