package constructions

import (
	"fmt"
	"math"

	"gncg/internal/cover"
	"gncg/internal/game"
	"gncg/internal/graph"
	"gncg/internal/metric"
)

// VCReduction is the Thm 4 gadget (Fig. 2): a 1-2–GNCG instance with
// α = 1 in which agent u's best response encodes Minimum Vertex Cover,
// making "is this profile a Nash equilibrium?" co-NP-hard to decide.
//
// Layout: vertex node a_i at index i (one per VC vertex), edge nodes
// p_j, p'_j at indices N+2j and N+2j+1 (two per VC edge), and u last.
// 1-edges: every pair of vertex nodes, and (a_i, p_j), (a_i, p'_j)
// whenever v_i is an endpoint of e_j. Everything else (including all of
// u's pairs) has weight 2.
type VCReduction struct {
	VC   *cover.VCInstance
	Game *game.Game
	U    int
}

// VertexNode returns the index of vertex node a_i.
func (r *VCReduction) VertexNode(i int) int { return i }

// EdgeNodes returns the indices of p_j and p'_j.
func (r *VCReduction) EdgeNodes(j int) (int, int) {
	return r.VC.N + 2*j, r.VC.N + 2*j + 1
}

// NewVCReduction builds the gadget for a Vertex Cover instance.
func NewVCReduction(vc *cover.VCInstance) (*VCReduction, error) {
	if vc.N < 2 || len(vc.Edges) == 0 {
		return nil, fmt.Errorf("constructions: VC reduction needs >= 2 vertices and >= 1 edge")
	}
	n := vc.N + 2*len(vc.Edges) + 1
	r := &VCReduction{VC: vc, U: n - 1}
	var ones [][2]int
	for a := 0; a < vc.N; a++ {
		for b := a + 1; b < vc.N; b++ {
			ones = append(ones, [2]int{a, b})
		}
	}
	for j, e := range vc.Edges {
		p, pp := r.EdgeNodes(j)
		for _, v := range []int{e[0], e[1]} {
			ones = append(ones, [2]int{v, p}, [2]int{v, pp})
		}
	}
	ot, err := metric.NewOneTwo(n, ones)
	if err != nil {
		return nil, err
	}
	r.Game = game.New(game.NewHost(ot), 1)
	return r, nil
}

// Profile builds the gadget's strategy profile for a given vertex cover:
// every 1-edge is bought by its lower-indexed endpoint, and u buys the
// (weight-2) edges towards the cover's vertex nodes. Thm 4: the profile
// is a Nash equilibrium iff the instance admits no smaller vertex cover.
func (r *VCReduction) Profile(coverSet []int) (game.Profile, error) {
	if !r.VC.IsVertexCover(coverSet) {
		return game.Profile{}, fmt.Errorf("constructions: %v is not a vertex cover", coverSet)
	}
	n := r.Game.N()
	p := game.EmptyProfile(n)
	for a := 0; a < vcN(r); a++ {
		for b := a + 1; b < vcN(r); b++ {
			p.Buy(a, b)
		}
	}
	for j, e := range r.VC.Edges {
		pj, ppj := r.EdgeNodes(j)
		for _, v := range []int{e[0], e[1]} {
			p.Buy(v, pj)
			p.Buy(v, ppj)
		}
	}
	for _, v := range coverSet {
		p.Buy(r.U, v)
	}
	return p, nil
}

func vcN(r *VCReduction) int { return r.VC.N }

// UCost is the paper's closed form for agent u's cost when buying edges
// to a cover of size k: 3N + 6m + k.
func (r *VCReduction) UCost(k int) float64 {
	return float64(3*r.VC.N + 6*len(r.VC.Edges) + k)
}

// SetCoverTree is the Thm 13 gadget (Fig. 4): a T–GNCG instance in which
// agent u's best response encodes Minimum Set Cover. The metric comes
// from a tree with center c, set nodes a_i (children of c at distance ε),
// element nodes p_j (children of one representative covering set node at
// distance L), bridge nodes b_i (children of u at distance (L-β)/2), and
// the edge (u,c) of weight L-ε.
//
// The current network G contains (b_i,u), (b_i,a_i), (a_i,p_j) for every
// covering pair, and (c,u) owned by c. Crucially c has NO network edge to
// any a_i: its only edge is the pendant (c,u), so c cannot serve as a
// shortcut from u to the set nodes (if it could, buying c would dominate
// buying set nodes and the reduction would collapse; the tree edges
// (c,a_i) exist only in the metric, not in G). u owns nothing, so its
// best response buys edges to exactly a minimum cover's set nodes (for
// L >> ε, L/3 > β > kε).
type SetCoverTree struct {
	SC   *cover.SCInstance
	Game *game.Game
	U    int
	L    float64
	Eps  float64
	Beta float64

	profile game.Profile
}

// SetNode returns the index of a_i.
func (r *SetCoverTree) SetNode(i int) int { return 2 + i }

// BridgeNode returns the index of b_i.
func (r *SetCoverTree) BridgeNode(i int) int { return 2 + len(r.SC.Sets) + i }

// ElementNode returns the index of p_j.
func (r *SetCoverTree) ElementNode(j int) int { return 2 + 2*len(r.SC.Sets) + j }

// Profile returns the gadget's fixed strategy profile (u owns nothing).
func (r *SetCoverTree) Profile() game.Profile { return r.profile.Clone() }

// NewSetCoverTree builds the gadget. Parameters must satisfy L/3 > beta >
// k*eps and eps << L.
func NewSetCoverTree(sc *cover.SCInstance, L, eps, beta float64) (*SetCoverTree, error) {
	k, m := sc.K, len(sc.Sets)
	if beta <= float64(k)*eps || beta >= L/3 {
		return nil, fmt.Errorf("constructions: need k*eps < beta < L/3 (k=%d eps=%v beta=%v L=%v)", k, eps, beta, L)
	}
	r := &SetCoverTree{SC: sc, L: L, Eps: eps, Beta: beta}
	// Node layout: u=0, c=1, a_i, b_i, p_j.
	n := 2 + 2*m + k
	r.U = 0
	var treeEdges []graph.Edge
	treeEdges = append(treeEdges, graph.Edge{U: 0, V: 1, W: L - eps}) // (u,c)
	for i := 0; i < m; i++ {
		treeEdges = append(treeEdges, graph.Edge{U: 1, V: r.SetNode(i), W: eps})
		treeEdges = append(treeEdges, graph.Edge{U: 0, V: r.BridgeNode(i), W: (L - beta) / 2})
	}
	// Each element hangs off its first covering set.
	rep := make([]int, k)
	for j := range rep {
		rep[j] = -1
	}
	for i, s := range sc.Sets {
		for _, e := range s {
			if rep[e] < 0 {
				rep[e] = i
			}
		}
	}
	for j := 0; j < k; j++ {
		treeEdges = append(treeEdges, graph.Edge{U: r.SetNode(rep[j]), V: r.ElementNode(j), W: L})
	}
	tm, err := metric.NewTreeMetric(n, treeEdges)
	if err != nil {
		return nil, err
	}
	r.Game = game.New(game.NewHost(tm), 1)

	p := game.EmptyProfile(n)
	for i := 0; i < m; i++ {
		p.Buy(r.BridgeNode(i), 0)            // (b_i, u)
		p.Buy(r.BridgeNode(i), r.SetNode(i)) // (b_i, a_i)
	}
	// c's only network edge is the pendant (c,u) it owns.
	p.Buy(1, 0)
	for i, s := range sc.Sets {
		for _, e := range s {
			p.Buy(r.SetNode(i), r.ElementNode(e))
		}
	}
	r.profile = p
	return r, nil
}

// DecodeStrategy maps a strategy of u back to chosen set indices,
// reporting any non-set-node purchases separately.
func (r *SetCoverTree) DecodeStrategy(strat []int) (sets []int, other []int) {
	m := len(r.SC.Sets)
	for _, v := range strat {
		if v >= 2 && v < 2+m {
			sets = append(sets, v-2)
		} else {
			other = append(other, v)
		}
	}
	return sets, other
}

// SetCoverGeo is the Thm 16 gadget (Fig. 7): the same Set Cover encoding
// realized by points in the plane under any p-norm. u sits at the origin;
// set nodes a_i lie on a short arc of the p-norm sphere of radius L;
// element nodes p_j on a short arc at radius 2L; bridge node b_i lies on
// the line through u and a_i on the OPPOSITE side of u at distance
// (L-β)/2 — that placement makes the direct edge (b_i,a_i) have length
// (L-β)/2 + L, so d_G(u,a_i) = 2L-β as the proof requires (with b_i
// between u and a_i the detour would collapse to L and every set node
// would already be optimally reachable). The network contains (b_i,u),
// (b_i,a_i) and (a_i,p_j) for covering pairs; u owns nothing.
type SetCoverGeo struct {
	SC   *cover.SCInstance
	Game *game.Game
	U    int
	L    float64
	Eps  float64
	Beta float64

	profile game.Profile
}

// SetNode returns the index of a_i.
func (r *SetCoverGeo) SetNode(i int) int { return 1 + i }

// BridgeNode returns the index of b_i.
func (r *SetCoverGeo) BridgeNode(i int) int { return 1 + len(r.SC.Sets) + i }

// ElementNode returns the index of p_j.
func (r *SetCoverGeo) ElementNode(j int) int { return 1 + 2*len(r.SC.Sets) + j }

// Profile returns the gadget's fixed strategy profile (u owns nothing).
func (r *SetCoverGeo) Profile() game.Profile { return r.profile.Clone() }

// NewSetCoverGeo builds the geometric gadget under the given p-norm
// (p >= 1 or +Inf).
func NewSetCoverGeo(sc *cover.SCInstance, L, eps, beta, p float64) (*SetCoverGeo, error) {
	k, m := sc.K, len(sc.Sets)
	if beta <= float64(k)*eps || beta >= L/3 {
		return nil, fmt.Errorf("constructions: need k*eps < beta < L/3 (k=%d eps=%v beta=%v L=%v)", k, eps, beta, L)
	}
	r := &SetCoverGeo{SC: sc, L: L, Eps: eps, Beta: beta}
	r.U = 0
	n := 1 + 2*m + k
	coords := make([][]float64, n)
	coords[0] = []float64{0, 0}
	// pSphere returns the point (x, y) with ||(x,y)||_p = radius for a
	// small transverse offset y >= 0: points near the sphere's
	// intersection with the positive x-axis.
	pSphere := func(radius, y float64) []float64 {
		if math.IsInf(p, 1) {
			return []float64{radius, y}
		}
		x := math.Pow(math.Pow(radius, p)-math.Pow(y, p), 1/p)
		return []float64{x, y}
	}
	offA := func(i int) float64 {
		if m == 1 {
			return 0
		}
		return eps * float64(i) / float64(m-1)
	}
	offP := func(j int) float64 {
		if k == 1 {
			return 0
		}
		return eps * float64(j) / float64(k-1)
	}
	for i := 0; i < m; i++ {
		a := pSphere(L, offA(i))
		coords[r.SetNode(i)] = a
		// b_i = -a_i scaled to radius (L-β)/2: beyond u on the a_i line.
		scale := (L - beta) / 2 / L
		coords[r.BridgeNode(i)] = []float64{-a[0] * scale, -a[1] * scale}
	}
	for j := 0; j < k; j++ {
		coords[r.ElementNode(j)] = pSphere(2*L, offP(j))
	}
	pts, err := metric.NewPoints(coords, p)
	if err != nil {
		return nil, err
	}
	r.Game = game.New(game.NewHost(pts), 1)
	prof := game.EmptyProfile(n)
	for i := 0; i < m; i++ {
		prof.Buy(r.BridgeNode(i), 0)
		prof.Buy(r.BridgeNode(i), r.SetNode(i))
	}
	for i, s := range sc.Sets {
		for _, e := range s {
			prof.Buy(r.SetNode(i), r.ElementNode(e))
		}
	}
	r.profile = prof
	return r, nil
}

// DecodeStrategy maps a strategy of u back to chosen set indices plus any
// non-set-node purchases.
func (r *SetCoverGeo) DecodeStrategy(strat []int) (sets []int, other []int) {
	m := len(r.SC.Sets)
	for _, v := range strat {
		if v >= 1 && v < 1+m {
			sets = append(sets, v-1)
		} else {
			other = append(other, v)
		}
	}
	return sets, other
}
