// Package constructions builds, as code, every explicit instance from the
// paper's proofs and figures: the Price-of-Anarchy lower-bound families
// (Thms 8, 15, 18, 19, Lemma 8, Fig. 3/6/9/10), the hardness-reduction
// gadgets (Fig. 2/Thm 4, Fig. 4/Thm 13, Fig. 7/Thm 16), the non-metric
// triangle witness (Thm 20), and the Fig. 8 point set for the
// best-response-cycle search (Thm 17).
//
// Each lower-bound builder returns the game, the candidate equilibrium
// profile (with the ownership the proof requires), the candidate optimum
// edge set, and the paper's predicted cost ratio, so the experiment
// harness can mechanically check (i) the equilibrium property and (ii)
// the ratio against the closed form.
package constructions

import (
	"gncg/internal/game"
	"gncg/internal/graph"
)

// LowerBound is one instantiated PoA lower-bound construction.
type LowerBound struct {
	Name        string
	Game        *game.Game
	Equilibrium game.Profile
	Optimum     []graph.Edge
	// Predicted is the paper's ratio for these parameters. When
	// Asymptotic is true the formula holds in the limit of the family's
	// size parameter and finite instances approach it from below or
	// above; otherwise it is exact for this instance.
	Predicted  float64
	Asymptotic bool
}

// EquilibriumCost returns the social cost of the candidate equilibrium.
func (lb *LowerBound) EquilibriumCost() float64 {
	return game.NewState(lb.Game, lb.Equilibrium.Clone()).SocialCost()
}

// OptimumCost returns the social cost of the candidate optimum edge set.
func (lb *LowerBound) OptimumCost() float64 {
	return game.SocialCostOfEdgeSet(lb.Game, lb.Optimum)
}

// Ratio returns EquilibriumCost / OptimumCost: a certified lower bound on
// the Price of Anarchy whenever the equilibrium candidate really is
// stable (the optimum candidate only upper-bounds OPT, which can only
// shrink the reported ratio).
func (lb *LowerBound) Ratio() float64 {
	return lb.EquilibriumCost() / lb.OptimumCost()
}
