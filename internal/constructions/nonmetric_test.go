package constructions

import (
	"math"
	"testing"

	"gncg/internal/bestresponse"
	"gncg/internal/metric"
	"gncg/internal/opt"
)

func TestThm20TriangleIsNonMetric(t *testing.T) {
	lb, err := Thm20Triangle(2)
	if err != nil {
		t.Fatal(err)
	}
	if lb.Game.Host.IsMetric(1e-9) {
		t.Fatal("Thm 20 triangle must violate the triangle inequality")
	}
}

func TestThm20TriangleExactNE(t *testing.T) {
	for _, alpha := range []float64{0.5, 1, 2, 10} {
		lb, err := Thm20Triangle(alpha)
		if err != nil {
			t.Fatal(err)
		}
		if !bestresponse.IsNash(neState(t, lb)) {
			t.Fatalf("alpha %v: triangle NE candidate fails the exact check", alpha)
		}
	}
}

func TestThm20RatioAndOptimum(t *testing.T) {
	for _, alpha := range []float64{0.5, 1, 3, 8} {
		lb, err := Thm20Triangle(alpha)
		if err != nil {
			t.Fatal(err)
		}
		if got := lb.Ratio(); math.Abs(got-(alpha+2)/2) > 1e-9 {
			t.Fatalf("alpha %v: ratio %v != (α+2)/2 = %v", alpha, got, (alpha+2)/2)
		}
		exact, err := opt.ExactSmall(lb.Game)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lb.OptimumCost()-exact.Cost) > 1e-9 {
			t.Fatalf("alpha %v: OPT candidate %v != exhaustive %v", alpha, lb.OptimumCost(), exact.Cost)
		}
	}
}

func TestThm20PairSigma(t *testing.T) {
	for _, alpha := range []float64{0.5, 1, 4} {
		lb, err := Thm20Triangle(alpha)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Pow((alpha+2)/2, 2)
		if got := Thm20PairSigma(lb); math.Abs(got-want) > 1e-9 {
			t.Fatalf("alpha %v: pair sigma %v != ((α+2)/2)² = %v", alpha, got, want)
		}
	}
}

func TestFig8GameShape(t *testing.T) {
	g := Fig8Game(1)
	if g.N() != 10 {
		t.Fatalf("Fig 8 game has %d agents, want 10", g.N())
	}
	// Spot-check two published 1-norm distances: |a0-a1| = |3-0|+|0-3| = 6,
	// |a4-a9| = |1-1|+|1-0| = 1.
	if got := g.Host.Weight(0, 1); got != 6 {
		t.Fatalf("w(a0,a1) = %v, want 6", got)
	}
	if got := g.Host.Weight(4, 9); got != 1 {
		t.Fatalf("w(a4,a9) = %v, want 1", got)
	}
	// The host must be metric (it is a 1-norm point set). Structural and
	// dense answers must agree.
	if !g.Host.IsMetric(1e-9) {
		t.Fatal("Fig 8 host not metric")
	}
	if !metric.IsMetric(g.Host.Densify(), 1e-9) {
		t.Fatal("Fig 8 host dense view not metric")
	}
}

// TestFig8InstancesIndependent: separate Fig8Game calls must not share
// host storage — their dense views are distinct allocations with equal
// content. (A previous version of this test mutated one host's matrix to
// probe for sharing, which the Matrix()/Densify() contract now forbids;
// see TestMatrixDensifyAliasing in internal/game.)
func TestFig8InstancesIndependent(t *testing.T) {
	m1 := Fig8Game(1).Host.Matrix()
	m2 := Fig8Game(1).Host.Matrix()
	if &m1[0][0] == &m2[0][0] {
		t.Fatal("Fig8Game instances share dense-view storage")
	}
	for i := range m1 {
		for j := range m1[i] {
			if m1[i][j] != m2[i][j] {
				t.Fatalf("Fig8Game instances disagree at w(%d,%d)", i, j)
			}
		}
	}
}
