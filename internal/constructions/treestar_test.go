package constructions

import (
	"math"
	"testing"

	"gncg/internal/bestresponse"
	"gncg/internal/game"
	"gncg/internal/opt"
)

func neState(t *testing.T, lb *LowerBound) *game.State {
	t.Helper()
	return game.NewState(lb.Game, lb.Equilibrium.Clone())
}

func TestThm15StarExactNESmall(t *testing.T) {
	for _, alpha := range []float64{0.5, 1, 2, 5} {
		lb, err := Thm15Star(6, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if !bestresponse.IsNash(neState(t, lb)) {
			t.Fatalf("alpha %v: Thm 15 star is not an exact NE at n=6", alpha)
		}
	}
}

func TestThm15StarGreedyStableLarge(t *testing.T) {
	lb, err := Thm15Star(40, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !neState(t, lb).IsGreedyEquilibrium() {
		t.Fatal("Thm 15 star fails the greedy equilibrium check at n=40")
	}
}

func TestThm15RatioMatchesClosedForm(t *testing.T) {
	for _, alpha := range []float64{0.5, 1, 2, 5} {
		for _, n := range []int{3, 6, 12, 25} {
			lb, err := Thm15Star(n, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if got := lb.Ratio(); math.Abs(got-lb.Predicted) > 1e-9 {
				t.Fatalf("n=%d alpha=%v: measured ratio %v != closed form %v", n, alpha, got, lb.Predicted)
			}
		}
	}
}

func TestThm15RatioApproachesAsymptote(t *testing.T) {
	alpha := 3.0
	limit := Thm15AsymptoticRatio(alpha)
	small, _ := Thm15Star(5, alpha)
	large, _ := Thm15Star(200, alpha)
	dSmall := math.Abs(small.Ratio() - limit)
	dLarge := math.Abs(large.Ratio() - limit)
	if dLarge >= dSmall {
		t.Fatalf("ratio not converging to (alpha+2)/2: |%v-%v| vs |%v-%v|",
			small.Ratio(), limit, large.Ratio(), limit)
	}
	if dLarge > 0.05 {
		t.Fatalf("n=200 ratio %v still far from limit %v", large.Ratio(), limit)
	}
}

func TestThm15OptimumIsExactOPTSmall(t *testing.T) {
	lb, err := Thm15Star(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := opt.ExactSmall(lb.Game)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lb.OptimumCost()-exact.Cost) > 1e-9 {
		t.Fatalf("tree star OPT candidate %v != exhaustive OPT %v", lb.OptimumCost(), exact.Cost)
	}
}

func TestThm19ExactNESmall(t *testing.T) {
	for _, d := range []int{1, 2} {
		for _, alpha := range []float64{0.5, 1, 4} {
			lb, err := Thm19CrossPolytope(d, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if !bestresponse.IsNash(neState(t, lb)) {
				t.Fatalf("d=%d alpha=%v: cross-polytope star not an exact NE", d, alpha)
			}
		}
	}
}

func TestThm19RatioMatchesClosedForm(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5, 10} {
		for _, alpha := range []float64{0.5, 1, 2, 8} {
			lb, err := Thm19CrossPolytope(d, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if got := lb.Ratio(); math.Abs(got-lb.Predicted) > 1e-9 {
				t.Fatalf("d=%d alpha=%v: ratio %v != 1+α/(2+α/(2d-1)) = %v", d, alpha, got, lb.Predicted)
			}
		}
	}
}

func TestThm19ApproachesTreeBound(t *testing.T) {
	// As d -> inf the cross-polytope bound approaches (α+2)/2.
	alpha := 4.0
	limit := Thm15AsymptoticRatio(alpha)
	lo, _ := Thm19CrossPolytope(2, alpha)
	hi, _ := Thm19CrossPolytope(60, alpha)
	if !(math.Abs(hi.Predicted-limit) < math.Abs(lo.Predicted-limit)) {
		t.Fatal("cross-polytope bound not approaching (α+2)/2 with d")
	}
	if math.Abs(hi.Predicted-limit) > 0.05 {
		t.Fatalf("d=60 bound %v still far from %v", hi.Predicted, limit)
	}
}

func TestLemma8PathExactNE(t *testing.T) {
	for _, alpha := range []float64{0.7, 1, 3} {
		lb, err := Lemma8Path(5, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if !bestresponse.IsNash(neState(t, lb)) {
			t.Fatalf("alpha %v: Lemma 8 star is not an exact NE", alpha)
		}
		if lb.Ratio() <= 1 {
			t.Fatalf("alpha %v: Lemma 8 ratio %v, want > 1", alpha, lb.Ratio())
		}
	}
}

func TestLemma8PathIsTrueOptimum(t *testing.T) {
	// The path candidate must be the exhaustive social optimum (Lemma 8
	// asserts it is optimal).
	for _, alpha := range []float64{0.7, 1, 3} {
		lb, err := Lemma8Path(5, alpha)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := opt.ExactSmall(lb.Game)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lb.OptimumCost()-exact.Cost) > 1e-6 {
			t.Fatalf("alpha %v: path cost %v != exhaustive OPT %v", alpha, lb.OptimumCost(), exact.Cost)
		}
	}
}

func TestThm18ClosedForm(t *testing.T) {
	for _, alpha := range []float64{0.5, 1, 2, 6, 20} {
		lb, err := Thm18FourPoint(alpha)
		if err != nil {
			t.Fatal(err)
		}
		measured := lb.Ratio()
		if math.Abs(measured-Thm18Ratio(alpha)) > 1e-9 {
			t.Fatalf("alpha %v: measured %v != closed form %v", alpha, measured, Thm18Ratio(alpha))
		}
		if !bestresponse.IsNash(neState(t, lb)) {
			t.Fatalf("alpha %v: four-point star not an exact NE", alpha)
		}
	}
}

func TestThm18RatioTendsTo3(t *testing.T) {
	// The paper notes the bound yields PoA >= 3 for high alpha.
	if got := Thm18Ratio(1e9); math.Abs(got-3) > 1e-6 {
		t.Fatalf("Thm18Ratio(1e9) = %v, want -> 3", got)
	}
	if got := Thm18Ratio(0.0001); math.Abs(got-1) > 1e-2 {
		t.Fatalf("Thm18Ratio(0.0001) = %v, want -> 1", got)
	}
}

func TestConstructionValidation(t *testing.T) {
	if _, err := Thm15Star(2, 1); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := Thm15Star(5, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := Thm19CrossPolytope(0, 1); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := Lemma8Path(2, 1); err == nil {
		t.Error("m=2 accepted")
	}
}
