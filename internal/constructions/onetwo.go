package constructions

import (
	"fmt"

	"gncg/internal/game"
	"gncg/internal/graph"
	"gncg/internal/metric"
)

// thm8Layout assigns node indices for the Thm 8 clique-of-stars family:
// clique vertices 0..N-1, the N leaves of clique vertex v at
// N + v*N .. N + v*N + N-1, and the hub u at index N + N².
type thm8Layout struct{ N int }

func (l thm8Layout) clique(v int) int  { return v }
func (l thm8Layout) leaf(v, j int) int { return l.N + v*l.N + j }
func (l thm8Layout) u() int            { return l.N + l.N*l.N }
func (l thm8Layout) n() int            { return l.N*l.N + l.N + 1 }

// Thm8AlphaOne builds the 1-2–GNCG lower bound for α = 1 (Thm 8, Fig. 3):
// a clique of N vertices joined by 1-edges, each clique vertex the center
// of a star of N leaves joined by 1-edges, and a hub u joined to EVERY
// other vertex by a 1-edge; all remaining pairs have weight 2. The
// optimum candidate is the subgraph of all 1-edges; the equilibrium
// candidate is all 1-edges except those between u and leaves. The family
// ratio tends to 3/2.
//
// (The paper states n = N²+1 but constructs N clique vertices + N² leaves
// + u = N²+N+1 nodes; we follow the construction — the asymptotics are
// unchanged. See DESIGN.md.)
func Thm8AlphaOne(N int) (*LowerBound, error) {
	if N < 2 {
		return nil, fmt.Errorf("constructions: Thm8AlphaOne needs N >= 2, got %d", N)
	}
	l := thm8Layout{N}
	var ones [][2]int
	// Clique 1-edges.
	for a := 0; a < N; a++ {
		for b := a + 1; b < N; b++ {
			ones = append(ones, [2]int{l.clique(a), l.clique(b)})
		}
	}
	// Star 1-edges.
	for v := 0; v < N; v++ {
		for j := 0; j < N; j++ {
			ones = append(ones, [2]int{l.clique(v), l.leaf(v, j)})
		}
	}
	// u's 1-edges to everyone.
	for x := 0; x < l.n()-1; x++ {
		ones = append(ones, [2]int{l.u(), x})
	}
	ot, err := metric.NewOneTwo(l.n(), ones)
	if err != nil {
		return nil, err
	}
	g := game.New(game.NewHost(ot), 1)

	// Optimum candidate: every 1-edge (single ownership).
	var opt []graph.Edge
	for _, e := range ones {
		opt = append(opt, graph.Edge{U: e[0], V: e[1], W: 1})
	}
	// Equilibrium candidate: all 1-edges except u–leaf. Ownership: clique
	// edges by the lower vertex, star edges by the center, u's edges by u.
	ne := game.EmptyProfile(l.n())
	for a := 0; a < N; a++ {
		for b := a + 1; b < N; b++ {
			ne.Buy(l.clique(a), l.clique(b))
		}
	}
	for v := 0; v < N; v++ {
		for j := 0; j < N; j++ {
			ne.Buy(l.clique(v), l.leaf(v, j))
		}
	}
	for v := 0; v < N; v++ {
		ne.Buy(l.u(), l.clique(v))
	}
	return &LowerBound{
		Name:        fmt.Sprintf("Thm8 1-2 clique-of-stars (alpha=1, N=%d)", N),
		Game:        g,
		Equilibrium: ne,
		Optimum:     opt,
		Predicted:   1.5,
		Asymptotic:  true,
	}, nil
}

// Thm8HalfToOne builds the Thm 8 lower bound for 1/2 <= α < 1: the same
// clique-of-stars, except the hub u has 1-edges only to the clique
// vertices (u–leaf pairs weigh 2). The equilibrium candidate is the
// subgraph of all 1-edges (for α < 1 every NE must contain them, Lemma
// 3); the paper upper-bounds OPT by the entire host graph, and the family
// ratio tends to 3/(α+2).
func Thm8HalfToOne(N int, alpha float64) (*LowerBound, error) {
	if N < 2 {
		return nil, fmt.Errorf("constructions: Thm8HalfToOne needs N >= 2, got %d", N)
	}
	if alpha < 0.5 || alpha >= 1 {
		return nil, fmt.Errorf("constructions: Thm8HalfToOne needs 1/2 <= alpha < 1, got %v", alpha)
	}
	l := thm8Layout{N}
	var ones [][2]int
	for a := 0; a < N; a++ {
		for b := a + 1; b < N; b++ {
			ones = append(ones, [2]int{l.clique(a), l.clique(b)})
		}
	}
	for v := 0; v < N; v++ {
		for j := 0; j < N; j++ {
			ones = append(ones, [2]int{l.clique(v), l.leaf(v, j)})
		}
	}
	for v := 0; v < N; v++ {
		ones = append(ones, [2]int{l.u(), l.clique(v)})
	}
	ot, err := metric.NewOneTwo(l.n(), ones)
	if err != nil {
		return nil, err
	}
	g := game.New(game.NewHost(ot), alpha)

	// Equilibrium candidate: all 1-edges, canonical ownership.
	ne := game.EmptyProfile(l.n())
	for _, e := range ones {
		ne.Buy(e[0], e[1])
	}
	// Optimum candidate: the complete host graph (paper's upper bound).
	var opt []graph.Edge
	n := l.n()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			opt = append(opt, graph.Edge{U: a, V: b, W: g.Host.Weight(a, b)})
		}
	}
	return &LowerBound{
		Name:        fmt.Sprintf("Thm8 1-2 clique-of-stars (alpha=%g, N=%d)", alpha, N),
		Game:        g,
		Equilibrium: ne,
		Optimum:     opt,
		Predicted:   3 / (alpha + 2),
		Asymptotic:  true,
	}, nil
}

// Thm10Star returns the star profile centered at `center` for an
// arbitrary 1-2 host: Thm 10 asserts it is a Nash equilibrium whenever
// α >= 3 (regardless of which node is the center or who the host is).
func Thm10Star(h *game.Host, alpha float64, center int) (*game.Game, game.Profile, error) {
	if alpha < 3 {
		return nil, game.Profile{}, fmt.Errorf("constructions: Thm10Star requires alpha >= 3, got %v", alpha)
	}
	n := h.N()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if w := h.Weight(u, v); w != 1 && w != 2 {
				return nil, game.Profile{}, fmt.Errorf("constructions: Thm10Star requires a 1-2 host, found %v", w)
			}
		}
	}
	g := game.New(h, alpha)
	return g, game.StarProfile(n, center), nil
}
