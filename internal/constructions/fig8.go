package constructions

import (
	"gncg/internal/game"
	"gncg/internal/metric"
)

// Fig8Coordinates are the ten published points of Fig. 8, on which the
// paper exhibits a best-response cycle under the 1-norm (Thm 17: the
// Rd–GNCG with the 1-norm does not have the finite improvement property).
// The drawing fixes the cyclic strategy profiles and the α used; only the
// coordinates are recoverable from the text, so the experiment harness
// searches for a machine-verified improving-move cycle on this exact
// point set across an α grid (see dynamics.FindCycle).
var Fig8Coordinates = [][]float64{
	{3, 0}, // a0
	{0, 3}, // a1
	{2, 2}, // a2
	{0, 2}, // a3
	{1, 1}, // a4
	{4, 3}, // a5
	{2, 0}, // a6
	{4, 1}, // a7
	{1, 4}, // a8
	{1, 0}, // a9
}

// Fig8Game returns the Rd–GNCG on the Fig. 8 point set under the 1-norm
// with the given α.
func Fig8Game(alpha float64) *game.Game {
	pts, err := metric.NewPoints(copyCoords(Fig8Coordinates), 1)
	if err != nil {
		panic("constructions: " + err.Error()) // static coordinates
	}
	return game.New(game.NewHost(pts), alpha)
}

func copyCoords(cs [][]float64) [][]float64 {
	out := make([][]float64, len(cs))
	for i, c := range cs {
		out[i] = append([]float64(nil), c...)
	}
	return out
}
