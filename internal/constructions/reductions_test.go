package constructions

import (
	"math"
	"sort"
	"testing"

	"gncg/internal/bestresponse"
	"gncg/internal/cover"
	"gncg/internal/game"
	"gncg/internal/gen"
)

func mustVC(t *testing.T, n int, edges [][2]int) *cover.VCInstance {
	t.Helper()
	ins, err := cover.NewVCInstance(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func mustSC(t *testing.T, k int, sets [][]int) *cover.SCInstance {
	t.Helper()
	ins, err := cover.NewSCInstance(k, sets)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

// TestVCReductionCostFormula verifies the paper's closed form: with u
// buying a cover of size k, cost(u) = 3N + 6m + k.
func TestVCReductionCostFormula(t *testing.T) {
	vc := mustVC(t, 3, [][2]int{{0, 1}, {1, 2}})
	r, err := NewVCReduction(vc)
	if err != nil {
		t.Fatal(err)
	}
	for _, cov := range [][]int{{1}, {0, 1}, {0, 2}, {0, 1, 2}} {
		p, err := r.Profile(cov)
		if err != nil {
			t.Fatal(err)
		}
		s := game.NewState(r.Game, p)
		if got, want := s.Cost(r.U), r.UCost(len(cov)); math.Abs(got-want) > 1e-9 {
			t.Fatalf("cover %v: cost(u) = %v, want %v", cov, got, want)
		}
	}
}

// TestVCReductionBRMatchesMinCover: u's exact best-response cost equals
// 3N + 6m + |minimum cover|.
func TestVCReductionBRMatchesMinCover(t *testing.T) {
	cases := []struct {
		n     int
		edges [][2]int
	}{
		{3, [][2]int{{0, 1}, {1, 2}}},         // path: min cover 1
		{3, [][2]int{{0, 1}, {1, 2}, {0, 2}}}, // triangle: min cover 2
		{4, [][2]int{{0, 1}, {1, 2}, {2, 3}}}, // P4: min cover 2
		{4, [][2]int{{0, 1}, {0, 2}, {0, 3}}}, // star: min cover 1
	}
	for _, tc := range cases {
		vc := mustVC(t, tc.n, tc.edges)
		r, err := NewVCReduction(vc)
		if err != nil {
			t.Fatal(err)
		}
		kmin := len(cover.MinVertexCover(vc))
		full := make([]int, tc.n)
		for i := range full {
			full[i] = i
		}
		p, err := r.Profile(full) // start from the trivial cover
		if err != nil {
			t.Fatal(err)
		}
		s := game.NewState(r.Game, p)
		br := bestresponse.Exact(s, r.U)
		if want := r.UCost(kmin); math.Abs(br.Cost-want) > 1e-9 {
			t.Fatalf("edges %v: BR cost %v, want %v (kmin=%d)", tc.edges, br.Cost, want, kmin)
		}
	}
}

// TestVCReductionNEIffMinimum: the gadget profile is an NE exactly when
// the planted cover is minimum (Thm 4's equivalence).
func TestVCReductionNEIffMinimum(t *testing.T) {
	vc := mustVC(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	r, err := NewVCReduction(vc)
	if err != nil {
		t.Fatal(err)
	}
	minCover := cover.MinVertexCover(vc) // size 2
	pMin, err := r.Profile(minCover)
	if err != nil {
		t.Fatal(err)
	}
	if !bestresponse.IsNash(game.NewState(r.Game, pMin)) {
		t.Fatal("profile with minimum cover is not an NE")
	}
	// Non-minimum cover: {0,1,2} covers everything but is size 3 > 2.
	pBig, err := r.Profile([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	sBig := game.NewState(r.Game, pBig)
	if bestresponse.IsNash(sBig) {
		t.Fatal("profile with non-minimum cover is an NE")
	}
	// The deviation must come from u.
	br := bestresponse.Exact(sBig, r.U)
	if !r.Game.Improves(br.Cost, sBig.Cost(r.U)) {
		t.Fatal("u has no improving deviation despite non-minimum cover")
	}
}

// TestSetCoverTreeBRIsMinCover: exact best responses in the Thm 13 tree
// gadget buy exactly a minimum set cover's set nodes.
func TestSetCoverTreeBRIsMinCover(t *testing.T) {
	cases := []*cover.SCInstance{
		mustSC(t, 3, [][]int{{0, 1}, {1, 2}, {2}}),
		mustSC(t, 4, [][]int{{0, 1}, {2, 3}, {0, 2}, {1, 3}}),
		mustSC(t, 5, [][]int{{0, 1, 2}, {2, 3}, {3, 4}, {0, 4}}),
	}
	for ci, sc := range cases {
		r, err := NewSetCoverTree(sc, 100, 0.01, 1)
		if err != nil {
			t.Fatal(err)
		}
		s := game.NewState(r.Game, r.Profile())
		br := bestresponse.Exact(s, r.U)
		sets, other := r.DecodeStrategy(br.Strategy.Elems())
		if len(other) != 0 {
			t.Fatalf("case %d: BR buys non-set nodes %v", ci, other)
		}
		if !sc.IsSetCover(sets) {
			t.Fatalf("case %d: BR sets %v are not a cover", ci, sets)
		}
		kmin := len(cover.MinSetCover(sc))
		if len(sets) != kmin {
			t.Fatalf("case %d: BR buys %d sets, minimum cover is %d", ci, len(sets), kmin)
		}
	}
}

// TestSetCoverTreeCoverSizeMonotone: among cover-buying strategies, cost
// strictly decreases with cover size (the -Δβ + 2kε < 0 computation).
func TestSetCoverTreeCoverSizeMonotone(t *testing.T) {
	sc := mustSC(t, 4, [][]int{{0, 1}, {2, 3}, {0, 2}, {1, 3}, {0, 1, 2, 3}})
	r, err := NewSetCoverTree(sc, 100, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := game.NewState(r.Game, r.Profile())
	costOf := func(sets []int) float64 {
		strat := s.P.S[r.U].Clone()
		strat.Clear()
		for _, i := range sets {
			strat.Add(r.SetNode(i))
		}
		work := s.Clone()
		work.SetStrategy(r.U, strat)
		return work.Cost(r.U)
	}
	small := costOf([]int{4})        // the universal set: cover of size 1
	big := costOf([]int{0, 1})       // cover of size 2
	bigger := costOf([]int{0, 1, 2}) // cover of size 3
	if !(small < big && big < bigger) {
		t.Fatalf("cover costs not monotone in size: %v %v %v", small, big, bigger)
	}
}

// TestSetCoverGeoBRIsMinCover: the geometric Thm 16 gadget, under both
// the 2-norm and the 1-norm.
func TestSetCoverGeoBRIsMinCover(t *testing.T) {
	for _, p := range []float64{1, 2} {
		sc := mustSC(t, 4, [][]int{{0, 1}, {2, 3}, {0, 2}, {1, 3}})
		r, err := NewSetCoverGeo(sc, 100, 0.01, 1, p)
		if err != nil {
			t.Fatal(err)
		}
		s := game.NewState(r.Game, r.Profile())
		br := bestresponse.Exact(s, r.U)
		sets, other := r.DecodeStrategy(br.Strategy.Elems())
		if len(other) != 0 {
			t.Fatalf("p=%v: BR buys non-set nodes %v", p, other)
		}
		if !sc.IsSetCover(sets) {
			t.Fatalf("p=%v: BR sets %v are not a cover", p, sets)
		}
		if kmin := len(cover.MinSetCover(sc)); len(sets) != kmin {
			t.Fatalf("p=%v: BR buys %d sets, minimum is %d", p, len(sets), kmin)
		}
	}
}

// TestSetCoverGadgetsOnRandomInstances drives both gadgets with random
// set-cover instances and cross-checks against the exact cover solver.
func TestSetCoverGadgetsOnRandomInstances(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		sc := gen.SC(seed, 4, 4, 0.45)
		kmin := len(cover.MinSetCover(sc))

		tr, err := NewSetCoverTree(sc, 100, 0.001, 1)
		if err != nil {
			t.Fatal(err)
		}
		sTree := game.NewState(tr.Game, tr.Profile())
		brTree := bestresponse.Exact(sTree, tr.U)
		setsTree, otherTree := tr.DecodeStrategy(brTree.Strategy.Elems())
		if len(otherTree) != 0 || !sc.IsSetCover(setsTree) || len(setsTree) != kmin {
			t.Fatalf("seed %d: tree gadget BR %v (extra %v), kmin %d", seed, setsTree, otherTree, kmin)
		}

		ge, err := NewSetCoverGeo(sc, 100, 0.001, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		sGeo := game.NewState(ge.Game, ge.Profile())
		brGeo := bestresponse.Exact(sGeo, ge.U)
		setsGeo, otherGeo := ge.DecodeStrategy(brGeo.Strategy.Elems())
		if len(otherGeo) != 0 || !sc.IsSetCover(setsGeo) || len(setsGeo) != kmin {
			t.Fatalf("seed %d: geo gadget BR %v (extra %v), kmin %d", seed, setsGeo, otherGeo, kmin)
		}
	}
}

func TestGadgetParameterValidation(t *testing.T) {
	sc := mustSC(t, 3, [][]int{{0, 1}, {1, 2}, {2}})
	if _, err := NewSetCoverTree(sc, 100, 1, 1); err == nil {
		t.Error("beta <= k*eps accepted")
	}
	if _, err := NewSetCoverTree(sc, 100, 0.01, 50); err == nil {
		t.Error("beta >= L/3 accepted")
	}
	if _, err := NewSetCoverGeo(sc, 100, 1, 1, 2); err == nil {
		t.Error("geo beta <= k*eps accepted")
	}
	vcSingle := mustVC(t, 2, nil)
	if _, err := NewVCReduction(vcSingle); err == nil {
		t.Error("edgeless VC instance accepted")
	}
}

func TestVCReductionRejectsNonCover(t *testing.T) {
	vc := mustVC(t, 3, [][2]int{{0, 1}, {1, 2}})
	r, err := NewVCReduction(vc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Profile([]int{0}); err == nil {
		t.Fatal("non-cover {0} accepted")
	}
}

func TestDecodeStrategySorting(t *testing.T) {
	sc := mustSC(t, 3, [][]int{{0, 1}, {1, 2}, {2}})
	r, err := NewSetCoverTree(sc, 100, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	sets, other := r.DecodeStrategy([]int{r.SetNode(2), r.SetNode(0), r.ElementNode(1)})
	sort.Ints(sets)
	if len(sets) != 2 || sets[0] != 0 || sets[1] != 2 || len(other) != 1 {
		t.Fatalf("decode wrong: sets %v other %v", sets, other)
	}
}
