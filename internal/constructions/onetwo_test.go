package constructions

import (
	"math"
	"testing"

	"gncg/internal/bestresponse"
	"gncg/internal/game"
	"gncg/internal/gen"
	"gncg/internal/opt"
)

func TestThm8AlphaOneExactNEAtN2(t *testing.T) {
	lb, err := Thm8AlphaOne(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := lb.Game.N(); got != 7 {
		t.Fatalf("N=2 instance has %d agents, want 7", got)
	}
	if !bestresponse.IsNash(neState(t, lb)) {
		t.Fatal("Thm 8 (alpha=1) equilibrium candidate fails the exact NE check at N=2")
	}
}

func TestThm8AlphaOneGreedyStableLarger(t *testing.T) {
	lb, err := Thm8AlphaOne(4) // n = 21
	if err != nil {
		t.Fatal(err)
	}
	if !neState(t, lb).IsGreedyEquilibrium() {
		t.Fatal("Thm 8 (alpha=1) candidate fails the greedy check at N=4")
	}
}

func TestThm8AlphaOneOptimumExactSmall(t *testing.T) {
	lb, err := Thm8AlphaOne(2)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := opt.ExactSmall(lb.Game)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lb.OptimumCost()-exact.Cost) > 1e-9 {
		t.Fatalf("1-edge subgraph cost %v != exhaustive OPT %v", lb.OptimumCost(), exact.Cost)
	}
}

func TestThm8AlphaOneRatioApproaches32(t *testing.T) {
	var prev float64
	for i, N := range []int{2, 4, 8, 12} {
		lb, err := Thm8AlphaOne(N)
		if err != nil {
			t.Fatal(err)
		}
		r := lb.Ratio()
		if r <= 1 || r > 1.5+1e-9 {
			t.Fatalf("N=%d: ratio %v outside (1, 3/2]", N, r)
		}
		if i > 0 && r < prev-1e-9 {
			t.Fatalf("N=%d: ratio %v not increasing towards 3/2 (prev %v)", N, r, prev)
		}
		prev = r
	}
	if math.Abs(prev-1.5) > 0.15 {
		t.Fatalf("N=12 ratio %v still far from 3/2", prev)
	}
}

func TestThm8HalfToOneExactNEAtN2(t *testing.T) {
	for _, alpha := range []float64{0.5, 0.75, 0.99} {
		lb, err := Thm8HalfToOne(2, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if !bestresponse.IsNash(neState(t, lb)) {
			t.Fatalf("alpha %v: Thm 8 candidate fails the exact NE check at N=2", alpha)
		}
	}
}

func TestThm8HalfToOneRatioApproaches3OverAlphaPlus2(t *testing.T) {
	alpha := 0.6
	limit := 3 / (alpha + 2)
	var last float64
	for _, N := range []int{2, 6, 12} {
		lb, err := Thm8HalfToOne(N, alpha)
		if err != nil {
			t.Fatal(err)
		}
		last = lb.Ratio()
		if last > limit+1e-9 {
			t.Fatalf("N=%d: ratio %v exceeds asymptote %v", N, last, limit)
		}
	}
	if math.Abs(last-limit) > 0.1 {
		t.Fatalf("N=12 ratio %v still far from %v", last, limit)
	}
}

func TestThm8ParamValidation(t *testing.T) {
	if _, err := Thm8AlphaOne(1); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := Thm8HalfToOne(3, 0.3); err == nil {
		t.Error("alpha=0.3 accepted")
	}
	if _, err := Thm8HalfToOne(3, 1.0); err == nil {
		t.Error("alpha=1.0 accepted")
	}
}

func TestThm10StarIsNE(t *testing.T) {
	// Thm 10: for alpha >= 3 every star is an NE on any 1-2 host.
	for seed := int64(0); seed < 5; seed++ {
		h := game.NewHost(gen.OneTwo(seed, 7, 0.4))
		for _, alpha := range []float64{3, 5, 10} {
			g, p, err := Thm10Star(h, alpha, int(seed)%7)
			if err != nil {
				t.Fatal(err)
			}
			if !bestresponse.IsNash(game.NewState(g, p)) {
				t.Fatalf("seed %d alpha %v: star is not an NE (violates Thm 10)", seed, alpha)
			}
		}
	}
}

func TestThm10RejectsBadParams(t *testing.T) {
	h := game.NewHost(gen.OneTwo(1, 5, 0.5))
	if _, _, err := Thm10Star(h, 2.5, 0); err == nil {
		t.Error("alpha < 3 accepted")
	}
	pts := game.NewHost(gen.Points(1, 4, 2, 10, 2))
	if _, _, err := Thm10Star(pts, 4, 0); err == nil {
		t.Error("non-1-2 host accepted")
	}
}

// TestLemma3OneEdgesForLowAlpha: for alpha < 1, buying a missing 1-edge
// is always an improving move — so a stable network contains all 1-edges.
func TestLemma3OneEdgesForLowAlpha(t *testing.T) {
	h := game.NewHost(gen.OneTwo(3, 6, 0.5))
	g := game.New(h, 0.8)
	// Build a connected star profile and check: any missing 1-edge is an
	// improving buy for an endpoint.
	s := game.NewState(g, game.StarProfile(6, 0))
	for u := 0; u < 6; u++ {
		for v := 0; v < 6; v++ {
			if u == v || h.Weight(u, v) != 1 || s.Network().HasEdge(u, v) {
				continue
			}
			m := game.Move{Agent: u, Kind: game.Buy, V: v}
			if !(s.CostAfter(m) < s.Cost(u)+1e-12) {
				t.Fatalf("buying missing 1-edge (%d,%d) at alpha<1 did not improve", u, v)
			}
		}
	}
}
