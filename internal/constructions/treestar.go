package constructions

import (
	"fmt"
	"math"

	"gncg/internal/game"
	"gncg/internal/graph"
	"gncg/internal/metric"
)

// Thm15Star builds the T–GNCG lower-bound family of Thm 15 (Fig. 6): the
// metric is defined by a star S*_n with center u (node 0), one edge
// (u,v) of weight 1 (v is node 1), and n-2 edges of weight 2/α to leaves
// (nodes 2..n-1). The social optimum candidate is the defining star; the
// equilibrium candidate is the star S_n centered at v with v owning all
// edges: (v,u) of weight 1 and (v,leaf) of weight 1+2/α.
//
// The instance ratio is ((n-2)(1+2/α)+1) / ((n-2)(2/α)+1), which tends to
// (α+2)/2 as n grows; Predicted reports the exact finite-n value.
func Thm15Star(n int, alpha float64) (*LowerBound, error) {
	if n < 3 {
		return nil, fmt.Errorf("constructions: Thm15Star needs n >= 3, got %d", n)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("constructions: Thm15Star needs alpha > 0, got %v", alpha)
	}
	leafW := 2 / alpha
	edges := make([]graph.Edge, 0, n-1)
	edges = append(edges, graph.Edge{U: 0, V: 1, W: 1})
	for i := 2; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: i, W: leafW})
	}
	tm, err := metric.NewTreeMetric(n, edges)
	if err != nil {
		return nil, err
	}
	g := game.New(game.NewHost(tm), alpha)
	ne := game.StarProfile(n, 1)
	pred := (float64(n-2)*(1+leafW) + 1) / (float64(n-2)*leafW + 1)
	return &LowerBound{
		Name:        fmt.Sprintf("Thm15 T-GNCG star (n=%d, alpha=%g)", n, alpha),
		Game:        g,
		Equilibrium: ne,
		Optimum:     edges,
		Predicted:   pred,
	}, nil
}

// Thm15AsymptoticRatio is the limiting PoA lower bound of the family:
// (α+2)/2, the paper's tight bound for the T–GNCG and M–GNCG.
func Thm15AsymptoticRatio(alpha float64) float64 { return (alpha + 2) / 2 }

// Thm19CrossPolytope builds the Rd–GNCG (1-norm) lower bound of Thm 19
// (Fig. 10): 2d+1 points v0 = origin (node 0), v1 = e_1 (node 1), and the
// 2d-1 points -(2/α)e_1, ±(2/α)e_i for i >= 2 (nodes 2..2d). Under the
// 1-norm this embeds exactly the Thm 15 star with n = 2d+1: the optimum
// candidate is the star at v0, the equilibrium candidate the star at v1
// owned by v1. Predicted = 1 + α/(2 + α/(2d-1)), exact for every d.
func Thm19CrossPolytope(d int, alpha float64) (*LowerBound, error) {
	if d < 1 {
		return nil, fmt.Errorf("constructions: Thm19CrossPolytope needs d >= 1, got %d", d)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("constructions: Thm19CrossPolytope needs alpha > 0, got %v", alpha)
	}
	n := 2*d + 1
	r := 2 / alpha
	coords := make([][]float64, 0, n)
	origin := make([]float64, d)
	coords = append(coords, origin)
	v1 := make([]float64, d)
	v1[0] = 1
	coords = append(coords, v1)
	v2 := make([]float64, d)
	v2[0] = -r
	coords = append(coords, v2)
	for i := 1; i < d; i++ {
		plus := make([]float64, d)
		plus[i] = r
		minus := make([]float64, d)
		minus[i] = -r
		coords = append(coords, plus, minus)
	}
	pts, err := metric.NewPoints(coords, 1)
	if err != nil {
		return nil, err
	}
	g := game.New(game.NewHost(pts), alpha)
	opt := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		opt = append(opt, graph.Edge{U: 0, V: v, W: pts.Dist(0, v)})
	}
	twoD1 := float64(2*d - 1)
	pred := 1 + alpha/(2+alpha/twoD1)
	return &LowerBound{
		Name:        fmt.Sprintf("Thm19 l1 cross-polytope (d=%d, alpha=%g)", d, alpha),
		Game:        g,
		Equilibrium: game.StarProfile(n, 1),
		Optimum:     opt,
		Predicted:   pred,
	}, nil
}

// Lemma8Path builds the 1-dimensional geometric family of Lemma 8
// (Fig. 9) on m points: positions x_0 = 0, x_1 = 1 and
// x_i = x_{i-1} + (2/α)(1+2/α)^(i-2) for i >= 2. The optimum candidate is
// the path (consecutive points); the equilibrium candidate is the star
// centered at v0 with v0 owning every edge, whose weight to v_i is
// (1+2/α)^(i-1). Lemma 8 proves the ratio exceeds 1 for every n >= 3;
// Predicted carries the exact ratio of the two candidate costs computed
// in closed form.
func Lemma8Path(m int, alpha float64) (*LowerBound, error) {
	if m < 3 {
		return nil, fmt.Errorf("constructions: Lemma8Path needs m >= 3 points, got %d", m)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("constructions: Lemma8Path needs alpha > 0, got %v", alpha)
	}
	q := 1 + 2/alpha
	coords := make([][]float64, m)
	coords[0] = []float64{0}
	pos := 0.0
	for i := 1; i < m; i++ {
		var step float64
		if i == 1 {
			step = 1
		} else {
			step = (2 / alpha) * math.Pow(q, float64(i-2))
		}
		pos += step
		coords[i] = []float64{pos}
	}
	pts, err := metric.NewPoints(coords, 1)
	if err != nil {
		return nil, err
	}
	g := game.New(game.NewHost(pts), alpha)
	opt := make([]graph.Edge, 0, m-1)
	for i := 0; i+1 < m; i++ {
		opt = append(opt, graph.Edge{U: i, V: i + 1, W: pts.Dist(i, i+1)})
	}
	lb := &LowerBound{
		Name:        fmt.Sprintf("Lemma8 path-vs-star (m=%d, alpha=%g)", m, alpha),
		Game:        g,
		Equilibrium: game.StarProfile(m, 0),
		Optimum:     opt,
	}
	lb.Predicted = lb.EquilibriumCost() / lb.OptimumCost()
	return lb, nil
}

// Thm18Ratio is the closed-form four-point lower bound of Thm 18:
// (3α³+24α²+40α+24)/(α³+10α²+32α+24).
func Thm18Ratio(alpha float64) float64 {
	num := 3*alpha*alpha*alpha + 24*alpha*alpha + 40*alpha + 24
	den := alpha*alpha*alpha + 10*alpha*alpha + 32*alpha + 24
	return num / den
}

// Thm18FourPoint builds Lemma 8's construction restricted to four points,
// for which Thm 18 states the exact ratio Thm18Ratio(α). Four points keep
// the instance inside exhaustive reach: the experiment harness verifies
// both the equilibrium property and that the path really is the global
// social optimum.
func Thm18FourPoint(alpha float64) (*LowerBound, error) {
	lb, err := Lemma8Path(4, alpha)
	if err != nil {
		return nil, err
	}
	lb.Name = fmt.Sprintf("Thm18 four-point (alpha=%g)", alpha)
	lb.Predicted = Thm18Ratio(alpha)
	return lb, nil
}
