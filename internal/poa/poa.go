// Package poa measures Price-of-Anarchy quantities: cost ratios between
// candidate equilibria and candidate optima, sweeps of the paper's
// lower-bound families over α and size, and empirical PoA estimates from
// equilibria found by dynamics on random instances. Together these
// regenerate the PoA column of Table 1 and the quantitative content of
// Figures 3, 6, 9 and 10.
package poa

import (
	"math"

	"gncg/internal/bestresponse"
	"gncg/internal/constructions"
	"gncg/internal/dynamics"
	"gncg/internal/game"
	"gncg/internal/opt"
	"gncg/internal/parallel"
)

// VerificationTier states how strongly an equilibrium candidate was
// checked.
type VerificationTier int

const (
	// TierNone: the candidate was not checked.
	TierNone VerificationTier = iota
	// TierGreedy: no single buy/delete/swap improves (necessary for NE).
	TierGreedy
	// TierExactNash: no agent has any improving strategy (exact NE).
	TierExactNash
)

// String names the tier.
func (v VerificationTier) String() string {
	switch v {
	case TierGreedy:
		return "GE-checked"
	case TierExactNash:
		return "NE-exact"
	default:
		return "unchecked"
	}
}

// Row is one cell of a lower-bound sweep.
type Row struct {
	Name      string
	Alpha     float64
	Size      int
	Ratio     float64
	Predicted float64
	Tier      VerificationTier
	Stable    bool // the candidate passed the check of its tier
}

// exactNashLimit bounds the instance size for exact NE verification in
// sweeps: beyond it the greedy tier is used.
const exactNashLimit = 14

// greedyVerifyLimit bounds the instance size for greedy-equilibrium
// verification: each agent's scan is ~n candidate evaluations, so the
// check is quadratic and stops paying for itself on the scale tier.
// Beyond it the ratio is still measured (hosts are lazy, so construction
// and cost evaluation stay O(n) memory at n = 5000+) but the candidate
// goes unverified: TierNone with Stable=false, rendered "unchecked".
const greedyVerifyLimit = 2000

// VerifyLowerBound checks a construction's equilibrium candidate at the
// strongest affordable tier and returns the sweep row.
func VerifyLowerBound(lb *constructions.LowerBound, size int) Row {
	row := MeasureLowerBound(lb, size)
	n := lb.Game.N()
	switch {
	case n <= exactNashLimit:
		row.Tier = TierExactNash
		row.Stable = bestresponse.IsNash(game.NewState(lb.Game, lb.Equilibrium.Clone()))
	case n <= greedyVerifyLimit:
		row.Tier = TierGreedy
		row.Stable = game.NewState(lb.Game, lb.Equilibrium.Clone()).IsGreedyEquilibrium()
	}
	return row
}

// MeasureLowerBound evaluates a construction's ratio without verifying
// the equilibrium candidate (TierNone): the measurement path for sizes
// beyond greedyVerifyLimit, where cmd/poa ladders the closed-form
// families to n = 5000+ on lazy hosts.
func MeasureLowerBound(lb *constructions.LowerBound, size int) Row {
	return Row{
		Name:      lb.Name,
		Alpha:     lb.Game.Alpha,
		Size:      size,
		Ratio:     lb.Ratio(),
		Predicted: lb.Predicted,
	}
}

// SweepThm15 regenerates the Fig. 6 series: the T–GNCG star family across
// sizes for a fixed α.
func SweepThm15(alpha float64, sizes []int) []Row {
	return parallel.Map(len(sizes), func(i int) Row {
		lb, err := constructions.Thm15Star(sizes[i], alpha)
		if err != nil {
			panic(err)
		}
		return VerifyLowerBound(lb, sizes[i])
	})
}

// SweepThm19 regenerates the Fig. 10 series: the ℓ1 cross-polytope family
// across dimensions for a fixed α.
func SweepThm19(alpha float64, dims []int) []Row {
	return parallel.Map(len(dims), func(i int) Row {
		lb, err := constructions.Thm19CrossPolytope(dims[i], alpha)
		if err != nil {
			panic(err)
		}
		return VerifyLowerBound(lb, dims[i])
	})
}

// SweepThm8AlphaOne regenerates the Fig. 3 series for α = 1 across N.
func SweepThm8AlphaOne(sizes []int) []Row {
	return parallel.Map(len(sizes), func(i int) Row {
		lb, err := constructions.Thm8AlphaOne(sizes[i])
		if err != nil {
			panic(err)
		}
		return VerifyLowerBound(lb, sizes[i])
	})
}

// SweepThm8HalfToOne regenerates the Fig. 3 series for 1/2 <= α < 1.
func SweepThm8HalfToOne(alpha float64, sizes []int) []Row {
	return parallel.Map(len(sizes), func(i int) Row {
		lb, err := constructions.Thm8HalfToOne(sizes[i], alpha)
		if err != nil {
			panic(err)
		}
		return VerifyLowerBound(lb, sizes[i])
	})
}

// SweepLemma8 regenerates the Fig. 9 series across point counts.
func SweepLemma8(alpha float64, sizes []int) []Row {
	return parallel.Map(len(sizes), func(i int) Row {
		lb, err := constructions.Lemma8Path(sizes[i], alpha)
		if err != nil {
			panic(err)
		}
		return VerifyLowerBound(lb, sizes[i])
	})
}

// Empirical is the result of estimating the PoA on one random instance:
// the worst equilibrium found by dynamics from several starts, against
// the best optimum candidate available.
type Empirical struct {
	WorstRatio  float64 // max over found equilibria of cost/OPT-candidate
	Found       int     // equilibria found (dynamics runs that converged)
	Diameter    float64 // diameter of the worst equilibrium network
	UpperBound  float64 // the paper's bound this instance must respect
	OptimumCost float64
}

// EmpiricalPoA runs dynamics from `starts` seeded random profiles plus
// the empty profile, collects converged (greedy-)equilibria, and reports
// the worst cost ratio against the best available optimum candidate
// (exhaustive for n <= 7, heuristic otherwise). upperBound is the paper
// bound recorded alongside for the harness to compare against.
func EmpiricalPoA(g *game.Game, starts int, seed int64, upperBound float64) Empirical {
	optCost := bestOptimum(g)
	type run struct {
		cost float64
		diam float64
		ok   bool
	}
	runs := parallel.Map(starts+1, func(i int) run {
		var p game.Profile
		if i == 0 {
			p = game.EmptyProfile(g.N())
		} else {
			p = randomProfile(seed+int64(i)*2654435761, g.N(), 0.3)
		}
		s := game.NewState(g, p)
		res := dynamics.Run(s, dynamics.GreedyMover, dynamics.RoundRobin{}, 20000)
		if res.Outcome != dynamics.Converged || !s.Connected() {
			return run{}
		}
		return run{cost: s.SocialCost(), diam: s.Network().Diameter(), ok: true}
	})
	out := Empirical{UpperBound: upperBound, OptimumCost: optCost}
	for _, r := range runs {
		if !r.ok {
			continue
		}
		out.Found++
		if ratio := r.cost / optCost; ratio > out.WorstRatio {
			out.WorstRatio = ratio
			out.Diameter = r.diam
		}
	}
	return out
}

func bestOptimum(g *game.Game) float64 {
	if g.N() <= 7 {
		if res, err := opt.ExactSmall(g); err == nil {
			return res.Cost
		}
	}
	return opt.BestCandidate(g, 400).Cost
}

func randomProfile(seed int64, n int, p float64) game.Profile {
	// Cheap deterministic PRNG (splitmix-style) to avoid importing
	// math/rand here; quality is irrelevant for start diversity.
	state := uint64(seed)
	next := func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / float64(1<<53)
	}
	prof := game.EmptyProfile(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && next() < p {
				prof.Buy(u, v)
			}
		}
	}
	return prof
}

// RespectsBound reports whether an empirical measurement stays within the
// paper's upper bound, with slack for float noise.
func (e Empirical) RespectsBound() bool {
	if e.Found == 0 {
		return true // nothing measured, nothing violated
	}
	return e.WorstRatio <= e.UpperBound+1e-6 || math.IsInf(e.UpperBound, 1)
}
