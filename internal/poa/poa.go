// Package poa measures Price-of-Anarchy quantities: cost ratios between
// candidate equilibria and candidate optima, sweeps of the paper's
// lower-bound families over α and size, and empirical PoA estimates from
// equilibria found by dynamics on random instances. Together these
// regenerate the PoA column of Table 1 and the quantitative content of
// Figures 3, 6, 9 and 10.
//
// Equilibrium candidates are verified at the strongest affordable tier,
// downgrading with instance size rather than failing: exact Nash
// (TierExactNash, one exact best response per agent) up to
// exactNashLimit, certified parallel greedy verification (TierGreedy,
// game.VerifyGreedyEquilibrium) up to greedyVerifyLimitFor(workers),
// and measurement-only (TierNone, rendered "unchecked") beyond. The
// tier a row lands in depends only on n and the worker budget — never
// on the verdict — and verdicts themselves are identical for every
// worker count, so sweep rows stay byte-deterministic.
package poa

import (
	"fmt"
	"math"

	"gncg/internal/bestresponse"
	"gncg/internal/constructions"
	"gncg/internal/dynamics"
	"gncg/internal/game"
	"gncg/internal/opt"
	"gncg/internal/parallel"
)

// VerificationTier states how strongly an equilibrium candidate was
// checked.
type VerificationTier int

const (
	// TierNone: the candidate was not checked.
	TierNone VerificationTier = iota
	// TierGreedy: no single buy/delete/swap improves (necessary for NE).
	TierGreedy
	// TierExactNash: no agent has any improving strategy (exact NE).
	TierExactNash
)

// String names the tier.
func (v VerificationTier) String() string {
	switch v {
	case TierGreedy:
		return "GE-checked"
	case TierExactNash:
		return "NE-exact"
	default:
		return "unchecked"
	}
}

// Row is one cell of a lower-bound sweep.
type Row struct {
	Name      string
	Alpha     float64
	Size      int
	Ratio     float64
	Predicted float64
	Tier      VerificationTier
	Stable    bool // the candidate passed the check of its tier
	// VerifyWorkers is the verification worker count the row's check
	// ran with (0 when the row went unverified), and CertSkipped counts
	// agents the greedy tier's gain-bound certificates proved stable
	// without a candidate scan (game.GainCertificate). Both are
	// worker-schedule-invariant, so rows stay byte-deterministic.
	VerifyWorkers int
	CertSkipped   int
}

// exactNashLimit bounds the instance size for exact NE verification in
// sweeps: beyond it the greedy tier is used. The check computes one
// exact best response per agent — worst-case exponential regardless of
// how many workers share the agents — so the limit does not scale with
// the worker count: parallelism buys a constant factor against an
// exponential wall.
const exactNashLimit = 14

// greedyVerifyLimit is the instance-size budget for single-worker
// greedy-equilibrium verification. The magic number is a wall-clock
// budget, not a correctness bound: each agent's certificate pass is
// O(n log n) and each non-skipped agent's scan is ~n candidate
// evaluations, so a full check is quadratic-plus and ~n = 2000 is where
// it stops paying for itself in interactive sweeps on one core.
//
// greedyVerifyLimitFor scales the budget with the verification worker
// count: total verification work grows ~quadratically in n while
// workers divide wall time linearly, so equal wall time is reached at
// n ≈ base·√workers (4 workers ⇒ ~4000, 16 ⇒ 8000). The downgrade
// policy is unchanged: a row beyond the (scaled) limit still measures
// its ratio — hosts are lazy, so construction and cost evaluation stay
// O(n) memory at n = 5000+ — but goes unverified: TierNone with
// Stable=false, rendered "unchecked".
const greedyVerifyLimit = 2000

func greedyVerifyLimitFor(workers int) int {
	if workers <= 1 {
		return greedyVerifyLimit
	}
	return int(float64(greedyVerifyLimit) * math.Sqrt(float64(workers)))
}

// VerifyLowerBound checks a construction's equilibrium candidate at the
// strongest tier affordable on one verification worker and returns the
// sweep row. (The single-worker form keeps tier assignment — and hence
// row encoding — machine-independent; VerifyLowerBoundWorkers raises
// the greedy tier's reach on multi-core budgets.)
func VerifyLowerBound(lb *constructions.LowerBound, size int) Row {
	return VerifyLowerBoundWorkers(lb, size, 1)
}

// VerifyLowerBoundWorkers checks a construction's equilibrium candidate
// at the strongest tier affordable with the given verification worker
// budget (<= 0 means GOMAXPROCS): exact Nash via one exact best
// response per agent (bestresponse.VerifyNashWorkers) up to
// exactNashLimit, then certificate-accelerated parallel greedy
// verification (game.VerifyGreedyEquilibrium) up to
// greedyVerifyLimitFor(workers), then measurement only. Verdicts are
// identical for every worker count; only wall time and the tier cutoff
// depend on the budget.
func VerifyLowerBoundWorkers(lb *constructions.LowerBound, size, workers int) Row {
	if workers <= 0 {
		workers = parallel.Workers()
	}
	row := MeasureLowerBound(lb, size)
	n := lb.Game.N()
	// The exact-Nash tier is model-gated: cost models without the UMFL
	// best-response reduction (Rules.ExactNashViaUMFL false) cannot be
	// exactly verified — bestresponse.VerifyNashWorkers rejects them —
	// so such games downgrade to the greedy tier instead of panicking.
	// Tier assignment still depends only on (n, workers, model), never
	// on a verdict, so rows stay byte-deterministic.
	switch {
	case n <= exactNashLimit && lb.Game.Rules().ExactNashViaUMFL():
		rep := bestresponse.VerifyNashWorkers(game.NewState(lb.Game, lb.Equilibrium.Clone()), workers)
		row.Tier = TierExactNash
		row.Stable = rep.Nash
		row.VerifyWorkers = rep.Workers
	case n <= greedyVerifyLimitFor(workers):
		res := game.VerifyGreedyEquilibrium(
			game.NewState(lb.Game, lb.Equilibrium.Clone()),
			game.VerifyOptions{Workers: workers})
		row.Tier = TierGreedy
		row.Stable = res.Stable
		row.VerifyWorkers = res.Workers
		row.CertSkipped = res.CertSkipped
	}
	return row
}

// MeasureLowerBound evaluates a construction's ratio without verifying
// the equilibrium candidate (TierNone): the measurement path for sizes
// beyond greedyVerifyLimit, where cmd/poa ladders the closed-form
// families to n = 5000+ on lazy hosts.
func MeasureLowerBound(lb *constructions.LowerBound, size int) Row {
	return Row{
		Name:      lb.Name,
		Alpha:     lb.Game.Alpha,
		Size:      size,
		Ratio:     lb.Ratio(),
		Predicted: lb.Predicted,
	}
}

// familyConstructors maps the CLI family names to their lower-bound
// constructors. thm8a1 ignores alpha (the family is defined at α = 1).
var familyConstructors = map[string]func(size int, alpha float64) (*constructions.LowerBound, error){
	"thm15":    constructions.Thm15Star,
	"thm19":    constructions.Thm19CrossPolytope,
	"thm8a1":   func(size int, _ float64) (*constructions.LowerBound, error) { return constructions.Thm8AlphaOne(size) },
	"thm8half": constructions.Thm8HalfToOne,
	"lemma8":   constructions.Lemma8Path,
}

// SweepFamily runs one named lower-bound family ("thm15", "thm19",
// "thm8a1", "thm8half", "lemma8") across the size ladder with an
// explicit verification worker budget per cell (<= 0 means GOMAXPROCS;
// see VerifyLowerBoundWorkers). Cells are constructed in parallel;
// verdicts and ratios are identical for any budget, only the tier cutoff
// and wall time move.
func SweepFamily(family string, alpha float64, sizes []int, verifyWorkers int) ([]Row, error) {
	build, ok := familyConstructors[family]
	if !ok {
		return nil, fmt.Errorf("poa: unknown family %q", family)
	}
	return parallel.Map(len(sizes), func(i int) Row {
		lb, err := build(sizes[i], alpha)
		if err != nil {
			panic(err)
		}
		return VerifyLowerBoundWorkers(lb, sizes[i], verifyWorkers)
	}), nil
}

func mustSweep(family string, alpha float64, sizes []int) []Row {
	rows, err := SweepFamily(family, alpha, sizes, 1)
	if err != nil {
		panic(err)
	}
	return rows
}

// SweepThm15 regenerates the Fig. 6 series: the T–GNCG star family across
// sizes for a fixed α, verified on one worker.
func SweepThm15(alpha float64, sizes []int) []Row { return mustSweep("thm15", alpha, sizes) }

// SweepThm19 regenerates the Fig. 10 series: the ℓ1 cross-polytope family
// across dimensions for a fixed α, verified on one worker.
func SweepThm19(alpha float64, dims []int) []Row { return mustSweep("thm19", alpha, dims) }

// SweepThm8AlphaOne regenerates the Fig. 3 series for α = 1 across N.
func SweepThm8AlphaOne(sizes []int) []Row { return mustSweep("thm8a1", 1, sizes) }

// SweepThm8HalfToOne regenerates the Fig. 3 series for 1/2 <= α < 1.
func SweepThm8HalfToOne(alpha float64, sizes []int) []Row { return mustSweep("thm8half", alpha, sizes) }

// SweepLemma8 regenerates the Fig. 9 series across point counts.
func SweepLemma8(alpha float64, sizes []int) []Row { return mustSweep("lemma8", alpha, sizes) }

// Empirical is the result of estimating the PoA on one random instance:
// the worst equilibrium found by dynamics from several starts, against
// the best optimum candidate available.
type Empirical struct {
	WorstRatio  float64 // max over found equilibria of cost/OPT-candidate
	Found       int     // equilibria found (dynamics runs that converged)
	Diameter    float64 // diameter of the worst equilibrium network
	UpperBound  float64 // the paper's bound this instance must respect
	OptimumCost float64
}

// EmpiricalPoA runs dynamics from `starts` seeded random profiles plus
// the empty profile, collects converged (greedy-)equilibria, and reports
// the worst cost ratio against the best available optimum candidate
// (exhaustive for n <= 7, heuristic otherwise). upperBound is the paper
// bound recorded alongside for the harness to compare against.
func EmpiricalPoA(g *game.Game, starts int, seed int64, upperBound float64) Empirical {
	optCost := bestOptimum(g)
	type run struct {
		cost float64
		diam float64
		ok   bool
	}
	runs := parallel.Map(starts+1, func(i int) run {
		var p game.Profile
		if i == 0 {
			p = game.EmptyProfile(g.N())
		} else {
			p = randomProfile(seed+int64(i)*2654435761, g.N(), 0.3)
		}
		s := game.NewState(g, p)
		res := dynamics.Run(s, dynamics.GreedyMover, dynamics.RoundRobin{}, 20000)
		if res.Outcome != dynamics.Converged || !s.Connected() {
			return run{}
		}
		return run{cost: s.SocialCost(), diam: s.Network().Diameter(), ok: true}
	})
	out := Empirical{UpperBound: upperBound, OptimumCost: optCost}
	for _, r := range runs {
		if !r.ok {
			continue
		}
		out.Found++
		if ratio := r.cost / optCost; ratio > out.WorstRatio {
			out.WorstRatio = ratio
			out.Diameter = r.diam
		}
	}
	return out
}

func bestOptimum(g *game.Game) float64 {
	if g.N() <= 7 {
		if res, err := opt.ExactSmall(g); err == nil {
			return res.Cost
		}
	}
	return opt.BestCandidate(g, 400).Cost
}

func randomProfile(seed int64, n int, p float64) game.Profile {
	// Cheap deterministic PRNG (splitmix-style) to avoid importing
	// math/rand here; quality is irrelevant for start diversity.
	state := uint64(seed)
	next := func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / float64(1<<53)
	}
	prof := game.EmptyProfile(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && next() < p {
				prof.Buy(u, v)
			}
		}
	}
	return prof
}

// RespectsBound reports whether an empirical measurement stays within the
// paper's upper bound, with slack for float noise.
func (e Empirical) RespectsBound() bool {
	if e.Found == 0 {
		return true // nothing measured, nothing violated
	}
	return e.WorstRatio <= e.UpperBound+1e-6 || math.IsInf(e.UpperBound, 1)
}
