package poa

import (
	"math"
	"testing"

	"gncg/internal/bestresponse"
	"gncg/internal/constructions"
	"gncg/internal/dynamics"
	"gncg/internal/game"
	"gncg/internal/gen"
	"gncg/internal/opt"
)

// TestSigmaBoundOnMetricNE is the Thm 1 proof technique verified
// numerically: for exact Nash equilibria on metric hosts, EVERY pair's
// contribution ratio σ against the exact optimum is at most (α+2)/2.
func TestSigmaBoundOnMetricNE(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		alpha := 0.5 + float64(seed)*0.7
		g := game.New(game.NewHost(gen.Points(seed, 6, 2, 10, 2)), alpha)
		s := game.NewState(g, game.EmptyProfile(6))
		res := dynamics.Run(s, dynamics.BestResponseMover, dynamics.RoundRobin{}, 2000)
		if res.Outcome != dynamics.Converged || !bestresponse.IsNash(s) {
			continue
		}
		optRes, err := opt.ExactSmall(g)
		if err != nil {
			t.Fatal(err)
		}
		worst := SigmaMax(s, optRes.Edges)
		if worst.Sigma > (alpha+2)/2+1e-6 {
			t.Fatalf("seed %d alpha %v: pair (%d,%d) has sigma %v > (α+2)/2 = %v",
				seed, alpha, worst.U, worst.V, worst.Sigma, (alpha+2)/2)
		}
	}
}

// TestSigmaTriangleMatchesThm20: the non-metric triangle's σ is exactly
// ((α+2)/2)², exceeding the metric bound — reproducing why Thm 20's
// technique cannot give a better upper bound than ((α+2)/2)².
func TestSigmaTriangleMatchesThm20(t *testing.T) {
	for _, alpha := range []float64{1, 3, 8} {
		lb, err := constructions.Thm20Triangle(alpha)
		if err != nil {
			t.Fatal(err)
		}
		s := game.NewState(lb.Game, lb.Equilibrium.Clone())
		worst := SigmaMax(s, lb.Optimum)
		want := math.Pow((alpha+2)/2, 2)
		if math.Abs(worst.Sigma-want) > 1e-9 {
			t.Fatalf("alpha %v: sigma %v, want %v", alpha, worst.Sigma, want)
		}
		if worst.Sigma <= (alpha+2)/2 {
			t.Fatalf("alpha %v: non-metric sigma should exceed the metric bound", alpha)
		}
	}
}

// TestSigmaMaxAggregation: the social cost ratio never exceeds the max
// pair sigma (the averaging argument behind Thm 1).
func TestSigmaMaxAggregation(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		alpha := 1 + float64(seed)*0.5
		lb, err := constructions.Thm15Star(6, alpha)
		if err != nil {
			t.Fatal(err)
		}
		s := game.NewState(lb.Game, lb.Equilibrium.Clone())
		worst := SigmaMax(s, lb.Optimum)
		if lb.Ratio() > worst.Sigma+1e-9 {
			t.Fatalf("alpha %v: ratio %v exceeds max sigma %v", alpha, lb.Ratio(), worst.Sigma)
		}
	}
}

func TestSigmaOnIdenticalNetworks(t *testing.T) {
	// NE == OPT: every sigma is 1.
	lb, err := constructions.Thm15Star(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	optState := game.NewState(lb.Game, game.ProfileFromEdgeSet(5, lb.Optimum))
	worst := SigmaMax(optState, lb.Optimum)
	if math.Abs(worst.Sigma-1) > 1e-9 {
		t.Fatalf("identical networks: sigma %v, want 1", worst.Sigma)
	}
}
