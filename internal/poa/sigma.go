package poa

import (
	"math"

	"gncg/internal/game"
	"gncg/internal/graph"
)

// PairSigma is the per-pair contribution ratio σ at the heart of the
// paper's upper-bound technique (Thms 1 and 20): for a node pair (u,v),
//
//	σ(u,v) = (α·w(u,v)·x + 2·d_NE(u,v)) / (α·w(u,v)·x* + 2·d_OPT(u,v)),
//
// where x (resp. x*) indicates whether the equilibrium (resp. optimum)
// contains the edge (u,v). Summing numerators over pairs gives the NE
// social cost and summing denominators the OPT cost, so the maximum σ
// bounds the PoA: Thm 1 shows max σ <= (α+2)/2 on metric hosts, and the
// Thm 20 triangle shows σ can reach ((α+2)/2)² on non-metric hosts even
// though the overall ratio stays (α+2)/2.
type PairSigma struct {
	U, V  int
	Sigma float64
}

// SigmaMax computes the maximum per-pair σ of an equilibrium state
// against an optimum candidate edge set, returning the worst pair.
// Pairs with zero denominator and zero numerator are skipped; a zero
// denominator with positive numerator yields +Inf.
func SigmaMax(s *game.State, optEdges []graph.Edge) PairSigma {
	g := s.G
	n := g.N()
	optNet := graph.New(n)
	for _, e := range optEdges {
		if !optNet.HasEdge(e.U, e.V) {
			optNet.AddEdge(e.U, e.V, g.Host.Weight(e.U, e.V))
		}
	}
	dNE := s.Network().APSP()
	dOPT := optNet.APSP()
	worst := PairSigma{Sigma: math.Inf(-1)}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			w := g.Host.Weight(u, v)
			x, xStar := 0.0, 0.0
			if s.P.HasEdge(u, v) {
				x = 1
			}
			if optNet.HasEdge(u, v) {
				xStar = 1
			}
			num := g.Alpha*w*x + 2*dNE[u][v]
			den := g.Alpha*w*xStar + 2*dOPT[u][v]
			var sigma float64
			switch {
			case den == 0 && num == 0:
				continue
			case den == 0:
				sigma = math.Inf(1)
			default:
				sigma = num / den
			}
			if sigma > worst.Sigma {
				worst = PairSigma{U: u, V: v, Sigma: sigma}
			}
		}
	}
	return worst
}
