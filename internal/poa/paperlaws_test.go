package poa

// Complete verifications: the exhaustive census enumerates EVERY Nash
// equilibrium of tiny instances, so structural theorems quantified over
// "any NE" can be checked in full rather than sampled.

import (
	"math"
	"testing"

	"gncg/internal/game"
	"gncg/internal/gen"
	"gncg/internal/graph"
	"gncg/internal/opt"
	"gncg/internal/parallel"
	"gncg/internal/spanner"
)

// allNashProfiles enumerates every exact NE of a tiny game.
func allNashProfiles(t *testing.T, g *game.Game) []game.Profile {
	t.Helper()
	n := g.N()
	perAgent := 1 << (n - 1)
	total := 1
	for i := 0; i < n; i++ {
		total *= perAgent
	}
	costs := parallel.Map(total, func(idx int) []float64 {
		s := game.NewState(g, decodeProfile(idx, n, perAgent))
		out := make([]float64, n)
		for u := 0; u < n; u++ {
			out[u] = s.Cost(u)
		}
		return out
	})
	var out []game.Profile
	for idx := 0; idx < total; idx++ {
		ne := true
		for u := 0; u < n && ne; u++ {
			for alt := 0; alt < perAgent; alt++ {
				nidx := replaceAgentStrategy(idx, u, alt, n, perAgent)
				if nidx != idx && improvesEps(costs[nidx][u], costs[idx][u], g.Eps) {
					ne = false
					break
				}
			}
		}
		if ne {
			out = append(out, decodeProfile(idx, n, perAgent))
		}
	}
	return out
}

// TestThm12AllNEAreTrees: EVERY Nash equilibrium of 4-agent tree-metric
// games is a tree (complete verification of Thm 12 at n=4). Equilibria
// with infinite cost (degenerate disconnected profiles where no agent
// can unilaterally reconnect) are excluded, as in the paper's
// finite-cost setting.
func TestThm12AllNEAreTrees(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		tm := gen.Tree(seed, 4, 1, 9)
		for _, alpha := range []float64{0.8, 1.5, 3} {
			g := game.New(game.NewHost(tm), alpha)
			for _, p := range allNashProfiles(t, g) {
				s := game.NewState(g, p)
				if !s.Connected() {
					continue
				}
				if !s.Network().IsTree() {
					t.Fatalf("seed %d alpha %v: connected NE %v is not a tree (Thm 12)",
						seed, alpha, p.OwnedEdges())
				}
			}
		}
	}
}

// TestThm9AllNEEqualAlgorithm1: for α < 1/2 on 1-2 hosts, EVERY
// (connected) Nash equilibrium network equals Algorithm 1's optimum
// (complete verification of Thm 9 at n=4).
func TestThm9AllNEEqualAlgorithm1(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		h := game.NewHost(gen.OneTwo(seed+40, 4, 0.5))
		algRes, err := opt.Algorithm1(h)
		if err != nil {
			t.Fatal(err)
		}
		want := graph.FromEdges(4, algRes.Edges)
		for _, alpha := range []float64{0.1, 0.3, 0.45} {
			g := game.New(h, alpha)
			found := 0
			for _, p := range allNashProfiles(t, g) {
				s := game.NewState(g, p)
				if !s.Connected() {
					continue
				}
				found++
				for u := 0; u < 4; u++ {
					for v := u + 1; v < 4; v++ {
						if s.Network().HasEdge(u, v) != want.HasEdge(u, v) {
							t.Fatalf("seed %d alpha %v: NE network differs from Algorithm 1 at (%d,%d)",
								seed, alpha, u, v)
						}
					}
				}
			}
			if found == 0 {
				t.Fatalf("seed %d alpha %v: no connected NE found", seed, alpha)
			}
		}
	}
}

// TestLemma6StableSubsetOfOptimum: for 0 < α ≤ 1 on 1-2 hosts, every
// connected NE's edge set is contained in Algorithm 1's optimum G*, with
// d(u,v) = 2 for missing 1-edges (complete verification of Lemma 6's
// first parts at n=4).
func TestLemma6StableSubsetOfOptimum(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		h := game.NewHost(gen.OneTwo(seed+80, 4, 0.5))
		algRes, err := opt.Algorithm1(h)
		if err != nil {
			t.Fatal(err)
		}
		gStar := graph.FromEdges(4, algRes.Edges)
		for _, alpha := range []float64{0.6, 0.9} {
			g := game.New(h, alpha)
			for _, p := range allNashProfiles(t, g) {
				s := game.NewState(g, p)
				if !s.Connected() {
					continue
				}
				d := s.Network().APSP()
				for u := 0; u < 4; u++ {
					for v := u + 1; v < 4; v++ {
						if s.Network().HasEdge(u, v) && !gStar.HasEdge(u, v) {
							t.Fatalf("seed %d alpha %v: NE edge (%d,%d) not in G* (Lemma 6)",
								seed, alpha, u, v)
						}
						if h.Weight(u, v) == 1 && !s.Network().HasEdge(u, v) && d[u][v] != 2 {
							t.Fatalf("seed %d alpha %v: missing 1-edge (%d,%d) at distance %v, want 2",
								seed, alpha, u, v, d[u][v])
						}
					}
				}
			}
		}
	}
}

// TestLemma1AllAEAreSpanners: every connected add-only equilibrium among
// ALL profiles of tiny geometric games is an (α+1)-spanner (complete
// verification of Lemma 1 at n=4). AE membership is checked against
// single buys only, per the definition.
func TestLemma1AllAEAreSpanners(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		alpha := 0.7 + float64(seed)*0.9
		g := game.New(game.NewHost(gen.Points(seed+300, 4, 2, 10, 2)), alpha)
		n := 4
		perAgent := 1 << (n - 1)
		total := perAgent * perAgent * perAgent * perAgent
		for idx := 0; idx < total; idx++ {
			s := game.NewState(g, decodeProfile(idx, n, perAgent))
			if !s.Connected() || !s.IsAddOnlyEquilibrium() {
				continue
			}
			if !spanner.IsKSpanner(s.Network(), g.Host, alpha+1, 1e-9) {
				t.Fatalf("seed %d alpha %v: AE %v has stretch %v > α+1",
					seed, alpha, s.P.OwnedEdges(), spanner.Stretch(s.Network(), g.Host))
			}
		}
	}
}

// TestThm7ExactPoAWithinBound: for 1/2 <= α < 1 on 1-2 hosts, the EXACT
// PoA (by census over all profiles) respects Thm 7's 3/(α+2) bound.
func TestThm7ExactPoAWithinBound(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		h := game.NewHost(gen.OneTwo(seed+120, 4, 0.5))
		for _, alpha := range []float64{0.5, 0.7, 0.95} {
			g := game.New(h, alpha)
			c, err := ExhaustiveCensus(g)
			if err != nil {
				t.Fatal(err)
			}
			if c.Nash == 0 || math.IsInf(c.WorstNECost, 1) {
				continue
			}
			bound := 3 / (alpha + 2)
			if c.PoA() > bound+1e-9 {
				t.Fatalf("seed %d alpha %v: exact PoA %v exceeds 3/(α+2) = %v",
					seed, alpha, c.PoA(), bound)
			}
		}
	}
}

// TestThm2AllConnectedAEAreAlphaPlus1GE: EVERY connected add-only
// equilibrium of tiny geometric games is an (α+1)-approximate greedy
// equilibrium (complete verification of Thm 2 at n=4).
func TestThm2AllConnectedAEAreAlphaPlus1GE(t *testing.T) {
	for seed := int64(0); seed < 2; seed++ {
		alpha := 0.8 + float64(seed)
		g := game.New(game.NewHost(gen.Points(seed+700, 4, 2, 10, 2)), alpha)
		n := 4
		perAgent := 1 << (n - 1)
		total := perAgent * perAgent * perAgent * perAgent
		for idx := 0; idx < total; idx++ {
			s := game.NewState(g, decodeProfile(idx, n, perAgent))
			if !s.Connected() || !s.IsAddOnlyEquilibrium() {
				continue
			}
			if f := s.GreedyApproxFactor(); f > alpha+1+1e-6 {
				t.Fatalf("seed %d alpha %v: AE %v has greedy factor %v > α+1",
					seed, alpha, s.P.OwnedEdges(), f)
			}
		}
	}
}

// TestCensusWorstRatioBelowSigmaBound: the exact PoA of tiny metric
// instances is bounded by the worst pair sigma of the worst NE — the
// aggregation inequality underlying Thm 1, verified end to end.
func TestCensusWorstRatioBelowSigmaBound(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := game.New(game.NewHost(gen.Points(seed+500, 4, 2, 10, 2)), 1.5)
		c, err := ExhaustiveCensus(g)
		if err != nil {
			t.Fatal(err)
		}
		if c.Nash == 0 || math.IsInf(c.WorstNECost, 1) {
			continue
		}
		optRes, err := opt.ExactSmall(g)
		if err != nil {
			t.Fatal(err)
		}
		worstState := game.NewState(g, c.WorstNE.Clone())
		sig := SigmaMax(worstState, optRes.Edges)
		if c.PoA() > sig.Sigma+1e-9 {
			t.Fatalf("seed %d: exact PoA %v exceeds max sigma %v", seed, c.PoA(), sig.Sigma)
		}
	}
}
