package poa

import (
	"math"
	"testing"

	"gncg/internal/bestresponse"
	"gncg/internal/constructions"
	"gncg/internal/game"
	"gncg/internal/gen"
	"gncg/internal/metric"
	"gncg/internal/opt"
)

func TestCensusRefusesLargeN(t *testing.T) {
	g := game.New(game.NewHost(metric.Unit{N: 6}), 1)
	if _, err := ExhaustiveCensus(g); err == nil {
		t.Fatal("n=6 accepted")
	}
}

// TestCensusMatchesExactSolvers: the census optimum must equal the
// edge-subset exhaustive optimum, and census NE classification must
// agree with the facility-based exact Nash check on sampled profiles.
func TestCensusMatchesExactSolvers(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := game.New(game.NewHost(gen.Points(seed, 4, 2, 10, 2)), 0.8+float64(seed)*0.5)
		c, err := ExhaustiveCensus(g)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := opt.ExactSmall(g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(c.OptCost-exact.Cost) > 1e-9 {
			t.Fatalf("seed %d: census OPT %v != subset OPT %v", seed, c.OptCost, exact.Cost)
		}
		if c.Nash == 0 {
			t.Fatalf("seed %d: no NE found on a 4-agent metric game", seed)
		}
		// Cross-check the witnesses with the facility-based checker.
		if !bestresponse.IsNash(game.NewState(g, c.BestNE.Clone())) {
			t.Fatalf("seed %d: census best NE fails facility-based check", seed)
		}
		if !bestresponse.IsNash(game.NewState(g, c.WorstNE.Clone())) {
			t.Fatalf("seed %d: census worst NE fails facility-based check", seed)
		}
		if c.PoS() > c.PoA()+1e-12 {
			t.Fatalf("seed %d: PoS %v > PoA %v", seed, c.PoS(), c.PoA())
		}
		if c.PoS() < 1-1e-9 {
			t.Fatalf("seed %d: PoS %v < 1", seed, c.PoS())
		}
	}
}

// TestCensusRespectsThm1Bound: exact PoA of tiny metric instances must
// respect the (α+2)/2 upper bound of Thm 1.
func TestCensusRespectsThm1Bound(t *testing.T) {
	for seed := int64(10); seed < 14; seed++ {
		alpha := 0.5 + float64(seed-10)*0.8
		g := game.New(game.NewHost(gen.Points(seed, 4, 2, 10, 2)), alpha)
		c, err := ExhaustiveCensus(g)
		if err != nil {
			t.Fatal(err)
		}
		if c.Nash == 0 {
			continue
		}
		if c.PoA() > (alpha+2)/2+1e-6 {
			t.Fatalf("seed %d alpha %v: exact PoA %v exceeds (α+2)/2", seed, alpha, c.PoA())
		}
	}
}

// TestCensusTreeMetricPoSIsOne: Cor. 3 footnote — the Price of Stability
// of the T–GNCG is 1 (the defining tree is both OPT and NE).
func TestCensusTreeMetricPoSIsOne(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		tm := gen.Tree(seed, 4, 1, 8)
		g := game.New(game.NewHost(tm), 1+float64(seed))
		c, err := ExhaustiveCensus(g)
		if err != nil {
			t.Fatal(err)
		}
		if c.Nash == 0 {
			t.Fatalf("seed %d: no NE on tree metric", seed)
		}
		if math.Abs(c.PoS()-1) > 1e-9 {
			t.Fatalf("seed %d: T-GNCG PoS = %v, want 1", seed, c.PoS())
		}
	}
}

// TestCensusThm18Tight: on the four-point Thm 18 instance the exact PoA
// must be at least the construction's ratio (the star IS the worst NE or
// a worse one exists).
func TestCensusThm18Tight(t *testing.T) {
	for _, alpha := range []float64{1, 3} {
		lb, err := constructions.Thm18FourPoint(alpha)
		if err != nil {
			t.Fatal(err)
		}
		c, err := ExhaustiveCensus(lb.Game)
		if err != nil {
			t.Fatal(err)
		}
		if c.Nash == 0 {
			t.Fatal("no NE on Thm 18 instance")
		}
		if c.PoA() < lb.Predicted-1e-9 {
			t.Fatalf("alpha %v: exact PoA %v below construction ratio %v", alpha, c.PoA(), lb.Predicted)
		}
	}
}

// TestCensusEquilibriumHierarchy: every exact NE found by the census
// must also pass the greedy and add-only checks (NE ⊆ GE ⊆ AE).
func TestCensusEquilibriumHierarchy(t *testing.T) {
	for seed := int64(20); seed < 23; seed++ {
		g := game.New(game.NewHost(gen.Points(seed, 4, 2, 10, 2)), 1.2)
		c, err := ExhaustiveCensus(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []game.Profile{c.BestNE, c.WorstNE} {
			if p.N() == 0 {
				continue
			}
			s := game.NewState(g, p.Clone())
			if !s.IsGreedyEquilibrium() {
				t.Fatalf("seed %d: NE is not GE (hierarchy broken)", seed)
			}
			if !s.IsAddOnlyEquilibrium() {
				t.Fatalf("seed %d: NE is not AE (hierarchy broken)", seed)
			}
		}
	}
}

func TestCensusNoNash(t *testing.T) {
	// PoA/PoS are NaN when Nash == 0; craft via the accessor directly
	// (no tiny natural instance without NE is known, so unit-test the
	// accessor semantics).
	c := Census{Nash: 0, OptCost: 10}
	if !math.IsNaN(c.PoA()) || !math.IsNaN(c.PoS()) {
		t.Fatal("empty census must produce NaN ratios")
	}
}
