package poa

import (
	"math"
	"testing"

	"gncg/internal/game"
	"gncg/internal/gen"
)

func TestSweepThm15RowsVerify(t *testing.T) {
	rows := SweepThm15(2, []int{4, 8, 20})
	for _, r := range rows {
		if !r.Stable {
			t.Fatalf("row %+v: equilibrium candidate unstable", r)
		}
		if math.Abs(r.Ratio-r.Predicted) > 1e-9 {
			t.Fatalf("row %+v: ratio != predicted", r)
		}
	}
	// Small sizes must use the exact tier, large the greedy tier.
	if rows[0].Tier != TierExactNash {
		t.Fatalf("n=4 verified at tier %v, want exact", rows[0].Tier)
	}
	if rows[2].Tier != TierGreedy {
		t.Fatalf("n=20 verified at tier %v, want greedy", rows[2].Tier)
	}
}

func TestSweepThm19RowsVerify(t *testing.T) {
	for _, r := range SweepThm19(1.5, []int{1, 2, 4}) {
		if !r.Stable || math.Abs(r.Ratio-r.Predicted) > 1e-9 {
			t.Fatalf("bad row %+v", r)
		}
	}
}

func TestSweepThm8Rows(t *testing.T) {
	for _, r := range SweepThm8AlphaOne([]int{2, 3}) {
		if !r.Stable {
			t.Fatalf("Thm8 alpha=1 candidate unstable: %+v", r)
		}
		if r.Ratio > 1.5+1e-9 {
			t.Fatalf("Thm8 alpha=1 ratio %v exceeds asymptote", r.Ratio)
		}
	}
	for _, r := range SweepThm8HalfToOne(0.7, []int{2, 3}) {
		if !r.Stable {
			t.Fatalf("Thm8 half candidate unstable: %+v", r)
		}
	}
}

func TestSweepLemma8Rows(t *testing.T) {
	for _, r := range SweepLemma8(1, []int{4, 5, 6}) {
		if !r.Stable || r.Ratio <= 1 {
			t.Fatalf("bad Lemma 8 row %+v", r)
		}
	}
}

// TestEmpiricalRespectsThm1Bound: equilibria found on random metric
// instances must respect the M–GNCG PoA upper bound (α+2)/2 ... relative
// to the OPT candidate, which can only make the measured ratio larger,
// so a pass is meaningful evidence.
func TestEmpiricalRespectsThm1Bound(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		alpha := 0.5 + float64(seed)
		g := game.New(game.NewHost(gen.Points(seed, 6, 2, 10, 2)), alpha)
		e := EmpiricalPoA(g, 6, seed*17, (alpha+2)/2)
		if e.Found == 0 {
			t.Logf("seed %d: no converged equilibria (cycles possible)", seed)
			continue
		}
		// Greedy equilibria are a superset of NE, so the bound may not
		// apply strictly; record but only fail on gross violations that
		// would indicate a cost-accounting bug.
		if e.WorstRatio > 3*e.UpperBound {
			t.Fatalf("seed %d: ratio %v wildly above bound %v", seed, e.WorstRatio, e.UpperBound)
		}
	}
}

func TestEmpiricalFindsEquilibria(t *testing.T) {
	g := game.New(game.NewHost(gen.Points(3, 6, 2, 10, 2)), 1)
	e := EmpiricalPoA(g, 4, 9, math.Inf(1))
	if e.Found == 0 {
		t.Fatal("no equilibria found on a benign instance")
	}
	if e.WorstRatio < 1-1e-9 {
		t.Fatalf("worst ratio %v below 1: OPT candidate beaten by equilibrium?", e.WorstRatio)
	}
	if !e.RespectsBound() {
		t.Fatal("infinite bound not respected")
	}
	if e.Diameter <= 0 {
		t.Fatalf("diameter %v", e.Diameter)
	}
}

func TestTierString(t *testing.T) {
	if TierExactNash.String() != "NE-exact" || TierGreedy.String() != "GE-checked" || TierNone.String() != "unchecked" {
		t.Fatal("tier names wrong")
	}
}
