package poa

import (
	"runtime"
	"testing"

	"gncg/internal/constructions"
)

// TestLowerBoundFamilyLazyAtScale pins the scale path cmd/poa takes for
// `-family thm15 -sizes 5000`: the construction must stay lazy — O(n)
// bytes for the tree host, never a densified O(n²) matrix — and the
// sweep row beyond greedyVerifyLimit must measure the ratio at TierNone
// instead of launching the quadratic stability check.
func TestLowerBoundFamilyLazyAtScale(t *testing.T) {
	const n = 5000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	lb5k, err := constructions.Thm15Star(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	_ = lb5k.Game.Host.Weight(17, 4242)
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(lb5k)
	// Lazy construction is a few O(n) slices (tree adjacency, LCA tables,
	// edge list) — well under a megabyte. Densifying the host at n = 5000
	// would allocate 8·n² = 200 MB.
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 8<<20 {
		t.Fatalf("Thm15Star(%d) allocated %d bytes; quadratic dense-host path suspected", n, grew)
	}

	lb, err := constructions.Thm15Star(2500, 4)
	if err != nil {
		t.Fatal(err)
	}
	row := VerifyLowerBound(lb, 2500)
	if row.Tier != TierNone {
		t.Fatalf("n=2500 row verified at tier %v; want TierNone beyond greedyVerifyLimit", row.Tier)
	}
	if row.Stable {
		t.Fatal("unchecked row reported stable")
	}
	if row.Ratio <= 1 || row.Predicted <= 1 {
		t.Fatalf("implausible measured ratio %v (predicted %v)", row.Ratio, row.Predicted)
	}
	measured := MeasureLowerBound(lb, 2500)
	if measured.Ratio != row.Ratio || measured.Tier != TierNone {
		t.Fatalf("MeasureLowerBound row %+v differs from verify path %+v", measured, row)
	}
}
