package poa

import (
	"fmt"
	"math"

	"gncg/internal/bitset"
	"gncg/internal/game"
	"gncg/internal/parallel"
)

// Census is an exhaustive equilibrium census of a tiny game: every
// strategy profile is enumerated and classified. It yields the EXACT
// Price of Anarchy and Price of Stability of the instance — the paper's
// conclusion names the PoS analysis as the natural next step, and
// Cor. 3's footnote (PoS = 1 for the T–GNCG) becomes checkable.
type Census struct {
	Profiles int // total strategy profiles enumerated
	Nash     int // exact Nash equilibria among them
	// OptCost is the exact social optimum cost (min over all profiles;
	// coincides with the edge-subset optimum since double purchases are
	// never beneficial).
	OptCost float64
	// BestNECost and WorstNECost are the cheapest and most expensive
	// Nash equilibrium social costs; +Inf / -Inf if no NE exists.
	BestNECost  float64
	WorstNECost float64
	// BestNE and WorstNE are witnesses (empty profiles if none).
	BestNE  game.Profile
	WorstNE game.Profile
}

// PoA returns the exact Price of Anarchy: worst NE cost over optimum.
// NaN if the instance has no Nash equilibrium.
func (c Census) PoA() float64 {
	if c.Nash == 0 {
		return math.NaN()
	}
	return c.WorstNECost / c.OptCost
}

// PoS returns the exact Price of Stability: best NE cost over optimum.
// NaN if the instance has no Nash equilibrium.
func (c Census) PoS() float64 {
	if c.Nash == 0 {
		return math.NaN()
	}
	return c.BestNECost / c.OptCost
}

// maxCensusAgents bounds the exhaustive profile enumeration (the space
// has 2^(n(n-1)) profiles).
const maxCensusAgents = 5

// ExhaustiveCensus enumerates every strategy profile of a game with
// n <= 5 agents, classifies the exact Nash equilibria (a profile is an
// NE iff no agent's digit can be replaced by a cheaper one — the full
// strategy space is the deviation space, so this is exact), and returns
// the instance's exact PoA and PoS.
//
// The census is enumeration-based, not reduction-based, so it is exact
// under every cost model — including those the UMFL Nash tier rejects
// (budget): the model's feasibility predicate restricts both the NE
// candidates and the deviation space (an agent cannot deviate to an
// inadmissible strategy), and OptCost ranges over feasible profiles
// only. Under unconstrained models every profile is feasible and the
// classification is unchanged.
func ExhaustiveCensus(g *game.Game) (Census, error) {
	n := g.N()
	if n > maxCensusAgents {
		return Census{}, fmt.Errorf("poa: exhaustive census supports n <= %d, got %d", maxCensusAgents, n)
	}
	perAgent := 1 << (n - 1)
	total := 1
	for i := 0; i < n; i++ {
		total *= perAgent
	}

	// Per-agent strategy-digit admissibility under the cost model,
	// precomputed once (n·2^(n-1) entries) so the deviation loop below
	// stays a table lookup.
	rules := g.Rules()
	feas := make([][]bool, n)
	for u := 0; u < n; u++ {
		feas[u] = make([]bool, perAgent)
		for alt := 0; alt < perAgent; alt++ {
			feas[u][alt] = rules.Feasible(g, u, decodeStrategy(alt, u, n))
		}
	}
	profFeasible := func(idx int) bool {
		for u := 0; u < n; u++ {
			if !feas[u][idx%perAgent] {
				return false
			}
			idx /= perAgent
		}
		return true
	}

	type profInfo struct {
		costs  []float64
		social float64
	}
	infos := parallel.Map(total, func(idx int) profInfo {
		s := game.NewState(g, decodeProfile(idx, n, perAgent))
		pi := profInfo{costs: make([]float64, n)}
		for u := 0; u < n; u++ {
			pi.costs[u] = s.Cost(u)
			pi.social += pi.costs[u]
		}
		return pi
	})

	c := Census{
		Profiles:    total,
		OptCost:     math.Inf(1),
		BestNECost:  math.Inf(1),
		WorstNECost: math.Inf(-1),
	}
	isNE := parallel.Map(total, func(idx int) bool {
		if !profFeasible(idx) {
			return false
		}
		for u := 0; u < n; u++ {
			cur := infos[idx].costs[u]
			for alt := 0; alt < perAgent; alt++ {
				if !feas[u][alt] {
					continue // inadmissible deviation under the model
				}
				nidx := replaceAgentStrategy(idx, u, alt, n, perAgent)
				if nidx == idx {
					continue
				}
				if improvesEps(infos[nidx].costs[u], cur, g.Eps) {
					return false
				}
			}
		}
		return true
	})
	for idx := 0; idx < total; idx++ {
		if profFeasible(idx) && infos[idx].social < c.OptCost {
			c.OptCost = infos[idx].social
		}
		if !isNE[idx] {
			continue
		}
		c.Nash++
		if infos[idx].social < c.BestNECost {
			c.BestNECost = infos[idx].social
			c.BestNE = decodeProfile(idx, n, perAgent)
		}
		if infos[idx].social > c.WorstNECost {
			c.WorstNECost = infos[idx].social
			c.WorstNE = decodeProfile(idx, n, perAgent)
		}
	}
	return c, nil
}

func improvesEps(newCost, oldCost, eps float64) bool {
	if math.IsInf(oldCost, 1) {
		return !math.IsInf(newCost, 1)
	}
	return newCost < oldCost-eps
}

// decodeProfile expands a packed profile index: agent u's digit (base
// perAgent) is a bitmask over the other agents in increasing order.
// Mirrors the encoding in the dynamics package's exhaustive FIP check.
func decodeProfile(idx, n, perAgent int) game.Profile {
	p := game.EmptyProfile(n)
	for u := 0; u < n; u++ {
		mask := idx % perAgent
		idx /= perAgent
		bit := 0
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			if mask&(1<<bit) != 0 {
				p.Buy(u, v)
			}
			bit++
		}
	}
	return p
}

// decodeStrategy expands one agent digit into that agent's strategy
// set, with decodeProfile's bit order (the other agents, increasing).
func decodeStrategy(mask, u, n int) bitset.Set {
	strat := bitset.New(n)
	bit := 0
	for v := 0; v < n; v++ {
		if v == u {
			continue
		}
		if mask&(1<<bit) != 0 {
			strat.Add(v)
		}
		bit++
	}
	return strat
}

func replaceAgentStrategy(idx, u, alt, n, perAgent int) int {
	pow := 1
	for i := 0; i < u; i++ {
		pow *= perAgent
	}
	digit := (idx / pow) % perAgent
	return idx + (alt-digit)*pow
}
