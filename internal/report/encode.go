package report

import (
	"encoding/json"
	"math"
	"strconv"
)

// JSONValue renders v as one deterministic JSON token. Floats use the
// shortest round-tripping decimal form; non-finite floats (which JSON
// cannot represent as numbers) become the strings "inf", "-inf", "nan",
// matching Format. Strings are JSON-escaped; other types fall back to
// their %v rendering, escaped as a string.
func JSONValue(v any) string {
	switch x := v.(type) {
	case float64:
		return jsonFloat(x)
	case float32:
		return jsonFloat(float64(x))
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case bool:
		return strconv.FormatBool(x)
	case string:
		return jsonString(x)
	case nil:
		return "null"
	default:
		return jsonString(Format(v))
	}
}

func jsonFloat(x float64) string {
	switch {
	case math.IsInf(x, 1):
		return `"inf"`
	case math.IsInf(x, -1):
		return `"-inf"`
	case math.IsNaN(x):
		return `"nan"`
	default:
		return strconv.FormatFloat(x, 'g', -1, 64)
	}
}

func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		// json.Marshal of a string cannot fail.
		panic("report: unreachable: " + err.Error())
	}
	return string(b)
}

// Precise renders v at full precision for CSV cells: like JSONValue but
// without quoting (the CSV writer handles escaping).
func Precise(v any) string {
	switch x := v.(type) {
	case float64:
		return preciseFloat(x)
	case float32:
		return preciseFloat(float64(x))
	case string:
		return x
	default:
		return Format(v)
	}
}

func preciseFloat(x float64) string {
	switch {
	case math.IsInf(x, 1):
		return "inf"
	case math.IsInf(x, -1):
		return "-inf"
	case math.IsNaN(x):
		return "nan"
	default:
		return strconv.FormatFloat(x, 'g', -1, 64)
	}
}
