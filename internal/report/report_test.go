package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.23456)
	tb.AddRow("long-name-entry", 42)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "1.2346") {
		t.Fatalf("float not formatted: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: header and rows share the first column width.
	if !strings.HasPrefix(lines[3], "alpha  ") && !strings.HasPrefix(lines[3], "alpha ") {
		t.Fatalf("row misaligned: %q", lines[3])
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow(1)
	var sb strings.Builder
	tb.Render(&sb)
	if strings.Contains(sb.String(), "==") {
		t.Fatal("untitled table rendered a title")
	}
}

func TestFormat(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{math.Inf(1), "inf"},
		{math.Inf(-1), "-inf"},
		{math.NaN(), "nan"},
		{3.0, "3"},
		{2.5, "2.5000"},
		{float32(1.5), "1.5000"},
		{"text", "text"},
		{7, "7"},
		{true, "true"},
	}
	for _, c := range cases {
		if got := Format(c.in); got != c.want {
			t.Errorf("Format(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("ragged", "a", "b")
	tb.AddRow(1)          // short row
	tb.AddRow(1, 2, 3, 4) // long row must not panic
	var sb strings.Builder
	tb.Render(&sb)
	if !strings.Contains(sb.String(), "3  4") {
		t.Fatalf("extra cells dropped: %q", sb.String())
	}
}

func TestCheck(t *testing.T) {
	if Check(true) != "PASS" || Check(false) != "FAIL" {
		t.Fatal("Check labels wrong")
	}
}
