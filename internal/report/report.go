// Package report renders the experiment harness's tables and series as
// aligned plain text and deterministic machine encodings (JSON tokens,
// full-precision CSV, wide-format CSV tables), shared by the cmd tools
// and the benchmark harness.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows under a header and renders with aligned columns.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column names.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; values are rendered with Format.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = Format(c)
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c // ragged row: render extra cells unpadded
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Format renders a value compactly: floats with up to 4 significant
// decimals, +Inf as "inf", everything else via %v.
func Format(v any) string {
	switch x := v.(type) {
	case float64:
		return formatFloat(x)
	case float32:
		return formatFloat(float64(x))
	default:
		return fmt.Sprintf("%v", v)
	}
}

func formatFloat(x float64) string {
	switch {
	case math.IsInf(x, 1):
		return "inf"
	case math.IsInf(x, -1):
		return "-inf"
	case math.IsNaN(x):
		return "nan"
	case x == math.Trunc(x) && math.Abs(x) < 1e12:
		return fmt.Sprintf("%.0f", x)
	default:
		return fmt.Sprintf("%.4f", x)
	}
}

// Check renders a pass/fail verdict column.
func Check(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
