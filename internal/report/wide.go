package report

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WideTable is a rectangular wide-format table: a fixed header and one
// value row per entry, encoded as RFC-4180 CSV with every value rendered
// at full precision (Precise). It is the plot-ready counterpart of the
// long-format key/value encoding: per-experiment schemas put one
// observation per row with its parameters as leading columns, so the
// paper's sweep figures plot straight off the file.
type WideTable struct {
	Header []string
	Rows   [][]any
}

// EncodeCSV writes the table. Rows that do not match the header width
// are an error: a wide table is rectangular by contract.
func (t *WideTable) EncodeCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	buf := make([]string, len(t.Header))
	for i, row := range t.Rows {
		if len(row) != len(t.Header) {
			return fmt.Errorf("report: wide row %d has %d cells, header has %d",
				i, len(row), len(t.Header))
		}
		for j, v := range row {
			buf[j] = Precise(v)
		}
		if err := cw.Write(buf); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
