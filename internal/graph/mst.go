package graph

import "math"

// MST returns the edges of a minimum spanning tree (Prim's algorithm) and
// its total weight. If the graph is disconnected it returns a minimum
// spanning forest and the forest's weight; callers needing a spanning tree
// should check Connected first.
func (g *Graph) MST() ([]Edge, float64) {
	inTree := make([]bool, g.n)
	best := make([]float64, g.n)
	from := make([]int, g.n)
	for i := range best {
		best[i] = math.Inf(1)
		from[i] = -1
	}
	var edges []Edge
	total := 0.0
	for root := 0; root < g.n; root++ {
		if inTree[root] {
			continue
		}
		best[root] = 0
		h := newHeap(g.n)
		h.push(root, 0)
		for h.len() > 0 {
			u, p := h.pop()
			if inTree[u] || p > best[u] {
				continue
			}
			inTree[u] = true
			if from[u] >= 0 {
				edges = append(edges, Edge{from[u], u, best[u]})
				total += best[u]
			}
			for _, e := range g.adj[u] {
				if !inTree[e.to] && e.w < best[e.to] {
					best[e.to] = e.w
					from[e.to] = u
					h.push(e.to, e.w)
				}
			}
		}
	}
	return edges, total
}
