package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBFSHopsPath(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	hops := g.BFSHops(0)
	for i, want := range []int{0, 1, 2, 3} {
		if hops[i] != want {
			t.Fatalf("hops[%d] = %d, want %d", i, hops[i], want)
		}
	}
}

func TestBFSHopsUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	if hops := g.BFSHops(0); hops[2] != -1 {
		t.Fatalf("unreachable hop = %d, want -1", hops[2])
	}
	if g.HopDiameter() != -1 {
		t.Fatal("disconnected hop diameter must be -1")
	}
}

// TestBFSMatchesDijkstraOnUnitWeights: on unit-weight graphs hop counts
// equal shortest-path distances.
func TestBFSMatchesDijkstraOnUnitWeights(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(u, v, 1)
				}
			}
		}
		src := rng.Intn(n)
		hops := g.BFSHops(src)
		dist := g.Dijkstra(src)
		for v := 0; v < n; v++ {
			if hops[v] < 0 {
				if !math.IsInf(dist[v], 1) {
					return false
				}
				continue
			}
			if float64(hops[v]) != dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHopDiameter(t *testing.T) {
	g := New(5)
	for v := 1; v < 5; v++ {
		g.AddEdge(0, v, 1)
	}
	if got := g.HopDiameter(); got != 2 {
		t.Fatalf("star hop diameter = %d, want 2", got)
	}
	if got := New(1).HopDiameter(); got != 0 {
		t.Fatalf("singleton hop diameter = %d, want 0", got)
	}
}
