package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v, rng.Float64()*10)
			}
		}
	}
	return g
}

func TestAddRemoveEdge(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2.5)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
	if got := g.EdgeWeight(1, 0); got != 2.5 {
		t.Fatalf("EdgeWeight = %v", got)
	}
	// Re-adding keeps lighter weight.
	g.AddEdge(0, 1, 5)
	if got := g.EdgeWeight(0, 1); got != 2.5 {
		t.Fatalf("heavier re-add changed weight to %v", got)
	}
	g.AddEdge(1, 0, 1)
	if got := g.EdgeWeight(0, 1); got != 1 {
		t.Fatalf("lighter re-add did not update: %v", got)
	}
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge returned false for present edge")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge returned true for absent edge")
	}
	if !math.IsInf(g.EdgeWeight(0, 1), 1) {
		t.Fatal("absent edge weight not +Inf")
	}
	if g.M() != 0 {
		t.Fatalf("M = %d after removal", g.M())
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("self-loop did not panic")
		}
	}()
	New(3).AddEdge(1, 1, 1)
}

func TestNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative weight did not panic")
		}
	}()
	New(3).AddEdge(0, 1, -1)
}

func TestDijkstraPath(t *testing.T) {
	// 0 -1- 1 -1- 2, plus direct 0-2 with weight 5: path wins.
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 5)
	d := g.Dijkstra(0)
	if d[2] != 2 {
		t.Fatalf("d(0,2) = %v, want 2", d[2])
	}
	if d[0] != 0 {
		t.Fatalf("d(0,0) = %v", d[0])
	}
}

func TestDijkstraDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	d := g.Dijkstra(0)
	if !math.IsInf(d[2], 1) || !math.IsInf(d[3], 1) {
		t.Fatal("unreachable vertices must be +Inf")
	}
}

func TestDijkstraSkipsInfEdges(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, math.Inf(1))
	g.AddEdge(1, 2, 1)
	d := g.Dijkstra(0)
	if !math.IsInf(d[1], 1) || !math.IsInf(d[2], 1) {
		t.Fatal("+Inf edges must not provide connectivity")
	}
}

func TestDijkstraZeroWeights(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	d := g.Dijkstra(0)
	if d[2] != 0 {
		t.Fatalf("zero-weight path distance = %v", d[2])
	}
}

// TestDijkstraMatchesFloydWarshall is the core shortest-path property
// test: two independent implementations must agree on random graphs.
func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, 0.3)
		want := g.FloydWarshall()
		got := g.APSP()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a, b := got[i][j], want[i][j]
				if math.IsInf(a, 1) != math.IsInf(b, 1) {
					return false
				}
				if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAPSPSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 25, 0.4)
	d := g.APSP()
	for i := range d {
		for j := range d {
			if math.Abs(d[i][j]-d[j][i]) > 1e-9 {
				t.Fatalf("APSP asymmetric at (%d,%d): %v vs %v", i, j, d[i][j], d[j][i])
			}
		}
	}
}

func TestDijkstraAvoiding(t *testing.T) {
	// Path 0-1-2; avoiding 1 disconnects 0 from 2.
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	d := g.DijkstraAvoiding(0, 1)
	if !math.IsInf(d[2], 1) {
		t.Fatalf("avoiding middle vertex: d(0,2) = %v, want +Inf", d[2])
	}
	if !math.IsInf(d[1], 1) {
		t.Fatal("avoided vertex distance must be +Inf")
	}
}

// TestAPSPAvoidingMatchesDeletion cross-checks vertex-avoiding APSP against
// explicitly deleting the vertex's incident edges.
func TestAPSPAvoidingMatchesDeletion(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(15)
		g := randomGraph(rng, n, 0.4)
		avoid := rng.Intn(n)
		deleted := g.Clone()
		for v := 0; v < n; v++ {
			deleted.RemoveEdge(avoid, v)
		}
		want := deleted.APSP()
		got := g.APSPAvoiding(avoid)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == avoid || j == avoid {
					continue
				}
				a, b := got[i][j], want[i][j]
				if math.IsInf(a, 1) != math.IsInf(b, 1) || (!math.IsInf(a, 1) && math.Abs(a-b) > 1e-9) {
					t.Fatalf("trial %d avoid %d: (%d,%d) got %v want %v", trial, avoid, i, j, a, b)
				}
			}
		}
	}
}

func TestConnectivityAndTree(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	g.AddEdge(2, 3, 1)
	if !g.Connected() || !g.IsTree() || g.HasCycle() {
		t.Error("path graph must be a connected acyclic tree")
	}
	g.AddEdge(0, 3, 1)
	if g.IsTree() || !g.HasCycle() {
		t.Error("cycle graph misclassified")
	}
}

func TestDiameterAndEccentricity(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	if got := g.Diameter(); got != 6 {
		t.Fatalf("Diameter = %v, want 6", got)
	}
	if got := g.Eccentricity(1); got != 5 {
		t.Fatalf("Eccentricity(1) = %v, want 5", got)
	}
	disc := New(3)
	disc.AddEdge(0, 1, 1)
	if !math.IsInf(disc.Diameter(), 1) {
		t.Error("disconnected diameter must be +Inf")
	}
}

func TestSumDistances(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	// ordered pairs: (0,1)=1 (1,0)=1 (1,2)=1 (2,1)=1 (0,2)=2 (2,0)=2 => 8
	if got := g.SumDistances(); got != 8 {
		t.Fatalf("SumDistances = %v, want 8", got)
	}
}

func TestMSTPath(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	g.AddEdge(0, 3, 10)
	edges, w := g.MST()
	if len(edges) != 3 || w != 6 {
		t.Fatalf("MST = %v weight %v, want 3 edges weight 6", edges, w)
	}
}

// TestMSTLowerBoundsConnectedSubgraphs: the MST weight is a lower bound on
// the total weight of any connected spanning subgraph — the property the
// social-optimum lower bound relies on.
func TestMSTLowerBoundsConnectedSubgraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		// Complete random-weight graph so connectivity is easy.
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				g.AddEdge(u, v, 0.1+rng.Float64()*5)
			}
		}
		_, mstW := g.MST()
		// Random connected spanning subgraph: MST plus random extras.
		sub := New(n)
		mstEdges, _ := g.MST()
		for _, e := range mstEdges {
			sub.AddEdge(e.U, e.V, e.W)
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					sub.AddEdge(u, v, g.EdgeWeight(u, v))
				}
			}
		}
		return sub.TotalWeight() >= mstW-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMSTForest(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 2)
	edges, w := g.MST()
	if len(edges) != 2 || w != 3 {
		t.Fatalf("forest MST = %v weight %v", edges, w)
	}
}

func TestCloneDeep(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	c := g.Clone()
	c.AddEdge(1, 2, 1)
	if g.HasEdge(1, 2) {
		t.Error("Clone shares adjacency")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 12, 0.5)
	h := FromEdges(12, g.Edges())
	for u := 0; u < 12; u++ {
		for v := 0; v < 12; v++ {
			if g.HasEdge(u, v) != h.HasEdge(u, v) {
				t.Fatalf("edge set mismatch at (%d,%d)", u, v)
			}
		}
	}
}
