package graph

import (
	"math"
	"math/rand"
	"testing"
)

// randRepairGraph builds a random graph whose weight distribution
// stresses the repair paths: generic floats, exact ties (small integer
// weights), zero-weight edges and +Inf edges.
func randRepairGraph(rng *rand.Rand, n int, flavor string) *Graph {
	g := New(n)
	p := 0.25 + rng.Float64()*0.3
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() >= p {
				continue
			}
			var w float64
			switch flavor {
			case "generic":
				w = rng.Float64() * 10
			case "ties":
				w = float64(rng.Intn(3)) // 0, 1 or 2: heavy tie pressure
			case "mixed":
				switch rng.Intn(4) {
				case 0:
					w = 0
				case 1:
					w = math.Inf(1)
				default:
					w = float64(1+rng.Intn(4)) / 2
				}
			}
			g.AddEdge(u, v, w)
		}
	}
	return g
}

func rowsEqualBitwise(t *testing.T, got, want []float64, ctx string) {
	t.Helper()
	for i := range want {
		gi, wi := got[i], want[i]
		if gi != wi && !(math.IsInf(gi, 1) && math.IsInf(wi, 1)) {
			t.Fatalf("%s: dist[%d] = %v, fresh Dijkstra = %v", ctx, i, gi, wi)
		}
	}
}

// TestRepairRowMatchesFreshDijkstra: after random interleaved edge
// insertions and deletions, rows repaired incrementally for every source
// must be bit-equal to fresh Dijkstra on the mutated graph.
func TestRepairRowMatchesFreshDijkstra(t *testing.T) {
	for _, flavor := range []string{"generic", "ties", "mixed"} {
		flavor := flavor
		t.Run(flavor, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 12; seed++ {
				rng := rand.New(rand.NewSource(seed))
				n := 6 + rng.Intn(10)
				g := randRepairGraph(rng, n, flavor)
				rows := make([][]float64, n)
				for src := 0; src < n; src++ {
					rows[src] = g.Dijkstra(src)
				}
				for step := 0; step < 60; step++ {
					u := rng.Intn(n)
					v := rng.Intn(n)
					if u == v {
						continue
					}
					if g.HasEdge(u, v) {
						w := g.EdgeWeight(u, v)
						g.RemoveEdge(u, v)
						for src := 0; src < n; src++ {
							if _, ok := g.RepairRowRemove(rows[src], src, u, v, w, n+1); !ok {
								t.Fatalf("seed %d step %d: budget n+1 exceeded on an n-vertex graph", seed, step)
							}
						}
					} else {
						var w float64
						switch flavor {
						case "generic":
							w = rng.Float64() * 10
						case "ties":
							w = float64(rng.Intn(3))
						case "mixed":
							w = []float64{0, math.Inf(1), 1, 1.5}[rng.Intn(4)]
						}
						g.AddEdge(u, v, w)
						for src := 0; src < n; src++ {
							g.RepairRowAdd(rows[src], u, v, w)
						}
					}
					for src := 0; src < n; src++ {
						rowsEqualBitwise(t, rows[src], g.Dijkstra(src), flavor)
					}
				}
			}
		})
	}
}

// TestRepairRowRemoveZeroWeightCycleGrounding pins the zero-weight
// pathology the strict-support rule exists for: two zero-weight cycle
// mates that "support" each other but are grounded only through the
// deleted edge must both be detected as affected (and go to +Inf).
func TestRepairRowRemoveZeroWeightCycleGrounding(t *testing.T) {
	// s --5-- v --0-- u --0-- a, plus nothing else: removing (v,u)
	// disconnects {u,a}, even though u and a keep tight "supports"
	// via each other.
	g := New(4)
	s, v, u, a := 0, 1, 2, 3
	g.AddEdge(s, v, 5)
	g.AddEdge(v, u, 0)
	g.AddEdge(u, a, 0)
	dist := g.Dijkstra(s)
	g.RemoveEdge(v, u)
	if _, ok := g.RepairRowRemove(dist, s, v, u, 0, 64); !ok {
		t.Fatal("repair unexpectedly exceeded budget")
	}
	rowsEqualBitwise(t, dist, g.Dijkstra(s), "zero-weight cycle")
	if !math.IsInf(dist[u], 1) || !math.IsInf(dist[a], 1) {
		t.Fatalf("u, a should be unreachable, got %v, %v", dist[u], dist[a])
	}
}

// TestRepairRowRemoveBudgetFallback: when the affected set exceeds the
// budget the row must be left exactly as it was.
func TestRepairRowRemoveBudgetFallback(t *testing.T) {
	// A long path from src: deleting the first edge affects every other
	// vertex, so any budget below n-1 must refuse and leave the row alone.
	n := 16
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	dist := g.Dijkstra(0)
	before := append([]float64(nil), dist...)
	g.RemoveEdge(0, 1)
	if _, ok := g.RepairRowRemove(dist, 0, 0, 1, 1, 3); ok {
		t.Fatal("expected budget refusal")
	}
	rowsEqualBitwise(t, dist, before, "refused repair must not touch the row")
	if _, ok := g.RepairRowRemove(dist, 0, 0, 1, 1, n); !ok {
		t.Fatal("budget n should suffice")
	}
	rowsEqualBitwise(t, dist, g.Dijkstra(0), "after retry with larger budget")
}

// TestRepairRowAddChangedCountsVertices: the returned count is distinct
// changed entries, not relaxations — a vertex the wavefront improves
// twice (first via a far frontier vertex, then via a closer one) counts
// once.
func TestRepairRowAddChangedCountsVertices(t *testing.T) {
	// Path 0-1-2-3-4 (unit weights) with (4,5) of weight 10 and a side
	// edge (3,5) of weight 1. Inserting (0,4) of weight 1 improves 4
	// (4→1), 3 (3→2) and 5 twice (4→11 via vertex 4, then →3 via 3).
	g := New(6)
	for i := 0; i+1 < 5; i++ {
		g.AddEdge(i, i+1, 1)
	}
	g.AddEdge(4, 5, 10)
	g.AddEdge(3, 5, 1)
	dist := g.Dijkstra(0)
	g.AddEdge(0, 4, 1)
	if c := g.RepairRowAdd(dist, 0, 4, 1); c != 3 {
		t.Fatalf("changed = %d, want 3 (vertices 3, 4, 5)", c)
	}
	rowsEqualBitwise(t, dist, g.Dijkstra(0), "double-improvement insert")
}

// TestRepairRowAddInfEdgeIsNoop: inserting an unbuyable (+Inf) edge never
// changes a distance.
func TestRepairRowAddInfEdgeIsNoop(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	dist := g.Dijkstra(0)
	g.AddEdge(1, 2, math.Inf(1))
	if c := g.RepairRowAdd(dist, 1, 2, math.Inf(1)); c != 0 {
		t.Fatalf("inf insertion changed %d entries", c)
	}
	rowsEqualBitwise(t, dist, g.Dijkstra(0), "inf add")
}

// TestRepairRowBatchMatchesFreshDijkstra is the batch-repair property
// behind the game cache's lazy delta replay: rows repaired across a net
// edge diff (several removals and insertions collapsed into one edit)
// must be bit-equal to fresh Dijkstra on the final graph, for every
// source and for every weight flavor.
func TestRepairRowBatchMatchesFreshDijkstra(t *testing.T) {
	for _, flavor := range []string{"generic", "ties", "mixed"} {
		flavor := flavor
		t.Run(flavor, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 12; seed++ {
				rng := rand.New(rand.NewSource(500 + seed))
				n := 6 + rng.Intn(10)
				g := randRepairGraph(rng, n, flavor)
				rows := make([][]float64, n)
				for src := 0; src < n; src++ {
					rows[src] = g.Dijkstra(src)
				}
				for step := 0; step < 25; step++ {
					// Build a random net diff of 1..4 edge flips on
					// distinct pairs, mutating g accordingly.
					var removed, added []Edge
					flips := 1 + rng.Intn(4)
					seen := map[[2]int]bool{}
					for k := 0; k < flips; k++ {
						u, v := rng.Intn(n), rng.Intn(n)
						if u == v || seen[pairKey(u, v)] {
							continue
						}
						seen[pairKey(u, v)] = true
						if g.HasEdge(u, v) {
							w := g.EdgeWeight(u, v)
							g.RemoveEdge(u, v)
							removed = append(removed, Edge{U: u, V: v, W: w})
						} else {
							var w float64
							switch flavor {
							case "generic":
								w = rng.Float64() * 10
							case "ties":
								w = float64(rng.Intn(3))
							case "mixed":
								w = []float64{0, math.Inf(1), 1, 1.5}[rng.Intn(4)]
							}
							g.AddEdge(u, v, w)
							added = append(added, Edge{U: u, V: v, W: w})
						}
					}
					for src := 0; src < n; src++ {
						marked := map[int]bool{}
						before := append([]float64(nil), rows[src]...)
						if !g.RepairRowBatch(rows[src], src, removed, added, n+1, func(x int) { marked[x] = true }) {
							t.Fatalf("seed %d step %d: budget n+1 exceeded on an n-vertex graph", seed, step)
						}
						want := g.Dijkstra(src)
						rowsEqualBitwise(t, rows[src], want, flavor+"/batch")
						for x := range want {
							same := rows[src][x] == before[x] ||
								(math.IsInf(rows[src][x], 1) && math.IsInf(before[x], 1))
							if !same && !marked[x] {
								t.Fatalf("seed %d step %d src %d: entry %d changed (%v -> %v) without mark",
									seed, step, src, x, before[x], rows[src][x])
							}
						}
					}
				}
			}
		})
	}
}

// TestRepairRowBatchBudgetRefusalUntouched: a batch whose removal phase
// exceeds budget must leave the row exactly as it was, including when
// insertions are batched alongside.
func TestRepairRowBatchBudgetRefusalUntouched(t *testing.T) {
	n := 16
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	dist := g.Dijkstra(0)
	before := append([]float64(nil), dist...)
	g.RemoveEdge(0, 1)
	g.AddEdge(0, n-1, 1)
	removed := []Edge{{U: 0, V: 1, W: 1}}
	added := []Edge{{U: 0, V: n - 1, W: 1}}
	if g.RepairRowBatch(dist, 0, removed, added, 3, nil) {
		t.Fatal("expected budget refusal")
	}
	rowsEqualBitwise(t, dist, before, "refused batch must not touch the row")
	if !g.RepairRowBatch(dist, 0, removed, added, n, nil) {
		t.Fatal("budget n should suffice")
	}
	rowsEqualBitwise(t, dist, g.Dijkstra(0), "after batch retry with larger budget")
}
