package graph

import (
	"math"

	"gncg/internal/parallel"
)

// Dijkstra returns the shortest-path distances from src to every vertex.
// Unreachable vertices get +Inf. Weights must be non-negative, which the
// graph construction already enforces; +Inf edge weights are skipped.
func (g *Graph) Dijkstra(src int) []float64 {
	g.checkVertex(src)
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := newHeap(g.n)
	h.push(src, 0)
	for h.len() > 0 {
		u, du := h.pop()
		if du > dist[u] {
			continue
		}
		for _, e := range g.adj[u] {
			if math.IsInf(e.w, 1) {
				continue
			}
			if nd := du + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				h.push(e.to, nd)
			}
		}
	}
	return dist
}

// DijkstraAvoiding returns shortest-path distances from src in the graph
// with vertex `avoid` (and all its incident edges) removed. It is the
// primitive behind the best-response solver's G∖u distances. If src ==
// avoid the result is all +Inf except dist[src] = 0 has no meaning, so the
// call panics.
func (g *Graph) DijkstraAvoiding(src, avoid int) []float64 {
	g.checkVertex(src)
	g.checkVertex(avoid)
	if src == avoid {
		panic("graph: DijkstraAvoiding with src == avoid")
	}
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := newHeap(g.n)
	h.push(src, 0)
	for h.len() > 0 {
		u, du := h.pop()
		if du > dist[u] {
			continue
		}
		for _, e := range g.adj[u] {
			if e.to == avoid || math.IsInf(e.w, 1) {
				continue
			}
			if nd := du + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				h.push(e.to, nd)
			}
		}
	}
	dist[avoid] = math.Inf(1)
	return dist
}

// APSP returns the all-pairs shortest-path matrix, computed with one
// Dijkstra per source in parallel.
func (g *Graph) APSP() [][]float64 {
	return parallel.Map(g.n, func(src int) []float64 { return g.Dijkstra(src) })
}

// APSPAvoiding returns all-pairs shortest paths in the graph with vertex
// `avoid` removed. Row and column `avoid` are +Inf (diagonal included).
func (g *Graph) APSPAvoiding(avoid int) [][]float64 {
	inf := math.Inf(1)
	return parallel.Map(g.n, func(src int) []float64 {
		if src == avoid {
			row := make([]float64, g.n)
			for i := range row {
				row[i] = inf
			}
			return row
		}
		return g.DijkstraAvoiding(src, avoid)
	})
}

// FloydWarshall computes all-pairs shortest paths with the cubic dynamic
// program. It exists as an independent oracle for testing the Dijkstra
// implementation and for dense instances where it is competitive.
func (g *Graph) FloydWarshall() [][]float64 {
	inf := math.Inf(1)
	d := make([][]float64, g.n)
	for i := range d {
		d[i] = make([]float64, g.n)
		for j := range d[i] {
			if i == j {
				d[i][j] = 0
			} else {
				d[i][j] = inf
			}
		}
	}
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			if e.w < d[u][e.to] {
				d[u][e.to] = e.w
			}
		}
	}
	for k := 0; k < g.n; k++ {
		dk := d[k]
		for i := 0; i < g.n; i++ {
			dik := d[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			di := d[i]
			for j := 0; j < g.n; j++ {
				if nd := dik + dk[j]; nd < di[j] {
					di[j] = nd
				}
			}
		}
	}
	return d
}

// Connected reports whether the graph is connected (true for n <= 1).
// Edges with +Inf weight do not provide connectivity.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.to] && !math.IsInf(e.w, 1) {
				seen[e.to] = true
				count++
				stack = append(stack, e.to)
			}
		}
	}
	return count == g.n
}

// Diameter returns the maximum finite pairwise distance, and +Inf if the
// graph is disconnected. Returns 0 for n <= 1.
func (g *Graph) Diameter() float64 {
	if g.n <= 1 {
		return 0
	}
	rows := g.APSP()
	maxd := 0.0
	for i, row := range rows {
		for j, d := range row {
			if i == j {
				continue
			}
			if d > maxd {
				maxd = d
			}
		}
	}
	return maxd
}

// Eccentricity returns max_v d(u,v).
func (g *Graph) Eccentricity(u int) float64 {
	dist := g.Dijkstra(u)
	maxd := 0.0
	for v, d := range dist {
		if v != u && d > maxd {
			maxd = d
		}
	}
	return maxd
}

// HasCycle reports whether the graph contains a cycle (ignoring weights).
func (g *Graph) HasCycle() bool {
	parent := make([]int, g.n)
	seen := make([]bool, g.n)
	for i := range parent {
		parent[i] = -1
	}
	for start := 0; start < g.n; start++ {
		if seen[start] {
			continue
		}
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.adj[u] {
				if !seen[e.to] {
					seen[e.to] = true
					parent[e.to] = u
					stack = append(stack, e.to)
				} else if parent[u] != e.to {
					return true
				}
			}
		}
	}
	return false
}

// IsTree reports whether the graph is connected and acyclic.
func (g *Graph) IsTree() bool {
	return g.Connected() && g.M() == g.n-1
}

// SumDistances returns the sum over ordered pairs (u,v), u != v, of
// d(u,v); +Inf if disconnected.
func (g *Graph) SumDistances() float64 {
	rows := g.APSP()
	total := 0.0
	for i, row := range rows {
		for j, d := range row {
			if i == j {
				continue
			}
			total += d
		}
	}
	return total
}
