package graph

// BFSHops returns hop counts (number of edges on a shortest path,
// ignoring weights) from src to every vertex, with -1 for unreachable
// vertices. On unit-weight graphs — the original NCG's host — hop
// counts coincide with distances at a fraction of Dijkstra's cost.
func (g *Graph) BFSHops(src int) []int {
	g.checkVertex(src)
	hops := make([]int, g.n)
	for i := range hops {
		hops[i] = -1
	}
	hops[src] = 0
	queue := make([]int32, 0, g.n)
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := int(queue[head])
		for _, e := range g.adj[u] {
			if hops[e.to] < 0 {
				hops[e.to] = hops[u] + 1
				queue = append(queue, int32(e.to))
			}
		}
	}
	return hops
}

// HopDiameter returns the maximum finite hop distance, or -1 if the
// graph is disconnected (0 for n <= 1).
func (g *Graph) HopDiameter() int {
	if g.n <= 1 {
		return 0
	}
	maxh := 0
	for src := 0; src < g.n; src++ {
		for _, h := range g.BFSHops(src) {
			if h < 0 {
				return -1
			}
			if h > maxh {
				maxh = h
			}
		}
	}
	return maxh
}
