// Package graph provides the weighted-graph substrate for the network
// creation game: adjacency-list graphs with float64 weights, single-source
// shortest paths (binary-heap Dijkstra), dynamic single-edge repair of
// Dijkstra rows (Ramalingam–Reps style; see repair.go), parallel all-pairs
// shortest paths, a dense Floyd–Warshall used as a correctness cross-check,
// Prim's minimum spanning tree, and structural queries (connectivity,
// diameter, cycles).
//
// Absent connections are represented by +Inf distances. Edge weights must
// be non-negative (Dijkstra's precondition); zero weights are legal and do
// occur in the paper's non-metric constructions.
package graph

import (
	"fmt"
	"math"
)

// Edge is a weighted undirected edge.
type Edge struct {
	U, V int
	W    float64
}

// Graph is an undirected weighted graph in adjacency-list form.
// Parallel edges are not stored: AddEdge keeps the lighter weight.
type Graph struct {
	n   int
	adj [][]halfEdge
}

type halfEdge struct {
	to int
	w  float64
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n, adj: make([][]halfEdge, n)}
}

// FromEdges builds a graph on n vertices from an edge list.
func FromEdges(n int, edges []Edge) *Graph {
	g := New(n)
	for _, e := range edges {
		g.AddEdge(e.U, e.V, e.W)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int {
	m := 0
	for _, a := range g.adj {
		m += len(a)
	}
	return m / 2
}

// AddEdge inserts the undirected edge (u,v) with weight w. If the edge is
// already present the lighter weight wins. Self-loops and negative weights
// are rejected.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u == v {
		panic("graph: self-loop")
	}
	if w < 0 {
		panic(fmt.Sprintf("graph: negative weight %v on (%d,%d)", w, u, v))
	}
	g.checkVertex(u)
	g.checkVertex(v)
	if i := g.findHalf(u, v); i >= 0 {
		if w < g.adj[u][i].w {
			g.adj[u][i].w = w
			g.adj[v][g.findHalf(v, u)].w = w
		}
		return
	}
	g.adj[u] = append(g.adj[u], halfEdge{v, w})
	g.adj[v] = append(g.adj[v], halfEdge{u, w})
}

// RemoveEdge deletes the undirected edge (u,v) if present and reports
// whether it existed.
func (g *Graph) RemoveEdge(u, v int) bool {
	i := g.findHalf(u, v)
	if i < 0 {
		return false
	}
	g.adj[u] = deleteAt(g.adj[u], i)
	g.adj[v] = deleteAt(g.adj[v], g.findHalf(v, u))
	return true
}

// HasEdge reports whether the undirected edge (u,v) is present.
func (g *Graph) HasEdge(u, v int) bool { return g.findHalf(u, v) >= 0 }

// EdgeWeight returns the weight of edge (u,v), or +Inf if absent.
func (g *Graph) EdgeWeight(u, v int) float64 {
	if i := g.findHalf(u, v); i >= 0 {
		return g.adj[u][i].w
	}
	return math.Inf(1)
}

// Edges returns every undirected edge once, with U < V.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.M())
	for u := 0; u < g.n; u++ {
		for _, h := range g.adj[u] {
			if u < h.to {
				out = append(out, Edge{u, h.to, h.w})
			}
		}
	}
	return out
}

// Neighbors calls fn(v, w) for every neighbor v of u with edge weight w.
func (g *Graph) Neighbors(u int, fn func(v int, w float64)) {
	g.checkVertex(u)
	for _, h := range g.adj[u] {
		fn(h.to, h.w)
	}
}

// Degree returns the number of edges incident to u.
func (g *Graph) Degree(u int) int {
	g.checkVertex(u)
	return len(g.adj[u])
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u := range g.adj {
		c.adj[u] = append([]halfEdge(nil), g.adj[u]...)
	}
	return c
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	total := 0.0
	for u := 0; u < g.n; u++ {
		for _, h := range g.adj[u] {
			if u < h.to {
				total += h.w
			}
		}
	}
	return total
}

func (g *Graph) findHalf(u, v int) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return -1
	}
	for i, h := range g.adj[u] {
		if h.to == v {
			return i
		}
	}
	return -1
}

func (g *Graph) checkVertex(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", u, g.n))
	}
}

func deleteAt(s []halfEdge, i int) []halfEdge {
	s[i] = s[len(s)-1]
	return s[:len(s)-1]
}
