package graph

import "math"

// Dynamic single-source shortest-path repair, after Ramalingam & Reps
// (1996): when one edge changes, a previously computed Dijkstra row can be
// repaired by touching only the vertices whose distance actually changed,
// instead of being recomputed from scratch. This is the primitive behind
// the game engine's incremental distance cache — a single buy/delete/swap
// move perturbs one or two edges of the created network, so the per-source
// rows survive speculation (CostAfter) and dynamics at a fraction of the
// full-Dijkstra price.
//
// Both repair entry points keep the row bit-identical to what a fresh
// Dijkstra on the mutated graph would produce: repaired values are minima
// over exactly the same left-to-right float path sums that Dijkstra's
// dynamic program explores, and untouched values are proven unchanged (an
// edge insertion only relaxes, and a deletion can only affect vertices
// whose every tight predecessor chain crossed the deleted edge).
//
// The deletion side is output-sensitive but not worst-case better than
// Dijkstra: on graphs with many equal-length ties the potentially-affected
// set can balloon, so RepairRowRemove takes a budget and reports failure
// once the set exceeds it, leaving the row untouched for the caller to
// recompute (or discard). DefaultRepairBudget is the threshold used by the
// game's distance cache.

// DefaultRepairBudget returns the affected-set size beyond which deletion
// repair falls back to a full recomputation, for an n-vertex graph. Small
// affected sets are the common case for single-edge game moves; past
// roughly n/4 the repair's bookkeeping stops paying for itself.
func DefaultRepairBudget(n int) int { return 16 + n/4 }

// RepairRowAdd repairs the shortest-path row dist (valid for g before the
// undirected edge (u,v,w) was inserted) so it is valid for g after the
// insertion; g must already contain the edge. Distances only decrease; the
// repair seeds a Dijkstra wavefront from whichever endpoints the new edge
// improves and relaxes outward, touching only improved vertices. It
// returns the number of entries that changed.
//
// Inserting an edge with +Inf weight (an unbuyable host pair) changes no
// distance and returns 0 immediately. The same routine also repairs a
// weight decrease of an existing edge.
func (g *Graph) RepairRowAdd(dist []float64, u, v int, w float64) int {
	var touched map[int]bool // lazily allocated: the common case is no change
	g.RepairRowAddMarked(dist, u, v, w, func(x int) {
		if touched == nil {
			touched = make(map[int]bool, 8)
		}
		touched[x] = true
	})
	return len(touched)
}

// RepairRowAddMarked is RepairRowAdd with a change hook: mark(x) fires
// every time dist[x] is lowered, so callers maintaining derived state
// (e.g. the game cache's distance-sum aggregates) learn exactly which
// entries moved, in O(touched). A vertex that improves repeatedly during
// the wavefront fires repeatedly — mark must be idempotent per vertex.
func (g *Graph) RepairRowAddMarked(dist []float64, u, v int, w float64, mark func(x int)) {
	g.repairAddBatch(dist, []Edge{{U: u, V: v, W: w}}, mark)
}

// repairAddBatch repairs dist (valid for g before the added edges were
// inserted) across the simultaneous insertion of all of them: every
// improvement any new edge enables seeds one shared wavefront, which then
// relaxes in priority order exactly as Dijkstra would — so the repaired
// values are the same left-to-right float path sums a fresh run computes.
func (g *Graph) repairAddBatch(dist []float64, added []Edge, mark func(x int)) {
	if mark == nil {
		mark = func(int) {}
	}
	h := newHeap(8)
	for _, e := range added {
		if math.IsInf(e.W, 1) {
			continue
		}
		if nd := addF(dist[e.U], e.W); nd < dist[e.V] {
			dist[e.V] = nd
			h.push(e.V, nd)
			mark(e.V)
		}
		if nd := addF(dist[e.V], e.W); nd < dist[e.U] {
			dist[e.U] = nd
			h.push(e.U, nd)
			mark(e.U)
		}
	}
	for h.len() > 0 {
		x, dx := h.pop()
		if dx > dist[x] {
			continue
		}
		for _, e := range g.adj[x] {
			if math.IsInf(e.w, 1) {
				continue
			}
			if nd := dx + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				h.push(e.to, nd)
				mark(e.to)
			}
		}
	}
}

// addF adds a finite weight to a possibly-infinite distance without
// producing NaN (Inf + w = Inf, which never relaxes anything).
func addF(d, w float64) float64 {
	if math.IsInf(d, 1) {
		return d
	}
	return d + w
}

// RepairRowRemove repairs the shortest-path row dist from src (valid for g
// before the undirected edge (u,v,w) was deleted) so it is valid for g
// after the deletion; g must no longer contain the edge, and w is the
// weight the edge had. Only vertices whose every shortest path crossed the
// deleted edge can change; the repair finds that set by walking tight
// edges (dist[y] == dist[x] + w(x,y)) from the far endpoint, then
// recomputes exactly those vertices with a boundary-seeded Dijkstra.
//
// If the potentially-affected set exceeds budget, the row is left exactly
// as it was and ok is false: the caller should fall back to a full
// Dijkstra (or drop the row). On success ok is true and changed counts the
// recomputed entries.
func (g *Graph) RepairRowRemove(dist []float64, src, u, v int, w float64, budget int) (changed int, ok bool) {
	return g.RepairRowRemoveMarked(dist, src, u, v, w, budget, nil)
}

// RepairRowRemoveMarked is RepairRowRemove with a change hook: on success,
// mark(x) fires exactly once for every vertex of the affected set (the
// recomputed entries — a superset of the entries whose value actually
// changed), so callers maintaining derived state learn which entries may
// have moved, in O(affected). On failure (budget exceeded) the row is
// untouched and mark never fires.
func (g *Graph) RepairRowRemoveMarked(dist []float64, src, u, v int, w float64, budget int, mark func(x int)) (changed int, ok bool) {
	n, ok := g.repairRemoveBatch(dist, src, []Edge{{U: u, V: v, W: w}}, nil, budget, mark)
	return n, ok
}

// RepairRowBatch repairs the shortest-path row dist from src across an
// arbitrary net edge difference applied to the graph: dist must be valid
// for g with the `added` edges absent and the `removed` edges present
// (weights as recorded); g must already be in its final state. The same
// (u,v) pair must not appear in both lists — callers collapse histories
// to a net diff first, which is what makes batch replay of a delta log
// sound: repairing one logged delta at a time against the final adjacency
// would violate each repair's precondition, while the net diff is a
// single well-defined edit of the row's own network.
//
// The repair runs in two phases, each of which preserves bit-equality
// with a fresh Dijkstra: first the removals are repaired against the
// pre-addition graph (g with the added edges masked out), producing the
// row of the intermediate network; then all additions seed one shared
// insertion wavefront over the full graph. mark fires (possibly
// repeatedly) for every entry that may have changed. If the removal
// phase's affected set exceeds budget, dist is left untouched and ok is
// false: the caller should recompute the row from scratch.
func (g *Graph) RepairRowBatch(dist []float64, src int, removed, added []Edge, budget int, mark func(x int)) (ok bool) {
	if len(removed) > 0 {
		var skip map[[2]int]bool
		if len(added) > 0 {
			skip = make(map[[2]int]bool, len(added))
			for _, e := range added {
				skip[pairKey(e.U, e.V)] = true
			}
		}
		if _, ok := g.repairRemoveBatch(dist, src, removed, skip, budget, mark); !ok {
			return false
		}
	}
	if len(added) > 0 {
		g.repairAddBatch(dist, added, mark)
	}
	return true
}

func pairKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// repairRemoveBatch repairs dist across the simultaneous deletion of the
// removed edges. The graph it repairs against is g minus the pairs in
// skipAdd (edges inserted after the row's network state, masked out so
// the removal phase sees exactly the row's own graph minus the removals);
// g itself must no longer contain any removed edge.
//
// Only vertices whose every shortest path crossed a removed edge can
// change; the repair finds that set by walking tight edges
// (dist[y] == dist[x] + w(x,y)) from every unsupported far endpoint, then
// recomputes exactly those vertices with a boundary-seeded Dijkstra.
// If the potentially-affected set exceeds budget, the row is left exactly
// as it was and ok is false. On success ok is true and changed counts the
// recomputed entries.
func (g *Graph) repairRemoveBatch(dist []float64, src int, removed []Edge, skipAdd map[[2]int]bool, budget int, mark func(x int)) (changed int, ok bool) {
	// Roots: endpoints whose distance was supported through a deleted
	// edge and have no alternative tight support left. If every endpoint
	// keeps a support, no distance in the row can change. The source is
	// its own support and is never a root.
	var roots []int
	isRoot := map[int]bool{}
	for _, re := range removed {
		if math.IsInf(re.W, 1) {
			continue // an unbuyable edge never carried a shortest path
		}
		for _, e := range [2][2]int{{re.U, re.V}, {re.V, re.U}} {
			far, near := e[0], e[1]
			if far == src || isRoot[far] || dist[far] != addF(dist[near], re.W) || math.IsInf(dist[far], 1) {
				continue
			}
			if !g.hasStrictSupport(dist, far, skipAdd) {
				isRoot[far] = true
				roots = append(roots, far)
			}
		}
	}
	if len(roots) == 0 {
		return 0, true
	}

	// Phase 1: the potentially-affected set — everything reachable from a
	// root via tight edges in the remaining graph. This overestimates the
	// truly-affected set (a vertex with an untouched alternative support
	// is collected anyway) but never misses a vertex whose distance must
	// change, and phase 2 recomputes members from scratch either way.
	affected := map[int]bool{}
	queue := make([]int, 0, len(roots))
	for _, r := range roots {
		if !affected[r] {
			affected[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		x := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		dx := dist[x]
		for _, e := range g.adj[x] {
			if math.IsInf(e.w, 1) || affected[e.to] || e.to == src {
				continue
			}
			if skipAdd != nil && skipAdd[pairKey(x, e.to)] {
				continue
			}
			if dist[e.to] == dx+e.w {
				if len(affected) >= budget {
					return 0, false
				}
				affected[e.to] = true
				queue = append(queue, e.to)
			}
		}
	}

	// Phase 2: recompute the affected vertices. Seed each from its best
	// unaffected neighbor (whose distance is proven unchanged), then run
	// Dijkstra over the wavefront; relaxations into unaffected vertices
	// can never win (their value is already the minimum) so no guard is
	// needed beyond the usual strict comparison.
	if mark != nil {
		for x := range affected {
			mark(x)
		}
	}
	h := newHeap(len(affected))
	for x := range affected {
		dist[x] = math.Inf(1)
	}
	for x := range affected {
		best := math.Inf(1)
		for _, e := range g.adj[x] {
			if math.IsInf(e.w, 1) || affected[e.to] {
				continue
			}
			if skipAdd != nil && skipAdd[pairKey(x, e.to)] {
				continue
			}
			if nd := addF(dist[e.to], e.w); nd < best {
				best = nd
			}
		}
		if !math.IsInf(best, 1) {
			dist[x] = best
			h.push(x, best)
		}
	}
	for h.len() > 0 {
		x, dx := h.pop()
		if dx > dist[x] {
			continue
		}
		for _, e := range g.adj[x] {
			if math.IsInf(e.w, 1) {
				continue
			}
			if skipAdd != nil && skipAdd[pairKey(x, e.to)] {
				continue
			}
			if nd := dx + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				h.push(e.to, nd)
			}
		}
	}
	return len(affected), true
}

// hasStrictSupport reports whether some remaining edge still certifies
// dist[x] from strictly below: a neighbor z with dist[z] < dist[x] and
// dist[z] + w(z,x) == dist[x]. Equal-distance supports (zero-weight ties)
// are deliberately not counted — two zero-weight cycle mates can "support"
// each other while both are grounded only through the deleted edge, so an
// equal-distance support proves nothing. Treating such endpoints as roots
// is conservative: phase 2 recomputes them and lands on the same values
// whenever the tie was genuine. Edges whose pair is in skipAdd (inserted
// after the row's network state) are not remaining edges and never count.
func (g *Graph) hasStrictSupport(dist []float64, x int, skipAdd map[[2]int]bool) bool {
	dx := dist[x]
	for _, e := range g.adj[x] {
		if math.IsInf(e.w, 1) || dist[e.to] >= dx {
			continue
		}
		if skipAdd != nil && skipAdd[pairKey(x, e.to)] {
			continue
		}
		if dist[e.to]+e.w == dx {
			return true
		}
	}
	return false
}
