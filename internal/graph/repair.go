package graph

import "math"

// Dynamic single-source shortest-path repair, after Ramalingam & Reps
// (1996): when one edge changes, a previously computed Dijkstra row can be
// repaired by touching only the vertices whose distance actually changed,
// instead of being recomputed from scratch. This is the primitive behind
// the game engine's incremental distance cache — a single buy/delete/swap
// move perturbs one or two edges of the created network, so the per-source
// rows survive speculation (CostAfter) and dynamics at a fraction of the
// full-Dijkstra price.
//
// Both repair entry points keep the row bit-identical to what a fresh
// Dijkstra on the mutated graph would produce: repaired values are minima
// over exactly the same left-to-right float path sums that Dijkstra's
// dynamic program explores, and untouched values are proven unchanged (an
// edge insertion only relaxes, and a deletion can only affect vertices
// whose every tight predecessor chain crossed the deleted edge).
//
// The deletion side is output-sensitive but not worst-case better than
// Dijkstra: on graphs with many equal-length ties the potentially-affected
// set can balloon, so RepairRowRemove takes a budget and reports failure
// once the set exceeds it, leaving the row untouched for the caller to
// recompute (or discard). DefaultRepairBudget is the threshold used by the
// game's distance cache.

// DefaultRepairBudget returns the affected-set size beyond which deletion
// repair falls back to a full recomputation, for an n-vertex graph. Small
// affected sets are the common case for single-edge game moves; past
// roughly n/4 the repair's bookkeeping stops paying for itself.
func DefaultRepairBudget(n int) int { return 16 + n/4 }

// RepairRowAdd repairs the shortest-path row dist (valid for g before the
// undirected edge (u,v,w) was inserted) so it is valid for g after the
// insertion; g must already contain the edge. Distances only decrease; the
// repair seeds a Dijkstra wavefront from whichever endpoints the new edge
// improves and relaxes outward, touching only improved vertices. It
// returns the number of entries that changed.
//
// Inserting an edge with +Inf weight (an unbuyable host pair) changes no
// distance and returns 0 immediately. The same routine also repairs a
// weight decrease of an existing edge.
func (g *Graph) RepairRowAdd(dist []float64, u, v int, w float64) int {
	if math.IsInf(w, 1) {
		return 0
	}
	h := newHeap(8)
	var touched map[int]bool // lazily allocated: the common case is no change
	mark := func(x int) {
		if touched == nil {
			touched = make(map[int]bool, 8)
		}
		touched[x] = true
	}
	if nd := addF(dist[u], w); nd < dist[v] {
		dist[v] = nd
		h.push(v, nd)
		mark(v)
	}
	if nd := addF(dist[v], w); nd < dist[u] {
		dist[u] = nd
		h.push(u, nd)
		mark(u)
	}
	for h.len() > 0 {
		x, dx := h.pop()
		if dx > dist[x] {
			continue
		}
		for _, e := range g.adj[x] {
			if math.IsInf(e.w, 1) {
				continue
			}
			if nd := dx + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				h.push(e.to, nd)
				mark(e.to) // distinct vertices, not relaxations: a vertex can improve repeatedly
			}
		}
	}
	return len(touched)
}

// addF adds a finite weight to a possibly-infinite distance without
// producing NaN (Inf + w = Inf, which never relaxes anything).
func addF(d, w float64) float64 {
	if math.IsInf(d, 1) {
		return d
	}
	return d + w
}

// RepairRowRemove repairs the shortest-path row dist from src (valid for g
// before the undirected edge (u,v,w) was deleted) so it is valid for g
// after the deletion; g must no longer contain the edge, and w is the
// weight the edge had. Only vertices whose every shortest path crossed the
// deleted edge can change; the repair finds that set by walking tight
// edges (dist[y] == dist[x] + w(x,y)) from the far endpoint, then
// recomputes exactly those vertices with a boundary-seeded Dijkstra.
//
// If the potentially-affected set exceeds budget, the row is left exactly
// as it was and ok is false: the caller should fall back to a full
// Dijkstra (or drop the row). On success ok is true and changed counts the
// recomputed entries.
func (g *Graph) RepairRowRemove(dist []float64, src, u, v int, w float64, budget int) (changed int, ok bool) {
	if math.IsInf(w, 1) {
		return 0, true // an unbuyable edge never carried a shortest path
	}
	// Roots: endpoints whose distance was supported through the deleted
	// edge and have no alternative tight support left. If both endpoints
	// keep a support, no distance in the row can change. The source is
	// its own support and is never a root.
	var roots []int
	for _, e := range [2][2]int{{u, v}, {v, u}} {
		far, near := e[0], e[1]
		if far == src || dist[far] != addF(dist[near], w) || math.IsInf(dist[far], 1) {
			continue
		}
		if !g.hasStrictSupport(dist, far) {
			roots = append(roots, far)
		}
	}
	if len(roots) == 0 {
		return 0, true
	}

	// Phase 1: the potentially-affected set — everything reachable from a
	// root via tight edges in the remaining graph. This overestimates the
	// truly-affected set (a vertex with an untouched alternative support
	// is collected anyway) but never misses a vertex whose distance must
	// change, and phase 2 recomputes members from scratch either way.
	affected := map[int]bool{}
	queue := make([]int, 0, len(roots))
	for _, r := range roots {
		if !affected[r] {
			affected[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		x := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		dx := dist[x]
		for _, e := range g.adj[x] {
			if math.IsInf(e.w, 1) || affected[e.to] || e.to == src {
				continue
			}
			if dist[e.to] == dx+e.w {
				if len(affected) >= budget {
					return 0, false
				}
				affected[e.to] = true
				queue = append(queue, e.to)
			}
		}
	}

	// Phase 2: recompute the affected vertices. Seed each from its best
	// unaffected neighbor (whose distance is proven unchanged), then run
	// Dijkstra over the wavefront; relaxations into unaffected vertices
	// can never win (their value is already the minimum) so no guard is
	// needed beyond the usual strict comparison.
	h := newHeap(len(affected))
	for x := range affected {
		dist[x] = math.Inf(1)
	}
	for x := range affected {
		best := math.Inf(1)
		for _, e := range g.adj[x] {
			if math.IsInf(e.w, 1) || affected[e.to] {
				continue
			}
			if nd := addF(dist[e.to], e.w); nd < best {
				best = nd
			}
		}
		if !math.IsInf(best, 1) {
			dist[x] = best
			h.push(x, best)
		}
	}
	for h.len() > 0 {
		x, dx := h.pop()
		if dx > dist[x] {
			continue
		}
		for _, e := range g.adj[x] {
			if math.IsInf(e.w, 1) {
				continue
			}
			if nd := dx + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				h.push(e.to, nd)
			}
		}
	}
	return len(affected), true
}

// hasStrictSupport reports whether some remaining edge still certifies
// dist[x] from strictly below: a neighbor z with dist[z] < dist[x] and
// dist[z] + w(z,x) == dist[x]. Equal-distance supports (zero-weight ties)
// are deliberately not counted — two zero-weight cycle mates can "support"
// each other while both are grounded only through the deleted edge, so an
// equal-distance support proves nothing. Treating such endpoints as roots
// is conservative: phase 2 recomputes them and lands on the same values
// whenever the tie was genuine.
func (g *Graph) hasStrictSupport(dist []float64, x int) bool {
	dx := dist[x]
	for _, e := range g.adj[x] {
		if math.IsInf(e.w, 1) || dist[e.to] >= dx {
			continue
		}
		if dist[e.to]+e.w == dx {
			return true
		}
	}
	return false
}
