package graph

// heap is a lazy-deletion binary min-heap of (vertex, priority) pairs,
// specialized for Dijkstra: duplicates are allowed and stale entries are
// filtered by the caller's dist check. Avoiding container/heap's interface
// indirection roughly halves the constant factor of the inner loop, which
// matters because APSP over every source dominates most experiments.
type heap struct {
	vs []int32
	ps []float64
}

func newHeap(capacity int) *heap {
	return &heap{
		vs: make([]int32, 0, capacity),
		ps: make([]float64, 0, capacity),
	}
}

func (h *heap) len() int { return len(h.vs) }

func (h *heap) push(v int, p float64) {
	h.vs = append(h.vs, int32(v))
	h.ps = append(h.ps, p)
	i := len(h.vs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.ps[parent] <= h.ps[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *heap) pop() (v int, p float64) {
	v, p = int(h.vs[0]), h.ps[0]
	last := len(h.vs) - 1
	h.vs[0], h.ps[0] = h.vs[last], h.ps[last]
	h.vs, h.ps = h.vs[:last], h.ps[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.ps[l] < h.ps[small] {
			small = l
		}
		if r < last && h.ps[r] < h.ps[small] {
			small = r
		}
		if small == i {
			break
		}
		h.swap(i, small)
		i = small
	}
	return v, p
}

func (h *heap) swap(i, j int) {
	h.vs[i], h.vs[j] = h.vs[j], h.vs[i]
	h.ps[i], h.ps[j] = h.ps[j], h.ps[i]
}
