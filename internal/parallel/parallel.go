// Package parallel provides small helpers for data-parallel loops.
//
// The solvers in this repository are embarrassingly parallel at several
// granularities (one Dijkstra per source in an all-pairs computation, one
// exact best-response per agent in a Nash check, one instance per cell of a
// parameter sweep). These helpers keep that parallelism uniform: bounded
// worker pools sized by GOMAXPROCS, deterministic output placement by
// index, and no shared mutable state beyond the caller's own slices.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the degree of parallelism used by default: GOMAXPROCS.
func Workers() int { return runtime.GOMAXPROCS(0) }

// For runs fn(i) for every i in [0,n) using up to Workers() goroutines.
// Iterations are handed out dynamically (atomic counter), so uneven work
// per index balances well. fn must be safe for concurrent invocation on
// distinct indices.
func For(n int, fn func(i int)) {
	ForWorkers(n, Workers(), fn)
}

// ForWorkers is For with an explicit worker bound.
func ForWorkers(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Blocks partitions [0,n) into `workers` contiguous ranges and runs
// fn(worker, lo, hi) concurrently, one goroutine per non-empty range.
// Worker w owns [w*n/workers, (w+1)*n/workers), so the partition — unlike
// For's dynamic handout — depends only on n and workers, never on
// scheduling. Callers that keep per-worker scratch (a cloned state, a
// private cache) use this shape: each index belongs to exactly one worker
// and neighboring indices share that worker's warm scratch. workers <= 1
// runs fn(0, 0, n) on the calling goroutine.
func Blocks(n, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w, w*n/workers, (w+1)*n/workers)
		}(w)
	}
	wg.Wait()
}

// Map computes out[i] = fn(i) for i in [0,n) in parallel.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) { out[i] = fn(i) })
	return out
}

// reduceChunks is the fixed partition count used by Reduce. It is a
// constant (not GOMAXPROCS) so the fold tree — and hence the result of
// non-associative-in-practice combines like float addition — is identical
// on every machine and under any scheduling.
const reduceChunks = 64

// Reduce computes fn(i) for every i in [0,n) in parallel and folds the
// results with combine, starting from zero. The fold order is
// deterministic: the index range is split into fixed chunks, each chunk
// accumulates in index order, and chunk partials combine in chunk order.
// Float sums therefore reproduce bit-for-bit across runs, worker counts
// and machines — a requirement of the sweep engine's byte-identical
// results contract.
func Reduce[T any](n int, zero T, fn func(i int) T, combine func(a, b T) T) T {
	if n <= 0 {
		return zero
	}
	chunks := reduceChunks
	if n < chunks {
		chunks = n
	}
	partial := make([]T, chunks)
	ForWorkers(chunks, Workers(), func(c int) {
		lo, hi := c*n/chunks, (c+1)*n/chunks
		acc := zero
		for i := lo; i < hi; i++ {
			acc = combine(acc, fn(i))
		}
		partial[c] = acc
	})
	acc := zero
	for _, p := range partial {
		acc = combine(acc, p)
	}
	return acc
}

// FirstErr runs fn(i) for every i in [0,n) in parallel and returns the
// error from the smallest index that failed, or nil if all succeeded.
// All iterations run regardless of failures (no early cancel), which keeps
// the semantics deterministic.
func FirstErr(n int, fn func(i int) error) error {
	errs := make([]error, n)
	For(n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
