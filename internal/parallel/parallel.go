// Package parallel provides small helpers for data-parallel loops.
//
// The solvers in this repository are embarrassingly parallel at several
// granularities (one Dijkstra per source in an all-pairs computation, one
// exact best-response per agent in a Nash check, one instance per cell of a
// parameter sweep). These helpers keep that parallelism uniform: bounded
// worker pools sized by GOMAXPROCS, deterministic output placement by
// index, and no shared mutable state beyond the caller's own slices.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the degree of parallelism used by default: GOMAXPROCS.
func Workers() int { return runtime.GOMAXPROCS(0) }

// For runs fn(i) for every i in [0,n) using up to Workers() goroutines.
// Iterations are handed out dynamically (atomic counter), so uneven work
// per index balances well. fn must be safe for concurrent invocation on
// distinct indices.
func For(n int, fn func(i int)) {
	ForWorkers(n, Workers(), fn)
}

// ForWorkers is For with an explicit worker bound.
func ForWorkers(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map computes out[i] = fn(i) for i in [0,n) in parallel.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) { out[i] = fn(i) })
	return out
}

// Reduce computes fn(i) for every i in [0,n) in parallel and folds the
// results with combine, starting from zero. combine must be associative
// and commutative; the fold order is unspecified.
func Reduce[T any](n int, zero T, fn func(i int) T, combine func(a, b T) T) T {
	workers := Workers()
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return zero
	}
	if workers <= 1 {
		acc := zero
		for i := 0; i < n; i++ {
			acc = combine(acc, fn(i))
		}
		return acc
	}
	partial := make([]T, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			acc := zero
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					partial[w] = acc
					return
				}
				acc = combine(acc, fn(i))
			}
		}(w)
	}
	wg.Wait()
	acc := zero
	for _, p := range partial {
		acc = combine(acc, p)
	}
	return acc
}

// FirstErr runs fn(i) for every i in [0,n) in parallel and returns the
// error from the smallest index that failed, or nil if all succeeded.
// All iterations run regardless of failures (no early cancel), which keeps
// the semantics deterministic.
func FirstErr(n int, fn func(i int) error) error {
	errs := make([]error, n)
	For(n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
