package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	const n = 1000
	var hits [n]atomic.Int32
	For(n, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d hit %d times", i, got)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, func(int) { called = true })
	For(-5, func(int) { called = true })
	if called {
		t.Error("For called fn for empty range")
	}
}

func TestForWorkersSingle(t *testing.T) {
	order := make([]int, 0, 10)
	ForWorkers(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker For not sequential: %v", order)
		}
	}
}

func TestMap(t *testing.T) {
	out := Map(100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
}

func TestReduceSum(t *testing.T) {
	got := Reduce(1000, 0, func(i int) int { return i }, func(a, b int) int { return a + b })
	if want := 999 * 1000 / 2; got != want {
		t.Fatalf("Reduce = %d, want %d", got, want)
	}
}

func TestReduceEmpty(t *testing.T) {
	if got := Reduce(0, 42, func(int) int { return 0 }, func(a, b int) int { return a + b }); got != 42 {
		t.Fatalf("empty Reduce = %d, want zero value 42", got)
	}
}

func TestFirstErrReturnsSmallestIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := FirstErr(100, func(i int) error {
		switch i {
		case 30:
			return errB
		case 10:
			return errA
		}
		return nil
	})
	if err != errA {
		t.Fatalf("FirstErr = %v, want error at smallest failing index", err)
	}
	if err := FirstErr(10, func(int) error { return nil }); err != nil {
		t.Fatalf("FirstErr on success = %v", err)
	}
}
