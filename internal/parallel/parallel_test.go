package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	const n = 1000
	var hits [n]atomic.Int32
	For(n, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d hit %d times", i, got)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, func(int) { called = true })
	For(-5, func(int) { called = true })
	if called {
		t.Error("For called fn for empty range")
	}
}

func TestForWorkersSingle(t *testing.T) {
	order := make([]int, 0, 10)
	ForWorkers(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker For not sequential: %v", order)
		}
	}
}

func TestMap(t *testing.T) {
	out := Map(100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
}

func TestReduceSum(t *testing.T) {
	got := Reduce(1000, 0, func(i int) int { return i }, func(a, b int) int { return a + b })
	if want := 999 * 1000 / 2; got != want {
		t.Fatalf("Reduce = %d, want %d", got, want)
	}
}

func TestReduceEmpty(t *testing.T) {
	if got := Reduce(0, 42, func(int) int { return 0 }, func(a, b int) int { return a + b }); got != 42 {
		t.Fatalf("empty Reduce = %d, want zero value 42", got)
	}
}

func TestFirstErrReturnsSmallestIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := FirstErr(100, func(i int) error {
		switch i {
		case 30:
			return errB
		case 10:
			return errA
		}
		return nil
	})
	if err != errA {
		t.Fatalf("FirstErr = %v, want error at smallest failing index", err)
	}
	if err := FirstErr(10, func(int) error { return nil }); err != nil {
		t.Fatalf("FirstErr on success = %v", err)
	}
}

// TestReduceFloatDeterminism: float folds must reproduce bit-for-bit
// across repeated runs — the sweep engine's byte-identical results
// contract depends on it. The values are chosen so that any change in
// summation order flips low-order bits.
func TestReduceFloatDeterminism(t *testing.T) {
	n := 1003
	fn := func(i int) float64 { return 1.0 / float64(i+1) }
	add := func(a, b float64) float64 { return a + b }
	want := Reduce(n, 0.0, fn, add)
	for run := 0; run < 50; run++ {
		if got := Reduce(n, 0.0, fn, add); got != want {
			t.Fatalf("run %d: Reduce = %x, want %x (non-deterministic fold order)",
				run, got, want)
		}
	}
}
