package dynamics

import (
	"time"

	"gncg/internal/game"
)

// Budget bounds a RunToConvergence call. Zero values mean unlimited.
//
// MaxRounds and MaxMoves are deterministic budgets: two runs with the
// same inputs stop at identical points, so budgeted sweep cells stay
// byte-identical under sharding. WallClock is a machine-dependent safety
// net — a run cut off by it produces timing-dependent results, so sweeps
// that feed the byte-deterministic results contract must size the
// deterministic budgets to bind first and use WallClock only as a
// backstop against pathological instances (or leave it zero).
type Budget struct {
	MaxRounds int
	MaxMoves  int
	WallClock time.Duration
}

// ConvergenceResult reports how an equilibrium-seeking run ended.
//
// Outcome is Converged when a full activation round passed with no agent
// moving — the state is an equilibrium of the mover's move set (a greedy
// equilibrium for GreedyMover, a Nash equilibrium for BestResponseMover)
// — and Exhausted when a budget ran out first. SocialCost is the final
// state's social cost, recorded so callers need not re-query it.
type ConvergenceResult struct {
	Outcome    Outcome
	Rounds     int
	Moves      int
	SocialCost float64
	Elapsed    time.Duration
}

// PoA returns the empirical Price-of-Anarchy estimate of the final state
// against a social-optimum bound: SocialCost / optBound. With a certified
// lower bound on OPT (opt.LowerBound) the result upper-bounds the true
// ratio of this equilibrium, so values near 1 certify the paper's
// near-optimality claims. Returns +Inf for a non-positive bound.
func (r ConvergenceResult) PoA(optBound float64) float64 {
	if optBound <= 0 {
		return game.Inf()
	}
	return r.SocialCost / optBound
}

// Verification couples the parallel verifier's report on a converged
// state with the wall time the verification took. Elapsed is
// machine-dependent and must not feed byte-deterministic outputs; the
// embedded VerifyResult is worker-count-invariant and may.
type Verification struct {
	game.VerifyResult
	Elapsed time.Duration
}

// VerifyConvergence re-checks a convergence run's final state with the
// certified parallel verifier (game.VerifyGreedyEquilibrium): the
// independent confirmation tier behind the equilibrium ladder's
// exact_oracle_ne column. Convergence already implies a full no-move
// round under the (pruned) mover, so this is a double-check against a
// different code path — certificates plus, under opt.Exact, the
// unpruned exhaustive oracle. ok is false, and no verification runs,
// when the run did not converge (an Exhausted state proves nothing).
func VerifyConvergence(res ConvergenceResult, s *game.State, opt game.VerifyOptions) (Verification, bool) {
	if res.Outcome != Converged {
		return Verification{}, false
	}
	start := time.Now()
	v := game.VerifyGreedyEquilibrium(s, opt)
	return Verification{VerifyResult: v, Elapsed: time.Since(start)}, true
}

// RunToConvergence drives move dynamics on state s (mutating it) until a
// full round passes without an improving move, or a budget is exhausted.
//
// Unlike Run it keeps no profile history and performs no cycle
// detection: the per-move cost is O(1) bookkeeping on top of the mover
// itself, which is what makes full convergence runs feasible on the
// n=10⁴ equilibrium ladder. Dynamics that can cycle (exact best
// responses on T-/ℓ1-hosts, Thms 14 and 17) simply exhaust their budget;
// greedy dynamics on the ladder's metric hosts converge in practice.
// Callers who need a cycle certificate use Run.
func RunToConvergence(s *game.State, mover Mover, sched Scheduler, b Budget) ConvergenceResult {
	n := s.G.N()
	start := time.Now()
	res := ConvergenceResult{Outcome: Exhausted}
	cut := func() bool {
		if b.MaxMoves > 0 && res.Moves >= b.MaxMoves {
			return true
		}
		return b.WallClock > 0 && time.Since(start) >= b.WallClock
	}
	for !cut() {
		if b.MaxRounds > 0 && res.Rounds >= b.MaxRounds {
			break
		}
		res.Rounds++
		moved := false
		for _, u := range sched.Order(res.Rounds, n) {
			if cut() {
				break
			}
			strat, ok := mover(s, u)
			if !ok {
				continue
			}
			s.SetStrategy(u, strat)
			res.Moves++
			moved = true
		}
		if !moved && !cut() {
			res.Outcome = Converged
			break
		}
	}
	res.SocialCost = s.SocialCost()
	res.Elapsed = time.Since(start)
	return res
}
