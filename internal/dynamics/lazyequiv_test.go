package dynamics

import (
	"testing"

	"gncg/internal/game"
	"gncg/internal/gen"
	"gncg/internal/metric"
)

// lazyDensePair builds the same game twice: once on the lazy implicit
// space and once on its explicit matrix-backed densification.
func lazyDensePair(t *testing.T, sp metric.Space, alpha float64) (*game.Game, *game.Game) {
	t.Helper()
	dense, err := game.HostFromMatrix(metric.Matrix(sp))
	if err != nil {
		t.Fatal(err)
	}
	return game.New(game.NewHost(sp), alpha), game.New(dense, alpha)
}

// runTrace runs greedy dynamics from a star seed and returns the result.
func runTrace(g *game.Game, mover Mover, maxMoves int) (Result, float64) {
	s := game.NewState(g, game.StarProfile(g.N(), 0))
	res := Run(s, mover, RoundRobin{}, maxMoves)
	return res, s.SocialCost()
}

// TestLazyDenseDynamicsTraceEquivalence: dynamics are a pure function of
// the weight function, so a lazy host and its densified copy must produce
// the exact same move trace — same outcome, same movers in the same
// order, same strategies — and the same final social cost.
func TestLazyDenseDynamicsTraceEquivalence(t *testing.T) {
	type instance struct {
		kind  string
		sp    metric.Space
		alpha float64
	}
	var instances []instance
	for seed := int64(0); seed < 4; seed++ {
		n := 6 + int(seed)
		instances = append(instances,
			instance{"points-l2", gen.Points(seed, n, 2, 10, 2), 0.7 + float64(seed)*0.6},
			instance{"tree", gen.Tree(seed, n, 1.1, 5.7), 1 + float64(seed)*0.4},
			instance{"one-two", gen.OneTwo(seed, n, 0.4), 0.5 + float64(seed)*0.9},
		)
	}
	for _, ins := range instances {
		lg, dg := lazyDensePair(t, ins.sp, ins.alpha)
		lres, lsc := runTrace(lg, GreedyMover, 400)
		dres, dsc := runTrace(dg, GreedyMover, 400)
		if lres.Outcome != dres.Outcome || lres.Moves != dres.Moves || lres.Rounds != dres.Rounds {
			t.Fatalf("%s alpha %v: outcome lazy (%v,%d moves,%d rounds) != dense (%v,%d moves,%d rounds)",
				ins.kind, ins.alpha, lres.Outcome, lres.Moves, lres.Rounds, dres.Outcome, dres.Moves, dres.Rounds)
		}
		if len(lres.History) != len(dres.History) {
			t.Fatalf("%s alpha %v: trace length lazy %d != dense %d", ins.kind, ins.alpha, len(lres.History), len(dres.History))
		}
		for i := range lres.History {
			lt, dt := lres.History[i], dres.History[i]
			if lt.Agent != dt.Agent || len(lt.Strategy) != len(dt.Strategy) {
				t.Fatalf("%s alpha %v: trace step %d lazy %+v != dense %+v", ins.kind, ins.alpha, i, lt, dt)
			}
			for j := range lt.Strategy {
				if lt.Strategy[j] != dt.Strategy[j] {
					t.Fatalf("%s alpha %v: trace step %d lazy %+v != dense %+v", ins.kind, ins.alpha, i, lt, dt)
				}
			}
		}
		if lsc != dsc {
			t.Fatalf("%s alpha %v: final social cost lazy %v != dense %v", ins.kind, ins.alpha, lsc, dsc)
		}
	}
}

// TestLazyDenseBestResponseTraceEquivalence repeats the trace check with
// the exact best-response oracle on a small geometric instance.
func TestLazyDenseBestResponseTraceEquivalence(t *testing.T) {
	lg, dg := lazyDensePair(t, gen.Points(11, 6, 2, 10, 2), 1.3)
	lres, lsc := runTrace(lg, BestResponseMover, 300)
	dres, dsc := runTrace(dg, BestResponseMover, 300)
	if lres.Outcome != dres.Outcome || lres.Moves != dres.Moves || lsc != dsc {
		t.Fatalf("best-response trace diverged: lazy (%v,%d,%v) dense (%v,%d,%v)",
			lres.Outcome, lres.Moves, lsc, dres.Outcome, dres.Moves, dsc)
	}
}
