package dynamics

import (
	"testing"
	"time"

	"gncg/internal/bitset"
	"gncg/internal/game"
	"gncg/internal/metric"
	"gncg/internal/opt"
)

func unitSpace(n int) metric.Unit { return metric.Unit{N: n} }

func TestRunToConvergenceReachesGreedyEquilibrium(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := pointGame(seed, 10, 1.5)
		s := game.NewState(g, game.StarProfile(10, 0))
		res := RunToConvergence(s, GreedyMover, RoundRobin{}, Budget{})
		if res.Outcome != Converged {
			t.Fatalf("seed %d: unlimited budget did not converge: %+v", seed, res)
		}
		if !s.IsGreedyEquilibrium() {
			t.Fatalf("seed %d: converged state is not a greedy equilibrium", seed)
		}
		if res.SocialCost != s.SocialCost() {
			t.Fatalf("seed %d: recorded social cost %v != state's %v", seed, res.SocialCost, s.SocialCost())
		}
		if res.Moves < 0 || res.Rounds < 1 {
			t.Fatalf("seed %d: implausible counters %+v", seed, res)
		}
		lb := opt.LowerBound(g)
		if poa := res.PoA(lb); poa < 1-1e-9 {
			t.Fatalf("seed %d: PoA vs certified lower bound is %v < 1", seed, poa)
		}
	}
}

func TestRunToConvergenceAlreadyAtEquilibrium(t *testing.T) {
	// A star on a unit host with alpha > 1 is a greedy equilibrium; the
	// run must confirm it in one scanning round with zero moves.
	g := game.New(game.NewHost(unitSpace(8)), 4)
	s := game.NewState(g, game.StarProfile(8, 0))
	res := RunToConvergence(s, GreedyMover, RoundRobin{}, Budget{})
	if res.Outcome != Converged || res.Moves != 0 || res.Rounds != 1 {
		t.Fatalf("equilibrium start: %+v, want Converged after 1 round, 0 moves", res)
	}
}

func TestRunToConvergenceBudgets(t *testing.T) {
	mk := func(seed int64) *game.State {
		return game.NewState(pointGame(seed, 10, 0.8), game.StarProfile(10, 0))
	}
	// MaxMoves binds exactly.
	res := RunToConvergence(mk(1), GreedyMover, RoundRobin{}, Budget{MaxMoves: 3})
	if res.Outcome != Exhausted || res.Moves != 3 {
		t.Fatalf("MaxMoves=3: %+v", res)
	}
	// MaxRounds binds.
	res = RunToConvergence(mk(1), GreedyMover, RoundRobin{}, Budget{MaxRounds: 1})
	if res.Outcome != Exhausted || res.Rounds != 1 {
		t.Fatalf("MaxRounds=1: %+v", res)
	}
	// Identical deterministic budgets stop at identical states.
	a, b := mk(2), mk(2)
	ra := RunToConvergence(a, GreedyMover, RoundRobin{}, Budget{MaxMoves: 5})
	rb := RunToConvergence(b, GreedyMover, RoundRobin{}, Budget{MaxMoves: 5})
	if ra.Moves != rb.Moves || ra.Rounds != rb.Rounds || ra.SocialCost != rb.SocialCost {
		t.Fatalf("deterministic budget diverged: %+v vs %+v", ra, rb)
	}
	if !a.P.Equal(b.P) {
		t.Fatal("deterministic budget produced different profiles")
	}
	// An elapsed wall clock cuts the run before any move.
	res = RunToConvergence(mk(3), GreedyMover, RoundRobin{}, Budget{WallClock: time.Nanosecond})
	if res.Outcome != Exhausted || res.Moves != 0 {
		t.Fatalf("WallClock=1ns: %+v", res)
	}
}

// --- dynamics.Run edge-case regression corpus ---

func TestRunZeroMoveBudget(t *testing.T) {
	s := game.NewState(pointGame(4, 6, 1), game.EmptyProfile(6))
	res := Run(s, GreedyMover, RoundRobin{}, 0)
	if res.Outcome != Exhausted || res.Moves != 0 || res.Rounds != 0 || len(res.History) != 0 {
		t.Fatalf("maxMoves=0: %+v, want immediate Exhausted with empty history", res)
	}
}

func TestRunAlreadyAtEquilibriumStart(t *testing.T) {
	g := game.New(game.NewHost(unitSpace(6)), 4)
	s := game.NewState(g, game.StarProfile(6, 0))
	res := Run(s, GreedyMover, RoundRobin{}, 100)
	if res.Outcome != Converged || res.Moves != 0 || res.Rounds != 1 {
		t.Fatalf("equilibrium start: %+v, want Converged after 1 scanning round", res)
	}
}

// staleMover reproduces the stale best-response pattern a batching
// scheduler yields: at each round's first activation it computes every
// agent's response against the round-start state, then serves those
// cached responses as the round's later agents activate — after
// concurrent agents have already moved, so the served response may be
// stale. A stale response that still strictly improves against the
// current state is applied as is (a legal, merely suboptimal move); one
// that no longer improves is discarded and the agent recomputes fresh,
// so a full round without moves still certifies a genuine equilibrium.
type staleMover struct {
	inner   Mover
	n       int
	seen    int
	moved   bool // an agent moved since the batch was computed
	pending map[int]bitset.Set
	stale   int // genuinely stale responses applied
	reeval  int // stale responses discarded and recomputed
}

func (m *staleMover) move(s *game.State, u int) (bitset.Set, bool) {
	if m.seen == 0 { // round start: batch-compute against the current state
		m.pending = map[int]bitset.Set{}
		m.moved = false
		for v := 0; v < m.n; v++ {
			if strat, ok := m.inner(s, v); ok {
				m.pending[v] = strat.Clone()
			}
		}
	}
	m.seen = (m.seen + 1) % m.n
	cached, ok := m.pending[u]
	if !ok {
		// No improving move at round start; the state may have changed
		// since — recompute so convergence detection stays exact.
		strat, ok := m.inner(s, u)
		if ok {
			m.moved = true
		}
		return strat, ok
	}
	delete(m.pending, u)
	if !cached.Equal(s.P.S[u]) {
		cur := s.Cost(u)
		old := s.P.S[u].Clone()
		s.SetStrategy(u, cached)
		after := s.Cost(u)
		s.SetStrategy(u, old)
		if s.G.Improves(after, cur) {
			if m.moved {
				m.stale++ // applied after a concurrent agent's move
			}
			m.moved = true
			return cached, true
		}
	}
	m.reeval++
	strat, ok := m.inner(s, u)
	if ok {
		m.moved = true
	}
	return strat, ok
}

// TestRunStaleBestResponseAfterConcurrentMove is the deterministic
// regression corpus for the stale-response interleaving: a scheduler
// round activates every agent, later agents' cached responses having
// been computed before earlier agents moved. Run must stay well-defined:
// every applied move matched the documented mover contract (strictly
// improving at application time), the cost ledger never increases, and
// the run terminates (converged or exhausted, never a panic or a bogus
// cycle report).
func TestRunStaleBestResponseAfterConcurrentMove(t *testing.T) {
	staleApplied := 0
	for seed := int64(0); seed < 6; seed++ {
		g := pointGame(100+seed, 8, 1.2)
		s := game.NewState(g, game.StarProfile(8, int(seed)%8))
		sm := &staleMover{inner: GreedyMover, n: 8}
		res := Run(s, sm.move, RoundRobin{}, 5000)
		staleApplied += sm.stale
		if res.Outcome == Exhausted {
			t.Fatalf("seed %d: stale dynamics exhausted the budget", seed)
		}
		// Replay the recorded history on a fresh state: every applied
		// move must have strictly improved its mover at application time.
		replay := game.NewState(g, game.StarProfile(8, int(seed)%8))
		for i, tr := range res.History {
			before := replay.Cost(tr.Agent)
			replay.SetStrategy(tr.Agent, bitset.FromSlice(8, tr.Strategy))
			if after := replay.Cost(tr.Agent); !g.Improves(after, before) {
				t.Fatalf("seed %d: history move %d did not improve its mover (%v -> %v)",
					seed, i, before, after)
			}
		}
		if !replay.P.Equal(s.P) {
			t.Fatalf("seed %d: history replay diverged from final state", seed)
		}
		if res.Outcome == Converged && !s.IsGreedyEquilibrium() {
			t.Fatalf("seed %d: converged stale dynamics left an improving move", seed)
		}
	}
	if staleApplied == 0 {
		t.Fatal("corpus never exercised the stale-application path; scenario is vacuous")
	}
}
