package dynamics

import (
	"testing"

	"gncg/internal/game"
	"gncg/internal/gen"
)

// TestConjecture1Evidence: the paper conjectures (Conj. 1) that the
// Rd–GNCG lacks the finite improvement property under EVERY p-norm, but
// only proves it for the 1-norm (Thm 17). The exhaustive improving-move
// analysis finds verified cycles on random 4-point instances under the
// 2-norm and the 3-norm — computational support for the conjecture that
// goes beyond the paper's own evidence.
func TestConjecture1Evidence(t *testing.T) {
	for _, p := range []float64{2, 3} {
		found := false
		for seed := int64(0); seed < 6 && !found; seed++ {
			pts := gen.Points(seed, 4, 2, 10, p)
			for _, alpha := range []float64{0.6, 1, 1.5, 2.5} {
				g := game.New(game.NewHost(pts), alpha)
				w, has, err := ExhaustiveFIP(g)
				if err != nil {
					t.Fatal(err)
				}
				if !has {
					continue
				}
				if !VerifyFIPWitness(g, w) {
					t.Fatalf("p=%v seed=%d alpha=%v: witness failed verification", p, seed, alpha)
				}
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no improving-move cycle found under the %v-norm (Conj. 1 evidence regressed)", p)
		}
	}
}
