package dynamics

import (
	"fmt"
	"math"

	"gncg/internal/bitset"
	"gncg/internal/game"
	"gncg/internal/parallel"
)

// FIPWitness is a cycle in the exhaustive improving-move graph: a
// sequence of profiles, each reachable from the previous by one agent's
// strictly improving strategy change, returning to its start. Its
// existence decides (negatively) the finite improvement property for the
// instance — the machine-checkable content of Thms 14 and 17.
type FIPWitness struct {
	Profiles []game.Profile // cycle states; first == last move target
	Agents   []int          // Agents[i] moves Profiles[i] -> Profiles[i+1]
}

// maxFIPAgents caps the exhaustive profile enumeration: the profile space
// has 2^(n(n-1)) states, so n = 4 gives 4096 and n = 5 about one million.
const maxFIPAgents = 5

// ExhaustiveFIP builds the full improving-move graph of the game — every
// strategy profile is a node, every strictly improving unilateral strategy
// change an arc — and searches it for a directed cycle. It returns a
// replayable witness if one exists; hasCycle=false is a PROOF that the
// instance has the finite improvement property (improving moves strictly
// descend an acyclic relation). Exponential in n²: refuses n > 5.
func ExhaustiveFIP(g *game.Game) (witness *FIPWitness, hasCycle bool, err error) {
	n := g.N()
	if n > maxFIPAgents {
		return nil, false, fmt.Errorf("dynamics: exhaustive FIP check supports n <= %d, got %d", maxFIPAgents, n)
	}
	perAgent := 1 << (n - 1) // strategies of one agent as masks over others
	total := 1
	for i := 0; i < n; i++ {
		total *= perAgent
	}

	// Cost of every (profile, agent): computed in parallel by profile.
	costs := parallel.Map(total, func(idx int) []float64 {
		s := game.NewState(g, decodeProfile(idx, n, perAgent))
		out := make([]float64, n)
		for u := 0; u < n; u++ {
			out[u] = s.Cost(u)
		}
		return out
	})

	// DFS over the improving-move graph with tri-color marking; a back
	// edge closes a cycle.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, total)
	parent := make([]int32, total)
	parentAgent := make([]int8, total)
	for i := range parent {
		parent[i] = -1
	}

	successors := func(idx int) (next []int, agents []int) {
		base := costs[idx]
		for u := 0; u < n; u++ {
			cur := base[u]
			for alt := 0; alt < perAgent; alt++ {
				nidx := replaceAgentStrategy(idx, u, alt, n, perAgent)
				if nidx == idx {
					continue
				}
				if improves(costs[nidx][u], cur, g.Eps) {
					next = append(next, nidx)
					agents = append(agents, u)
				}
			}
		}
		return next, agents
	}

	type frame struct {
		idx  int
		succ []int
		ags  []int
		pos  int
	}
	for start := 0; start < total; start++ {
		if color[start] != white {
			continue
		}
		stack := []frame{}
		color[start] = gray
		sn, sa := successors(start)
		stack = append(stack, frame{idx: start, succ: sn, ags: sa})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.pos >= len(f.succ) {
				color[f.idx] = black
				stack = stack[:len(stack)-1]
				continue
			}
			nxt := f.succ[f.pos]
			ag := f.ags[f.pos]
			f.pos++
			switch color[nxt] {
			case white:
				color[nxt] = gray
				parent[nxt] = int32(f.idx)
				parentAgent[nxt] = int8(ag)
				nn, na := successors(nxt)
				stack = append(stack, frame{idx: nxt, succ: nn, ags: na})
			case gray:
				// Back edge f.idx -> nxt: walk the stack portion from nxt
				// to f.idx to extract the cycle.
				w := &FIPWitness{}
				var chain []int
				var agentsChain []int
				cur := f.idx
				chain = append(chain, cur)
				for cur != nxt {
					agentsChain = append(agentsChain, int(parentAgent[cur]))
					cur = int(parent[cur])
					chain = append(chain, cur)
				}
				// chain is f.idx ... nxt (reverse order); reverse it and
				// close the loop with the back edge.
				for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
					chain[i], chain[j] = chain[j], chain[i]
				}
				for i, j := 0, len(agentsChain)-1; i < j; i, j = i+1, j-1 {
					agentsChain[i], agentsChain[j] = agentsChain[j], agentsChain[i]
				}
				agentsChain = append(agentsChain, ag) // back edge mover
				chain = append(chain, nxt)
				for _, idx := range chain {
					w.Profiles = append(w.Profiles, decodeProfile(idx, n, perAgent))
				}
				w.Agents = agentsChain
				return w, true, nil
			}
		}
	}
	return nil, false, nil
}

func improves(newCost, oldCost, eps float64) bool {
	if math.IsInf(oldCost, 1) {
		return !math.IsInf(newCost, 1)
	}
	return newCost < oldCost-eps
}

// decodeProfile expands a packed profile index into a Profile: agent u's
// digit (base perAgent) is a bitmask over the other agents in increasing
// order.
func decodeProfile(idx, n, perAgent int) game.Profile {
	p := game.EmptyProfile(n)
	for u := 0; u < n; u++ {
		mask := idx % perAgent
		idx /= perAgent
		bit := 0
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			if mask&(1<<bit) != 0 {
				p.Buy(u, v)
			}
			bit++
		}
	}
	return p
}

// replaceAgentStrategy returns the profile index with agent u's digit
// replaced by alt.
func replaceAgentStrategy(idx, u, alt, n, perAgent int) int {
	pow := 1
	for i := 0; i < u; i++ {
		pow *= perAgent
	}
	digit := (idx / pow) % perAgent
	return idx + (alt-digit)*pow
}

// VerifyFIPWitness replays a witness: every step must strictly improve
// its mover and the final profile must equal the first.
func VerifyFIPWitness(g *game.Game, w *FIPWitness) bool {
	if len(w.Profiles) < 2 || len(w.Agents) != len(w.Profiles)-1 {
		return false
	}
	for i := 0; i+1 < len(w.Profiles); i++ {
		u := w.Agents[i]
		before := game.NewState(g, w.Profiles[i].Clone()).Cost(u)
		after := game.NewState(g, w.Profiles[i+1].Clone()).Cost(u)
		if !improves(after, before, g.Eps) {
			return false
		}
		// Only agent u's strategy may change.
		for v := 0; v < g.N(); v++ {
			if v != u && !w.Profiles[i].S[v].Equal(w.Profiles[i+1].S[v]) {
				return false
			}
		}
	}
	return w.Profiles[0].Equal(w.Profiles[len(w.Profiles)-1])
}

// StrategySet converts a strategy mask over "others" into a bitset, for
// diagnostic printing.
func StrategySet(n, u, mask int) bitset.Set {
	s := bitset.New(n)
	bit := 0
	for v := 0; v < n; v++ {
		if v == u {
			continue
		}
		if mask&(1<<bit) != 0 {
			s.Add(v)
		}
		bit++
	}
	return s
}
