package dynamics

import (
	"math"
	"math/rand"
	"testing"

	"gncg/internal/bestresponse"
	"gncg/internal/bitset"
	"gncg/internal/game"
	"gncg/internal/gen"
	"gncg/internal/metric"
)

func pointGame(seed int64, n int, alpha float64) *game.Game {
	return game.New(game.NewHost(gen.Points(seed, n, 2, 10, 2)), alpha)
}

func TestRunConvergesToGreedyEquilibrium(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := pointGame(seed, 8, 1.5)
		s := game.NewState(g, game.EmptyProfile(8))
		res := Run(s, GreedyMover, RoundRobin{}, 10000)
		if res.Outcome == Exhausted {
			t.Fatalf("seed %d: greedy dynamics exhausted budget", seed)
		}
		if res.Outcome == Converged && !s.IsGreedyEquilibrium() {
			t.Fatalf("seed %d: converged state is not a greedy equilibrium", seed)
		}
	}
}

func TestBestResponseDynamicsReachNash(t *testing.T) {
	for seed := int64(10); seed < 13; seed++ {
		g := pointGame(seed, 6, 1)
		s := game.NewState(g, game.EmptyProfile(6))
		res := Run(s, BestResponseMover, RoundRobin{}, 500)
		if res.Outcome == Converged && !bestresponse.IsNash(s) {
			t.Fatalf("seed %d: converged state fails the exact Nash check", seed)
		}
	}
}

func TestRunAddOnlyAlwaysConverges(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		n := 7
		g := pointGame(seed, n, 0.8)
		s := game.NewState(g, game.StarProfile(n, 0))
		res := RunAddOnly(s, RoundRobin{})
		if res.Outcome != Converged {
			t.Fatalf("seed %d: add-only dynamics did not converge: %v", seed, res.Outcome)
		}
		if !s.IsAddOnlyEquilibrium() {
			t.Fatalf("seed %d: result is not an add-only equilibrium", seed)
		}
	}
}

// TestAddOnlyYieldsAlphaPlus1GE verifies Thm 2 on computed AE networks:
// every AE is an (α+1)-approximate greedy equilibrium.
func TestAddOnlyYieldsAlphaPlus1GE(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		alpha := 0.5 + float64(seed)*0.5
		g := pointGame(seed+100, 7, alpha)
		s := game.NewState(g, game.StarProfile(7, 0))
		RunAddOnly(s, RoundRobin{})
		if f := s.GreedyApproxFactor(); f > alpha+1+1e-6 {
			t.Fatalf("seed %d alpha %v: AE has greedy factor %v > alpha+1", seed, alpha, f)
		}
	}
}

// TestAddOnlyYields3Alpha1NE verifies Cor. 2 on computed AE networks:
// every AE is a 3(α+1)-approximate Nash equilibrium.
func TestAddOnlyYields3Alpha1NE(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		alpha := 0.5 + float64(seed)*0.7
		g := pointGame(seed+200, 7, alpha)
		s := game.NewState(g, game.StarProfile(7, 0))
		RunAddOnly(s, RoundRobin{})
		if f := bestresponse.NashApproxFactor(s); f > 3*(alpha+1)+1e-6 {
			t.Fatalf("seed %d alpha %v: AE has Nash factor %v > 3(alpha+1)=%v",
				seed, alpha, f, 3*(alpha+1))
		}
	}
}

func TestMoversReportNoImprovementAtEquilibrium(t *testing.T) {
	// Unit star at alpha=2 is an NE; all movers must decline to move.
	n := 5
	g := game.New(game.NewHost(metric.Unit{N: n}), 2)
	p := game.EmptyProfile(n)
	for v := 1; v < n; v++ {
		p.Buy(0, v)
	}
	s := game.NewState(g, p)
	for name, mover := range map[string]Mover{
		"best-response": BestResponseMover,
		"greedy":        GreedyMover,
		"add-only":      AddOnlyMover,
		"approx-br":     ApproxBRMover,
	} {
		if _, ok := mover(s, 1); ok {
			t.Errorf("%s mover moved at an equilibrium", name)
		}
	}
}

func TestRunDetectsPlantedCycle(t *testing.T) {
	// Force a cycle with a synthetic mover that alternates agent 0
	// between two strategies regardless of cost.
	g := game.New(game.NewHost(metric.Unit{N: 3}), 0.1)
	p := game.EmptyProfile(3)
	p.Buy(1, 0)
	p.Buy(1, 2)
	s := game.NewState(g, p)
	flip := false
	mover := func(st *game.State, u int) (bitset.Set, bool) {
		if u != 0 {
			return bitset.Set{}, false
		}
		flip = !flip
		b := st.P.S[0].Clone()
		b.Clear()
		if flip {
			b.Add(2)
		}
		return b, true
	}
	res := Run(s, mover, RoundRobin{}, 100)
	if res.Outcome != CycleDetected {
		t.Fatalf("planted cycle not detected: %v", res.Outcome)
	}
	if res.CycleLen == 0 || res.CycleLen%2 != 0 {
		t.Fatalf("cycle length = %d, want even > 0", res.CycleLen)
	}
}

func TestSchedulers(t *testing.T) {
	rr := RoundRobin{}.Order(3, 4)
	for i, v := range rr {
		if v != i {
			t.Fatalf("round robin order %v", rr)
		}
	}
	ro := RandomOrder{Rng: rand.New(rand.NewSource(1))}.Order(1, 10)
	seen := map[int]bool{}
	for _, v := range ro {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("random order is not a permutation: %v", ro)
	}
}

// TestVerifyCycleRejectsBogusWitness: a witness whose moves don't improve
// must fail verification.
func TestVerifyCycleRejectsBogusWitness(t *testing.T) {
	g := game.New(game.NewHost(metric.Unit{N: 3}), 1)
	p := game.EmptyProfile(3)
	p.Buy(0, 1)
	p.Buy(1, 2)
	w := CycleWitness{
		Initial:    p,
		Moves:      []Trace{{Agent: 0, Strategy: []int{1, 2}}, {Agent: 0, Strategy: []int{1}}},
		CycleStart: 0,
		CycleLen:   2,
	}
	if VerifyCycle(g, w) {
		t.Fatal("bogus witness accepted")
	}
}

func TestCostNeverIncreasesUnderDynamics(t *testing.T) {
	// Each applied move must strictly lower the mover's cost (the run's
	// fundamental invariant, checked here against a recorded history).
	g := pointGame(77, 7, 1.2)
	s := game.NewState(g, game.EmptyProfile(7))
	initial := s.P.Clone()
	res := Run(s, GreedyMover, RoundRobin{}, 5000)
	if res.Outcome == Exhausted {
		t.Skip("budget exhausted; invariant replay not meaningful")
	}
	replay := game.NewState(g, initial)
	for i, tr := range res.History {
		before := replay.Cost(tr.Agent)
		strat := replay.P.S[tr.Agent].Clone()
		strat.Clear()
		for _, v := range tr.Strategy {
			strat.Add(v)
		}
		replay.SetStrategy(tr.Agent, strat)
		if !g.Improves(replay.Cost(tr.Agent), before) {
			t.Fatalf("move %d did not improve agent %d", i, tr.Agent)
		}
	}
}

// TestTreeMetricEquilibriaAreTrees spot-checks Thm 12: stable networks
// reached by best-response dynamics on tree metrics are trees.
func TestTreeMetricEquilibriaAreTrees(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		tm := gen.Tree(seed, 7, 1, 5)
		g := game.New(game.NewHost(tm), 1.5)
		s := game.NewState(g, game.EmptyProfile(7))
		res := Run(s, BestResponseMover, RoundRobin{}, 300)
		if res.Outcome != Converged {
			continue // cycles are possible (Thm 14); only converged runs assert
		}
		if !bestresponse.IsNash(s) {
			t.Fatalf("seed %d: converged but not Nash", seed)
		}
		if !s.Network().IsTree() {
			t.Fatalf("seed %d: NE on tree metric is not a tree (violates Thm 12)", seed)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	if Converged.String() != "converged" || CycleDetected.String() != "cycle" || Exhausted.String() != "exhausted" {
		t.Fatal("outcome names wrong")
	}
	if math.IsNaN(0) { // keep math import honest
		t.Fatal("unreachable")
	}
}
