package dynamics

import (
	"testing"

	"gncg/internal/game"
	"gncg/internal/gen"
	"gncg/internal/metric"
)

// TestExhaustiveFIPFindsTreeMetricCycles is the Thm 14 reproduction: tree
// metrics admit improving-move cycles (the T–GNCG is not a potential
// game). Random 4-node tree metrics already exhibit verified cycles.
func TestExhaustiveFIPFindsTreeMetricCycles(t *testing.T) {
	found := 0
	for seed := int64(0); seed < 6 && found < 2; seed++ {
		tm := gen.Tree(seed, 4, 1, 12)
		for _, alpha := range []float64{0.6, 1, 1.5, 2.5} {
			g := game.New(game.NewHost(tm), alpha)
			w, has, err := ExhaustiveFIP(g)
			if err != nil {
				t.Fatal(err)
			}
			if !has {
				continue
			}
			if !VerifyFIPWitness(g, w) {
				t.Fatalf("seed %d alpha %v: witness failed verification", seed, alpha)
			}
			found++
			break
		}
	}
	if found == 0 {
		t.Fatal("no improving-move cycle on any sampled tree metric (Thm 14 reproduction failed)")
	}
}

// TestExhaustiveFIPFindsLength4Cycle: the paper's Fig. 5 cycle has four
// moves; seed 2 at alpha 1.5 reproduces a verified length-4 cycle.
func TestExhaustiveFIPFindsLength4Cycle(t *testing.T) {
	tm := gen.Tree(2, 4, 1, 12)
	g := game.New(game.NewHost(tm), 1.5)
	w, has, err := ExhaustiveFIP(g)
	if err != nil {
		t.Fatal(err)
	}
	if !has {
		t.Fatal("expected a cycle on seed-2 tree at alpha=1.5")
	}
	if len(w.Profiles)-1 != 4 {
		t.Logf("cycle length %d (the paper's crafted cycle has 4; any length refutes FIP)", len(w.Profiles)-1)
	}
	if !VerifyFIPWitness(g, w) {
		t.Fatal("witness failed verification")
	}
}

func TestExhaustiveFIPRefusesLargeN(t *testing.T) {
	g := game.New(game.NewHost(metric.Unit{N: 6}), 1)
	if _, _, err := ExhaustiveFIP(g); err == nil {
		t.Fatal("n=6 accepted by exhaustive FIP check")
	}
}

// TestExhaustiveFIPNoCycleCases: instances where improving dynamics form
// a potential-like descent must be certified cycle-free. A 2-agent game
// is always a potential game (unilateral improvements on two agents
// cannot cycle: joint cost strictly reorders), and small unit hosts at
// extreme alpha behave likewise.
func TestExhaustiveFIPNoCycleCases(t *testing.T) {
	g := game.New(game.NewHost(metric.Unit{N: 2}), 1.5)
	if _, has, err := ExhaustiveFIP(g); err != nil || has {
		t.Fatalf("2-agent unit game reported cyclic (err=%v)", err)
	}
}

func TestVerifyFIPWitnessRejectsMalformed(t *testing.T) {
	g := game.New(game.NewHost(metric.Unit{N: 3}), 1)
	// Two-profile "cycle" that doesn't return to start.
	a := game.EmptyProfile(3)
	b := game.EmptyProfile(3)
	b.Buy(0, 1)
	w := &FIPWitness{Profiles: []game.Profile{a, b}, Agents: []int{0}}
	if VerifyFIPWitness(g, w) {
		t.Fatal("non-returning witness accepted")
	}
	// Agent mismatch: profile changes an agent other than the mover.
	c := game.EmptyProfile(3)
	c.Buy(1, 2)
	w2 := &FIPWitness{Profiles: []game.Profile{a, c, a}, Agents: []int{0, 0}}
	if VerifyFIPWitness(g, w2) {
		t.Fatal("wrong-mover witness accepted")
	}
	if VerifyFIPWitness(g, &FIPWitness{}) {
		t.Fatal("empty witness accepted")
	}
}

// TestFig8CycleSearch is the Thm 17 reproduction: the Fig. 8 point set
// under the 1-norm admits a verified improving-move cycle at alpha = 1
// (found by randomized best-response dynamics with recurrence detection).
func TestFig8CycleSearch(t *testing.T) {
	pts, err := metric.NewPoints([][]float64{
		{3, 0}, {0, 3}, {2, 2}, {0, 2}, {1, 1},
		{4, 3}, {2, 0}, {4, 1}, {1, 4}, {1, 0},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := game.New(game.NewHost(pts), 1)
	w, ok := FindCycle(g, CycleSearchConfig{
		Restarts: 120, MaxMoves: 2000, EdgeProb: 0.3, Seed: 7, RandomSched: true,
	})
	if !ok {
		t.Fatal("no improving-move cycle found on the Fig 8 point set at alpha=1")
	}
	if !VerifyCycle(g, w) {
		t.Fatal("Fig 8 cycle witness failed verification")
	}
}

func TestStrategySetDecoding(t *testing.T) {
	// Agent 1 in a 4-agent game, mask 0b101 over others (0,2,3): bits
	// select nodes 0 and 3.
	s := StrategySet(4, 1, 0b101)
	if !s.Has(0) || s.Has(2) || !s.Has(3) || s.Has(1) {
		t.Fatalf("decoded %v", s.Elems())
	}
}
