// Package dynamics simulates the game's move dynamics and detects their
// two possible fates: convergence to a stable state or a revisited state,
// which certifies an improving-move cycle and hence refutes the finite
// improvement property (the paper's Thms 14 and 17 assert exactly such
// cycles exist for the T–GNCG and the Rd–GNCG with the 1-norm).
//
// Three move oracles are provided: exact best responses (expensive,
// exponential worst case), greedy single-edge responses (polynomial, the
// GE notion), and add-only responses (polynomial; these always converge
// because strategies only grow, yielding the AE networks of Thm 2).
//
// The simulation layer is cost-model-blind: movers see only costs and
// moves, both of which the state's game.Rules already shapes, so
// GreedyMover and AddOnlyMover run unchanged under every model
// (single-edge scans respect the model's feasibility predicate inside
// BestSingleMove/BestBuy). The two best-response movers go through the
// UMFL reduction and therefore carry its model gate: BestResponseMover
// and ApproxBRMover panic under models whose Rules.ExactNashViaUMFL is
// false (budget) — schedule GreedyMover for those.
package dynamics

import (
	"math/rand"

	"gncg/internal/bestresponse"
	"gncg/internal/bitset"
	"gncg/internal/game"
)

// Mover computes agent u's next strategy in state s. It returns the new
// strategy and whether it strictly improves on u's current cost.
type Mover func(s *game.State, u int) (bitset.Set, bool)

// BestResponseMover plays exact best responses.
func BestResponseMover(s *game.State, u int) (bitset.Set, bool) {
	br := bestresponse.Exact(s, u)
	if !s.G.Improves(br.Cost, s.Cost(u)) {
		return bitset.Set{}, false
	}
	return br.Strategy, true
}

// GreedyMover plays the best single buy/delete/swap move. The winning
// move is turned into a strategy by game.Move.NewStrategy — the same
// helper State.Apply uses — so the two mutation paths cannot drift.
func GreedyMover(s *game.State, u int) (bitset.Set, bool) {
	m, _, ok := s.BestSingleMove(u)
	if !ok {
		return bitset.Set{}, false
	}
	return m.NewStrategy(s.P.S[u]), true
}

// AddOnlyMover plays the best single buy move (never deletes).
func AddOnlyMover(s *game.State, u int) (bitset.Set, bool) {
	m, _, ok := s.BestBuy(u)
	if !ok {
		return bitset.Set{}, false
	}
	return m.NewStrategy(s.P.S[u]), true
}

// ApproxBRMover plays the UMFL-local-search 3-approximate best response,
// accepting it only when it strictly improves.
func ApproxBRMover(s *game.State, u int) (bitset.Set, bool) {
	br := bestresponse.ApproxLocalSearch(s, u)
	if !s.G.Improves(br.Cost, s.Cost(u)) {
		return bitset.Set{}, false
	}
	return br.Strategy, true
}

// Scheduler yields the order in which agents are offered moves in each
// round.
type Scheduler interface {
	Order(round, n int) []int
}

// RoundRobin activates agents 0..n-1 in index order every round.
type RoundRobin struct{}

// Order returns 0..n-1.
func (RoundRobin) Order(round, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// RandomOrder activates agents in a fresh seeded permutation each round.
type RandomOrder struct{ Rng *rand.Rand }

// Order returns a permutation of 0..n-1.
func (r RandomOrder) Order(round, n int) []int { return r.Rng.Perm(n) }

// Outcome summarizes a dynamics run.
type Outcome int

const (
	// Converged: a full round passed with no agent moving.
	Converged Outcome = iota
	// CycleDetected: a previously seen strategy profile recurred, proving
	// an improving-move cycle (no FIP).
	CycleDetected
	// Exhausted: the step budget ran out first.
	Exhausted
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Converged:
		return "converged"
	case CycleDetected:
		return "cycle"
	case Exhausted:
		return "exhausted"
	default:
		return "unknown"
	}
}

// Trace records one improving move for replay and inspection.
type Trace struct {
	Agent    int
	Strategy []int // the new strategy, as node indices
}

// Result reports how a run ended. Moves counts applied improving moves.
// When Outcome is CycleDetected, CycleStart/CycleLen describe the
// recurrence within History: the profile after move CycleStart+CycleLen
// equals the one after move CycleStart.
type Result struct {
	Outcome    Outcome
	Moves      int
	Rounds     int
	History    []Trace
	CycleStart int
	CycleLen   int
}

// Run simulates dynamics on state s (mutating it) until convergence,
// state recurrence, or maxMoves applied moves. Recurrence detection
// hashes every visited profile; hash collisions are disambiguated by
// storing full profiles per hash bucket, so a reported cycle is exact.
func Run(s *game.State, mover Mover, sched Scheduler, maxMoves int) Result {
	n := s.G.N()
	res := Result{Outcome: Exhausted}
	seen := map[uint64][]seenEntry{}
	record := func(moveIdx int) (int, bool) {
		h := s.P.Hash()
		for _, e := range seen[h] {
			if e.profile.Equal(s.P) {
				return e.moveIdx, true
			}
		}
		seen[h] = append(seen[h], seenEntry{moveIdx: moveIdx, profile: s.P.Clone()})
		return 0, false
	}
	record(0)
	for res.Moves < maxMoves {
		res.Rounds++
		movedThisRound := false
		for _, u := range sched.Order(res.Rounds, n) {
			if res.Moves >= maxMoves {
				break
			}
			strat, ok := mover(s, u)
			if !ok {
				continue
			}
			s.SetStrategy(u, strat)
			res.Moves++
			movedThisRound = true
			res.History = append(res.History, Trace{Agent: u, Strategy: strat.Elems()})
			if at, dup := record(res.Moves); dup {
				res.Outcome = CycleDetected
				res.CycleStart = at
				res.CycleLen = res.Moves - at
				return res
			}
		}
		if !movedThisRound {
			res.Outcome = Converged
			return res
		}
	}
	return res
}

type seenEntry struct {
	moveIdx int
	profile game.Profile
}

// RunAddOnly runs add-only dynamics to completion. Add-only dynamics
// always converge (strategies only grow and each buy strictly improves
// the buyer), so the result state is an add-only equilibrium; Thm 2 and
// Cor. 2 then bound how unstable it can be — for CONNECTED states. Start
// from a connected profile (e.g. game.StarProfile): from a sufficiently
// disconnected state no single purchase yields finite cost, so the empty
// network is vacuously add-only stable yet infinitely bad, a degenerate
// case the paper's finite-cost arguments exclude. The move bound guards
// against pathological float behaviour only.
func RunAddOnly(s *game.State, sched Scheduler) Result {
	n := s.G.N()
	maxMoves := n*n + n // each agent can buy at most n-1 edges
	return Run(s, AddOnlyMover, sched, maxMoves)
}
