package dynamics

import (
	"math/rand"
	"sync"

	"gncg/internal/game"
	"gncg/internal/parallel"
)

// CycleSearchConfig controls the randomized search for improving-move
// cycles (the machine-checkable content of Thms 14 and 17: the games do
// not have the finite improvement property).
type CycleSearchConfig struct {
	Restarts    int     // number of random initial profiles
	MaxMoves    int     // move budget per restart
	EdgeProb    float64 // probability an agent buys a given edge initially
	Seed        int64
	UseGreedy   bool // use GreedyMover instead of exact best responses
	RandomSched bool // random agent order instead of round-robin
}

// CycleWitness is a machine-verified improving-move cycle: starting from
// Initial and applying Moves in order, the strategy profile after move
// CycleStart recurs after CycleLen further moves. Every move in the
// history strictly improved its mover's cost, so the cycle certifies a
// violation of the finite improvement property.
type CycleWitness struct {
	Initial    game.Profile
	Moves      []Trace
	CycleStart int
	CycleLen   int
	Restart    int // which restart found it
}

// FindCycle searches for an improving-move cycle in game g. Restarts run
// in parallel; the witness from the lowest-numbered successful restart is
// returned for determinism. Returns ok=false if no cycle surfaced within
// the budget — which is evidence of nothing (dynamics may simply have
// converged), matching the one-sided nature of FIP refutation.
func FindCycle(g *game.Game, cfg CycleSearchConfig) (CycleWitness, bool) {
	type hit struct {
		witness CycleWitness
		ok      bool
	}
	var mu sync.Mutex
	best := hit{}
	parallel.For(cfg.Restarts, func(r int) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(r)*1_000_003))
		p := randomProfile(rng, g.N(), cfg.EdgeProb)
		s := game.NewState(g, p.Clone())
		mover := BestResponseMover
		if cfg.UseGreedy {
			mover = GreedyMover
		}
		var sched Scheduler = RoundRobin{}
		if cfg.RandomSched {
			sched = RandomOrder{Rng: rng}
		}
		res := Run(s, mover, sched, cfg.MaxMoves)
		if res.Outcome != CycleDetected {
			return
		}
		w := CycleWitness{
			Initial:    p,
			Moves:      res.History,
			CycleStart: res.CycleStart,
			CycleLen:   res.CycleLen,
			Restart:    r,
		}
		mu.Lock()
		if !best.ok || r < best.witness.Restart {
			best = hit{witness: w, ok: true}
		}
		mu.Unlock()
	})
	return best.witness, best.ok
}

// VerifyCycle replays a witness and checks every move strictly improved
// its mover and that the profile really recurs. It is the independent
// validation pass applied to every cycle the search reports.
func VerifyCycle(g *game.Game, w CycleWitness) bool {
	s := game.NewState(g, w.Initial.Clone())
	var snapshots []game.Profile
	snapshots = append(snapshots, s.P.Clone())
	for _, tr := range w.Moves {
		before := s.Cost(tr.Agent)
		strat := s.P.S[tr.Agent].Clone()
		strat.Clear()
		for _, v := range tr.Strategy {
			strat.Add(v)
		}
		s.SetStrategy(tr.Agent, strat)
		if !g.Improves(s.Cost(tr.Agent), before) {
			return false
		}
		snapshots = append(snapshots, s.P.Clone())
	}
	if w.CycleStart+w.CycleLen >= len(snapshots) || w.CycleLen <= 0 {
		return false
	}
	return snapshots[w.CycleStart].Equal(snapshots[w.CycleStart+w.CycleLen])
}

func randomProfile(rng *rand.Rand, n int, p float64) game.Profile {
	prof := game.EmptyProfile(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				prof.Buy(u, v)
			}
		}
	}
	return prof
}
