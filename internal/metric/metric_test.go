package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gncg/internal/graph"
)

func TestUnitSpace(t *testing.T) {
	u := Unit{N: 5}
	if u.Dist(0, 0) != 0 || u.Dist(1, 3) != 1 {
		t.Fatal("unit distances wrong")
	}
	if Classify(Matrix(u), 1e-9) != ClassUnit {
		t.Fatal("unit space not classified as NCG")
	}
}

func TestFromMatrixValidation(t *testing.T) {
	if _, err := FromMatrix([][]float64{{0, 1}, {2, 0}}); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	if _, err := FromMatrix([][]float64{{1}}); err == nil {
		t.Error("nonzero diagonal accepted")
	}
	if _, err := FromMatrix([][]float64{{0, -1}, {-1, 0}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := FromMatrix([][]float64{{0, 1, 2}, {1, 0}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	s, err := FromMatrix([][]float64{{0, 3}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Dist(0, 1) != 3 {
		t.Error("matrix space distance wrong")
	}
}

func TestIsMetric(t *testing.T) {
	ok := [][]float64{{0, 1, 2}, {1, 0, 1}, {2, 1, 0}}
	if !IsMetric(ok, 1e-9) {
		t.Error("metric matrix rejected")
	}
	bad := [][]float64{{0, 1, 5}, {1, 0, 1}, {5, 1, 0}}
	if IsMetric(bad, 1e-9) {
		t.Error("non-metric matrix accepted")
	}
	withInf := [][]float64{{0, 1, math.Inf(1)}, {1, 0, 1}, {math.Inf(1), 1, 0}}
	if IsMetric(withInf, 1e-9) {
		t.Error("matrix with +Inf entries accepted as metric")
	}
}

// TestPNormTriangleInequality: every p-norm (p >= 1) induces a metric.
func TestPNormTriangleInequality(t *testing.T) {
	for _, p := range []float64{1, 1.5, 2, 3, math.Inf(1)} {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := 3 + rng.Intn(10)
			d := 1 + rng.Intn(4)
			coords := make([][]float64, n)
			for i := range coords {
				coords[i] = make([]float64, d)
				for k := range coords[i] {
					coords[i][k] = rng.NormFloat64() * 10
				}
			}
			ps, err := NewPoints(coords, p)
			if err != nil {
				return false
			}
			return IsMetric(Matrix(ps), 1e-7)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("p=%v: %v", p, err)
		}
	}
}

func TestPNormKnownValues(t *testing.T) {
	a, b := []float64{0, 0}, []float64{3, 4}
	if got := PNormDist(a, b, 1); got != 7 {
		t.Errorf("l1 = %v, want 7", got)
	}
	if got := PNormDist(a, b, 2); math.Abs(got-5) > 1e-12 {
		t.Errorf("l2 = %v, want 5", got)
	}
	if got := PNormDist(a, b, math.Inf(1)); got != 4 {
		t.Errorf("linf = %v, want 4", got)
	}
	if got := PNormDist(a, b, 3); math.Abs(got-math.Pow(27+64, 1.0/3)) > 1e-12 {
		t.Errorf("l3 = %v", got)
	}
}

func TestNewPointsValidation(t *testing.T) {
	if _, err := NewPoints([][]float64{{1, 2}, {1}}, 2); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := NewPoints([][]float64{{1}}, 0.5); err == nil {
		t.Error("p < 1 accepted")
	}
}

// TestTreeMetricMatchesDijkstra: LCA-based tree distances must equal
// shortest-path distances on the tree graph.
func TestTreeMetricMatchesDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		edges := make([]graph.Edge, 0, n-1)
		for v := 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: rng.Intn(v), V: v, W: rng.Float64() * 10})
		}
		tm, err := NewTreeMetric(n, edges)
		if err != nil {
			return false
		}
		g := graph.FromEdges(n, edges)
		d := g.APSP()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(tm.Dist(i, j)-d[i][j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTreeMetricIsMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 20
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: rng.Intn(v), V: v, W: rng.Float64() * 5})
	}
	tm, err := NewTreeMetric(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	if !IsMetric(Matrix(tm), 1e-9) {
		t.Error("tree metric violates triangle inequality")
	}
}

func TestTreeMetricValidation(t *testing.T) {
	if _, err := NewTreeMetric(3, []graph.Edge{{U: 0, V: 1, W: 1}}); err == nil {
		t.Error("wrong edge count accepted")
	}
	if _, err := NewTreeMetric(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 0, V: 1, W: 2}, {U: 2, V: 3, W: 1}}); err == nil {
		t.Error("disconnected edge set accepted")
	}
	if _, err := NewTreeMetric(2, []graph.Edge{{U: 0, V: 1, W: math.Inf(1)}}); err == nil {
		t.Error("+Inf tree weight accepted")
	}
}

func TestOneTwoAlwaysMetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		var ones [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.4 {
					ones = append(ones, [2]int{u, v})
				}
			}
		}
		ot, err := NewOneTwo(n, ones)
		if err != nil {
			return false
		}
		m := Matrix(ot)
		return IsMetric(m, 1e-9) && Classify(m, 1e-9) != ClassGeneral
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOneTwoEdgesAndClassification(t *testing.T) {
	ot, err := NewOneTwo(4, [][2]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !ot.IsOne(0, 1) || ot.IsOne(0, 2) || ot.IsOne(1, 1) {
		t.Error("IsOne wrong")
	}
	if got := len(ot.OneEdges()); got != 2 {
		t.Errorf("OneEdges count = %d", got)
	}
	if Classify(Matrix(ot), 1e-9) != ClassOneTwo {
		t.Error("1-2 space misclassified")
	}
	if _, err := NewOneTwo(3, [][2]int{{0, 3}}); err == nil {
		t.Error("out-of-range 1-edge accepted")
	}
}

func TestOneInf(t *testing.T) {
	oi, err := NewOneInf(3, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if oi.Dist(0, 1) != 1 || !math.IsInf(oi.Dist(0, 2), 1) || oi.Dist(2, 2) != 0 {
		t.Error("1-inf distances wrong")
	}
	m := Matrix(oi)
	if Classify(m, 1e-9) != ClassOneInf {
		t.Errorf("1-inf misclassified as %v", Classify(m, 1e-9))
	}
	if IsMetric(m, 1e-9) {
		t.Error("1-inf host with missing edges must not be metric")
	}
}

func TestClosure(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	s := Closure(g)
	if s.Dist(0, 2) != 2 {
		t.Fatalf("closure distance = %v, want 2", s.Dist(0, 2))
	}
	if !IsMetric(Matrix(s), 1e-9) {
		t.Error("metric closure of connected graph must be metric")
	}
}

// TestStructuralClassifiers: spaces with the Classifier capability must
// answer in O(1) and, for the exactly-classifiable families (unit, {1,2},
// {1,∞}), agree with dense classification of their materialized matrix.
func TestStructuralClassifiers(t *testing.T) {
	partialOT, err := NewOneTwo(4, [][2]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	completeOT, err := NewOneTwo(3, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	partialOI, err := NewOneInf(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	completeOI, err := NewOneInf(3, [][2]int{{0, 1}, {0, 2}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		s     Space
		class Class
		isMet bool
	}{
		{"unit", Unit{N: 5}, ClassUnit, true},
		{"one-two partial", partialOT, ClassOneTwo, true},
		{"one-two complete (degenerates to unit)", completeOT, ClassUnit, true},
		{"one-inf partial", partialOI, ClassOneInf, false},
		{"one-inf complete (degenerates to unit)", completeOI, ClassUnit, true},
	}
	for _, c := range cases {
		cl, ok := c.s.(Classifier)
		if !ok {
			t.Fatalf("%s: missing Classifier capability", c.name)
		}
		if got := cl.Class(1e-9); got != c.class {
			t.Errorf("%s: structural class %v, want %v", c.name, got, c.class)
		}
		if got := cl.Metric(1e-9); got != c.isMet {
			t.Errorf("%s: structural metric %v, want %v", c.name, got, c.isMet)
		}
		// Exact families must agree with the dense validators.
		m := Matrix(c.s)
		if got := Classify(m, 1e-9); got != c.class {
			t.Errorf("%s: dense class %v disagrees with structural %v", c.name, got, c.class)
		}
		if got := IsMetric(m, 1e-9); got != c.isMet {
			t.Errorf("%s: dense metric %v disagrees with structural %v", c.name, got, c.isMet)
		}
		if ClassifySpace(c.s, 1e-9) != c.class || IsMetricSpace(c.s, 1e-9) != c.isMet {
			t.Errorf("%s: ClassifySpace/IsMetricSpace do not use the capability answer", c.name)
		}
	}
	// Point sets and tree closures answer their guaranteed class.
	pts, err := NewPoints([][]float64{{0, 0}, {3.1, 0}, {0, 4.2}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ClassifySpace(pts, 1e-9) != ClassMetric || !IsMetricSpace(pts, 1e-9) {
		t.Error("point space must classify structurally as M-GNCG")
	}
	tm, err := NewTreeMetric(3, []graph.Edge{{U: 0, V: 1, W: 1.3}, {U: 1, V: 2, W: 2.6}})
	if err != nil {
		t.Fatal(err)
	}
	if ClassifySpace(tm, 1e-9) != ClassMetric || !IsMetricSpace(tm, 1e-9) {
		t.Error("tree metric must classify structurally as M-GNCG")
	}
}

// TestClassifySpaceFallback: matrix-backed spaces carry no Classifier and
// must fall back to the dense validators, reusing their stored matrix via
// the Dense capability.
func TestClassifySpaceFallback(t *testing.T) {
	w := [][]float64{{0, 0.5, 10}, {0.5, 0, 1}, {10, 1, 0}}
	s, err := FromMatrix(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(Classifier); ok {
		t.Fatal("matrix space should not claim structural classification")
	}
	if ClassifySpace(s, 1e-9) != ClassGeneral {
		t.Error("fallback classification wrong")
	}
	if IsMetricSpace(s, 1e-9) {
		t.Error("fallback metricity wrong")
	}
	d, ok := s.(Dense)
	if !ok {
		t.Fatal("matrix space must advertise its dense matrix")
	}
	if m := d.DenseMatrix(); &m[0][0] != &w[0][0] {
		t.Error("DenseMatrix must reuse the wrapped storage, not copy")
	}
}

// TestForEachFinitePair: the sparse capability and the dense fallback must
// both enumerate exactly the finite pairs, ascending.
func TestForEachFinitePair(t *testing.T) {
	oi, err := NewOneInf(4, [][2]int{{2, 3}, {0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Space(oi).(FinitePairer); !ok {
		t.Fatal("1-inf space must advertise sparse finite-pair iteration")
	}
	collect := func(s Space) (pairs [][2]int, ws []float64) {
		ForEachFinitePair(s, func(u, v int, w float64) {
			pairs = append(pairs, [2]int{u, v})
			ws = append(ws, w)
		})
		return pairs, ws
	}
	pairs, ws := collect(oi)
	want := [][2]int{{0, 1}, {1, 2}, {2, 3}}
	if len(pairs) != len(want) {
		t.Fatalf("got %d finite pairs, want %d", len(pairs), len(want))
	}
	for i := range want {
		if pairs[i] != want[i] || ws[i] != 1 {
			t.Fatalf("pair %d = %v (w=%v), want %v (w=1)", i, pairs[i], ws[i], want[i])
		}
	}
	// Dense fallback on a matrix with +Inf entries: same enumeration.
	ms, err := FromMatrix(Matrix(oi))
	if err != nil {
		t.Fatal(err)
	}
	mpairs, mws := collect(ms)
	if len(mpairs) != len(pairs) {
		t.Fatalf("fallback found %d pairs, want %d", len(mpairs), len(pairs))
	}
	for i := range pairs {
		if mpairs[i] != pairs[i] || mws[i] != ws[i] {
			t.Fatalf("fallback pair %d = %v, want %v", i, mpairs[i], pairs[i])
		}
	}
}

func TestClassifyGeneral(t *testing.T) {
	w := [][]float64{{0, 0.5, 10}, {0.5, 0, 1}, {10, 1, 0}}
	if got := Classify(w, 1e-9); got != ClassGeneral {
		t.Errorf("Classify = %v, want GNCG", got)
	}
	if ClassGeneral.String() != "GNCG" || ClassOneTwo.String() != "1-2-GNCG" {
		t.Error("class names wrong")
	}
}
