package metric

import "fmt"

// OneTwo is a {1,2}-weighted host space (1-2–GNCG): weight 1 on the edges
// of an underlying simple graph and weight 2 everywhere else. Every such
// space satisfies the triangle inequality, making it the simplest
// non-trivial metric special case.
type OneTwo struct {
	n    int
	ones [][]bool
}

// NewOneTwo builds a {1,2} space on n points whose 1-edges are given as
// vertex pairs. Pairs must be distinct valid vertices.
func NewOneTwo(n int, oneEdges [][2]int) (*OneTwo, error) {
	ones := make([][]bool, n)
	for i := range ones {
		ones[i] = make([]bool, n)
	}
	for _, e := range oneEdges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n || u == v {
			return nil, fmt.Errorf("metric: invalid 1-edge (%d,%d) on %d points", u, v, n)
		}
		ones[u][v] = true
		ones[v][u] = true
	}
	return &OneTwo{n: n, ones: ones}, nil
}

// Size returns the number of points.
func (o *OneTwo) Size() int { return o.n }

// Dist returns 1 for 1-edges, 2 for other distinct pairs, 0 on the
// diagonal.
func (o *OneTwo) Dist(i, j int) float64 {
	switch {
	case i == j:
		return 0
	case o.ones[i][j]:
		return 1
	default:
		return 2
	}
}

// IsOne reports whether (i,j) is a 1-edge.
func (o *OneTwo) IsOne(i, j int) bool { return i != j && o.ones[i][j] }

// OneEdges returns the 1-edges with U < V.
func (o *OneTwo) OneEdges() [][2]int {
	var out [][2]int
	for i := 0; i < o.n; i++ {
		for j := i + 1; j < o.n; j++ {
			if o.ones[i][j] {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// OneInf is a {1,+Inf} host space (1-∞–GNCG): the paper's encoding of a
// general unweighted host graph, where +Inf marks edges that can never be
// bought. It is inherently non-metric whenever any pair is at +Inf.
type OneInf struct {
	n    int
	ones [][]bool
}

// NewOneInf builds a {1,∞} space on n points whose buyable (weight-1)
// edges are given as vertex pairs.
func NewOneInf(n int, oneEdges [][2]int) (*OneInf, error) {
	ot, err := NewOneTwo(n, oneEdges)
	if err != nil {
		return nil, err
	}
	return &OneInf{n: n, ones: ot.ones}, nil
}

// Size returns the number of points.
func (o *OneInf) Size() int { return o.n }

// Dist returns 1 for buyable edges and +Inf for other distinct pairs.
func (o *OneInf) Dist(i, j int) float64 {
	switch {
	case i == j:
		return 0
	case o.ones[i][j]:
		return 1
	default:
		return inf
	}
}
