package metric

import "fmt"

// OneTwo is a {1,2}-weighted host space (1-2–GNCG): weight 1 on the edges
// of an underlying simple graph and weight 2 everywhere else. Every such
// space satisfies the triangle inequality, making it the simplest
// non-trivial metric special case.
type OneTwo struct {
	n    int
	m    int // number of distinct 1-edges
	ones [][]bool
}

// NewOneTwo builds a {1,2} space on n points whose 1-edges are given as
// vertex pairs. Pairs must be distinct valid vertices.
func NewOneTwo(n int, oneEdges [][2]int) (*OneTwo, error) {
	ones := make([][]bool, n)
	for i := range ones {
		ones[i] = make([]bool, n)
	}
	m := 0
	for _, e := range oneEdges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n || u == v {
			return nil, fmt.Errorf("metric: invalid 1-edge (%d,%d) on %d points", u, v, n)
		}
		if !ones[u][v] {
			m++
		}
		ones[u][v] = true
		ones[v][u] = true
	}
	return &OneTwo{n: n, m: m, ones: ones}, nil
}

// Size returns the number of points.
func (o *OneTwo) Size() int { return o.n }

// Dist returns 1 for 1-edges, 2 for other distinct pairs, 0 on the
// diagonal.
func (o *OneTwo) Dist(i, j int) float64 {
	switch {
	case i == j:
		return 0
	case o.ones[i][j]:
		return 1
	default:
		return 2
	}
}

// Class reports the exact model class in O(1) (Classifier capability):
// ClassUnit when every pair is a 1-edge (the space degenerates to the
// NCG), ClassOneTwo otherwise.
func (o *OneTwo) Class(eps float64) Class {
	if complete(o.n, o.m) {
		return ClassUnit
	}
	return ClassOneTwo
}

// Metric reports true: {1,2} weights always satisfy the triangle
// inequality.
func (o *OneTwo) Metric(eps float64) bool { return true }

// IsOne reports whether (i,j) is a 1-edge.
func (o *OneTwo) IsOne(i, j int) bool { return i != j && o.ones[i][j] }

// OneEdges returns the 1-edges with U < V.
func (o *OneTwo) OneEdges() [][2]int {
	var out [][2]int
	for i := 0; i < o.n; i++ {
		for j := i + 1; j < o.n; j++ {
			if o.ones[i][j] {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// complete reports whether m distinct edges cover all pairs of n points.
func complete(n, m int) bool { return m == n*(n-1)/2 }

// OneInf is a {1,+Inf} host space (1-∞–GNCG): the paper's encoding of a
// general unweighted host graph, where +Inf marks edges that can never be
// bought. It is inherently non-metric whenever any pair is at +Inf.
type OneInf struct {
	n    int
	m    int // number of distinct buyable (weight-1) edges
	ones [][]bool
}

// NewOneInf builds a {1,∞} space on n points whose buyable (weight-1)
// edges are given as vertex pairs.
func NewOneInf(n int, oneEdges [][2]int) (*OneInf, error) {
	ot, err := NewOneTwo(n, oneEdges)
	if err != nil {
		return nil, err
	}
	return &OneInf{n: n, m: ot.m, ones: ot.ones}, nil
}

// Size returns the number of points.
func (o *OneInf) Size() int { return o.n }

// Dist returns 1 for buyable edges and +Inf for other distinct pairs.
func (o *OneInf) Dist(i, j int) float64 {
	switch {
	case i == j:
		return 0
	case o.ones[i][j]:
		return 1
	default:
		return inf
	}
}

// Class reports the exact model class in O(1) (Classifier capability):
// ClassUnit when every pair is buyable (no +Inf entries remain),
// ClassOneInf otherwise.
func (o *OneInf) Class(eps float64) Class {
	if complete(o.n, o.m) {
		return ClassUnit
	}
	return ClassOneInf
}

// Metric reports whether the space is metric: true only when no pair is
// at +Inf (a metric host must be finite).
func (o *OneInf) Metric(eps float64) bool { return complete(o.n, o.m) }

// ForEachFinitePair enumerates the buyable pairs in ascending (u,v) order
// (FinitePairer capability): O(n²) scan over the adjacency rows but only
// O(m) callbacks, and downstream consumers never observe +Inf entries.
func (o *OneInf) ForEachFinitePair(fn func(u, v int, w float64)) {
	for u := 0; u < o.n; u++ {
		row := o.ones[u]
		for v := u + 1; v < o.n; v++ {
			if row[v] {
				fn(u, v, 1)
			}
		}
	}
}
