package metric

import (
	"fmt"
	"math"
	"sync"

	"gncg/internal/geom"
)

// Points is a finite point set in R^d whose pairwise distances are taken
// under a p-norm: the host space of the Rd–GNCG. P may be any value >= 1,
// or math.Inf(1) for the max norm.
//
// Points carries a lazily-built kd-tree behind its CandidateSource
// capability; once any neighborhood query has run, Coords must not be
// mutated (they never could be without changing the space anyway).
// Points must not be copied by value after first use.
type Points struct {
	Coords [][]float64
	P      float64

	kdOnce sync.Once
	kd     *geom.KDTree
}

// NewPoints validates and wraps a coordinate list. All points must share
// the same dimension and p must be >= 1 (or +Inf).
func NewPoints(coords [][]float64, p float64) (*Points, error) {
	if p < 1 && !math.IsInf(p, 1) {
		return nil, fmt.Errorf("metric: p-norm requires p >= 1, got %v", p)
	}
	if len(coords) == 0 {
		return &Points{Coords: coords, P: p}, nil
	}
	d := len(coords[0])
	for i, c := range coords {
		if len(c) != d {
			return nil, fmt.Errorf("metric: point %d has dimension %d, want %d", i, len(c), d)
		}
	}
	return &Points{Coords: coords, P: p}, nil
}

// Size returns the number of points.
func (ps *Points) Size() int { return len(ps.Coords) }

// Dim returns the dimension of the ambient space (0 for an empty set).
func (ps *Points) Dim() int {
	if len(ps.Coords) == 0 {
		return 0
	}
	return len(ps.Coords[0])
}

// Dist returns the p-norm distance between points i and j.
func (ps *Points) Dist(i, j int) float64 {
	return PNormDist(ps.Coords[i], ps.Coords[j], ps.P)
}

// Class reports ClassMetric: every p-norm (p >= 1) induces a metric
// (Classifier capability). This is the class guaranteed by construction; a
// degenerate point set may incidentally realize a smaller class (e.g. all
// pairs at distance exactly 1), which only dense classification detects.
func (ps *Points) Class(eps float64) Class { return ClassMetric }

// Metric reports true: p-norm distances satisfy the triangle inequality
// for every p >= 1 (and p = +Inf).
func (ps *Points) Metric(eps float64) bool { return true }

// AppendWithin appends the index of every point v with Dist(u,v) <= r —
// u itself included — in ascending index order (CandidateSource
// capability). The backing kd-tree is built on first use, in O(n log²n),
// and shared by all subsequent queries; the query itself is
// output-sensitive. The result is bit-equal to a brute-force scan of
// Dist: the tree's box pruning only ever over-includes, and every
// surviving point passes an exact PNormDist check.
func (ps *Points) AppendWithin(u int, r float64, buf []int) []int {
	ps.kdOnce.Do(func() { ps.kd = geom.NewKDTree(ps.Coords, ps.P) })
	return ps.kd.AppendWithin(ps.Coords[u], r, buf)
}

// NearestOtherDist returns min over v != u of Dist(u, v), exactly: a
// kd 2-nearest query from u's own coordinate returns u plus its closest
// other point (ties broken by index, so a duplicate coordinate yields
// distance 0), and the reported value is the same PNormDist evaluation
// Dist performs. +Inf for a one-point space (CandidateSource
// capability).
func (ps *Points) NearestOtherDist(u int) float64 {
	ps.kdOnce.Do(func() { ps.kd = geom.NewKDTree(ps.Coords, ps.P) })
	best := math.Inf(1)
	for _, v := range ps.kd.KNearest(ps.Coords[u], 2) {
		if v == u {
			continue
		}
		if d := PNormDist(ps.Coords[u], ps.Coords[v], ps.P); d < best {
			best = d
		}
	}
	return best
}

// PNormDist returns ||a-b||_p for p >= 1 or p = +Inf.
func PNormDist(a, b []float64, p float64) float64 {
	if len(a) != len(b) {
		panic("metric: dimension mismatch")
	}
	switch {
	case math.IsInf(p, 1):
		maxd := 0.0
		for i := range a {
			if d := math.Abs(a[i] - b[i]); d > maxd {
				maxd = d
			}
		}
		return maxd
	case p == 1:
		s := 0.0
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		return s
	case p == 2:
		s := 0.0
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	default:
		s := 0.0
		for i := range a {
			s += math.Pow(math.Abs(a[i]-b[i]), p)
		}
		return math.Pow(s, 1/p)
	}
}
