package metric

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"gncg/internal/geom"
	"gncg/internal/graph"
)

// TreeMetric is the metric closure of an edge-weighted tree: the host
// space of the T–GNCG. Distance queries run in O(log n) via binary-lifting
// LCA after an O(n log n) preprocessing pass. A lazily-built adjacency
// index answers neighborhood queries by truncated traversal
// (CandidateSource capability); TreeMetric must not be copied by value
// after first use.
type TreeMetric struct {
	n      int
	edges  []graph.Edge
	parent [][]int // parent[k][v] = 2^k-th ancestor of v (-1 above root)
	depth  []int
	dist   []float64 // weighted distance from root

	idxOnce sync.Once
	index   *geom.TreeIndex
}

// NewTreeMetric builds the metric defined by the given tree. The edge list
// must form a spanning tree on n vertices (n-1 edges, connected) with
// non-negative weights.
func NewTreeMetric(n int, edges []graph.Edge) (*TreeMetric, error) {
	if len(edges) != n-1 {
		return nil, fmt.Errorf("metric: tree on %d vertices needs %d edges, got %d", n, n-1, len(edges))
	}
	g := graph.New(n)
	for _, e := range edges {
		if e.W < 0 || math.IsInf(e.W, 1) || math.IsNaN(e.W) {
			return nil, fmt.Errorf("metric: invalid tree edge weight %v", e.W)
		}
		g.AddEdge(e.U, e.V, e.W)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("metric: tree edges do not connect %d vertices", n)
	}
	tm := &TreeMetric{
		n:     n,
		edges: append([]graph.Edge(nil), edges...),
		depth: make([]int, n),
		dist:  make([]float64, n),
	}
	levels := 1
	for 1<<levels < n {
		levels++
	}
	tm.parent = make([][]int, levels)
	for k := range tm.parent {
		tm.parent[k] = make([]int, n)
		for v := range tm.parent[k] {
			tm.parent[k][v] = -1
		}
	}
	// Iterative DFS from root 0 computing depth, root distance, parents.
	type frame struct{ v, from int }
	stack := []frame{{0, -1}}
	seen := make([]bool, n)
	seen[0] = true
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g.Neighbors(f.v, func(to int, w float64) {
			if seen[to] {
				return
			}
			seen[to] = true
			tm.parent[0][to] = f.v
			tm.depth[to] = tm.depth[f.v] + 1
			tm.dist[to] = tm.dist[f.v] + w
			stack = append(stack, frame{to, f.v})
		})
	}
	for k := 1; k < levels; k++ {
		for v := 0; v < n; v++ {
			if p := tm.parent[k-1][v]; p >= 0 {
				tm.parent[k][v] = tm.parent[k-1][p]
			}
		}
	}
	return tm, nil
}

// Size returns the number of vertices.
func (tm *TreeMetric) Size() int { return tm.n }

// Edges returns the defining tree's edges; by Corollary 3 of the paper
// this tree is both the social optimum and a Nash equilibrium of the
// T–GNCG played on this metric.
func (tm *TreeMetric) Edges() []graph.Edge {
	return append([]graph.Edge(nil), tm.edges...)
}

// Class reports ClassMetric: shortest-path closures of non-negative trees
// are metrics (Classifier capability). This is the class guaranteed by
// construction; a degenerate tree (e.g. a unit-weight star, whose closure
// is a {1,2} metric) may incidentally realize a smaller class, which only
// dense classification detects.
func (tm *TreeMetric) Class(eps float64) Class { return ClassMetric }

// Metric reports true: tree closures satisfy the triangle inequality.
func (tm *TreeMetric) Metric(eps float64) bool { return true }

// Dist returns the weighted tree distance between i and j.
func (tm *TreeMetric) Dist(i, j int) float64 {
	if i == j {
		return 0
	}
	l := tm.lca(i, j)
	return tm.dist[i] + tm.dist[j] - 2*tm.dist[l]
}

// AppendWithin appends the index of every vertex v with Dist(u,v) <= r —
// u itself included — in ascending index order (CandidateSource
// capability). The adjacency index, built on first use, walks the tree
// outward from u and stops descending once the accumulated path distance
// exceeds a margin-slackened r (path distances only grow along a tree
// walk, so truncation is sound); each visited vertex is then re-checked
// against the LCA-label Dist, making the result bit-equal to a
// brute-force scan of Dist.
func (tm *TreeMetric) AppendWithin(u int, r float64, buf []int) []int {
	tm.idxOnce.Do(func() { tm.index = geom.NewTreeIndex(tm.n, tm.edges) })
	first := len(buf)
	tm.index.ForEachWithin(u, r, func(v int, _ float64) {
		if tm.Dist(u, v) <= r {
			buf = append(buf, v)
		}
	})
	sort.Ints(buf[first:])
	return buf
}

// NearestOtherDist returns the Dist to u's nearest other vertex (+Inf
// for a one-vertex tree): in a non-negatively weighted tree every path
// leaves u through an incident edge whose weight already bounds it
// below, so the nearest vertex is a tree neighbor and an O(deg) scan of
// the adjacency index answers the query. Each neighbor is measured with
// the same LCA-label Dist the membership checks use; the handful of
// ulps by which that evaluation can drift from the edge weight stays
// within the caller's certified slack (CandidateSource capability).
func (tm *TreeMetric) NearestOtherDist(u int) float64 {
	tm.idxOnce.Do(func() { tm.index = geom.NewTreeIndex(tm.n, tm.edges) })
	best := math.Inf(1)
	tm.index.ForEachNeighbor(u, func(v int, _ float64) {
		if d := tm.Dist(u, v); d < best {
			best = d
		}
	})
	return best
}

func (tm *TreeMetric) lca(u, v int) int {
	if tm.depth[u] < tm.depth[v] {
		u, v = v, u
	}
	diff := tm.depth[u] - tm.depth[v]
	for k := 0; diff != 0; k++ {
		if diff&1 != 0 {
			u = tm.parent[k][u]
		}
		diff >>= 1
	}
	if u == v {
		return u
	}
	for k := len(tm.parent) - 1; k >= 0; k-- {
		if tm.parent[k][u] != tm.parent[k][v] {
			u = tm.parent[k][u]
			v = tm.parent[k][v]
		}
	}
	return tm.parent[0][u]
}
