package metric

import (
	"math"
	"math/rand"
	"testing"

	"gncg/internal/graph"
)

// bruteSpaceWithin is the CandidateSource contract's reference: every
// index v with Dist(u,v) <= r, ascending.
func bruteSpaceWithin(s Space, u int, r float64) []int {
	var out []int
	for v := 0; v < s.Size(); v++ {
		if s.Dist(u, v) <= r {
			out = append(out, v)
		}
	}
	return out
}

func sameInts(t *testing.T, got, want []int, format string, args ...any) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf(format+": got %v, want %v", append(args, got, want)...)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf(format+": got %v, want %v", append(args, got, want)...)
		}
	}
}

// TestPointsAppendWithinMatchesBruteForce pins the Points kd-tree
// CandidateSource against a brute-force Dist scan, for each supported
// norm, with duplicate points and radii landing exactly on distances.
func TestPointsAppendWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, p := range []float64{1, 2, math.Inf(1)} {
		for _, n := range []int{1, 9, 80} {
			coords := make([][]float64, n)
			for i := range coords {
				if i > 2 && rng.Intn(5) == 0 {
					coords[i] = append([]float64(nil), coords[rng.Intn(i)]...)
					continue
				}
				coords[i] = []float64{rng.Float64() * 40, rng.Float64() * 40}
			}
			ps, err := NewPoints(coords, p)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 25; trial++ {
				u := rng.Intn(n)
				var r float64
				switch trial % 3 {
				case 0:
					r = ps.Dist(u, rng.Intn(n))
				case 1:
					r = 0
				case 2:
					r = rng.Float64() * 30
				}
				got := ps.AppendWithin(u, r, nil)
				sameInts(t, got, bruteSpaceWithin(ps, u, r), "p=%v n=%d u=%d r=%v", p, n, u, r)
			}
		}
	}
}

// TestTreeAppendWithinMatchesBruteForce pins the TreeMetric truncated
// traversal against a brute-force Dist scan, on trees with zero-weight
// edges (whole subtrees tied at equal distance) and radii landing
// exactly on LCA-label distances.
func TestTreeAppendWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, n := range []int{1, 2, 12, 75, 160} {
		edges := make([]graph.Edge, 0, n-1)
		for v := 1; v < n; v++ {
			w := rng.Float64() * 4
			if rng.Intn(4) == 0 {
				w = 0
			}
			edges = append(edges, graph.Edge{U: rng.Intn(v), V: v, W: w})
		}
		tm, err := NewTreeMetric(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 25; trial++ {
			u := rng.Intn(n)
			var r float64
			switch trial % 3 {
			case 0:
				r = tm.Dist(u, rng.Intn(n)) // exactly on a label distance
			case 1:
				r = 0
			case 2:
				r = rng.Float64() * 12
			}
			got := tm.AppendWithin(u, r, nil)
			sameInts(t, got, bruteSpaceWithin(tm, u, r), "n=%d u=%d r=%v", n, u, r)
		}
	}
}

// TestTreeLCADistMatchesNaive pins the binary-lifting LCA labels
// against a naive parent-walk LCA evaluating the same closed form
// dist[u] + dist[v] - 2*dist[lca] — bit-equality, not approximation.
func TestTreeLCADistMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{2, 17, 90} {
		edges := make([]graph.Edge, 0, n-1)
		for v := 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: rng.Intn(v), V: v, W: rng.Float64() * 3})
		}
		tm, err := NewTreeMetric(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild parent/depth/root-distance naively from the edge list.
		adj := make([][]graph.Edge, n)
		for _, e := range edges {
			adj[e.U] = append(adj[e.U], e)
			adj[e.V] = append(adj[e.V], graph.Edge{U: e.V, V: e.U, W: e.W})
		}
		parent := make([]int, n)
		depth := make([]int, n)
		rootDist := make([]float64, n)
		parent[0] = -1
		seen := make([]bool, n)
		seen[0] = true
		stack := []int{0}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range adj[v] {
				if !seen[e.V] {
					seen[e.V] = true
					parent[e.V] = v
					depth[e.V] = depth[v] + 1
					rootDist[e.V] = rootDist[v] + e.W
					stack = append(stack, e.V)
				}
			}
		}
		naiveLCA := func(u, v int) int {
			for depth[u] > depth[v] {
				u = parent[u]
			}
			for depth[v] > depth[u] {
				v = parent[v]
			}
			for u != v {
				u, v = parent[u], parent[v]
			}
			return u
		}
		for trial := 0; trial < 60; trial++ {
			u, v := rng.Intn(n), rng.Intn(n)
			var want float64
			if u != v {
				l := naiveLCA(u, v)
				want = rootDist[u] + rootDist[v] - 2*rootDist[l]
			}
			if got := tm.Dist(u, v); got != want {
				t.Fatalf("n=%d Dist(%d,%d) = %v, naive %v", n, u, v, got, want)
			}
		}
	}
}
