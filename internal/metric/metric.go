// Package metric models the host-graph classes of the paper (Fig. 1):
// arbitrary non-negative weights (GNCG), metric weights (M–GNCG), tree
// metrics (T–GNCG), {1,2} weights (1-2–GNCG), points in R^d under p-norms
// (Rd–GNCG), {1,∞} weights (1-∞–GNCG) and unit weights (the original NCG).
//
// A Space yields the weight of the complete host graph's edge (i,j). The
// game engine consumes spaces directly and lazily — distances are computed
// on demand, so implicit spaces (points under a p-norm, tree metrics, unit
// and {1,2}/{1,∞} hosts) never materialize their O(n²) matrix unless a
// caller explicitly asks for a dense view via Matrix.
//
// Spaces can advertise optional capabilities the engine queries instead of
// scanning a dense matrix:
//
//   - Classifier: the space knows its Fig. 1 class and metricity
//     structurally, in O(1) (points, trees, unit, {1,2}, {1,∞}).
//   - FinitePairer: the space enumerates its finite (buyable) pairs
//     without touching +Inf entries ({1,∞} hosts).
//   - Dense: the space already holds a dense matrix, so densification can
//     reuse it instead of copying (matrix-backed spaces).
//
// ClassifySpace and IsMetricSpace consult these capabilities and fall back
// to the dense validators (Classify, IsMetric) otherwise.
package metric

import (
	"fmt"
	"math"

	"gncg/internal/graph"
)

var inf = math.Inf(1)

// Space is a finite (pseudo-)metric-like space: a symmetric non-negative
// pairwise weight function over points {0,...,Size()-1} with zero
// diagonal. Triangle inequality is NOT implied; see IsMetric.
type Space interface {
	Size() int
	Dist(i, j int) float64
}

// Classifier is the structural-classification capability: a space that
// knows its position in the paper's Fig. 1 hierarchy by construction, in
// O(1), without inspecting pairwise distances.
//
// Class returns the most specific class guaranteed by the space's
// structure. A realized instance may incidentally lie in an even smaller
// class — e.g. a unit-weight star's tree metric happens to be a {1,2}
// metric — which only dense inspection (Classify on a matrix) detects;
// structural answers are exact for unit, {1,2} and {1,∞} spaces and
// top out at ClassMetric for point and tree spaces.
type Classifier interface {
	Class(eps float64) Class
	// Metric reports whether the space satisfies the triangle inequality.
	Metric(eps float64) bool
}

// FinitePairer is the sparse-iteration capability: a space whose finite
// pairs form a strict (typically sparse) subset of all pairs, such as a
// {1,∞} host. ForEachFinitePair calls fn exactly once for every unordered
// pair u < v with finite weight, in ascending (u,v) order — the order is
// part of the contract so downstream consumers (MST, candidate sets) stay
// deterministic.
type FinitePairer interface {
	ForEachFinitePair(fn func(u, v int, w float64))
}

// Dense is the pre-materialized capability: a space that already holds its
// dense symmetric matrix. Densification reuses the returned matrix rather
// than copying it, so callers must treat it as immutable.
type Dense interface {
	DenseMatrix() [][]float64
}

// ClassifySpace returns the space's model class, using the Classifier
// capability in O(1) when present and falling back to materializing the
// matrix and running the dense validator (O(n²) space, O(n³) time)
// otherwise.
func ClassifySpace(s Space, eps float64) Class {
	if c, ok := s.(Classifier); ok {
		return c.Class(eps)
	}
	return Classify(denseOf(s), eps)
}

// IsMetricSpace reports whether the space satisfies the triangle
// inequality, using the Classifier capability in O(1) when present and the
// dense validator otherwise.
func IsMetricSpace(s Space, eps float64) bool {
	if c, ok := s.(Classifier); ok {
		return c.Metric(eps)
	}
	return IsMetric(denseOf(s), eps)
}

// ForEachFinitePair calls fn for every unordered pair u < v with finite
// weight, in ascending (u,v) order. Spaces with the FinitePairer
// capability enumerate only their finite pairs; otherwise every pair is
// visited and +Inf entries are skipped — O(n²) time but no allocation.
func ForEachFinitePair(s Space, fn func(u, v int, w float64)) {
	if fp, ok := s.(FinitePairer); ok {
		fp.ForEachFinitePair(fn)
		return
	}
	n := s.Size()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if w := s.Dist(u, v); !math.IsInf(w, 1) {
				fn(u, v, w)
			}
		}
	}
}

// denseOf returns the space's dense matrix, reusing pre-materialized
// storage when the space advertises it.
func denseOf(s Space) [][]float64 {
	if d, ok := s.(Dense); ok {
		return d.DenseMatrix()
	}
	return Matrix(s)
}

// Matrix materializes a space as a dense symmetric matrix: O(n²) memory
// and construction time. Engine code no longer requires dense hosts;
// this remains for validators, interchange and explicit densification.
func Matrix(s Space) [][]float64 {
	n := s.Size()
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := s.Dist(i, j)
			w[i][j] = d
			w[j][i] = d
		}
	}
	return w
}

// matrixSpace adapts an explicit matrix to the Space interface.
type matrixSpace struct{ w [][]float64 }

// FromMatrix wraps an explicit symmetric weight matrix as a Space. It
// validates shape, symmetry, zero diagonal and non-negativity.
func FromMatrix(w [][]float64) (Space, error) {
	n := len(w)
	for i := range w {
		if len(w[i]) != n {
			return nil, fmt.Errorf("metric: row %d has length %d, want %d", i, len(w[i]), n)
		}
		if w[i][i] != 0 {
			return nil, fmt.Errorf("metric: nonzero diagonal at %d: %v", i, w[i][i])
		}
		for j := range w[i] {
			if w[i][j] < 0 || math.IsNaN(w[i][j]) {
				return nil, fmt.Errorf("metric: invalid weight w(%d,%d)=%v", i, j, w[i][j])
			}
			if w[i][j] != w[j][i] {
				return nil, fmt.Errorf("metric: asymmetric weights w(%d,%d)=%v w(%d,%d)=%v", i, j, w[i][j], j, i, w[j][i])
			}
		}
	}
	return matrixSpace{w}, nil
}

func (m matrixSpace) Size() int             { return len(m.w) }
func (m matrixSpace) Dist(i, j int) float64 { return m.w[i][j] }

// DenseMatrix exposes the wrapped matrix (Dense capability); callers must
// not mutate it.
func (m matrixSpace) DenseMatrix() [][]float64 { return m.w }

// Unit is the unit-weight space on n points: the host graph of the
// original Network Creation Game of Fabrikant et al.
type Unit struct{ N int }

func (u Unit) Size() int { return u.N }

// Dist returns 1 for distinct points and 0 on the diagonal.
func (u Unit) Dist(i, j int) float64 {
	if i == j {
		return 0
	}
	return 1
}

// Class reports ClassUnit: the original NCG (Classifier capability).
func (u Unit) Class(eps float64) Class { return ClassUnit }

// Metric reports true: unit weights always satisfy the triangle
// inequality.
func (u Unit) Metric(eps float64) bool { return true }

// Closure returns the metric closure of a connected weighted graph: the
// space whose distance is the shortest-path distance in g. If g is
// disconnected, unreachable pairs get +Inf (a legal GNCG host where those
// edges can never be bought, i.e. a 1-∞-style host).
func Closure(g *graph.Graph) Space {
	return matrixSpace{g.APSP()}
}

// IsMetric reports whether the matrix satisfies the triangle inequality
// within tolerance eps: w[i][j] <= w[i][k] + w[k][j] + eps for all i,j,k.
// Entries of +Inf are treated as absent connections and violate metricity
// unless the whole row/column is +Inf-free. (A metric host must be finite.)
func IsMetric(w [][]float64, eps float64) bool {
	n := len(w)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && math.IsInf(w[i][j], 1) {
				return false
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			wik := w[i][k]
			for j := 0; j < n; j++ {
				if w[i][j] > wik+w[k][j]+eps {
					return false
				}
			}
		}
	}
	return true
}

// Class identifies where a host matrix sits in the paper's model
// hierarchy (Fig. 1).
type Class int

const (
	// ClassGeneral is an arbitrary non-negative weighted host (GNCG).
	ClassGeneral Class = iota
	// ClassOneInf has all weights in {1, +Inf} (1-∞–GNCG).
	ClassOneInf
	// ClassMetric satisfies the triangle inequality (M–GNCG).
	ClassMetric
	// ClassOneTwo has all weights in {1,2} (1-2–GNCG, always metric).
	ClassOneTwo
	// ClassUnit has all weights equal to 1 (the original NCG).
	ClassUnit
)

// String names the class as in the paper.
func (c Class) String() string {
	switch c {
	case ClassGeneral:
		return "GNCG"
	case ClassOneInf:
		return "1-inf-GNCG"
	case ClassMetric:
		return "M-GNCG"
	case ClassOneTwo:
		return "1-2-GNCG"
	case ClassUnit:
		return "NCG"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classify returns the most specific class of the matrix within tolerance
// eps. Tree metrics and R^d point metrics are not re-derivable from a
// matrix alone (recognizing them is a separate problem), so Classify tops
// out at ClassOneTwo/ClassUnit/ClassMetric/ClassOneInf/ClassGeneral.
func Classify(w [][]float64, eps float64) Class {
	n := len(w)
	allOne, allOneTwo, allOneInf := true, true, true
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := w[i][j]
			if math.Abs(v-1) > eps {
				allOne = false
			}
			if math.Abs(v-1) > eps && math.Abs(v-2) > eps {
				allOneTwo = false
			}
			if math.Abs(v-1) > eps && !math.IsInf(v, 1) {
				allOneInf = false
			}
		}
	}
	switch {
	case allOne:
		return ClassUnit
	case allOneTwo:
		return ClassOneTwo
	case IsMetric(w, eps):
		return ClassMetric
	case allOneInf:
		return ClassOneInf
	default:
		return ClassGeneral
	}
}
