package metric

// CandidateSource is the geometric-neighborhood capability: a space that
// can enumerate every point within a given distance of a point without a
// linear scan over all pairs. It is what lets the game engine's
// best-response scan visit only the candidates its gain bounds cannot
// already rule out (game.BestSingleMove queries the capability through
// the host), turning the O(n) candidate sweep into an output-sensitive
// one on point and tree hosts.
//
// The contract is exact, not approximate: AppendWithin must append the
// index of every point v with Dist(u,v) <= r — u itself included, at
// distance 0 — in ascending index order, and nothing else; the result is
// bit-equal to a brute-force scan of Dist against the same threshold.
// Implementations whose internal pruning is subject to float rounding
// must slacken the pruning, never the membership check. Sources must be
// safe for concurrent queries (the engine verifies equilibria from
// worker-sharded clones of one state over one shared space).
type CandidateSource interface {
	AppendWithin(u int, r float64, buf []int) []int

	// NearestOtherDist returns the distance from u to its nearest other
	// point (+Inf when the space has only one point). The engine uses it
	// as a floor on the cheapest acquisition price an agent could pay,
	// which strengthens the excess certificate: a sublinear query (kd
	// k-nearest on point spaces, a min-incident-edge lookup on trees)
	// instead of a linear sweep. The value must never undercut-proof the
	// certificate: it may exceed min over v != u of Dist(u, v) only by
	// float-rounding slop of the same order as Dist's own evaluation
	// noise (the engine's certified slack absorbs that); duplicate
	// points legitimately return 0.
	NearestOtherDist(u int) float64
}
