package sweep

// Grid is a parameter grid: the cross product of its non-empty dimensions
// expands into cells. An entirely empty grid expands into exactly one
// cell with no set dimensions (the "scalar experiment" case).
type Grid struct {
	Alphas []float64 // edge-price parameter values
	Ns     []int     // instance sizes (node counts, dimensions, ladder steps)
	Hosts  []string  // host-graph class selectors
	Norms  []float64 // p-norm selectors for geometric hosts
	Seeds  []int64   // per-cell deterministic RNG seeds
}

// Seq returns [0, n) as int64 seeds: the common "n independent trials"
// seed dimension.
func Seq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// Cells expands the grid in a fixed dimension order — hosts, norms,
// alphas, ns, seeds, outermost first — assigning each cell its index in
// that enumeration. The order is part of the sharding contract: cell
// identity and shard assignment must not depend on execution context.
func (g Grid) Cells() []Params {
	type dim struct {
		bit uint8
		len int
		set func(p *Params, i int)
	}
	one := func(n int) int {
		if n == 0 {
			return 1
		}
		return n
	}
	dims := []dim{
		{DimHost, len(g.Hosts), func(p *Params, i int) { p.Host = g.Hosts[i] }},
		{DimNorm, len(g.Norms), func(p *Params, i int) { p.Norm = g.Norms[i] }},
		{DimAlpha, len(g.Alphas), func(p *Params, i int) { p.Alpha = g.Alphas[i] }},
		{DimN, len(g.Ns), func(p *Params, i int) { p.N = g.Ns[i] }},
		{DimSeed, len(g.Seeds), func(p *Params, i int) { p.Seed = g.Seeds[i] }},
	}
	total := 1
	for _, d := range dims {
		total *= one(d.len)
	}
	cells := make([]Params, 0, total)
	idx := make([]int, len(dims))
	for c := 0; c < total; c++ {
		p := Params{Index: c}
		for di, d := range dims {
			if d.len > 0 {
				p.Dims |= d.bit
				d.set(&p, idx[di])
			}
		}
		cells = append(cells, p)
		for di := len(dims) - 1; di >= 0; di-- {
			idx[di]++
			if idx[di] < one(dims[di].len) {
				break
			}
			idx[di] = 0
		}
	}
	return cells
}
