package sweep

import (
	"fmt"
	"io"

	"gncg/internal/report"
)

// RenderText renders the result set as aligned text tables, one table
// per experiment (cells grouped in sequence order). Columns are the
// cell's axis values followed by the record fields, taken from the
// first record of the group; ragged records render their extra fields
// unaligned rather than being dropped.
func RenderText(w io.Writer, rs *ResultSet) {
	for start := 0; start < len(rs.Cells); {
		end := start
		for end < len(rs.Cells) && rs.Cells[end].Experiment == rs.Cells[start].Experiment {
			end++
		}
		group := rs.Cells[start:end]
		renderGroup(w, group)
		if note := group[0].Note; note != "" {
			fmt.Fprintf(w, "note: %s\n", note)
		}
		start = end
	}
}

func renderGroup(w io.Writer, group []CellResult) {
	title := group[0].Title
	if title == "" {
		title = group[0].Experiment
	}
	fmt.Fprintf(w, "\n######## %s — %s ########\n", group[0].Experiment, title)
	var header []string
	var paramKeys []AxisValue
	for _, c := range group {
		if len(c.Records) == 0 {
			continue
		}
		paramKeys = c.Cell.Values
		for _, kv := range paramKeys {
			header = append(header, kv.Axis)
		}
		for _, f := range c.Records[0].Fields {
			header = append(header, f.Key)
		}
		break
	}
	if header == nil {
		// Nothing but empty or failed cells: report errors and bail.
		for _, c := range group {
			if c.Err != "" {
				fmt.Fprintf(w, "cell %d FAILED: %s\n", c.Cell.Index, c.Err)
			} else {
				fmt.Fprintf(w, "cell %d: no records\n", c.Cell.Index)
			}
		}
		return
	}
	t := report.NewTable("", header...)
	nparams := len(paramKeys)
	for _, c := range group {
		if c.Err != "" {
			fmt.Fprintf(w, "cell %d FAILED: %s\n", c.Cell.Index, c.Err)
			continue
		}
		params := c.Cell.Values
		for _, r := range c.Records {
			row := make([]any, 0, nparams+len(r.Fields))
			for _, kv := range params {
				row = append(row, kv.Value)
			}
			for _, f := range r.Fields {
				row = append(row, f.Value)
			}
			t.AddRow(row...)
		}
	}
	t.Render(w)
}
