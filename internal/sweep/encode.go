package sweep

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"gncg/internal/report"
)

// EncodeJSON writes the result set as deterministic JSON: cell order is
// the global sequence order, object keys follow declaration order, and
// every value is rendered by report.JSONValue. Two runs over the same
// cells produce byte-identical output regardless of worker count or
// shard partitioning (after Merge).
func (rs *ResultSet) EncodeJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\n  \"cells\": [")
	for ci, c := range rs.Cells {
		if ci > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n    ")
		encodeCell(bw, c)
	}
	bw.WriteString("\n  ]\n}\n")
	return bw.Flush()
}

// encodeCell writes one cell as the canonical single-line JSON object
// EncodeJSON embeds — the byte representation the determinism contract
// pins, shared by whole-set encoding and the per-cell journal format.
func encodeCell(bw *bufio.Writer, c CellResult) {
	bw.WriteByte('{')
	fmt.Fprintf(bw, "\"seq\": %d, \"experiment\": %s, \"cell\": %d",
		c.Seq, report.JSONValue(c.Experiment), c.Cell.Index)
	if len(c.Cell.Values) > 0 {
		bw.WriteString(", \"params\": {")
		for pi, kv := range c.Cell.Values {
			if pi > 0 {
				bw.WriteString(", ")
			}
			fmt.Fprintf(bw, "%s: %s", report.JSONValue(kv.Axis), report.JSONValue(kv.Value))
		}
		bw.WriteByte('}')
	}
	if c.Err != "" {
		fmt.Fprintf(bw, ", \"err\": %s", report.JSONValue(c.Err))
	}
	bw.WriteString(", \"records\": [")
	for ri, r := range c.Records {
		if ri > 0 {
			bw.WriteString(", ")
		}
		bw.WriteByte('{')
		for fi, f := range r.Fields {
			if fi > 0 {
				bw.WriteString(", ")
			}
			fmt.Fprintf(bw, "%s: %s", report.JSONValue(f.Key), report.JSONValue(f.Value))
		}
		bw.WriteByte('}')
	}
	bw.WriteString("]}")
}

// CellJSON renders one cell result as its canonical single-line JSON
// object: exactly the bytes EncodeJSON would embed for the cell. It is
// the interchange unit of the work-stealing workflow — workers report
// cells in this form, the job store journals them verbatim — so the
// assembled output of any crash/resume interleaving stays byte-identical
// to an unsharded run.
func CellJSON(c CellResult) []byte {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	encodeCell(bw, c)
	bw.Flush()
	return buf.Bytes()
}

// EncodeCSV writes the result set in long format — one row per record
// field — which keeps heterogeneous experiments in a single rectangular
// schema: seq, experiment, cell, record, key, value.
func (rs *ResultSet) EncodeCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seq", "experiment", "cell", "record", "key", "value"}); err != nil {
		return err
	}
	for _, c := range rs.Cells {
		for ri, r := range c.Records {
			for _, f := range r.Fields {
				row := []string{
					strconv.Itoa(c.Seq), c.Experiment, strconv.Itoa(c.Cell.Index),
					strconv.Itoa(ri), f.Key, report.Precise(f.Value),
				}
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WideCSV is one experiment's wide-format table, ready to encode.
type WideCSV struct {
	Experiment string
	Table      *report.WideTable
}

// WideTables builds one wide-format CSV table per experiment present in
// the set, in first-appearance (sequence) order: the leading columns are
// the experiment's axis names, the remaining columns its declared Schema
// — or, when none is attached (e.g. a decoded set without AttachMeta),
// the record keys in first-appearance order across the experiment's
// records. One row per record, so single-record cells contribute exactly
// one row per cell. Record keys outside the schema are dropped; keys a
// record lacks leave empty cells; failed cells carry no records and
// contribute no rows.
func (rs *ResultSet) WideTables() []WideCSV {
	var order []string
	group := map[string][]CellResult{}
	for _, c := range rs.Cells {
		if _, ok := group[c.Experiment]; !ok {
			order = append(order, c.Experiment)
		}
		group[c.Experiment] = append(group[c.Experiment], c)
	}
	out := make([]WideCSV, 0, len(order))
	for _, name := range order {
		cells := group[name]
		var axes []string
		var schema []string
		for _, c := range cells {
			if axes == nil {
				axes = c.Cell.axisNames()
			}
			if schema == nil && len(c.Schema) > 0 {
				schema = c.Schema
			}
		}
		if schema == nil {
			seen := map[string]bool{}
			for _, c := range cells {
				for _, r := range c.Records {
					for _, f := range r.Fields {
						if !seen[f.Key] {
							seen[f.Key] = true
							schema = append(schema, f.Key)
						}
					}
				}
			}
		}
		t := &report.WideTable{Header: append(append([]string{}, axes...), schema...)}
		for _, c := range cells {
			for _, r := range c.Records {
				row := make([]any, 0, len(t.Header))
				for _, kv := range c.Cell.Values {
					row = append(row, kv.Value)
				}
				for _, key := range schema {
					if v, ok := r.Get(key); ok {
						row = append(row, v)
					} else {
						row = append(row, "")
					}
				}
				t.Rows = append(t.Rows, row)
			}
		}
		out = append(out, WideCSV{Experiment: name, Table: t})
	}
	return out
}
