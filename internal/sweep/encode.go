package sweep

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"gncg/internal/report"
)

// EncodeJSON writes the result set as deterministic JSON: cell order is
// the global sequence order, object keys follow declaration order, and
// every value is rendered by report.JSONValue. Two runs over the same
// cells produce byte-identical output regardless of worker count or
// shard partitioning (after Merge).
func (rs *ResultSet) EncodeJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\n  \"cells\": [")
	for ci, c := range rs.Cells {
		if ci > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n    {")
		fmt.Fprintf(bw, "\"seq\": %d, \"experiment\": %s, \"cell\": %d",
			c.Seq, report.JSONValue(c.Experiment), c.Cell.Index)
		if params := c.Cell.paramPairs(); len(params) > 0 {
			bw.WriteString(", \"params\": {")
			for pi, kv := range params {
				if pi > 0 {
					bw.WriteString(", ")
				}
				fmt.Fprintf(bw, "%s: %s", report.JSONValue(kv.Key), report.JSONValue(kv.Value))
			}
			bw.WriteByte('}')
		}
		if c.Err != "" {
			fmt.Fprintf(bw, ", \"err\": %s", report.JSONValue(c.Err))
		}
		bw.WriteString(", \"records\": [")
		for ri, r := range c.Records {
			if ri > 0 {
				bw.WriteString(", ")
			}
			bw.WriteByte('{')
			for fi, f := range r.Fields {
				if fi > 0 {
					bw.WriteString(", ")
				}
				fmt.Fprintf(bw, "%s: %s", report.JSONValue(f.Key), report.JSONValue(f.Value))
			}
			bw.WriteByte('}')
		}
		bw.WriteString("]}")
	}
	bw.WriteString("\n  ]\n}\n")
	return bw.Flush()
}

// EncodeCSV writes the result set in long format — one row per record
// field — which keeps heterogeneous experiments in a single rectangular
// schema: seq, experiment, cell, record, key, value.
func (rs *ResultSet) EncodeCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seq", "experiment", "cell", "record", "key", "value"}); err != nil {
		return err
	}
	for _, c := range rs.Cells {
		for ri, r := range c.Records {
			for _, f := range r.Fields {
				row := []string{
					strconv.Itoa(c.Seq), c.Experiment, strconv.Itoa(c.Cell.Index),
					strconv.Itoa(ri), f.Key, report.Precise(f.Value),
				}
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// paramPairs lists the set grid dimensions of a cell in a fixed order.
func (p Params) paramPairs() []Field {
	var out []Field
	if p.Has(DimHost) {
		out = append(out, Field{"host", p.Host})
	}
	if p.Has(DimNorm) {
		out = append(out, Field{"norm", p.Norm})
	}
	if p.Has(DimAlpha) {
		out = append(out, Field{"alpha", p.Alpha})
	}
	if p.Has(DimN) {
		out = append(out, Field{"n", p.N})
	}
	if p.Has(DimSeed) {
		out = append(out, Field{"seed", p.Seed})
	}
	return out
}
