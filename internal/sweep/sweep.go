// Package sweep is the experiment engine: a registry of named
// experiments, a parameter grid that expands into cells, and a sharded
// executor that fans cells out over worker goroutines and funnels
// structured results into deterministic JSON/CSV (via internal/report).
//
// The design goal is horizontal shardability with bit-identical results:
// a sweep's cells are enumerated in a deterministic order, every cell
// carries its own seed, and the merged output of any shard partition
// (`-shards K -shard i` for i = 0..K-1) is byte-identical to a single
// unsharded run, regardless of worker count. That makes the paper's full
// reproduction resumable and distributable across processes.
//
// An experiment is a named cell function plus an optional grid:
//
//	sweep.Register(sweep.Experiment{
//		Name: "fig6", Title: "Thm 15: PoA -> (alpha+2)/2",
//		Tags: []string{"poa", "figures"},
//		Grid: func(quick bool) sweep.Grid {
//			return sweep.Grid{Alphas: []float64{1, 4}, Ns: []int{4, 8, 16}}
//		},
//		Run: func(p sweep.Params) []sweep.Record { ... },
//	})
//
// Each cell returns ordered records (key/value rows); the engine never
// reorders them, so rendering and encoding are reproducible.
package sweep

import (
	"fmt"
	"hash/fnv"
	"math/rand"
)

// Dim flags record which grid dimensions a cell's parameters carry, so
// rendering and encoding can omit placeholder zero values.
const (
	DimAlpha = 1 << iota
	DimN
	DimHost
	DimNorm
	DimSeed
)

// Params identifies one cell of an expanded grid. Only the fields whose
// dimension bit is set in Dims are meaningful; the rest are placeholders.
type Params struct {
	Experiment string
	Index      int // position in the experiment's expanded grid
	Dims       uint8
	Alpha      float64
	N          int
	Host       string // host-graph class selector
	Norm       float64
	Seed       int64
	Quick      bool
}

// Has reports whether the given dimension bit is set.
func (p Params) Has(dim uint8) bool { return p.Dims&dim != 0 }

// RNG returns a cell-local deterministic random source, derived from the
// experiment name, the cell index and the cell seed — independent of
// worker count and shard assignment.
func (p Params) RNG() *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d/%d", p.Experiment, p.Index, p.Seed)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Field is one ordered key/value pair of a record.
type Field struct {
	Key   string
	Value any
}

// Record is an ordered sequence of fields: one result row of a cell.
// Order is part of the record's identity (it drives table columns and
// JSON key order), which keeps output byte-deterministic.
type Record struct {
	Fields []Field
}

// R builds a record from alternating key, value arguments:
// R("seed", 3, "ratio", 1.5).
func R(kv ...any) Record {
	if len(kv)%2 != 0 {
		panic("sweep: R requires alternating key, value arguments")
	}
	r := Record{Fields: make([]Field, 0, len(kv)/2)}
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			panic(fmt.Sprintf("sweep: R key %d is %T, want string", i/2, kv[i]))
		}
		r.Fields = append(r.Fields, Field{Key: key, Value: kv[i+1]})
	}
	return r
}

// Get returns the value of the first field with the given key.
func (r Record) Get(key string) (any, bool) {
	for _, f := range r.Fields {
		if f.Key == key {
			return f.Value, true
		}
	}
	return nil, false
}

// RunFunc computes one cell and returns its result rows.
type RunFunc func(p Params) []Record

// Experiment is a named, taggable unit of the paper's reproduction.
type Experiment struct {
	Name  string
	Title string
	// Note is a caveat printed under the rendered table — e.g. how the
	// reproduction's evidence relates to the paper's claim. It is
	// rendering metadata, not part of the encoded results.
	Note string
	Tags []string
	// Grid declares the parameter grid, possibly shrunk in quick mode.
	// nil means a single cell with no set dimensions.
	Grid func(quick bool) Grid
	Run  RunFunc
}

// Cells expands the experiment's grid (the declared one, or a single
// scalar cell when Grid is nil) and stamps each cell with the experiment
// identity. This is exactly the enumeration the engine executes, so
// callers (e.g. `-list` cell counts) can never diverge from a run.
func (e Experiment) Cells(quick bool) []Params {
	var g Grid
	if e.Grid != nil {
		g = e.Grid(quick)
	}
	cells := g.Cells()
	for i := range cells {
		cells[i].Experiment = e.Name
		cells[i].Quick = quick
	}
	return cells
}
