// Package sweep is the experiment engine: a registry of named
// experiments, an open typed parameter space that expands into cells,
// and a sharded executor that fans cells out over worker goroutines and
// funnels structured results into deterministic JSON/CSV (via
// internal/report).
//
// The design goal is horizontal shardability with bit-identical results:
// a sweep's cells are enumerated in a deterministic order, every cell
// carries its own seed, and the merged output of any shard partition
// (`-shards K -shard i` for i = 0..K-1) is byte-identical to a single
// unsharded run, regardless of worker count. That makes the paper's full
// reproduction resumable and distributable across processes.
//
// An experiment is a named cell function plus an optional parameter
// space — an ordered list of named, typed axes whose cross product
// enumerates the cells — and an optional output schema that drives the
// wide-format CSV encoding:
//
//	sweep.Register(sweep.Experiment{
//		Name: "fig6", Title: "Thm 15: PoA -> (alpha+2)/2",
//		Tags: []string{"poa", "figures"},
//		Space: func(quick bool) sweep.Space {
//			return sweep.Space{Axes: []sweep.Axis{
//				sweep.Floats("alpha", 1, 4),
//				sweep.Ints("n", 4, 8, 16),
//			}}
//		},
//		Schema: []string{"ratio", "limit"},
//		Run: func(p sweep.Params) []sweep.Record {
//			alpha, n := p.Float("alpha"), p.Int("n")
//			...
//		},
//	})
//
// Each cell returns ordered records (key/value rows); the engine never
// reorders them, so rendering and encoding are reproducible.
package sweep

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// AxisValue is one named coordinate of a cell: the axis it came from and
// the typed value the cell holds on it.
type AxisValue struct {
	Axis  string
	Value any // string, float64, int or int64 (see Axis)
}

// Params identifies one cell of an expanded parameter space. Values
// holds the cell's coordinates in axis declaration order; that order is
// part of the cell's identity — it drives the JSON params object, the
// wide-CSV leading columns and the rendered table columns, which keeps
// output byte-deterministic.
type Params struct {
	Experiment string
	Index      int // position in the experiment's expanded space
	Quick      bool
	Values     []AxisValue
}

// Lookup returns the cell's value on the named axis.
func (p Params) Lookup(axis string) (any, bool) {
	for _, v := range p.Values {
		if v.Axis == axis {
			return v.Value, true
		}
	}
	return nil, false
}

// Has reports whether the cell carries the named axis.
func (p Params) Has(axis string) bool {
	_, ok := p.Lookup(axis)
	return ok
}

func (p Params) value(axis string) any {
	v, ok := p.Lookup(axis)
	if !ok {
		panic(fmt.Sprintf("sweep: experiment %q cell %d has no axis %q (axes: %v)",
			p.Experiment, p.Index, axis, p.axisNames()))
	}
	return v
}

func (p Params) axisNames() []string {
	names := make([]string, len(p.Values))
	for i, v := range p.Values {
		names[i] = v.Axis
	}
	return names
}

// Float returns the cell's value on a float axis. Integer-typed values
// coerce, and the strings "inf", "-inf" and "nan" decode to the
// non-finite floats they encode (see report.JSONValue), so the accessor
// is total on decoded cells too.
func (p Params) Float(axis string) float64 {
	switch x := p.value(axis).(type) {
	case float64:
		return x
	case int:
		return float64(x)
	case int64:
		return float64(x)
	case string:
		switch x {
		case "inf":
			return math.Inf(1)
		case "-inf":
			return math.Inf(-1)
		case "nan":
			return math.NaN()
		}
	}
	panic(fmt.Sprintf("sweep: experiment %q axis %q holds %T, want float",
		p.Experiment, axis, p.value(axis)))
}

// Int returns the cell's value on an integer axis.
func (p Params) Int(axis string) int {
	switch x := p.value(axis).(type) {
	case int:
		return x
	case int64:
		return int(x)
	}
	panic(fmt.Sprintf("sweep: experiment %q axis %q holds %T, want int",
		p.Experiment, axis, p.value(axis)))
}

// Int64 returns the cell's value on an int64 axis (by convention, seed
// axes).
func (p Params) Int64(axis string) int64 {
	switch x := p.value(axis).(type) {
	case int64:
		return x
	case int:
		return int64(x)
	}
	panic(fmt.Sprintf("sweep: experiment %q axis %q holds %T, want int64",
		p.Experiment, axis, p.value(axis)))
}

// Str returns the cell's value on a string axis.
func (p Params) Str(axis string) string {
	if s, ok := p.value(axis).(string); ok {
		return s
	}
	panic(fmt.Sprintf("sweep: experiment %q axis %q holds %T, want string",
		p.Experiment, axis, p.value(axis)))
}

// Seed returns the cell's value on the conventional "seed" axis, or 0
// when the cell has none. It feeds RNG, so cells without a seed axis
// still get a deterministic per-cell source (their index differs).
func (p Params) Seed() int64 {
	v, ok := p.Lookup("seed")
	if !ok {
		return 0
	}
	switch x := v.(type) {
	case int64:
		return x
	case int:
		return int64(x)
	}
	panic(fmt.Sprintf("sweep: experiment %q seed axis holds %T, want int64", p.Experiment, v))
}

// RNG returns a cell-local deterministic random source, derived from the
// experiment name, the cell index and the cell seed — independent of
// worker count and shard assignment.
func (p Params) RNG() *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d/%d", p.Experiment, p.Index, p.Seed())
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Field is one ordered key/value pair of a record.
type Field struct {
	Key   string
	Value any
}

// Record is an ordered sequence of fields: one result row of a cell.
// Order is part of the record's identity (it drives table columns and
// JSON key order), which keeps output byte-deterministic.
type Record struct {
	Fields []Field
}

// R builds a record from alternating key, value arguments:
// R("seed", 3, "ratio", 1.5).
func R(kv ...any) Record {
	if len(kv)%2 != 0 {
		panic("sweep: R requires alternating key, value arguments")
	}
	r := Record{Fields: make([]Field, 0, len(kv)/2)}
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			panic(fmt.Sprintf("sweep: R key %d is %T, want string", i/2, kv[i]))
		}
		r.Fields = append(r.Fields, Field{Key: key, Value: kv[i+1]})
	}
	return r
}

// Get returns the value of the first field with the given key.
func (r Record) Get(key string) (any, bool) {
	for _, f := range r.Fields {
		if f.Key == key {
			return f.Value, true
		}
	}
	return nil, false
}

// RunFunc computes one cell and returns its result rows.
type RunFunc func(p Params) []Record

// Experiment is a named, taggable unit of the paper's reproduction.
type Experiment struct {
	Name  string
	Title string
	// Note is a caveat printed under the rendered table — e.g. how the
	// reproduction's evidence relates to the paper's claim. It is
	// rendering metadata, not part of the encoded results.
	Note string
	Tags []string
	// Space declares the parameter space, possibly shrunk in quick mode.
	// nil means a single cell with no axes.
	Space func(quick bool) Space
	// Schema optionally declares the ordered metric columns of the
	// experiment's wide-format CSV (after the axis columns). Record keys
	// outside the schema are dropped from the wide table; keys a record
	// lacks leave empty cells. An empty schema derives the columns from
	// the records themselves, in first-appearance order. Like Title and
	// Note it is rendering metadata, not part of the encoded results.
	Schema []string
	Run    RunFunc
}

// Cells expands the experiment's space (the declared one, or a single
// scalar cell when Space is nil) and stamps each cell with the experiment
// identity. This is exactly the enumeration the engine executes, so
// callers (e.g. `-list` cell counts) can never diverge from a run.
func (e Experiment) Cells(quick bool) []Params {
	var sp Space
	if e.Space != nil {
		sp = e.Space(quick)
	}
	cells := sp.Cells()
	for i := range cells {
		cells[i].Experiment = e.Name
		cells[i].Quick = quick
	}
	return cells
}
