package sweep

import (
	"fmt"
	"sort"
	"strings"
)

// registry holds experiments in registration order; selection and cell
// enumeration preserve that order so output layout is stable.
var registry []Experiment

// Register adds an experiment to the global registry. It panics on
// duplicate names, empty names, or a nil run function — registration
// happens at program start, so failing loudly is right.
func Register(e Experiment) {
	if e.Name == "" {
		panic("sweep: experiment with empty name")
	}
	if e.Run == nil {
		panic(fmt.Sprintf("sweep: experiment %q has no run function", e.Name))
	}
	for _, have := range registry {
		if have.Name == e.Name {
			panic(fmt.Sprintf("sweep: duplicate experiment %q", e.Name))
		}
	}
	registry = append(registry, e)
}

// All returns the registered experiments in registration order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup finds a registered experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Tags returns the sorted set of all registered tags.
func Tags() []string {
	seen := map[string]bool{}
	for _, e := range registry {
		for _, t := range e.Tags {
			seen[t] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Select resolves a comma-separated list of experiment names and/or tags
// against the registry. An exact name match takes the selector (so a tag
// sharing an experiment's name cannot widen the selection); otherwise the
// selector is matched as a tag. Every selector must match at least one
// experiment; matches are returned in registration order, deduplicated.
// An empty spec or "all" selects everything.
func Select(spec string) ([]Experiment, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		return All(), nil
	}
	want := map[string]bool{}
	for _, sel := range strings.Split(spec, ",") {
		sel = strings.TrimSpace(sel)
		if sel == "" {
			continue
		}
		if e, ok := Lookup(sel); ok {
			want[e.Name] = true
			continue
		}
		matched := false
		for _, e := range registry {
			for _, t := range e.Tags {
				if t == sel {
					want[e.Name] = true
					matched = true
					break
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("sweep: selector %q matches no experiment name or tag", sel)
		}
	}
	var out []Experiment
	for _, e := range registry {
		if want[e.Name] {
			out = append(out, e)
		}
	}
	return out, nil
}
