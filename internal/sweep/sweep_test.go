package sweep

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func toyExperiments() []Experiment {
	// A mix of shapes: a full grid, a seeds-only trial ladder, and a
	// scalar single-cell experiment. Cell outputs are pure functions of
	// the cell parameters (via the cell-local RNG), so any execution
	// order must reproduce them exactly.
	return []Experiment{
		{
			Name: "toy-grid", Title: "toy full grid", Tags: []string{"toy", "grid"},
			Grid: func(quick bool) Grid {
				g := Grid{
					Hosts:  []string{"uniform", "clustered"},
					Alphas: []float64{0.5, 1, 2},
					Ns:     []int{4, 8},
					Seeds:  Seq(3),
				}
				if quick {
					g.Seeds = Seq(1)
				}
				return g
			},
			Run: func(p Params) []Record {
				rng := p.RNG()
				v := rng.Float64() * p.Alpha * float64(p.N)
				return []Record{R("value", v, "host", p.Host, "inf_guard", math.Inf(1))}
			},
		},
		{
			Name: "toy-trials", Title: "toy seed ladder", Tags: []string{"toy"},
			Grid: func(quick bool) Grid { return Grid{Seeds: Seq(7)} },
			Run: func(p Params) []Record {
				var recs []Record
				for i := 0; i <= int(p.Seed)%3; i++ {
					recs = append(recs, R("trial", i, "seed2", p.Seed*p.Seed))
				}
				return recs
			},
		},
		{
			Name: "toy-scalar", Title: "toy scalar", Tags: []string{"scalar"},
			Run: func(p Params) []Record { return []Record{R("answer", 42)} },
		},
	}
}

func encodeBoth(t *testing.T, rs *ResultSet) (string, string) {
	t.Helper()
	var j, c bytes.Buffer
	if err := rs.EncodeJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := rs.EncodeCSV(&c); err != nil {
		t.Fatal(err)
	}
	return j.String(), c.String()
}

// TestShardAndWorkerDeterminism is the engine's core contract: the same
// grid and seeds must produce byte-identical JSON and CSV regardless of
// worker count and shard partitioning.
func TestShardAndWorkerDeterminism(t *testing.T) {
	exps := toyExperiments()
	ref, err := Run(exps, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.FirstErr(); err != nil {
		t.Fatal(err)
	}
	refJSON, refCSV := encodeBoth(t, ref)
	if len(ref.Cells) != 2*3*2*3+7+1 {
		t.Fatalf("unexpected cell count %d", len(ref.Cells))
	}
	for _, workers := range []int{2, 8, 0} {
		got, err := Run(exps, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		gj, gc := encodeBoth(t, got)
		if gj != refJSON {
			t.Fatalf("workers=%d: JSON differs from single-worker run", workers)
		}
		if gc != refCSV {
			t.Fatalf("workers=%d: CSV differs from single-worker run", workers)
		}
	}
	for _, shards := range []int{2, 3, 5} {
		var parts []*ResultSet
		total := 0
		for shard := 0; shard < shards; shard++ {
			part, err := Run(exps, Config{Workers: 4, Shards: shards, Shard: shard})
			if err != nil {
				t.Fatal(err)
			}
			total += len(part.Cells)
			parts = append(parts, part)
		}
		if total != len(ref.Cells) {
			t.Fatalf("shards=%d: partition covers %d cells, want %d", shards, total, len(ref.Cells))
		}
		merged := Merge(parts...)
		gj, gc := encodeBoth(t, merged)
		if gj != refJSON {
			t.Fatalf("shards=%d: merged JSON differs from unsharded run", shards)
		}
		if gc != refCSV {
			t.Fatalf("shards=%d: merged CSV differs from unsharded run", shards)
		}
	}
}

// TestDecodeJSONRoundTrip is the merge-subcommand contract: encoding a
// result set, decoding it back and re-encoding must be byte-identical —
// including params typing, record field order, non-finite floats and
// captured cell errors.
func TestDecodeJSONRoundTrip(t *testing.T) {
	exps := toyExperiments()
	exps = append(exps,
		Experiment{Name: "toy-panic", Run: func(p Params) []Record { panic("decoded too") }},
		// A +Inf norm (the max-norm selector) encodes as the string "inf"
		// in params and must decode back to a float.
		Experiment{
			Name: "toy-inf-norm",
			Grid: func(quick bool) Grid { return Grid{Norms: []float64{2, math.Inf(1)}} },
			Run:  func(p Params) []Record { return []Record{R("norm_back", p.Norm)} },
		})
	ref, err := Run(exps, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	refJSON, refCSV := encodeBoth(t, ref)
	decoded, err := DecodeJSON(strings.NewReader(refJSON))
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, gotCSV := encodeBoth(t, decoded)
	if gotJSON != refJSON {
		t.Fatal("decode/encode round trip changed the JSON bytes")
	}
	if gotCSV != refCSV {
		t.Fatal("decode/encode round trip changed the CSV bytes")
	}
}

// TestDecodeMergeShards: decoding every shard's encoded output and
// merging reproduces the unsharded encoding byte-for-byte — the full
// file-level merge workflow, in memory.
func TestDecodeMergeShards(t *testing.T) {
	exps := toyExperiments()
	ref, err := Run(exps, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	refJSON, refCSV := encodeBoth(t, ref)
	for _, shards := range []int{2, 4} {
		var sets []*ResultSet
		for shard := 0; shard < shards; shard++ {
			part, err := Run(exps, Config{Workers: 3, Shards: shards, Shard: shard})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := part.EncodeJSON(&buf); err != nil {
				t.Fatal(err)
			}
			decoded, err := DecodeJSON(&buf)
			if err != nil {
				t.Fatal(err)
			}
			sets = append(sets, decoded)
		}
		gotJSON, gotCSV := encodeBoth(t, Merge(sets...))
		if gotJSON != refJSON {
			t.Fatalf("shards=%d: decoded merge JSON differs from unsharded run", shards)
		}
		if gotCSV != refCSV {
			t.Fatalf("shards=%d: decoded merge CSV differs from unsharded run", shards)
		}
	}
}

// TestDecodeJSONNegativeZero: -0 is a valid float literal that parses as
// integer 0; it must stay a float so the round trip re-encodes "-0".
func TestDecodeJSONNegativeZero(t *testing.T) {
	rs := &ResultSet{Cells: []CellResult{{
		Experiment: "e",
		Records:    []Record{R("z", math.Copysign(0, -1))},
	}}}
	var buf bytes.Buffer
	if err := rs.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"z": -0`) {
		t.Fatalf("encoder did not produce -0:\n%s", buf.String())
	}
	ref := buf.String()
	decoded, err := DecodeJSON(strings.NewReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := decoded.EncodeJSON(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != ref {
		t.Fatalf("negative zero lost in round trip:\n%s\nvs\n%s", again.String(), ref)
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"[]",
		`{"cells": [{"seq": "x"}]}`,
		`{"cells": [{"params": {"bogus": 1}}]}`,
		`{"cells": [{"records": [{"k": [1,2]}]}]}`,
		// Concatenated result sets must be rejected, not silently
		// truncated to the first one.
		`{"cells": []}` + "\n" + `{"cells": []}`,
	} {
		if _, err := DecodeJSON(strings.NewReader(bad)); err == nil {
			t.Errorf("DecodeJSON(%q) should fail", bad)
		}
	}
	// Unknown top-level and cell-level keys are skipped for forward
	// compatibility.
	ok := `{"meta": {"x": [1, {"y": 2}]}, "cells": [{"seq": 3, "experiment": "e", "cell": 0, "future": [1], "records": []}]}`
	rs, err := DecodeJSON(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("forward-compatible decode failed: %v", err)
	}
	if len(rs.Cells) != 1 || rs.Cells[0].Seq != 3 || rs.Cells[0].Experiment != "e" {
		t.Fatalf("decoded cells wrong: %+v", rs.Cells)
	}
}

func TestGridExpansion(t *testing.T) {
	g := Grid{Alphas: []float64{1, 2}, Seeds: Seq(3)}
	cells := g.Cells()
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	// Alphas are outer, seeds inner; indices are consecutive.
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
		wantAlpha := []float64{1, 1, 1, 2, 2, 2}[i]
		wantSeed := int64(i % 3)
		if c.Alpha != wantAlpha || c.Seed != wantSeed {
			t.Fatalf("cell %d = (alpha %v, seed %d), want (%v, %d)", i, c.Alpha, c.Seed, wantAlpha, wantSeed)
		}
		if !c.Has(DimAlpha) || !c.Has(DimSeed) || c.Has(DimN) || c.Has(DimHost) || c.Has(DimNorm) {
			t.Fatalf("cell %d has wrong dims %b", i, c.Dims)
		}
	}
	if n := len((Grid{}).Cells()); n != 1 {
		t.Fatalf("empty grid expands to %d cells, want 1", n)
	}
	if (Grid{}).Cells()[0].Dims != 0 {
		t.Fatal("empty grid cell should have no set dims")
	}
}

func TestRegistrySelect(t *testing.T) {
	for _, e := range toyExperiments() {
		Register(e)
	}
	defer func() { registry = nil }()
	if _, ok := Lookup("toy-grid"); !ok {
		t.Fatal("Lookup failed for registered experiment")
	}
	byTag, err := Select("toy")
	if err != nil {
		t.Fatal(err)
	}
	if len(byTag) != 2 || byTag[0].Name != "toy-grid" || byTag[1].Name != "toy-trials" {
		t.Fatalf("tag selection wrong: %v", names(byTag))
	}
	mixed, err := Select("scalar,toy-trials,toy-trials")
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed) != 2 || mixed[0].Name != "toy-trials" || mixed[1].Name != "toy-scalar" {
		t.Fatalf("mixed selection wrong (want registration order, deduped): %v", names(mixed))
	}
	if _, err := Select("no-such-thing"); err == nil {
		t.Fatal("unknown selector should fail")
	}
	all, err := Select("all")
	if err != nil || len(all) != 3 {
		t.Fatalf("Select(all) = %v, %v", names(all), err)
	}
	// An exact name match must shadow a tag of the same name.
	Register(Experiment{Name: "shadow", Tags: []string{"toy-scalar"},
		Run: func(p Params) []Record { return nil }})
	shadowed, err := Select("toy-scalar")
	if err != nil {
		t.Fatal(err)
	}
	if len(shadowed) != 1 || shadowed[0].Name != "toy-scalar" {
		t.Fatalf("name should take precedence over same-named tag: %v", names(shadowed))
	}
}

func names(exps []Experiment) []string {
	out := make([]string, len(exps))
	for i, e := range exps {
		out[i] = e.Name
	}
	return out
}

func TestCellPanicIsCaptured(t *testing.T) {
	exps := []Experiment{
		{Name: "boom", Run: func(p Params) []Record { panic("kaput") }},
		{Name: "fine", Run: func(p Params) []Record { return []Record{R("x", 1)} }},
	}
	rs, err := Run(exps, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Cells[0].Err == "" || !strings.Contains(rs.Cells[0].Err, "kaput") {
		t.Fatalf("panic not captured: %+v", rs.Cells[0])
	}
	if rs.Cells[1].Err != "" || len(rs.Cells[1].Records) != 1 {
		t.Fatalf("healthy cell affected: %+v", rs.Cells[1])
	}
	if rs.FirstErr() == nil {
		t.Fatal("FirstErr should surface the panic")
	}
}

func TestEncodeNonFiniteAndEscaping(t *testing.T) {
	rs := &ResultSet{Cells: []CellResult{{
		Seq: 0, Experiment: `quo"ted`,
		Records: []Record{R("pos", math.Inf(1), "neg", math.Inf(-1), "text", "a,b\nc")},
	}}}
	j, c := encodeBoth(t, rs)
	for _, want := range []string{`"inf"`, `"-inf"`, `"quo\"ted"`} {
		if !strings.Contains(j, want) {
			t.Fatalf("JSON missing %s:\n%s", want, j)
		}
	}
	if !strings.Contains(c, `"a,b`) {
		t.Fatalf("CSV did not escape the comma/newline value:\n%s", c)
	}
}

func TestRenderText(t *testing.T) {
	exps := toyExperiments()
	rs, err := Run(exps, Config{Quick: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderText(&buf, rs)
	out := buf.String()
	for _, want := range []string{"toy-grid", "toy full grid", "host", "alpha", "value", "answer"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered text missing %q:\n%s", want, out)
		}
	}
}

func TestRecordHelpers(t *testing.T) {
	r := R("a", 1, "b", "x")
	if v, ok := r.Get("b"); !ok || v != "x" {
		t.Fatalf("Get(b) = %v, %v", v, ok)
	}
	if _, ok := r.Get("zz"); ok {
		t.Fatal("Get of missing key should fail")
	}
	mustPanic(t, func() { R("odd") })
	mustPanic(t, func() { R(1, 2) })
	mustPanic(t, func() { Register(Experiment{Name: ""}) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

// TestSeededRNGIndependence: the cell RNG must depend on experiment,
// index and seed only.
func TestSeededRNGIndependence(t *testing.T) {
	p1 := Params{Experiment: "e", Index: 3, Seed: 9}
	p2 := Params{Experiment: "e", Index: 3, Seed: 9, Host: "other", Alpha: 5}
	if p1.RNG().Int63() != p2.RNG().Int63() {
		t.Fatal("RNG should not depend on non-identity fields")
	}
	p3 := Params{Experiment: "e", Index: 4, Seed: 9}
	if p1.RNG().Int63() == p3.RNG().Int63() {
		t.Fatal("RNG should differ across cell indices")
	}
}
