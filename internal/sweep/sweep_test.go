package sweep

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func toyExperiments() []Experiment {
	// A mix of shapes: a full multi-axis space (two string axes — the
	// shape the old closed grid could not express), a seeds-only trial
	// ladder, and a scalar single-cell experiment. Cell outputs are pure
	// functions of the cell parameters (via the cell-local RNG), so any
	// execution order must reproduce them exactly.
	return []Experiment{
		{
			Name: "toy-grid", Title: "toy full grid", Tags: []string{"toy", "grid"},
			Space: func(quick bool) Space {
				trials := 3
				if quick {
					trials = 1
				}
				return Space{Axes: []Axis{
					Strings("host", "uniform", "clustered"),
					Strings("sched", "rr", "random"),
					Floats("alpha", 0.5, 1, 2),
					Ints("n", 4, 8),
					SeedAxis(trials),
				}}
			},
			Schema: []string{"value", "host", "inf_guard"},
			Run: func(p Params) []Record {
				rng := p.RNG()
				v := rng.Float64() * p.Float("alpha") * float64(p.Int("n"))
				if p.Str("sched") == "random" {
					v = -v
				}
				return []Record{R("value", v, "host", p.Str("host"), "inf_guard", math.Inf(1))}
			},
		},
		{
			Name: "toy-trials", Title: "toy seed ladder", Tags: []string{"toy"},
			Space: func(quick bool) Space { return Space{Axes: []Axis{SeedAxis(7)}} },
			Run: func(p Params) []Record {
				var recs []Record
				for i := 0; i <= int(p.Seed())%3; i++ {
					recs = append(recs, R("trial", i, "seed2", p.Seed()*p.Seed()))
				}
				return recs
			},
		},
		{
			Name: "toy-scalar", Title: "toy scalar", Tags: []string{"scalar"},
			Run: func(p Params) []Record { return []Record{R("answer", 42)} },
		},
	}
}

func encodeBoth(t *testing.T, rs *ResultSet) (string, string) {
	t.Helper()
	var j, c bytes.Buffer
	if err := rs.EncodeJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := rs.EncodeCSV(&c); err != nil {
		t.Fatal(err)
	}
	return j.String(), c.String()
}

func mustMerge(t *testing.T, sets ...*ResultSet) *ResultSet {
	t.Helper()
	rs, err := Merge(sets...)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// TestShardAndWorkerDeterminism is the engine's core contract: the same
// space and seeds must produce byte-identical JSON and CSV regardless of
// worker count and shard partitioning — including across a multi-axis
// space with several string axes.
func TestShardAndWorkerDeterminism(t *testing.T) {
	exps := toyExperiments()
	ref, err := Run(exps, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.FirstErr(); err != nil {
		t.Fatal(err)
	}
	refJSON, refCSV := encodeBoth(t, ref)
	if len(ref.Cells) != 2*2*3*2*3+7+1 {
		t.Fatalf("unexpected cell count %d", len(ref.Cells))
	}
	for _, workers := range []int{2, 8, 0} {
		got, err := Run(exps, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		gj, gc := encodeBoth(t, got)
		if gj != refJSON {
			t.Fatalf("workers=%d: JSON differs from single-worker run", workers)
		}
		if gc != refCSV {
			t.Fatalf("workers=%d: CSV differs from single-worker run", workers)
		}
	}
	for _, shards := range []int{2, 3, 5} {
		var parts []*ResultSet
		total := 0
		for shard := 0; shard < shards; shard++ {
			part, err := Run(exps, Config{Workers: 4, Shards: shards, Shard: shard})
			if err != nil {
				t.Fatal(err)
			}
			total += len(part.Cells)
			parts = append(parts, part)
		}
		if total != len(ref.Cells) {
			t.Fatalf("shards=%d: partition covers %d cells, want %d", shards, total, len(ref.Cells))
		}
		merged := mustMerge(t, parts...)
		gj, gc := encodeBoth(t, merged)
		if gj != refJSON {
			t.Fatalf("shards=%d: merged JSON differs from unsharded run", shards)
		}
		if gc != refCSV {
			t.Fatalf("shards=%d: merged CSV differs from unsharded run", shards)
		}
	}
}

// TestDecodeJSONRoundTrip is the merge-subcommand contract: encoding a
// result set, decoding it back and re-encoding must be byte-identical —
// including params typing, record field order, non-finite floats and
// captured cell errors.
func TestDecodeJSONRoundTrip(t *testing.T) {
	exps := toyExperiments()
	exps = append(exps,
		Experiment{Name: "toy-panic", Run: func(p Params) []Record { panic("decoded too") }},
		// A +Inf norm (the max-norm selector) encodes as the string "inf"
		// in params and must round-trip byte-identically.
		Experiment{
			Name: "toy-inf-norm",
			Space: func(quick bool) Space {
				return Space{Axes: []Axis{Floats("norm", 2, math.Inf(1))}}
			},
			Run: func(p Params) []Record { return []Record{R("norm_back", p.Float("norm"))} },
		})
	ref, err := Run(exps, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	refJSON, refCSV := encodeBoth(t, ref)
	decoded, err := DecodeJSON(strings.NewReader(refJSON))
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, gotCSV := encodeBoth(t, decoded)
	if gotJSON != refJSON {
		t.Fatal("decode/encode round trip changed the JSON bytes")
	}
	if gotCSV != refCSV {
		t.Fatal("decode/encode round trip changed the CSV bytes")
	}
}

// TestDecodeMergeShards: decoding every shard's encoded output and
// merging reproduces the unsharded encoding byte-for-byte — the full
// file-level merge workflow, in memory.
func TestDecodeMergeShards(t *testing.T) {
	exps := toyExperiments()
	ref, err := Run(exps, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	refJSON, refCSV := encodeBoth(t, ref)
	for _, shards := range []int{2, 4} {
		var sets []*ResultSet
		for shard := 0; shard < shards; shard++ {
			part, err := Run(exps, Config{Workers: 3, Shards: shards, Shard: shard})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := part.EncodeJSON(&buf); err != nil {
				t.Fatal(err)
			}
			decoded, err := DecodeJSON(&buf)
			if err != nil {
				t.Fatal(err)
			}
			sets = append(sets, decoded)
		}
		gotJSON, gotCSV := encodeBoth(t, mustMerge(t, sets...))
		if gotJSON != refJSON {
			t.Fatalf("shards=%d: decoded merge JSON differs from unsharded run", shards)
		}
		if gotCSV != refCSV {
			t.Fatalf("shards=%d: decoded merge CSV differs from unsharded run", shards)
		}
	}
}

// TestDecodeUnknownParamRoundTrip: a params object with axis names this
// binary has never registered must round-trip byte-identically,
// preserving key order — the "shards from a newer binary" forward
// compatibility that the old fixed-key decoder silently destroyed.
func TestDecodeUnknownParamRoundTrip(t *testing.T) {
	in := `{
  "cells": [
    {"seq": 0, "experiment": "future", "cell": 0, "params": {"zeta": "x", "alpha": 1.5, "moves": 7, "norm": "inf"}, "records": [{"v": 1}]}
  ]
}
`
	rs, err := DecodeJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := rs.EncodeJSON(&out); err != nil {
		t.Fatal(err)
	}
	if out.String() != in {
		t.Fatalf("unknown params did not round-trip:\n%s\nvs\n%s", out.String(), in)
	}
	p := rs.Cells[0].Cell
	if got := p.axisNames(); strings.Join(got, ",") != "zeta,alpha,moves,norm" {
		t.Fatalf("axis order not preserved: %v", got)
	}
	if p.Str("zeta") != "x" || p.Float("alpha") != 1.5 || p.Int("moves") != 7 {
		t.Fatalf("typed accessors failed on decoded cell: %+v", p.Values)
	}
	if !math.IsInf(p.Float("norm"), 1) {
		t.Fatalf("Float on encoded inf spelling = %v, want +Inf", p.Float("norm"))
	}
}

// TestMergeDisagreementFails: Merge must refuse, not silently dedupe,
// when the same sequence number carries different params (shards of
// different runs/binaries), and when one experiment's cells disagree on
// their axis set.
func TestMergeDisagreementFails(t *testing.T) {
	cell := func(seq int, exp string, vals ...AxisValue) CellResult {
		return CellResult{Seq: seq, Experiment: exp, Cell: Params{Values: vals}}
	}
	a := &ResultSet{Cells: []CellResult{cell(0, "e", AxisValue{"alpha", 1.0})}}
	b := &ResultSet{Cells: []CellResult{cell(0, "e", AxisValue{"alpha", 2.0})}}
	if _, err := Merge(a, b); err == nil {
		t.Fatal("merge of same-seq cells with differing params should fail")
	}
	bExtra := &ResultSet{Cells: []CellResult{cell(0, "e", AxisValue{"alpha", 1.0}, AxisValue{"sched", "rr"})}}
	if _, err := Merge(a, bExtra); err == nil {
		t.Fatal("merge of same-seq cells with extra axes should fail")
	}
	// Distinct seqs of one experiment with differing axis sets: newer
	// binary added an axis.
	mixed := &ResultSet{Cells: []CellResult{
		cell(0, "e", AxisValue{"alpha", 1.0}),
		cell(1, "e", AxisValue{"alpha", 1.0}, AxisValue{"sched", "rr"}),
	}}
	if _, err := Merge(mixed); err == nil {
		t.Fatal("merge of one experiment with differing axis sets should fail")
	}
	// Same params but a changed result payload: a newer binary's bugfix
	// altered a metric — still shards of different runs, still refused.
	r1 := &ResultSet{Cells: []CellResult{{Seq: 0, Experiment: "e",
		Records: []Record{R("v", 1.5)}}}}
	r2 := &ResultSet{Cells: []CellResult{{Seq: 0, Experiment: "e",
		Records: []Record{R("v", 1.25)}}}}
	if _, err := Merge(r1, r2); err == nil {
		t.Fatal("merge of same-seq cells with differing records should fail")
	}
	// Identical duplicates (overlapping shard files) still dedupe fine,
	// NaN-valued axes included (compared via encoding, not ==).
	nan := &ResultSet{Cells: []CellResult{cell(0, "e", AxisValue{"alpha", math.NaN()})}}
	nan2 := &ResultSet{Cells: []CellResult{cell(0, "e", AxisValue{"alpha", math.NaN()})}}
	got, err := Merge(nan, nan2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != 1 {
		t.Fatalf("identical duplicates should dedupe: %d cells", len(got.Cells))
	}
}

// TestDecodeJSONNegativeZero: -0 is a valid float literal that parses as
// integer 0; it must stay a float so the round trip re-encodes "-0".
func TestDecodeJSONNegativeZero(t *testing.T) {
	rs := &ResultSet{Cells: []CellResult{{
		Experiment: "e",
		Records:    []Record{R("z", math.Copysign(0, -1))},
	}}}
	var buf bytes.Buffer
	if err := rs.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"z": -0`) {
		t.Fatalf("encoder did not produce -0:\n%s", buf.String())
	}
	ref := buf.String()
	decoded, err := DecodeJSON(strings.NewReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := decoded.EncodeJSON(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != ref {
		t.Fatalf("negative zero lost in round trip:\n%s\nvs\n%s", again.String(), ref)
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"[]",
		`{"cells": [{"seq": "x"}]}`,
		`{"cells": [{"params": {"bogus": [1]}}]}`,
		`{"cells": [{"records": [{"k": [1,2]}]}]}`,
		// Concatenated result sets must be rejected, not silently
		// truncated to the first one.
		`{"cells": []}` + "\n" + `{"cells": []}`,
	} {
		if _, err := DecodeJSON(strings.NewReader(bad)); err == nil {
			t.Errorf("DecodeJSON(%q) should fail", bad)
		}
	}
	// Unknown top-level and cell-level keys are skipped for forward
	// compatibility.
	ok := `{"meta": {"x": [1, {"y": 2}]}, "cells": [{"seq": 3, "experiment": "e", "cell": 0, "future": [1], "records": []}]}`
	rs, err := DecodeJSON(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("forward-compatible decode failed: %v", err)
	}
	if len(rs.Cells) != 1 || rs.Cells[0].Seq != 3 || rs.Cells[0].Experiment != "e" {
		t.Fatalf("decoded cells wrong: %+v", rs.Cells)
	}
}

func TestSpaceExpansion(t *testing.T) {
	sp := Space{Axes: []Axis{Floats("alpha", 1, 2), SeedAxis(3)}}
	cells := sp.Cells()
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	// Alpha is outer, seeds inner; indices are consecutive.
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
		wantAlpha := []float64{1, 1, 1, 2, 2, 2}[i]
		wantSeed := int64(i % 3)
		if c.Float("alpha") != wantAlpha || c.Seed() != wantSeed {
			t.Fatalf("cell %d = (alpha %v, seed %d), want (%v, %d)",
				i, c.Float("alpha"), c.Seed(), wantAlpha, wantSeed)
		}
		if !c.Has("alpha") || !c.Has("seed") || c.Has("n") || c.Has("host") {
			t.Fatalf("cell %d has wrong axes %v", i, c.axisNames())
		}
	}
	if n := len((Space{}).Cells()); n != 1 {
		t.Fatalf("empty space expands to %d cells, want 1", n)
	}
	if len((Space{}).Cells()[0].Values) != 0 {
		t.Fatal("empty space cell should carry no axes")
	}
	mustPanic(t, func() { Space{Axes: []Axis{Floats("", 1)}}.Cells() })
	mustPanic(t, func() { Space{Axes: []Axis{Ints("n", 1), Ints("n", 2)}}.Cells() })
	mustPanic(t, func() { Space{Axes: []Axis{Ints("n")}}.Cells() })
}

func TestParamsAccessors(t *testing.T) {
	p := Params{Experiment: "e", Values: []AxisValue{
		{"alpha", 1.5}, {"n", 8}, {"seed", int64(3)}, {"sched", "rr"},
	}}
	if p.Float("alpha") != 1.5 || p.Int("n") != 8 || p.Seed() != 3 || p.Str("sched") != "rr" {
		t.Fatalf("accessors wrong: %+v", p.Values)
	}
	// Numeric coercions (decoded cells carry int for integer literals).
	if p.Float("n") != 8 || p.Int64("n") != 8 || p.Int("seed") != 3 {
		t.Fatal("numeric coercion failed")
	}
	if v, ok := p.Lookup("alpha"); !ok || v != 1.5 {
		t.Fatalf("Lookup(alpha) = %v, %v", v, ok)
	}
	if _, ok := p.Lookup("zz"); ok {
		t.Fatal("Lookup of missing axis should fail")
	}
	mustPanic(t, func() { p.Float("missing") })
	mustPanic(t, func() { p.Int("sched") })
	mustPanic(t, func() { p.Str("alpha") })
	// No seed axis: Seed is 0, and the RNG still varies by index.
	q := Params{Experiment: "e", Index: 1}
	if q.Seed() != 0 {
		t.Fatalf("Seed() without axis = %d, want 0", q.Seed())
	}
	if q.RNG().Int63() == (Params{Experiment: "e", Index: 2}).RNG().Int63() {
		t.Fatal("RNG should differ across cell indices")
	}
}

func TestRegistrySelect(t *testing.T) {
	for _, e := range toyExperiments() {
		Register(e)
	}
	defer func() { registry = nil }()
	if _, ok := Lookup("toy-grid"); !ok {
		t.Fatal("Lookup failed for registered experiment")
	}
	byTag, err := Select("toy")
	if err != nil {
		t.Fatal(err)
	}
	if len(byTag) != 2 || byTag[0].Name != "toy-grid" || byTag[1].Name != "toy-trials" {
		t.Fatalf("tag selection wrong: %v", names(byTag))
	}
	mixed, err := Select("scalar,toy-trials,toy-trials")
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed) != 2 || mixed[0].Name != "toy-trials" || mixed[1].Name != "toy-scalar" {
		t.Fatalf("mixed selection wrong (want registration order, deduped): %v", names(mixed))
	}
	if _, err := Select("no-such-thing"); err == nil {
		t.Fatal("unknown selector should fail")
	}
	all, err := Select("all")
	if err != nil || len(all) != 3 {
		t.Fatalf("Select(all) = %v, %v", names(all), err)
	}
	// An exact name match must shadow a tag of the same name.
	Register(Experiment{Name: "shadow", Tags: []string{"toy-scalar"},
		Run: func(p Params) []Record { return nil }})
	shadowed, err := Select("toy-scalar")
	if err != nil {
		t.Fatal(err)
	}
	if len(shadowed) != 1 || shadowed[0].Name != "toy-scalar" {
		t.Fatalf("name should take precedence over same-named tag: %v", names(shadowed))
	}
}

func names(exps []Experiment) []string {
	out := make([]string, len(exps))
	for i, e := range exps {
		out[i] = e.Name
	}
	return out
}

func TestCellPanicIsCaptured(t *testing.T) {
	exps := []Experiment{
		{Name: "boom", Run: func(p Params) []Record { panic("kaput") }},
		{Name: "fine", Run: func(p Params) []Record { return []Record{R("x", 1)} }},
	}
	rs, err := Run(exps, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Cells[0].Err == "" || !strings.Contains(rs.Cells[0].Err, "kaput") {
		t.Fatalf("panic not captured: %+v", rs.Cells[0])
	}
	if rs.Cells[1].Err != "" || len(rs.Cells[1].Records) != 1 {
		t.Fatalf("healthy cell affected: %+v", rs.Cells[1])
	}
	if rs.FirstErr() == nil {
		t.Fatal("FirstErr should surface the panic")
	}
}

func TestEncodeNonFiniteAndEscaping(t *testing.T) {
	rs := &ResultSet{Cells: []CellResult{{
		Seq: 0, Experiment: `quo"ted`,
		Records: []Record{R("pos", math.Inf(1), "neg", math.Inf(-1), "text", "a,b\nc")},
	}}}
	j, c := encodeBoth(t, rs)
	for _, want := range []string{`"inf"`, `"-inf"`, `"quo\"ted"`} {
		if !strings.Contains(j, want) {
			t.Fatalf("JSON missing %s:\n%s", want, j)
		}
	}
	if !strings.Contains(c, `"a,b`) {
		t.Fatalf("CSV did not escape the comma/newline value:\n%s", c)
	}
}

func TestRenderText(t *testing.T) {
	exps := toyExperiments()
	rs, err := Run(exps, Config{Quick: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderText(&buf, rs)
	out := buf.String()
	for _, want := range []string{"toy-grid", "toy full grid", "host", "alpha", "value", "answer"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered text missing %q:\n%s", want, out)
		}
	}
}

// TestWideTables: wide tables carry axis columns then schema columns,
// one row per record; missing keys leave empty cells, off-schema keys
// are dropped, and decoded sets regain their schemas via AttachMeta.
func TestWideTables(t *testing.T) {
	exps := []Experiment{
		{
			Name: "wide-toy",
			Space: func(quick bool) Space {
				return Space{Axes: []Axis{Strings("sched", "rr", "rand"), Ints("n", 2)}}
			},
			Schema: []string{"ratio", "extra"},
			Run: func(p Params) []Record {
				if p.Str("sched") == "rr" {
					// No "extra" key: its column must come out empty.
					return []Record{R("ratio", 1.25, "dropped", true)}
				}
				return []Record{R("ratio", 2, "extra", "x")}
			},
		},
		{
			// No declared schema: columns derive from record keys in
			// first-appearance order.
			Name: "wide-derived",
			Run:  func(p Params) []Record { return []Record{R("b", 1, "a", 2)} },
		},
	}
	rs, err := Run(exps, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wides := rs.WideTables()
	if len(wides) != 2 {
		t.Fatalf("got %d wide tables, want 2", len(wides))
	}
	var buf bytes.Buffer
	if err := wides[0].Table.EncodeCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "sched,n,ratio,extra\nrr,2,1.25,\nrand,2,2,x\n"
	if buf.String() != want {
		t.Fatalf("wide CSV:\n%q\nwant\n%q", buf.String(), want)
	}
	buf.Reset()
	if err := wides[1].Table.EncodeCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "b,a\n1,2\n" {
		t.Fatalf("derived wide CSV: %q", buf.String())
	}
	// Round-trip through the interchange format: schemas are rendering
	// metadata and vanish, AttachMeta restores them from the registry.
	var j bytes.Buffer
	if err := rs.EncodeJSON(&j); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeJSON(&j)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exps {
		Register(e)
	}
	defer func() { registry = nil }()
	decoded.AttachMeta()
	buf.Reset()
	if err := decoded.WideTables()[0].Table.EncodeCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != want {
		t.Fatalf("decoded+attached wide CSV:\n%q\nwant\n%q", buf.String(), want)
	}
}

func TestRecordHelpers(t *testing.T) {
	r := R("a", 1, "b", "x")
	if v, ok := r.Get("b"); !ok || v != "x" {
		t.Fatalf("Get(b) = %v, %v", v, ok)
	}
	if _, ok := r.Get("zz"); ok {
		t.Fatal("Get of missing key should fail")
	}
	mustPanic(t, func() { R("odd") })
	mustPanic(t, func() { R(1, 2) })
	mustPanic(t, func() { Register(Experiment{Name: ""}) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

// TestSeededRNGIndependence: the cell RNG must depend on experiment,
// index and seed only.
func TestSeededRNGIndependence(t *testing.T) {
	p1 := Params{Experiment: "e", Index: 3, Values: []AxisValue{{"seed", int64(9)}}}
	p2 := Params{Experiment: "e", Index: 3, Values: []AxisValue{
		{"host", "other"}, {"alpha", 5.0}, {"seed", int64(9)},
	}}
	if p1.RNG().Int63() != p2.RNG().Int63() {
		t.Fatal("RNG should not depend on non-identity axes")
	}
	p3 := Params{Experiment: "e", Index: 4, Values: []AxisValue{{"seed", int64(9)}}}
	if p1.RNG().Int63() == p3.RNG().Int63() {
		t.Fatal("RNG should differ across cell indices")
	}
}
