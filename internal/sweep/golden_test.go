package sweep

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current encoder output")

// goldenExperiments exercises every axis type in one space — string,
// float (finite and +Inf), int and int64 seeds — plus a scalar
// experiment, with fully deterministic cell outputs covering the
// encoders' tricky values (non-finite floats, negative zero, quoting).
func goldenExperiments() []Experiment {
	return []Experiment{
		{
			Name: "golden-axes", Title: "golden: all axis types",
			Space: func(quick bool) Space {
				return Space{Axes: []Axis{
					Strings("policy", "greedy", "exact"),
					Floats("norm", 1, math.Inf(1)),
					Ints("n", 4),
					SeedAxis(2),
				}}
			},
			Schema: []string{"score", "tag", "half"},
			Run: func(p Params) []Record {
				score := float64(p.Int("n")) * (1 + float64(p.Seed()))
				if p.Str("policy") == "exact" {
					score = -score
				}
				if math.IsInf(p.Float("norm"), 1) {
					score = math.Inf(1)
				}
				rec := R("score", score, "tag", p.Str("policy")+`/q"`, "half", 0.5)
				if p.Seed() == 1 {
					// Off-schema key (dropped from wide CSV) and a missing
					// "half" column (empty wide cell).
					rec = R("score", score, "tag", "short", "ragged", true)
				}
				return []Record{rec}
			},
		},
		{
			Name: "golden-scalar", Title: "golden: scalar cell",
			Run: func(p Params) []Record {
				return []Record{R("answer", 42, "neg_zero", math.Copysign(0, -1))}
			},
		},
	}
}

func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/sweep -run TestGolden -update` after an intentional format change)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden bytes (format change?):\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestGoldenEncodings pins the interchange JSON, long CSV and wide CSV
// of the all-axis-types corpus byte-for-byte against testdata, and
// requires the JSON to survive a decode/re-encode round trip unchanged
// (so stored shard files keep merging under this exact format).
func TestGoldenEncodings(t *testing.T) {
	rs, err := Run(goldenExperiments(), Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.FirstErr(); err != nil {
		t.Fatal(err)
	}
	var j, c bytes.Buffer
	if err := rs.EncodeJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := rs.EncodeCSV(&c); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden.json", j.Bytes())
	goldenCompare(t, "golden_long.csv", c.Bytes())
	for _, w := range rs.WideTables() {
		var buf bytes.Buffer
		if err := w.Table.EncodeCSV(&buf); err != nil {
			t.Fatal(err)
		}
		goldenCompare(t, "golden_wide_"+w.Experiment+".csv", buf.Bytes())
	}
	decoded, err := DecodeJSON(bytes.NewReader(j.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := decoded.EncodeJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), j.Bytes()) {
		t.Fatal("golden JSON did not survive decode/re-encode")
	}
}
