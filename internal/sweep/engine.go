package sweep

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"gncg/internal/parallel"
)

// Config controls one engine run.
type Config struct {
	Quick   bool // shrink grids to their CI-friendly size
	Workers int  // worker goroutines; <= 0 means GOMAXPROCS
	Shards  int  // total shard count; <= 1 disables sharding
	Shard   int  // this process's shard index in [0, Shards)
	// Progress, if non-nil, receives one human-readable line per
	// completed cell. Progress output is advisory and must never be mixed
	// into result encoding (it depends on execution order).
	Progress func(line string)
}

// CellResult is the outcome of one executed cell. Title and Note are
// rendering metadata copied from the experiment; they are not encoded.
type CellResult struct {
	Seq        int // global cell sequence number across the selected experiments
	Experiment string
	Title      string
	Note       string
	Cell       Params
	Records    []Record
	Err        string // non-empty if the cell panicked
}

// ResultSet is an ordered collection of cell results. Sets produced by
// Run are already in sequence order; Merge restores that order across
// shard outputs.
type ResultSet struct {
	Cells []CellResult
}

// FirstErr returns the error of the lowest-sequence failed cell, if any.
func (rs *ResultSet) FirstErr() error {
	for _, c := range rs.Cells {
		if c.Err != "" {
			return fmt.Errorf("sweep: cell %d (%s) failed: %s", c.Seq, c.Experiment, c.Err)
		}
	}
	return nil
}

type cellTask struct {
	seq  int
	exp  Experiment
	cell Params
}

// Run expands the selected experiments into cells, assigns each cell a
// global sequence number, keeps the cells belonging to this shard
// (seq mod Shards == Shard) and executes them over a bounded worker pool.
// Results are placed by index, so the returned set's order — and its
// encoded bytes — are independent of worker count and scheduling.
func Run(exps []Experiment, cfg Config) (*ResultSet, error) {
	shards := cfg.Shards
	if shards <= 1 {
		shards = 1
	}
	if cfg.Shard < 0 || cfg.Shard >= shards {
		return nil, fmt.Errorf("sweep: shard %d out of range [0,%d)", cfg.Shard, shards)
	}
	var tasks []cellTask
	seq := 0
	for _, e := range exps {
		for _, cell := range e.Cells(cfg.Quick) {
			if seq%shards == cfg.Shard {
				tasks = append(tasks, cellTask{seq: seq, exp: e, cell: cell})
			}
			seq++
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = parallel.Workers()
	}
	results := make([]CellResult, len(tasks))
	var done atomic.Int64
	var progressMu sync.Mutex
	parallel.ForWorkers(len(tasks), workers, func(i int) {
		t := tasks[i]
		res := CellResult{Seq: t.seq, Experiment: t.exp.Name, Title: t.exp.Title,
			Note: t.exp.Note, Cell: t.cell}
		func() {
			defer func() {
				if r := recover(); r != nil {
					res.Err = fmt.Sprintf("panic: %v", r)
				}
			}()
			res.Records = t.exp.Run(t.cell)
		}()
		results[i] = res
		if cfg.Progress != nil {
			d := done.Add(1)
			progressMu.Lock()
			cfg.Progress(fmt.Sprintf("[%d/%d] %s cell %d done (%d records)",
				d, len(tasks), t.exp.Name, t.cell.Index, len(res.Records)))
			progressMu.Unlock()
		}
	})
	return &ResultSet{Cells: results}, nil
}

// Merge combines shard outputs into one set ordered by global sequence
// number, deduplicating overlapping cells. Merging the outputs of all K
// shards of the same run reproduces the unsharded result exactly.
func Merge(sets ...*ResultSet) *ResultSet {
	var all []CellResult
	seen := map[int]bool{}
	for _, rs := range sets {
		if rs == nil {
			continue
		}
		for _, c := range rs.Cells {
			if seen[c.Seq] {
				continue
			}
			seen[c.Seq] = true
			all = append(all, c)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	return &ResultSet{Cells: all}
}
