package sweep

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gncg/internal/parallel"
	"gncg/internal/report"
)

// Config controls one engine run.
type Config struct {
	Quick   bool // shrink spaces to their CI-friendly size
	Workers int  // worker goroutines; <= 0 means GOMAXPROCS
	Shards  int  // total shard count; <= 1 disables sharding
	Shard   int  // this process's shard index in [0, Shards)
	// Progress, if non-nil, receives one human-readable line per
	// completed cell. Progress output is advisory and must never be mixed
	// into result encoding (it depends on execution order).
	Progress func(line string)
}

// CellResult is the outcome of one executed cell. Title, Note and Schema
// are rendering metadata copied from the experiment; they are not
// encoded (AttachMeta restores them on decoded sets).
type CellResult struct {
	Seq        int // global cell sequence number across the selected experiments
	Experiment string
	Title      string
	Note       string
	Schema     []string
	Cell       Params
	Records    []Record
	Err        string // non-empty if the cell panicked
}

// ResultSet is an ordered collection of cell results. Sets produced by
// Run are already in sequence order; Merge restores that order across
// shard outputs.
type ResultSet struct {
	Cells []CellResult
}

// FirstErr returns the error of the lowest-sequence failed cell, if any.
func (rs *ResultSet) FirstErr() error {
	for _, c := range rs.Cells {
		if c.Err != "" {
			return fmt.Errorf("sweep: cell %d (%s) failed: %s", c.Seq, c.Experiment, c.Err)
		}
	}
	return nil
}

// AttachMeta restores rendering metadata (Title, Note, Schema) on the
// set's cells from the global registry, matched by experiment name.
// Decoded sets carry none — the interchange format excludes rendering
// metadata — so merged output would otherwise render plainly and lack
// wide-CSV schemas. Cells of unknown experiments are left untouched.
func (rs *ResultSet) AttachMeta() {
	for i := range rs.Cells {
		if e, ok := Lookup(rs.Cells[i].Experiment); ok {
			rs.Cells[i].Title = e.Title
			rs.Cells[i].Note = e.Note
			rs.Cells[i].Schema = e.Schema
		}
	}
}

type cellTask struct {
	seq  int
	exp  Experiment
	cell Params
}

// CellRef identifies one cell of a selection's deterministic enumeration:
// its global sequence number, owning experiment and cell index. The
// sequence number alone is a complete, serializable cell key for a fixed
// (selection, quick) pair — shard assignment, job-store journals and
// lease protocols key on it.
type CellRef struct {
	Seq        int
	Experiment string
	Index      int
}

// Enumerate expands the selected experiments in order and assigns global
// sequence numbers. This is exactly the enumeration Run and RunSeqs
// execute, so external coordinators (lease queues, job stores) can plan
// work without diverging from a run.
func Enumerate(exps []Experiment, quick bool) []CellRef {
	var refs []CellRef
	for _, e := range exps {
		for _, cell := range e.Cells(quick) {
			refs = append(refs, CellRef{Seq: len(refs), Experiment: e.Name, Index: cell.Index})
		}
	}
	return refs
}

// Run expands the selected experiments into cells, assigns each cell a
// global sequence number, keeps the cells belonging to this shard
// (seq mod Shards == Shard) and executes them over a bounded worker pool.
// Results are placed by index, so the returned set's order — and its
// encoded bytes — are independent of worker count and scheduling.
func Run(exps []Experiment, cfg Config) (*ResultSet, error) {
	shards := cfg.Shards
	if shards <= 1 {
		shards = 1
	}
	if cfg.Shard < 0 || cfg.Shard >= shards {
		return nil, fmt.Errorf("sweep: shard %d out of range [0,%d)", cfg.Shard, shards)
	}
	var tasks []cellTask
	seq := 0
	for _, e := range exps {
		for _, cell := range e.Cells(cfg.Quick) {
			if seq%shards == cfg.Shard {
				tasks = append(tasks, cellTask{seq: seq, exp: e, cell: cell})
			}
			seq++
		}
	}
	return runTasks(tasks, cfg)
}

// RunSeqs executes exactly the cells with the given global sequence
// numbers (in the enumeration of Enumerate) and returns their results in
// ascending sequence order, whatever order seqs came in. It is the
// work-stealing coordinator's execution primitive: a leased cell range is
// an arbitrary seq set, not a residue class. Unknown sequence numbers are
// an error — they mean the caller's enumeration disagrees with this
// binary's.
func RunSeqs(exps []Experiment, cfg Config, seqs []int) (*ResultSet, error) {
	want := make(map[int]bool, len(seqs))
	for _, s := range seqs {
		want[s] = true
	}
	var tasks []cellTask
	seq := 0
	for _, e := range exps {
		for _, cell := range e.Cells(cfg.Quick) {
			if want[seq] {
				tasks = append(tasks, cellTask{seq: seq, exp: e, cell: cell})
				delete(want, seq)
			}
			seq++
		}
	}
	if len(want) > 0 {
		return nil, fmt.Errorf("sweep: %d requested seqs out of range [0,%d) — enumeration mismatch", len(want), seq)
	}
	return runTasks(tasks, cfg)
}

// runTasks executes an already-planned task list (ascending by seq) over
// a bounded worker pool, placing results by index so the returned set's
// order — and its encoded bytes — are independent of worker count and
// scheduling.
func runTasks(tasks []cellTask, cfg Config) (*ResultSet, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = parallel.Workers()
	}
	results := make([]CellResult, len(tasks))
	var done atomic.Int64
	var progressMu sync.Mutex
	parallel.ForWorkers(len(tasks), workers, func(i int) {
		t := tasks[i]
		res := CellResult{Seq: t.seq, Experiment: t.exp.Name, Title: t.exp.Title,
			Note: t.exp.Note, Schema: t.exp.Schema, Cell: t.cell}
		func() {
			defer func() {
				if r := recover(); r != nil {
					res.Err = fmt.Sprintf("panic: %v", r)
				}
			}()
			res.Records = t.exp.Run(t.cell)
		}()
		results[i] = res
		if cfg.Progress != nil {
			d := done.Add(1)
			progressMu.Lock()
			cfg.Progress(fmt.Sprintf("[%d/%d] %s cell %d done (%d records)",
				d, len(tasks), t.exp.Name, t.cell.Index, len(res.Records)))
			progressMu.Unlock()
		}
	})
	return &ResultSet{Cells: results}, nil
}

// paramSig renders a cell's ordered axis values into a comparable
// signature. Comparison goes through the deterministic encoding (not ==)
// so NaN-valued axes compare equal to themselves and int/int64/float
// spellings of the same literal agree across encode/decode.
func paramSig(p Params) string {
	var b strings.Builder
	for _, kv := range p.Values {
		b.WriteString(report.JSONValue(kv.Axis))
		b.WriteByte(':')
		b.WriteString(report.JSONValue(kv.Value))
		b.WriteByte(';')
	}
	return b.String()
}

// axisSig renders a cell's axis name list. Names are JSON-quoted (like
// paramSig's) so a name containing the separator cannot collide with a
// different axis set.
func axisSig(p Params) string {
	var b strings.Builder
	for _, v := range p.Values {
		b.WriteString(report.JSONValue(v.Axis))
		b.WriteByte(',')
	}
	return b.String()
}

// resultSig renders a cell's payload — records and captured error —
// through the same deterministic encoding used for comparison of
// duplicates. Same-run shards are byte-deterministic, so two legitimate
// copies of a cell always agree; a mismatch means the inputs mix runs.
func resultSig(c CellResult) string {
	var b strings.Builder
	for _, r := range c.Records {
		for _, f := range r.Fields {
			b.WriteString(report.JSONValue(f.Key))
			b.WriteByte(':')
			b.WriteString(report.JSONValue(f.Value))
			b.WriteByte(';')
		}
		b.WriteByte('|')
	}
	b.WriteString(report.JSONValue(c.Err))
	return b.String()
}

// Merge combines shard outputs into one set ordered by global sequence
// number, deduplicating overlapping cells. Merging the outputs of all K
// shards of the same run reproduces the unsharded result exactly.
//
// Merge fails loudly on disagreement instead of silently preferring one
// side: duplicate sequence numbers must carry the same experiment, cell
// index, axis values, records and error, and all cells of one
// experiment must share the same axis set. These conditions hold
// trivially for shards of one run (cells are byte-deterministic); a
// violation means the inputs mix runs of different binaries or
// selections, where a silent merge would drop dimensions or whole
// result versions.
func Merge(sets ...*ResultSet) (*ResultSet, error) {
	var all []CellResult
	seen := map[int]int{} // seq -> index in all
	for _, rs := range sets {
		if rs == nil {
			continue
		}
		for _, c := range rs.Cells {
			j, dup := seen[c.Seq]
			if !dup {
				seen[c.Seq] = len(all)
				all = append(all, c)
				continue
			}
			have := all[j]
			if have.Experiment != c.Experiment || have.Cell.Index != c.Cell.Index ||
				paramSig(have.Cell) != paramSig(c.Cell) {
				return nil, fmt.Errorf(
					"sweep: merge: cell seq %d appears as %s[%d]{%s} and %s[%d]{%s}; inputs are shards of different runs",
					c.Seq, have.Experiment, have.Cell.Index, paramSig(have.Cell),
					c.Experiment, c.Cell.Index, paramSig(c.Cell))
			}
			if resultSig(have) != resultSig(c) {
				return nil, fmt.Errorf(
					"sweep: merge: cell seq %d (%s[%d]) appears with two different result payloads; inputs are shards of different runs",
					c.Seq, c.Experiment, c.Cell.Index)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	axes := map[string]string{}
	for _, c := range all {
		sig := axisSig(c.Cell)
		if have, ok := axes[c.Experiment]; !ok {
			axes[c.Experiment] = sig
		} else if have != sig {
			return nil, fmt.Errorf(
				"sweep: merge: experiment %q has cells with differing axes (%q vs %q); inputs are shards of different binaries",
				c.Experiment, have, sig)
		}
	}
	return &ResultSet{Cells: all}, nil
}
