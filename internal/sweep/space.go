package sweep

import "fmt"

// Axis is one named, typed dimension of a parameter Space: an ordered
// value list the space crosses with its other axes. Values are
// homogeneous — build axes with the typed constructors (Floats, Ints,
// Int64s, Strings, SeedAxis) so every cell's accessor of the matching
// type succeeds. The zoo of supported value types is exactly what the
// deterministic encoders render token-exactly: string, float64, int and
// int64.
type Axis struct {
	Name   string
	Values []any
}

// Floats builds a float-valued axis (edge prices, norms, thresholds).
func Floats(name string, vs ...float64) Axis {
	a := Axis{Name: name, Values: make([]any, len(vs))}
	for i, v := range vs {
		a.Values[i] = v
	}
	return a
}

// Ints builds an int-valued axis (instance sizes, ladder rungs).
func Ints(name string, vs ...int) Axis {
	a := Axis{Name: name, Values: make([]any, len(vs))}
	for i, v := range vs {
		a.Values[i] = v
	}
	return a
}

// Int64s builds an int64-valued axis (by convention, RNG seeds).
func Int64s(name string, vs ...int64) Axis {
	a := Axis{Name: name, Values: make([]any, len(vs))}
	for i, v := range vs {
		a.Values[i] = v
	}
	return a
}

// Strings builds a string-valued axis (host classes, schedulers,
// policies — categorical selectors of any kind).
func Strings(name string, vs ...string) Axis {
	a := Axis{Name: name, Values: make([]any, len(vs))}
	for i, v := range vs {
		a.Values[i] = v
	}
	return a
}

// Seq returns [0, n) as int64 seeds: the common "n independent trials"
// seed dimension.
func Seq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// SeedAxis builds the conventional trial axis: int64 seeds 0..n-1 under
// the name "seed", which Params.Seed and Params.RNG key on.
func SeedAxis(n int) Axis { return Int64s("seed", Seq(n)...) }

// Space is an open, typed parameter space: the cross product of its axes
// expands into cells. Axis order is part of the sharding contract — axis
// 0 varies slowest (outermost), the last axis fastest — so cell identity
// and shard assignment never depend on execution context. An entirely
// empty space expands into exactly one cell with no axes (the "scalar
// experiment" case).
type Space struct {
	Axes []Axis
}

// Cells expands the space in declaration order, assigning each cell its
// index in the enumeration. It panics on empty or duplicate axis names
// and on axes with no values: a declared axis must contribute to the
// product (spaces that shrink in quick mode shorten value lists, they do
// not empty them).
func (sp Space) Cells() []Params {
	total := 1
	seen := map[string]bool{}
	for _, a := range sp.Axes {
		if a.Name == "" {
			panic("sweep: axis with empty name")
		}
		if seen[a.Name] {
			panic(fmt.Sprintf("sweep: duplicate axis %q", a.Name))
		}
		seen[a.Name] = true
		if len(a.Values) == 0 {
			panic(fmt.Sprintf("sweep: axis %q has no values", a.Name))
		}
		total *= len(a.Values)
	}
	cells := make([]Params, 0, total)
	idx := make([]int, len(sp.Axes))
	for c := 0; c < total; c++ {
		var vals []AxisValue
		if len(sp.Axes) > 0 {
			vals = make([]AxisValue, len(sp.Axes))
			for ai, a := range sp.Axes {
				vals[ai] = AxisValue{Axis: a.Name, Value: a.Values[idx[ai]]}
			}
		}
		cells = append(cells, Params{Index: c, Values: vals})
		for ai := len(sp.Axes) - 1; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(sp.Axes[ai].Values) {
				break
			}
			idx[ai] = 0
		}
	}
	return cells
}
