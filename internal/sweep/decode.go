package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// DecodeJSON parses a result set previously written by EncodeJSON. It is
// the read side of the shard workflow: shard outputs decode back into
// ResultSets, Merge combines them, and re-encoding the merged set is
// byte-identical to the unsharded run. Field order inside records is
// preserved (it is part of a record's identity) and numeric values
// round-trip exactly: integer literals decode as int, everything else as
// float64, matching the formatting rules of report.JSONValue. Rendering
// metadata (Title, Note) is not part of the interchange format, so
// decoded sets render plainly but encode identically.
func DecodeJSON(r io.Reader) (*ResultSet, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	if err := expectDelim(dec, '{'); err != nil {
		return nil, fmt.Errorf("sweep: decode: %w", err)
	}
	rs := &ResultSet{}
	for dec.More() {
		key, err := stringToken(dec)
		if err != nil {
			return nil, fmt.Errorf("sweep: decode: %w", err)
		}
		if key != "cells" {
			if err := skipValue(dec); err != nil {
				return nil, fmt.Errorf("sweep: decode %q: %w", key, err)
			}
			continue
		}
		if err := expectDelim(dec, '['); err != nil {
			return nil, fmt.Errorf("sweep: decode cells: %w", err)
		}
		for dec.More() {
			c, err := decodeCell(dec)
			if err != nil {
				return nil, fmt.Errorf("sweep: decode cell %d: %w", len(rs.Cells), err)
			}
			rs.Cells = append(rs.Cells, c)
		}
		if err := expectDelim(dec, ']'); err != nil {
			return nil, fmt.Errorf("sweep: decode cells: %w", err)
		}
	}
	if err := expectDelim(dec, '}'); err != nil {
		return nil, fmt.Errorf("sweep: decode: %w", err)
	}
	// Trailing content would be silently dropped cells (e.g. `cat`-ed
	// shard files passed as one input): require EOF.
	if tok, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("sweep: decode: trailing content after result set (token %v, err %v); pass shard files separately instead of concatenating", tok, err)
	}
	return rs, nil
}

// DecodeCellJSON parses one cell object previously rendered by CellJSON
// (or embedded in an EncodeJSON set). Re-encoding the decoded cell with
// CellJSON reproduces the input bytes — the same round-trip contract
// DecodeJSON gives whole sets — so journaled cells replay exactly.
func DecodeCellJSON(data []byte) (CellResult, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	c, err := decodeCell(dec)
	if err != nil {
		return c, fmt.Errorf("sweep: decode cell: %w", err)
	}
	if tok, err := dec.Token(); err != io.EOF {
		return c, fmt.Errorf("sweep: decode cell: trailing content (token %v, err %v)", tok, err)
	}
	return c, nil
}

func decodeCell(dec *json.Decoder) (CellResult, error) {
	var c CellResult
	if err := expectDelim(dec, '{'); err != nil {
		return c, err
	}
	for dec.More() {
		key, err := stringToken(dec)
		if err != nil {
			return c, err
		}
		switch key {
		case "seq":
			n, err := intToken(dec)
			if err != nil {
				return c, err
			}
			c.Seq = n
		case "experiment":
			s, err := stringToken(dec)
			if err != nil {
				return c, err
			}
			c.Experiment = s
		case "cell":
			n, err := intToken(dec)
			if err != nil {
				return c, err
			}
			c.Cell.Index = n
		case "params":
			if err := decodeParams(dec, &c.Cell); err != nil {
				return c, err
			}
		case "err":
			s, err := stringToken(dec)
			if err != nil {
				return c, err
			}
			c.Err = s
		case "records":
			if err := expectDelim(dec, '['); err != nil {
				return c, err
			}
			c.Records = []Record{}
			for dec.More() {
				r, err := decodeRecord(dec)
				if err != nil {
					return c, err
				}
				c.Records = append(c.Records, r)
			}
			if err := expectDelim(dec, ']'); err != nil {
				return c, err
			}
		default:
			if err := skipValue(dec); err != nil {
				return c, err
			}
		}
	}
	if err := expectDelim(dec, '}'); err != nil {
		return c, err
	}
	c.Cell.Experiment = c.Experiment
	return c, nil
}

// decodeParams restores the cell's ordered axis values. Keys are open:
// any axis name round-trips, preserving declaration order, so shard
// files written by a newer binary (with axes this one has never heard
// of) survive decode+merge instead of silently losing dimensions — the
// disagreement checks in Merge then compare full param sets. Values are
// typed by literal form (integer literals as int, other numbers as
// float64, strings as strings), which re-encodes byte-identically; the
// typed accessors coerce between numeric spellings, and Float
// additionally understands the non-finite string encodings.
func decodeParams(dec *json.Decoder, p *Params) error {
	if err := expectDelim(dec, '{'); err != nil {
		return err
	}
	for dec.More() {
		key, err := stringToken(dec)
		if err != nil {
			return err
		}
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		v, err := scalarValue(tok)
		if err != nil {
			return fmt.Errorf("param %q: %w", key, err)
		}
		p.Values = append(p.Values, AxisValue{Axis: key, Value: v})
	}
	return expectDelim(dec, '}')
}

func decodeRecord(dec *json.Decoder) (Record, error) {
	var r Record
	if err := expectDelim(dec, '{'); err != nil {
		return r, err
	}
	for dec.More() {
		key, err := stringToken(dec)
		if err != nil {
			return r, err
		}
		tok, err := dec.Token()
		if err != nil {
			return r, err
		}
		v, err := scalarValue(tok)
		if err != nil {
			return r, fmt.Errorf("record key %q: %w", key, err)
		}
		r.Fields = append(r.Fields, Field{Key: key, Value: v})
	}
	return r, expectDelim(dec, '}')
}

// scalarValue converts a decoded token into the value type whose
// JSONValue/Precise rendering reproduces the original literal: integer
// literals become int, other numbers float64 (both formats round-trip
// through strconv exactly), strings, bools and null pass through.
func scalarValue(tok json.Token) (any, error) {
	switch v := tok.(type) {
	case json.Number:
		// Negative zero parses as integer 0 but must stay a float to
		// re-encode as "-0".
		if i, err := strconv.ParseInt(string(v), 10, 64); err == nil && string(v) != "-0" {
			return int(i), nil
		}
		if u, err := strconv.ParseUint(string(v), 10, 64); err == nil {
			return u, nil
		}
		f, err := v.Float64()
		if err != nil {
			return nil, fmt.Errorf("invalid number %q", string(v))
		}
		return f, nil
	case string:
		return v, nil
	case bool:
		return v, nil
	case nil:
		return nil, nil
	default:
		return nil, fmt.Errorf("unexpected token %v (records hold scalars only)", tok)
	}
}

func expectDelim(dec *json.Decoder, want json.Delim) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if got, ok := tok.(json.Delim); !ok || got != want {
		return fmt.Errorf("expected %q, got %v", want, tok)
	}
	return nil
}

func stringToken(dec *json.Decoder) (string, error) {
	tok, err := dec.Token()
	if err != nil {
		return "", err
	}
	s, ok := tok.(string)
	if !ok {
		return "", fmt.Errorf("expected string, got %v", tok)
	}
	return s, nil
}

func intToken(dec *json.Decoder) (int, error) {
	tok, err := dec.Token()
	if err != nil {
		return 0, err
	}
	num, ok := tok.(json.Number)
	if !ok {
		return 0, fmt.Errorf("expected number, got %v", tok)
	}
	i, err := strconv.ParseInt(string(num), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("expected integer, got %q", string(num))
	}
	return int(i), nil
}

// skipValue consumes exactly one JSON value (scalar, object or array).
func skipValue(dec *json.Decoder) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	d, ok := tok.(json.Delim)
	if !ok {
		return nil // scalar
	}
	switch d {
	case '{', '[':
		for dec.More() {
			if err := skipValue(dec); err != nil {
				return err
			}
		}
		_, err := dec.Token() // closing delim
		return err
	default:
		return fmt.Errorf("unexpected %q", d)
	}
}
