package sweep

import (
	"bytes"
	"strings"
	"testing"
)

// TestEnumerateMatchesRun: Enumerate's refs are exactly the cells Run
// executes — same count, ascending seqs, matching experiment and index —
// so coordinators planning from Enumerate can never diverge from a run.
func TestEnumerateMatchesRun(t *testing.T) {
	exps := toyExperiments()
	refs := Enumerate(exps, false)
	rs, err := Run(exps, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != len(rs.Cells) {
		t.Fatalf("Enumerate has %d refs, Run produced %d cells", len(refs), len(rs.Cells))
	}
	for i, ref := range refs {
		c := rs.Cells[i]
		if ref.Seq != i || ref.Seq != c.Seq || ref.Experiment != c.Experiment || ref.Index != c.Cell.Index {
			t.Fatalf("ref %d = %+v, cell = {seq %d exp %s idx %d}",
				i, ref, c.Seq, c.Experiment, c.Cell.Index)
		}
	}
}

// TestRunSeqsMatchesRun: executing an arbitrary (unbalanced, shuffled)
// partition of the sequence space through RunSeqs and merging is
// byte-identical to an unsharded Run — the lease-range execution
// contract of the work-stealing coordinator.
func TestRunSeqsMatchesRun(t *testing.T) {
	exps := toyExperiments()
	ref, err := Run(exps, Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var refJSON bytes.Buffer
	if err := ref.EncodeJSON(&refJSON); err != nil {
		t.Fatal(err)
	}
	total := len(Enumerate(exps, true))
	// Three "leases" of very different sizes, each in scrambled order.
	var parts [][]int
	parts = append(parts, []int{total - 1, 0})
	var mid, rest []int
	for s := 1; s < total-1; s++ {
		if s%3 == 0 {
			mid = append(mid, s)
		} else {
			rest = append(rest, s)
		}
	}
	// Reverse to prove input order is irrelevant.
	for i, j := 0, len(rest)-1; i < j; i, j = i+1, j-1 {
		rest[i], rest[j] = rest[j], rest[i]
	}
	parts = append(parts, mid, rest)
	var sets []*ResultSet
	for _, seqs := range parts {
		rs, err := RunSeqs(exps, Config{Quick: true, Workers: 3}, seqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(rs.Cells); i++ {
			if rs.Cells[i-1].Seq >= rs.Cells[i].Seq {
				t.Fatalf("RunSeqs results not in ascending seq order: %d then %d",
					rs.Cells[i-1].Seq, rs.Cells[i].Seq)
			}
		}
		sets = append(sets, rs)
	}
	merged := mustMerge(t, sets...)
	var got bytes.Buffer
	if err := merged.EncodeJSON(&got); err != nil {
		t.Fatal(err)
	}
	if got.String() != refJSON.String() {
		t.Fatal("merged RunSeqs partitions differ from unsharded Run")
	}
}

func TestRunSeqsUnknownSeq(t *testing.T) {
	exps := toyExperiments()
	total := len(Enumerate(exps, true))
	if _, err := RunSeqs(exps, Config{Quick: true}, []int{0, total}); err == nil {
		t.Fatal("RunSeqs accepted an out-of-range seq")
	}
}

// TestCellJSONRoundTrip: CellJSON renders exactly the per-cell line
// EncodeJSON embeds, and DecodeCellJSON+CellJSON is a byte-exact round
// trip — the property that lets the job store journal cells verbatim and
// replay them into output identical to an uninterrupted run.
func TestCellJSONRoundTrip(t *testing.T) {
	exps := toyExperiments()
	rs, err := Run(exps, Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var whole bytes.Buffer
	if err := rs.EncodeJSON(&whole); err != nil {
		t.Fatal(err)
	}
	for _, c := range rs.Cells {
		line := CellJSON(c)
		if !strings.Contains(whole.String(), "\n    "+string(line)) {
			t.Fatalf("CellJSON of seq %d not embedded verbatim in EncodeJSON output:\n%s",
				c.Seq, line)
		}
		back, err := DecodeCellJSON(line)
		if err != nil {
			t.Fatalf("seq %d: %v", c.Seq, err)
		}
		if again := CellJSON(back); !bytes.Equal(again, line) {
			t.Fatalf("seq %d round trip differs:\n in: %s\nout: %s", c.Seq, line, again)
		}
	}
	if _, err := DecodeCellJSON([]byte(`{"seq": 0, "records": []} trailing`)); err == nil {
		t.Fatal("DecodeCellJSON accepted trailing content")
	}
}
