package bestresponse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gncg/internal/game"
)

// TestExactMatchesBruteForceUnderTraffic: the UMFL reduction remains
// exact for the traffic-weighted extension (client connection costs are
// scaled by the demand), verified against exhaustive enumeration with
// random asymmetric demand matrices.
func TestExactMatchesBruteForceUnderTraffic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		g := randomPointGame(rng, n, 0.3+2*rng.Float64())
		tr := make([][]float64, n)
		for u := range tr {
			tr[u] = make([]float64, n)
			for v := range tr[u] {
				if u != v {
					// Mix of zero, fractional and heavy demands.
					switch rng.Intn(3) {
					case 0:
						tr[u][v] = 0
					case 1:
						tr[u][v] = rng.Float64()
					default:
						tr[u][v] = 1 + rng.Float64()*4
					}
				}
			}
		}
		if err := g.SetTraffic(tr); err != nil {
			return false
		}
		s := randomState(rng, g, 0.35)
		for u := 0; u < n; u++ {
			exact := Exact(s, u)
			brute := BruteForce(s, u)
			bothInf := math.IsInf(exact.Cost, 1) && math.IsInf(brute.Cost, 1)
			if !bothInf && math.Abs(exact.Cost-brute.Cost) > 1e-6 {
				t.Logf("seed %d agent %d: exact %v brute %v", seed, u, exact.Cost, brute.Cost)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestTrafficSkewsBestResponse: an agent with demand concentrated on one
// far node buys towards it even when uniform demand would not.
func TestTrafficSkewsBestResponse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomPointGame(rng, 5, 2)
	// Star around 0; agent 4's demand is entirely towards node 1.
	tr := make([][]float64, 5)
	for u := range tr {
		tr[u] = make([]float64, 5)
		for v := range tr[u] {
			if u != v {
				tr[u][v] = 1
			}
		}
	}
	for v := 0; v < 4; v++ {
		tr[4][v] = 0
	}
	tr[4][1] = 100
	if err := g.SetTraffic(tr); err != nil {
		t.Fatal(err)
	}
	s := game.NewState(g, game.StarProfile(5, 0))
	br := Exact(s, 4)
	if !br.Strategy.Has(1) && !s.P.HasEdge(4, 1) {
		// With demand weight 100, the detour through the star center must
		// be worth shortcutting unless the direct edge is barely longer.
		detour := g.Host.Weight(4, 0) + g.Host.Weight(0, 1)
		direct := g.Host.Weight(4, 1)
		if 100*(detour-direct) > g.Alpha*direct+1e-9 {
			t.Fatalf("heavy demand towards 1 not served: BR = %v", br.Strategy.Elems())
		}
	}
}
