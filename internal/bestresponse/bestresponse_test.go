package bestresponse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gncg/internal/game"
	"gncg/internal/metric"
)

func randomPointGame(rng *rand.Rand, n int, alpha float64) *game.Game {
	coords := make([][]float64, n)
	for i := range coords {
		coords[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	pts, err := metric.NewPoints(coords, 2)
	if err != nil {
		panic(err)
	}
	return game.New(game.NewHost(pts), alpha)
}

func randomState(rng *rand.Rand, g *game.Game, p float64) *game.State {
	n := g.N()
	prof := game.EmptyProfile(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				prof.Buy(u, v)
			}
		}
	}
	return game.NewState(g, prof)
}

// TestExactMatchesBruteForce is the ground-truth test for the UMFL
// mapping: the facility-location best response must equal the exhaustive
// best response on the real network, for every agent, on random states.
func TestExactMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6) // brute force is 2^(n-1) network evaluations
		g := randomPointGame(rng, n, 0.2+3*rng.Float64())
		s := randomState(rng, g, 0.35)
		for u := 0; u < n; u++ {
			exact := Exact(s, u)
			brute := BruteForce(s, u)
			if math.Abs(exact.Cost-brute.Cost) > 1e-6 {
				t.Logf("seed %d agent %d: exact %v brute %v", seed, u, exact.Cost, brute.Cost)
				return false
			}
			// The returned strategy must actually achieve the reported cost.
			check := s.Clone()
			check.SetStrategy(u, exact.Strategy)
			if math.Abs(check.Cost(u)-exact.Cost) > 1e-6 {
				t.Logf("seed %d agent %d: strategy cost %v reported %v", seed, u, check.Cost(u), exact.Cost)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestExactOnNonMetricHost: the UMFL identity holds for arbitrary hosts,
// not just metric ones — verify against brute force on random non-metric
// weight matrices.
func TestExactOnNonMetricHost(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Float64() * 10
				w[i][j], w[j][i] = v, v
			}
		}
		h, err := game.HostFromMatrix(w)
		if err != nil {
			return false
		}
		g := game.New(h, 0.3+2*rng.Float64())
		s := randomState(rng, g, 0.3)
		for u := 0; u < n; u++ {
			if math.Abs(Exact(s, u).Cost-BruteForce(s, u).Cost) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestExactNeverRebuysGiftedEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomPointGame(rng, 7, 1)
	s := randomState(rng, g, 0.5)
	for u := 0; u < 7; u++ {
		br := Exact(s, u)
		for _, v := range br.Strategy.Elems() {
			if s.P.Buys(v, u) {
				t.Fatalf("agent %d best response re-buys edge already bought by %d", u, v)
			}
		}
	}
}

// TestApproxWithin3OnMetric: Thm 3 — local-search responses are
// 3-approximate best responses on metric hosts.
func TestApproxWithin3OnMetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		g := randomPointGame(rng, n, 0.2+3*rng.Float64())
		s := randomState(rng, g, 0.3)
		for u := 0; u < n; u++ {
			approx := ApproxLocalSearch(s, u)
			exact := Exact(s, u)
			if math.IsInf(approx.Cost, 1) {
				return false
			}
			if approx.Cost > 3*exact.Cost+1e-6 {
				t.Logf("seed %d agent %d: approx %v > 3x exact %v", seed, u, approx.Cost, exact.Cost)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestIsNashOnKnownEquilibrium(t *testing.T) {
	// Unit NCG, alpha = 2: center-owned star is a classic NE.
	n := 6
	g := game.New(game.NewHost(metric.Unit{N: n}), 2)
	p := game.EmptyProfile(n)
	for v := 1; v < n; v++ {
		p.Buy(0, v)
	}
	s := game.NewState(g, p)
	if !IsNash(s) {
		t.Fatal("unit star at alpha=2 must be a Nash equilibrium")
	}
	if got := NashApproxFactor(s); got != 1 {
		t.Fatalf("NE has approx factor %v, want 1", got)
	}
	if _, ok := FirstDeviation(s); ok {
		t.Fatal("NE must have no deviation")
	}
}

func TestIsNashDetectsDeviation(t *testing.T) {
	// Unit NCG, alpha = 0.5: a star is NOT an NE (leaves want more edges).
	n := 6
	g := game.New(game.NewHost(metric.Unit{N: n}), 0.5)
	p := game.EmptyProfile(n)
	for v := 1; v < n; v++ {
		p.Buy(0, v)
	}
	s := game.NewState(g, p)
	if IsNash(s) {
		t.Fatal("unit star at alpha=0.5 must not be a Nash equilibrium")
	}
	dev, ok := FirstDeviation(s)
	if !ok {
		t.Fatal("deviation expected")
	}
	check := s.Clone()
	check.SetStrategy(dev.Agent, dev.Strategy)
	if !(check.Cost(dev.Agent) < s.Cost(dev.Agent)) {
		t.Fatal("reported deviation does not improve")
	}
	if f := NashApproxFactor(s); f <= 1 {
		t.Fatalf("non-NE approx factor = %v, want > 1", f)
	}
}

func TestExactFromEmptyProfile(t *testing.T) {
	// From the empty network an agent's best response must buy something
	// (infinite cost otherwise) and the cheapest full-connection choice
	// for n=2 is the single edge.
	rng := rand.New(rand.NewSource(9))
	g := randomPointGame(rng, 2, 1)
	s := game.NewState(g, game.EmptyProfile(2))
	br := Exact(s, 0)
	if math.IsInf(br.Cost, 1) || br.Strategy.Count() != 1 {
		t.Fatalf("best response from empty 2-agent game: cost %v strategy %v", br.Cost, br.Strategy.Elems())
	}
	want := (g.Alpha + 1) * g.Host.Weight(0, 1)
	if math.Abs(br.Cost-want) > 1e-9 {
		t.Fatalf("cost = %v, want %v", br.Cost, want)
	}
}

// TestNashApproxFactorMonotone: states closer to equilibrium (after
// applying a best response) cannot have a larger deviation incentive for
// the agent that moved.
func TestNashApproxFactorMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := randomPointGame(rng, 7, 1.5)
	s := randomState(rng, g, 0.4)
	br := Exact(s, 3)
	s.SetStrategy(3, br.Strategy)
	again := Exact(s, 3)
	if g.Improves(again.Cost, s.Cost(3)) {
		t.Fatal("agent can improve immediately after playing its exact best response")
	}
}
