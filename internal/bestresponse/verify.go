// Nash-tier concurrent verification. The exact tier shards one exact
// best-response computation per agent across a bounded worker pool —
// each check is read-only against the frozen state (BuildInstance goes
// through the state's concurrent-read-safe distance cache), so no
// per-worker cloning is needed, unlike the greedy tier's speculative
// scans (game.VerifyGreedyEquilibrium).
//
// The greedy tier's gain-bound certificates do NOT transfer here: a
// GainCertificate bounds single-edge moves, while a Nash deviation may
// buy any subset of edges at once, and per-edge gain bounds do not add
// up soundly across a set (one acquired edge changes the distances the
// next edge's bound was computed from). Every agent therefore pays for
// a real best-response computation at this tier — which is why it is
// reserved for small n (poa.VerifyLowerBound's exactNashLimit).
//
// The tier is additionally model-gated: its best responses come from
// the UMFL reduction, which prices each acquired edge independently.
// Cost models whose multi-edge deviations are NOT a sum of per-edge
// terms — the budget model, where the cap couples the purchased set —
// would make this tier unsound (UMFL could open a facility set no
// feasible strategy matches, or miss the binding constraint entirely),
// so VerifyNashWorkers rejects models that declare ExactNashViaUMFL
// false instead of silently assuming sum-distance pricing. Callers
// needing an exact Nash check under such models must enumerate:
// BruteForce per agent at small n is the only sound path.
package bestresponse

import (
	"gncg/internal/game"
	"gncg/internal/parallel"
)

// NashReport is the result of a concurrent exact Nash verification.
type NashReport struct {
	// Nash is true when no agent has any strictly improving strategy.
	Nash bool
	// FirstDeviator is the smallest agent index with an improving exact
	// best response, or -1 when Nash. Identical for every worker count.
	FirstDeviator int
	// Workers is the worker count actually used.
	Workers int
}

// VerifyNashWorkers checks the exact Nash property with an explicit
// verification worker bound (<= 0 means parallel.Workers()). Every
// agent's exact best response is computed regardless of other agents'
// outcomes — no early cancel — and verdicts fold in fixed agent order,
// so the report is identical under any worker count.
//
// The check is only sound for cost models whose best responses the
// UMFL reduction computes exactly (Rules.ExactNashViaUMFL); other
// models are rejected with a panic — see the package comment on why
// multi-edge deviations break per-edge pricing — rather than returning
// a verdict the model's deviations could contradict.
func VerifyNashWorkers(s *game.State, workers int) NashReport {
	if r := s.G.Rules(); !r.ExactNashViaUMFL() {
		panic("bestresponse: exact-Nash verification is unsound under cost model " + r.Name() +
			": multi-edge deviations are not per-edge separable, so the UMFL tier cannot bound them")
	}
	n := s.G.N()
	if workers <= 0 {
		workers = parallel.Workers()
	}
	improving := make([]bool, n)
	parallel.ForWorkers(n, workers, func(u int) {
		cur := s.Cost(u)
		br := Exact(s, u)
		improving[u] = s.G.Improves(br.Cost, cur)
	})
	rep := NashReport{Nash: true, FirstDeviator: -1, Workers: workers}
	for u, imp := range improving {
		if imp {
			rep.Nash = false
			rep.FirstDeviator = u
			break
		}
	}
	return rep
}
