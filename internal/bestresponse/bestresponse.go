// Package bestresponse computes agents' best responses in the GNCG and
// the exact Nash-equilibrium checks built on them.
//
// The key identity (paper, proof of Thm 3): fix agent u, let Z be the set
// of nodes that buy an edge towards u (u cannot remove those edges), and
// let D be shortest-path distances in the created network with vertex u
// deleted. Then for any strategy S of u,
//
//	cost(u, S) = α·Σ_{v∈S} w(u,v) + Σ_{x≠u} min_{v∈S∪Z} ( w(u,v) + D[v][x] ),
//
// because every simple u–x path leaves u exactly once, through some bought
// or gifted edge (u,v). This is precisely Uncapacitated Facility Location
// with facilities V∖{u} (opening cost α·w(u,v), or 0 and locked for v∈Z)
// and clients V∖{u} (connection cost w(u,v)+D[v][x]). Solving that UMFL
// instance exactly yields an exact best response; single-move local search
// yields the paper's 3-approximate best response. Computing a best
// response is NP-hard for every model variant (Cor. 1, Thms 13 and 16),
// which is why the exact path is branch-and-bound rather than polynomial.
package bestresponse

import (
	"math"

	"gncg/internal/bitset"
	"gncg/internal/facility"
	"gncg/internal/game"
	"gncg/internal/parallel"
)

// Result is a computed (possibly approximate) best response.
type Result struct {
	Agent    int
	Strategy bitset.Set // the new S_u
	Cost     float64    // cost(u) under Strategy
}

// Mapping relates game nodes to facility indices: facility i corresponds
// to node Nodes[i] (all nodes except U, in increasing order).
type Mapping struct {
	U     int
	Nodes []int
}

// BuildInstance constructs the UMFL instance encoding agent u's strategy
// choice in the given state. The i-th facility corresponds to the i-th
// element of the returned node list; clients are the subset of nodes u
// has positive demand towards (all of them under the paper's uniform
// model), in node order.
//
// The reduction is exact only for cost models whose edge cost is
// separable per acquired edge and whose strategies are unconstrained —
// the facility opening cost is the model's AcquirePrice, charged
// independently per opened facility. Models that declare
// ExactNashViaUMFL false (the budget model: its cap couples the open
// set) are rejected with a panic rather than silently solving the
// wrong instance.
func BuildInstance(s *game.State, u int) (*facility.Instance, Mapping) {
	if r := s.G.Rules(); !r.ExactNashViaUMFL() {
		panic("bestresponse: cost model " + r.Name() +
			" does not admit the UMFL best-response reduction; use BruteForce (small n) or the greedy tier")
	}
	n := s.G.N()
	nodes := make([]int, 0, n-1)
	for v := 0; v < n; v++ {
		if v != u {
			nodes = append(nodes, v)
		}
	}
	// Distances in G(s) with u removed: edges bought towards u still
	// appear in G(s), but no path may pass through u itself. Memoized on
	// the state, so repeated checks against an unchanged network (Nash
	// verification after dynamics, ownership search) pay once.
	D := s.APSPAvoiding(u)

	nf := len(nodes)
	openCost := make([]float64, nf)
	locked := make([]bool, nf)
	conn := make([][]float64, nf)
	alpha := s.G.Alpha
	rules := s.G.Rules()
	for i, v := range nodes {
		if s.P.Buys(v, u) {
			locked[i] = true
			openCost[i] = 0
		} else {
			openCost[i] = rules.AcquirePrice(alpha, s.G.Host.Weight(u, v))
		}
	}
	// Clients are the positive-demand nodes only: a zero-demand node
	// costs u nothing even when unreachable, so it must not constrain
	// the facility choice (it can still serve as a facility/gateway).
	conn = conn[:0]
	for _, x := range nodes {
		t := s.G.Traffic(u, x) // demand weight; 1 in the paper's model
		if t == 0 {
			continue
		}
		row := make([]float64, nf)
		for vi, v := range nodes {
			w := s.G.Host.Weight(u, v)
			var c float64
			if x == v {
				c = w
			} else {
				c = w + D[v][x]
			}
			if math.IsInf(c, 1) {
				row[vi] = c
			} else {
				row[vi] = t * c
			}
		}
		conn = append(conn, row)
	}
	ins, err := facility.NewInstance(openCost, conn, locked)
	if err != nil {
		// The state supplies non-negative weights and distances, so this
		// is unreachable; panicking keeps the API clean.
		panic("bestresponse: invalid derived instance: " + err.Error())
	}
	return ins, Mapping{U: u, Nodes: nodes}
}

// Strategy translates an opened-facility set back into a game strategy.
func (m Mapping) Strategy(n int, open bitset.Set) bitset.Set {
	strat := bitset.New(n)
	open.ForEach(func(fi int) { strat.Add(m.Nodes[fi]) })
	return strat
}

// Exact computes agent u's exact best response and its cost.
func Exact(s *game.State, u int) Result {
	ins, m := BuildInstance(s, u)
	sol := facility.Exact(ins)
	strat := m.Strategy(s.G.N(), sol.Open)
	pruneLocked(s, u, strat)
	return Result{Agent: u, Strategy: strat, Cost: sol.Cost}
}

// ApproxLocalSearch computes a 3-approximate best response by UMFL local
// search seeded with u's current strategy (Thm 3's algorithm).
func ApproxLocalSearch(s *game.State, u int) Result {
	ins, m := BuildInstance(s, u)
	start := bitset.New(ins.NumFacilities())
	for i, v := range m.Nodes {
		if s.P.Buys(u, v) && !ins.Locked[i] {
			start.Add(i)
		}
	}
	sol := facility.LocalSearch(ins, start, s.G.Eps, 1_000_000)
	strat := m.Strategy(s.G.N(), sol.Open)
	pruneLocked(s, u, strat)
	return Result{Agent: u, Strategy: strat, Cost: sol.Cost}
}

// pruneLocked drops nodes that already buy an edge to u from u's
// strategy: re-buying an existing edge adds cost and no connectivity, and
// the facility solver treats those facilities as free/locked rather than
// as purchases.
func pruneLocked(s *game.State, u int, strat bitset.Set) {
	for _, v := range strat.Elems() {
		if s.P.Buys(v, u) {
			strat.Remove(v)
		}
	}
}

// BruteForce computes the exact best response by enumerating all 2^(n-1)
// strategies and evaluating each on the real network, skipping
// strategies the cost model rules infeasible. Exponentially slow; it
// exists as an independent oracle to validate the UMFL mapping in
// tests, as a baseline in benchmarks, and as the only exact
// best-response path for models without the UMFL reduction (budget).
func BruteForce(s *game.State, u int) Result {
	n := s.G.N()
	others := make([]int, 0, n-1)
	for v := 0; v < n; v++ {
		if v != u {
			others = append(others, v)
		}
	}
	if len(others) > 25 {
		panic("bestresponse: brute force beyond 2^25 strategies")
	}
	rules := s.G.Rules()
	work := s.Clone()
	best := Result{Agent: u, Cost: math.Inf(1)}
	for mask := 0; mask < 1<<len(others); mask++ {
		strat := bitset.New(n)
		for i, v := range others {
			if mask&(1<<i) != 0 {
				strat.Add(v)
			}
		}
		if !rules.Feasible(s.G, u, strat) {
			continue
		}
		work.SetStrategy(u, strat)
		if c := work.Cost(u); c < best.Cost {
			best.Cost = c
			best.Strategy = strat
		}
	}
	return best
}

// IsNash reports whether no agent has any strictly improving strategy
// change, using exact best responses for every agent (computed in
// parallel; see VerifyNashWorkers for the explicit-worker form).
// Exponential in the worst case; intended for the small-n verification
// tier.
func IsNash(s *game.State) bool {
	return VerifyNashWorkers(s, 0).Nash
}

// FirstDeviation returns an agent with a strictly improving exact best
// response, or ok=false if the state is a Nash equilibrium.
func FirstDeviation(s *game.State) (Result, bool) {
	n := s.G.N()
	results := parallel.Map(n, func(u int) Result { return Exact(s, u) })
	for u, br := range results {
		if s.G.Improves(br.Cost, s.Cost(u)) {
			return br, true
		}
	}
	return Result{}, false
}

// NashApproxFactor returns the smallest β such that the state is a β-NE:
// the largest ratio of an agent's current cost to its exact best-response
// cost. Returns 1 for exact equilibria and +Inf if some agent can move
// from infinite to finite cost.
func NashApproxFactor(s *game.State) float64 {
	n := s.G.N()
	factors := parallel.Map(n, func(u int) float64 {
		cur := s.Cost(u)
		br := Exact(s, u)
		if !s.G.Improves(br.Cost, cur) {
			return 1
		}
		if br.Cost <= 0 || math.IsInf(cur, 1) {
			return math.Inf(1)
		}
		return cur / br.Cost
	})
	worst := 1.0
	for _, f := range factors {
		if f > worst {
			worst = f
		}
	}
	return worst
}
