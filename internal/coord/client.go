package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"gncg/internal/sweep"
)

// WorkerOptions configures one shard worker process.
type WorkerOptions struct {
	// Name identifies this shard in leases, telemetry and logs.
	Name string
	// Workers bounds cell-level parallelism inside this shard
	// (sweep.Config.Workers semantics: <= 0 means GOMAXPROCS).
	Workers int
	// Batch caps cells requested per lease; 0 defers to the coordinator's
	// adaptive policy.
	Batch int
	// Resolve maps the job's (spec, quick) back to experiments — the
	// registry lookup in the CLI, an explicit list in tests.
	Resolve func(spec string, quick bool) ([]sweep.Experiment, error)
	// Logf, if non-nil, receives advisory progress lines.
	Logf func(format string, args ...any)
	// MaxLeases, if > 0, makes the worker exit cleanly after completing
	// that many leases (tests use it to stage partial progress).
	MaxLeases int
}

// RunWorker connects to a coordinator, verifies it computes the same
// cell enumeration, and loops lease → execute → report with heartbeats
// until the coordinator declares the job done. Transient transport
// errors are retried with backoff; a coordinator that stays unreachable
// makes the worker exit with an error (an orphan must not spin forever
// after its coordinator is SIGKILLed).
func RunWorker(addr string, opts WorkerOptions) error {
	if opts.Resolve == nil {
		return fmt.Errorf("coord: worker needs a Resolve function")
	}
	cl := &client{base: "http://" + addr, hc: &http.Client{Timeout: 5 * time.Minute}}
	var jr jobResponse
	if err := cl.call("GET", "/job", nil, &jr); err != nil {
		return fmt.Errorf("coord: worker %s: job handshake: %w", opts.Name, err)
	}
	exps, err := opts.Resolve(jr.Job.Spec, jr.Job.Quick)
	if err != nil {
		return fmt.Errorf("coord: worker %s: %w", opts.Name, err)
	}
	if local := SpecFor(jr.Job.Spec, jr.Job.Quick, exps); local != jr.Job {
		return fmt.Errorf("coord: worker %s enumerates {cells %d fp %q} but coordinator has {cells %d fp %q}; mixed binaries",
			opts.Name, local.Cells, local.Fingerprint, jr.Job.Cells, jr.Job.Fingerprint)
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	leasesDone := 0
	for {
		var lr leaseResponse
		if err := cl.call("POST", "/lease", leaseRequest{Shard: opts.Name, Max: opts.Batch}, &lr); err != nil {
			return fmt.Errorf("coord: worker %s: lease: %w", opts.Name, err)
		}
		if lr.Done {
			logf("worker %s: job done, exiting", opts.Name)
			return nil
		}
		if len(lr.Cells) == 0 {
			time.Sleep(time.Duration(lr.WaitMS) * time.Millisecond)
			continue
		}
		logf("worker %s: lease %d: %d cells [%d..%d]",
			opts.Name, lr.ID, len(lr.Cells), lr.Cells[0], lr.Cells[len(lr.Cells)-1])

		// Heartbeat while the batch runs so long cells (minutes at the
		// n=10^4 rungs) outlive any TTL.
		stop := make(chan struct{})
		beatDead := make(chan struct{})
		go func() {
			defer close(beatDead)
			every := time.Duration(lr.TTLMS) * time.Millisecond / 3
			if every <= 0 {
				every = time.Second
			}
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					var hr heartbeatResponse
					if err := cl.call("POST", "/heartbeat", heartbeatRequest{ID: lr.ID, Shard: opts.Name}, &hr); err == nil && !hr.OK {
						// Lease already expired server-side; keep computing —
						// the late report still deduplicates cleanly.
						logf("worker %s: lease %d expired under us", opts.Name, lr.ID)
						return
					}
				}
			}
		}()
		rs, runErr := sweep.RunSeqs(exps, sweep.Config{Quick: jr.Job.Quick, Workers: opts.Workers}, lr.Cells)
		close(stop)
		<-beatDead
		if runErr != nil {
			return fmt.Errorf("coord: worker %s: lease %d: %w", opts.Name, lr.ID, runErr)
		}
		req := reportRequest{ID: lr.ID, Shard: opts.Name}
		for _, c := range rs.Cells {
			req.Cells = append(req.Cells, json.RawMessage(sweep.CellJSON(c)))
		}
		var ok heartbeatResponse
		if err := cl.call("POST", "/report", req, &ok); err != nil {
			return fmt.Errorf("coord: worker %s: report lease %d: %w", opts.Name, lr.ID, err)
		}
		logf("worker %s: lease %d reported (%d cells)", opts.Name, lr.ID, len(rs.Cells))
		leasesDone++
		if opts.MaxLeases > 0 && leasesDone >= opts.MaxLeases {
			logf("worker %s: lease budget reached, exiting", opts.Name)
			return nil
		}
	}
}

// client is a minimal JSON-over-HTTP caller with bounded retry: brief
// coordinator hiccups (restart between crash and resume) are absorbed,
// sustained unreachability propagates as an error.
type client struct {
	base string
	hc   *http.Client
}

func (c *client) call(method, path string, in, out any) error {
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 250 * time.Millisecond)
		}
		var body io.Reader
		if in != nil {
			raw, err := json.Marshal(in)
			if err != nil {
				return err
			}
			body = bytes.NewReader(raw)
		}
		req, err := http.NewRequest(method, c.base+path, body)
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			// Protocol-level rejections are not transient.
			return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(data))
		}
		if out == nil {
			return nil
		}
		return json.Unmarshal(data, out)
	}
	return fmt.Errorf("%s %s: coordinator unreachable: %w", method, path, lastErr)
}
