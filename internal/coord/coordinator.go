package coord

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gncg/internal/sweep"
)

// Options tunes the coordinator's lease protocol.
type Options struct {
	// LeaseTTL is how long a lease may go without a heartbeat before its
	// cells are re-issued to other shards. Default 60s.
	LeaseTTL time.Duration
	// Batch caps cells per lease. 0 means adaptive: pending/(4*shards),
	// clamped to [1,16], so heterogeneous grids drain in small slices and
	// self-balance instead of tail-stalling on one static assignment.
	Batch int
	// Logf, if non-nil, receives advisory scheduling events (grants,
	// expiries, completion). Never mixed into result encoding.
	Logf func(format string, args ...any)
}

func (o Options) ttl() time.Duration {
	if o.LeaseTTL > 0 {
		return o.LeaseTTL
	}
	return 60 * time.Second
}

type lease struct {
	id       int64
	shard    string
	seqs     []int
	granted  time.Time
	lastBeat time.Time
}

type shardInfo struct {
	lastSeen  time.Time
	cellsDone int
	leases    int
}

// Coordinator owns the scheduling state of one job: the pending queue
// (ascending seq order), the outstanding leases, and the per-shard
// bookkeeping. Finished cells go straight to the durable Store, so the
// coordinator's own state is entirely reconstructible: on restart,
// pending is simply the spec's enumeration minus the store's done set,
// and all leases are (correctly) forgotten.
type Coordinator struct {
	store *Store
	refs  []sweep.CellRef // full enumeration, indexed by seq
	opts  Options
	start time.Time

	mu        sync.Mutex
	pending   []int // ascending; not done, not leased
	leases    map[int64]*lease
	leasedSeq map[int]int64 // seq -> holding lease
	steals    map[int]int   // seq -> expired-lease count
	shards    map[string]*shardInfo
	nextLease int64
	nStolen   int64 // cells re-issued after lease expiry
	nExpired  int64 // leases expired
	doneCh    chan struct{}
	completed bool
}

// New builds a coordinator over an opened store. refs must be the
// enumeration of the store's JobSpec (sweep.Enumerate of the same
// selection); cells the store already holds are not re-queued.
func New(store *Store, refs []sweep.CellRef, opts Options) (*Coordinator, error) {
	if len(refs) != store.Spec().Cells {
		return nil, fmt.Errorf("coord: enumeration has %d cells, job spec says %d", len(refs), store.Spec().Cells)
	}
	c := &Coordinator{
		store: store, refs: refs, opts: opts, start: time.Now(),
		leases:    map[int64]*lease{},
		leasedSeq: map[int]int64{},
		steals:    map[int]int{},
		shards:    map[string]*shardInfo{},
		doneCh:    make(chan struct{}),
	}
	done := map[int]bool{}
	for _, seq := range store.DoneSeqs() {
		done[seq] = true
	}
	for _, r := range refs {
		if !done[r.Seq] {
			c.pending = append(c.pending, r.Seq)
		}
	}
	sort.Ints(c.pending)
	if len(c.pending) == 0 {
		c.completed = true
		close(c.doneCh)
	}
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// Done is closed once every cell of the job is in the store.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Job returns the job identity workers handshake against.
func (c *Coordinator) Job() JobSpec { return c.store.Spec() }

// Lease grants the named shard up to max pending cells (0 = the
// coordinator's batch policy). It returns the lease id, the granted seqs
// (nil when nothing is pending right now), the lease TTL, and whether
// the whole job is complete — the worker's signal to exit.
func (c *Coordinator) Lease(shard string, max int) (id int64, seqs []int, ttl time.Duration, jobDone bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchShard(shard)
	if c.completed {
		return 0, nil, c.opts.ttl(), true
	}
	if len(c.pending) == 0 {
		// Everything is done or out on lease; the worker waits — an
		// expiry may hand it stolen work shortly.
		return 0, nil, c.opts.ttl(), false
	}
	batch := c.opts.Batch
	if max > 0 && (batch == 0 || max < batch) {
		batch = max
	}
	if batch <= 0 {
		batch = len(c.pending) / (4 * len(c.shards))
		if batch < 1 {
			batch = 1
		}
		if batch > 16 {
			batch = 16
		}
	}
	if batch > len(c.pending) {
		batch = len(c.pending)
	}
	seqs = append([]int(nil), c.pending[:batch]...)
	c.pending = c.pending[batch:]
	c.nextLease++
	id = c.nextLease
	now := time.Now()
	l := &lease{id: id, shard: shard, seqs: seqs, granted: now, lastBeat: now}
	c.leases[id] = l
	for _, seq := range seqs {
		c.leasedSeq[seq] = id
	}
	c.shards[shard].leases++
	c.store.Event("lease", id, shard, seqs)
	c.logf("coord: lease %d -> %s: %d cells [%d..%d]", id, shard, len(seqs), seqs[0], seqs[len(seqs)-1])
	return id, seqs, c.opts.ttl(), false
}

// Heartbeat extends a lease. false means the lease is unknown or already
// expired — the worker should abandon the batch (its cells are being
// re-issued; a late report is still accepted and deduplicated).
func (c *Coordinator) Heartbeat(id int64, shard string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchShard(shard)
	l, ok := c.leases[id]
	if !ok {
		return false
	}
	l.lastBeat = time.Now()
	return true
}

// Report checkpoints a lease's finished cells into the store. It is
// idempotent per cell and accepts late reports from expired leases: a
// cell is deterministic, so whoever computes it first wins and identical
// duplicates are dropped at the store.
func (c *Coordinator) Report(id int64, shard string, cells []sweep.CellResult) error {
	c.mu.Lock()
	c.touchShard(shard)
	l := c.leases[id]
	leaseMS := int64(0)
	if l != nil {
		leaseMS = time.Since(l.granted).Milliseconds()
	}
	var entries []Done
	for _, cell := range cells {
		entries = append(entries, Done{Cell: cell, Shard: shard, LeaseMS: leaseMS, Steals: c.steals[cell.Seq]})
	}
	c.mu.Unlock()
	// The store has its own lock and fsyncs; keep the scheduler lock out
	// of the disk path.
	if err := c.store.Append(entries); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cell := range cells {
		// Release only this lease's claim: a stolen cell may already be
		// re-leased to another shard, whose own report will clean up (and
		// deduplicate at the store).
		if c.leasedSeq[cell.Seq] == id {
			delete(c.leasedSeq, cell.Seq)
		}
		// A stolen cell may still sit in pending (re-queued on expiry):
		// drop it so it is not executed again.
		c.dropPending(cell.Seq)
		if si := c.shards[shard]; si != nil {
			si.cellsDone++
		}
	}
	if l != nil {
		delete(c.leases, id)
		for _, seq := range l.seqs {
			if c.leasedSeq[seq] == id {
				// Granted but not reported (partial report from a
				// misbehaving worker): requeue unless already done.
				delete(c.leasedSeq, seq)
				if !c.store.IsDone(seq) {
					c.requeue(seq)
				}
			}
		}
	}
	if c.store.CountDone() == len(c.refs) && !c.completed {
		c.completed = true
		close(c.doneCh)
		c.logf("coord: job complete: %d cells", len(c.refs))
	}
	return nil
}

// ExpireStale re-issues the cells of every lease whose last heartbeat is
// older than the TTL — the crash path: a SIGKILLed shard loses only its
// in-flight lease. Returns the number of leases expired. The server runs
// this periodically.
func (c *Coordinator) ExpireStale() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	ttl := c.opts.ttl()
	now := time.Now()
	n := 0
	for id, l := range c.leases {
		if now.Sub(l.lastBeat) <= ttl {
			continue
		}
		n++
		c.nExpired++
		var stolen []int
		for _, seq := range l.seqs {
			if c.leasedSeq[seq] == id {
				delete(c.leasedSeq, seq)
				c.steals[seq]++
				c.nStolen++
				c.requeue(seq)
				stolen = append(stolen, seq)
			}
		}
		delete(c.leases, id)
		c.store.Event("expire", id, l.shard, stolen)
		c.logf("coord: lease %d (%s) expired after %s; %d cells re-issued",
			id, l.shard, now.Sub(l.lastBeat).Truncate(time.Millisecond), len(stolen))
	}
	return n
}

func (c *Coordinator) touchShard(shard string) {
	si := c.shards[shard]
	if si == nil {
		si = &shardInfo{}
		c.shards[shard] = si
	}
	si.lastSeen = time.Now()
}

// requeue inserts seq back into pending, keeping ascending order.
func (c *Coordinator) requeue(seq int) {
	i := sort.SearchInts(c.pending, seq)
	if i < len(c.pending) && c.pending[i] == seq {
		return
	}
	c.pending = append(c.pending, 0)
	copy(c.pending[i+1:], c.pending[i:])
	c.pending[i] = seq
}

func (c *Coordinator) dropPending(seq int) {
	i := sort.SearchInts(c.pending, seq)
	if i < len(c.pending) && c.pending[i] == seq {
		c.pending = append(c.pending[:i], c.pending[i+1:]...)
	}
}

// Status is the JSON shape of the /status endpoint: live job progress,
// shard liveness, outstanding lease ages and steal telemetry. It is
// observability data — deliberately not part of any byte-pinned output.
type Status struct {
	State    string  `json:"state"` // "running" or "done"
	UptimeMS int64   `json:"uptime_ms"`
	Job      JobSpec `json:"job"`
	Progress struct {
		Done    int `json:"done"`
		Leased  int `json:"leased"`
		Pending int `json:"pending"`
	} `json:"progress"`
	Experiments []ExpStatus   `json:"experiments"`
	Shards      []ShardStatus `json:"shards"`
	Leases      []LeaseStatus `json:"leases"`
	Steals      int64         `json:"steals"`       // leases expired
	CellsStolen int64         `json:"cells_stolen"` // cells re-issued
}

// ExpStatus is one experiment's cell progress.
type ExpStatus struct {
	Name    string `json:"name"`
	Done    int    `json:"done"`
	Leased  int    `json:"leased"`
	Pending int    `json:"pending"`
}

// ShardStatus is one shard's liveness and throughput.
type ShardStatus struct {
	Name        string `json:"name"`
	LastSeenMS  int64  `json:"last_seen_ms"`
	Alive       bool   `json:"alive"` // seen within one TTL
	CellsDone   int    `json:"cells_done"`
	LeasesTaken int    `json:"leases_taken"`
}

// LeaseStatus is one outstanding lease.
type LeaseStatus struct {
	ID          int64  `json:"id"`
	Shard       string `json:"shard"`
	Cells       int    `json:"cells"`
	AgeMS       int64  `json:"age_ms"`
	SinceBeatMS int64  `json:"since_heartbeat_ms"`
}

// Status snapshots the coordinator for the HTTP endpoint.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	var st Status
	st.State = "running"
	if c.completed {
		st.State = "done"
	}
	st.UptimeMS = now.Sub(c.start).Milliseconds()
	st.Job = c.store.Spec()
	doneSeqs := c.store.DoneSeqs()
	done := make(map[int]bool, len(doneSeqs))
	for _, seq := range doneSeqs {
		done[seq] = true
	}
	st.Progress.Done = len(doneSeqs)
	st.Progress.Leased = len(c.leasedSeq)
	st.Progress.Pending = len(c.pending)
	byExp := map[string]*ExpStatus{}
	var order []string
	for _, r := range c.refs {
		es := byExp[r.Experiment]
		if es == nil {
			es = &ExpStatus{Name: r.Experiment}
			byExp[r.Experiment] = es
			order = append(order, r.Experiment)
		}
		switch {
		case done[r.Seq]:
			es.Done++
		case c.leasedSeq[r.Seq] != 0:
			es.Leased++
		default:
			es.Pending++
		}
	}
	for _, name := range order {
		st.Experiments = append(st.Experiments, *byExp[name])
	}
	var shardNames []string
	for name := range c.shards {
		shardNames = append(shardNames, name)
	}
	sort.Strings(shardNames)
	for _, name := range shardNames {
		si := c.shards[name]
		st.Shards = append(st.Shards, ShardStatus{
			Name:       name,
			LastSeenMS: now.Sub(si.lastSeen).Milliseconds(),
			Alive:      now.Sub(si.lastSeen) <= c.opts.ttl(),
			CellsDone:  si.cellsDone, LeasesTaken: si.leases,
		})
	}
	var leaseIDs []int64
	for id := range c.leases {
		leaseIDs = append(leaseIDs, id)
	}
	sort.Slice(leaseIDs, func(i, j int) bool { return leaseIDs[i] < leaseIDs[j] })
	for _, id := range leaseIDs {
		l := c.leases[id]
		st.Leases = append(st.Leases, LeaseStatus{
			ID: id, Shard: l.shard, Cells: len(l.seqs),
			AgeMS:       now.Sub(l.granted).Milliseconds(),
			SinceBeatMS: now.Sub(l.lastBeat).Milliseconds(),
		})
	}
	st.Steals = c.nExpired
	st.CellsStolen = c.nStolen
	return st
}
