package coord

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gncg/internal/sweep"
)

// testExps builds a small deterministic registry-independent selection:
// cells are pure functions of their parameters, so any crash/resume
// interleaving must reproduce them byte-for-byte.
func testExps() []sweep.Experiment {
	return []sweep.Experiment{
		{
			Name: "grid", Title: "test grid",
			Space: func(quick bool) sweep.Space {
				n := []int{2, 3, 5, 8}
				if quick {
					n = []int{2, 3}
				}
				return sweep.Space{Axes: []sweep.Axis{
					sweep.Ints("n", n...),
					sweep.Strings("mode", "a", "b"),
					sweep.SeedAxis(2),
				}}
			},
			Schema: []string{"v"},
			Run: func(p sweep.Params) []sweep.Record {
				v := p.RNG().Float64() * float64(p.Int("n"))
				if p.Str("mode") == "b" {
					v = -v
				}
				return []sweep.Record{sweep.R("v", v)}
			},
		},
		{
			Name: "scalar", Title: "test scalar",
			Run: func(p sweep.Params) []sweep.Record {
				return []sweep.Record{sweep.R("answer", 42)}
			},
		},
	}
}

const testSpec = "grid,scalar"

func refRun(t *testing.T, exps []sweep.Experiment) (*sweep.ResultSet, string) {
	t.Helper()
	rs, err := sweep.Run(exps, sweep.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return rs, buf.String()
}

func encodeSet(t *testing.T, rs *sweep.ResultSet) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rs.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestStoreRoundTripAndCompaction(t *testing.T) {
	exps := testExps()
	ref, refJSON := refRun(t, exps)
	spec := SpecFor(testSpec, false, exps)
	dir := t.TempDir()

	s, err := Open(dir, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint in uneven batches, as leases would.
	for i := 0; i < len(ref.Cells); i += 3 {
		end := i + 3
		if end > len(ref.Cells) {
			end = len(ref.Cells)
		}
		var batch []Done
		for _, c := range ref.Cells[i:end] {
			batch = append(batch, Done{Cell: c, Shard: "shard-0", LeaseMS: 7, Steals: 0})
		}
		if err := s.Append(batch); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.CountDone(); got != len(ref.Cells) {
		t.Fatalf("CountDone = %d, want %d", got, len(ref.Cells))
	}
	rs, err := s.Results()
	if err != nil {
		t.Fatal(err)
	}
	if encodeSet(t, rs) != refJSON {
		t.Fatal("store results differ from unsharded run before reopen")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: loads, verifies, compacts.
	s2, err := Open(dir, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rs2, err := s2.Results()
	if err != nil {
		t.Fatal(err)
	}
	if encodeSet(t, rs2) != refJSON {
		t.Fatal("store results differ from unsharded run after resume")
	}
	// Compaction: journal is back to a lone header, snapshot carries the
	// cells in canonical whole-set encoding.
	j, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(j), "\n"); lines != 1 {
		t.Fatalf("post-compaction journal has %d lines, want 1 (header only):\n%s", lines, j)
	}
	snap, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		t.Fatal(err)
	}
	if string(snap) != refJSON {
		t.Fatal("snapshot is not the canonical encoding of the done cells")
	}
}

func TestStoreTornTrailingLineTolerated(t *testing.T) {
	exps := testExps()
	ref, _ := refRun(t, exps)
	spec := SpecFor(testSpec, false, exps)
	dir := t.TempDir()
	s, err := Open(dir, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]Done{{Cell: ref.Cells[0], Shard: "s"}, {Cell: ref.Cells[1], Shard: "s"}}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// SIGKILL mid-append: the final line is torn. It must be dropped, the
	// complete lines kept.
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := string(sweep.CellJSON(ref.Cells[2]))
	fmt.Fprintf(f, `{"type": "done", "shard": "s", "lease_ms": 1, "steals": 0, "cell": %s`, torn[:len(torn)/2])
	f.Close()

	s2, err := Open(dir, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.CountDone(); got != 2 {
		t.Fatalf("CountDone after torn line = %d, want 2", got)
	}

	// Same garbage mid-file is corruption, not a torn append.
	s2.Close()
	f, err = os.OpenFile(filepath.Join(dir, journalName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, "{\"type\": \"done\", \"cell\": {garbage\n")
	raw := sweep.CellJSON(ref.Cells[3])
	fmt.Fprintf(f, `{"type": "done", "shard": "s", "lease_ms": 1, "steals": 0, "cell": %s}`+"\n", raw)
	f.Close()
	if _, err := Open(dir, spec, true); err == nil {
		t.Fatal("mid-file corruption was accepted")
	}
}

func TestStoreSpecGuards(t *testing.T) {
	exps := testExps()
	spec := SpecFor(testSpec, false, exps)
	dir := t.TempDir()
	s, err := Open(dir, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	// A journal present without -resume fails loudly.
	if _, err := Open(dir, spec, false); err == nil {
		t.Fatal("reopen without resume was accepted")
	}
	// A different spec cannot resume this dir.
	other := SpecFor(testSpec, true, exps)
	if _, err := Open(dir, other, true); err == nil {
		t.Fatal("resume under a different spec was accepted")
	}
	// The matching spec can.
	s2, err := Open(dir, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()

	// ReadSpec surfaces the header for flag inheritance.
	got, ok, err := ReadSpec(dir)
	if err != nil || !ok || got != spec {
		t.Fatalf("ReadSpec = %+v, %t, %v; want header back", got, ok, err)
	}
	if _, ok, err := ReadSpec(t.TempDir()); ok || err != nil {
		t.Fatalf("ReadSpec on fresh dir = ok=%t err=%v, want miss", ok, err)
	}
}

func TestStoreLockExcludesSecondOwner(t *testing.T) {
	exps := testExps()
	spec := SpecFor(testSpec, false, exps)
	dir := t.TempDir()
	s, err := Open(dir, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := Open(dir, spec, true); err == nil {
		t.Fatal("second coordinator acquired a locked job dir")
	}
}

func TestStoreDuplicateAndConflict(t *testing.T) {
	exps := testExps()
	ref, _ := refRun(t, exps)
	spec := SpecFor(testSpec, false, exps)
	s, err := Open(t.TempDir(), spec, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append([]Done{{Cell: ref.Cells[0]}}); err != nil {
		t.Fatal(err)
	}
	// A late duplicate of identical bytes (stolen lease reporting after
	// re-issue) is silently dropped.
	if err := s.Append([]Done{{Cell: ref.Cells[0]}}); err != nil {
		t.Fatal(err)
	}
	if got := s.CountDone(); got != 1 {
		t.Fatalf("CountDone = %d, want 1", got)
	}
	// The same seq with a different payload is a mixed-run conflict.
	mut := ref.Cells[1]
	mut.Seq = ref.Cells[0].Seq
	if err := s.Append([]Done{{Cell: mut}}); err == nil {
		t.Fatal("conflicting duplicate was accepted")
	}
}
