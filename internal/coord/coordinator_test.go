package coord

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"gncg/internal/sweep"
)

func testResolve(t *testing.T) func(spec string, quick bool) ([]sweep.Experiment, error) {
	return func(spec string, quick bool) ([]sweep.Experiment, error) {
		if spec != testSpec {
			return nil, fmt.Errorf("unexpected spec %q", spec)
		}
		return testExps(), nil
	}
}

// startService opens (or resumes) a store in dir and brings up a
// coordinator + server on a random loopback port.
func startService(t *testing.T, dir string, resume bool, opts Options) (*Store, *Coordinator, *Server, string) {
	t.Helper()
	exps := testExps()
	spec := SpecFor(testSpec, false, exps)
	store, err := Open(dir, spec, resume)
	if err != nil {
		t.Fatal(err)
	}
	co, err := New(store, sweep.Enumerate(exps, false), opts)
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	srv := NewServer(co)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	return store, co, srv, addr
}

// TestWorkStealingFullRun: several workers drain the job through the
// lease protocol; the assembled store is byte-identical to an unsharded
// in-process run.
func TestWorkStealingFullRun(t *testing.T) {
	_, refJSON := refRun(t, testExps())
	dir := t.TempDir()
	store, co, srv, addr := startService(t, dir, false, Options{})
	defer store.Close()
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorker(addr, WorkerOptions{
				Name: fmt.Sprintf("shard-%d", i), Workers: 2, Resolve: testResolve(t),
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	select {
	case <-co.Done():
	default:
		t.Fatal("all workers exited but the coordinator is not done")
	}
	rs, err := store.Results()
	if err != nil {
		t.Fatal(err)
	}
	if encodeSet(t, rs) != refJSON {
		t.Fatal("work-stealing run differs from unsharded run")
	}
	st := co.Status()
	if st.State != "done" || st.Progress.Done != st.Job.Cells || st.Progress.Pending != 0 {
		t.Fatalf("final status %+v", st)
	}
}

// TestAbandonedLeaseStolen is the SIGKILLed-shard scenario driven
// deterministically: a raw client takes a lease and vanishes (no
// heartbeat, no report — exactly what SIGKILL leaves behind). The lease
// must expire, its cells must be re-issued to the live worker, and the
// final output must be byte-identical anyway.
func TestAbandonedLeaseStolen(t *testing.T) {
	_, refJSON := refRun(t, testExps())
	dir := t.TempDir()
	store, co, srv, addr := startService(t, dir, false, Options{LeaseTTL: 150 * time.Millisecond})
	defer store.Close()
	defer srv.Close()

	// The doomed shard grabs a batch and dies.
	cl := &client{base: "http://" + addr, hc: http.DefaultClient}
	var lr leaseResponse
	if err := cl.call("POST", "/lease", leaseRequest{Shard: "doomed", Max: 4}, &lr); err != nil {
		t.Fatal(err)
	}
	if len(lr.Cells) == 0 || lr.Done {
		t.Fatalf("doomed shard got no work: %+v", lr)
	}

	if err := RunWorker(addr, WorkerOptions{Name: "survivor", Resolve: testResolve(t)}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-co.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("job did not complete after lease expiry")
	}
	rs, err := store.Results()
	if err != nil {
		t.Fatal(err)
	}
	if encodeSet(t, rs) != refJSON {
		t.Fatal("post-steal output differs from unsharded run")
	}
	st := co.Status()
	if st.Steals < 1 || st.CellsStolen < int64(len(lr.Cells)) {
		t.Fatalf("expected a recorded steal of %d cells, status %+v", len(lr.Cells), st)
	}
}

// TestLateReportAfterStealDeduplicates: the "dead" shard turns out to be
// alive and reports after its lease expired and the work was redone.
// The duplicate bytes must be absorbed without error or double-count.
func TestLateReportAfterStealDeduplicates(t *testing.T) {
	ref, refJSON := refRun(t, testExps())
	dir := t.TempDir()
	store, co, srv, addr := startService(t, dir, false, Options{LeaseTTL: 100 * time.Millisecond})
	defer store.Close()
	defer srv.Close()

	cl := &client{base: "http://" + addr, hc: http.DefaultClient}
	var lr leaseResponse
	if err := cl.call("POST", "/lease", leaseRequest{Shard: "slow", Max: 3}, &lr); err != nil {
		t.Fatal(err)
	}
	if err := RunWorker(addr, WorkerOptions{Name: "fast", Resolve: testResolve(t)}); err != nil {
		t.Fatal(err)
	}
	<-co.Done()

	// The slow shard finally reports the (identical, deterministic) cells.
	req := reportRequest{ID: lr.ID, Shard: "slow"}
	for _, seq := range lr.Cells {
		req.Cells = append(req.Cells, json.RawMessage(sweep.CellJSON(ref.Cells[seq])))
	}
	var ok heartbeatResponse
	if err := cl.call("POST", "/report", req, &ok); err != nil {
		t.Fatalf("late report rejected: %v", err)
	}
	rs, err := store.Results()
	if err != nil {
		t.Fatal(err)
	}
	if encodeSet(t, rs) != refJSON {
		t.Fatal("late duplicate report corrupted the store")
	}
}

// TestCoordinatorCrashResume: stage partial progress, tear the whole
// service down (server + store, as a coordinator crash would), then
// resume from the journal and finish. The merged output must be
// byte-identical to the uninterrupted run and nothing is recomputed that
// the journal already holds.
func TestCoordinatorCrashResume(t *testing.T) {
	_, refJSON := refRun(t, testExps())
	dir := t.TempDir()
	store, _, srv, addr := startService(t, dir, false, Options{Batch: 4})

	// One worker, one lease, then everything stops.
	if err := RunWorker(addr, WorkerOptions{
		Name: "shard-0", Resolve: testResolve(t), MaxLeases: 1, Batch: 4,
	}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	doneBefore := store.CountDone()
	if doneBefore == 0 || doneBefore >= SpecFor(testSpec, false, testExps()).Cells {
		t.Fatalf("staged progress = %d cells, want partial", doneBefore)
	}
	store.Close()

	// Resume: the new coordinator must only queue the remainder.
	store2, co2, srv2, addr2 := startService(t, dir, true, Options{})
	defer store2.Close()
	defer srv2.Close()
	if got := store2.CountDone(); got != doneBefore {
		t.Fatalf("resume lost progress: %d done, had %d", got, doneBefore)
	}
	st := co2.Status()
	if st.Progress.Pending != st.Job.Cells-doneBefore {
		t.Fatalf("resumed pending = %d, want %d", st.Progress.Pending, st.Job.Cells-doneBefore)
	}
	if err := RunWorker(addr2, WorkerOptions{Name: "shard-1", Resolve: testResolve(t)}); err != nil {
		t.Fatal(err)
	}
	<-co2.Done()
	rs, err := store2.Results()
	if err != nil {
		t.Fatal(err)
	}
	if encodeSet(t, rs) != refJSON {
		t.Fatal("crash/resume output differs from uninterrupted run")
	}
}

// TestStatusAndResultsEndpoints exercises the observability surface over
// real HTTP mid-run and post-run.
func TestStatusAndResultsEndpoints(t *testing.T) {
	dir := t.TempDir()
	store, co, srv, addr := startService(t, dir, false, Options{Batch: 5})
	defer store.Close()
	defer srv.Close()

	// Stage partial progress so /status shows a genuinely running job.
	if err := RunWorker(addr, WorkerOptions{
		Name: "shard-0", Resolve: testResolve(t), MaxLeases: 1, Batch: 5,
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != "running" || st.Job.Cells == 0 || st.Progress.Done == 0 ||
		st.Progress.Done+st.Progress.Leased+st.Progress.Pending != st.Job.Cells {
		t.Fatalf("mid-run status: %+v", st)
	}
	if len(st.Experiments) != 2 || st.Experiments[0].Name != "grid" {
		t.Fatalf("experiment progress: %+v", st.Experiments)
	}
	if len(st.Shards) != 1 || st.Shards[0].Name != "shard-0" || !st.Shards[0].Alive {
		t.Fatalf("shard liveness: %+v", st.Shards)
	}

	// /results mid-run: a valid canonical partial set.
	resp, err = http.Get("http://" + addr + "/results")
	if err != nil {
		t.Fatal(err)
	}
	partial, err := sweep.DecodeJSON(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(partial.Cells) != st.Progress.Done {
		t.Fatalf("/results has %d cells, status says %d done", len(partial.Cells), st.Progress.Done)
	}

	if err := RunWorker(addr, WorkerOptions{Name: "shard-0", Resolve: testResolve(t)}); err != nil {
		t.Fatal(err)
	}
	<-co.Done()

	// /shutdown flips the linger signal.
	resp, err = http.Post("http://"+addr+"/shutdown", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	select {
	case <-srv.ShutdownRequested():
	case <-time.After(time.Second):
		t.Fatal("shutdown request not signalled")
	}
}

// TestWorkerEnumerationMismatch: a worker whose binary enumerates a
// different cell space must refuse to participate.
func TestWorkerEnumerationMismatch(t *testing.T) {
	dir := t.TempDir()
	store, _, srv, addr := startService(t, dir, false, Options{})
	defer store.Close()
	defer srv.Close()
	err := RunWorker(addr, WorkerOptions{
		Name: "skewed",
		Resolve: func(spec string, quick bool) ([]sweep.Experiment, error) {
			return testExps()[:1], nil // missing an experiment
		},
	})
	if err == nil {
		t.Fatal("worker with mismatched enumeration was admitted")
	}
}
