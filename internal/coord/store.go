// Package coord turns the sweep engine into a resumable, work-stealing
// service: a durable job store of cells on disk, a coordinator that
// leases cell ranges to shard workers over loopback HTTP, and a status
// endpoint exposing live progress.
//
// The correctness contract is inherited from internal/sweep: cells are a
// pure, deterministic function of their global sequence number (for a
// fixed selection and quick flag), so "replay a cell" and "reuse its
// journaled result" are interchangeable. After any interleaving of shard
// or coordinator crashes and resumes, the assembled output is
// byte-identical to a single-process unsharded run — the job store keeps
// each finished cell's canonical bytes (sweep.CellJSON), and final
// assembly is just decode + merge + re-encode, the same round trip the
// shard merge workflow already pins.
package coord

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"gncg/internal/sweep"
)

// JobSpec identifies a sweep job: the experiment selection, the quick
// flag and the shape of the resulting enumeration. A journal written
// under one spec refuses to resume under another — a resumed run that
// enumerated different cells would silently corrupt the byte-identity
// contract, so the mismatch fails loudly instead.
type JobSpec struct {
	Spec  string `json:"spec"`
	Quick bool   `json:"quick"`
	Cells int    `json:"cells"`
	// Fingerprint pins the per-experiment cell partition of the
	// enumeration (name:count pairs in order), catching binary skew that
	// happens to preserve the total count.
	Fingerprint string `json:"fingerprint"`
}

// SpecFor builds the JobSpec of a resolved selection by enumerating it
// exactly as Run/RunSeqs will.
func SpecFor(spec string, quick bool, exps []sweep.Experiment) JobSpec {
	refs := sweep.Enumerate(exps, quick)
	var fp bytes.Buffer
	last, count := "", 0
	flush := func() {
		if count > 0 {
			fmt.Fprintf(&fp, "%s:%d;", last, count)
		}
	}
	for _, r := range refs {
		if r.Experiment != last {
			flush()
			last, count = r.Experiment, 0
		}
		count++
	}
	flush()
	return JobSpec{Spec: spec, Quick: quick, Cells: len(refs), Fingerprint: fp.String()}
}

const (
	journalName  = "journal.jsonl"
	snapshotName = "snapshot.json"
	lockName     = "lock"
)

// journalLine is the decoded form of one journal entry. Done lines carry
// the finished cell's canonical bytes verbatim under "cell" (kept raw so
// byte-identity never depends on a decode/re-encode cycle mid-journal);
// lease/expire lines are a volatile audit trail ignored on load.
type journalLine struct {
	Type    string          `json:"type"`
	Job     *JobSpec        `json:"job,omitempty"`
	Shard   string          `json:"shard,omitempty"`
	LeaseMS int64           `json:"lease_ms,omitempty"`
	Steals  int             `json:"steals,omitempty"`
	ID      int64           `json:"id,omitempty"`
	Cells   []int           `json:"cells,omitempty"`
	Cell    json.RawMessage `json:"cell,omitempty"`
}

// Done is one finished cell plus the scheduling telemetry journaled with
// it. Telemetry lives in the journal wrapper, never inside the cell
// bytes, so it cannot perturb the byte-identity contract (and
// ci/check_shards.py masks it before unwrapping journal lines).
type Done struct {
	Cell    sweep.CellResult
	Shard   string
	LeaseMS int64 // wall-clock ms the finishing lease was held
	Steals  int   // times the cell's earlier leases expired and were re-issued
}

// Store is the durable job store: an append-only JSONL journal plus a
// compacted snapshot, holding every finished cell's canonical bytes.
// One process owns a store at a time (flock); a SIGKILLed owner's lock
// dies with it, so resume never needs manual cleanup.
type Store struct {
	dir  string
	spec JobSpec

	mu      sync.Mutex
	journal *os.File
	lockf   *os.File
	done    map[int][]byte // seq -> canonical cell bytes
	closed  bool
}

// ReadSpec peeks at the job header of an existing store directory
// without locking it. ok is false when the directory holds no journal —
// a fresh job. Callers use it to inherit the selection on -resume.
func ReadSpec(dir string) (spec JobSpec, ok bool, err error) {
	f, err := os.Open(filepath.Join(dir, journalName))
	if os.IsNotExist(err) {
		return JobSpec{}, false, nil
	}
	if err != nil {
		return JobSpec{}, false, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(nil, 16<<20)
	if !sc.Scan() {
		return JobSpec{}, false, nil // empty journal: treat as fresh
	}
	var line journalLine
	if err := json.Unmarshal(sc.Bytes(), &line); err != nil || line.Type != "job" || line.Job == nil {
		return JobSpec{}, false, fmt.Errorf("coord: %s does not start with a job header", journalName)
	}
	return *line.Job, true, nil
}

// Open creates or resumes the job store in dir. A directory already
// holding a journal requires resume=true and an identical JobSpec;
// opening folds any journaled cells into the snapshot (compaction), so a
// resumed journal starts at just the header. The store holds an
// exclusive flock on the directory for its lifetime.
func Open(dir string, spec JobSpec, resume bool) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lockf, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(lockf.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lockf.Close()
		return nil, fmt.Errorf("coord: job dir %s is locked by another coordinator: %w", dir, err)
	}
	s := &Store{dir: dir, spec: spec, lockf: lockf, done: map[int][]byte{}}
	prev, exists, err := ReadSpec(dir)
	if err != nil {
		s.release()
		return nil, err
	}
	if exists {
		if !resume {
			s.release()
			return nil, fmt.Errorf("coord: job dir %s already holds a journal; pass -resume to continue it", dir)
		}
		if prev != spec {
			s.release()
			return nil, fmt.Errorf("coord: job spec mismatch: dir has {spec %q quick %t cells %d fp %q}, run wants {spec %q quick %t cells %d fp %q}",
				prev.Spec, prev.Quick, prev.Cells, prev.Fingerprint,
				spec.Spec, spec.Quick, spec.Cells, spec.Fingerprint)
		}
		if err := s.load(); err != nil {
			s.release()
			return nil, err
		}
	}
	// Compact: fold snapshot + journal into a fresh snapshot and a
	// header-only journal. On a fresh job this just writes the header.
	if err := s.compact(); err != nil {
		s.release()
		return nil, err
	}
	return s, nil
}

func (s *Store) release() {
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	if s.lockf != nil {
		syscall.Flock(int(s.lockf.Fd()), syscall.LOCK_UN)
		s.lockf.Close()
		s.lockf = nil
	}
}

// Close releases the journal and the directory lock.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.release()
	return nil
}

// load reads the snapshot (if any) and the journal's done lines into the
// done map. A torn trailing journal line — the signature of a SIGKILL
// mid-append — is tolerated and dropped; garbage anywhere else is
// corruption and fails. Duplicate cells (a crash between snapshot and
// journal truncation during compaction) must agree byte-for-byte.
func (s *Store) load() error {
	snap, err := os.Open(filepath.Join(s.dir, snapshotName))
	if err == nil {
		rs, derr := sweep.DecodeJSON(snap)
		snap.Close()
		if derr != nil {
			return fmt.Errorf("coord: %s: %w", snapshotName, derr)
		}
		for _, c := range rs.Cells {
			if err := s.admit(c.Seq, sweep.CellJSON(c)); err != nil {
				return fmt.Errorf("coord: %s: %w", snapshotName, err)
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	f, err := os.Open(filepath.Join(s.dir, journalName))
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(nil, 16<<20)
	var lines [][]byte
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("coord: %s: %w", journalName, err)
	}
	for i, raw := range lines {
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var line journalLine
		if err := json.Unmarshal(raw, &line); err != nil {
			if i == len(lines)-1 {
				// Torn final append: the in-flight lease's loss, by design.
				continue
			}
			return fmt.Errorf("coord: %s line %d: corrupt entry: %v", journalName, i+1, err)
		}
		switch line.Type {
		case "job":
			if i != 0 {
				return fmt.Errorf("coord: %s line %d: stray job header", journalName, i+1)
			}
		case "done":
			cell, err := sweep.DecodeCellJSON(line.Cell)
			if err != nil {
				if i == len(lines)-1 {
					continue // torn cell payload in the final line
				}
				return fmt.Errorf("coord: %s line %d: %v", journalName, i+1, err)
			}
			// Re-encode: admits exactly the canonical bytes, whatever
			// whitespace the raw payload carried.
			if err := s.admit(cell.Seq, sweep.CellJSON(cell)); err != nil {
				return fmt.Errorf("coord: %s line %d: %w", journalName, i+1, err)
			}
		case "lease", "expire":
			// Volatile audit trail; leases do not survive their coordinator.
		default:
			return fmt.Errorf("coord: %s line %d: unknown entry type %q", journalName, i+1, line.Type)
		}
	}
	return nil
}

// admit records one done cell's canonical bytes, verifying agreement
// with any copy already held (cells are deterministic, so two legitimate
// copies are byte-equal; disagreement means mixed runs).
func (s *Store) admit(seq int, canon []byte) error {
	if seq < 0 || seq >= s.spec.Cells {
		return fmt.Errorf("cell seq %d out of range [0,%d)", seq, s.spec.Cells)
	}
	if have, ok := s.done[seq]; ok {
		if !bytes.Equal(have, canon) {
			return fmt.Errorf("cell seq %d journaled twice with different payloads", seq)
		}
		return nil
	}
	s.done[seq] = canon
	return nil
}

// compact writes every done cell into a fresh snapshot (canonical
// ResultSet JSON, atomically renamed into place) and resets the journal
// to a header-only file. Crash ordering is safe: the snapshot lands
// before the journal shrinks, and load deduplicates by byte-equality.
func (s *Store) compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.done) > 0 {
		rs, err := s.resultsLocked()
		if err != nil {
			return err
		}
		tmp := filepath.Join(s.dir, snapshotName+".tmp")
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if err := rs.EncodeJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
			return err
		}
	}
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	tmp := filepath.Join(s.dir, journalName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	header, err := json.Marshal(journalLine{Type: "job", Job: &s.spec})
	if err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(append(header, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, journalName)); err != nil {
		f.Close()
		return err
	}
	s.journal = f
	return nil
}

// Compact folds the journal into the snapshot. Open does this
// automatically on resume; long-lived services may call it periodically.
func (s *Store) Compact() error { return s.compact() }

// Append journals finished cells (one fsynced write batch). Cells
// already done are skipped silently — late reports from a worker whose
// lease was stolen are legitimate duplicates of identical bytes.
func (s *Store) Append(entries []Done) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("coord: store closed")
	}
	var buf bytes.Buffer
	for _, d := range entries {
		canon := sweep.CellJSON(d.Cell)
		if err := s.admit(d.Cell.Seq, canon); err != nil {
			return err
		}
		// Telemetry keys precede "cell" so journal consumers can unwrap
		// the canonical payload by slicing to the final brace.
		fmt.Fprintf(&buf, `{"type": "done", "shard": %q, "lease_ms": %d, "steals": %d, "cell": %s}`+"\n",
			d.Shard, d.LeaseMS, d.Steals, canon)
	}
	if buf.Len() == 0 {
		return nil
	}
	if _, err := s.journal.Write(buf.Bytes()); err != nil {
		return err
	}
	return s.journal.Sync()
}

// Event journals a volatile lease/expire audit line. Best-effort: events
// are not part of the durability contract and are ignored on load.
func (s *Store) Event(typ string, id int64, shard string, cells []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	raw, err := json.Marshal(journalLine{Type: typ, ID: id, Shard: shard, Cells: cells})
	if err == nil {
		s.journal.Write(append(raw, '\n'))
	}
}

// Spec returns the job's identity.
func (s *Store) Spec() JobSpec { return s.spec }

// DoneSeqs returns the finished cells' sequence numbers in ascending
// order.
func (s *Store) DoneSeqs() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	seqs := make([]int, 0, len(s.done))
	for seq := range s.done {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	return seqs
}

// IsDone reports whether the cell with the given seq is checkpointed.
func (s *Store) IsDone(seq int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.done[seq]
	return ok
}

// CountDone returns the number of finished cells.
func (s *Store) CountDone() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.done)
}

// Results assembles the finished cells into a ResultSet in sequence
// order — the merged-so-far view while running, the complete set once
// CountDone == Spec().Cells.
func (s *Store) Results() (*sweep.ResultSet, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resultsLocked()
}

func (s *Store) resultsLocked() (*sweep.ResultSet, error) {
	seqs := make([]int, 0, len(s.done))
	for seq := range s.done {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	rs := &sweep.ResultSet{Cells: make([]sweep.CellResult, 0, len(seqs))}
	for _, seq := range seqs {
		c, err := sweep.DecodeCellJSON(s.done[seq])
		if err != nil {
			return nil, fmt.Errorf("coord: stored cell %d: %w", seq, err)
		}
		rs.Cells = append(rs.Cells, c)
	}
	return rs, nil
}
