package coord

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"gncg/internal/sweep"
)

// Wire types of the lease protocol. Cells travel as raw canonical bytes
// (sweep.CellJSON) and are re-canonicalized server-side before
// journaling, so a result's stored bytes never depend on HTTP framing.

type leaseRequest struct {
	Shard string `json:"shard"`
	Max   int    `json:"max"`
}

type leaseResponse struct {
	ID    int64 `json:"id"`
	Cells []int `json:"cells"`
	TTLMS int64 `json:"ttl_ms"`
	Done  bool  `json:"done"`
	// WaitMS is the suggested retry delay when no cells are pending but
	// the job is not complete (work may be stolen back shortly).
	WaitMS int64 `json:"wait_ms"`
}

type heartbeatRequest struct {
	ID    int64  `json:"id"`
	Shard string `json:"shard"`
}

type heartbeatResponse struct {
	OK bool `json:"ok"`
}

type reportRequest struct {
	ID    int64             `json:"id"`
	Shard string            `json:"shard"`
	Cells []json.RawMessage `json:"cells"`
}

type jobResponse struct {
	Job JobSpec `json:"job"`
}

// Server exposes the coordinator over HTTP: the worker protocol (/job,
// /lease, /heartbeat, /report) and the observability surface (/status,
// /results, /shutdown). It also runs the lease-expiry sweep.
type Server struct {
	co   *Coordinator
	http *http.Server
	ln   net.Listener

	stopOnce sync.Once
	shutOnce sync.Once
	stopCh   chan struct{} // closed on Close
	shutReq  chan struct{} // closed on /shutdown
}

// NewServer wraps a coordinator. Start must be called to serve.
func NewServer(co *Coordinator) *Server {
	s := &Server{co: co, stopCh: make(chan struct{}), shutReq: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /job", s.handleJob)
	mux.HandleFunc("POST /lease", s.handleLease)
	mux.HandleFunc("POST /heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /report", s.handleReport)
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /results", s.handleResults)
	mux.HandleFunc("POST /shutdown", s.handleShutdown)
	s.http = &http.Server{Handler: mux}
	return s
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves in the
// background, running the lease-expiry sweep until Close. It returns the
// resolved address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go s.http.Serve(ln)
	go s.expiryLoop()
	return ln.Addr().String(), nil
}

func (s *Server) expiryLoop() {
	ttl := s.co.opts.ttl()
	tick := time.NewTicker(ttl / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-tick.C:
			s.co.ExpireStale()
		}
	}
}

// ShutdownRequested is closed when a client POSTs /shutdown — the
// service owner's signal to stop lingering.
func (s *Server) ShutdownRequested() <-chan struct{} { return s.shutReq }

// Close stops the listener and the expiry loop.
func (s *Server) Close() error {
	s.stopOnce.Do(func() { close(s.stopCh) })
	return s.http.Close()
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, jobResponse{Job: s.co.Job()})
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	id, cells, ttl, done := s.co.Lease(req.Shard, req.Max)
	// Idle workers poll briskly (bounded below a TTL fraction): pending
	// work reappears at lease-expiry granularity, but the tail of a job
	// should not stall a quarter-TTL after the last steal.
	wait := ttl / 4
	if wait > 250*time.Millisecond {
		wait = 250 * time.Millisecond
	}
	writeJSON(w, leaseResponse{
		ID: id, Cells: cells, TTLMS: ttl.Milliseconds(), Done: done,
		WaitMS: wait.Milliseconds(),
	})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, heartbeatResponse{OK: s.co.Heartbeat(req.ID, req.Shard)})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	var req reportRequest
	if !readJSON(w, r, &req) {
		return
	}
	cells := make([]sweep.CellResult, 0, len(req.Cells))
	for i, raw := range req.Cells {
		c, err := sweep.DecodeCellJSON(raw)
		if err != nil {
			http.Error(w, fmt.Sprintf("report cell %d: %v", i, err), http.StatusBadRequest)
			return
		}
		cells = append(cells, c)
	}
	if err := s.co.Report(req.ID, req.Shard, cells); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, heartbeatResponse{OK: true})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.co.Status())
}

// handleResults streams the merged-so-far result set in the canonical
// interchange encoding — a partial but always-consistent view of the
// final output.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	rs, err := s.co.store.Results()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	rs.EncodeJSON(w)
}

func (s *Server) handleShutdown(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, heartbeatResponse{OK: true})
	s.shutOnce.Do(func() { close(s.shutReq) })
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}
