package facility

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gncg/internal/bitset"
)

// randomMetricInstance builds a UMFL instance from random points on the
// line: facilities and clients are points, connection costs are distances
// (hence metric), opening costs random.
func randomMetricInstance(rng *rand.Rand, nf, nc int, lockSome bool) *Instance {
	fpos := make([]float64, nf)
	cpos := make([]float64, nc)
	openCost := make([]float64, nf)
	locked := make([]bool, nf)
	for f := range fpos {
		fpos[f] = rng.Float64() * 100
		openCost[f] = rng.Float64() * 40
		if lockSome && rng.Float64() < 0.2 {
			locked[f] = true
			openCost[f] = 0
		}
	}
	for c := range cpos {
		cpos[c] = rng.Float64() * 100
	}
	conn := make([][]float64, nc)
	for c := range conn {
		conn[c] = make([]float64, nf)
		for f := range conn[c] {
			conn[c][f] = math.Abs(cpos[c] - fpos[f])
		}
	}
	ins, err := NewInstance(openCost, conn, locked)
	if err != nil {
		panic(err)
	}
	return ins
}

// bruteForce enumerates all facility subsets.
func bruteForce(ins *Instance) Solution {
	nf := ins.NumFacilities()
	best := Solution{Cost: math.Inf(1)}
	for mask := 0; mask < 1<<nf; mask++ {
		open := bitset.New(nf)
		skip := false
		for f := 0; f < nf; f++ {
			if mask&(1<<f) != 0 {
				if ins.Locked[f] {
					skip = true // locked handled implicitly; avoid double count
					break
				}
				open.Add(f)
			}
		}
		if skip {
			continue
		}
		if c := ins.Eval(open); c < best.Cost {
			best = Solution{Open: open, Cost: c}
		}
	}
	return best
}

func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance([]float64{-1}, [][]float64{{1}}, nil); err == nil {
		t.Error("negative opening cost accepted")
	}
	if _, err := NewInstance([]float64{1}, [][]float64{{1, 2}}, nil); err == nil {
		t.Error("ragged connection matrix accepted")
	}
	if _, err := NewInstance([]float64{1}, [][]float64{{1}}, []bool{true, false}); err == nil {
		t.Error("wrong locked length accepted")
	}
}

func TestEvalEmptyIsInf(t *testing.T) {
	ins, _ := NewInstance([]float64{5}, [][]float64{{2}}, nil)
	if got := ins.Eval(bitset.New(1)); !math.IsInf(got, 1) {
		t.Fatalf("no open facilities must cost +Inf, got %v", got)
	}
}

func TestEvalKnownValue(t *testing.T) {
	ins, _ := NewInstance(
		[]float64{5, 3},
		[][]float64{{1, 10}, {10, 2}},
		nil)
	open := bitset.New(2)
	open.Add(0)
	open.Add(1)
	if got := ins.Eval(open); got != 5+3+1+2 {
		t.Fatalf("Eval = %v, want 11", got)
	}
}

// TestExactMatchesBruteForce is the solver's ground-truth test.
func TestExactMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nf := 1 + rng.Intn(10)
		nc := 1 + rng.Intn(10)
		ins := randomMetricInstance(rng, nf, nc, true)
		want := bruteForce(ins).Cost
		got := Exact(ins).Cost
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExactRespectsLocked(t *testing.T) {
	// A locked useless facility must stay open and not break optimality.
	ins, _ := NewInstance(
		[]float64{0, 2},
		[][]float64{{50, 1}, {50, 1}},
		[]bool{true, false})
	sol := Exact(ins)
	if math.Abs(sol.Cost-(2+1+1)) > 1e-9 {
		t.Fatalf("Exact cost = %v, want 4", sol.Cost)
	}
	if !sol.Open.Has(1) {
		t.Fatal("facility 1 must be opened")
	}
}

func TestExactInfOpenCostNeverOpens(t *testing.T) {
	ins, _ := NewInstance(
		[]float64{math.Inf(1), 1},
		[][]float64{{0, 5}},
		nil)
	sol := Exact(ins)
	if sol.Open.Has(0) {
		t.Fatal("facility with +Inf opening cost opened")
	}
	if math.Abs(sol.Cost-6) > 1e-9 {
		t.Fatalf("cost = %v, want 6", sol.Cost)
	}
}

func TestGreedyUpperBoundsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ins := randomMetricInstance(rng, 1+rng.Intn(12), 1+rng.Intn(12), true)
		return Greedy(ins).Cost >= Exact(ins).Cost-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestLocalSearchWithin3OfOptimum checks the Arya et al. locality gap on
// random metric instances: a local optimum costs at most 3x the optimum.
func TestLocalSearchWithin3OfOptimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nf := 2 + rng.Intn(8)
		nc := 2 + rng.Intn(8)
		ins := randomMetricInstance(rng, nf, nc, false)
		opt := Exact(ins).Cost
		local := LocalSearch(ins, bitset.New(nf), 1e-12, 10000).Cost
		if math.IsInf(local, 1) {
			return false
		}
		return local <= 3*opt+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLocalSearchReachesLocalOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ins := randomMetricInstance(rng, 8, 10, true)
	sol := LocalSearch(ins, bitset.New(8), 1e-12, 10000)
	// No single open/close/swap improves: verify exhaustively.
	nf := ins.NumFacilities()
	check := func(open bitset.Set) {
		if c := ins.Eval(open); c < sol.Cost-1e-9 {
			t.Fatalf("local search missed improving move: %v < %v", c, sol.Cost)
		}
	}
	for f := 0; f < nf; f++ {
		if ins.Locked[f] {
			continue
		}
		mod := sol.Open.Clone()
		if sol.Open.Has(f) {
			mod.Remove(f)
		} else {
			mod.Add(f)
		}
		check(mod)
		if sol.Open.Has(f) {
			for in := 0; in < nf; in++ {
				if in == f || ins.Locked[in] || sol.Open.Has(in) {
					continue
				}
				sw := sol.Open.Clone()
				sw.Remove(f)
				sw.Add(in)
				check(sw)
			}
		}
	}
}

func TestLocalSearchFromDisconnected(t *testing.T) {
	// Starting from nothing open with no locked facilities: first move
	// must escape the +Inf cost state.
	ins, _ := NewInstance(
		[]float64{7},
		[][]float64{{3}, {4}},
		nil)
	sol := LocalSearch(ins, bitset.New(1), 1e-12, 100)
	if math.IsInf(sol.Cost, 1) {
		t.Fatal("local search stuck at +Inf")
	}
	if math.Abs(sol.Cost-14) > 1e-9 {
		t.Fatalf("cost = %v, want 14", sol.Cost)
	}
}
