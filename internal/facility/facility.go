// Package facility implements Uncapacitated Facility Location: choose a
// set of facilities to open (paying per-facility opening costs) and assign
// every client to its cheapest open facility (paying connection costs), to
// minimize the total.
//
// The paper (Thm 3) reduces an agent's strategy improvement in the metric
// GNCG to UMFL: facilities are the agent's potential neighbors, opening
// cost is the edge price (0 for edges already paid for by others), and
// connection cost is w(u,v) plus the network distance from v with the
// agent removed. Because the reduction is cost-preserving and bijective,
// an exact UMFL solver *is* an exact best-response solver, and single-step
// UMFL local search (open/close/swap one facility, Arya et al. 2004,
// locality gap 3) is the paper's 3-approximate best response.
//
// Facilities may be "locked" open: they model edges bought by other
// agents, which the deviating agent cannot remove.
package facility

import (
	"fmt"
	"math"

	"gncg/internal/bitset"
)

// Instance is an UMFL instance. Conn is indexed [client][facility]. A
// locked facility is always open and charges its opening cost never (use
// opening cost 0 for the game reduction; nonzero locked costs are simply
// constants).
type Instance struct {
	OpenCost []float64
	Conn     [][]float64
	Locked   []bool
}

// NewInstance validates dimensions and cost signs.
func NewInstance(openCost []float64, conn [][]float64, locked []bool) (*Instance, error) {
	nf := len(openCost)
	if locked == nil {
		locked = make([]bool, nf)
	}
	if len(locked) != nf {
		return nil, fmt.Errorf("facility: locked length %d, want %d", len(locked), nf)
	}
	for f, c := range openCost {
		if c < 0 || math.IsNaN(c) {
			return nil, fmt.Errorf("facility: invalid opening cost %v at %d", c, f)
		}
	}
	for i, row := range conn {
		if len(row) != nf {
			return nil, fmt.Errorf("facility: client %d has %d connection costs, want %d", i, len(row), nf)
		}
		for f, c := range row {
			if c < 0 || math.IsNaN(c) {
				return nil, fmt.Errorf("facility: invalid connection cost %v at client %d facility %d", c, i, f)
			}
		}
	}
	return &Instance{OpenCost: openCost, Conn: conn, Locked: locked}, nil
}

// NumFacilities returns the number of facilities.
func (ins *Instance) NumFacilities() int { return len(ins.OpenCost) }

// NumClients returns the number of clients.
func (ins *Instance) NumClients() int { return len(ins.Conn) }

// Eval returns the total cost of opening exactly the given set (locked
// facilities are added implicitly): opening costs of open non-locked and
// locked facilities alike, plus each client's cheapest open connection.
// Returns +Inf when some client has no finite connection.
func (ins *Instance) Eval(open bitset.Set) float64 {
	total := 0.0
	isOpen := make([]bool, ins.NumFacilities())
	for f := range isOpen {
		if ins.Locked[f] || open.Has(f) {
			isOpen[f] = true
			total += ins.OpenCost[f]
		}
	}
	for _, row := range ins.Conn {
		best := math.Inf(1)
		for f, c := range row {
			if isOpen[f] && c < best {
				best = c
			}
		}
		total += best
	}
	return total
}

// Solution is an UMFL outcome: the non-locked facilities opened and the
// total cost (locked facilities included implicitly).
type Solution struct {
	Open bitset.Set
	Cost float64
}

// Greedy builds a solution by repeatedly opening the facility with the
// best marginal improvement, starting from only the locked facilities.
// It is used to seed the exact solver with an upper bound and as a cheap
// standalone heuristic.
func Greedy(ins *Instance) Solution {
	nf, nc := ins.NumFacilities(), ins.NumClients()
	open := bitset.New(nf)
	assign := make([]float64, nc)
	openSum := 0.0
	for x := range assign {
		assign[x] = math.Inf(1)
	}
	for f := 0; f < nf; f++ {
		if ins.Locked[f] {
			openSum += ins.OpenCost[f]
			for x := 0; x < nc; x++ {
				if ins.Conn[x][f] < assign[x] {
					assign[x] = ins.Conn[x][f]
				}
			}
		}
	}
	assignSum := func(extra int) float64 {
		t := 0.0
		for x := 0; x < nc; x++ {
			a := assign[x]
			if extra >= 0 && ins.Conn[x][extra] < a {
				a = ins.Conn[x][extra]
			}
			t += a
		}
		return t
	}
	cost := openSum + assignSum(-1)
	for {
		bestF, bestCost := -1, cost
		for f := 0; f < nf; f++ {
			if ins.Locked[f] || open.Has(f) || math.IsInf(ins.OpenCost[f], 1) {
				continue
			}
			if c := openSum + ins.OpenCost[f] + assignSum(f); c < bestCost {
				bestCost, bestF = c, f
			}
		}
		if bestF < 0 {
			break
		}
		open.Add(bestF)
		openSum += ins.OpenCost[bestF]
		for x := 0; x < nc; x++ {
			if ins.Conn[x][bestF] < assign[x] {
				assign[x] = ins.Conn[x][bestF]
			}
		}
		cost = bestCost
	}
	return Solution{Open: open, Cost: ins.Eval(open)}
}
