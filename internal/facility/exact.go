package facility

import (
	"math"
	"sort"

	"gncg/internal/bitset"
)

// Exact solves the instance optimally by branch-and-bound over the
// non-locked facilities. Facilities with zero opening cost are pre-opened
// (opening them is free and can only lower connection costs), locked
// facilities are always open, and facilities with +Inf opening cost are
// never opened. The bound combines the accumulated cost with a per-client
// suffix minimum over the not-yet-decided facilities.
//
// UMFL is NP-hard, so worst-case time is exponential in the number of
// undecided facilities; the bound keeps the instances arising from
// exact best-response computation (tens of facilities) comfortably fast.
func Exact(ins *Instance) Solution {
	nf, nc := ins.NumFacilities(), ins.NumClients()

	// Partition facilities: forced open (locked or free), candidates
	// (finite positive cost), impossible (+Inf cost).
	open := bitset.New(nf)
	assign := make([]float64, nc)
	for x := range assign {
		assign[x] = math.Inf(1)
	}
	baseOpen := 0.0
	var cand []int
	for f := 0; f < nf; f++ {
		switch {
		case ins.Locked[f] || ins.OpenCost[f] == 0:
			if !ins.Locked[f] {
				open.Add(f)
			}
			baseOpen += ins.OpenCost[f]
			for x := 0; x < nc; x++ {
				if ins.Conn[x][f] < assign[x] {
					assign[x] = ins.Conn[x][f]
				}
			}
		case math.IsInf(ins.OpenCost[f], 1):
			// never open
		default:
			cand = append(cand, f)
		}
	}

	// Order candidates by decreasing standalone usefulness: the total
	// saving they would produce against the forced-open baseline. Deciding
	// impactful facilities early tightens the bound sooner.
	saving := make([]float64, nf)
	for _, f := range cand {
		s := 0.0
		for x := 0; x < nc; x++ {
			if d := assign[x] - ins.Conn[x][f]; d > 0 && !math.IsInf(d, 1) {
				s += d
			}
			if math.IsInf(assign[x], 1) && !math.IsInf(ins.Conn[x][f], 1) {
				s = math.Inf(1)
			}
		}
		saving[f] = s
	}
	sort.Slice(cand, func(i, j int) bool { return saving[cand[i]] > saving[cand[j]] })

	// suffixMin[i][x] = min connection cost for client x over candidates
	// cand[i:], used as the optimistic completion bound.
	suffixMin := make([][]float64, len(cand)+1)
	suffixMin[len(cand)] = make([]float64, nc)
	for x := range suffixMin[len(cand)] {
		suffixMin[len(cand)][x] = math.Inf(1)
	}
	for i := len(cand) - 1; i >= 0; i-- {
		row := make([]float64, nc)
		f := cand[i]
		for x := 0; x < nc; x++ {
			row[x] = math.Min(suffixMin[i+1][x], ins.Conn[x][f])
		}
		suffixMin[i] = row
	}

	// Seed with the greedy solution as the incumbent.
	best := Greedy(ins)

	var rec func(i int, openCost float64, assign []float64, chosen bitset.Set)
	rec = func(i int, openCost float64, assign []float64, chosen bitset.Set) {
		// Optimistic completion: every client connects to the better of
		// its current assignment and the best still-available facility.
		lb := openCost
		for x := 0; x < nc; x++ {
			lb += math.Min(assign[x], suffixMin[i][x])
		}
		if lb >= best.Cost {
			return
		}
		if i == len(cand) {
			total := openCost
			for x := 0; x < nc; x++ {
				total += assign[x]
			}
			if total < best.Cost {
				best = Solution{Open: chosen.Clone(), Cost: total}
			}
			return
		}
		f := cand[i]
		// Branch 1: open f.
		newAssign := make([]float64, nc)
		for x := 0; x < nc; x++ {
			newAssign[x] = math.Min(assign[x], ins.Conn[x][f])
		}
		chosen.Add(f)
		rec(i+1, openCost+ins.OpenCost[f], newAssign, chosen)
		chosen.Remove(f)
		// Branch 2: skip f.
		rec(i+1, openCost, assign, chosen)
	}
	start := chosenUnion(open, nf)
	rec(0, baseOpen, assign, start)
	// Merge forced-but-free facilities into the reported open set so Eval
	// round-trips (Eval adds locked ones itself).
	best.Open.Union(open)
	best.Cost = ins.Eval(best.Open)
	return best
}

func chosenUnion(open bitset.Set, nf int) bitset.Set {
	s := bitset.New(nf)
	s.Union(open)
	return s
}
