package facility

import (
	"math"

	"gncg/internal/bitset"
)

// lexCost orders solutions first by how many clients are disconnected
// (assigned +Inf), then by the finite cost part. Plain float comparison
// cannot escape an all-Inf start because Inf < Inf never holds; the
// lexicographic order makes every reduction in disconnected clients an
// improvement, so local search always reaches a fully-served solution
// when one exists (facility x serves client x at finite cost in the
// game-derived instances).
type lexCost struct {
	infs int
	sum  float64
}

func (c lexCost) less(d lexCost, eps float64) bool {
	if c.infs != d.infs {
		return c.infs < d.infs
	}
	return c.sum < d.sum-eps
}

// LocalSearch runs single-step local search from the given starting set:
// repeatedly apply the best cost-improving move among opening one closed
// facility, closing one open (non-locked) facility, or swapping an open
// facility for a closed one, until no move improves by more than eps.
//
// Arya et al. (SIAM J. Comput. 2004) prove the locality gap of metric UFL
// under exactly these moves is 3: any local optimum costs at most 3 times
// the global optimum. Through the paper's Thm 3 reduction this yields
// 3-approximate best responses in the M–GNCG, and combined with Thm 2
// (AE ⇒ (α+1)-GE) the 3(α+1)-NE existence of Cor. 2.
//
// maxIters bounds the number of applied moves (local search on UMFL
// always terminates because each move strictly decreases cost, but a
// bound keeps adversarial float behaviour harmless). Returns the reached
// solution.
func LocalSearch(ins *Instance, start bitset.Set, eps float64, maxIters int) Solution {
	nf, nc := ins.NumFacilities(), ins.NumClients()
	open := start.Clone()
	for f := 0; f < nf; f++ {
		if ins.Locked[f] {
			open.Remove(f) // locked facilities tracked implicitly
		}
	}
	isOpen := func(f int) bool { return ins.Locked[f] || open.Has(f) }

	for iter := 0; iter < maxIters; iter++ {
		// best1/best2: cheapest and second-cheapest open connection per
		// client, with the facility achieving best1.
		best1 := make([]float64, nc)
		best2 := make([]float64, nc)
		arg1 := make([]int, nc)
		for x := 0; x < nc; x++ {
			best1[x], best2[x], arg1[x] = math.Inf(1), math.Inf(1), -1
			for f := 0; f < nf; f++ {
				if !isOpen(f) {
					continue
				}
				c := ins.Conn[x][f]
				switch {
				case c < best1[x]:
					best2[x] = best1[x]
					best1[x], arg1[x] = c, f
				case c < best2[x]:
					best2[x] = c
				}
			}
		}
		openSum := 0.0
		for f := 0; f < nf; f++ {
			if isOpen(f) {
				openSum += ins.OpenCost[f]
			}
		}
		accumulate := func(base lexCost, v float64) lexCost {
			if math.IsInf(v, 1) {
				base.infs++
			} else {
				base.sum += v
			}
			return base
		}
		cur := lexCost{sum: openSum}
		for x := 0; x < nc; x++ {
			cur = accumulate(cur, best1[x])
		}

		bestMove := cur
		bestApply := func() {}
		consider := func(c lexCost, apply func()) {
			if c.less(bestMove, eps) {
				bestMove, bestApply = c, apply
			}
		}
		// Open moves.
		for f := 0; f < nf; f++ {
			if isOpen(f) || math.IsInf(ins.OpenCost[f], 1) {
				continue
			}
			c := lexCost{sum: openSum + ins.OpenCost[f]}
			for x := 0; x < nc; x++ {
				c = accumulate(c, math.Min(best1[x], ins.Conn[x][f]))
			}
			f := f
			consider(c, func() { open.Add(f) })
		}
		// Close moves.
		for f := 0; f < nf; f++ {
			if !open.Has(f) {
				continue
			}
			c := lexCost{sum: openSum - ins.OpenCost[f]}
			for x := 0; x < nc; x++ {
				if arg1[x] == f {
					c = accumulate(c, best2[x])
				} else {
					c = accumulate(c, best1[x])
				}
			}
			f := f
			consider(c, func() { open.Remove(f) })
		}
		// Swap moves: close out, open in.
		for out := 0; out < nf; out++ {
			if !open.Has(out) {
				continue
			}
			for in := 0; in < nf; in++ {
				if isOpen(in) || math.IsInf(ins.OpenCost[in], 1) {
					continue
				}
				c := lexCost{sum: openSum - ins.OpenCost[out] + ins.OpenCost[in]}
				for x := 0; x < nc; x++ {
					base := best1[x]
					if arg1[x] == out {
						base = best2[x]
					}
					c = accumulate(c, math.Min(base, ins.Conn[x][in]))
				}
				out, in := out, in
				consider(c, func() { open.Remove(out); open.Add(in) })
			}
		}
		if !bestMove.less(cur, eps) {
			break
		}
		bestApply()
	}
	return Solution{Open: open, Cost: ins.Eval(open)}
}
