package game

import "sync"

// distCache memoizes shortest-path computations on the created network
// G(s): per-source Dijkstra rows (backing DistCost/Cost/SocialCost) and
// per-removed-vertex APSP matrices (backing the best-response reduction's
// G∖u distances). Entries are stamped with the network version they were
// computed against; any real edge change bumps the version, implicitly
// invalidating every entry without clearing storage.
//
// Version stamps come from a monotone sequence that is never reused, which
// makes speculative evaluation cheap to undo: CostAfter snapshots the
// version, mutates, evaluates, reverts the mutation and then re-tags the
// pre-speculation entries with a fresh stamp (restore). Rows computed
// against the speculative network keep their dead stamp and can never be
// mistaken for current again.
//
// The cache is safe for concurrent read-side use (parallel cost queries on
// distinct sources, as in IsNash and TotalDistCost); mutation of the state
// itself remains single-threaded, as documented on State.
type distCache struct {
	mu       sync.Mutex
	seq      uint64 // stamp supply; strictly increasing, never reused
	version  uint64 // stamp of the current network
	rows     [][]float64
	rowVer   []uint64
	avoid    [][][]float64 // avoid[u]: APSP of G(s) with vertex u removed
	avoidVer []uint64
	off      bool
}

// avoidCacheMaxN bounds the vertex count for which G∖u matrices are
// cached: each entry is n² floats and up to n of them can be live, so the
// worst case is n³ — fine for the exact-verification tier (IsNash & co.
// are exponential anyway), wasteful beyond it.
const avoidCacheMaxN = 128

func newDistCache(n int, off bool) *distCache {
	return &distCache{
		rows:     make([][]float64, n),
		rowVer:   make([]uint64, n),
		avoid:    make([][][]float64, n),
		avoidVer: make([]uint64, n),
		// version starts at seq = 0; rowVer entries are also 0, so rows
		// are nil-checked before the stamp comparison.
		off: off,
	}
}

// bump marks the network as changed: all cached entries become stale.
func (c *distCache) bump() {
	c.mu.Lock()
	c.seq++
	c.version = c.seq
	c.mu.Unlock()
}

// snapshot returns the current version for a later restore.
func (c *distCache) snapshot() uint64 {
	c.mu.Lock()
	v := c.version
	c.mu.Unlock()
	return v
}

// restore declares the network identical to what it was at snapshot time
// (the caller has exactly undone its speculative mutation). Entries
// computed at the snapshot version are re-tagged with a fresh stamp and
// become valid again; entries computed during the speculation keep a dead
// stamp forever.
func (c *distCache) restore(snap uint64) {
	c.mu.Lock()
	c.seq++
	nv := c.seq
	for i, rv := range c.rowVer {
		if c.rows[i] != nil && rv == snap {
			c.rowVer[i] = nv
		}
	}
	for i, av := range c.avoidVer {
		if c.avoid[i] != nil && av == snap {
			c.avoidVer[i] = nv
		}
	}
	c.version = nv
	c.mu.Unlock()
}

// Dist returns shortest-path distances from src in G(s), memoized until
// the network next changes. Callers must not mutate the returned slice.
func (s *State) Dist(src int) []float64 {
	c := s.cache
	if c == nil {
		return s.net.Dijkstra(src)
	}
	c.mu.Lock()
	if c.off {
		c.mu.Unlock()
		return s.net.Dijkstra(src)
	}
	if c.rows[src] != nil && c.rowVer[src] == c.version {
		row := c.rows[src]
		c.mu.Unlock()
		return row
	}
	ver := c.version
	c.mu.Unlock()
	row := s.net.Dijkstra(src)
	c.mu.Lock()
	// Only publish if the network did not change while we computed; a
	// concurrent reader may have published the same row already, which is
	// harmless (identical content).
	if c.version == ver {
		c.rows[src] = row
		c.rowVer[src] = ver
	}
	c.mu.Unlock()
	return row
}

// APSPAvoiding returns all-pairs shortest paths in G(s) with vertex
// `avoid` (and its incident edges) removed — the best-response
// reduction's distance input — memoized until the network next changes.
// Callers must not mutate the returned matrix.
func (s *State) APSPAvoiding(avoid int) [][]float64 {
	c := s.cache
	if c == nil || s.G.N() > avoidCacheMaxN {
		return s.net.APSPAvoiding(avoid)
	}
	c.mu.Lock()
	if c.off {
		c.mu.Unlock()
		return s.net.APSPAvoiding(avoid)
	}
	if c.avoid[avoid] != nil && c.avoidVer[avoid] == c.version {
		m := c.avoid[avoid]
		c.mu.Unlock()
		return m
	}
	ver := c.version
	c.mu.Unlock()
	m := s.net.APSPAvoiding(avoid)
	c.mu.Lock()
	if c.version == ver {
		c.avoid[avoid] = m
		c.avoidVer[avoid] = ver
	}
	c.mu.Unlock()
	return m
}

// SetDistCaching toggles distance memoization on the state (on by
// default). Turning it off makes every cost query recompute from scratch
// — the uncached baseline used by benchmarks and correctness tests.
// Version stamping continues while the toggle is off, so re-enabling is
// always safe: entries that predate any interleaved mutation carry a dead
// stamp and never revalidate.
func (s *State) SetDistCaching(on bool) {
	s.cache.mu.Lock()
	s.cache.off = !on
	s.cache.mu.Unlock()
}

// DistCachingEnabled reports whether distance memoization is on.
func (s *State) DistCachingEnabled() bool {
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	return !s.cache.off
}
