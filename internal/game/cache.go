package game

import (
	"sync"

	"gncg/internal/graph"
)

// distCache memoizes shortest-path computations on the created network
// G(s): per-source Dijkstra rows (backing DistCost/Cost/SocialCost), the
// per-row traffic-weighted distance-sum aggregates that make repeated
// cost queries O(1) (see aggregate.go), and per-removed-vertex APSP
// matrices (backing the best-response reduction's G∖u distances).
//
// The cache is lazy: an applied edge change never touches a cached row.
// Every single-edge mutation appends one delta to a bounded log and
// advances the head position; a row carries the position it was last
// valid at and is brought current on its next read by collapsing the
// pending deltas into a net edge diff and repairing the row across that
// diff in one batch (graph.RepairRowBatch — Ramalingam–Reps removals
// against the pre-addition graph, then a shared insertion wavefront).
// A repaired row is bit-identical to a fresh Dijkstra on the current
// network, so laziness is unobservable in values. Rows that fall behind
// the log's compaction horizon, or whose removal repair exceeds its
// budget, are dropped and recomputed on demand. Bulk strategy
// replacements bump: the log is discarded and every row expires.
//
// Positions also make speculative evaluation cheap to undo: CostAfter
// snapshots the head, mutates, evaluates, exactly reverts the mutation
// and calls restore, which rewinds the head to the snapshot — rows that
// were current before the speculation never notice it, rows read during
// it are batch-repaired across the leftover deltas (usually a net-zero
// diff) and land back on the snapshot position, and the speculative log
// suffix is dropped.
//
// Cached rows are capped (rowCacheCap) so the cache holds O(cap·n)
// floats, not O(n²), at scale; a clock sweep evicts stale rows first.
// Eviction and laziness change which queries are cache hits but never
// their values, so results stay byte-deterministic under any schedule.
//
// The cache is safe for concurrent read-side use (parallel cost queries
// on distinct sources, as in IsNash and TotalDistCost); mutation of the
// state itself remains single-threaded, as documented on State. Because
// repair rewrites rows in place, a slice returned by Dist is only valid
// until the state's next mutation.
type distCache struct {
	mu sync.Mutex

	// Delta-log positions. head counts every network change ever applied
	// (one per single-edge delta, one per bump); log[i] is the delta that
	// took the network from position base+i to base+i+1, so the log
	// covers (base, head] and len(log) == head-base. base advances on
	// compaction and jumps to head on bump.
	head uint64
	base uint64
	log  []edgeDelta

	rows   [][]float64
	rowPos []uint64
	agg    []rowAgg
	cached int // non-nil rows
	cap    int // max cached rows
	clock  int // eviction sweep pointer

	avoid    [][][]float64 // avoid[u]: APSP of G(s) with vertex u removed
	avoidPos []uint64

	// Speculation bookkeeping: while a snapshot is outstanding, every row
	// or matrix whose position is (re)assigned is recorded so restore can
	// fix up exactly the entries the speculation touched instead of
	// scanning all n, and the first time a row is repaired inside the
	// window its pre-repair contents are journaled (one memcopy) so
	// restore can swap them back instead of repairing in reverse — on
	// tie-heavy hosts the reverse removal repair routinely blows its
	// affected-set budget and would cost a fresh Dijkstra per speculative
	// candidate. Overlapping snapshots (not produced by CostAfter, but
	// tolerated) drop the journals and degrade to a full scan.
	specDepth   int
	specOverlap bool
	restoring   bool
	specRows    []int
	specAvoid   []int
	specSaved   []rowJournal
	rowPool     [][]float64 // spare row buffers recycled through the journal

	// Dirty-block scratch for aggregate maintenance (see aggregate.go).
	aggDirty     []int
	aggDirtyFlag []bool

	stats CacheStats

	off bool
}

// CacheStats counts distance-cache events over a state's lifetime — the
// observability the ROADMAP's eviction-policy question needs answered
// with data rather than intuition. Counters are exact under
// single-threaded use. Under concurrent read-side use, racing readers of
// the same cold row each count a miss (each really ran a Dijkstra), so
// which reads hit depends on timing: sweeps feeding the byte-identical
// results contract must record counters only from single-threaded
// phases (or from a fresh Clone probed sequentially).
type CacheStats struct {
	// Hits counts warm answers: O(1) aggregate reads and current- or
	// repaired-row reads that avoided a fresh Dijkstra.
	Hits uint64
	// Misses counts fresh Dijkstra recomputations (cold rows, rows behind
	// the log horizon, and rows whose repair refused).
	Misses uint64
	// BatchRepairs counts stale rows brought current in place across a
	// non-empty collapsed delta diff (graph.RepairRowBatch calls).
	BatchRepairs uint64
	// RepairRefusals counts repairs that exceeded their affected-set
	// budget: the row was dropped and recomputed instead.
	RepairRefusals uint64
	// Evictions counts rows dropped by the capacity clock sweep.
	Evictions uint64
	// Capacity is the row-cache cap the state was created with (not a
	// counter; filled by State.CacheStats for context).
	Capacity int
}

// CacheStats returns a snapshot of the distance cache's event counters.
func (s *State) CacheStats() CacheStats {
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	st := s.cache.stats
	st.Capacity = s.cache.cap
	return st
}

// edgeDelta is one logged single-edge network change.
type edgeDelta struct {
	u, v int
	w    float64
	add  bool
}

// rowJournal is one row's pre-speculation state: the contents and
// aggregate it had at position pos, saved before the speculation's first
// repair touched it.
type rowJournal struct {
	i   int
	pos uint64
	row []float64
	agg rowAgg
}

// maxPendingDeltas bounds the delta log. A row further behind than the
// log's horizon cannot be replayed and recomputes from scratch; past a
// hundred or so collapsed deltas the batch repair would approach the
// price of a fresh Dijkstra anyway.
const maxPendingDeltas = 96

// avoidCacheMaxN bounds the vertex count for which G∖u matrices are
// cached: each entry is n² floats and up to n of them can be live, so the
// worst case is n³ — fine for the exact-verification tier (IsNash & co.
// are exponential anyway), wasteful beyond it.
const avoidCacheMaxN = 128

// rowCacheCap returns the maximum number of cached distance rows for an
// n-agent state: every row up to a ~256 MiB row budget, so small and
// mid-size states cache everything and a 10k-agent state holds a few
// thousand rows instead of an 800 MB dense matrix. It is a variable so
// tests can force eviction on small states.
var rowCacheCap = func(n int) int {
	if n <= 0 {
		return 1
	}
	c := (256 << 20) / (8 * n)
	if c < 64 {
		c = 64
	}
	if c > n {
		c = n
	}
	return c
}

func newDistCache(n int, off bool) *distCache {
	return &distCache{
		rows:         make([][]float64, n),
		rowPos:       make([]uint64, n),
		agg:          make([]rowAgg, n),
		cap:          rowCacheCap(n),
		avoid:        make([][][]float64, n),
		avoidPos:     make([]uint64, n),
		aggDirtyFlag: make([]bool, (n+aggBlock-1)/aggBlock),
		off:          off,
	}
}

// bump marks the network as changed in a way no logged delta describes:
// all cached entries expire and nothing older than the bump can ever be
// replayed.
func (c *distCache) bump() {
	c.mu.Lock()
	c.head++
	c.base = c.head
	c.log = c.log[:0]
	c.mu.Unlock()
}

// edgeChanged records the insertion (added=true) or deletion of edge
// (u,v,w) in net, which the caller has already mutated. O(1): no cached
// row is touched — each repairs itself against the log on its next read.
func (c *distCache) edgeChanged(u, v int, w float64, added bool) {
	c.mu.Lock()
	c.head++
	c.log = append(c.log, edgeDelta{u: u, v: v, w: w, add: added})
	if len(c.log) > maxPendingDeltas {
		drop := len(c.log) - maxPendingDeltas
		c.base += uint64(drop)
		c.log = append(c.log[:0], c.log[drop:]...)
	}
	c.mu.Unlock()
}

// repairBudget supplies the affected-set budget for removal repair. It is
// a variable so tests can force the fallback path (rows dropped and
// recomputed from scratch) on graphs small enough that the default
// budget would otherwise never be exceeded.
var repairBudget = graph.DefaultRepairBudget

// pendingDiff collapses the logged deltas after position pos into the net
// edge difference between the network at pos and the current network: a
// pair flipped an even number of times cancels entirely (e.g. the
// apply/undo pair of a speculative move), an odd number of times appears
// once, on the side of its final flip. Order follows first appearance in
// the log, keeping replay deterministic. Caller holds c.mu; pos must be
// within the log's horizon (pos >= base).
func (c *distCache) pendingDiff(pos uint64) (removed, added []graph.Edge) {
	type flip struct {
		e   graph.Edge
		add bool
		net bool // presence differs from the row's network
	}
	var flips []flip
	idx := map[[2]int]int{}
	for i := int(pos - c.base); i < len(c.log); i++ {
		d := c.log[i]
		key := [2]int{min(d.u, d.v), max(d.u, d.v)}
		if j, ok := idx[key]; ok {
			flips[j].net = !flips[j].net
			flips[j].add = d.add
			continue
		}
		idx[key] = len(flips)
		flips = append(flips, flip{e: graph.Edge{U: d.u, V: d.v, W: d.w}, add: d.add, net: true})
	}
	for _, f := range flips {
		if !f.net {
			continue
		}
		if f.add {
			added = append(added, f.e)
		} else {
			removed = append(removed, f.e)
		}
	}
	return removed, added
}

// replayRowLocked brings cached row i from its position to the current
// head by batch-repairing it across the pending net diff, maintaining its
// distance-sum aggregate incrementally (dirty blocks only). Returns false
// if the repair refused (budget) — the row is dropped and the caller
// should recompute. Caller holds c.mu and has checked rowPos[i] >= base.
func (c *distCache) replayRowLocked(s *State, i int) bool {
	removed, added := c.pendingDiff(c.rowPos[i])
	if len(removed)+len(added) > 0 {
		c.journalRowLocked(i)
		row := c.rows[i]
		mark := c.beginAggMark()
		if !s.net.RepairRowBatch(row, i, removed, added, repairBudget(len(c.rows)), mark) {
			c.clearAggScratch()
			c.dropRowLocked(i)
			c.stats.RepairRefusals++
			return false
		}
		c.stats.BatchRepairs++
		c.finishAggUpdate(s, i, row)
	}
	c.setRowPosLocked(i, c.head)
	return true
}

// journalRowLocked saves row i's current contents and aggregate the
// first time a speculation window is about to repair it, so restore can
// swap the pre-speculation state back in O(1).
func (c *distCache) journalRowLocked(i int) {
	if c.specDepth == 0 || c.restoring || c.specOverlap {
		return
	}
	for _, j := range c.specSaved {
		if j.i == i {
			return // first save wins: it is the pre-window state
		}
	}
	a := c.agg[i]
	a.blocks = append([]float64(nil), a.blocks...)
	buf := c.getRowBufLocked(len(c.rows[i]))
	copy(buf, c.rows[i])
	c.specSaved = append(c.specSaved, rowJournal{
		i:   i,
		pos: c.rowPos[i],
		row: buf,
		agg: a,
	})
}

func (c *distCache) getRowBufLocked(n int) []float64 {
	if k := len(c.rowPool); k > 0 {
		buf := c.rowPool[k-1]
		c.rowPool = c.rowPool[:k-1]
		return buf[:n]
	}
	return make([]float64, n)
}

func (c *distCache) setRowPosLocked(i int, pos uint64) {
	c.rowPos[i] = pos
	if c.specDepth > 0 && !c.restoring {
		c.specRows = append(c.specRows, i)
	}
}

func (c *distCache) dropRowLocked(i int) {
	if c.rows[i] != nil {
		c.rows[i] = nil
		c.agg[i] = rowAgg{}
		c.cached--
	}
}

// insertRowLocked publishes a freshly computed row at position pos,
// evicting another row first if the cache is at capacity.
func (c *distCache) insertRowLocked(s *State, i int, row []float64, pos uint64) {
	if c.rows[i] == nil && c.cached >= c.cap {
		c.evictOneLocked(i)
	}
	if c.rows[i] == nil {
		c.cached++
	}
	c.rows[i] = row
	c.agg[i] = buildRowAgg(s, i, row)
	c.setRowPosLocked(i, pos)
}

// evictOneLocked drops one cached row (never keep), preferring stale rows
// — their loss costs at most a recompute that was plausibly due anyway —
// via a clock sweep that makes eviction O(1) amortized.
func (c *distCache) evictOneLocked(keep int) {
	n := len(c.rows)
	for pass := 0; pass < 2; pass++ {
		for k := 0; k < n; k++ {
			i := c.clock
			c.clock++
			if c.clock == n {
				c.clock = 0
			}
			if i == keep || c.rows[i] == nil {
				continue
			}
			if pass == 0 && c.rowPos[i] == c.head {
				continue // first pass: stale rows only
			}
			c.dropRowLocked(i)
			c.stats.Evictions++
			return
		}
	}
}

// snapshot opens a speculation window and returns the current head
// position for a later restore.
func (c *distCache) snapshot() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.specDepth++
	if c.specDepth > 1 {
		c.specOverlap = true
		c.specSaved = c.specSaved[:0] // ambiguous across windows: fall back to replay
	}
	return c.head
}

// restore declares the network identical to what it was at snapshot time
// (the caller has exactly undone its speculative mutation). Rows that
// were current at the snapshot were never touched and stay valid for
// free. Rows read or computed during the speculation are batch-repaired
// across whatever deltas still separate them from the current network —
// for the apply/undo pair of a single speculative move the net diff is
// empty, so the repair is a free re-stamp — and land back on the
// snapshot position. The speculative log suffix is then dropped and the
// head rewound, so speculation leaves no trace in the log.
func (c *distCache) restore(s *State, snap uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.restoring = true
	// Journaled rows swap their pre-speculation contents back: O(1), no
	// reverse repair. (A journal can carry a mid-window position if the
	// row was first re-stamped across an empty diff; those fall through
	// to the generic replay below.)
	for _, j := range c.specSaved {
		if j.pos > snap {
			c.rowPool = append(c.rowPool, j.row)
			continue
		}
		if old := c.rows[j.i]; old == nil {
			c.cached++ // resurrecting a row the window dropped
		} else {
			c.rowPool = append(c.rowPool, old)
		}
		c.rows[j.i] = j.row
		c.agg[j.i] = j.agg
		c.rowPos[j.i] = j.pos
	}
	c.specSaved = c.specSaved[:0]
	rows, avoids := c.specRows, c.specAvoid
	if c.specOverlap {
		rows, avoids = seq(len(c.rows)), seq(len(c.avoid))
	}
	for _, i := range rows {
		if c.rows[i] == nil || c.rowPos[i] <= snap {
			continue
		}
		if c.rowPos[i] < c.head {
			// A row stranded mid-speculation without a journal: bring it
			// to the current (= snapshot) network by the same batch
			// repair its next read would have run, before the speculative
			// deltas are dropped. A refusal drops the row, losing only
			// warmth.
			if c.rowPos[i] < c.base || !c.replayRowLocked(s, i) {
				c.dropRowLocked(i)
				continue
			}
		}
		if c.rowPos[i] == c.head {
			c.rowPos[i] = snap
		}
	}
	for _, i := range avoids {
		if c.avoid[i] == nil || c.avoidPos[i] <= snap {
			continue
		}
		if c.avoidPos[i] == c.head {
			c.avoidPos[i] = snap
		} else {
			c.avoid[i] = nil
		}
	}
	// Drop the speculative log suffix and rewind.
	if snap >= c.base {
		c.log = c.log[:snap-c.base]
	} else {
		c.log = c.log[:0]
		c.base = snap
	}
	c.head = snap
	c.restoring = false
	c.specDepth--
	if c.specDepth == 0 {
		c.specRows = c.specRows[:0]
		c.specAvoid = c.specAvoid[:0]
		c.specOverlap = false
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Dist returns shortest-path distances from src in G(s), memoized until
// the network next changes. Callers must not mutate the returned slice
// and must not retain it across a state mutation: stale rows are
// batch-repaired in place on read, so the slice's contents track the
// current network, not the network at call time.
func (s *State) Dist(src int) []float64 {
	c := s.cache
	c.mu.Lock()
	if c.off {
		c.mu.Unlock()
		return s.net.Dijkstra(src)
	}
	if row := c.rows[src]; row != nil {
		if c.rowPos[src] == c.head {
			c.stats.Hits++
			c.mu.Unlock()
			return row
		}
		if c.rowPos[src] >= c.base {
			if c.replayRowLocked(s, src) {
				row = c.rows[src]
				c.stats.Hits++
				c.mu.Unlock()
				return row
			}
			// Repair refused; the row was dropped — recompute below.
		} else {
			c.dropRowLocked(src) // behind the log horizon
		}
	}
	pos := c.head
	c.stats.Misses++
	c.mu.Unlock()
	row := s.net.Dijkstra(src)
	c.mu.Lock()
	// Only publish if the network did not change while we computed and no
	// concurrent reader beat us to it (identical content either way).
	if c.head == pos && c.rows[src] == nil {
		c.insertRowLocked(s, src, row, pos)
	}
	c.mu.Unlock()
	return row
}

// APSPAvoiding returns all-pairs shortest paths in G(s) with vertex
// `avoid` (and its incident edges) removed — the best-response
// reduction's distance input — memoized until the network next changes.
// Callers must not mutate the returned matrix.
func (s *State) APSPAvoiding(avoid int) [][]float64 {
	c := s.cache
	if s.G.N() > avoidCacheMaxN {
		return s.net.APSPAvoiding(avoid)
	}
	c.mu.Lock()
	if c.off {
		c.mu.Unlock()
		return s.net.APSPAvoiding(avoid)
	}
	if c.avoid[avoid] != nil && c.avoidPos[avoid] == c.head {
		m := c.avoid[avoid]
		c.mu.Unlock()
		return m
	}
	pos := c.head
	c.mu.Unlock()
	m := s.net.APSPAvoiding(avoid)
	c.mu.Lock()
	if c.head == pos {
		c.avoid[avoid] = m
		c.avoidPos[avoid] = pos
		if c.specDepth > 0 && !c.restoring {
			c.specAvoid = append(c.specAvoid, avoid)
		}
	}
	c.mu.Unlock()
	return m
}

// SetDistCaching toggles distance memoization on the state (on by
// default). Turning it off makes every cost query recompute from scratch
// — the uncached baseline used by benchmarks and correctness tests.
// Delta logging continues while the toggle is off, so re-enabling is
// always safe: parked rows either replay across the logged changes or
// fall behind the horizon and recompute.
func (s *State) SetDistCaching(on bool) {
	s.cache.mu.Lock()
	s.cache.off = !on
	s.cache.mu.Unlock()
}

// DistCachingEnabled reports whether distance memoization is on.
func (s *State) DistCachingEnabled() bool {
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	return !s.cache.off
}
