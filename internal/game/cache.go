package game

import (
	"sync"

	"gncg/internal/graph"
)

// distCache memoizes shortest-path computations on the created network
// G(s): per-source Dijkstra rows (backing DistCost/Cost/SocialCost) and
// per-removed-vertex APSP matrices (backing the best-response reduction's
// G∖u distances). Entries are stamped with the network version they were
// computed against; the version advances on every edge change.
//
// Single-edge changes — the buy/delete/swap moves all dynamics are built
// from — do not discard the rows: they are repaired in place with the
// dynamic shortest-path primitives of internal/graph (Ramalingam–Reps
// style) and re-stamped onto the new version, so a repaired row is
// bit-identical to a fresh Dijkstra on the mutated network. A row whose
// affected set exceeds the repair budget keeps its dead stamp and is
// recomputed lazily on the next query. Bulk strategy replacements and the
// G∖u matrices fall back to wholesale invalidation (bump).
//
// Version stamps come from a monotone sequence that is never reused, which
// makes speculative evaluation cheap to undo: CostAfter snapshots the
// version, mutates, evaluates, reverts the mutation and then re-tags the
// still-consistent entries with a fresh stamp (restore). After an exact
// undo two kinds of entry are consistent: entries untouched since the
// snapshot (the network is back to the identical edge set) and entries
// carrying the current version (they were repaired across both the move
// and its inverse, or computed after the revert). Everything else keeps a
// dead stamp and can never be mistaken for current again.
//
// The cache is safe for concurrent read-side use (parallel cost queries on
// distinct sources, as in IsNash and TotalDistCost); mutation of the state
// itself remains single-threaded, as documented on State. Because repair
// rewrites rows in place, a slice returned by Dist is only valid until the
// state's next mutation.
type distCache struct {
	mu       sync.Mutex
	seq      uint64 // stamp supply; strictly increasing, never reused
	version  uint64 // stamp of the current network
	rows     [][]float64
	rowVer   []uint64
	avoid    [][][]float64 // avoid[u]: APSP of G(s) with vertex u removed
	avoidVer []uint64
	off      bool
}

// avoidCacheMaxN bounds the vertex count for which G∖u matrices are
// cached: each entry is n² floats and up to n of them can be live, so the
// worst case is n³ — fine for the exact-verification tier (IsNash & co.
// are exponential anyway), wasteful beyond it.
const avoidCacheMaxN = 128

func newDistCache(n int, off bool) *distCache {
	return &distCache{
		rows:     make([][]float64, n),
		rowVer:   make([]uint64, n),
		avoid:    make([][][]float64, n),
		avoidVer: make([]uint64, n),
		// version starts at seq = 0; rowVer entries are also 0, so rows
		// are nil-checked before the stamp comparison.
		off: off,
	}
}

// bump marks the network as changed: all cached entries become stale.
func (c *distCache) bump() {
	c.mu.Lock()
	c.seq++
	c.version = c.seq
	c.mu.Unlock()
}

// edgeAdded advances the version across the insertion of edge (u,v,w)
// into net (already mutated) and repairs every currently-valid row in
// place, carrying it onto the new version. The G∖u matrices are not
// repaired and implicitly expire.
func (c *distCache) edgeAdded(net *graph.Graph, u, v int, w float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	nv := c.seq
	if !c.off {
		for i, row := range c.rows {
			if row == nil || c.rowVer[i] != c.version {
				continue
			}
			net.RepairRowAdd(row, u, v, w)
			c.rowVer[i] = nv
		}
	}
	c.version = nv
}

// repairBudget supplies the affected-set budget for removal repair. It is
// a variable so tests can force the fallback path (rows dropped to a dead
// stamp and recomputed lazily) on graphs small enough that the default
// budget would otherwise never be exceeded.
var repairBudget = graph.DefaultRepairBudget

// edgeRemoved is edgeAdded's counterpart for deleting edge (u,v) of
// weight w from net (already mutated). Rows whose affected set exceeds
// the repair budget are left behind on the dead version and recomputed
// lazily on their next query.
func (c *distCache) edgeRemoved(net *graph.Graph, u, v int, w float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	nv := c.seq
	if !c.off {
		budget := repairBudget(len(c.rows))
		for i, row := range c.rows {
			if row == nil || c.rowVer[i] != c.version {
				continue
			}
			if _, ok := net.RepairRowRemove(row, i, u, v, w, budget); ok {
				c.rowVer[i] = nv
			}
		}
	}
	c.version = nv
}

// snapshot returns the current version for a later restore.
func (c *distCache) snapshot() uint64 {
	c.mu.Lock()
	v := c.version
	c.mu.Unlock()
	return v
}

// restore declares the network identical to what it was at snapshot time
// (the caller has exactly undone its speculative mutation). Entries
// computed at the snapshot version are re-tagged with a fresh stamp and
// become valid again, as are entries carrying the current version: those
// were either repaired across the speculative move and its exact inverse
// — which lands them bit-equal on the restored network — or computed
// after the revert. Entries stranded on intermediate versions (e.g. rows
// computed against the speculative network and then dropped by a repair
// fallback) keep a dead stamp forever.
func (c *distCache) restore(snap uint64) {
	c.mu.Lock()
	c.seq++
	nv := c.seq
	for i, rv := range c.rowVer {
		if c.rows[i] != nil && (rv == snap || rv == c.version) {
			c.rowVer[i] = nv
		}
	}
	for i, av := range c.avoidVer {
		if c.avoid[i] != nil && (av == snap || av == c.version) {
			c.avoidVer[i] = nv
		}
	}
	c.version = nv
	c.mu.Unlock()
}

// Dist returns shortest-path distances from src in G(s), memoized until
// the network next changes. Callers must not mutate the returned slice
// and must not retain it across a state mutation: single-edge moves
// repair cached rows in place, so the slice's contents track the current
// network, not the network at call time.
func (s *State) Dist(src int) []float64 {
	c := s.cache
	c.mu.Lock()
	if c.off {
		c.mu.Unlock()
		return s.net.Dijkstra(src)
	}
	if c.rows[src] != nil && c.rowVer[src] == c.version {
		row := c.rows[src]
		c.mu.Unlock()
		return row
	}
	ver := c.version
	c.mu.Unlock()
	row := s.net.Dijkstra(src)
	c.mu.Lock()
	// Only publish if the network did not change while we computed; a
	// concurrent reader may have published the same row already, which is
	// harmless (identical content).
	if c.version == ver {
		c.rows[src] = row
		c.rowVer[src] = ver
	}
	c.mu.Unlock()
	return row
}

// APSPAvoiding returns all-pairs shortest paths in G(s) with vertex
// `avoid` (and its incident edges) removed — the best-response
// reduction's distance input — memoized until the network next changes.
// Callers must not mutate the returned matrix.
func (s *State) APSPAvoiding(avoid int) [][]float64 {
	c := s.cache
	if s.G.N() > avoidCacheMaxN {
		return s.net.APSPAvoiding(avoid)
	}
	c.mu.Lock()
	if c.off {
		c.mu.Unlock()
		return s.net.APSPAvoiding(avoid)
	}
	if c.avoid[avoid] != nil && c.avoidVer[avoid] == c.version {
		m := c.avoid[avoid]
		c.mu.Unlock()
		return m
	}
	ver := c.version
	c.mu.Unlock()
	m := s.net.APSPAvoiding(avoid)
	c.mu.Lock()
	if c.version == ver {
		c.avoid[avoid] = m
		c.avoidVer[avoid] = ver
	}
	c.mu.Unlock()
	return m
}

// SetDistCaching toggles distance memoization on the state (on by
// default). Turning it off makes every cost query recompute from scratch
// — the uncached baseline used by benchmarks and correctness tests.
// Version stamping continues while the toggle is off, so re-enabling is
// always safe: entries that predate any interleaved mutation carry a dead
// stamp and never revalidate.
func (s *State) SetDistCaching(on bool) {
	s.cache.mu.Lock()
	s.cache.off = !on
	s.cache.mu.Unlock()
}

// DistCachingEnabled reports whether distance memoization is on.
func (s *State) DistCachingEnabled() bool {
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	return !s.cache.off
}
