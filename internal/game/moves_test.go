package game

import (
	"math/rand"
	"strings"
	"testing"

	"gncg/internal/metric"
)

func TestMoveString(t *testing.T) {
	cases := []struct {
		m    Move
		want string
	}{
		{Move{Agent: 1, Kind: Buy, V: 2}, "agent 1 buys (1,2)"},
		{Move{Agent: 0, Kind: Delete, V: 3}, "agent 0 deletes (0,3)"},
		{Move{Agent: 2, Kind: Swap, V: 1, X: 4}, "agent 2 swaps (2,1) for (2,4)"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if !strings.Contains((Move{Kind: MoveKind(9)}).String(), "invalid") {
		t.Error("invalid kind not flagged")
	}
}

func TestApplyPanicsOnInvalidKind(t *testing.T) {
	g := New(NewHost(metric.Unit{N: 3}), 1)
	s := NewState(g, EmptyProfile(3))
	defer func() {
		if recover() == nil {
			t.Error("invalid move kind did not panic")
		}
	}()
	s.Apply(Move{Agent: 0, Kind: MoveKind(9), V: 1})
}

// TestCandidateMovesComplete: the enumeration contains exactly the legal
// single-edge moves — (n-1-|S|) buys, |S| deletes, |S|*(n-1-|S|) swaps.
func TestCandidateMovesComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(6)
		g := New(NewHost(metric.Unit{N: n}), 1)
		p := EmptyProfile(n)
		u := rng.Intn(n)
		owned := 0
		for v := 0; v < n; v++ {
			if v != u && rng.Float64() < 0.5 {
				p.Buy(u, v)
				owned++
			}
		}
		s := NewState(g, p)
		moves := s.CandidateMoves(u)
		free := n - 1 - owned
		want := free + owned + owned*free
		if len(moves) != want {
			t.Fatalf("n=%d owned=%d: %d moves, want %d", n, owned, len(moves), want)
		}
		seen := map[string]bool{}
		for _, m := range moves {
			if m.Agent != u {
				t.Fatal("move for wrong agent")
			}
			key := m.String()
			if seen[key] {
				t.Fatalf("duplicate move %s", key)
			}
			seen[key] = true
		}
	}
}

func TestPathProfile(t *testing.T) {
	p := PathProfile(4, []int{2, 0, 3, 1})
	if !p.Buys(2, 0) || !p.Buys(0, 3) || !p.Buys(3, 1) {
		t.Fatal("path purchases wrong")
	}
	if p.EdgeCount() != 3 {
		t.Fatalf("edge count %d", p.EdgeCount())
	}
}

func TestStarProfile(t *testing.T) {
	p := StarProfile(5, 2)
	if p.S[2].Count() != 4 {
		t.Fatalf("center buys %d", p.S[2].Count())
	}
	for u := 0; u < 5; u++ {
		if u != 2 && p.S[u].Count() != 0 {
			t.Fatal("leaf bought an edge")
		}
	}
}

func TestBuySelfPanics(t *testing.T) {
	p := EmptyProfile(3)
	defer func() {
		if recover() == nil {
			t.Error("self-buy did not panic")
		}
	}()
	p.Buy(1, 1)
}

func TestOwnedEdgesSorted(t *testing.T) {
	p := EmptyProfile(4)
	p.Buy(2, 1)
	p.Buy(0, 3)
	p.Buy(0, 1)
	es := p.OwnedEdges()
	if len(es) != 3 {
		t.Fatalf("%d owned edges", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i-1].Owner > es[i].Owner ||
			(es[i-1].Owner == es[i].Owner && es[i-1].To > es[i].To) {
			t.Fatalf("OwnedEdges unsorted: %v", es)
		}
	}
}

func TestNewStatePanicsOnSizeMismatch(t *testing.T) {
	g := New(NewHost(metric.Unit{N: 3}), 1)
	defer func() {
		if recover() == nil {
			t.Error("profile size mismatch did not panic")
		}
	}()
	NewState(g, EmptyProfile(4))
}

func TestNegativeAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative alpha did not panic")
		}
	}()
	New(NewHost(metric.Unit{N: 2}), -1)
}
