package game

import (
	"fmt"
	"math"
)

// MoveKind enumerates the single-edge moves of the paper's greedy
// equilibrium notion: buying one edge, deleting one owned edge, or
// swapping one owned edge for another.
type MoveKind int

const (
	// Buy adds V to the agent's strategy.
	Buy MoveKind = iota
	// Delete removes V from the agent's strategy.
	Delete
	// Swap removes V and adds X.
	Swap
)

// Move is a single-edge strategy change by one agent.
type Move struct {
	Agent int
	Kind  MoveKind
	V     int // edge endpoint bought (Buy), deleted (Delete), or deleted side of a swap
	X     int // bought side of a swap
}

// String renders the move in the paper's vocabulary.
func (m Move) String() string {
	switch m.Kind {
	case Buy:
		return fmt.Sprintf("agent %d buys (%d,%d)", m.Agent, m.Agent, m.V)
	case Delete:
		return fmt.Sprintf("agent %d deletes (%d,%d)", m.Agent, m.Agent, m.V)
	case Swap:
		return fmt.Sprintf("agent %d swaps (%d,%d) for (%d,%d)", m.Agent, m.Agent, m.V, m.Agent, m.X)
	default:
		return fmt.Sprintf("invalid move kind %d", int(m.Kind))
	}
}

// Apply mutates the state by performing the move. It panics on malformed
// moves (buying an already-bought edge is a no-op and allowed).
func (s *State) Apply(m Move) {
	strat := s.P.S[m.Agent].Clone()
	switch m.Kind {
	case Buy:
		strat.Add(m.V)
	case Delete:
		strat.Remove(m.V)
	case Swap:
		strat.Remove(m.V)
		strat.Add(m.X)
	default:
		panic("game: invalid move kind")
	}
	s.SetStrategy(m.Agent, strat)
}

// CostAfter evaluates the mover's cost after the move without leaving the
// state mutated. The speculative mutation is exactly undone, so distances
// cached before the call are revalidated afterwards (cache.restore) and
// surrounding scans pay only for the speculative network itself.
func (s *State) CostAfter(m Move) float64 {
	old := s.P.S[m.Agent].Clone()
	snap := s.cache.snapshot()
	s.Apply(m)
	c := s.Cost(m.Agent)
	s.SetStrategy(m.Agent, old)
	s.cache.restore(snap)
	return c
}

// CandidateMoves enumerates every legal single-edge move for agent u in
// the current state: all buys of non-owned nodes, all deletions of owned
// edges, and all swaps of an owned edge for a non-owned node.
func (s *State) CandidateMoves(u int) []Move {
	n := s.G.N()
	owned := s.P.S[u]
	var moves []Move
	for v := 0; v < n; v++ {
		if v == u || owned.Has(v) {
			continue
		}
		moves = append(moves, Move{Agent: u, Kind: Buy, V: v})
	}
	owned.ForEach(func(v int) {
		moves = append(moves, Move{Agent: u, Kind: Delete, V: v})
		for x := 0; x < n; x++ {
			if x == u || x == v || owned.Has(x) {
				continue
			}
			moves = append(moves, Move{Agent: u, Kind: Swap, V: v, X: x})
		}
	})
	return moves
}

// BestSingleMove returns agent u's best single-edge move and the cost it
// achieves. If no move strictly improves on the current cost, ok is false
// and the returned cost is the current cost.
func (s *State) BestSingleMove(u int) (best Move, cost float64, ok bool) {
	cur := s.Cost(u)
	cost = cur
	for _, m := range s.CandidateMoves(u) {
		if c := s.CostAfter(m); c < cost {
			cost = c
			best = m
		}
	}
	ok = s.G.Improves(cost, cur)
	if !ok {
		cost = cur
	}
	return best, cost, ok
}

// BestBuy returns agent u's best single Buy move, mirroring the add-only
// equilibrium notion.
func (s *State) BestBuy(u int) (best Move, cost float64, ok bool) {
	cur := s.Cost(u)
	cost = cur
	n := s.G.N()
	for v := 0; v < n; v++ {
		if v == u || s.P.S[u].Has(v) {
			continue
		}
		m := Move{Agent: u, Kind: Buy, V: v}
		if c := s.CostAfter(m); c < cost {
			cost = c
			best = m
		}
	}
	ok = s.G.Improves(cost, cur)
	if !ok {
		cost = cur
	}
	return best, cost, ok
}

// IsAddOnlyEquilibrium reports whether no agent can strictly improve by
// buying a single edge (the paper's AE).
func (s *State) IsAddOnlyEquilibrium() bool {
	for u := 0; u < s.G.N(); u++ {
		if _, _, ok := s.BestBuy(u); ok {
			return false
		}
	}
	return true
}

// IsGreedyEquilibrium reports whether no agent can strictly improve by a
// single buy, delete or swap (the paper's GE, after Lenzner 2012).
func (s *State) IsGreedyEquilibrium() bool {
	for u := 0; u < s.G.N(); u++ {
		if _, _, ok := s.BestSingleMove(u); ok {
			return false
		}
	}
	return true
}

// GreedyApproxFactor returns the largest factor β by which any agent can
// reduce its cost with a single move: the state is a β-GE. Returns 1 when
// the state is a GE, +Inf if an agent with infinite cost can make its cost
// finite.
func (s *State) GreedyApproxFactor() float64 {
	worst := 1.0
	for u := 0; u < s.G.N(); u++ {
		cur := s.Cost(u)
		_, best, ok := s.BestSingleMove(u)
		if !ok {
			continue
		}
		if best <= 0 || math.IsInf(cur, 1) {
			return math.Inf(1)
		}
		if f := cur / best; f > worst {
			worst = f
		}
	}
	return worst
}
