package game

import (
	"fmt"
	"math"
	"sort"

	"gncg/internal/bitset"
)

// MoveKind enumerates the single-edge moves of the paper's greedy
// equilibrium notion: buying one edge, deleting one owned edge, or
// swapping one owned edge for another.
type MoveKind int

const (
	// Buy adds V to the agent's strategy.
	Buy MoveKind = iota
	// Delete removes V from the agent's strategy.
	Delete
	// Swap removes V and adds X.
	Swap
)

// Move is a single-edge strategy change by one agent.
type Move struct {
	Agent int
	Kind  MoveKind
	V     int // edge endpoint bought (Buy), deleted (Delete), or deleted side of a swap
	X     int // bought side of a swap
}

// String renders the move in the paper's vocabulary.
func (m Move) String() string {
	switch m.Kind {
	case Buy:
		return fmt.Sprintf("agent %d buys (%d,%d)", m.Agent, m.Agent, m.V)
	case Delete:
		return fmt.Sprintf("agent %d deletes (%d,%d)", m.Agent, m.Agent, m.V)
	case Swap:
		return fmt.Sprintf("agent %d swaps (%d,%d) for (%d,%d)", m.Agent, m.Agent, m.V, m.Agent, m.X)
	default:
		return fmt.Sprintf("invalid move kind %d", int(m.Kind))
	}
}

// NewStrategy returns the strategy that applying m to cur produces,
// without mutating cur. It is the single definition of how a move edits a
// strategy — State.Apply and the dynamics movers both go through it, so
// the two paths cannot drift. It panics on malformed moves: an invalid
// kind, a self-targeted endpoint, or a Delete/Swap whose deleted endpoint
// V is not owned (buying an already-owned node remains a no-op, and is
// allowed).
func (m Move) NewStrategy(cur bitset.Set) bitset.Set {
	strat := cur.Clone()
	switch m.Kind {
	case Buy:
		m.checkEndpoint(m.V)
		strat.Add(m.V)
	case Delete:
		m.checkOwned(cur, m.V)
		strat.Remove(m.V)
	case Swap:
		m.checkOwned(cur, m.V)
		m.checkEndpoint(m.X)
		strat.Remove(m.V)
		strat.Add(m.X)
	default:
		panic("game: invalid move kind")
	}
	return strat
}

func (m Move) checkEndpoint(v int) {
	if v == m.Agent {
		panic(fmt.Sprintf("game: malformed move %q: self-targeted endpoint", m))
	}
}

func (m Move) checkOwned(cur bitset.Set, v int) {
	m.checkEndpoint(v)
	if !cur.Has(v) {
		panic(fmt.Sprintf("game: malformed move %q: agent %d does not own (%d,%d)",
			m, m.Agent, m.Agent, v))
	}
}

// Apply mutates the state by performing the move. It panics on malformed
// moves, with Move.NewStrategy's contract: deleting or swapping out an
// edge the agent does not own is an error, not a silent no-op or a
// degenerate buy; buying an already-bought edge is a no-op and allowed.
func (s *State) Apply(m Move) {
	s.SetStrategy(m.Agent, m.NewStrategy(s.P.S[m.Agent]))
}

// CostAfter evaluates the mover's cost after the move without leaving the
// state mutated. The speculative mutation is exactly undone, so distances
// cached before the call are revalidated afterwards (cache.restore) and
// surrounding scans pay only for the speculative network itself.
func (s *State) CostAfter(m Move) float64 {
	old := s.P.S[m.Agent].Clone()
	snap := s.cache.snapshot()
	s.Apply(m)
	c := s.Cost(m.Agent)
	s.SetStrategy(m.Agent, old)
	s.cache.restore(s, snap)
	return c
}

// CandidateMoves enumerates every legal single-edge move for agent u in
// the current state: all buys of non-owned nodes, all deletions of owned
// edges, and all swaps of an owned edge for a non-owned node — filtered
// through the cost model's feasibility predicate (a no-op under the
// unconstrained default SumRules).
func (s *State) CandidateMoves(u int) []Move {
	n := s.G.N()
	owned := s.P.S[u]
	r := s.G.Rules()
	var moves []Move
	add := func(m Move) {
		if r.MoveFeasible(s, m) {
			moves = append(moves, m)
		}
	}
	for v := 0; v < n; v++ {
		if v == u || owned.Has(v) {
			continue
		}
		add(Move{Agent: u, Kind: Buy, V: v})
	}
	owned.ForEach(func(v int) {
		add(Move{Agent: u, Kind: Delete, V: v})
		for x := 0; x < n; x++ {
			if x == u || x == v || owned.Has(x) {
				continue
			}
			add(Move{Agent: u, Kind: Swap, V: v, X: x})
		}
	})
	return moves
}

// BestSingleMove returns agent u's best single-edge move and the cost it
// achieves. If no move strictly improves on the current cost, ok is false,
// the returned cost is the current cost, and the returned move is
// meaningless. The scan is neighborhood-pruned: candidates whose
// distance-gain upper bound (derived from u's current distance row and
// the network triangle inequality, see moveBounds) provably cannot beat
// the running best are skipped without evaluation. Pruning never changes
// the outcome — BestSingleMoveExact is the unpruned oracle, and property
// tests pin (move, cost, ok) equality between the two.
func (s *State) BestSingleMove(u int) (best Move, cost float64, ok bool) {
	return s.bestSingleMove(u, true)
}

// BestSingleMoveExact is the exhaustive-scan oracle for BestSingleMove:
// every candidate move is evaluated. It exists for tests and as the
// fallback when pruning bounds do not apply (infinite current cost).
func (s *State) BestSingleMoveExact(u int) (best Move, cost float64, ok bool) {
	return s.bestSingleMove(u, false)
}

// bestSingleMove scans candidates in CandidateMoves order (all buys in
// ascending v, then per owned edge: the delete followed by its swaps in
// ascending x), optionally skipping candidates that moveBounds proves
// non-improving. Enumeration order is shared with the oracle so that the
// first candidate attaining the minimum — which is never pruned — wins in
// both scans.
//
// On top of the per-candidate pruning sit two geometric tiers (see
// candidates.go), both gated on the global candidate-generation toggle
// and both outcome-preserving: the metric excess certificate, which
// reduces the scan to the agent's deletions without enumerating
// acquisition targets at all, and the candidate tier, which walks only
// the host's CandidateSource neighborhood inside a certified cutoff
// radius — every unenumerated target provably satisfies the same skip
// condition the pruned scan applies. Acquisition candidates that DO get
// enumerated are visited in the same ascending-index order in every
// tier, so the first-attains-the-minimum tie-break never diverges.
func (s *State) bestSingleMove(u int, prune bool) (best Move, cost float64, ok bool) {
	cur := s.Cost(u)
	cost = cur
	n := s.G.N()
	owned := s.P.S[u]
	r := s.G.Rules()
	consider := func(m Move) {
		if !r.MoveFeasible(s, m) {
			return
		}
		if c := s.CostAfter(m); c < cost {
			cost = c
			best = m
		}
	}
	finish := func() (Move, float64, bool) {
		ok = s.G.Improves(cost, cur)
		if !ok {
			// The running best may hold a sub-tolerance improver that a
			// tier with fewer enumerated candidates never saw; reset it so
			// the "meaningless" move is one fixed value and every scan
			// tier — and the exact oracle — returns an identical triple.
			cost = cur
			best = Move{}
		}
		return best, cost, ok
	}
	geo := prune && CandidateGenerationEnabled()
	if geo && s.excessRulesOutAcquisitions(u, cur, owned) {
		s.scan.ExcessSkips++
		owned.ForEach(func(v int) {
			consider(Move{Agent: u, Kind: Delete, V: v})
		})
		return finish()
	}
	var pb *moveBounds
	if prune {
		pb = s.newMoveBounds(u, cur)
	}
	// Adaptive bail: bound checks only pay for themselves when they
	// actually prune (near-stable states, large α). If the first probe
	// window prunes under a sixth of its candidates — improvement-rich
	// states where most moves genuinely must be evaluated — stop checking
	// and run exhaustively. The decision depends only on the scan's own
	// history, so results stay deterministic (and pruning never changes
	// them either way).
	checked, prunedCnt := 0, 0
	skip := func(y int, refund float64) bool {
		if pb == nil || (checked >= 96 && prunedCnt*6 < checked) {
			return false
		}
		checked++
		if pb.skipAcquire(s.hostWeight(u, y), pb.duv[y], refund, cur-cost) {
			prunedCnt++
			return true
		}
		return false
	}
	if geo && pb != nil {
		if src := s.G.Host.candidateSource(); src != nil {
			if rCut, cok := pb.acquireCutoff(s.maxRefundPrice(u, owned)); cok {
				s.scan.CandidateScans++
				s.candBuf = src.AppendWithin(u, rCut, s.candBuf[:0])
				cands := s.candBuf
				s.scan.CandidatesScanned += len(cands)
				for _, v := range cands {
					if v == u || owned.Has(v) {
						continue
					}
					if skip(v, 0) {
						continue
					}
					consider(Move{Agent: u, Kind: Buy, V: v})
				}
				owned.ForEach(func(v int) {
					consider(Move{Agent: u, Kind: Delete, V: v})
					refund := pb.rules.AcquirePrice(pb.alpha, s.hostWeight(u, v))
					for _, x := range cands {
						if x == u || x == v || owned.Has(x) {
							continue
						}
						if skip(x, refund) {
							continue
						}
						consider(Move{Agent: u, Kind: Swap, V: v, X: x})
					}
				})
				return finish()
			}
			s.scan.Fallbacks++
		}
	}
	if prune {
		s.scan.ExhaustiveScans++
	}
	for v := 0; v < n; v++ {
		if v == u || owned.Has(v) {
			continue
		}
		if skip(v, 0) {
			continue
		}
		consider(Move{Agent: u, Kind: Buy, V: v})
	}
	owned.ForEach(func(v int) {
		consider(Move{Agent: u, Kind: Delete, V: v})
		var refund float64
		if pb != nil {
			refund = pb.rules.AcquirePrice(pb.alpha, s.hostWeight(u, v))
		}
		for x := 0; x < n; x++ {
			if x == u || x == v || owned.Has(x) {
				continue
			}
			if skip(x, refund) {
				continue
			}
			consider(Move{Agent: u, Kind: Swap, V: v, X: x})
		}
	})
	return finish()
}

// moveBounds holds the per-agent quantities behind the pruned move scan.
// For a move that acquires the host edge (u,y) of weight w — a buy, or
// the bought half of a swap — the traffic-weighted distance gain is
// bounded above by both
//
//	gainUB(w) = Σ_x t(u,x)·max(0, d(u,x) − w)
//
// (acquiring a direct edge of length w cannot bring any x closer than w;
// one sorted pass over u's distance row answers it in O(log n) per
// candidate) and
//
//	T · max(0, d(u,y) − w),  T = Σ_x t(u,x)
//
// (by the network triangle inequality d(u,x) ≤ d(u,y) + d(y,x), each
// term of the gain is at most d(u,y) − w; deletions on the swapped-out
// side only increase distances and cannot enlarge the gain). A candidate
// is skipped when the smaller bound, minus the edge-price delta, cannot
// exceed the larger of the strict-improvement tolerance and the running
// best improvement — minus a float slack absorbing the ulp-level
// divergence between real-arithmetic bounds and float path sums, so a
// pruned candidate can never be one the oracle would have accepted.
//
// The bounds need a finite current cost (an agent that cannot reach a
// positive-demand node gains unboundedly from reconnection) and a cost
// model whose DistTerm is linear in d (Rules.GainBoundsSound);
// newMoveBounds returns nil otherwise and the scan falls back to the
// oracle. Edge prices and refunds go through Rules.AcquirePrice, so the
// bounds stay sound under any model that declares them applicable.
type moveBounds struct {
	duv   []float64 // private copy of u's distance row (repair-safe)
	pairs []distDemand
	ds    []float64 // positive-traffic distances, ascending (lazy: ensureSorted)
	std   []float64 // std[i] = Σ_{j≥i} t_j·ds[j]
	st    []float64 // st[i] = Σ_{j≥i} t_j
	tpos  float64   // Σ_x t(u,x)
	sumTD float64   // Σ_x t(u,x)·d(u,x) = gainUB(0), the coarse gain ceiling
	minD  float64   // smallest positive-traffic distance
	maxD  float64   // largest positive-traffic distance
	// excessUB bounds the gain of ANY acquiring move on a structurally
	// metric host: distances cannot drop below the host-metric floor, so
	// gain ≤ Σ_x t·(d − w) = sumTD − trafficFloorSum. +Inf on non-metric
	// hosts. O(1) per candidate, independent of the candidate — it is
	// what prunes the near field where the pair and sorted-row bounds
	// (which allow a short edge to shortcut towards everything) stay
	// hopelessly loose.
	excessUB float64
	alpha    float64
	eps      float64
	slack    float64
	rules    Rules
}

type distDemand struct{ d, t float64 }

func (s *State) newMoveBounds(u int, cur float64) *moveBounds {
	if math.IsInf(cur, 1) {
		return nil
	}
	r := s.G.Rules()
	if !r.GainBoundsSound() {
		return nil
	}
	row := s.Dist(u)
	pb := &moveBounds{
		duv:   append([]float64(nil), row...), // Dist rows are repaired in place mid-scan
		alpha: s.G.Alpha,
		eps:   s.G.Eps,
		slack: 1e-11 * (1 + math.Abs(cur)),
		rules: r,
	}
	pb.pairs = make([]distDemand, 0, len(row))
	pb.minD = math.Inf(1)
	for x, d := range row {
		if x == u {
			continue
		}
		t := s.G.Traffic(u, x)
		if t == 0 {
			continue // zero demand contributes no gain (and tolerates d = +Inf)
		}
		pb.pairs = append(pb.pairs, distDemand{d, t})
		pb.tpos += t
		pb.sumTD += t * d
		if d > pb.maxD {
			pb.maxD = d
		}
		if d < pb.minD {
			pb.minD = d
		}
	}
	pb.excessUB = math.Inf(1)
	if s.G.Host.metricByConstruction(s.G.Eps) {
		if floor := s.G.trafficFloorSum(u); !math.IsInf(floor, 0) && !math.IsNaN(floor) {
			pb.excessUB = pb.sumTD - floor
		}
	}
	return pb
}

// ensureSorted builds the sorted-row prefix arrays behind gainUB on
// first use. The O(n log n) sort is deferred because the geometric
// candidate tier usually resolves its whole scan from the coarse sumTD
// ceiling and the O(1) pair bound — the common large-n case never pays
// for a sort it does not consult.
func (pb *moveBounds) ensureSorted() {
	if pb.ds != nil || pb.pairs == nil {
		return
	}
	pairs := pb.pairs
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].d < pairs[j].d })
	pb.ds = make([]float64, len(pairs))
	pb.std = make([]float64, len(pairs)+1)
	pb.st = make([]float64, len(pairs)+1)
	for i := len(pairs) - 1; i >= 0; i-- {
		pb.ds[i] = pairs[i].d
		pb.std[i] = pb.std[i+1] + pairs[i].t*pairs[i].d
		pb.st[i] = pb.st[i+1] + pairs[i].t
	}
}

// gainUB returns Σ_x t(u,x)·max(0, d(u,x) − w).
func (pb *moveBounds) gainUB(w float64) float64 {
	if w <= pb.minD {
		// Every positive-traffic distance is ≥ w, so no max(·) clamps and
		// the sum collapses to the O(1) aggregates — the geometric tier's
		// candidates all sit below the nearest network distance, so this
		// shortcut is what keeps that tier free of the O(n log n) sort.
		return pb.sumTD - w*pb.tpos
	}
	pb.ensureSorted()
	i := sort.SearchFloat64s(pb.ds, w) // first index with ds[i] ≥ w; equal terms contribute 0
	return pb.std[i] - w*pb.st[i]
}

// skipAcquire reports whether acquiring a host edge of weight w towards a
// node at network distance duy — with refund AcquirePrice(α, w(u,V)) when
// the move also deletes owned edge (u,V), 0 for a plain buy — provably
// cannot beat the running best improvement (or the strict-improvement
// tolerance, whichever is larger).
func (pb *moveBounds) skipAcquire(w, duy, refund, bestGain float64) bool {
	if math.IsInf(w, 1) {
		return true // unbuyable pair: the move's edge cost alone is +Inf
	}
	threshold := bestGain
	if pb.eps > threshold {
		threshold = pb.eps
	}
	threshold += pb.rules.AcquirePrice(pb.alpha, w) - refund - pb.slack
	// O(1) bounds first — the triangle pair bound and the metric excess
	// ceiling — then the sorted-row bound only when both fail.
	var pair float64
	if pb.tpos > 0 && duy > w {
		pair = pb.tpos * (duy - w) // duy may be +Inf (zero-demand pair): pair = +Inf, no prune
	}
	if pair <= threshold {
		return true
	}
	if pb.excessUB <= threshold {
		return true
	}
	return pb.gainUB(w) <= threshold
}

// BestBuy returns agent u's best single Buy move, mirroring the add-only
// equilibrium notion. Buys the cost model rules infeasible are skipped.
func (s *State) BestBuy(u int) (best Move, cost float64, ok bool) {
	cur := s.Cost(u)
	cost = cur
	n := s.G.N()
	r := s.G.Rules()
	for v := 0; v < n; v++ {
		if v == u || s.P.S[u].Has(v) {
			continue
		}
		m := Move{Agent: u, Kind: Buy, V: v}
		if !r.MoveFeasible(s, m) {
			continue
		}
		if c := s.CostAfter(m); c < cost {
			cost = c
			best = m
		}
	}
	ok = s.G.Improves(cost, cur)
	if !ok {
		cost = cur
		best = Move{}
	}
	return best, cost, ok
}

// IsAddOnlyEquilibrium reports whether no agent can strictly improve by
// buying a single edge (the paper's AE).
func (s *State) IsAddOnlyEquilibrium() bool {
	for u := 0; u < s.G.N(); u++ {
		if _, _, ok := s.BestBuy(u); ok {
			return false
		}
	}
	return true
}

// IsGreedyEquilibrium reports whether no agent can strictly improve by a
// single buy, delete or swap (the paper's GE, after Lenzner 2012).
func (s *State) IsGreedyEquilibrium() bool {
	for u := 0; u < s.G.N(); u++ {
		if _, _, ok := s.BestSingleMove(u); ok {
			return false
		}
	}
	return true
}

// GreedyApproxFactor returns the largest factor β by which any agent can
// reduce its cost with a single move: the state is a β-GE. Returns 1 when
// the state is a GE, +Inf if an agent with infinite cost can make its cost
// finite.
func (s *State) GreedyApproxFactor() float64 {
	worst := 1.0
	for u := 0; u < s.G.N(); u++ {
		cur := s.Cost(u)
		_, best, ok := s.BestSingleMove(u)
		if !ok {
			continue
		}
		if best <= 0 || math.IsInf(cur, 1) {
			return math.Inf(1)
		}
		if f := cur / best; f > worst {
			worst = f
		}
	}
	return worst
}
