package game

import (
	"math"
	"math/rand"
	"testing"

	"gncg/internal/bitset"
	"gncg/internal/graph"
	"gncg/internal/metric"
)

// repairHost builds one host of the named flavor — the mixed corpus the
// incremental-repair and pruned-scan properties are pinned on: ℓ2 points
// (generic weights), tree metrics and 1-2 hosts (heavy tie pressure),
// non-metric matrices (triangle violations), and 1-∞ hosts (+Inf pairs).
func repairHost(t *testing.T, rng *rand.Rand, n int, flavor string) *Host {
	t.Helper()
	switch flavor {
	case "l2points":
		return randCacheHost(rng, n)
	case "tree":
		edges := make([]graph.Edge, 0, n-1)
		for v := 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: rng.Intn(v), V: v, W: float64(1 + rng.Intn(5))})
		}
		tm, err := metric.NewTreeMetric(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		return NewHost(tm)
	case "onetwo":
		var ones [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.4 {
					ones = append(ones, [2]int{u, v})
				}
			}
		}
		ot, err := metric.NewOneTwo(n, ones)
		if err != nil {
			t.Fatal(err)
		}
		return NewHost(ot)
	case "nonmetric":
		w := make([][]float64, n)
		for u := range w {
			w[u] = make([]float64, n)
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				x := 0.5 + rng.Float64()*9.5 // wide spread: triangle violations abound
				w[u][v], w[v][u] = x, x
			}
		}
		h, err := HostFromMatrix(w)
		if err != nil {
			t.Fatal(err)
		}
		return h
	case "oneinf":
		var ones [][2]int
		for v := 1; v < n; v++ {
			ones = append(ones, [2]int{rng.Intn(v), v}) // buyable spanning tree
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				ones = append(ones, [2]int{u, v})
			}
		}
		oi, err := metric.NewOneInf(n, ones)
		if err != nil {
			t.Fatal(err)
		}
		return NewHost(oi)
	default:
		t.Fatalf("unknown flavor %q", flavor)
		return nil
	}
}

var repairFlavors = []string{"l2points", "tree", "onetwo", "nonmetric", "oneinf"}

func randProfile(rng *rand.Rand, n int, p float64) Profile {
	prof := EmptyProfile(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if v != u && rng.Float64() < p {
				prof.Buy(u, v)
			}
		}
	}
	return prof
}

// assertRowsBitEqualFresh compares every cached distance row against a
// fresh Dijkstra on the current network, bit-for-bit: incremental repair
// must be indistinguishable from recomputation.
func assertRowsBitEqualFresh(t *testing.T, s *State, ctx string, step int) {
	t.Helper()
	n := s.G.N()
	for src := 0; src < n; src++ {
		got := s.Dist(src)
		want := s.Network().Dijkstra(src)
		for x := range want {
			if got[x] != want[x] && !(math.IsInf(got[x], 1) && math.IsInf(want[x], 1)) {
				t.Fatalf("%s step %d: Dist(%d)[%d] = %v, fresh Dijkstra = %v",
					ctx, step, src, x, got[x], want[x])
			}
		}
	}
}

// runRepairCorpus drives randomized apply / speculative-evaluate /
// move-undo / bulk-replace sequences on one host flavor, asserting after
// every step that each cached row is bit-equal to a fresh Dijkstra on the
// current network.
func runRepairCorpus(t *testing.T, flavor string, seeds int64) {
	t.Helper()
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(4)
		g := New(repairHost(t, rng, n, flavor), 0.3+3*rng.Float64())
		s := NewState(g, randProfile(rng, n, 0.3))
		// Warm every row so each mutation exercises repair on a
		// fully populated cache.
		assertRowsBitEqualFresh(t, s, flavor, -1)
		for step := 0; step < 40; step++ {
			u := rng.Intn(n)
			moves := s.CandidateMoves(u)
			if len(moves) == 0 {
				continue
			}
			m := moves[rng.Intn(len(moves))]
			switch rng.Intn(4) {
			case 0: // apply and keep
				s.Apply(m)
			case 1: // speculative evaluation (exact undo inside)
				_ = s.CostAfter(m)
			case 2: // apply, then undo via SetStrategy
				old := s.P.S[u].Clone()
				s.Apply(m)
				assertRowsBitEqualFresh(t, s, flavor+"/mid-undo", step)
				s.SetStrategy(u, old)
			case 3: // bulk replacement (beyond the repair flip limit)
				s.SetStrategy(u, randStrategy(rng, n, u))
			}
			assertRowsBitEqualFresh(t, s, flavor, step)
		}
	}
}

// TestRepairedRowsBitEqualFreshDijkstra is the tentpole's correctness
// property: after randomized apply / speculative-evaluate / move-undo /
// bulk-replace sequences on every host flavor, every cached row must be
// bit-equal to a fresh Dijkstra on the current network.
func TestRepairedRowsBitEqualFreshDijkstra(t *testing.T) {
	for _, flavor := range repairFlavors {
		flavor := flavor
		t.Run(flavor, func(t *testing.T) {
			t.Parallel()
			runRepairCorpus(t, flavor, 4)
		})
	}
}

// TestRepairBudgetFallbackPath forces every removal repair over budget,
// so the cache's fallback branch — rows dropped to a dead stamp, lazy
// recomputation, and restore()'s handling of rows stranded on
// intermediate versions mid-speculation — actually executes. The default
// budget (16 + n/4) can never be exceeded on the corpus's small graphs,
// which would otherwise leave this interplay untested. Deliberately not
// parallel: it swaps the package-level budget hook.
func TestRepairBudgetFallbackPath(t *testing.T) {
	orig := repairBudget
	repairBudget = func(int) int { return 1 }
	defer func() { repairBudget = orig }()
	for _, flavor := range repairFlavors {
		runRepairCorpus(t, flavor, 2)
	}
}

// TestPrunedBestSingleMoveMatchesExact pins the pruned scan to the
// exhaustive oracle on the mixed-host corpus: identical ok and cost
// always, identical winning move whenever one exists.
func TestPrunedBestSingleMoveMatchesExact(t *testing.T) {
	for _, flavor := range repairFlavors {
		flavor := flavor
		t.Run(flavor, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 6; seed++ {
				rng := rand.New(rand.NewSource(100 + seed))
				n := 6 + rng.Intn(4)
				g := New(repairHost(t, rng, n, flavor), 0.3+4*rng.Float64())
				profiles := []Profile{
					StarProfile(n, rng.Intn(n)),
					randProfile(rng, n, 0.25),
					randProfile(rng, n, 0.6),
				}
				for pi, prof := range profiles {
					s := NewState(g, prof)
					for u := 0; u < n; u++ {
						pm, pc, pok := s.BestSingleMove(u)
						em, ec, eok := s.BestSingleMoveExact(u)
						if pok != eok || pc != ec {
							t.Fatalf("%s seed %d profile %d agent %d: pruned (%v, %v, %v) != exact (%v, %v, %v)",
								flavor, seed, pi, u, pm, pc, pok, em, ec, eok)
						}
						if eok && pm != em {
							t.Fatalf("%s seed %d profile %d agent %d: pruned move %v != exact move %v (cost %v)",
								flavor, seed, pi, u, pm, em, ec)
						}
					}
				}
			}
		})
	}
}

// TestPrunedBestSingleMoveMatchesExactAtScale covers the two scan
// behaviors only large n reaches: the adaptive bail (pruning disables
// itself after a ≥96-candidate probe window with a low hit rate —
// improvement-rich small α) and the float-slack margin under cost sums
// of hundreds of terms (near-stable large α, where nearly everything is
// pruned and a slack overrun would mis-prune the best move).
func TestPrunedBestSingleMoveMatchesExactAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("exact oracle at n=400 is slow")
	}
	n := 400
	rng := rand.New(rand.NewSource(9))
	sp, err := metric.NewPoints(randPointCoords(rng, n), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, alpha := range []float64{8, 2000} {
		g := New(NewHost(sp), alpha)
		s := NewState(g, StarProfile(n, 0))
		for trial := 0; trial < 6; trial++ {
			u := 1 + rng.Intn(n-1)
			pm, pc, pok := s.BestSingleMove(u)
			em, ec, eok := s.BestSingleMoveExact(u)
			if pok != eok || pc != ec || (eok && pm != em) {
				t.Fatalf("alpha %v agent %d: pruned (%v, %v, %v) != exact (%v, %v, %v)",
					alpha, u, pm, pc, pok, em, ec, eok)
			}
			if eok {
				s.Apply(em) // vary the state so later trials see non-star networks
			}
		}
	}
}

// TestSetStrategyTouchesOnlyDiff is the O(Δ) regression guard for the
// single-edge hot path: a one-edge strategy change must examine only the
// flipped vertices, independent of n — not rescan the whole vertex set.
func TestSetStrategyTouchesOnlyDiff(t *testing.T) {
	n := 4096
	sp, err := metric.NewPoints(randPointCoords(rand.New(rand.NewSource(1)), n), 2)
	if err != nil {
		t.Fatal(err)
	}
	g := New(NewHost(sp), 2)
	s := NewState(g, StarProfile(n, 0))
	s.touched = 0
	strat := s.P.S[7].Clone()
	strat.Add(99)
	s.SetStrategy(7, strat) // single buy: Δ = 1
	if s.touched != 1 {
		t.Fatalf("single buy touched %d vertices, want 1", s.touched)
	}
	s.touched = 0
	m := Move{Agent: 7, Kind: Swap, V: 99, X: 1234}
	s.Apply(m) // swap: Δ = 2
	if s.touched != 2 {
		t.Fatalf("swap touched %d vertices, want 2", s.touched)
	}
	s.touched = 0
	_ = s.CostAfter(Move{Agent: 12, Kind: Buy, V: 77})
	if s.touched != 2 { // one flip forward, one flip back
		t.Fatalf("speculative buy touched %d vertices, want 2", s.touched)
	}
}

func randPointCoords(rng *rand.Rand, n int) [][]float64 {
	coords := make([][]float64, n)
	for i := range coords {
		coords[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	return coords
}

// TestApplyContract pins the documented malformed-move behavior: deleting
// or swapping out a non-owned edge panics instead of silently no-opping
// (Delete) or degenerating into a plain buy (Swap); self-targets panic;
// buying an already-bought edge stays a legal no-op.
func TestApplyContract(t *testing.T) {
	setup := func() *State {
		g := New(NewHost(metric.Unit{N: 4}), 1)
		p := EmptyProfile(4)
		p.Buy(0, 1)
		return NewState(g, p)
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("delete of non-owned edge", func() {
		setup().Apply(Move{Agent: 0, Kind: Delete, V: 2})
	})
	mustPanic("delete of edge owned by the other endpoint", func() {
		setup().Apply(Move{Agent: 1, Kind: Delete, V: 0})
	})
	mustPanic("swap with non-owned V", func() {
		setup().Apply(Move{Agent: 0, Kind: Swap, V: 2, X: 3})
	})
	mustPanic("self-targeted buy", func() {
		setup().Apply(Move{Agent: 0, Kind: Buy, V: 0})
	})
	mustPanic("swap with self-targeted X", func() {
		setup().Apply(Move{Agent: 0, Kind: Swap, V: 1, X: 0})
	})

	// Legal cases still work, and buying an owned edge is a no-op.
	s := setup()
	s.Apply(Move{Agent: 0, Kind: Buy, V: 1})
	if !s.P.Buys(0, 1) || s.P.S[0].Count() != 1 {
		t.Error("re-buy of an owned edge must be a no-op")
	}
	s.Apply(Move{Agent: 0, Kind: Swap, V: 1, X: 2})
	if s.P.Buys(0, 1) || !s.P.Buys(0, 2) {
		t.Error("legal swap not applied")
	}
	s.Apply(Move{Agent: 0, Kind: Delete, V: 2})
	if s.P.S[0].Count() != 0 {
		t.Error("legal delete not applied")
	}
}

// TestMoveNewStrategyDoesNotMutate: NewStrategy must clone, never edit
// the input set.
func TestMoveNewStrategyDoesNotMutate(t *testing.T) {
	cur := bitset.FromSlice(5, []int{1, 2})
	next := Move{Agent: 0, Kind: Swap, V: 2, X: 3}.NewStrategy(cur)
	if !cur.Has(2) || cur.Has(3) {
		t.Error("NewStrategy mutated its input")
	}
	if next.Has(2) || !next.Has(3) || !next.Has(1) {
		t.Errorf("NewStrategy produced %v", next.Elems())
	}
}
