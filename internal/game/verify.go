package game

import (
	"math"

	"gncg/internal/parallel"
)

// This file is the concurrent equilibrium-verification entry point: a
// worker-pool verifier for the greedy-equilibrium property built on the
// same traffic-weighted gain bounds that prune BestSingleMove, promoted
// here to first-class *certificates*. Verification is embarrassingly
// parallel — each agent's check is a pure function of the frozen state —
// and certificate-driven: an agent whose best possible single-move
// improvement is provably <= the strict-improvement tolerance is skipped
// without running its O(n·|S_u|) candidate scan at all.

// GainCertificate is an upper bound on what any single *acquiring* move
// (a buy, or the bought half of a swap) can gain agent u, derived from
// u's current distance row and the network triangle inequality — the
// moveBounds machinery behind the pruned scan, evaluated once over every
// candidate instead of per scanned candidate.
//
// For each non-owned candidate x with host weight w = w(u,x), the
// traffic-weighted distance gain of acquiring (u,x) is bounded above by
// both T·max(0, d(u,x) − w) and Σ_y t(u,y)·max(0, d(u,y) − w) (see
// moveBounds); AcquireBound is the maximum over candidates of the
// smaller bound minus the model's AcquirePrice(α, w) — α·w under the
// default SumRules. A swap additionally refunds the deleted edge's
// price (its deletion only increases distances, so it cannot enlarge
// the gain); MaxRefund is the largest refund available, the price of
// the heaviest edge u owns. Slack is the float-noise margin inherited
// from the pruned scan, sized to the agent's current cost, so a
// certificate can never rule out a move the exact oracle would accept.
type GainCertificate struct {
	Agent int
	// AcquireBound bounds, over every buyable non-owned candidate x,
	// the distance gain minus edge price of acquiring (u,x). -Inf when
	// no candidate is buyable.
	AcquireBound float64
	// MaxRefund is the largest swap refund: the model's price of the
	// heaviest edge u owns (0 when u owns nothing, so swaps are
	// impossible anyway).
	MaxRefund float64
	// Slack absorbs ulp-level divergence between the real-arithmetic
	// bounds and float path sums.
	Slack float64
}

// RulesOutAcquisitions reports whether the certificate proves that no
// single buy or swap can improve agent u's cost by more than eps: even
// the loosest candidate, granted the largest possible swap refund,
// falls short of the strict-improvement tolerance by more than the
// float slack. Deletions are NOT covered — a certificate-skipped agent
// still needs its |S_u| deletions checked (they are exact O(1)-count
// evaluations, not part of the quadratic scan).
func (c GainCertificate) RulesOutAcquisitions(eps float64) bool {
	return c.AcquireBound+c.MaxRefund <= eps-c.Slack
}

// AcquireGainCertificate computes agent u's gain-bound certificate in
// one O(n log n) pass (sorted-row prefix sums, then an O(log n) bound
// per candidate). Prices and refunds go through the cost model's
// AcquirePrice, so certificates stay sound under any Rules that
// declares the gain bounds applicable. ok is false when u's current
// cost is infinite (an agent that cannot reach a positive-demand node
// gains unboundedly from reconnection, so no finite bound exists) or
// when the model's GainBoundsSound is false; callers must then fall
// back to a real scan. The bound ranges over every non-owned candidate
// — a superset of the model-feasible ones — which can only loosen it,
// never unsoundly tighten it.
func (s *State) AcquireGainCertificate(u int) (cert GainCertificate, ok bool) {
	cur := s.Cost(u)
	pb := s.newMoveBounds(u, cur)
	if pb == nil {
		return GainCertificate{}, false
	}
	cert = GainCertificate{Agent: u, AcquireBound: math.Inf(-1), Slack: pb.slack}
	owned := s.P.S[u]
	n := s.G.N()
	for x := 0; x < n; x++ {
		if x == u || owned.Has(x) {
			continue
		}
		w := s.hostWeight(u, x)
		if math.IsInf(w, 1) {
			continue // unbuyable pair: the edge price alone is +Inf
		}
		// O(1) triangle bound and the sorted-row bound; the smaller
		// wins. duv[x] may be +Inf (unreachable zero-demand node): the
		// pair bound is then +Inf and only the row bound constrains.
		var pair float64
		if duy := pb.duv[x]; pb.tpos > 0 && duy > w {
			pair = pb.tpos * (duy - w)
		}
		b := pair
		if pb.excessUB < b {
			b = pb.excessUB
		}
		if g := pb.gainUB(w); g < b {
			b = g
		}
		if net := b - pb.rules.AcquirePrice(pb.alpha, w); net > cert.AcquireBound {
			cert.AcquireBound = net
		}
	}
	// AcquirePrice is monotone in w (interface contract), so the largest
	// refund is the price of the heaviest owned edge; an agent that owns
	// nothing can make no swap and refunds nothing.
	maxW, ownsAny := 0.0, false
	owned.ForEach(func(v int) {
		ownsAny = true
		if w := s.hostWeight(u, v); w > maxW {
			maxW = w
		}
	})
	if ownsAny {
		cert.MaxRefund = pb.rules.AcquirePrice(pb.alpha, maxW)
	} else {
		cert.MaxRefund = 0
	}
	return cert, true
}

// VerifyOptions configures VerifyGreedyEquilibrium.
type VerifyOptions struct {
	// Workers is the verification worker count; <= 0 means
	// parallel.Workers() (GOMAXPROCS). The result is identical for
	// every worker count — only wall time changes.
	Workers int
	// Exact runs the unpruned exhaustive scan (BestSingleMoveExact) for
	// agents the certificate cannot skip, making the verdict
	// independent of the pruning bounds for those agents. Default
	// (false) uses the pruned scan — outcome-identical by the pruning
	// contract, and faster.
	Exact bool
	// NoCertificates disables gain-bound skipping: every agent runs a
	// full scan. The verdict is unchanged (certificates are
	// conservative); only CertSkipped/Scanned and wall time differ.
	NoCertificates bool
}

// VerifyResult reports a concurrent verification.
type VerifyResult struct {
	// Stable is true when no agent has a strictly improving single-edge
	// move: the state is a greedy equilibrium.
	Stable bool
	// FirstImproving is the smallest agent index with an improving
	// move, or -1 when Stable. It is the same agent a serial in-order
	// scan would report first, under any worker count.
	FirstImproving int
	// CertSkipped counts agents whose candidate scan was skipped
	// because their gain-bound certificate ruled out every buy and
	// swap (their deletions were still evaluated exactly).
	CertSkipped int
	// Scanned counts agents that ran a full candidate scan.
	Scanned int
	// Workers is the worker count actually used.
	Workers int
}

// agentVerdict is one agent's worker-independent check outcome.
type agentVerdict struct {
	improving bool
	skipped   bool
}

// VerifyGreedyEquilibrium checks whether the state is a greedy
// equilibrium — no agent has a strictly improving buy, delete or swap —
// by sharding the per-agent checks across a worker pool.
//
// The entry point is read-only: s itself is never mutated. Each worker
// owns a contiguous block of agents (parallel.Blocks, a deterministic
// partition) and verifies them against its own private clone of the
// state, whose speculative distance cache (CostAfter's snapshot/rewind
// contract) is reused across the whole block without per-check cloning.
// Per-agent verdicts depend only on the frozen state, never on worker
// count or scheduling, and fold into the result in fixed agent order —
// so the returned VerifyResult is identical for any Workers setting,
// which is what lets sweeps record it under the byte-identical sharding
// contract (pinned by TestVerifyParallelMatchesSerialOracle).
//
// Each agent is checked at the cheapest sufficient tier: its
// GainCertificate first (one O(n log n) bound pass); if the certificate
// rules out every buy and swap, only the agent's |S_u| deletions are
// evaluated exactly and the quadratic candidate scan is skipped
// entirely (counted in CertSkipped). Otherwise the agent runs a full
// scan — pruned by default, exhaustive under Exact.
func VerifyGreedyEquilibrium(s *State, opt VerifyOptions) VerifyResult {
	n := s.G.N()
	workers := opt.Workers
	if workers <= 0 {
		workers = parallel.Workers()
	}
	if workers > n {
		workers = n
	}
	verdicts := make([]agentVerdict, n)
	parallel.Blocks(n, workers, func(_, lo, hi int) {
		work := s.Clone()
		for u := lo; u < hi; u++ {
			verdicts[u] = verifyAgent(work, u, opt)
		}
	})
	res := VerifyResult{Stable: true, FirstImproving: -1, Workers: workers}
	for u, v := range verdicts {
		if v.skipped {
			res.CertSkipped++
		} else {
			res.Scanned++
		}
		if v.improving && res.FirstImproving < 0 {
			res.Stable = false
			res.FirstImproving = u
		}
	}
	return res
}

// verifyAgent checks one agent on a worker-private state. The verdict
// is a pure function of the state and options.
func verifyAgent(work *State, u int, opt VerifyOptions) (v agentVerdict) {
	cur := work.Cost(u)
	if !opt.NoCertificates && !math.IsInf(cur, 1) {
		if cert, ok := work.AcquireGainCertificate(u); ok && cert.RulesOutAcquisitions(work.G.Eps) {
			// Buys and swaps are ruled out; only the agent's own
			// deletions remain, and there are at most |S_u| of them.
			// Feasibility-gate them exactly as the full scan would.
			r := work.G.Rules()
			work.P.S[u].Clone().ForEach(func(x int) {
				if v.improving {
					return
				}
				m := Move{Agent: u, Kind: Delete, V: x}
				if !r.MoveFeasible(work, m) {
					return
				}
				after := work.CostAfter(m)
				if work.G.Improves(after, cur) {
					v.improving = true
				}
			})
			v.skipped = true
			return v
		}
	}
	if opt.Exact {
		_, _, v.improving = work.BestSingleMoveExact(u)
	} else {
		_, _, v.improving = work.BestSingleMove(u)
	}
	return v
}
