package game

import (
	"math"
	"math/rand"
	"testing"

	"gncg/internal/gen"
	"gncg/internal/metric"
)

// lazySpaces returns one implicit space of each lazily-classifiable kind
// for the given seed, randomized but non-degenerate (random continuous
// weights cannot incidentally fall into a smaller class).
func lazySpaces(seed int64, n int) map[string]metric.Space {
	return map[string]metric.Space{
		"points-l2": gen.Points(seed, n, 2, 10, 2),
		"points-l1": gen.Points(seed+1000, n, 3, 10, 1),
		"tree":      gen.Tree(seed, n, 1.1, 6.3),
		"one-two":   gen.OneTwo(seed, n, 0.4),
		"unit":      metric.Unit{N: n},
	}
}

// densified returns a matrix-backed copy of the host: the dense reference
// every lazy answer is checked against.
func densified(t *testing.T, h *Host) *Host {
	t.Helper()
	d, err := HostFromMatrix(metric.Matrix(h.Space()))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestMatrixDensifyAliasing pins the dense-view contract: Matrix and
// Densify return the same shared memoized matrix, repeated calls alias it,
// Weight agrees with it, and matrix-backed hosts reuse (not copy) the
// matrix they were built from. The view is immutable by contract — code
// that needs a private mutable matrix must copy it.
func TestMatrixDensifyAliasing(t *testing.T) {
	h := NewHost(gen.Points(3, 9, 2, 10, 2))
	m := h.Matrix()
	d := h.Densify()
	if &m[0][0] != &d[0][0] {
		t.Fatal("Matrix() and Densify() must return the same memoized view")
	}
	if m2 := h.Matrix(); &m2[0][0] != &m[0][0] {
		t.Fatal("repeated Matrix() calls must alias the same view")
	}
	for u := 0; u < h.N(); u++ {
		for v := 0; v < h.N(); v++ {
			if h.Weight(u, v) != m[u][v] {
				t.Fatalf("Weight(%d,%d)=%v disagrees with dense view %v", u, v, h.Weight(u, v), m[u][v])
			}
		}
	}
	// A matrix-backed host owns the matrix it was built from: its dense
	// view is that matrix, with no duplicate O(n²) copy.
	w := metric.Matrix(gen.OneTwo(5, 6, 0.5))
	mb, err := HostFromMatrix(w)
	if err != nil {
		t.Fatal(err)
	}
	if got := mb.Matrix(); &got[0][0] != &w[0][0] {
		t.Fatal("matrix-backed host must reuse the input matrix as its dense view")
	}
	// Independent hosts over the same space never share dense storage.
	sp := gen.Points(3, 5, 2, 10, 2)
	a, b := NewHost(sp).Matrix(), NewHost(sp).Matrix()
	if &a[0][0] == &b[0][0] {
		t.Fatal("distinct hosts share dense-view storage")
	}
}

// TestLazyDenseWeightClassEquivalence: a lazy host and its densified copy
// must agree exactly on Weight for every pair, on Classify, and on
// IsMetric, across randomized instances of every implicit space kind.
func TestLazyDenseWeightClassEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		n := 4 + int(seed)%5
		for kind, sp := range lazySpaces(seed, n) {
			lazy := NewHost(sp)
			dense := densified(t, lazy)
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					if lw, dw := lazy.Weight(u, v), dense.Weight(u, v); lw != dw {
						t.Fatalf("%s seed %d: Weight(%d,%d) lazy %v != dense %v", kind, seed, u, v, lw, dw)
					}
				}
			}
			if lc, dc := lazy.Classify(1e-9), dense.Classify(1e-9); lc != dc {
				t.Fatalf("%s seed %d: Classify lazy %v != dense %v", kind, seed, lc, dc)
			}
			if lm, dm := lazy.IsMetric(1e-9), dense.IsMetric(1e-9); lm != dm {
				t.Fatalf("%s seed %d: IsMetric lazy %v != dense %v", kind, seed, lm, dm)
			}
		}
	}
}

// TestLazyDenseOneInfEquivalence covers the sparse {1,∞} case, including
// the finite-pair iteration both hosts must enumerate identically.
func TestLazyDenseOneInfEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + int(seed)
		var ones [][2]int
		for v := 1; v < n; v++ {
			ones = append(ones, [2]int{rng.Intn(v), v})
		}
		oi, err := metric.NewOneInf(n, ones)
		if err != nil {
			t.Fatal(err)
		}
		lazy := NewHost(oi)
		dense := densified(t, lazy)
		if lc, dc := lazy.Classify(1e-9), dense.Classify(1e-9); lc != dc {
			t.Fatalf("seed %d: Classify lazy %v != dense %v", seed, lc, dc)
		}
		if lazy.IsMetric(1e-9) != dense.IsMetric(1e-9) {
			t.Fatalf("seed %d: IsMetric disagreement", seed)
		}
		var lp, dp [][2]int
		lazy.ForEachFinitePair(func(u, v int, w float64) { lp = append(lp, [2]int{u, v}) })
		dense.ForEachFinitePair(func(u, v int, w float64) { dp = append(dp, [2]int{u, v}) })
		if len(lp) != len(dp) {
			t.Fatalf("seed %d: finite pairs lazy %d != dense %d", seed, len(lp), len(dp))
		}
		for i := range lp {
			if lp[i] != dp[i] {
				t.Fatalf("seed %d: finite pair %d lazy %v != dense %v", seed, i, lp[i], dp[i])
			}
		}
	}
}

// TestLazyDenseCostEquivalence: every cost quantity of a random profile —
// per-agent edge, distance and total cost, social cost, and the best
// single move — must be bit-identical between a lazy host and its
// densified copy.
func TestLazyDenseCostEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		n := 5 + int(seed)%4
		for kind, sp := range lazySpaces(seed, n) {
			rng := rand.New(rand.NewSource(seed * 31))
			prof := randomProfile(rng, n, 0.35)
			alpha := 0.4 + rng.Float64()*3
			ls := NewState(New(NewHost(sp), alpha), prof.Clone())
			ds := NewState(New(densified(t, NewHost(sp)), alpha), prof.Clone())
			for u := 0; u < n; u++ {
				if ls.EdgeCost(u) != ds.EdgeCost(u) {
					t.Fatalf("%s seed %d: EdgeCost(%d) lazy %v != dense %v", kind, seed, u, ls.EdgeCost(u), ds.EdgeCost(u))
				}
				if lv, dv := ls.DistCost(u), ds.DistCost(u); lv != dv && !(math.IsInf(lv, 1) && math.IsInf(dv, 1)) {
					t.Fatalf("%s seed %d: DistCost(%d) lazy %v != dense %v", kind, seed, u, lv, dv)
				}
				if lv, dv := ls.Cost(u), ds.Cost(u); lv != dv && !(math.IsInf(lv, 1) && math.IsInf(dv, 1)) {
					t.Fatalf("%s seed %d: Cost(%d) lazy %v != dense %v", kind, seed, u, lv, dv)
				}
				lm, lc, lok := ls.BestSingleMove(u)
				dm, dc, dok := ds.BestSingleMove(u)
				if lok != dok || lm != dm || (lc != dc && !(math.IsInf(lc, 1) && math.IsInf(dc, 1))) {
					t.Fatalf("%s seed %d: BestSingleMove(%d) lazy (%v,%v,%v) != dense (%v,%v,%v)",
						kind, seed, u, lm, lc, lok, dm, dc, dok)
				}
			}
			lsc, dsc := ls.SocialCost(), ds.SocialCost()
			if lsc != dsc && !(math.IsInf(lsc, 1) && math.IsInf(dsc, 1)) {
				t.Fatalf("%s seed %d: SocialCost lazy %v != dense %v", kind, seed, lsc, dsc)
			}
		}
	}
}

// TestNewHostNoQuadraticAllocation is the lazy-construction guarantee at
// the heart of the Host redesign: wrapping a 10k-point space as a host
// and a game allocates O(1) — no dense matrix, no per-row slices.
func TestNewHostNoQuadraticAllocation(t *testing.T) {
	pts := gen.Points(7, 10000, 2, 1000, 2)
	allocs := testing.AllocsPerRun(10, func() {
		h := NewHost(pts)
		g := New(h, 2)
		_ = g.Host.Weight(17, 4242)
	})
	// A dense host would need >= n row allocations (10k); lazy
	// construction is a handful of fixed-size objects.
	if allocs > 8 {
		t.Fatalf("NewHost+New on 10k points allocated %v objects per run, want O(1)", allocs)
	}
}
