package game

import (
	"math"
	"sync/atomic"

	"gncg/internal/bitset"
	"gncg/internal/metric"
)

// This file is the geometric fast path of the best-response scan: the
// machinery that turns BestSingleMove's O(n) candidate sweep into an
// output-sensitive one on hosts that can enumerate geometric
// neighborhoods (metric.CandidateSource — kd-trees on point hosts,
// truncated tree traversal on tree hosts).
//
// The contract is the pruning contract, extended wholesale: every
// candidate the geometry excludes is one the existing traffic-weighted
// gain bounds (moveBounds) prove unable to beat the best move found, so
// (move, cost, ok) stays bit-identical to BestSingleMoveExact. The
// derivation: for an acquiring move towards y with host weight
// w = w(u,y), the net gain is bounded by gainUB(w) − AcquirePrice(α,w),
// which is non-increasing in w (gainUB falls, the price contract says
// AcquirePrice never does). acquireCutoff finds a radius r with
//
//	gainUB(r) − AcquirePrice(α,r) <= eps − refundMax − slack,
//
// so every candidate with w > r satisfies skipAcquire's skip condition
// for any refund <= refundMax and any running best — they can be
// skipped without even being enumerated. The scan then walks only the
// source's {v : w(u,v) <= r} set, in the oracle's own ascending order,
// with the per-candidate bound checks still applied inside it.
//
// When no usable cutoff exists (unbounded refunds, plateaued prices,
// slack exceeding the tolerance at extreme costs) or the host has no
// source, the scan falls back to the exhaustive tiers, mirroring the
// GainBoundsSound fallback of the rules layer. Candidate generation is
// an accelerator, never an approximation.

// candidateGeneration gates the geometric fast path globally. It
// defaults to on; SetCandidateGeneration (driven by the experiments
// binary's -candidates flag / GNCG_CANDIDATES environment variable)
// forces it off for oracle-equality gates and A/B measurements.
var candidateGeneration atomic.Bool

func init() { candidateGeneration.Store(true) }

// SetCandidateGeneration toggles the geometric candidate-generation
// fast path process-wide. Results are bit-identical either way (that is
// the point — and the candidate-exactness CI gate holds it); only speed
// and ScanStats telemetry change.
func SetCandidateGeneration(on bool) { candidateGeneration.Store(on) }

// CandidateGenerationEnabled reports whether the geometric fast path is
// active.
func CandidateGenerationEnabled() bool { return candidateGeneration.Load() }

// ScanStats counts how BestSingleMove scans were served on this state —
// the telemetry behind the equilibrium ladder's candidates_scanned /
// fallbacks columns. Counters follow the State's concurrency contract
// (no concurrent mutation); clones start at zero.
type ScanStats struct {
	// CandidateScans counts scans served from a geometric candidate
	// source through a certified cutoff radius.
	CandidateScans int
	// CandidatesScanned totals the candidates those sources returned —
	// the sublinearity measure: compare against CandidateScans·n.
	CandidatesScanned int
	// ExcessSkips counts scans short-circuited by the metric excess
	// certificate before any candidate enumeration (only the agent's
	// deletions were evaluated).
	ExcessSkips int
	// ExhaustiveScans counts pruned scans that swept every candidate —
	// no source, no usable bounds, or candidate generation disabled.
	ExhaustiveScans int
	// Fallbacks counts the subset of ExhaustiveScans where a source was
	// present but no certified cutoff existed. The nightly tree-n=25000
	// gate fails when this is nonzero.
	Fallbacks int
}

// ScanStats returns the state's scan telemetry counters.
func (s *State) ScanStats() ScanStats { return s.scan }

// candidateSource returns the host space's geometric-neighborhood
// capability, or nil.
func (h *Host) candidateSource() metric.CandidateSource {
	if cs, ok := h.space.(metric.CandidateSource); ok {
		return cs
	}
	return nil
}

// metricByConstruction reports whether the host is structurally known to
// satisfy the triangle inequality, in O(1). Unlike Host.IsMetric it
// never densifies: hosts without the Classifier capability answer false
// and simply skip the excess fast tier.
func (h *Host) metricByConstruction(eps float64) bool {
	c, ok := h.space.(metric.Classifier)
	return ok && c.Metric(eps)
}

// maxRefundPrice returns the largest swap refund available to agent u:
// the model's price of the heaviest edge u owns (AcquirePrice is
// monotone in w by the Rules contract), 0 when u owns nothing and so
// can make no swap.
func (s *State) maxRefundPrice(u int, owned bitset.Set) float64 {
	maxW, any := 0.0, false
	owned.ForEach(func(v int) {
		any = true
		if w := s.hostWeight(u, v); w > maxW {
			maxW = w
		}
	})
	if !any {
		return 0
	}
	return s.G.Rules().AcquirePrice(s.G.Alpha, maxW)
}

// trafficFloorSum returns Σ_{x≠u} t(u,x)·Host.Weight(u,x) — the
// traffic-weighted host-metric floor under agent u's distance cost. The
// sum depends only on the host and the demand matrix, never on the
// strategy profile, so it is computed once per agent per traffic epoch
// and cached on the Game; every state and verifier clone sharing the
// Game reuses it, which is what makes the excess certificate sublinear
// after first touch. Concurrent callers may recompute the same entry
// (the sum is deterministic — fixed index order — so duplicates agree
// bitwise); writes are serialized under floorMu.
func (g *Game) trafficFloorSum(u int) float64 {
	g.floorMu.Lock()
	if g.floorSums == nil || g.floorEpoch != g.costEpoch || len(g.floorSums) != g.N() {
		g.floorSums = make([]float64, g.N())
		g.floorDone = make([]bool, g.N())
		g.floorEpoch = g.costEpoch
	}
	if g.floorDone[u] {
		v := g.floorSums[u]
		g.floorMu.Unlock()
		return v
	}
	sums, done, epoch := g.floorSums, g.floorDone, g.floorEpoch
	g.floorMu.Unlock()

	sum := 0.0
	n := g.N()
	for x := 0; x < n; x++ {
		if x == u {
			continue
		}
		if t := g.Traffic(u, x); t != 0 {
			sum += t * g.Host.Weight(u, x)
		}
	}

	g.floorMu.Lock()
	if g.floorEpoch == epoch {
		// Still the same traffic epoch: publish. (A stale epoch means the
		// captured slices were replaced; the write would just vanish.)
		sums[u] = sum
		done[u] = true
	}
	g.floorMu.Unlock()
	return sum
}

// excessRulesOutAcquisitions is the sort-free fast tier of the
// geometric scan: on a structurally metric host, every network distance
// satisfies d(u,x) >= w(u,x), so the traffic-weighted distance gain of
// ANY acquiring move is at most
//
//	excess(u) = DistCost(u) − Σ_x t(u,x)·w(u,x)
//
// (acquisitions can at best collapse every distance to its host-metric
// floor). Every acquiring move also PAYS at least the model's price of
// the nearest other point — AcquirePrice is monotone in w, and no
// candidate sits closer than the source's NearestOtherDist — so the
// certificate compares excess plus the largest swap refund against the
// tolerance plus that minimum price. The price term is what lets the
// tier fire at scale: an agent sitting at its host-metric floor (every
// neighbor reached by a direct edge) certifies in O(deg + log n),
// without building moveBounds' row or enumerating candidates, even
// though the float slack on its cost dwarfs the raw tolerance. The
// slack mirrors the pruning bounds': it absorbs the ulp-level
// divergence between this bound's float evaluation and the scan's
// float cost comparisons, so the tier can never rule out a move the
// exact oracle would accept.
func (s *State) excessRulesOutAcquisitions(u int, cur float64, owned bitset.Set) bool {
	if math.IsInf(cur, 1) || !s.G.Rules().GainBoundsSound() {
		return false
	}
	if !s.G.Host.metricByConstruction(s.G.Eps) {
		return false
	}
	floor := s.G.trafficFloorSum(u)
	if math.IsInf(floor, 0) || math.IsNaN(floor) {
		return false
	}
	excess := s.DistCost(u) - floor
	minPrice := 0.0
	if src := s.G.Host.candidateSource(); src != nil {
		if d := src.NearestOtherDist(u); !math.IsInf(d, 1) {
			if p := s.G.Rules().AcquirePrice(s.G.Alpha, d); p > 0 && !math.IsInf(p, 1) {
				minPrice = p
			}
		}
	}
	slack := 1e-11 * (1 + math.Abs(cur))
	return excess+s.maxRefundPrice(u, owned)-minPrice <= s.G.Eps-slack
}

// acquireCutoff finds a host-weight radius r such that every candidate
// with w(u,y) > r is provably skippable: its net acquiring gain
// gainUB(w) − AcquirePrice(α,w) — non-increasing in w — is at or below
// eps − refundMax − slack, which implies skipAcquire's skip condition
// for every refund the scan can offer and any running best. ok is false
// when no finite radius certifies this (e.g. an infinite refund, or a
// price plateau that never overtakes the slack), in which case the
// caller falls back to the exhaustive scan.
//
// The search runs twice over progressively tighter envelopes. The coarse
// pass replaces gainUB(w) by its ceiling sumTD = gainUB(0), so every
// probe is O(1) and the geo tier's common case never sorts the distance
// row at all; when the price function cannot overtake the ceiling (e.g.
// a plateau) the tight pass retries with the real gainUB, paying the
// one-time sort. Each pass first doubles out of the certified bracket's
// complement, then bisects to tighten the radius. The returned r itself
// always satisfies the certificate, so an inclusive source query at
// radius r is complete.
func (pb *moveBounds) acquireCutoff(refundMax float64) (r float64, ok bool) {
	threshold := pb.eps - refundMax - pb.slack
	if math.IsNaN(threshold) || math.IsInf(threshold, -1) {
		return 0, false
	}
	if r, ok = pb.cutoffSearch(func(w float64) float64 {
		return pb.sumTD - pb.rules.AcquirePrice(pb.alpha, w)
	}, threshold); ok {
		return r, true
	}
	return pb.cutoffSearch(func(w float64) float64 {
		return pb.gainUB(w) - pb.rules.AcquirePrice(pb.alpha, w)
	}, threshold)
}

// cutoffSearch finds the smallest bracketable radius where the
// non-increasing net envelope drops to the threshold.
func (pb *moveBounds) cutoffSearch(net func(float64) float64, threshold float64) (float64, bool) {
	lo, hi := 0.0, 1.0
	if pb.maxD > hi {
		hi = pb.maxD
	}
	if net(lo) <= threshold {
		return lo, true
	}
	for tries := 0; net(hi) > threshold; tries++ {
		if tries == 64 || math.IsInf(hi, 1) {
			return 0, false
		}
		lo = hi
		hi *= 2
	}
	for i := 0; i < 48; i++ {
		mid := lo + (hi-lo)/2
		if mid <= lo || mid >= hi {
			break
		}
		if net(mid) <= threshold {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}
