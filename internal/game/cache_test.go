package game

import (
	"math"
	"math/rand"
	"testing"

	"gncg/internal/bitset"
	"gncg/internal/metric"
	"gncg/internal/parallel"
)

// randCacheHost builds a small random metric host (2D points under the
// 2-norm) without importing internal/gen (which depends on this package).
func randCacheHost(rng *rand.Rand, n int) *Host {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	sp, err := metric.NewPoints(pts, 2)
	if err != nil {
		panic(err)
	}
	return NewHost(sp)
}

func randStrategy(rng *rand.Rand, n, u int) bitset.Set {
	strat := bitset.New(n)
	for v := 0; v < n; v++ {
		if v != u && rng.Float64() < 0.3 {
			strat.Add(v)
		}
	}
	return strat
}

// assertMatchesFresh compares every cached cost query on s against a
// fresh uncached state rebuilt from the same profile.
func assertMatchesFresh(t *testing.T, s *State, step int) {
	t.Helper()
	fresh := NewState(s.G, s.P.Clone())
	fresh.SetDistCaching(false)
	n := s.G.N()
	for u := 0; u < n; u++ {
		if got, want := s.Cost(u), fresh.Cost(u); !costEq(got, want) {
			t.Fatalf("step %d: cached Cost(%d) = %v, fresh recomputation = %v", step, u, got, want)
		}
	}
	if got, want := s.SocialCost(), fresh.SocialCost(); !costEq(got, want) {
		t.Fatalf("step %d: cached SocialCost = %v, fresh recomputation = %v", step, got, want)
	}
	for u := 0; u < n; u++ {
		got, want := s.APSPAvoiding(u), fresh.Network().APSPAvoiding(u)
		for i := range got {
			for j := range got[i] {
				if !costEq(got[i][j], want[i][j]) {
					t.Fatalf("step %d: cached APSPAvoiding(%d)[%d][%d] = %v, fresh = %v",
						step, u, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func costEq(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return math.Abs(a-b) <= 1e-9
}

// TestDistCacheMatchesFreshRecomputation is the cache-correctness
// property test: after randomized Apply / SetStrategy / speculative
// CostAfter / revert sequences, every cached cost query must equal a
// recomputation on a fresh uncached state bound to the same profile.
func TestDistCacheMatchesFreshRecomputation(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(3)
		g := New(randCacheHost(rng, n), 0.3+3*rng.Float64())
		s := NewState(g, StarProfile(n, rng.Intn(n)))
		for step := 0; step < 60; step++ {
			u := rng.Intn(n)
			switch rng.Intn(4) {
			case 0: // random single-edge move via Apply
				moves := s.CandidateMoves(u)
				if len(moves) == 0 {
					continue
				}
				s.Apply(moves[rng.Intn(len(moves))])
			case 1: // wholesale strategy replacement
				s.SetStrategy(u, randStrategy(rng, n, u))
			case 2: // speculative evaluation must leave the state intact
				moves := s.CandidateMoves(u)
				if len(moves) == 0 {
					continue
				}
				m := moves[rng.Intn(len(moves))]
				before := s.Cost(u)
				_ = s.CostAfter(m)
				if got := s.Cost(u); !costEq(got, before) {
					t.Fatalf("seed %d step %d: CostAfter mutated the state: Cost(%d) %v -> %v",
						seed, step, u, before, got)
				}
			case 3: // apply then exactly revert (the dynamics-scan pattern)
				old := s.P.S[u].Clone()
				s.SetStrategy(u, randStrategy(rng, n, u))
				_ = s.Cost(u)
				s.SetStrategy(u, old)
			}
			if step%7 == 0 || step == 59 {
				assertMatchesFresh(t, s, step)
			}
		}
	}
}

// TestDistCacheToggleRoundTrip: disabling and re-enabling memoization
// around mutations must never serve stale distances.
func TestDistCacheToggleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 7
	g := New(randCacheHost(rng, n), 1.2)
	s := NewState(g, StarProfile(n, 0))
	_ = s.SocialCost() // populate the cache
	s.SetDistCaching(false)
	s.Apply(Move{Agent: 1, Kind: Buy, V: 3})
	s.SetDistCaching(true)
	if !s.DistCachingEnabled() {
		t.Fatal("caching should be re-enabled")
	}
	assertMatchesFresh(t, s, 0)
}

// TestDistCacheConcurrentReads exercises the parallel read path (the
// IsNash / TotalDistCost pattern) so `go test -race` can observe it.
func TestDistCacheConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 12
	g := New(randCacheHost(rng, n), 2)
	s := NewState(g, StarProfile(n, 0))
	want := make([]float64, n)
	fresh := NewState(g, s.P.Clone())
	fresh.SetDistCaching(false)
	for u := 0; u < n; u++ {
		want[u] = fresh.Cost(u)
	}
	for round := 0; round < 4; round++ {
		got := parallel.Map(n, func(u int) float64 { return s.Cost(u) })
		for u := 0; u < n; u++ {
			if !costEq(got[u], want[u]) {
				t.Fatalf("round %d: concurrent Cost(%d) = %v, want %v", round, u, got[u], want[u])
			}
		}
	}
}
