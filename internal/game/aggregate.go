package game

// Incremental distance-sum aggregates: every cached distance row carries
// Σ_v t(u,v)·d(u,v) — the whole of DistCost(u) — maintained alongside the
// row, so repeated cost queries against an unchanged network are O(1) and
// a speculative move's cost evaluation pays only for the entries its
// repair touched, not an O(n) re-summation.
//
// Bit-equality with recomputation is a hard requirement (the sweep
// engine's byte-identical results contract reaches through every cost
// query), and a plain running float sum cannot provide it: float addition
// is not associative, so subtract-old/add-new maintenance drifts by ulps.
// The aggregate instead fixes the summation tree's shape: the row is cut
// into fixed-width blocks, each block folds left-to-right into a partial
// sum, and the partial sums fold left-to-right into the total. Repair
// maintenance recomputes exactly the dirty blocks (the blocks containing
// touched entries) and refolds the block sums — identical values to a
// from-scratch fold because every kept block sum was itself a fold of
// unchanged entries. DistCost's uncached path uses the same shape, so
// cached, incrementally-maintained and freshly-recomputed costs are all
// bit-identical, which the property tests pin across the host corpus.
//
// The shape also keeps the old left-to-right semantics on small
// instances: for n ≤ aggBlock there is a single block and the fold is
// exactly the plain ordered sum the engine always computed.
//
// +Inf distances (disconnected pairs with demand) propagate through the
// folds to a +Inf total, matching the exact semantics; zero-demand pairs
// contribute an exact 0 so a +Inf distance they tolerate never poisons
// the sum (0·Inf is NaN — distTerm guards it).

// aggBlock is the fixed fold-block width. It is a constant — never a
// function of n or of the machine — because the fold shape is part of
// the numeric contract.
const aggBlock = 64

// rowAgg is the maintained aggregate of one cached row.
type rowAgg struct {
	blocks []float64 // fixed-shape per-block partial sums
	total  float64   // left-to-right fold of blocks
	epoch  uint64    // cost epoch (traffic + rules) the terms were computed under
	valid  bool
}

// distTerm is the contribution of pair (u,v) at distance d: the cost
// model's DistTerm(t(u,v), d), with zero-demand pairs (and the
// diagonal) contributing an exact 0 even at d = +Inf — the guards run
// here so Rules implementations never see the 0·Inf case. Under the
// default SumRules this is exactly t·d.
func (s *State) distTerm(u, v int, d float64) float64 {
	if v == u {
		return 0
	}
	t := s.G.Traffic(u, v)
	if t == 0 {
		return 0
	}
	return s.G.Rules().DistTerm(t, d)
}

// foldBlock folds the terms of row[lo:hi] in index order.
func (s *State) foldBlock(u int, row []float64, lo, hi int) float64 {
	acc := 0.0
	for v := lo; v < hi; v++ {
		acc += s.distTerm(u, v, row[v])
	}
	return acc
}

// foldDistCost computes Σ_v t(u,v)·d(u,v) over the row with the canonical
// fold shape. This is the from-scratch path (uncached states, aggregate
// rebuilds); it is bit-identical to any sequence of incremental block
// updates landing on the same row.
func (s *State) foldDistCost(u int, row []float64) float64 {
	total := 0.0
	for lo := 0; lo < len(row); lo += aggBlock {
		hi := min(lo+aggBlock, len(row))
		total += s.foldBlock(u, row, lo, hi)
	}
	return total
}

func foldBlocks(blocks []float64) float64 {
	total := 0.0
	for _, b := range blocks {
		total += b
	}
	return total
}

// buildRowAgg computes row u's aggregate from scratch.
func buildRowAgg(s *State, u int, row []float64) rowAgg {
	nb := (len(row) + aggBlock - 1) / aggBlock
	a := rowAgg{blocks: make([]float64, nb), epoch: s.G.costEpoch, valid: true}
	for b := 0; b < nb; b++ {
		lo := b * aggBlock
		a.blocks[b] = s.foldBlock(u, row, lo, min(lo+aggBlock, len(row)))
	}
	a.total = foldBlocks(a.blocks)
	return a
}

// beginAggMark arms the cache's dirty-block scratch and returns the mark
// hook handed to the repair primitives: each touched row entry dirties
// its block, deduplicated so repeated marks are free. Caller holds c.mu;
// exactly one update may be in flight (mutation is single-threaded).
func (c *distCache) beginAggMark() func(x int) {
	c.aggDirty = c.aggDirty[:0]
	return func(x int) {
		b := x / aggBlock
		if !c.aggDirtyFlag[b] {
			c.aggDirtyFlag[b] = true
			c.aggDirty = append(c.aggDirty, b)
		}
	}
}

// finishAggUpdate refreshes row i's aggregate after a successful repair:
// dirty blocks recompute from the repaired row and the block sums refold.
// An aggregate from a stale cost epoch (or a missing one) rebuilds
// wholesale instead. Caller holds c.mu.
func (c *distCache) finishAggUpdate(s *State, i int, row []float64) {
	a := &c.agg[i]
	if !a.valid || a.epoch != s.G.costEpoch || len(a.blocks) != (len(row)+aggBlock-1)/aggBlock {
		*a = buildRowAgg(s, i, row)
	} else {
		for _, b := range c.aggDirty {
			lo := b * aggBlock
			a.blocks[b] = s.foldBlock(i, row, lo, min(lo+aggBlock, len(row)))
		}
		a.total = foldBlocks(a.blocks)
	}
	c.clearAggScratch()
}

func (c *distCache) clearAggScratch() {
	for _, b := range c.aggDirty {
		c.aggDirtyFlag[b] = false
	}
	c.aggDirty = c.aggDirty[:0]
}

// aggTotal returns the maintained Σ t(u,·)·d(u,·) when row u is cached
// and current, rebuilding the aggregate first if the traffic matrix or
// the cost model changed since it was computed. countHit guards the stats counter:
// DistCost probes the aggregate again after a row fill, and that second
// probe answers from work the fill already counted.
func (c *distCache) aggTotal(s *State, u int, countHit bool) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.off || c.rows[u] == nil || c.rowPos[u] != c.head {
		return 0, false
	}
	a := &c.agg[u]
	if !a.valid || a.epoch != s.G.costEpoch {
		*a = buildRowAgg(s, u, c.rows[u])
	}
	if countHit {
		c.stats.Hits++
	}
	return a.total, true
}
