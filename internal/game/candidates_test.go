package game

import (
	"math"
	"math/rand"
	"testing"

	"gncg/internal/gen"
	"gncg/internal/graph"
	"gncg/internal/metric"
)

// corpusHosts returns the candidate-generation test corpus: point hosts
// under every supported norm, tree hosts including zero-weight edges
// (whole subtrees at distance 0 — maximal tie pressure on the cutoff
// radius), and a 1-2 host, which has no CandidateSource and pins the
// no-source path.
func corpusHosts(t *testing.T, seed int64, n int) map[string]metric.Space {
	t.Helper()
	rng := rand.New(rand.NewSource(seed + 99))
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		w := rng.Float64() * 4
		if rng.Intn(4) == 0 {
			w = 0
		}
		edges = append(edges, graph.Edge{U: rng.Intn(v), V: v, W: w})
	}
	zeroTree, err := metric.NewTreeMetric(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]metric.Space{
		"points-l1":   gen.Points(seed, n, 2, 10, 1),
		"points-l2":   gen.Points(seed+1, n, 2, 10, 2),
		"points-linf": gen.Points(seed+2, n, 3, 10, math.Inf(1)),
		"tree":        gen.Tree(seed, n, 1.1, 6.3),
		"tree-zero-w": zeroTree,
		"one-two":     gen.OneTwo(seed, n, 0.4),
	}
}

// TestCandidateScanMatchesExactOracle is the tentpole's exactness gate
// at unit-test scale: across the host corpus, random profiles, an α
// ladder and a random-traffic variant, BestSingleMove with candidate
// generation ON must return the bit-identical (move, cost, ok) triple
// as with candidate generation OFF and as the unpruned exact oracle,
// for every agent.
func TestCandidateScanMatchesExactOracle(t *testing.T) {
	defer SetCandidateGeneration(true)
	const n = 28
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for name, space := range corpusHosts(t, seed, n) {
			for _, alpha := range []float64{0.5, 3, 16 * n} {
				for _, withTraffic := range []bool{false, true} {
					g := New(NewHost(space), alpha)
					if withTraffic {
						tr := make([][]float64, n)
						trng := rand.New(rand.NewSource(seed * 7))
						for u := range tr {
							tr[u] = make([]float64, n)
							for v := range tr[u] {
								if v != u && trng.Intn(3) > 0 {
									tr[u][v] = trng.Float64() * 2
								}
							}
						}
						if err := g.SetTraffic(tr); err != nil {
							t.Fatal(err)
						}
					}
					prof := randomProfile(rng, n, 0.12)
					sGeo := NewState(g, prof.Clone())
					sOff := NewState(g, prof.Clone())
					sExact := NewState(g, prof.Clone())
					for u := 0; u < n; u++ {
						SetCandidateGeneration(true)
						gm, gc, gok := sGeo.BestSingleMove(u)
						SetCandidateGeneration(false)
						om, oc, ook := sOff.BestSingleMove(u)
						em, ec, eok := sExact.BestSingleMoveExact(u)
						if gm != em || gc != ec || gok != eok {
							t.Fatalf("%s alpha=%v traffic=%v seed=%d agent %d: geo (%v, %v, %v) != exact (%v, %v, %v)",
								name, alpha, withTraffic, seed, u, gm, gc, gok, em, ec, eok)
						}
						if om != em || oc != ec || ook != eok {
							t.Fatalf("%s alpha=%v traffic=%v seed=%d agent %d: pruned-off (%v, %v, %v) != exact (%v, %v, %v)",
								name, alpha, withTraffic, seed, u, om, oc, ook, em, ec, eok)
						}
					}
				}
			}
		}
	}
}

// TestCandidateScanStats pins the telemetry accounting: every pruned
// scan lands in exactly one of the three scan tiers, fallbacks are a
// subset of exhaustive scans, sourceless hosts never report candidate
// scans, and the exact oracle never counts at all.
func TestCandidateScanStats(t *testing.T) {
	defer SetCandidateGeneration(true)
	SetCandidateGeneration(true)
	const n = 24
	rng := rand.New(rand.NewSource(5))

	check := func(name string, space metric.Space, wantSource bool) {
		g := New(NewHost(space), 16*n)
		s := NewState(g, randomProfile(rng, n, 0.12))
		for u := 0; u < n; u++ {
			s.BestSingleMove(u)
		}
		st := s.ScanStats()
		if got := st.CandidateScans + st.ExcessSkips + st.ExhaustiveScans; got != n {
			t.Fatalf("%s: %d scans accounted, want %d (%+v)", name, got, n, st)
		}
		if st.Fallbacks > st.ExhaustiveScans {
			t.Fatalf("%s: fallbacks %d exceed exhaustive scans %d", name, st.Fallbacks, st.ExhaustiveScans)
		}
		if !wantSource && (st.CandidateScans != 0 || st.Fallbacks != 0) {
			t.Fatalf("%s: sourceless host reported candidate scans: %+v", name, st)
		}
		if wantSource && st.CandidateScans+st.ExcessSkips == 0 {
			t.Fatalf("%s: geometric host never served a geometric scan: %+v", name, st)
		}
		// The exact oracle never counts.
		before := s.ScanStats()
		for u := 0; u < n; u++ {
			s.BestSingleMoveExact(u)
		}
		if s.ScanStats() != before {
			t.Fatalf("%s: exact oracle moved scan stats: %+v -> %+v", name, before, s.ScanStats())
		}
		// Clones start from zero.
		if c := s.Clone(); c.ScanStats() != (ScanStats{}) {
			t.Fatalf("%s: clone inherited scan stats %+v", name, c.ScanStats())
		}
	}

	check("points-l2", gen.Points(3, n, 2, 10, 2), true)
	check("tree", gen.Tree(3, n, 1, 6), true)
	check("one-two", gen.OneTwo(3, n, 0.4), false)

	// With the toggle off, geometric hosts take the exhaustive tier.
	SetCandidateGeneration(false)
	g := New(NewHost(gen.Points(4, n, 2, 10, 2)), 16*n)
	s := NewState(g, randomProfile(rng, n, 0.12))
	for u := 0; u < n; u++ {
		s.BestSingleMove(u)
	}
	if st := s.ScanStats(); st.CandidateScans != 0 || st.ExcessSkips != 0 || st.ExhaustiveScans != n {
		t.Fatalf("toggle off: want %d exhaustive scans only, got %+v", n, st)
	}
}
