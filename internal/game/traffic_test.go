package game

import (
	"math"
	"math/rand"
	"testing"

	"gncg/internal/metric"
)

func TestTrafficValidation(t *testing.T) {
	g := New(NewHost(metric.Unit{N: 3}), 1)
	if err := g.SetTraffic([][]float64{{0, 1}, {1, 0}}); err == nil {
		t.Error("wrong-sized traffic accepted")
	}
	if err := g.SetTraffic([][]float64{{1, 1, 1}, {1, 0, 1}, {1, 1, 0}}); err == nil {
		t.Error("nonzero diagonal accepted")
	}
	if err := g.SetTraffic([][]float64{{0, -1, 1}, {1, 0, 1}, {1, 1, 0}}); err == nil {
		t.Error("negative traffic accepted")
	}
	ok := [][]float64{{0, 2, 0}, {1, 0, 3}, {0.5, 1, 0}}
	if err := g.SetTraffic(ok); err != nil {
		t.Fatal(err)
	}
	if !g.HasTraffic() || g.Traffic(0, 1) != 2 || g.Traffic(1, 0) != 1 {
		t.Error("asymmetric traffic not preserved")
	}
	if err := g.SetTraffic(nil); err != nil || g.HasTraffic() {
		t.Error("nil reset failed")
	}
	if g.Traffic(0, 1) != 1 || g.Traffic(1, 1) != 0 {
		t.Error("uniform traffic defaults wrong")
	}
}

func TestTrafficDistCost(t *testing.T) {
	// Path 0-1-2 with unit weights; traffic from 0: 5 to node 1, 0 to 2.
	g := New(NewHost(metric.Unit{N: 3}), 1)
	if err := g.SetTraffic([][]float64{
		{0, 5, 0},
		{1, 0, 1},
		{1, 1, 0},
	}); err != nil {
		t.Fatal(err)
	}
	p := EmptyProfile(3)
	p.Buy(0, 1)
	p.Buy(1, 2)
	s := NewState(g, p)
	// dist(0,1)=1 weighted 5; dist(0,2)=2 weighted 0.
	if got := s.DistCost(0); got != 5 {
		t.Fatalf("DistCost(0) = %v, want 5", got)
	}
	// Zero demand tolerates disconnection: drop edge (1,2).
	p2 := EmptyProfile(3)
	p2.Buy(0, 1)
	s2 := NewState(g, p2)
	if got := s2.DistCost(0); got != 5 {
		t.Fatalf("zero-demand disconnection: DistCost(0) = %v, want 5", got)
	}
	if got := s2.DistCost(1); !math.IsInf(got, 1) {
		t.Fatalf("agent 1 has demand to unreachable 2: cost %v, want +Inf", got)
	}
}

func TestTrafficSocialCostDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	coords := make([][]float64, 6)
	for i := range coords {
		coords[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	pts, err := metric.NewPoints(coords, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := New(NewHost(pts), 1.2)
	tr := make([][]float64, 6)
	for u := range tr {
		tr[u] = make([]float64, 6)
		for v := range tr[u] {
			if u != v {
				tr[u][v] = rng.Float64() * 3
			}
		}
	}
	if err := g.SetTraffic(tr); err != nil {
		t.Fatal(err)
	}
	s := NewState(g, StarProfile(6, 0))
	perAgent := 0.0
	for u := 0; u < 6; u++ {
		perAgent += s.Cost(u)
	}
	if math.Abs(perAgent-s.SocialCost()) > 1e-9 {
		t.Fatalf("social cost decomposition broken under traffic: %v vs %v", perAgent, s.SocialCost())
	}
}
