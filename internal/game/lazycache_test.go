package game

import (
	"math"
	"math/rand"
	"testing"
)

// assertCostsBitEqualUncached compares every agent's DistCost/Cost and
// the social cost on s against a fresh uncached state bound to the same
// profile, bit-for-bit: the aggregate fast path, incremental block
// maintenance across repairs, and from-scratch recomputation must be
// numerically indistinguishable, not merely close.
func assertCostsBitEqualUncached(t *testing.T, s *State, ctx string, step int) {
	t.Helper()
	fresh := NewState(s.G, s.P.Clone())
	fresh.SetDistCaching(false)
	n := s.G.N()
	bitEq := func(a, b float64) bool {
		return a == b || (math.IsInf(a, 1) && math.IsInf(b, 1))
	}
	for u := 0; u < n; u++ {
		if got, want := s.DistCost(u), fresh.DistCost(u); !bitEq(got, want) {
			t.Fatalf("%s step %d: aggregate DistCost(%d) = %v, exact recomputation = %v",
				ctx, step, u, got, want)
		}
		if got, want := s.Cost(u), fresh.Cost(u); !bitEq(got, want) {
			t.Fatalf("%s step %d: aggregate Cost(%d) = %v, exact recomputation = %v",
				ctx, step, u, got, want)
		}
	}
	if got, want := s.SocialCost(), fresh.SocialCost(); !bitEq(got, want) {
		t.Fatalf("%s step %d: aggregate SocialCost = %v, exact recomputation = %v", ctx, step, got, want)
	}
}

// TestAggregateCostsBitEqualExact is the tentpole's numeric contract:
// after randomized apply / speculative-evaluate / undo / bulk-replace
// sequences on every host flavor, aggregate-based costs must be
// bit-identical to exact recomputation on an uncached state.
func TestAggregateCostsBitEqualExact(t *testing.T) {
	for _, flavor := range repairFlavors {
		flavor := flavor
		t.Run(flavor, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 3; seed++ {
				rng := rand.New(rand.NewSource(900 + seed))
				n := 6 + rng.Intn(4)
				g := New(repairHost(t, rng, n, flavor), 0.3+3*rng.Float64())
				s := NewState(g, randProfile(rng, n, 0.3))
				assertCostsBitEqualUncached(t, s, flavor, -1)
				for step := 0; step < 30; step++ {
					u := rng.Intn(n)
					moves := s.CandidateMoves(u)
					if len(moves) == 0 {
						continue
					}
					m := moves[rng.Intn(len(moves))]
					switch rng.Intn(4) {
					case 0:
						s.Apply(m)
					case 1:
						_ = s.CostAfter(m)
					case 2:
						old := s.P.S[u].Clone()
						s.Apply(m)
						_ = s.Cost(u)
						s.SetStrategy(u, old)
					case 3:
						s.SetStrategy(u, randStrategy(rng, n, u))
					}
					assertCostsBitEqualUncached(t, s, flavor, step)
				}
			}
		})
	}
}

// TestAppliedMoveLeavesRowsLazy is the white-box laziness guard: applying
// a move must only append to the delta log — no cached row may be
// repaired or re-stamped eagerly — and the next read of any row must
// still be bit-equal to a fresh Dijkstra.
func TestAppliedMoveLeavesRowsLazy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 24
	s := NewState(New(randCacheHost(rng, n), 2), StarProfile(n, 0))
	for u := 0; u < n; u++ {
		_ = s.Dist(u)
	}
	c := s.cache
	head0 := c.head
	pos0 := append([]uint64(nil), c.rowPos...)
	s.Apply(Move{Agent: 1, Kind: Buy, V: 2})
	if c.head != head0+1 {
		t.Fatalf("head advanced by %d, want 1 delta", c.head-head0)
	}
	for i, p := range pos0 {
		if c.rowPos[i] != p {
			t.Fatalf("row %d was eagerly re-stamped on apply (pos %d -> %d)", i, p, c.rowPos[i])
		}
	}
	assertRowsBitEqualFresh(t, s, "lazy apply", 0)
	// ...and after the reads, rows are current again.
	for i := range pos0 {
		if c.rows[i] != nil && c.rowPos[i] != c.head {
			t.Fatalf("row %d not brought current by read", i)
		}
	}
}

// TestLogCompactionFallsBackToRecompute parks a warm row across more
// deltas than the log retains: the row falls behind the compaction
// horizon and must be recomputed from scratch, never mis-replayed across
// a truncated history.
func TestLogCompactionFallsBackToRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 8
	s := NewState(New(randCacheHost(rng, n), 1.5), StarProfile(n, 0))
	_ = s.Dist(5)
	pos := s.cache.rowPos[5]
	for k := 0; k < maxPendingDeltas/2+12; k++ {
		s.Apply(Move{Agent: 1, Kind: Buy, V: 3})
		s.Apply(Move{Agent: 1, Kind: Delete, V: 3})
	}
	if s.cache.base <= pos {
		t.Fatalf("log not compacted: base %d, row position %d", s.cache.base, pos)
	}
	assertRowsBitEqualFresh(t, s, "behind horizon", 0)
}

// TestRowCacheEviction runs the randomized corpus under a two-row cache
// cap, so insertion constantly evicts, and requires every cost to stay
// bit-equal to exact recomputation. Not parallel: it swaps the
// package-level cap hook.
func TestRowCacheEviction(t *testing.T) {
	orig := rowCacheCap
	rowCacheCap = func(int) int { return 2 }
	defer func() { rowCacheCap = orig }()
	rng := rand.New(rand.NewSource(21))
	n := 8
	g := New(randCacheHost(rng, n), 1.2)
	s := NewState(g, StarProfile(n, 0))
	if s.cache.cap != 2 {
		t.Fatalf("cap hook not applied: %d", s.cache.cap)
	}
	for step := 0; step < 25; step++ {
		u := rng.Intn(n)
		moves := s.CandidateMoves(u)
		if len(moves) == 0 {
			continue
		}
		m := moves[rng.Intn(len(moves))]
		if rng.Intn(2) == 0 {
			s.Apply(m)
		} else {
			_ = s.CostAfter(m)
		}
		if s.cache.cached > 2 {
			t.Fatalf("step %d: %d rows cached, cap 2", step, s.cache.cached)
		}
		assertCostsBitEqualUncached(t, s, "eviction", step)
	}
}

// TestTrafficChangeRebuildsAggregates: installing a demand matrix after
// aggregates exist must invalidate them — DistCost must serve the new
// demands, bit-equal to an uncached state under the same traffic.
func TestTrafficChangeRebuildsAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 9
	g := New(randCacheHost(rng, n), 2)
	s := NewState(g, StarProfile(n, 0))
	before := s.DistCost(3) // builds the uniform-demand aggregate
	tr := make([][]float64, n)
	for u := range tr {
		tr[u] = make([]float64, n)
		for v := range tr[u] {
			if u != v {
				tr[u][v] = 2
			}
		}
	}
	if err := g.SetTraffic(tr); err != nil {
		t.Fatal(err)
	}
	got := s.DistCost(3)
	if got == before {
		t.Fatalf("DistCost ignored the traffic change: still %v", got)
	}
	assertCostsBitEqualUncached(t, s, "traffic epoch", 0)
	if err := g.SetTraffic(nil); err != nil {
		t.Fatal(err)
	}
	if back := s.DistCost(3); back != before {
		t.Fatalf("DistCost after traffic reset = %v, want %v", back, before)
	}
}
