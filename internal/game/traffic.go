package game

import (
	"fmt"
	"math"
)

// Traffic weights generalize the distance cost to weighted demands, the
// feature of the Albers et al. NCG variant the paper contrasts with
// (§1.2): agent u pays Σ_v t(u,v)·d(u,v) instead of plain distance sums.
// Traffic matrices need not be symmetric (u's demand towards v is u's
// alone); the diagonal must be zero and entries non-negative and finite.
// A nil traffic matrix means uniform demand 1, the paper's model.
//
// The UMFL best-response reduction survives weighted demands unchanged —
// client x's connection costs are simply scaled by t(u,x) — so exact
// best responses remain available (see bestresponse.BuildInstance).
func validateTraffic(n int, t [][]float64) error {
	if len(t) != n {
		return fmt.Errorf("game: traffic matrix has %d rows, want %d", len(t), n)
	}
	for u := range t {
		if len(t[u]) != n {
			return fmt.Errorf("game: traffic row %d has %d entries, want %d", u, len(t[u]), n)
		}
		if t[u][u] != 0 {
			return fmt.Errorf("game: nonzero traffic diagonal at %d", u)
		}
		for v, x := range t[u] {
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("game: invalid traffic t(%d,%d)=%v", u, v, x)
			}
		}
	}
	return nil
}

// SetTraffic installs a demand matrix on the game. Passing nil restores
// the uniform (paper) model.
func (g *Game) SetTraffic(t [][]float64) error {
	if t == nil {
		g.traffic = nil
		g.costEpoch++
		return nil
	}
	if err := validateTraffic(g.N(), t); err != nil {
		return err
	}
	g.traffic = t
	g.costEpoch++
	return nil
}

// Traffic returns agent u's demand towards v: 1 under the uniform model.
func (g *Game) Traffic(u, v int) float64 {
	if g.traffic == nil {
		if u == v {
			return 0
		}
		return 1
	}
	return g.traffic[u][v]
}

// HasTraffic reports whether a non-uniform demand matrix is installed.
func (g *Game) HasTraffic() bool { return g.traffic != nil }
