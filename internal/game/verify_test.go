package game

import (
	"math/rand"
	"runtime"
	"testing"
)

// serialOracleVerify is the reference the parallel verifier is pinned
// against: an in-order exhaustive scan of every agent with the unpruned
// exact oracle.
func serialOracleVerify(s *State) (stable bool, firstImproving int) {
	stable, firstImproving = true, -1
	for u := 0; u < s.G.N(); u++ {
		if _, _, improving := s.BestSingleMoveExact(u); improving {
			return false, u
		}
	}
	return stable, firstImproving
}

// settle plays greedy round-robin dynamics in place for at most
// maxRounds full rounds, producing the near-equilibrium states where
// certificates actually fire (a dynamics.RunToConvergence stand-in that
// avoids the import cycle of in-package tests).
func settle(s *State, maxRounds int) {
	n := s.G.N()
	for r := 0; r < maxRounds; r++ {
		moved := false
		for u := 0; u < n; u++ {
			if m, _, ok := s.BestSingleMove(u); ok {
				s.Apply(m)
				moved = true
			}
		}
		if !moved {
			return
		}
	}
}

// TestVerifyParallelMatchesSerialOracle pins the sharding contract: for
// every host flavor, for random and settled states alike, the parallel
// verifier's verdict (Stable, FirstImproving) is bit-identical to the
// serial exhaustive oracle under worker counts {1, 4, GOMAXPROCS},
// with certificates on and off and both scan oracles — and the
// certificate skip count is identical for every worker count. Run under
// -race in CI, this also exercises the per-worker clone isolation.
func TestVerifyParallelMatchesSerialOracle(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, flavor := range repairFlavors {
		for seed := int64(0); seed < 6; seed++ {
			rng := rand.New(rand.NewSource(seed))
			n := 6 + rng.Intn(6)
			g := New(repairHost(t, rng, n, flavor), 0.5+4*rng.Float64())
			s := NewState(g, randProfile(rng, n, 0.3))
			if seed%2 == 1 {
				settle(s, 8) // near-equilibrium: the certificate-rich regime
			}
			wantStable, wantFirst := serialOracleVerify(s.Clone())
			var wantSkipped = -1
			for _, workers := range workerCounts {
				for _, exact := range []bool{false, true} {
					for _, noCerts := range []bool{false, true} {
						res := VerifyGreedyEquilibrium(s, VerifyOptions{
							Workers: workers, Exact: exact, NoCertificates: noCerts,
						})
						if res.Stable != wantStable || res.FirstImproving != wantFirst {
							t.Fatalf("%s seed %d workers=%d exact=%v nocerts=%v: got (stable=%v first=%d), oracle (stable=%v first=%d)",
								flavor, seed, workers, exact, noCerts,
								res.Stable, res.FirstImproving, wantStable, wantFirst)
						}
						if noCerts {
							if res.CertSkipped != 0 {
								t.Fatalf("%s seed %d: CertSkipped=%d with certificates disabled", flavor, seed, res.CertSkipped)
							}
							continue
						}
						if wantSkipped == -1 {
							wantSkipped = res.CertSkipped
						} else if res.CertSkipped != wantSkipped {
							t.Fatalf("%s seed %d workers=%d exact=%v: CertSkipped=%d, want %d (must be worker-invariant)",
								flavor, seed, workers, exact, res.CertSkipped, wantSkipped)
						}
						if res.CertSkipped+res.Scanned != n {
							t.Fatalf("%s seed %d: CertSkipped=%d + Scanned=%d != n=%d",
								flavor, seed, res.CertSkipped, res.Scanned, n)
						}
					}
				}
			}
		}
	}
}

// TestVerifyIsReadOnly: the concurrent entry point must leave the state
// untouched — same profile, same network, same costs.
func TestVerifyIsReadOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 10
	g := New(repairHost(t, rng, n, "l2points"), 2)
	s := NewState(g, randProfile(rng, n, 0.3))
	before := s.P.Clone()
	costBefore := s.SocialCost()
	VerifyGreedyEquilibrium(s, VerifyOptions{Workers: 4})
	for u := 0; u < n; u++ {
		if !s.P.S[u].Equal(before.S[u]) {
			t.Fatalf("agent %d strategy mutated by verification", u)
		}
	}
	if got := s.SocialCost(); got != costBefore {
		t.Fatalf("social cost changed: %v -> %v", costBefore, got)
	}
}

// TestCertificateSoundness: whenever a certificate rules out
// acquisitions, exhaustive evaluation of every buy and swap must agree
// that none improves — across the corpus, on random (not settled)
// states where bounds are stressed hardest.
func TestCertificateSoundness(t *testing.T) {
	for _, flavor := range repairFlavors {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(100 + seed))
			n := 6 + rng.Intn(5)
			g := New(repairHost(t, rng, n, flavor), 0.5+6*rng.Float64())
			s := NewState(g, randProfile(rng, n, 0.4))
			for u := 0; u < n; u++ {
				cur := s.Cost(u)
				cert, ok := s.AcquireGainCertificate(u)
				if !ok || !cert.RulesOutAcquisitions(g.Eps) {
					continue
				}
				for _, m := range s.CandidateMoves(u) {
					if m.Kind == Delete {
						continue
					}
					if after := s.CostAfter(m); g.Improves(after, cur) {
						t.Fatalf("%s seed %d: certificate for agent %d ruled out acquisitions, but %v improves %v -> %v (bound %v + refund %v, slack %v)",
							flavor, seed, u, m, cur, after, cert.AcquireBound, cert.MaxRefund, cert.Slack)
					}
				}
			}
		}
	}
}

// TestVerifyCertSkipsAtScaleEquilibrium reproduces the ladder's
// certify-tier shape in miniature — an ℓ2 star at α = 16n settled to a
// greedy equilibrium — and requires the certificates to actually skip
// agents there: the regime the cert_skipped column measures.
func TestVerifyCertSkipsAtScaleEquilibrium(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 40
	g := New(randCacheHost(rng, n), 16*float64(n))
	s := NewState(g, StarProfile(n, 0))
	settle(s, 16)
	res := VerifyGreedyEquilibrium(s, VerifyOptions{Workers: 4, Exact: true})
	if !res.Stable {
		t.Fatalf("settled star state not verified stable (first improving %d)", res.FirstImproving)
	}
	if res.CertSkipped == 0 {
		t.Fatalf("expected certificate skips at a large-alpha equilibrium, got 0 of %d agents", n)
	}
	t.Logf("cert skipped %d / %d agents", res.CertSkipped, n)
}
