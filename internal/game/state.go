package game

import (
	"math"

	"gncg/internal/bitset"
	"gncg/internal/graph"
	"gncg/internal/parallel"
)

// State is a strategy profile bound to its game, with the created network
// G(s) kept materialized and shortest-path queries memoized (see
// cache.go). All cost queries and move evaluations go through a State.
// States are not safe for concurrent mutation; read-only cost queries on
// distinct sources are safe. States must be created with NewState (or
// Clone); the zero value is unusable.
type State struct {
	G     *Game
	P     Profile
	net   *graph.Graph
	cache *distCache

	// touched counts vertices examined by SetStrategy's diff walk. It is
	// a white-box regression guard: a single-edge move must do O(Δ) work,
	// not rescan all n vertices (see TestSetStrategyTouchesOnlyDiff).
	touched int

	// scan accumulates best-response scan telemetry (see candidates.go);
	// candBuf is the reused scratch buffer for candidate-source queries.
	// Clones start with zero counters and a nil buffer.
	scan    ScanStats
	candBuf []int
}

// NewState binds profile p to game g and materializes G(s). The profile is
// used as-is (not cloned); callers that need the original intact should
// pass p.Clone().
func NewState(g *Game, p Profile) *State {
	if p.N() != g.N() {
		panic("game: profile size does not match host")
	}
	s := &State{G: g, P: p, cache: newDistCache(g.N(), false)}
	s.rebuild()
	return s
}

func (s *State) rebuild() {
	n := s.G.N()
	s.net = graph.New(n)
	for u := 0; u < n; u++ {
		s.P.S[u].ForEach(func(v int) {
			if !s.net.HasEdge(u, v) {
				s.net.AddEdge(u, v, s.hostWeight(u, v))
			}
		})
	}
	s.cache.bump()
}

// hostWeight returns w(u,v), mapping +Inf host weights onto +Inf network
// edges (present but useless, and infinitely expensive to buy).
func (s *State) hostWeight(u, v int) float64 { return s.G.Host.Weight(u, v) }

// Network returns the created network G(s). Callers must not mutate it.
func (s *State) Network() *graph.Graph { return s.net }

// Clone returns an independent copy of the state (with a fresh, empty
// distance cache inheriting the original's on/off toggle).
func (s *State) Clone() *State {
	return &State{
		G: s.G, P: s.P.Clone(), net: s.net.Clone(),
		cache: newDistCache(s.G.N(), s.cache.off),
	}
}

// repairFlipLimit is the edge-change count up to which SetStrategy logs
// per-edge deltas for lazy row repair instead of wholesale invalidation:
// 2 covers every single-edge move (buy and delete flip one edge, swap
// flips two), while bulk strategy replacements — whose collapsed diff
// would rarely be worth replaying — fall back to one bump.
const repairFlipLimit = 2

// edgeFlip records one network edge that a strategy change toggles.
type edgeFlip struct {
	v   int
	add bool
	w   float64
}

// SetStrategy replaces agent u's strategy and incrementally repairs the
// network: only edges incident to u whose ownership flip actually toggles
// existence change, found by diffing the old and new strategy bitsets —
// a single-edge move does O(Δ) edge work, never an O(n) vertex rescan.
// Cached distance rows survive changes of at most repairFlipLimit edges
// via in-place shortest-path repair; larger changes, and pure ownership
// changes of zero edges, invalidate (respectively keep) them as before.
func (s *State) SetStrategy(u int, strat bitset.Set) {
	old := s.P.S[u]
	next := strat.Clone()
	s.P.S[u] = next
	var flips []edgeFlip
	old.ForEachSymDiff(next, func(v int) {
		s.touched++
		if v == u {
			return
		}
		want := next.Has(v) || s.P.S[v].Has(u)
		switch has := s.net.HasEdge(u, v); {
		case want && !has:
			flips = append(flips, edgeFlip{v, true, s.hostWeight(u, v)})
		case !want && has:
			flips = append(flips, edgeFlip{v, false, s.net.EdgeWeight(u, v)})
		}
	})
	switch {
	case len(flips) == 0:
		// Pure ownership change: every distance is intact.
	case len(flips) <= repairFlipLimit:
		for _, f := range flips {
			if f.add {
				s.net.AddEdge(u, f.v, f.w)
			} else {
				s.net.RemoveEdge(u, f.v)
			}
			s.cache.edgeChanged(u, f.v, f.w, f.add)
		}
	default:
		for _, f := range flips {
			if f.add {
				s.net.AddEdge(u, f.v, f.w)
			} else {
				s.net.RemoveEdge(u, f.v)
			}
		}
		s.cache.bump()
	}
}

// EdgeCost returns what agent u pays for its purchases under the game's
// cost model: α·w(u,S_u) in the paper's default SumRules.
func (s *State) EdgeCost(u int) float64 {
	return s.G.Rules().StrategyCost(s, u)
}

// DistCost returns Σ_v t(u,v)·d_{G(s)}(u,v), where t is the game's
// traffic matrix (uniformly 1 in the paper's model); +Inf if u cannot
// reach a node it has positive demand towards. Cached rows answer in
// O(1) from their maintained aggregate (see aggregate.go); uncached
// queries fold the row in the same fixed shape, so the two paths are
// bit-identical.
func (s *State) DistCost(u int) float64 {
	if total, ok := s.cache.aggTotal(s, u, true); ok {
		return total
	}
	row := s.Dist(u)
	// Dist may have replayed or recomputed the row, publishing a current
	// aggregate as a side effect; a second miss means caching is off (or
	// the row was immediately evicted) — fold the row we hold.
	if total, ok := s.cache.aggTotal(s, u, false); ok {
		return total
	}
	return s.foldDistCost(u, row)
}

// Cost returns agent u's total cost α·w(u,S_u) + d_{G(s)}(u,V).
func (s *State) Cost(u int) float64 { return s.EdgeCost(u) + s.DistCost(u) }

// TotalEdgeCost returns Σ_u α·w(u,S_u). Doubly-bought edges charge both
// owners, per the model.
func (s *State) TotalEdgeCost() float64 {
	total := 0.0
	for u := 0; u < s.G.N(); u++ {
		total += s.EdgeCost(u)
	}
	return total
}

// TotalDistCost returns Σ_u Σ_v d(u,v) over ordered pairs.
func (s *State) TotalDistCost() float64 {
	n := s.G.N()
	return parallel.Reduce(n, 0.0,
		func(u int) float64 { return s.DistCost(u) },
		func(a, b float64) float64 { return a + b })
}

// SocialCost returns the sum of all agents' costs.
func (s *State) SocialCost() float64 { return s.TotalEdgeCost() + s.TotalDistCost() }

// Connected reports whether G(s) is connected (equivalently, whether all
// costs are finite, given finite weights).
func (s *State) Connected() bool { return s.net.Connected() }

// SocialCostOfEdgeSet evaluates the social cost of an arbitrary edge set
// on game g assuming single ownership per edge (the relevant case for
// social optimum candidates): each edge contributes the model's marginal
// price — α·w under the default SumRules, giving α·Σw(e) — plus
// Σ_ordered pairs d(u,v).
func SocialCostOfEdgeSet(g *Game, edges []graph.Edge) float64 {
	net := graph.New(g.N())
	r := g.Rules()
	total := 0.0
	for _, e := range edges {
		w := g.Host.Weight(e.U, e.V)
		if !net.HasEdge(e.U, e.V) {
			net.AddEdge(e.U, e.V, w)
			total += r.AcquirePrice(g.Alpha, w)
		}
	}
	return total + net.SumDistances()
}

// ProfileFromEdgeSet turns an undirected edge set into a profile with a
// deterministic single-ownership rule (the lower-numbered endpoint buys).
// Constructions that need a specific ownership build profiles directly.
func ProfileFromEdgeSet(n int, edges []graph.Edge) Profile {
	p := EmptyProfile(n)
	for _, e := range edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if !p.HasEdge(u, v) {
			p.Buy(u, v)
		}
	}
	return p
}

// Inf is a convenience alias for +Inf used across experiment code.
func Inf() float64 { return math.Inf(1) }
