package game

import (
	"fmt"
	"sort"

	"gncg/internal/bitset"
)

// Profile is a strategy profile: S[u] is the set of nodes agent u buys an
// edge towards. Profiles are mutable value types holding reference
// semantics on the underlying bit sets; use Clone for snapshots.
type Profile struct {
	S []bitset.Set
}

// EmptyProfile returns the profile where nobody buys anything.
func EmptyProfile(n int) Profile {
	p := Profile{S: make([]bitset.Set, n)}
	for u := range p.S {
		p.S[u] = bitset.New(n)
	}
	return p
}

// StarProfile returns the profile where `center` buys an edge to every
// other agent: the canonical connected seed for dynamics and the NE
// candidate of several of the paper's constructions (Thm 10, Thm 15,
// Thm 19).
func StarProfile(n, center int) Profile {
	p := EmptyProfile(n)
	for v := 0; v < n; v++ {
		if v != center {
			p.Buy(center, v)
		}
	}
	return p
}

// SpokeProfile returns the leaf-owned star: every agent except `center`
// buys its own edge towards center. The same network as StarProfile with
// the opposite ownership — the configuration in which each agent pays
// for exactly its own connection, the canonical equilibrium shape of the
// paper's tree constructions and the excess certificate's best case
// (every agent sits at its host-metric floor).
func SpokeProfile(n, center int) Profile {
	p := EmptyProfile(n)
	for v := 0; v < n; v++ {
		if v != center {
			p.Buy(v, center)
		}
	}
	return p
}

// PathProfile returns the profile where agent i buys the edge to i+1
// along the given vertex order.
func PathProfile(n int, order []int) Profile {
	p := EmptyProfile(n)
	for i := 0; i+1 < len(order); i++ {
		p.Buy(order[i], order[i+1])
	}
	return p
}

// OwnedEdge names a directed purchase: Owner buys the edge to To.
type OwnedEdge struct {
	Owner, To int
}

// ProfileFromOwnedEdges builds a profile from a purchase list.
func ProfileFromOwnedEdges(n int, edges []OwnedEdge) (Profile, error) {
	p := EmptyProfile(n)
	for _, e := range edges {
		if e.Owner < 0 || e.Owner >= n || e.To < 0 || e.To >= n || e.Owner == e.To {
			return Profile{}, fmt.Errorf("game: invalid owned edge %d->%d on %d agents", e.Owner, e.To, n)
		}
		p.S[e.Owner].Add(e.To)
	}
	return p, nil
}

// N returns the number of agents.
func (p Profile) N() int { return len(p.S) }

// Buys reports whether u buys the edge towards v.
func (p Profile) Buys(u, v int) bool { return p.S[u].Has(v) }

// HasEdge reports whether edge (u,v) exists in G(s), i.e. at least one
// endpoint buys it.
func (p Profile) HasEdge(u, v int) bool { return p.S[u].Has(v) || p.S[v].Has(u) }

// Buy adds v to S_u.
func (p Profile) Buy(u, v int) {
	if u == v {
		panic("game: agent cannot buy an edge to itself")
	}
	p.S[u].Add(v)
}

// Unbuy removes v from S_u.
func (p Profile) Unbuy(u, v int) { p.S[u].Remove(v) }

// Clone returns a deep copy.
func (p Profile) Clone() Profile {
	c := Profile{S: make([]bitset.Set, len(p.S))}
	for u := range p.S {
		c.S[u] = p.S[u].Clone()
	}
	return c
}

// Equal reports whether both profiles make exactly the same purchases.
func (p Profile) Equal(q Profile) bool {
	if len(p.S) != len(q.S) {
		return false
	}
	for u := range p.S {
		if !p.S[u].Equal(q.S[u]) {
			return false
		}
	}
	return true
}

// Hash folds the profile into a 64-bit value for visited-state tables.
func (p Profile) Hash() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for u := range p.S {
		h ^= p.S[u].Hash()
		h *= prime
		h ^= uint64(u + 1)
		h *= prime
	}
	return h
}

// OwnedEdges lists every purchase, sorted by (Owner, To). Useful for
// deterministic serialization and debugging output.
func (p Profile) OwnedEdges() []OwnedEdge {
	var out []OwnedEdge
	for u := range p.S {
		p.S[u].ForEach(func(v int) { out = append(out, OwnedEdge{u, v}) })
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Owner != out[j].Owner {
			return out[i].Owner < out[j].Owner
		}
		return out[i].To < out[j].To
	})
	return out
}

// EdgeCount returns the number of distinct undirected edges in G(s).
func (p Profile) EdgeCount() int {
	n := len(p.S)
	c := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if p.HasEdge(u, v) {
				c++
			}
		}
	}
	return c
}

// DoublyOwned lists edges bought by both endpoints — never beneficial in
// equilibrium (both owners pay the full price), and useful to flag.
func (p Profile) DoublyOwned() [][2]int {
	var out [][2]int
	n := len(p.S)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if p.Buys(u, v) && p.Buys(v, u) {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}
