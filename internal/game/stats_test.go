package game

import (
	"math/rand"
	"testing"
)

// TestCacheStatsCounting pins the observability counters' semantics on a
// deterministic single-threaded query sequence: misses on cold rows,
// O(1) hits on warm aggregates and warm rows, and batch repairs across
// applied moves — the events the equilibrium sweep's churn probe
// records.
func TestCacheStatsCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 8
	g := New(randCacheHost(rng, n), 1.5)
	s := NewState(g, StarProfile(n, 0))
	if st := s.CacheStats(); st != (CacheStats{Capacity: n}) {
		t.Fatalf("fresh state has nonzero stats: %+v", st)
	}
	s.DistCost(3)
	if st := s.CacheStats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("cold read: %+v", st)
	}
	s.DistCost(3)
	if st := s.CacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("warm aggregate read: %+v", st)
	}
	_ = s.Dist(3)
	if st := s.CacheStats(); st.Hits != 2 {
		t.Fatalf("warm row read: %+v", st)
	}
	// A single applied edge change leaves row 3 stale; its next read
	// batch-repairs it in place, which still counts as a hit (no fresh
	// Dijkstra ran).
	s.Apply(Move{Agent: 1, Kind: Buy, V: 3})
	s.DistCost(3)
	st := s.CacheStats()
	if st.BatchRepairs != 1 || st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("repair read: %+v", st)
	}
	if st.Evictions != 0 || st.RepairRefusals != 0 {
		t.Fatalf("unexpected evictions/refusals: %+v", st)
	}
	if st.Capacity != n {
		t.Fatalf("capacity = %d, want %d", st.Capacity, n)
	}
	// Clones start with fresh counters: probes on a clone are isolated
	// from (and do not disturb) the original's numbers.
	c := s.Clone()
	if cs := c.CacheStats(); cs.Hits != 0 || cs.Misses != 0 {
		t.Fatalf("clone inherited counters: %+v", cs)
	}
}

// TestCacheStatsEvictionChurn measures the ROADMAP's FIFO-degeneration
// concern in miniature: round-robin access over more rows than the cap
// makes every read a miss, and the counters say so. Not parallel: it
// swaps the package-level cap hook.
func TestCacheStatsEvictionChurn(t *testing.T) {
	orig := rowCacheCap
	rowCacheCap = func(int) int { return 2 }
	defer func() { rowCacheCap = orig }()
	rng := rand.New(rand.NewSource(11))
	n := 8
	g := New(randCacheHost(rng, n), 1.5)
	s := NewState(g, StarProfile(n, 0))
	for round := 0; round < 2; round++ {
		for u := 0; u < n; u++ {
			s.DistCost(u)
		}
	}
	st := s.CacheStats()
	if st.Misses != 16 || st.Hits != 0 {
		t.Fatalf("round-robin over cap 2 should be pure churn: %+v", st)
	}
	if st.Evictions != 14 {
		// 16 inserts into 2 slots: every insert after the second evicts.
		t.Fatalf("evictions = %d, want 14 (%+v)", st.Evictions, st)
	}
	if st.Capacity != 2 {
		t.Fatalf("capacity = %d, want 2", st.Capacity)
	}
}
