package game

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gncg/internal/bitset"
	"gncg/internal/graph"
	"gncg/internal/metric"
)

func unitGame(n int, alpha float64) *Game {
	return New(NewHost(metric.Unit{N: n}), alpha)
}

func randomMetricGame(rng *rand.Rand, n int, alpha float64) *Game {
	coords := make([][]float64, n)
	for i := range coords {
		coords[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	pts, err := metric.NewPoints(coords, 2)
	if err != nil {
		panic(err)
	}
	return New(NewHost(pts), alpha)
}

func randomProfile(rng *rand.Rand, n int, p float64) Profile {
	prof := EmptyProfile(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				prof.Buy(u, v)
			}
		}
	}
	return prof
}

func TestHostFromMatrixRejectsBadInput(t *testing.T) {
	if _, err := HostFromMatrix([][]float64{{0, 1}, {2, 0}}); err == nil {
		t.Error("asymmetric host accepted")
	}
}

func TestCostAccountingStar(t *testing.T) {
	// Star on 4 unit nodes, center 0 owns all edges, alpha = 2.
	g := unitGame(4, 2)
	p := EmptyProfile(4)
	for v := 1; v < 4; v++ {
		p.Buy(0, v)
	}
	s := NewState(g, p)
	// Center: edge cost 3*2 = 6, dist cost 3 => 9.
	if got := s.Cost(0); got != 9 {
		t.Fatalf("center cost = %v, want 9", got)
	}
	// Leaf: edge cost 0, dist 1 + 2 + 2 = 5.
	if got := s.Cost(1); got != 5 {
		t.Fatalf("leaf cost = %v, want 5", got)
	}
	// Social: 9 + 3*5 = 24. Also equals alpha*3 + sum over ordered pairs.
	if got := s.SocialCost(); got != 24 {
		t.Fatalf("social cost = %v, want 24", got)
	}
}

func TestDoubleOwnershipChargesBoth(t *testing.T) {
	g := unitGame(2, 3)
	p := EmptyProfile(2)
	p.Buy(0, 1)
	p.Buy(1, 0)
	s := NewState(g, p)
	if got := s.TotalEdgeCost(); got != 6 {
		t.Fatalf("TotalEdgeCost = %v, want 6 (both owners pay)", got)
	}
	if got := len(p.DoublyOwned()); got != 1 {
		t.Fatalf("DoublyOwned = %d, want 1", got)
	}
	if s.Network().M() != 1 {
		t.Fatal("doubly-owned edge must appear once in the network")
	}
}

func TestDisconnectedCostIsInf(t *testing.T) {
	g := unitGame(3, 1)
	s := NewState(g, EmptyProfile(3))
	if !math.IsInf(s.Cost(0), 1) || !math.IsInf(s.SocialCost(), 1) {
		t.Fatal("empty network must have infinite cost")
	}
	if s.Connected() {
		t.Fatal("empty network reported connected")
	}
}

// TestSocialCostDecomposition: Σ_u cost(u) == TotalEdgeCost + TotalDistCost
// and TotalDistCost == network.SumDistances on random states.
func TestSocialCostDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := randomMetricGame(rng, n, 0.5+rng.Float64()*3)
		s := NewState(g, randomProfile(rng, n, 0.4))
		perAgent := 0.0
		for u := 0; u < n; u++ {
			perAgent += s.Cost(u)
		}
		social := s.SocialCost()
		if math.IsInf(social, 1) {
			return math.IsInf(perAgent, 1)
		}
		if math.Abs(perAgent-social) > 1e-6 {
			return false
		}
		return math.Abs(s.TotalDistCost()-s.Network().SumDistances()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSetStrategyMatchesRebuild: incremental network repair must agree
// with building the network from scratch.
func TestSetStrategyMatchesRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := randomMetricGame(rng, n, 1)
		s := NewState(g, randomProfile(rng, n, 0.3))
		for step := 0; step < 10; step++ {
			u := rng.Intn(n)
			strat := bitset.New(n)
			for v := 0; v < n; v++ {
				if v != u && rng.Float64() < 0.3 {
					strat.Add(v)
				}
			}
			s.SetStrategy(u, strat)
			fresh := NewState(g, s.P.Clone())
			for a := 0; a < n; a++ {
				for b := a + 1; b < n; b++ {
					if s.Network().HasEdge(a, b) != fresh.Network().HasEdge(a, b) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMovesApplyAndRevert(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomMetricGame(rng, 8, 1.5)
	s := NewState(g, randomProfile(rng, 8, 0.3))
	before := s.P.Clone()
	for u := 0; u < 8; u++ {
		for _, m := range s.CandidateMoves(u) {
			_ = s.CostAfter(m)
		}
	}
	if !s.P.Equal(before) {
		t.Fatal("CostAfter left the profile mutated")
	}
}

// TestCostAfterMatchesApply: evaluating a move must equal applying it.
func TestCostAfterMatchesApply(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		g := randomMetricGame(rng, n, 0.5+2*rng.Float64())
		s := NewState(g, randomProfile(rng, n, 0.4))
		u := rng.Intn(n)
		moves := s.CandidateMoves(u)
		if len(moves) == 0 {
			return true
		}
		m := moves[rng.Intn(len(moves))]
		want := s.CostAfter(m)
		s.Apply(m)
		got := s.Cost(u)
		if math.IsInf(want, 1) && math.IsInf(got, 1) {
			return true
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBestSingleMoveImprovesOrReportsNone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(8)
		g := randomMetricGame(rng, n, 0.5+2*rng.Float64())
		s := NewState(g, randomProfile(rng, n, 0.3))
		for u := 0; u < n; u++ {
			cur := s.Cost(u)
			m, c, ok := s.BestSingleMove(u)
			if ok {
				if !(c < cur) {
					t.Fatalf("claimed improving move %v does not improve: %v -> %v", m, cur, c)
				}
				if got := s.CostAfter(m); math.Abs(got-c) > 1e-9 {
					t.Fatalf("reported move cost %v, evaluation %v", c, got)
				}
			} else if c != cur {
				t.Fatalf("no-improvement case must return current cost")
			}
		}
	}
}

func TestStarIsGreedyEquilibriumUnitAlpha2(t *testing.T) {
	// Classic NCG fact: for alpha in (1,2) the star bought by the center
	// is an equilibrium; for the GE notion this must hold at alpha = 2.
	g := unitGame(6, 2)
	p := EmptyProfile(6)
	for v := 1; v < 6; v++ {
		p.Buy(0, v)
	}
	s := NewState(g, p)
	if !s.IsGreedyEquilibrium() {
		t.Fatal("center-owned unit star not a greedy equilibrium at alpha=2")
	}
	if !s.IsAddOnlyEquilibrium() {
		t.Fatal("GE must imply AE")
	}
	if got := s.GreedyApproxFactor(); got != 1 {
		t.Fatalf("GE state has GreedyApproxFactor %v, want 1", got)
	}
}

func TestCompleteGraphEquilibriumSmallAlpha(t *testing.T) {
	// For alpha < 1 in the unit NCG the complete graph is stable; deleting
	// an edge saves alpha but costs 1 in distance.
	n := 5
	g := unitGame(n, 0.5)
	p := EmptyProfile(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p.Buy(u, v)
		}
	}
	s := NewState(g, p)
	if !s.IsGreedyEquilibrium() {
		t.Fatal("complete unit graph not GE at alpha=0.5")
	}
}

func TestAddOnlyNotGreedy(t *testing.T) {
	// A complete unit graph at huge alpha: no buys possible (AE holds
	// trivially) but deletions improve, so not GE.
	n := 4
	g := unitGame(n, 100)
	p := EmptyProfile(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p.Buy(u, v)
		}
	}
	s := NewState(g, p)
	if !s.IsAddOnlyEquilibrium() {
		t.Fatal("complete graph must be add-only stable")
	}
	if s.IsGreedyEquilibrium() {
		t.Fatal("complete graph at alpha=100 must not be greedy stable")
	}
	if f := s.GreedyApproxFactor(); f <= 1 {
		t.Fatalf("approx factor must exceed 1, got %v", f)
	}
}

func TestSocialCostOfEdgeSetMatchesState(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomMetricGame(rng, 7, 1.3)
	var edges []graph.Edge
	for v := 1; v < 7; v++ {
		edges = append(edges, graph.Edge{U: 0, V: v, W: g.Host.Weight(0, v)})
	}
	viaEdges := SocialCostOfEdgeSet(g, edges)
	s := NewState(g, ProfileFromEdgeSet(7, edges))
	if math.Abs(viaEdges-s.SocialCost()) > 1e-9 {
		t.Fatalf("edge-set social cost %v != state social cost %v", viaEdges, s.SocialCost())
	}
}

func TestProfileHashDistinguishesOwnership(t *testing.T) {
	p := EmptyProfile(3)
	p.Buy(0, 1)
	q := EmptyProfile(3)
	q.Buy(1, 0)
	if p.Hash() == q.Hash() {
		t.Fatal("ownership direction must change the hash")
	}
	if p.Equal(q) {
		t.Fatal("profiles with different ownership must differ")
	}
}

func TestProfileFromOwnedEdges(t *testing.T) {
	p, err := ProfileFromOwnedEdges(3, []OwnedEdge{{0, 1}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Buys(0, 1) || !p.Buys(2, 1) || p.Buys(1, 0) {
		t.Fatal("purchases wrong")
	}
	if p.EdgeCount() != 2 {
		t.Fatalf("EdgeCount = %d", p.EdgeCount())
	}
	if _, err := ProfileFromOwnedEdges(3, []OwnedEdge{{0, 0}}); err == nil {
		t.Error("self-purchase accepted")
	}
	if _, err := ProfileFromOwnedEdges(3, []OwnedEdge{{0, 5}}); err == nil {
		t.Error("out-of-range purchase accepted")
	}
}

func TestImprovesRespectsEps(t *testing.T) {
	g := unitGame(2, 1)
	if g.Improves(10-1e-12, 10) {
		t.Error("sub-eps change counted as improvement")
	}
	if !g.Improves(9, 10) {
		t.Error("unit improvement rejected")
	}
	if !g.Improves(5, math.Inf(1)) {
		t.Error("finite vs infinite must improve")
	}
	if g.Improves(math.Inf(1), math.Inf(1)) {
		t.Error("inf vs inf is not an improvement")
	}
}

func TestOneInfHostBuyingInfEdge(t *testing.T) {
	oi, err := metric.NewOneInf(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	g := New(NewHost(oi), 1)
	p := EmptyProfile(3)
	p.Buy(0, 2) // unbuyable pair
	s := NewState(g, p)
	if !math.IsInf(s.EdgeCost(0), 1) {
		t.Fatal("buying an Inf edge must cost Inf")
	}
	// The Inf edge provides no connectivity either.
	if !math.IsInf(s.DistCost(0), 1) {
		t.Fatal("Inf edge must not carry shortest paths")
	}
}
