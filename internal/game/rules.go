package game

import (
	"gncg/internal/bitset"
)

// Rules is the pluggable cost model of the network-creation-game family.
// The engine underneath — strategy profiles, network materialization,
// distance caching and repair, move enumeration, pruning, certificates,
// parallel verification — is model-agnostic; a Rules value supplies the
// pieces that differ between models:
//
//   - StrategyCost: what an agent pays for its purchased edge set (the
//     α·w(u,S_u) term of the paper's model).
//   - DistTerm: one pair's contribution to the distance cost, given its
//     demand weight and network distance (t·d in the paper's model).
//   - AcquirePrice: the marginal price of acquiring one host edge of
//     weight w. This single hook feeds the gain-bound pruning of
//     BestSingleMove, the AcquireGainCertificate layer, the swap refund,
//     the UMFL facility opening costs (bestresponse.BuildInstance) and
//     the per-edge term of SocialCostOfEdgeSet — so those layers stay
//     model-blind. It must be non-negative, monotone non-decreasing in w
//     for fixed alpha, and satisfy StrategyCost(S) ≤ Σ_{v∈S}
//     AcquirePrice(alpha, w(u,v)) (marginal prices never understate the
//     aggregate, or certificates would overstate the refund side).
//   - MoveFeasible / Feasible: the model's strategy constraints (budget
//     caps, locality radii). The paper's model has none.
//   - GainBoundsSound: whether the triangle-inequality gain bounds of
//     moveBounds apply. They require DistTerm to be linear in d with
//     non-negative coefficient (gain ≤ Σ t·max(0, d−w) arguments sum
//     per-pair terms); a model with a nonlinear distance term must
//     return false, which turns off pruning and certificates — the
//     exhaustive scan path stays correct.
//   - ExactNashViaUMFL: whether agent u's best response is exactly the
//     UMFL instance of bestresponse.BuildInstance. True when strategies
//     are unconstrained and StrategyCost is separable as
//     Σ AcquirePrice(alpha, w); models with cross-edge constraints
//     (budget) must return false, and the exact-Nash verification tier
//     rejects them (see bestresponse.VerifyNashWorkers).
//   - SpanningEdgeCostLB: a lower bound on the model's total edge cost
//     of any connected spanning subgraph, given the host MST weight —
//     the edge-side term of opt.LowerBound.
//
// Rules values must be stateless (any parameters derive from the Game,
// e.g. Alpha) and safe for concurrent use: verification workers call
// them from many goroutines against cloned states.
type Rules interface {
	// Name is the model's registry key ("sum", "budget", "unit", ...),
	// the value the sweep engine's model axis carries.
	Name() string

	// StrategyCost returns what agent u pays for its current strategy
	// S_u (the edge-cost side of u's cost; distances are separate).
	StrategyCost(s *State, u int) float64

	// DistTerm returns one pair's distance-cost contribution given
	// demand t > 0 and network distance d. Callers guard the diagonal
	// and zero-demand pairs (which contribute an exact 0 even at
	// d = +Inf) before calling; d may be +Inf and must propagate.
	DistTerm(t, d float64) float64

	// AcquirePrice returns the marginal price of acquiring one host
	// edge of weight w under parameter alpha. +Inf host weights must
	// price at +Inf (unbuyable pairs stay unbuyable in every model).
	AcquirePrice(alpha, w float64) float64

	// MoveFeasible reports whether agent m.Agent may perform single-edge
	// move m in state s. Models without strategy constraints return
	// true. Must be consistent with Feasible on the resulting strategy,
	// except that models may additionally admit *repair* moves from
	// infeasible strategies (e.g. budget: any move that decreases
	// spending).
	MoveFeasible(s *State, m Move) bool

	// Feasible reports whether strat is an admissible strategy for
	// agent u on game g.
	Feasible(g *Game, u int, strat bitset.Set) bool

	// GainBoundsSound reports whether moveBounds' gain upper bounds are
	// valid for this model (requires DistTerm linear in d). False turns
	// off pruning and certificates; verification falls back to
	// exhaustive scans and stays exact.
	GainBoundsSound() bool

	// ExactNashViaUMFL reports whether the UMFL reduction of package
	// bestresponse computes exact best responses under this model.
	ExactNashViaUMFL() bool

	// SpanningEdgeCostLB lower-bounds the model's total edge cost of
	// any connected spanning subgraph of an n-node host whose MST
	// weighs mstWeight.
	SpanningEdgeCostLB(alpha, mstWeight float64, n int) float64
}

// SumRules is the paper's sum-distance model: agent u pays
// α·w(u,S_u) + Σ_v t(u,v)·d(u,v). It is the default cost model of every
// game — game.New installs it — and its arithmetic is exactly the
// pre-refactor engine's, operation for operation, so sweeps under
// SumRules are byte-identical to the hardwired implementation they
// replaced (pinned by the golden quick-sweep test in cmd/experiments).
type SumRules struct{}

// Name returns "sum".
func (SumRules) Name() string { return "sum" }

// StrategyCost returns α·w(u,S_u): the owned weights fold first, the
// single multiplication by α comes last. The order is load-bearing —
// α·Σw and Σ(α·w) differ by ulps, and this fold shape is the one the
// byte-identity contract pins.
func (SumRules) StrategyCost(s *State, u int) float64 {
	total := 0.0
	s.P.S[u].ForEach(func(v int) { total += s.hostWeight(u, v) })
	return s.G.Alpha * total
}

// DistTerm returns t·d.
func (SumRules) DistTerm(t, d float64) float64 { return t * d }

// AcquirePrice returns α·w.
func (SumRules) AcquirePrice(alpha, w float64) float64 { return alpha * w }

// MoveFeasible always reports true: the paper's model is unconstrained.
func (SumRules) MoveFeasible(*State, Move) bool { return true }

// Feasible always reports true.
func (SumRules) Feasible(*Game, int, bitset.Set) bool { return true }

// GainBoundsSound reports true: DistTerm is linear in d.
func (SumRules) GainBoundsSound() bool { return true }

// ExactNashViaUMFL reports true: the Thm 3 reduction is exact.
func (SumRules) ExactNashViaUMFL() bool { return true }

// SpanningEdgeCostLB returns α·mstWeight.
func (SumRules) SpanningEdgeCostLB(alpha, mstWeight float64, n int) float64 {
	return alpha * mstWeight
}

// Rules returns the game's cost model, defaulting to SumRules for games
// whose model was never set (including zero-value construction in
// tests), so every pre-existing call site keeps the paper's semantics.
func (g *Game) Rules() Rules {
	if g.rules == nil {
		return SumRules{}
	}
	return g.rules
}

// SetRules installs a cost model on the game; nil restores the default
// SumRules. Like SetTraffic it bumps the cost epoch, so cached
// distance-sum aggregates computed under the old model's DistTerm
// rebuild instead of serving stale sums. States bound to the game see
// the new model on their next cost query; callers swapping models
// mid-run must not hold results computed under the old one.
func (g *Game) SetRules(r Rules) {
	g.rules = r
	g.costEpoch++
}

// NewWithRules returns a game on host h with parameter alpha under cost
// model r (nil means SumRules). The alpha parameter keeps its
// model-specific meaning: per-unit-weight edge price under sum, flat
// per-edge price under unit, per-agent budget under budget.
func NewWithRules(h *Host, alpha float64, r Rules) *Game {
	g := New(h, alpha)
	g.rules = r
	return g
}

// FeasibleProfile reports whether every agent's strategy in s is
// admissible under the game's cost model.
func (s *State) FeasibleProfile() bool {
	for u := 0; u < s.G.N(); u++ {
		if !s.G.Rules().Feasible(s.G, u, s.P.S[u]) {
			return false
		}
	}
	return true
}

// SpendOnStrategy returns Σ_{v∈strat} w(u,v): the host weight agent u's
// strategy buys. It is the quantity budget-style models constrain, and
// +Inf when the strategy contains an unbuyable pair.
func SpendOnStrategy(g *Game, u int, strat bitset.Set) float64 {
	total := 0.0
	strat.ForEach(func(v int) { total += g.Host.Weight(u, v) })
	return total
}
