// Package game implements the Generalized Network Creation Game (GNCG) of
// Bilò, Friedrich, Lenzner and Melnichenko (SPAA 2019): the paper's core
// contribution.
//
// A game is played on a complete weighted host graph H on n nodes. Every
// node is a selfish agent; agent u's strategy S_u ⊆ V∖{u} is the set of
// nodes u buys an edge towards, at price α·w(u,v) per edge. The strategy
// profile s determines the created network G(s) containing edge (u,v) iff
// v ∈ S_u or u ∈ S_v. Agent u's cost is
//
//	cost(u, G(s)) = α·w(u,S_u) + Σ_v d_{G(s)}(u,v),
//
// and the social cost is the sum over all agents. The package provides the
// model types (Host, Game, Profile, State), exact cost accounting, single
// edge moves (buy / delete / swap) and the equilibrium notions used
// throughout the paper: add-only equilibrium (AE), greedy equilibrium
// (GE), and β-approximate variants. Exact Nash checks additionally need a
// best-response oracle and live in package bestresponse.
package game

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"gncg/internal/metric"
)

// DefaultEps is the strict-improvement tolerance: a move improves iff it
// lowers the mover's cost by more than this.
const DefaultEps = 1e-9

// Host is a complete weighted host graph: symmetric non-negative weights
// with zero diagonal, backed directly by a metric.Space. Weights are
// computed lazily — constructing a host is O(1) beyond the space itself,
// so implicit spaces (points in R^d, tree metrics, unit/{1,2}/{1,∞}
// hosts) support 10k+ agents in O(n) memory. +Inf weights encode
// unbuyable pairs (1-∞–GNCG).
//
// A dense view exists only on explicit request (Densify / Matrix) and is
// memoized on the host. Hosts are safe for concurrent reads.
type Host struct {
	n     int
	space metric.Space

	denseOnce sync.Once
	dense     atomic.Pointer[[][]float64]
}

// NewHost wraps a metric.Space as a host graph. The space is used as-is
// (not copied) and must not be mutated afterwards; no dense matrix is
// materialized.
func NewHost(s metric.Space) *Host {
	return &Host{n: s.Size(), space: s}
}

// HostFromMatrix wraps an explicit weight matrix, validating it through
// metric.FromMatrix. The host takes ownership of the matrix — callers
// must not mutate it afterwards (the matrix doubles as the host's dense
// view).
func HostFromMatrix(w [][]float64) (*Host, error) {
	s, err := metric.FromMatrix(w)
	if err != nil {
		return nil, err
	}
	return NewHost(s), nil
}

// N returns the number of agents.
func (h *Host) N() int { return h.n }

// Space returns the backing metric.Space.
func (h *Host) Space() metric.Space { return h.space }

// Weight returns w(u,v). It reads the memoized dense view when one
// exists and otherwise computes the distance from the backing space.
func (h *Host) Weight(u, v int) float64 {
	if m := h.dense.Load(); m != nil {
		return (*m)[u][v]
	}
	return h.space.Dist(u, v)
}

// Densify materializes and memoizes the dense weight matrix: O(n²) memory
// and construction time on first call, O(1) afterwards. Spaces that
// already hold a dense matrix (matrix-backed hosts) are reused without
// copying. The returned matrix is the host's single shared dense view —
// callers must treat it as immutable; see also Matrix.
func (h *Host) Densify() [][]float64 {
	h.denseOnce.Do(func() {
		var m [][]float64
		if d, ok := h.space.(metric.Dense); ok {
			m = d.DenseMatrix()
		} else {
			m = metric.Matrix(h.space)
		}
		h.dense.Store(&m)
	})
	return *h.dense.Load()
}

// Matrix returns the host's dense weight matrix. It is an alias for
// Densify: the first call on a lazily-backed host pays the O(n²)
// materialization, and every call returns the same shared, memoized view.
// Callers must not mutate it.
func (h *Host) Matrix() [][]float64 { return h.Densify() }

// Classify places the host in the paper's model hierarchy. Spaces with
// the metric.Classifier capability (points, trees, unit, {1,2}, {1,∞})
// answer structurally in O(1) without densification; matrix-backed hosts
// fall back to the dense validator over the memoized view.
func (h *Host) Classify(eps float64) metric.Class {
	if c, ok := h.space.(metric.Classifier); ok {
		return c.Class(eps)
	}
	return metric.Classify(h.Densify(), eps)
}

// IsMetric reports whether the host satisfies the triangle inequality,
// via the metric.Classifier capability in O(1) when the space has one and
// the dense O(n³) validator otherwise.
func (h *Host) IsMetric(eps float64) bool {
	if c, ok := h.space.(metric.Classifier); ok {
		return c.Metric(eps)
	}
	return metric.IsMetric(h.Densify(), eps)
}

// ForEachFinitePair calls fn for every unordered pair u < v with finite
// weight, in ascending (u,v) order: the buyable-pair iteration used by
// MST/optimum/spanner code. Sparse spaces ({1,∞} hosts) enumerate only
// their finite pairs; dense and implicit spaces are scanned without
// allocation.
func (h *Host) ForEachFinitePair(fn func(u, v int, w float64)) {
	if m := h.dense.Load(); m != nil {
		for u := 0; u < h.n; u++ {
			row := (*m)[u]
			for v := u + 1; v < h.n; v++ {
				if w := row[v]; !math.IsInf(w, 1) {
					fn(u, v, w)
				}
			}
		}
		return
	}
	metric.ForEachFinitePair(h.space, fn)
}

// Game couples a host graph with the edge-price parameter α > 0 and the
// strict-improvement tolerance Eps.
type Game struct {
	Host  *Host
	Alpha float64
	Eps   float64

	// traffic holds optional per-pair demand weights (nil = uniform);
	// see traffic.go. costEpoch counts SetTraffic and SetRules calls so
	// cached distance-sum aggregates (aggregate.go) detect changes to
	// the per-pair cost terms and rebuild instead of serving stale sums.
	traffic   [][]float64
	costEpoch uint64

	// rules is the pluggable cost model (rules.go); nil means the
	// paper's SumRules. Read through Rules(), set through SetRules.
	rules Rules

	// floorSums lazily caches the per-agent traffic-weighted host floor
	// Σ_x t(u,x)·w(u,x) behind the excess certificate (candidates.go).
	// The sums are strategy-independent; floorEpoch tracks costEpoch so
	// SetTraffic invalidates them. Guarded by floorMu — states and
	// verifier clones share the Game across goroutines.
	floorMu    sync.Mutex
	floorEpoch uint64
	floorSums  []float64
	floorDone  []bool
}

// New returns a game on host h with parameter alpha and the default
// tolerance.
func New(h *Host, alpha float64) *Game {
	if alpha < 0 {
		panic(fmt.Sprintf("game: negative alpha %v", alpha))
	}
	return &Game{Host: h, Alpha: alpha, Eps: DefaultEps}
}

// N returns the number of agents.
func (g *Game) N() int { return g.Host.N() }

// Improves reports whether newCost is a strict improvement over oldCost
// under the game's tolerance. Any finite cost strictly improves on +Inf.
func (g *Game) Improves(newCost, oldCost float64) bool {
	if math.IsInf(oldCost, 1) {
		return !math.IsInf(newCost, 1)
	}
	return newCost < oldCost-g.Eps
}
