// Package game implements the Generalized Network Creation Game (GNCG) of
// Bilò, Friedrich, Lenzner and Melnichenko (SPAA 2019): the paper's core
// contribution.
//
// A game is played on a complete weighted host graph H on n nodes. Every
// node is a selfish agent; agent u's strategy S_u ⊆ V∖{u} is the set of
// nodes u buys an edge towards, at price α·w(u,v) per edge. The strategy
// profile s determines the created network G(s) containing edge (u,v) iff
// v ∈ S_u or u ∈ S_v. Agent u's cost is
//
//	cost(u, G(s)) = α·w(u,S_u) + Σ_v d_{G(s)}(u,v),
//
// and the social cost is the sum over all agents. The package provides the
// model types (Host, Game, Profile, State), exact cost accounting, single
// edge moves (buy / delete / swap) and the equilibrium notions used
// throughout the paper: add-only equilibrium (AE), greedy equilibrium
// (GE), and β-approximate variants. Exact Nash checks additionally need a
// best-response oracle and live in package bestresponse.
package game

import (
	"fmt"
	"math"

	"gncg/internal/metric"
)

// DefaultEps is the strict-improvement tolerance: a move improves iff it
// lowers the mover's cost by more than this.
const DefaultEps = 1e-9

// Host is a complete weighted host graph: symmetric non-negative weights
// with zero diagonal. +Inf weights encode unbuyable pairs (1-∞–GNCG).
type Host struct {
	n int
	w [][]float64
}

// NewHost materializes a metric.Space into a host graph.
func NewHost(s metric.Space) *Host {
	return &Host{n: s.Size(), w: metric.Matrix(s)}
}

// HostFromMatrix wraps an explicit weight matrix, validating it through
// metric.FromMatrix.
func HostFromMatrix(w [][]float64) (*Host, error) {
	s, err := metric.FromMatrix(w)
	if err != nil {
		return nil, err
	}
	return NewHost(s), nil
}

// N returns the number of agents.
func (h *Host) N() int { return h.n }

// Weight returns w(u,v).
func (h *Host) Weight(u, v int) float64 { return h.w[u][v] }

// Matrix returns the underlying weight matrix (not a copy; callers must
// not mutate it).
func (h *Host) Matrix() [][]float64 { return h.w }

// Classify places the host in the paper's model hierarchy.
func (h *Host) Classify(eps float64) metric.Class { return metric.Classify(h.w, eps) }

// Game couples a host graph with the edge-price parameter α > 0 and the
// strict-improvement tolerance Eps.
type Game struct {
	Host  *Host
	Alpha float64
	Eps   float64

	// traffic holds optional per-pair demand weights (nil = uniform);
	// see traffic.go.
	traffic [][]float64
}

// New returns a game on host h with parameter alpha and the default
// tolerance.
func New(h *Host, alpha float64) *Game {
	if alpha < 0 {
		panic(fmt.Sprintf("game: negative alpha %v", alpha))
	}
	return &Game{Host: h, Alpha: alpha, Eps: DefaultEps}
}

// N returns the number of agents.
func (g *Game) N() int { return g.Host.N() }

// Improves reports whether newCost is a strict improvement over oldCost
// under the game's tolerance. Any finite cost strictly improves on +Inf.
func (g *Game) Improves(newCost, oldCost float64) bool {
	if math.IsInf(oldCost, 1) {
		return !math.IsInf(newCost, 1)
	}
	return newCost < oldCost-g.Eps
}
