// Package stats provides the summary statistics the experiment sweeps
// aggregate with: mean, standard deviation, extrema and quantiles over
// float64 samples, with NaN/Inf-aware handling (infinite samples are
// counted separately, since disconnected-network costs are +Inf by
// design).
package stats

import (
	"math"
	"sort"
)

// Summary describes a sample of float64 values.
type Summary struct {
	N        int // finite samples
	Infinite int // +Inf/-Inf samples (excluded from moments)
	Mean     float64
	Std      float64
	Min      float64
	Max      float64
}

// Summarize computes a Summary. NaN samples are ignored entirely.
// Moments are computed over finite samples only; with no finite samples
// the moment fields are NaN.
func Summarize(xs []float64) Summary {
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		switch {
		case math.IsNaN(x):
		case math.IsInf(x, 0):
			s.Infinite++
		default:
			s.N++
			sum += x
			if x < s.Min {
				s.Min = x
			}
			if x > s.Max {
				s.Max = x
			}
		}
	}
	if s.N == 0 {
		s.Mean, s.Std = math.NaN(), math.NaN()
		s.Min, s.Max = math.NaN(), math.NaN()
		return s
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of the finite samples by
// linear interpolation; NaN if there are none.
func Quantile(xs []float64, q float64) float64 {
	var fin []float64
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			fin = append(fin, x)
		}
	}
	if len(fin) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sort.Float64s(fin)
	if len(fin) == 1 {
		return fin[0]
	}
	pos := q * float64(len(fin)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return fin[lo]
	}
	frac := pos - float64(lo)
	return fin[lo]*(1-frac) + fin[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }
