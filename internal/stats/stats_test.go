package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std %v, want %v", s.Std, want)
	}
}

func TestSummarizeInfAndNaN(t *testing.T) {
	s := Summarize([]float64{1, math.Inf(1), math.NaN(), 3})
	if s.N != 2 || s.Infinite != 1 {
		t.Fatalf("summary %+v", s)
	}
	if s.Mean != 2 {
		t.Fatalf("mean %v", s.Mean)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || !math.IsNaN(s.Mean) || !math.IsNaN(s.Min) {
		t.Fatalf("empty summary %+v", s)
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Mean != 7 {
		t.Fatalf("singleton summary %+v", one)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Median(xs); got != 2.5 {
		t.Fatalf("median = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile(xs, 2)) {
		t.Fatal("invalid quantile input must be NaN")
	}
}

// TestQuantileMonotone: quantiles are monotone in q and bracketed by
// min/max.
func TestQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		s := Summarize(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 || v < s.Min-1e-9 || v > s.Max+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
