package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gncg/internal/game"
	"gncg/internal/graph"
	"gncg/internal/metric"
)

func randomOneTwoHost(rng *rand.Rand, n int, p float64) *game.Host {
	var ones [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				ones = append(ones, [2]int{u, v})
			}
		}
	}
	ot, err := metric.NewOneTwo(n, ones)
	if err != nil {
		panic(err)
	}
	return game.NewHost(ot)
}

func randomPointHost(rng *rand.Rand, n int) *game.Host {
	coords := make([][]float64, n)
	for i := range coords {
		coords[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	pts, err := metric.NewPoints(coords, 2)
	if err != nil {
		panic(err)
	}
	return game.NewHost(pts)
}

func TestAlgorithm1Structure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(8)
		h := randomOneTwoHost(rng, n, 0.4)
		res, err := Algorithm1(h)
		if err != nil {
			t.Fatal(err)
		}
		net := graph.FromEdges(n, res.Edges)
		// Contains all 1-edges, no 1-1-2 triangle, diameter <= 2.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if h.Weight(u, v) == 1 && !net.HasEdge(u, v) {
					t.Fatal("Algorithm1 dropped a 1-edge")
				}
			}
		}
		for _, e := range res.Edges {
			if e.W != 2 {
				continue
			}
			for x := 0; x < n; x++ {
				if x != e.U && x != e.V && h.Weight(e.U, x) == 1 && h.Weight(x, e.V) == 1 {
					t.Fatal("Algorithm1 kept a 2-edge closed by a 1-1 path")
				}
			}
		}
		if d := net.Diameter(); d > 2 {
			t.Fatalf("Algorithm1 network diameter %v > 2", d)
		}
	}
}

func TestAlgorithm1RejectsNonOneTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	if _, err := Algorithm1(randomPointHost(rng, 4)); err == nil {
		t.Fatal("geometric host accepted by Algorithm1")
	}
	// A unit host is a legal (degenerate) 1-2 host: the NCG is a special
	// case of the 1-2–GNCG, so it must be accepted.
	if _, err := Algorithm1(game.NewHost(metric.Unit{N: 3})); err != nil {
		t.Fatalf("unit host rejected: %v", err)
	}
}

// TestAlgorithm1IsOptimal: Thm 6 — for α <= 1 Algorithm 1's output equals
// the exhaustive social optimum.
func TestAlgorithm1IsOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4) // up to 6: exact search is cheap
		h := randomOneTwoHost(rng, n, 0.45)
		alpha := rng.Float64() // (0,1)
		g := game.New(h, alpha)
		res, err := Algorithm1(h)
		if err != nil {
			return false
		}
		algCost := Evaluate(g, res).Cost
		exact, err := ExactSmall(g)
		if err != nil {
			return false
		}
		return math.Abs(algCost-exact.Cost) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestExactSmallPath(t *testing.T) {
	// Two points far apart plus one in the middle: for moderate alpha the
	// optimum is the 2-edge path, not the triangle.
	coords := [][]float64{{0}, {1}, {2}}
	pts, err := metric.NewPoints(coords, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := game.New(game.NewHost(pts), 10)
	res, err := ExactSmall(g)
	if err != nil {
		t.Fatal(err)
	}
	net := graph.FromEdges(3, res.Edges)
	if net.M() != 2 || net.HasEdge(0, 2) {
		t.Fatalf("expected path OPT, got %v", res.Edges)
	}
	// cost = alpha*2 + distances (1+1+2)*2 = 20 + 8
	if math.Abs(res.Cost-28) > 1e-9 {
		t.Fatalf("OPT cost = %v, want 28", res.Cost)
	}
}

func TestExactSmallRefusesLargeN(t *testing.T) {
	g := game.New(game.NewHost(metric.Unit{N: 9}), 1)
	if _, err := ExactSmall(g); err == nil {
		t.Fatal("n=9 accepted by exact search")
	}
}

// TestExactSmallRespectsLowerBound and candidates: LB <= OPT <= heuristics.
func TestBoundsBracketExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		g := game.New(randomPointHost(rng, n), 0.2+3*rng.Float64())
		exact, err := ExactSmall(g)
		if err != nil {
			return false
		}
		lb := LowerBound(g)
		if exact.Cost < lb-1e-9 {
			t.Logf("seed %d: OPT %v below lower bound %v", seed, exact.Cost, lb)
			return false
		}
		for _, cand := range []Result{MSTCandidate(g), CompleteCandidate(g), BestCandidate(g, 100)} {
			if cand.Cost < exact.Cost-1e-9 {
				t.Logf("seed %d: candidate %v beats exact %v", seed, cand.Cost, exact.Cost)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLocalSearchImprovesMST(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := game.New(randomPointHost(rng, 10), 0.5)
	mst := MSTCandidate(g)
	ls := LocalSearch(g, mst.Edges, g.Eps, 200)
	if ls.Cost > mst.Cost+1e-9 {
		t.Fatalf("local search worsened the candidate: %v -> %v", mst.Cost, ls.Cost)
	}
	if math.IsInf(ls.Cost, 1) {
		t.Fatal("local search returned disconnected candidate")
	}
}

func TestLocalSearchFromEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := game.New(randomPointHost(rng, 6), 1)
	ls := LocalSearch(g, nil, g.Eps, 500)
	if math.IsInf(ls.Cost, 1) {
		t.Fatal("local search could not escape the empty network")
	}
}

func TestTreeOPTMatchesExactForTreeMetric(t *testing.T) {
	// On a tree metric with high alpha the tree is the social optimum;
	// verify against the exhaustive search on a small instance. (Cor. 3
	// asserts optimality for every alpha; the exhaustive check for a
	// couple of alphas guards the plumbing.)
	edges := []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 1, V: 3, W: 0.5}, {U: 3, V: 4, W: 1.5}}
	tm, err := metric.NewTreeMetric(5, edges)
	if err != nil {
		t.Fatal(err)
	}
	for _, alpha := range []float64{0.5, 1, 3, 10} {
		g := game.New(game.NewHost(tm), alpha)
		tree := Evaluate(g, TreeOPT(tm))
		exact, err := ExactSmall(g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tree.Cost-exact.Cost) > 1e-9 {
			t.Fatalf("alpha %v: tree cost %v != exact OPT %v", alpha, tree.Cost, exact.Cost)
		}
	}
}
