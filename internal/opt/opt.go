// Package opt computes and bounds social optimum networks: the subgraphs
// of the host minimizing α·Σ_{e∈E} w(e) + Σ_{u,v} d(u,v) over ordered
// pairs (the paper's OPT, the denominator of every Price-of-Anarchy
// ratio).
//
// Finding OPT is a variant of the classical Network Design Problem and is
// strongly suspected NP-hard for every model variant except two that the
// paper solves outright: the 1-2–GNCG for α ≤ 1 (Algorithm 1: drop each
// 2-edge closed by two 1-edges) and the T–GNCG (the defining tree is
// optimal, Cor. 3). Accordingly this package provides: those two exact
// polynomial cases, an exhaustive edge-subset search for small n, a
// local-search heuristic for upper bounds at larger n, and the lower
// bound α·MST(H) + Σ_{u,v} d_H(u,v) used to bracket ratios.
package opt

import (
	"fmt"
	"math"

	"gncg/internal/game"
	"gncg/internal/graph"
	"gncg/internal/metric"
	"gncg/internal/parallel"
)

// Result is a social-optimum candidate: an edge set and its social cost.
type Result struct {
	Edges []graph.Edge
	Cost  float64
}

// Algorithm1 implements the paper's Algorithm 1 for 1-2 hosts: start from
// the complete graph and remove every 2-edge that participates in a
// 1-1-2 triangle. For α ≤ 1 the result is a social optimum (Thm 6). The
// host must have all weights in {1,2}; otherwise an error is returned.
func Algorithm1(h *game.Host) (Result, error) {
	n := h.N()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			w := h.Weight(u, v)
			if w != 1 && w != 2 {
				return Result{}, fmt.Errorf("opt: Algorithm1 requires a 1-2 host, found w(%d,%d)=%v", u, v, w)
			}
		}
	}
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			w := h.Weight(u, v)
			if w == 2 {
				closed := false
				for x := 0; x < n && !closed; x++ {
					if x != u && x != v && h.Weight(u, x) == 1 && h.Weight(x, v) == 1 {
						closed = true
					}
				}
				if closed {
					continue
				}
			}
			edges = append(edges, graph.Edge{U: u, V: v, W: w})
		}
	}
	return Result{Edges: edges, Cost: math.NaN()}, nil
}

// TreeOPT returns the defining tree of a tree metric: by Cor. 3 it is
// both the social optimum and a Nash equilibrium of the T–GNCG.
func TreeOPT(tm *metric.TreeMetric) Result {
	return Result{Edges: tm.Edges(), Cost: math.NaN()}
}

// Evaluate fills in the social cost of an edge-set result for game g.
func Evaluate(g *game.Game, r Result) Result {
	r.Cost = game.SocialCostOfEdgeSet(g, r.Edges)
	return r
}

// maxExactN bounds the exhaustive optimum search: n=7 means 2^21 edge
// subsets, which parallel enumeration handles in seconds.
const maxExactN = 7

// ExactSmall computes the social optimum by exhaustive parallel
// enumeration of edge subsets. It refuses hosts beyond maxExactN vertices.
func ExactSmall(g *game.Game) (Result, error) {
	n := g.N()
	if n > maxExactN {
		return Result{}, fmt.Errorf("opt: exact search supports n <= %d, got %d", maxExactN, n)
	}
	type pair struct{ u, v int }
	var pairs []pair
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, pair{u, v})
		}
	}
	m := len(pairs)
	rules := g.Rules()
	// Split the 2^m masks across workers by the top bits.
	const splitBits = 6
	split := splitBits
	if m < split {
		split = m
	}
	blocks := 1 << split
	rest := m - split
	results := parallel.Map(blocks, func(hi int) Result {
		best := Result{Cost: math.Inf(1)}
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
		}
		for lo := 0; lo < 1<<rest; lo++ {
			mask := hi<<rest | lo
			// Build adjacency matrix and edge cost.
			edgeCost := 0.0
			for i := range w {
				for j := range w[i] {
					if i == j {
						w[i][j] = 0
					} else {
						w[i][j] = math.Inf(1)
					}
				}
			}
			for b := 0; b < m; b++ {
				if mask&(1<<b) != 0 {
					p := pairs[b]
					wt := g.Host.Weight(p.u, p.v)
					w[p.u][p.v] = wt
					w[p.v][p.u] = wt
					edgeCost += rules.AcquirePrice(g.Alpha, wt)
				}
			}
			if edgeCost >= best.Cost {
				continue
			}
			total := edgeCost + floydDistSum(w, n)
			if total < best.Cost {
				var edges []graph.Edge
				for b := 0; b < m; b++ {
					if mask&(1<<b) != 0 {
						p := pairs[b]
						edges = append(edges, graph.Edge{U: p.u, V: p.v, W: g.Host.Weight(p.u, p.v)})
					}
				}
				best = Result{Edges: edges, Cost: total}
			}
		}
		return best
	})
	best := Result{Cost: math.Inf(1)}
	for _, r := range results {
		if r.Cost < best.Cost {
			best = r
		}
	}
	return best, nil
}

// floydDistSum runs Floyd–Warshall in place on w and returns the sum of
// distances over ordered pairs (+Inf if disconnected).
func floydDistSum(w [][]float64, n int) float64 {
	for k := 0; k < n; k++ {
		wk := w[k]
		for i := 0; i < n; i++ {
			wik := w[i][k]
			if math.IsInf(wik, 1) {
				continue
			}
			wi := w[i]
			for j := 0; j < n; j++ {
				if nd := wik + wk[j]; nd < wi[j] {
					wi[j] = nd
				}
			}
		}
	}
	total := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				total += w[i][j]
			}
		}
	}
	return total
}

// hostGraph materializes the host's buyable (finite) pairs as a graph:
// the MST/lower-bound substrate. Iteration goes through the host's
// finite-pair capability, so 1-∞ hosts never touch +Inf entries.
func hostGraph(g *game.Game) *graph.Graph {
	full := graph.New(g.N())
	g.Host.ForEachFinitePair(func(u, v int, w float64) {
		full.AddEdge(u, v, w)
	})
	return full
}

// MSTCandidate returns the minimum spanning tree of the host as an OPT
// candidate (the optimum for α → ∞).
func MSTCandidate(g *game.Game) Result {
	edges, _ := hostGraph(g).MST()
	return Evaluate(g, Result{Edges: edges})
}

// CompleteCandidate returns the full host graph as an OPT candidate (the
// optimum for α → 0 on metric hosts).
func CompleteCandidate(g *game.Game) Result {
	var edges []graph.Edge
	g.Host.ForEachFinitePair(func(u, v int, w float64) {
		edges = append(edges, graph.Edge{U: u, V: v, W: w})
	})
	return Evaluate(g, Result{Edges: edges})
}

// lexSocial evaluates an edge set as (number of disconnected ordered
// pairs, finite social cost part). The lexicographic order lets local
// search escape disconnected candidates, where plain +Inf comparison
// would see no improvement from a single edge addition.
func lexSocial(g *game.Game, edges []graph.Edge) (infPairs int, finite float64) {
	net := graph.New(g.N())
	r := g.Rules()
	for _, e := range edges {
		w := g.Host.Weight(e.U, e.V)
		if !net.HasEdge(e.U, e.V) {
			net.AddEdge(e.U, e.V, w)
			finite += r.AcquirePrice(g.Alpha, w)
		}
	}
	for _, row := range net.APSP() {
		for _, d := range row {
			if math.IsInf(d, 1) {
				infPairs++
			} else {
				finite += d
			}
		}
	}
	return infPairs, finite
}

func lexLess(ai int, af float64, bi int, bf float64, eps float64) bool {
	if ai != bi {
		return ai < bi
	}
	return af < bf-eps
}

// LocalSearch improves an edge-set candidate by single-edge additions and
// removals until no move lowers the social cost by more than eps, or
// maxIters moves were applied. Disconnected candidates are compared
// lexicographically by (disconnected pairs, finite cost), so the search
// escapes them whenever possible. Returns the improved candidate.
// Unbuyable (+Inf) start edges are ignored. The search is deterministic:
// candidate pairs are enumerated in ascending order and every cost sum
// folds in that fixed order, so repeated runs are bit-identical (a map
// iteration here once caused last-ulp drift in the sweep results).
func LocalSearch(g *game.Game, start []graph.Edge, eps float64, maxIters int) Result {
	present := make(map[[2]int]bool)
	for _, e := range start {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		present[[2]int{u, v}] = true
	}
	// Buyable pairs enumerated once through the host's finite-pair
	// capability: the candidate moves of every iteration, and the fixed
	// fold order of every evaluation.
	var candidates [][2]int
	g.Host.ForEachFinitePair(func(u, v int, w float64) {
		candidates = append(candidates, [2]int{u, v})
	})
	edgesOf := func() []graph.Edge {
		var out []graph.Edge
		for _, k := range candidates {
			if present[k] {
				out = append(out, graph.Edge{U: k[0], V: k[1], W: g.Host.Weight(k[0], k[1])})
			}
		}
		return out
	}
	curInf, curCost := lexSocial(g, edgesOf())
	for iter := 0; iter < maxIters; iter++ {
		bestInf, bestCost := curInf, curCost
		var bestKey [2]int
		var bestAdd, haveMove bool
		for _, key := range candidates {
			toggle := func() {
				if present[key] {
					delete(present, key)
				} else {
					present[key] = true
				}
			}
			toggle()
			ci, cf := lexSocial(g, edgesOf())
			toggle()
			if lexLess(ci, cf, bestInf, bestCost, eps) {
				bestInf, bestCost = ci, cf
				bestKey = key
				bestAdd = !present[key]
				haveMove = true
			}
		}
		if !haveMove {
			break
		}
		if bestAdd {
			present[bestKey] = true
		} else {
			delete(present, bestKey)
		}
		curInf, curCost = bestInf, bestCost
	}
	cost := curCost
	if curInf > 0 {
		cost = math.Inf(1)
	}
	return Result{Edges: edgesOf(), Cost: cost}
}

// LowerBound returns a certified lower bound on the social optimum cost:
// any connected spanning subgraph has edge weight at least MST(H), and
// every pairwise distance is at least the host's shortest-path distance,
// so cost(OPT) >= α·MST + Σ_{ordered pairs} d_H(u,v) under the paper's
// model. The edge-side term goes through the cost model's
// SpanningEdgeCostLB hook, so the bound stays certified per model:
// α·MST for sum, α·(n−1) for unit (≥ n−1 edges at flat price), 0 for
// budget (edges are free there, leaving the distance side as the whole
// bound).
//
// Metric hosts — including every implicit geometric/tree/1-2 space,
// answered in O(1) via the Classifier capability — compute matrix-free:
// d_H = w pointwise, the MST weight comes from an O(n) Prim scan over
// implicit weights, and the pair sum folds deterministically in parallel.
// O(n²) time, O(n) memory: the path the equilibrium ladder's PoA column
// takes at n = 10⁴, where materializing the complete host graph (the
// general fallback below) would cost gigabytes.
func LowerBound(g *game.Game) float64 {
	r := g.Rules()
	if g.Host.IsMetric(1e-9) {
		return r.SpanningEdgeCostLB(g.Alpha, metricMSTWeight(g.Host), g.N()) + hostDistanceSum(g.Host)
	}
	full := hostGraph(g)
	_, mstW := full.MST()
	return r.SpanningEdgeCostLB(g.Alpha, mstW, g.N()) + full.SumDistances()
}

// metricMSTWeight computes the MST weight of the complete host by Prim's
// algorithm with an O(n) frontier array: O(n²) weight evaluations, no
// materialized edges. Deterministic: the minimum-key vertex is chosen by
// lowest index on ties and the weight folds in insertion order.
func metricMSTWeight(h *game.Host) float64 {
	n := h.N()
	if n <= 1 {
		return 0
	}
	inTree := make([]bool, n)
	key := make([]float64, n)
	for v := 1; v < n; v++ {
		key[v] = h.Weight(0, v)
	}
	inTree[0] = true
	total := 0.0
	for round := 1; round < n; round++ {
		best := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (best < 0 || key[v] < key[best]) {
				best = v
			}
		}
		inTree[best] = true
		total += key[best]
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if w := h.Weight(best, v); w < key[v] {
					key[v] = w
				}
			}
		}
	}
	return total
}

// hostDistanceSum returns Σ over ordered pairs of w(u,v) — the metric
// host's exact pairwise-distance sum — folded in the fixed parallel
// reduction order so results are byte-deterministic.
func hostDistanceSum(h *game.Host) float64 {
	n := h.N()
	return parallel.Reduce(n, 0.0,
		func(u int) float64 {
			row := 0.0
			for v := 0; v < n; v++ {
				if v != u {
					row += h.Weight(u, v)
				}
			}
			return row
		},
		func(a, b float64) float64 { return a + b })
}

// BestCandidate evaluates several heuristics (MST, complete graph, local
// search from both) and returns the cheapest: a practical OPT upper bound
// for instances beyond exact reach.
func BestCandidate(g *game.Game, maxIters int) Result {
	mst := MSTCandidate(g)
	complete := CompleteCandidate(g)
	best := mst
	if complete.Cost < best.Cost {
		best = complete
	}
	ls := LocalSearch(g, best.Edges, g.Eps, maxIters)
	if ls.Cost < best.Cost {
		best = ls
	}
	return best
}
