package gncg

import (
	"gncg/internal/bitset"
	"gncg/internal/constructions"
	"gncg/internal/cover"
)

// SetCoverGeoGadget is the paper's Thm 16 hardness gadget: a geometric
// GNCG instance in which agent U's best response encodes Minimum Set
// Cover. See examples/setcoverhardness for a walkthrough.
type SetCoverGeoGadget struct {
	inner *constructions.SetCoverGeo
	// Game is the gadget's game; U is the deciding agent.
	Game *Game
	U    int
}

// NewSetCoverGeoGadget builds the gadget for a set-cover instance over
// universe {0..k-1} under the given p-norm. Parameters L, eps, beta must
// satisfy k*eps < beta < L/3 (eps is the arc spread, beta the detour
// slack).
func NewSetCoverGeoGadget(k int, sets [][]int, L, eps, beta, p float64) (*SetCoverGeoGadget, error) {
	sc, err := cover.NewSCInstance(k, sets)
	if err != nil {
		return nil, err
	}
	inner, err := constructions.NewSetCoverGeo(sc, L, eps, beta, p)
	if err != nil {
		return nil, err
	}
	return &SetCoverGeoGadget{inner: inner, Game: inner.Game, U: inner.U}, nil
}

// Profile returns the gadget's fixed strategy profile (U owns nothing).
func (g *SetCoverGeoGadget) Profile() Profile { return g.inner.Profile() }

// DecodeStrategy splits a strategy of U into chosen set indices and any
// other purchased nodes.
func (g *SetCoverGeoGadget) DecodeStrategy(strategy []int) (sets, other []int) {
	return g.inner.DecodeStrategy(strategy)
}

// CostOfCover evaluates U's cost when buying exactly the given sets'
// nodes on top of state s.
func (g *SetCoverGeoGadget) CostOfCover(s *State, sets []int) float64 {
	strat := bitset.New(g.Game.N())
	for _, i := range sets {
		strat.Add(g.inner.SetNode(i))
	}
	work := s.Clone()
	work.SetStrategy(g.U, strat)
	return work.Cost(g.U)
}

// SetCoverTreeGadget is the Thm 13 analogue on a tree metric.
type SetCoverTreeGadget struct {
	inner *constructions.SetCoverTree
	Game  *Game
	U     int
}

// NewSetCoverTreeGadget builds the tree-metric gadget (same parameter
// contract as NewSetCoverGeoGadget, without the norm).
func NewSetCoverTreeGadget(k int, sets [][]int, L, eps, beta float64) (*SetCoverTreeGadget, error) {
	sc, err := cover.NewSCInstance(k, sets)
	if err != nil {
		return nil, err
	}
	inner, err := constructions.NewSetCoverTree(sc, L, eps, beta)
	if err != nil {
		return nil, err
	}
	return &SetCoverTreeGadget{inner: inner, Game: inner.Game, U: inner.U}, nil
}

// Profile returns the gadget's fixed strategy profile (U owns nothing).
func (g *SetCoverTreeGadget) Profile() Profile { return g.inner.Profile() }

// DecodeStrategy splits a strategy of U into chosen set indices and any
// other purchased nodes.
func (g *SetCoverTreeGadget) DecodeStrategy(strategy []int) (sets, other []int) {
	return g.inner.DecodeStrategy(strategy)
}

// VertexCoverGadget is the Thm 4 gadget: deciding whether its profile is
// a Nash equilibrium is equivalent to deciding whether a smaller vertex
// cover exists.
type VertexCoverGadget struct {
	inner *constructions.VCReduction
	Game  *Game
	U     int
}

// NewVertexCoverGadget builds the gadget for a graph on n vertices.
func NewVertexCoverGadget(n int, edges [][2]int) (*VertexCoverGadget, error) {
	vc, err := cover.NewVCInstance(n, edges)
	if err != nil {
		return nil, err
	}
	inner, err := constructions.NewVCReduction(vc)
	if err != nil {
		return nil, err
	}
	return &VertexCoverGadget{inner: inner, Game: inner.Game, U: inner.U}, nil
}

// Profile builds the gadget profile in which U buys edges towards the
// given vertex cover.
func (g *VertexCoverGadget) Profile(coverSet []int) (Profile, error) {
	return g.inner.Profile(coverSet)
}

// PredictedUCost is the closed-form cost 3N + 6m + k of U buying a
// cover of size k.
func (g *VertexCoverGadget) PredictedUCost(k int) float64 { return g.inner.UCost(k) }
