module gncg

go 1.24
