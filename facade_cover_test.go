package gncg

import (
	"math"
	"testing"
)

func TestRunToConvergenceFacade(t *testing.T) {
	host, err := HostFromPoints([][]float64{{0, 0}, {9, 0}, {0, 7}, {6, 6}, {3, 1}, {8, 3}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGame(host, 1.5)
	s := NewState(g, StarProfile(g.N(), 0))
	res := RunGreedyDynamicsToConvergence(s, ConvergenceBudget{MaxRounds: 100})
	if res.Outcome != Converged {
		t.Fatalf("6-agent greedy dynamics did not converge: %+v", res)
	}
	if res.SocialCost != s.SocialCost() {
		t.Fatalf("recorded social cost %v != state's %v", res.SocialCost, s.SocialCost())
	}
	lb := SocialOptimumLowerBound(g)
	if poa := res.PoA(lb); poa < 1-1e-9 || math.IsInf(poa, 1) {
		t.Fatalf("PoA vs certified lower bound: %v", poa)
	}
	// The generic entry point; a converged state stays converged (the
	// single scanning round finds no improving move).
	res = RunToConvergence(s, GreedyMover, RoundRobinScheduler(), ConvergenceBudget{})
	if res.Outcome != Converged || res.Moves != 0 {
		t.Fatalf("re-run on converged state: %+v", res)
	}
}

func TestRemainingFacadeSurface(t *testing.T) {
	if !math.IsInf(Inf(), 1) {
		t.Fatal("Inf() must be +Inf")
	}
	if RoundRobinScheduler() == nil {
		t.Fatal("nil scheduler")
	}

	host, err := HostFromPoints([][]float64{{0}, {2}, {5}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m := DensifyHost(host); m[0][1] != host.Weight(0, 1) || &m[0][0] != &host.Matrix()[0][0] {
		t.Fatal("DensifyHost must return the host's shared memoized dense view")
	}
	g := NewGame(host, 1)
	p := ProfileFromEdgeSet(3, []Edge{{U: 0, V: 1}, {U: 2, V: 1}})
	if !p.Buys(0, 1) || !p.Buys(1, 2) || p.Buys(2, 1) {
		t.Fatal("ProfileFromEdgeSet ownership rule wrong (lower endpoint buys)")
	}
	s := NewState(g, p)
	res := RunGreedyDynamics(s, 1000)
	if res.Outcome == Exhausted {
		t.Fatalf("greedy dynamics exhausted on 3 agents")
	}

	// FIP witness verification through the facade.
	tree, err := HostFromTree(4, []Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 9}, {U: 0, V: 3, W: 4}})
	if err != nil {
		t.Fatal(err)
	}
	tg := NewGame(tree, 1)
	if w, has, err := ExhaustiveFIPCheck(tg); err != nil {
		t.Fatal(err)
	} else if has && !VerifyFIPWitness(tg, w) {
		t.Fatal("facade witness verification failed")
	}
}

func TestHostConstructorErrorPaths(t *testing.T) {
	if _, err := HostFromTree(3, []Edge{{U: 0, V: 1, W: 1}}); err == nil {
		t.Error("bad tree accepted")
	}
	if _, err := HostFromOneTwo(3, [][2]int{{0, 5}}); err == nil {
		t.Error("bad 1-2 edge accepted")
	}
	if _, err := HostFromOneInf(3, [][2]int{{2, 2}}); err == nil {
		t.Error("self-loop 1-inf edge accepted")
	}
	if _, err := NewSetCoverTreeGadget(2, [][]int{{0}}, 100, 0.001, 1); err == nil {
		t.Error("uncoverable tree gadget accepted")
	}
	if _, err := NewSetCoverTreeGadget(2, [][]int{{0, 1}}, 100, 0.9, 1); err == nil {
		t.Error("beta <= k*eps tree gadget accepted")
	}
	if _, err := NewVertexCoverGadget(3, [][2]int{{0, 9}}); err == nil {
		t.Error("out-of-range VC edge accepted")
	}
}

func TestUnmarshalEdgeCases(t *testing.T) {
	// "Inf" alternative spelling and numeric weights both parse.
	data := []byte(`{"alpha":1,"weights":[[0,"Inf"],["Inf",0]]}`)
	g, _, err := UnmarshalInstance(data)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(g.Host.Weight(0, 1), 1) {
		t.Fatal("'Inf' spelling not parsed")
	}
	// Owned edges out of range must fail.
	bad := []byte(`{"alpha":1,"weights":[[0,1],[1,0]],"owned":[[0,5]]}`)
	if _, _, err := UnmarshalInstance(bad); err == nil {
		t.Fatal("out-of-range owned edge accepted")
	}
}

func TestTrafficJSONRoundTrip(t *testing.T) {
	host, err := HostFromPoints([][]float64{{0}, {1}, {4}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGame(host, 1)
	tr := [][]float64{{0, 2, 0}, {1, 0, 3}, {0.5, 1, 0}}
	if err := g.SetTraffic(tr); err != nil {
		t.Fatal(err)
	}
	data, err := MarshalInstance(g, EmptyProfile(3))
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := UnmarshalInstance(data)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.HasTraffic() || g2.Traffic(0, 1) != 2 || g2.Traffic(1, 2) != 3 {
		t.Fatal("traffic lost in round trip")
	}
	// Invalid traffic in JSON must be rejected.
	bad := []byte(`{"alpha":1,"weights":[[0,1],[1,0]],"traffic":[[0,-1],[1,0]]}`)
	if _, _, err := UnmarshalInstance(bad); err == nil {
		t.Fatal("negative traffic accepted via JSON")
	}
}
