package gncg

import (
	"math"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	host, err := HostFromPoints([][]float64{{0, 0}, {3, 0}, {0, 4}, {3, 4}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGame(host, 1.5)
	s := NewState(g, EmptyProfile(g.N()))
	res := RunBestResponseDynamics(s, 1000)
	if res.Outcome != Converged {
		t.Fatalf("dynamics outcome %v", res.Outcome)
	}
	if !IsNashEquilibrium(s) {
		t.Fatal("converged best-response dynamics must reach a Nash equilibrium")
	}
	if math.IsInf(s.SocialCost(), 1) {
		t.Fatal("equilibrium disconnected")
	}
	if NashApproxFactor(s) != 1 {
		t.Fatal("NE must have approximation factor 1")
	}
}

func TestHostConstructors(t *testing.T) {
	if _, err := HostFromPoints([][]float64{{0}, {1, 2}}, 2); err == nil {
		t.Error("ragged points accepted")
	}
	tree, err := HostFromTree(3, []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Weight(0, 2) != 3 {
		t.Errorf("tree closure weight = %v", tree.Weight(0, 2))
	}
	ot, err := HostFromOneTwo(3, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ClassifyHost(ot, 1e-9) != ClassOneTwo {
		t.Error("1-2 host misclassified")
	}
	oi, err := HostFromOneInf(3, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ClassifyHost(oi, 1e-9) != ClassOneInf {
		t.Error("1-inf host misclassified")
	}
	if ClassifyHost(UnitHost(4), 1e-9) != ClassNCG {
		t.Error("unit host misclassified")
	}
	if !IsMetricHost(tree, 1e-9) {
		t.Error("tree host must be metric")
	}
	if IsMetricHost(oi, 1e-9) {
		t.Error("1-inf host must not be metric")
	}
}

func TestSolverFacade(t *testing.T) {
	host := UnitHost(5)
	g := NewGame(host, 2)
	s := NewState(g, StarProfile(5, 0))
	br := ExactBestResponse(s, 1)
	if g.Improves(br.Cost, s.Cost(1)) {
		t.Fatal("leaf of a unit star at alpha=2 should have no improving response")
	}
	approx := ApproxBestResponse(s, 1)
	if approx.Cost < br.Cost-1e-9 {
		t.Fatal("approximate response beat the exact one")
	}
	if !IsGreedyEquilibrium(s) || !IsAddOnlyEquilibrium(s) {
		t.Fatal("unit star at alpha=2 must be GE and AE")
	}
	if GreedyApproxFactor(s) != 1 {
		t.Fatal("GE state must have greedy factor 1")
	}
	if f := Stretch(s); f != 2 {
		t.Fatalf("unit star stretch %v, want 2", f)
	}
	if !IsKSpanner(s, 2) || IsKSpanner(s, 1.5) {
		t.Fatal("spanner check wrong")
	}
}

func TestOptimumFacade(t *testing.T) {
	host, _ := HostFromPoints([][]float64{{0}, {1}, {2}, {5}}, 2)
	g := NewGame(host, 2)
	exact, err := SocialOptimumExact(g)
	if err != nil {
		t.Fatal(err)
	}
	heur := SocialOptimumHeuristic(g)
	lb := SocialOptimumLowerBound(g)
	if exact.Cost < lb-1e-9 || heur.Cost < exact.Cost-1e-9 {
		t.Fatalf("bounds out of order: lb %v exact %v heur %v", lb, exact.Cost, heur.Cost)
	}
	ot, _ := HostFromOneTwo(4, [][2]int{{0, 1}, {1, 2}})
	alg, err := Algorithm1(ot)
	if err != nil {
		t.Fatal(err)
	}
	evaluated := EvaluateCandidate(NewGame(ot, 0.5), alg)
	if math.IsNaN(evaluated.Cost) || math.IsInf(evaluated.Cost, 1) {
		t.Fatalf("Algorithm1 candidate cost %v", evaluated.Cost)
	}
}

func TestConstructionFacade(t *testing.T) {
	for _, build := range []func() (*LowerBoundConstruction, error){
		func() (*LowerBoundConstruction, error) { return Thm15Star(6, 2) },
		func() (*LowerBoundConstruction, error) { return Thm19CrossPolytope(2, 1) },
		func() (*LowerBoundConstruction, error) { return Thm18FourPoint(3) },
		func() (*LowerBoundConstruction, error) { return Thm20Triangle(2) },
		func() (*LowerBoundConstruction, error) { return Thm8AlphaOne(2) },
		func() (*LowerBoundConstruction, error) { return Thm8HalfToOne(2, 0.6) },
	} {
		lb, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if lb.Ratio() <= 0 || math.IsNaN(lb.Ratio()) {
			t.Fatalf("%s: ratio %v", lb.Name, lb.Ratio())
		}
	}
}

func TestExhaustiveFIPFacade(t *testing.T) {
	tree, err := HostFromTree(4, []Edge{{U: 0, V: 1, W: 3}, {U: 0, V: 2, W: 7}, {U: 1, V: 3, W: 2}})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGame(tree, 1)
	w, has, err := ExhaustiveFIPCheck(g)
	if err != nil {
		t.Fatal(err)
	}
	if has && !VerifyFIPWitness(g, w) {
		t.Fatal("reported witness failed verification")
	}
}

func TestInstanceJSONRoundTrip(t *testing.T) {
	host, _ := HostFromOneInf(3, [][2]int{{0, 1}, {1, 2}})
	g := NewGame(host, 1.5)
	p := EmptyProfile(3)
	p.Buy(0, 1)
	p.Buy(2, 1)
	data, err := MarshalInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	g2, p2, err := UnmarshalInstance(data)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Alpha != 1.5 || g2.N() != 3 {
		t.Fatalf("round trip lost game parameters: alpha %v n %d", g2.Alpha, g2.N())
	}
	if !math.IsInf(g2.Host.Weight(0, 2), 1) {
		t.Fatal("inf weight lost in round trip")
	}
	if !p2.Equal(p) {
		t.Fatal("profile lost in round trip")
	}
}

func TestUnmarshalRejectsBadInput(t *testing.T) {
	if _, _, err := UnmarshalInstance([]byte(`{"alpha":0,"weights":[[0]]}`)); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, _, err := UnmarshalInstance([]byte(`{"alpha":1,"weights":[[0,1]]}`)); err == nil {
		t.Error("ragged weights accepted")
	}
	if _, _, err := UnmarshalInstance([]byte(`{"alpha":1,"weights":[[0,"nope"],["nope",0]]}`)); err == nil {
		t.Error("bad weight string accepted")
	}
	if _, _, err := UnmarshalInstance([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestValidate(t *testing.T) {
	g := NewGame(UnitHost(3), 1)
	if err := Validate(g, EmptyProfile(4)); err == nil {
		t.Error("size mismatch accepted")
	}
	if err := Validate(g, EmptyProfile(3)); err != nil {
		t.Error(err)
	}
}

func TestCustomDynamicsFacade(t *testing.T) {
	host, _ := HostFromPoints([][]float64{{0}, {1}, {3}, {6}}, 2)
	g := NewGame(host, 1)
	s := NewState(g, PathProfile(4, []int{0, 1, 2, 3}))
	res := RunDynamics(s, GreedyMover, RandomScheduler(1), 1000)
	if res.Outcome == Exhausted {
		t.Fatal("tiny instance exhausted the budget")
	}
	s2 := NewState(g, StarProfile(4, 0))
	if r := RunAddOnlyDynamics(s2); r.Outcome != Converged {
		t.Fatalf("add-only outcome %v", r.Outcome)
	}
	s3 := NewState(g, EmptyProfile(4))
	if r := RunRandomOrderDynamics(s3, 500, 42); r.Outcome == Exhausted {
		t.Fatal("random-order BR dynamics exhausted on tiny instance")
	}
}

func TestTrafficExtensionViaFacade(t *testing.T) {
	// The traffic-weighted extension (Albers-et-al-style demands) is
	// available on the public Game type directly.
	host, err := HostFromPoints([][]float64{{0}, {1}, {4}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGame(host, 1)
	if err := g.SetTraffic([][]float64{
		{0, 10, 0},
		{1, 0, 1},
		{1, 1, 0},
	}); err != nil {
		t.Fatal(err)
	}
	s := NewState(g, EmptyProfile(3))
	res := RunBestResponseDynamics(s, 100)
	if res.Outcome != Converged {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if !IsNashEquilibrium(s) {
		t.Fatal("traffic-weighted dynamics did not reach an NE")
	}
	// Agent 0 has zero demand towards 2; its cost only counts node 1.
	if s.Cost(0) > g.Alpha*host.Weight(0, 1)+10*host.Weight(0, 1)+1e-9 {
		t.Fatalf("agent 0 cost %v too high for its demand profile", s.Cost(0))
	}
}
