package gncg_test

import (
	"fmt"
	"log"

	"gncg"
)

// Example builds a tiny geometric game on four points in the plane,
// plays exact best-response dynamics from the empty profile, and checks
// the reached state is a Nash equilibrium.
func Example() {
	coords := [][]float64{{0, 0}, {3, 0}, {3, 4}, {0, 4}}
	host, err := gncg.HostFromPoints(coords, 2)
	if err != nil {
		log.Fatal(err)
	}
	g := gncg.NewGame(host, 1)
	s := gncg.NewState(g, gncg.EmptyProfile(g.N()))
	res := gncg.RunBestResponseDynamics(s, 1000)
	fmt.Println("outcome:", res.Outcome)
	fmt.Println("nash:", gncg.IsNashEquilibrium(s))
	// Output:
	// outcome: converged
	// nash: true
}

// ExampleRunToConvergence drives greedy single-edge dynamics with the
// O(1)-overhead convergence engine: no history, no cycle detection,
// deterministic round/move budgets — the configuration behind the
// equilibrium ladder.
func ExampleRunToConvergence() {
	host, err := gncg.HostFromTree(6, []gncg.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 1, V: 3, W: 1},
		{U: 3, V: 4, W: 3}, {U: 4, V: 5, W: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	g := gncg.NewGame(host, 6) // alpha = n: the rewiring-tier regime
	s := gncg.NewState(g, gncg.StarProfile(g.N(), 0))
	res := gncg.RunToConvergence(s, gncg.GreedyMover, gncg.RoundRobinScheduler(),
		gncg.ConvergenceBudget{MaxRounds: 32, MaxMoves: 500})
	fmt.Println("outcome:", res.Outcome)
	fmt.Println("greedy equilibrium:", gncg.IsGreedyEquilibrium(s))
	// Output:
	// outcome: converged
	// greedy equilibrium: true
}

// ExampleVerifyGreedyEquilibrium re-checks a converged run with the
// certified parallel verifier: gain-bound certificates skip provably
// stable agents, workers shard the rest, and the verdict is identical
// for every worker count.
func ExampleVerifyGreedyEquilibrium() {
	host, err := gncg.HostFromPoints([][]float64{
		{0, 0}, {1, 0}, {2, 1}, {0, 2}, {3, 3}, {1, 4}, {4, 0}, {2, 3},
	}, 2)
	if err != nil {
		log.Fatal(err)
	}
	g := gncg.NewGame(host, 64) // large alpha: the star is (near-)stable
	s := gncg.NewState(g, gncg.StarProfile(g.N(), 0))
	res := gncg.RunGreedyDynamicsToConvergence(s, gncg.ConvergenceBudget{MaxRounds: 32})
	if res.Outcome != gncg.Converged {
		log.Fatal("did not converge")
	}

	v := gncg.VerifyGreedyEquilibrium(s, gncg.VerifyOptions{Workers: 4, Exact: true})
	fmt.Println("stable:", v.Stable)
	fmt.Println("checked:", v.CertSkipped+v.Scanned == g.N())

	serial := gncg.VerifyGreedyEquilibrium(s, gncg.VerifyOptions{Workers: 1, Exact: true})
	fmt.Println("worker-invariant:", serial.Stable == v.Stable &&
		serial.FirstImproving == v.FirstImproving && serial.CertSkipped == v.CertSkipped)
	// Output:
	// stable: true
	// checked: true
	// worker-invariant: true
}

// ExampleNewGameWithRules sweeps the model axis of the rules layer: the
// same host played under every registered cost model — "sum" (the
// paper's per-unit-weight price, the default), "budget" (edges free
// under a per-agent spend cap) and "unit" (flat price per edge) — with
// greedy dynamics to convergence and the certified verifier on the
// result. Alpha keeps its model-specific meaning, so each model gets a
// comparable regime derived from the host's weight scale.
func ExampleNewGameWithRules() {
	host, err := gncg.HostFromPoints([][]float64{
		{0, 0}, {4, 0}, {4, 3}, {0, 3}, {2, 5}, {6, 1},
	}, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range gncg.RuleSetNames() {
		r, err := gncg.RulesByName(name)
		if err != nil {
			log.Fatal(err)
		}
		alpha := 2.0
		if name == "budget" {
			alpha = 9 // budget on purchased host weight, not a price
		}
		g := gncg.NewGameWithRules(host, alpha, r)
		s := gncg.NewState(g, gncg.StarProfile(g.N(), 0))
		res := gncg.RunGreedyDynamicsToConvergence(s,
			gncg.ConvergenceBudget{MaxRounds: 32, MaxMoves: 500})
		v := gncg.VerifyGreedyEquilibrium(s, gncg.VerifyOptions{Workers: 2})
		fmt.Printf("%-6s outcome=%s moves=%d stable=%v\n",
			name, res.Outcome, res.Moves, v.Stable)
	}
	// Output:
	// budget outcome=converged moves=10 stable=true
	// sum    outcome=converged moves=8 stable=true
	// unit   outcome=converged moves=8 stable=true
}
