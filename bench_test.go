// Benchmark harness: one benchmark per table/figure of the paper, each
// exercising the code path that regenerates it and reporting the key
// measured quantity via b.ReportMetric (ratios as "poa", verification
// outcomes as "verified" 0/1), plus micro-benchmarks of the hot solver
// paths. Run with:
//
//	go test -bench=. -benchmem
package gncg_test

import (
	"math"
	"testing"

	"gncg"
	"gncg/internal/bestresponse"
	"gncg/internal/bitset"
	"gncg/internal/constructions"
	"gncg/internal/cover"
	"gncg/internal/dynamics"
	"gncg/internal/facility"
	"gncg/internal/game"
	"gncg/internal/gen"
	"gncg/internal/metric"
	"gncg/internal/opt"
	"gncg/internal/poa"
	"gncg/internal/spanner"
)

func reportVerified(b *testing.B, ok bool) {
	b.Helper()
	v := 0.0
	if ok {
		v = 1
	}
	b.ReportMetric(v, "verified")
}

// BenchmarkTable1Summary regenerates the headline measured numbers of the
// results matrix: the tight (α+2)/2 family at a large size.
func BenchmarkTable1Summary(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		lb, err := constructions.Thm15Star(100, 4)
		if err != nil {
			b.Fatal(err)
		}
		ratio = lb.Ratio()
	}
	b.ReportMetric(ratio, "poa")
	b.ReportMetric((4.0+2)/2, "bound")
}

// BenchmarkFig1ModelClassification classifies one host of each class.
func BenchmarkFig1ModelClassification(b *testing.B) {
	hosts := []*game.Host{
		game.NewHost(metric.Unit{N: 12}),
		game.NewHost(gen.OneTwo(1, 12, 0.4)),
		game.NewHost(gen.Tree(1, 12, 1, 5)),
		game.NewHost(gen.Points(1, 12, 2, 10, 2)),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, h := range hosts {
			_ = h.Classify(1e-9)
		}
	}
}

// BenchmarkFig2VertexCoverReduction builds the Thm 4 gadget on P4 and
// verifies the NE <-> minimum-cover equivalence via exact best response.
func BenchmarkFig2VertexCoverReduction(b *testing.B) {
	vc, err := cover.NewVCInstance(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		b.Fatal(err)
	}
	ok := false
	for i := 0; i < b.N; i++ {
		r, err := constructions.NewVCReduction(vc)
		if err != nil {
			b.Fatal(err)
		}
		p, err := r.Profile([]int{1, 2})
		if err != nil {
			b.Fatal(err)
		}
		s := game.NewState(r.Game, p)
		br := bestresponse.Exact(s, r.U)
		ok = math.Abs(br.Cost-r.UCost(2)) < 1e-9
	}
	reportVerified(b, ok)
}

// BenchmarkFig3OneTwoLowerBound regenerates the Thm 8 (α=1) series cell
// at N=6 and reports the ratio (limit 3/2).
func BenchmarkFig3OneTwoLowerBound(b *testing.B) {
	var r poa.Row
	for i := 0; i < b.N; i++ {
		rows := poa.SweepThm8AlphaOne([]int{6})
		r = rows[0]
	}
	b.ReportMetric(r.Ratio, "poa")
	reportVerified(b, r.Stable)
}

// BenchmarkThm9PoAOne runs greedy dynamics on a random 1-2 host at
// α = 0.3 and reports the PoA against Algorithm 1's optimum (must be 1).
func BenchmarkThm9PoAOne(b *testing.B) {
	h := game.NewHost(gen.OneTwo(11, 7, 0.45))
	g := game.New(h, 0.3)
	algRes, err := opt.Algorithm1(h)
	if err != nil {
		b.Fatal(err)
	}
	algCost := opt.Evaluate(g, algRes).Cost
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := game.NewState(g, game.StarProfile(7, 0))
		dynamics.Run(s, dynamics.GreedyMover, dynamics.RoundRobin{}, 20000)
		ratio = s.SocialCost() / algCost
	}
	b.ReportMetric(ratio, "poa")
}

// BenchmarkThm10StarNE exact-verifies the star NE at α = 4.
func BenchmarkThm10StarNE(b *testing.B) {
	h := game.NewHost(gen.OneTwo(2, 8, 0.4))
	ok := false
	for i := 0; i < b.N; i++ {
		g, p, err := constructions.Thm10Star(h, 4, 0)
		if err != nil {
			b.Fatal(err)
		}
		ok = bestresponse.IsNash(game.NewState(g, p))
	}
	reportVerified(b, ok)
}

// BenchmarkThm11DiameterSweep measures equilibrium diameter at α = 6 on
// a random 1-2 host (must stay well under the O(sqrt α) regime).
func BenchmarkThm11DiameterSweep(b *testing.B) {
	g := game.New(game.NewHost(gen.OneTwo(21, 10, 0.35)), 6)
	var diam float64
	for i := 0; i < b.N; i++ {
		e := poa.EmpiricalPoA(g, 2, 3, math.Inf(1))
		diam = e.Diameter
	}
	b.ReportMetric(diam, "diameter")
	b.ReportMetric(math.Sqrt(6), "sqrt_alpha")
}

// BenchmarkThm5SpannerNE computes a minimum-weight 3/2-spanner and finds
// an NE ownership for it (Thm 5).
func BenchmarkThm5SpannerNE(b *testing.B) {
	h := game.NewHost(gen.OneTwo(3, 5, 0.4))
	g := game.New(h, 0.75)
	ok := false
	for i := 0; i < b.N; i++ {
		edges, err := spanner.MinWeight32SpannerOneTwo(h)
		if err != nil {
			b.Fatal(err)
		}
		_, ok = spanner.FindNEOwnership(g, edges, bestresponse.IsNash)
	}
	reportVerified(b, ok)
}

// BenchmarkAlg1Optimum runs Algorithm 1 on a 40-node 1-2 host.
func BenchmarkAlg1Optimum(b *testing.B) {
	h := game.NewHost(gen.OneTwo(5, 40, 0.4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Algorithm1(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThm12TreeNE runs BR dynamics on a tree metric and verifies the
// reached equilibrium is a tree.
func BenchmarkThm12TreeNE(b *testing.B) {
	tm := gen.Tree(1, 7, 1, 6)
	g := game.New(game.NewHost(tm), 1.3)
	ok := false
	for i := 0; i < b.N; i++ {
		s := game.NewState(g, game.EmptyProfile(7))
		res := dynamics.Run(s, dynamics.BestResponseMover, dynamics.RoundRobin{}, 600)
		ok = res.Outcome == dynamics.Converged && s.Network().IsTree()
	}
	reportVerified(b, ok)
}

// BenchmarkFig4SetCoverTree solves the Thm 13 gadget's best response.
func BenchmarkFig4SetCoverTree(b *testing.B) {
	sc := gen.SC(0, 4, 4, 0.45)
	kmin := len(cover.MinSetCover(sc))
	r, err := constructions.NewSetCoverTree(sc, 100, 0.001, 1)
	if err != nil {
		b.Fatal(err)
	}
	ok := false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := game.NewState(r.Game, r.Profile())
		br := bestresponse.Exact(s, r.U)
		sets, other := r.DecodeStrategy(br.Strategy.Elems())
		ok = len(other) == 0 && len(sets) == kmin
	}
	reportVerified(b, ok)
}

// BenchmarkFig5BRCycleTree runs the exhaustive FIP analysis on a 4-node
// tree metric (Thm 14 reproduction).
func BenchmarkFig5BRCycleTree(b *testing.B) {
	tm := gen.Tree(2, 4, 1, 12)
	g := game.New(game.NewHost(tm), 1.5)
	ok := false
	for i := 0; i < b.N; i++ {
		w, has, err := dynamics.ExhaustiveFIP(g)
		if err != nil {
			b.Fatal(err)
		}
		ok = has && dynamics.VerifyFIPWitness(g, w)
	}
	reportVerified(b, ok)
}

// BenchmarkFig6TreePoALowerBound regenerates one Fig. 6 cell (n=40, α=4).
func BenchmarkFig6TreePoALowerBound(b *testing.B) {
	var r poa.Row
	for i := 0; i < b.N; i++ {
		r = poa.SweepThm15(4, []int{40})[0]
	}
	b.ReportMetric(r.Ratio, "poa")
	b.ReportMetric(3, "bound")
	reportVerified(b, r.Stable)
}

// BenchmarkFig7SetCoverGeometric solves the Thm 16 gadget under the
// 2-norm.
func BenchmarkFig7SetCoverGeometric(b *testing.B) {
	sc := gen.SC(1, 4, 4, 0.45)
	kmin := len(cover.MinSetCover(sc))
	r, err := constructions.NewSetCoverGeo(sc, 100, 0.001, 1, 2)
	if err != nil {
		b.Fatal(err)
	}
	ok := false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := game.NewState(r.Game, r.Profile())
		br := bestresponse.Exact(s, r.U)
		sets, other := r.DecodeStrategy(br.Strategy.Elems())
		ok = len(other) == 0 && len(sets) == kmin
	}
	reportVerified(b, ok)
}

// BenchmarkFig8BRCycleGeometric searches for the improving-move cycle on
// the Fig. 8 point set at α = 1 (Thm 17 reproduction).
func BenchmarkFig8BRCycleGeometric(b *testing.B) {
	g := constructions.Fig8Game(1)
	ok := false
	for i := 0; i < b.N; i++ {
		w, found := dynamics.FindCycle(g, dynamics.CycleSearchConfig{
			Restarts: 150, MaxMoves: 2000, EdgeProb: 0.3, Seed: 7, RandomSched: true,
		})
		ok = found && dynamics.VerifyCycle(g, w)
	}
	reportVerified(b, ok)
}

// BenchmarkFig9PathVsStar regenerates one Lemma 8 cell (m=6, α=3).
func BenchmarkFig9PathVsStar(b *testing.B) {
	var r poa.Row
	for i := 0; i < b.N; i++ {
		r = poa.SweepLemma8(3, []int{6})[0]
	}
	b.ReportMetric(r.Ratio, "poa")
	reportVerified(b, r.Stable && r.Ratio > 1)
}

// BenchmarkThm18FourPoint verifies the closed-form four-point bound at
// α = 6.
func BenchmarkThm18FourPoint(b *testing.B) {
	ok := false
	var ratio float64
	for i := 0; i < b.N; i++ {
		lb, err := constructions.Thm18FourPoint(6)
		if err != nil {
			b.Fatal(err)
		}
		ratio = lb.Ratio()
		ok = math.Abs(ratio-constructions.Thm18Ratio(6)) < 1e-9
	}
	b.ReportMetric(ratio, "poa")
	reportVerified(b, ok)
}

// BenchmarkFig10CrossPolytope regenerates one Thm 19 cell (d=10, α=4).
func BenchmarkFig10CrossPolytope(b *testing.B) {
	var r poa.Row
	for i := 0; i < b.N; i++ {
		r = poa.SweepThm19(4, []int{10})[0]
	}
	b.ReportMetric(r.Ratio, "poa")
	reportVerified(b, r.Stable && math.Abs(r.Ratio-r.Predicted) < 1e-9)
}

// BenchmarkThm20NonMetricTriangle verifies the triangle witness at α = 3.
func BenchmarkThm20NonMetricTriangle(b *testing.B) {
	ok := false
	var sigma float64
	for i := 0; i < b.N; i++ {
		lb, err := constructions.Thm20Triangle(3)
		if err != nil {
			b.Fatal(err)
		}
		sigma = constructions.Thm20PairSigma(lb)
		ok = math.Abs(lb.Ratio()-2.5) < 1e-9 && math.Abs(sigma-6.25) < 1e-9
	}
	b.ReportMetric(sigma, "sigma")
	reportVerified(b, ok)
}

// BenchmarkLemma1AESpanner computes an AE by add-only dynamics and checks
// the (α+1)-spanner property.
func BenchmarkLemma1AESpanner(b *testing.B) {
	g := game.New(game.NewHost(gen.Points(50, 7, 2, 10, 2)), 1.3)
	ok := false
	for i := 0; i < b.N; i++ {
		s := game.NewState(g, game.StarProfile(7, 0))
		dynamics.RunAddOnly(s, dynamics.RoundRobin{})
		ok = spanner.IsKSpanner(s.Network(), g.Host, g.Alpha+1, 1e-9)
	}
	reportVerified(b, ok)
}

// BenchmarkCor2ApproxNE computes an AE and its exact Nash approximation
// factor, checking the 3(α+1) bound.
func BenchmarkCor2ApproxNE(b *testing.B) {
	alpha := 1.2
	g := game.New(game.NewHost(gen.Points(201, 7, 2, 10, 2)), alpha)
	var factor float64
	for i := 0; i < b.N; i++ {
		s := game.NewState(g, game.StarProfile(7, 0))
		dynamics.RunAddOnly(s, dynamics.RoundRobin{})
		factor = bestresponse.NashApproxFactor(s)
	}
	b.ReportMetric(factor, "beta")
	b.ReportMetric(3*(alpha+1), "bound")
	reportVerified(b, factor <= 3*(alpha+1)+1e-6)
}

// BenchmarkThm1UpperBoundSanity finds an exact NE by dynamics on a random
// metric host and compares with the exact OPT and the (α+2)/2 bound.
func BenchmarkThm1UpperBoundSanity(b *testing.B) {
	alpha := 1.1
	g := game.New(game.NewHost(gen.Points(1, 6, 2, 10, 2)), alpha)
	optRes, err := opt.ExactSmall(g)
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	ok := false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := game.NewState(g, game.EmptyProfile(6))
		res := dynamics.Run(s, dynamics.BestResponseMover, dynamics.RoundRobin{}, 2000)
		ratio = s.SocialCost() / optRes.Cost
		ok = res.Outcome == dynamics.Converged && ratio <= (alpha+2)/2+1e-6
	}
	b.ReportMetric(ratio, "poa")
	reportVerified(b, ok)
}

// BenchmarkNCGBaseline verifies the classic unit-weight equilibria.
func BenchmarkNCGBaseline(b *testing.B) {
	g := game.New(game.NewHost(metric.Unit{N: 8}), 4)
	ok := false
	for i := 0; i < b.N; i++ {
		ok = bestresponse.IsNash(game.NewState(g, game.StarProfile(8, 0)))
	}
	reportVerified(b, ok)
}

// BenchmarkPoSCensus runs the exhaustive equilibrium census (exact PoA
// and PoS) on a 4-agent tree metric: the PoS-extension experiment.
func BenchmarkPoSCensus(b *testing.B) {
	tm := gen.Tree(1, 4, 1, 8)
	g := game.New(game.NewHost(tm), 2)
	var pos float64
	for i := 0; i < b.N; i++ {
		c, err := poa.ExhaustiveCensus(g)
		if err != nil {
			b.Fatal(err)
		}
		pos = c.PoS()
	}
	b.ReportMetric(pos, "pos")
	reportVerified(b, math.Abs(pos-1) < 1e-9)
}

// BenchmarkConjecture1FIP runs the exhaustive FIP analysis on a 4-point
// 2-norm instance (the Conjecture 1 evidence experiment).
func BenchmarkConjecture1FIP(b *testing.B) {
	pts := gen.Points(0, 4, 2, 10, 2)
	g := game.New(game.NewHost(pts), 0.6)
	ok := false
	for i := 0; i < b.N; i++ {
		w, has, err := dynamics.ExhaustiveFIP(g)
		if err != nil {
			b.Fatal(err)
		}
		ok = has && dynamics.VerifyFIPWitness(g, w)
	}
	reportVerified(b, ok)
}

// ---- distance-cache benchmarks ----
//
// Each pair runs the same workload with the state's distance cache on
// (the default) and off (the pre-cache baseline): repeated cost queries,
// greedy move dynamics, and exact Nash verification.

// benchmarkCostQueries is the harness evaluation pattern: social cost
// plus every agent's cost against one unchanged state.
func benchmarkCostQueries(b *testing.B, cached bool) {
	n := 80
	g := game.New(game.NewHost(gen.Points(9, n, 2, 100, 2)), 4)
	s := game.NewState(g, game.StarProfile(n, 0))
	s.SetDistCaching(cached)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.SocialCost()
		for u := 0; u < n; u++ {
			_ = s.Cost(u)
		}
	}
}

func BenchmarkCostQueriesCached(b *testing.B)   { benchmarkCostQueries(b, true) }
func BenchmarkCostQueriesUncached(b *testing.B) { benchmarkCostQueries(b, false) }

// benchmarkGreedyDynamics runs greedy move dynamics from a star seed —
// the BestSingleMove scan re-queries the mover's current cost and
// speculatively evaluates candidates, which the cache's snapshot/restore
// turns into hits for untouched sources.
func benchmarkGreedyDynamics(b *testing.B, cached bool) {
	n := 24
	g := game.New(game.NewHost(gen.Points(4, n, 2, 10, 2)), 1.5)
	p := game.StarProfile(n, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := game.NewState(g, p.Clone())
		s.SetDistCaching(cached)
		dynamics.Run(s, dynamics.GreedyMover, dynamics.RoundRobin{}, 200)
		_ = s.SocialCost()
	}
}

func BenchmarkGreedyDynamicsCached(b *testing.B)   { benchmarkGreedyDynamics(b, true) }
func BenchmarkGreedyDynamicsUncached(b *testing.B) { benchmarkGreedyDynamics(b, false) }

// benchmarkNashVerify measures the experiments' equilibrium-check
// pattern: exact Nash verification, the approximation factor, and the
// social cost of the same state (the PoA numerator). The verification
// passes consume the same per-source rows and G∖u all-pairs matrices,
// which the cache computes once per network version.
func benchmarkNashVerify(b *testing.B, cached bool) {
	n := 14
	g := game.New(game.NewHost(gen.Points(4, n, 2, 10, 2)), 1.5)
	s := game.NewState(g, game.StarProfile(n, 0))
	s.SetDistCaching(cached)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bestresponse.IsNash(s)
		_ = bestresponse.NashApproxFactor(s)
		_ = s.SocialCost()
	}
}

func BenchmarkNashVerifyCached(b *testing.B)   { benchmarkNashVerify(b, true) }
func BenchmarkNashVerifyUncached(b *testing.B) { benchmarkNashVerify(b, false) }

// ---- lazy-host construction and memory benchmarks ----
//
// The Host API computes weights lazily from the backing metric.Space;
// the allocs/op and B/op columns of these benchmarks are the redesign's
// contract: constructing a game on an n-point host allocates O(n) state
// (graph adjacency + cache bookkeeping), not an O(n²) dense matrix,
// unless densification is explicitly requested. The CI baseline tracks
// these numbers across runs.

// benchmarkHostConstruct builds the lazy host, the game and a star state,
// then runs one cost query (a single Dijkstra) — the minimum end-to-end
// path a sweep cell pays per instance.
func benchmarkHostConstruct(b *testing.B, n int, densify bool) {
	pts := gen.Points(7, n, 2, 1000, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := game.NewHost(pts)
		if densify {
			_ = h.Densify()
		}
		g := game.New(h, 2)
		s := game.NewState(g, game.StarProfile(n, 0))
		_ = s.Cost(n / 2)
	}
}

func BenchmarkHostConstructLazy1k(b *testing.B)  { benchmarkHostConstruct(b, 1000, false) }
func BenchmarkHostConstructLazy5k(b *testing.B)  { benchmarkHostConstruct(b, 5000, false) }
func BenchmarkHostConstructLazy10k(b *testing.B) { benchmarkHostConstruct(b, 10000, false) }

// BenchmarkHostConstructDense1k is the explicit-densification baseline:
// the same workload paying the O(n²) matrix up front. (Larger dense sizes
// are omitted on purpose — 10k dense is an 800 MB allocation, which is
// exactly what the lazy path exists to avoid.)
func BenchmarkHostConstructDense1k(b *testing.B) { benchmarkHostConstruct(b, 1000, true) }

// BenchmarkHostCostQueries10k measures repeated cost queries against an
// unchanged 10k-agent star state on a lazy host: rotating single-source
// queries plus the speculative move evaluation of the greedy hot path.
func BenchmarkHostCostQueries10k(b *testing.B) {
	n := 10000
	g := game.New(game.NewHost(gen.Points(7, n, 2, 1000, 2)), 2)
	s := game.NewState(g, game.StarProfile(n, 0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := 1 + i%(n-1)
		_ = s.Cost(u)
		m := game.Move{Agent: u, Kind: game.Buy, V: 1 + (i*7)%(n-1)}
		if m.V != u {
			_ = s.CostAfter(m)
		}
	}
}

// ---- solver micro-benchmarks ----

// BenchmarkDijkstra measures single-source shortest paths on a 200-node
// equilibrium-like sparse network.
func BenchmarkDijkstra(b *testing.B) {
	g := game.New(game.NewHost(gen.Points(9, 200, 2, 100, 2)), 8)
	s := game.NewState(g, game.StarProfile(200, 0))
	net := s.Network()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.Dijkstra(i % 200)
	}
}

// BenchmarkAPSP measures the parallel all-pairs computation on 120 nodes.
func BenchmarkAPSP(b *testing.B) {
	g := game.New(game.NewHost(gen.Points(9, 120, 2, 100, 2)), 8)
	s := game.NewState(g, game.StarProfile(120, 0))
	net := s.Network()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.APSP()
	}
}

// BenchmarkExactBestResponse measures the UMFL branch-and-bound on a
// 16-agent geometric state.
func BenchmarkExactBestResponse(b *testing.B) {
	g := game.New(game.NewHost(gen.Points(4, 16, 2, 10, 2)), 1.5)
	s := game.NewState(g, game.StarProfile(16, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bestresponse.Exact(s, 1+(i%15))
	}
}

// BenchmarkApproxBestResponse measures the polynomial local-search
// response on the same state.
func BenchmarkApproxBestResponse(b *testing.B) {
	g := game.New(game.NewHost(gen.Points(4, 16, 2, 10, 2)), 1.5)
	s := game.NewState(g, game.StarProfile(16, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bestresponse.ApproxLocalSearch(s, 1+(i%15))
	}
}

// BenchmarkGreedySingleMove measures one best-single-move scan.
func BenchmarkGreedySingleMove(b *testing.B) {
	g := game.New(game.NewHost(gen.Points(4, 30, 2, 10, 2)), 1.5)
	s := game.NewState(g, game.StarProfile(30, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = s.BestSingleMove(i % 30)
	}
}

// BenchmarkUMFLExact measures the facility-location branch-and-bound on
// random metric instances (15 facilities, 15 clients).
func BenchmarkUMFLExact(b *testing.B) {
	ins := randomUMFL(15, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = facility.Exact(ins)
	}
}

// BenchmarkUMFLLocalSearch measures local search on the same instances.
func BenchmarkUMFLLocalSearch(b *testing.B) {
	ins := randomUMFL(15, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = facility.LocalSearch(ins, bitset.New(15), 1e-9, 100000)
	}
}

// BenchmarkQuickstartEndToEnd measures the full public-API flow of the
// README quickstart: dynamics from scratch to a verified equilibrium.
func BenchmarkQuickstartEndToEnd(b *testing.B) {
	host, err := gncg.HostFromPoints([][]float64{{0, 0}, {4, 0}, {4, 3}, {0, 3}, {2, 1.5}}, 2)
	if err != nil {
		b.Fatal(err)
	}
	g := gncg.NewGame(host, 1.5)
	ok := false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := gncg.NewState(g, gncg.EmptyProfile(g.N()))
		res := gncg.RunBestResponseDynamics(s, 1000)
		ok = res.Outcome == gncg.Converged && gncg.IsNashEquilibrium(s)
	}
	reportVerified(b, ok)
}

func randomUMFL(nf, nc int) *facility.Instance {
	pts := gen.Points(77, nf+nc, 2, 100, 2)
	open := make([]float64, nf)
	conn := make([][]float64, nc)
	for f := 0; f < nf; f++ {
		open[f] = 10 + float64(f)
	}
	for c := 0; c < nc; c++ {
		conn[c] = make([]float64, nf)
		for f := 0; f < nf; f++ {
			conn[c][f] = pts.Dist(nf+c, f)
		}
	}
	ins, err := facility.NewInstance(open, conn, nil)
	if err != nil {
		panic(err)
	}
	return ins
}

// ---- incremental-repair and pruned-scan benchmarks ----
//
// The greedy-dynamics hot path: BestSingleMove evaluates O(n²) candidate
// moves, each via a speculative single-edge mutation. Before this PR the
// cache invalidated wholesale on any edge change, so every candidate paid
// a fresh Dijkstra; now cached rows are repaired in place across the move
// and its undo (internal/graph's Ramalingam–Reps primitives) and the scan
// skips candidates whose distance-gain bound cannot beat the running
// best. The *Baseline benchmarks keep the exhaustive scan with caching
// off — each speculative evaluation recomputes from scratch, which is
// what the invalidate-everything cache paid on this workload — and are
// the ≥5x reference the CI benchdiff artifact records.

func benchmarkBestSingleMove(b *testing.B, n int, incremental bool) {
	g := game.New(game.NewHost(gen.Points(7, n, 2, 1000, 2)), 8)
	s := game.NewState(g, game.StarProfile(n, 0))
	s.SetDistCaching(incremental)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := 1 + i%(n-1)
		if incremental {
			_, _, _ = s.BestSingleMove(u)
		} else {
			_, _, _ = s.BestSingleMoveExact(u)
		}
	}
}

func BenchmarkBestSingleMove1k(b *testing.B)         { benchmarkBestSingleMove(b, 1000, true) }
func BenchmarkBestSingleMoveBaseline1k(b *testing.B) { benchmarkBestSingleMove(b, 1000, false) }

// BenchmarkBestSingleMoveNoPrune1k isolates the two halves of the
// speedup: incremental repair without candidate pruning.
func BenchmarkBestSingleMoveNoPrune1k(b *testing.B) {
	n := 1000
	g := game.New(game.NewHost(gen.Points(7, n, 2, 1000, 2)), 8)
	s := game.NewState(g, game.StarProfile(n, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = s.BestSingleMoveExact(1 + i%(n-1))
	}
}

// benchmarkGreedyRound measures a round of applied greedy moves (scan +
// Apply for a block of agents) on an n-agent star — the unit of work the
// scale sweep ladders up.
func benchmarkGreedyRound(b *testing.B, n int, incremental bool) {
	g := game.New(game.NewHost(gen.Points(7, n, 2, 1000, 2)), 8)
	p := game.StarProfile(n, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := game.NewState(g, p.Clone())
		s.SetDistCaching(incremental)
		b.StartTimer()
		for u := 1; u <= 16; u++ {
			var m game.Move
			var ok bool
			if incremental {
				m, _, ok = s.BestSingleMove(u)
			} else {
				m, _, ok = s.BestSingleMoveExact(u)
			}
			if ok {
				s.Apply(m)
			}
		}
	}
}

func BenchmarkGreedyRound500(b *testing.B)         { benchmarkGreedyRound(b, 500, true) }
func BenchmarkGreedyRoundBaseline500(b *testing.B) { benchmarkGreedyRound(b, 500, false) }

// BenchmarkConvergence1k is the equilibrium ladder's unit of work: full
// greedy dynamics to a verified equilibrium (no improving single-edge
// move) on a 1000-point ℓ2 host from a star seed, through the lazy
// delta-log cache and the incremental cost aggregates. The reported
// rounds/moves pin the workload's shape into the baseline artifact
// alongside its time.
func BenchmarkConvergence1k(b *testing.B) {
	n := 1000
	g := game.New(game.NewHost(gen.Points(13, n, 2, 1000, 2)), float64(n))
	var res dynamics.ConvergenceResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := game.NewState(g, game.StarProfile(n, 0))
		b.StartTimer()
		res = dynamics.RunToConvergence(s, dynamics.GreedyMover, dynamics.RoundRobin{},
			dynamics.Budget{MaxRounds: 32, MaxMoves: 20 * n})
	}
	b.ReportMetric(float64(res.Rounds), "rounds")
	b.ReportMetric(float64(res.Moves), "moves")
	reportVerified(b, res.Outcome == dynamics.Converged)
}

// benchmarkGreedyStableScan measures the scan in its pruning-friendly
// regime: large α makes the star a (near-)greedy-equilibrium, so the
// bounds prove nearly every candidate non-improving and the scan is
// dominated by bound checks instead of speculative evaluations — the
// IsGreedyEquilibrium verification pattern at scale.
func benchmarkGreedyStableScan(b *testing.B, prune bool) {
	n := 1000
	g := game.New(game.NewHost(gen.Points(7, n, 2, 1000, 2)), 2000)
	s := game.NewState(g, game.StarProfile(n, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := 1 + i%(n-1)
		if prune {
			_, _, _ = s.BestSingleMove(u)
		} else {
			_, _, _ = s.BestSingleMoveExact(u)
		}
	}
}

func BenchmarkGreedyStableScan1k(b *testing.B)        { benchmarkGreedyStableScan(b, true) }
func BenchmarkGreedyStableScanNoPrune1k(b *testing.B) { benchmarkGreedyStableScan(b, false) }

// benchmarkBestSingleMoveGeo measures the geometric fast path on the
// workload it exists for: re-scanning an agent already sitting at its
// host-metric floor — the shape every agent has at the leaf-owned-star
// equilibria the sweep converges to, and the shape equilibrium
// re-verification hammers n times per round. The scanned agent is the
// hub of a SpokeProfile (direct edges to everyone, owned by the
// leaves), so with candidate generation ON the excess certificate
// resolves the scan in O(log n) — nearest-neighbor price floor, cached
// traffic floor, no candidate enumeration. The Pruned variant runs the
// identical workload with candidate generation OFF: the pruned
// exhaustive scan still builds the gain bounds and sweeps all n
// candidates. benchdiff -speedup floors Geo10k at ≥5x over Pruned10k
// in CI.
func benchmarkBestSingleMoveGeo(b *testing.B, n int, candidates bool) {
	was := game.CandidateGenerationEnabled()
	game.SetCandidateGeneration(candidates)
	defer game.SetCandidateGeneration(was)
	g := game.New(game.NewHost(gen.Points(7, n, 2, 1000, 2)), 16*float64(n))
	s := game.NewState(g, game.SpokeProfile(n, 0))
	// One warm scan so the measured loop times the steady-state scan:
	// distance row cached, traffic floor cached, kd-tree built.
	_, _, _ = s.BestSingleMove(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = s.BestSingleMove(0)
	}
}

func BenchmarkBestSingleMovePruned10k(b *testing.B) { benchmarkBestSingleMoveGeo(b, 10000, false) }
func BenchmarkBestSingleMoveGeo10k(b *testing.B)    { benchmarkBestSingleMoveGeo(b, 10000, true) }
func BenchmarkBestSingleMoveGeo100k(b *testing.B)   { benchmarkBestSingleMoveGeo(b, 100000, true) }
