package gncg

import (
	"gncg/internal/bestresponse"
	"gncg/internal/constructions"
	"gncg/internal/game"
	"gncg/internal/opt"
	"gncg/internal/poa"
	"gncg/internal/spanner"
)

// EquilibriumCensus is an exhaustive census of a tiny game's strategy
// space: exact Nash count, exact social optimum, and the exact Price of
// Anarchy / Price of Stability of the instance.
type EquilibriumCensus = poa.Census

// ExhaustiveEquilibriumCensus enumerates every strategy profile of a
// game with at most 5 agents and classifies the exact Nash equilibria,
// yielding the instance's exact PoA and PoS (the paper's conclusion
// poses the PoS analysis as future work; Cor. 3 implies PoS = 1 for
// tree metrics, which the census confirms). Exponential in n².
func ExhaustiveEquilibriumCensus(g *Game) (EquilibriumCensus, error) {
	return poa.ExhaustiveCensus(g)
}

// BestResponse is a computed best response: the agent, the strategy (as
// sorted node indices) and the cost it achieves.
type BestResponse struct {
	Agent    int
	Strategy []int
	Cost     float64
}

func fromResult(r bestresponse.Result) BestResponse {
	return BestResponse{Agent: r.Agent, Strategy: r.Strategy.Elems(), Cost: r.Cost}
}

// ExactBestResponse computes agent u's optimal strategy by
// branch-and-bound over the paper's facility-location formulation.
// Worst-case exponential (best response is NP-hard in every variant,
// Cor. 1); practical for hosts up to a few dozen agents.
func ExactBestResponse(s *State, u int) BestResponse {
	return fromResult(bestresponse.Exact(s, u))
}

// ApproxBestResponse computes a 3-approximate best response by facility
// local search (Thm 3), polynomial time.
func ApproxBestResponse(s *State, u int) BestResponse {
	return fromResult(bestresponse.ApproxLocalSearch(s, u))
}

// IsNashEquilibrium reports whether no agent has any improving strategy
// change, by exact best responses for every agent (exponential worst
// case; intended for verification at small n).
func IsNashEquilibrium(s *State) bool { return bestresponse.IsNash(s) }

// IsGreedyEquilibrium reports whether no agent improves by a single buy,
// delete or swap (polynomial).
func IsGreedyEquilibrium(s *State) bool { return s.IsGreedyEquilibrium() }

// IsAddOnlyEquilibrium reports whether no agent improves by a single buy.
func IsAddOnlyEquilibrium(s *State) bool { return s.IsAddOnlyEquilibrium() }

// VerifyOptions configures a certified parallel greedy-equilibrium
// verification: worker count (0 = GOMAXPROCS), exact vs pruned scans for
// uncertified agents, and whether gain-bound certificates may skip
// agents.
type VerifyOptions = game.VerifyOptions

// VerifyResult reports a certified verification: stability, the first
// improving agent, and how many agents the certificates skipped. The
// result is identical for every worker count.
type VerifyResult = game.VerifyResult

// GainCertificate is a per-agent upper bound on the gain of any single
// acquiring move, used by VerifyGreedyEquilibrium to skip provably
// stable agents without scanning their candidates.
type GainCertificate = game.GainCertificate

// VerifyGreedyEquilibrium checks the greedy-equilibrium property by
// sharding per-agent checks across a worker pool, with gain-bound
// certificates skipping agents whose best single move is provably not
// improving. Read-only on s; the verdict is bit-identical to a serial
// in-order scan for any worker count.
func VerifyGreedyEquilibrium(s *State, opt VerifyOptions) VerifyResult {
	return game.VerifyGreedyEquilibrium(s, opt)
}

// NashVerification reports a sharded exact-Nash check: the verdict, the
// first deviating agent (-1 if none) and the worker count used.
type NashVerification = bestresponse.NashReport

// VerifyNashEquilibrium checks the exact Nash property with an explicit
// worker budget (0 = GOMAXPROCS), one exact best response per agent.
// Exponential worst case; intended for small n.
func VerifyNashEquilibrium(s *State, workers int) NashVerification {
	return bestresponse.VerifyNashWorkers(s, workers)
}

// NashApproxFactor returns the smallest β for which the state is a β-NE.
func NashApproxFactor(s *State) float64 { return bestresponse.NashApproxFactor(s) }

// GreedyApproxFactor returns the smallest β for which the state is a
// β-GE.
func GreedyApproxFactor(s *State) float64 { return s.GreedyApproxFactor() }

// OptimumCandidate is a social-optimum candidate network.
type OptimumCandidate = opt.Result

// SocialOptimumExact computes the social optimum by exhaustive search
// (n <= 7).
func SocialOptimumExact(g *Game) (OptimumCandidate, error) { return opt.ExactSmall(g) }

// SocialOptimumHeuristic returns the best of the MST, complete-graph and
// local-search optimum candidates: an upper bound on OPT for any size.
func SocialOptimumHeuristic(g *Game) OptimumCandidate { return opt.BestCandidate(g, 400) }

// SocialOptimumLowerBound returns the certified lower bound
// α·MST(H) + Σ_{u,v} d_H(u,v) on the social optimum cost.
func SocialOptimumLowerBound(g *Game) float64 { return opt.LowerBound(g) }

// Algorithm1 computes the social optimum of a 1-2 host for α <= 1 by the
// paper's triangle-removal algorithm (Thm 6), polynomial time.
func Algorithm1(h *Host) (OptimumCandidate, error) { return opt.Algorithm1(h) }

// EvaluateCandidate fills in the social cost of an optimum candidate for
// game g.
func EvaluateCandidate(g *Game, r OptimumCandidate) OptimumCandidate {
	return opt.Evaluate(g, r)
}

// IsKSpanner reports whether the state's network is a k-spanner of the
// host (Lemmas 1-2 assert this for AE networks with k = α+1 and optima
// with k = α/2+1).
func IsKSpanner(s *State, k float64) bool {
	return spanner.IsKSpanner(s.Network(), s.G.Host, k, s.G.Eps)
}

// Stretch returns the maximum distance stretch of the state's network
// over the host metric: the smallest k for which it is a k-spanner.
func Stretch(s *State) float64 { return spanner.Stretch(s.Network(), s.G.Host) }

// LowerBoundConstruction is a PoA lower-bound instance from the paper:
// game, equilibrium candidate, optimum candidate and predicted ratio.
type LowerBoundConstruction = constructions.LowerBound

// Thm15Star builds the T–GNCG star family of Thm 15/Fig. 6 (ratio →
// (α+2)/2).
func Thm15Star(n int, alpha float64) (*LowerBoundConstruction, error) {
	return constructions.Thm15Star(n, alpha)
}

// Thm19CrossPolytope builds the ℓ1 cross-polytope family of Thm 19 /
// Fig. 10 (ratio = 1 + α/(2+α/(2d-1))).
func Thm19CrossPolytope(d int, alpha float64) (*LowerBoundConstruction, error) {
	return constructions.Thm19CrossPolytope(d, alpha)
}

// Thm18FourPoint builds the four-point geometric witness of Thm 18.
func Thm18FourPoint(alpha float64) (*LowerBoundConstruction, error) {
	return constructions.Thm18FourPoint(alpha)
}

// Thm20Triangle builds the non-metric triangle witness with ratio
// (α+2)/2 and pairwise σ of ((α+2)/2)².
func Thm20Triangle(alpha float64) (*LowerBoundConstruction, error) {
	return constructions.Thm20Triangle(alpha)
}

// Thm8AlphaOne builds the 1-2 clique-of-stars family for α = 1 (ratio →
// 3/2).
func Thm8AlphaOne(N int) (*LowerBoundConstruction, error) {
	return constructions.Thm8AlphaOne(N)
}

// Thm8HalfToOne builds the 1-2 clique-of-stars family for 1/2 <= α < 1
// (ratio → 3/(α+2)).
func Thm8HalfToOne(N int, alpha float64) (*LowerBoundConstruction, error) {
	return constructions.Thm8HalfToOne(N, alpha)
}
