package gncg

import (
	"math/rand"

	"gncg/internal/dynamics"
	"gncg/internal/game"
)

// DynamicsResult reports how a dynamics run ended.
type DynamicsResult = dynamics.Result

// Dynamics outcomes.
const (
	// Converged: a full round passed with no agent moving.
	Converged = dynamics.Converged
	// CycleDetected: a strategy profile recurred, certifying an
	// improving-move cycle (no finite improvement property).
	CycleDetected = dynamics.CycleDetected
	// Exhausted: the move budget ran out.
	Exhausted = dynamics.Exhausted
)

// RunBestResponseDynamics iterates exact best responses in round-robin
// order, mutating s, until convergence (a Nash equilibrium), a state
// recurrence, or maxMoves moves.
func RunBestResponseDynamics(s *State, maxMoves int) DynamicsResult {
	return dynamics.Run(s, dynamics.BestResponseMover, dynamics.RoundRobin{}, maxMoves)
}

// RunGreedyDynamics iterates best single-edge moves (buy/delete/swap) in
// round-robin order; convergence yields a greedy equilibrium.
func RunGreedyDynamics(s *State, maxMoves int) DynamicsResult {
	return dynamics.Run(s, dynamics.GreedyMover, dynamics.RoundRobin{}, maxMoves)
}

// ConvergenceBudget bounds a RunToConvergence call: deterministic round
// and move caps plus an optional machine-dependent wall-clock backstop.
// Zero values mean unlimited.
type ConvergenceBudget = dynamics.Budget

// ConvergenceResult reports how an equilibrium-seeking run ended,
// including the final social cost; its PoA method divides by an optimum
// bound (see SocialOptimumLowerBound) to give the empirical Price of
// Anarchy of the reached state.
type ConvergenceResult = dynamics.ConvergenceResult

// RunToConvergence drives a mover/scheduler combination until a full
// round passes with no improving move or the budget runs out. Unlike
// RunDynamics it keeps no history and detects no cycles — O(1) per-move
// overhead, the engine behind the equilibrium ladder at n = 10⁴. Use
// GreedyMover with RoundRobinScheduler for the paper's greedy dynamics.
func RunToConvergence(s *State, mover Mover, sched Scheduler, b ConvergenceBudget) ConvergenceResult {
	return dynamics.RunToConvergence(s, mover, sched, b)
}

// RunGreedyDynamicsToConvergence plays greedy single-edge moves in
// round-robin order until no agent can improve (a verified greedy
// equilibrium) or the budget is exhausted.
func RunGreedyDynamicsToConvergence(s *State, b ConvergenceBudget) ConvergenceResult {
	return dynamics.RunToConvergence(s, dynamics.GreedyMover, dynamics.RoundRobin{}, b)
}

// ConvergenceVerification is an independent certified re-check of a
// converged run: the parallel verifier's result plus the wall time it
// took.
type ConvergenceVerification = dynamics.Verification

// VerifyConvergence re-checks a converged RunToConvergence outcome with
// the certified parallel verifier (see VerifyGreedyEquilibrium). ok is
// false when the run did not converge — there is nothing to certify.
func VerifyConvergence(res ConvergenceResult, s *State, opt VerifyOptions) (ConvergenceVerification, bool) {
	return dynamics.VerifyConvergence(res, s, opt)
}

// RunAddOnlyDynamics iterates best single buys until no agent wants
// another edge: an add-only equilibrium, reached in at most ~n² moves.
// Start from a connected profile (e.g. StarProfile) for meaningful
// results; see Thm 2 and Cor. 2.
func RunAddOnlyDynamics(s *State) DynamicsResult {
	return dynamics.RunAddOnly(s, dynamics.RoundRobin{})
}

// RunRandomOrderDynamics iterates exact best responses with a seeded
// random agent order each round — the configuration under which
// improving-move cycles surface in practice.
func RunRandomOrderDynamics(s *State, maxMoves int, seed int64) DynamicsResult {
	sched := dynamics.RandomOrder{Rng: rand.New(rand.NewSource(seed))}
	return dynamics.Run(s, dynamics.BestResponseMover, sched, maxMoves)
}

// CycleWitness is a machine-verified improving-move cycle.
type CycleWitness = dynamics.CycleWitness

// CycleSearchConfig controls FindImprovingCycle.
type CycleSearchConfig = dynamics.CycleSearchConfig

// FindImprovingCycle searches for an improving-move cycle by randomized
// dynamics with recurrence detection (the machine-checkable content of
// Thms 14 and 17). A returned witness should be re-validated with
// VerifyImprovingCycle.
func FindImprovingCycle(g *Game, cfg CycleSearchConfig) (CycleWitness, bool) {
	return dynamics.FindCycle(g, cfg)
}

// VerifyImprovingCycle replays a witness, checking every move strictly
// improved its mover and that the profile truly recurs.
func VerifyImprovingCycle(g *Game, w CycleWitness) bool {
	return dynamics.VerifyCycle(g, w)
}

// FIPWitness is a cycle extracted from the exhaustive improving-move
// graph of a (tiny) instance.
type FIPWitness = dynamics.FIPWitness

// ExhaustiveFIPCheck decides the finite improvement property for an
// instance with n <= 5 agents by building the full improving-move graph:
// hasCycle=false proves the FIP holds for the instance; a witness
// refutes it. Exponential in n².
func ExhaustiveFIPCheck(g *Game) (witness *FIPWitness, hasCycle bool, err error) {
	return dynamics.ExhaustiveFIP(g)
}

// VerifyFIPWitness replays an exhaustive-check witness.
func VerifyFIPWitness(g *Game, w *FIPWitness) bool {
	return dynamics.VerifyFIPWitness(g, w)
}

// Movers and schedulers for custom dynamics loops.
type (
	// Mover computes an agent's next strategy.
	Mover = dynamics.Mover
	// Scheduler orders agent activations per round.
	Scheduler = dynamics.Scheduler
)

// RunDynamics runs a custom mover/scheduler combination.
func RunDynamics(s *State, mover Mover, sched Scheduler, maxMoves int) DynamicsResult {
	return dynamics.Run(s, mover, sched, maxMoves)
}

// BestResponseMover, GreedyMover, AddOnlyMover and ApproxBRMover are the
// built-in move oracles.
var (
	BestResponseMover Mover = dynamics.BestResponseMover
	GreedyMover       Mover = dynamics.GreedyMover
	AddOnlyMover      Mover = dynamics.AddOnlyMover
	ApproxBRMover     Mover = dynamics.ApproxBRMover
)

// RoundRobinScheduler activates agents in index order.
func RoundRobinScheduler() Scheduler { return dynamics.RoundRobin{} }

// RandomScheduler activates agents in a fresh seeded permutation each
// round.
func RandomScheduler(seed int64) Scheduler {
	return dynamics.RandomOrder{Rng: rand.New(rand.NewSource(seed))}
}

// PathProfile returns the profile where consecutive agents in the given
// order buy the connecting edge.
func PathProfile(n int, order []int) Profile { return game.PathProfile(n, order) }
