package gncg

import (
	"math"
	"testing"
)

func TestSetCoverGeoGadgetFacade(t *testing.T) {
	gadget, err := NewSetCoverGeoGadget(4, [][]int{{0, 1}, {2, 3}, {1, 2}}, 100, 0.001, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(gadget.Game, gadget.Profile())
	br := ExactBestResponse(s, gadget.U)
	sets, other := gadget.DecodeStrategy(br.Strategy)
	if len(other) != 0 {
		t.Fatalf("non-set purchases %v", other)
	}
	if len(sets) != 2 { // min cover is {0,1} or {1,...}: sizes 2
		t.Fatalf("BR buys %d sets, want 2", len(sets))
	}
	// CostOfCover of the BR sets matches the BR cost.
	if got := gadget.CostOfCover(s, sets); math.Abs(got-br.Cost) > 1e-9 {
		t.Fatalf("CostOfCover %v != BR cost %v", got, br.Cost)
	}
	// A bigger cover costs strictly more.
	if gadget.CostOfCover(s, []int{0, 1, 2}) <= br.Cost {
		t.Fatal("oversized cover not more expensive")
	}
}

func TestSetCoverGeoGadgetValidation(t *testing.T) {
	if _, err := NewSetCoverGeoGadget(2, [][]int{{0}}, 100, 0.001, 1, 2); err == nil {
		t.Fatal("uncoverable universe accepted")
	}
	if _, err := NewSetCoverGeoGadget(2, [][]int{{0, 1}}, 100, 1, 1, 2); err == nil {
		t.Fatal("beta <= k*eps accepted")
	}
}

func TestSetCoverTreeGadgetFacade(t *testing.T) {
	gadget, err := NewSetCoverTreeGadget(3, [][]int{{0, 1}, {1, 2}, {2}}, 100, 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(gadget.Game, gadget.Profile())
	br := ExactBestResponse(s, gadget.U)
	sets, other := gadget.DecodeStrategy(br.Strategy)
	if len(other) != 0 || len(sets) != 2 {
		t.Fatalf("BR sets %v other %v, want a 2-set cover", sets, other)
	}
}

func TestVertexCoverGadgetFacade(t *testing.T) {
	gadget, err := NewVertexCoverGadget(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	pMin, err := gadget.Profile([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(gadget.Game, pMin)
	if got, want := s.Cost(gadget.U), gadget.PredictedUCost(1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("cost(u) = %v, want %v", got, want)
	}
	if !IsNashEquilibrium(s) {
		t.Fatal("minimum-cover profile must be NE")
	}
	pBig, err := gadget.Profile([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if IsNashEquilibrium(NewState(gadget.Game, pBig)) {
		t.Fatal("oversized-cover profile must not be NE")
	}
	if _, err := gadget.Profile([]int{0}); err == nil {
		t.Fatal("non-cover accepted")
	}
	if _, err := NewVertexCoverGadget(2, nil); err == nil {
		t.Fatal("edgeless instance accepted")
	}
}

func TestFindImprovingCycleFacade(t *testing.T) {
	// The Fig 8 search through the public facade, small budget just to
	// exercise the wiring; the full-budget version lives in the
	// experiments harness and internal tests.
	host, err := HostFromPoints([][]float64{
		{3, 0}, {0, 3}, {2, 2}, {0, 2}, {1, 1},
		{4, 3}, {2, 0}, {4, 1}, {1, 4}, {1, 0},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGame(host, 1)
	w, ok := FindImprovingCycle(g, CycleSearchConfig{
		Restarts: 120, MaxMoves: 2000, EdgeProb: 0.3, Seed: 7, RandomSched: true,
	})
	if !ok {
		t.Skip("cycle not found with facade budget")
	}
	if !VerifyImprovingCycle(g, w) {
		t.Fatal("facade-found cycle failed verification")
	}
}

func TestCensusFacade(t *testing.T) {
	host, err := HostFromTree(4, []Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}, {U: 1, V: 3, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := ExhaustiveEquilibriumCensus(NewGame(host, 2))
	if err != nil {
		t.Fatal(err)
	}
	if c.Nash == 0 {
		t.Fatal("no NE on tree census")
	}
	if math.Abs(c.PoS()-1) > 1e-9 {
		t.Fatalf("tree PoS = %v, want 1 (Cor. 3)", c.PoS())
	}
	if _, err := ExhaustiveEquilibriumCensus(NewGame(UnitHost(7), 1)); err == nil {
		t.Fatal("census accepted n=7")
	}
}

func TestSingleAgentGame(t *testing.T) {
	// Degenerate n=1: no edges possible, zero cost, trivially NE.
	g := NewGame(UnitHost(1), 1)
	s := NewState(g, EmptyProfile(1))
	if got := s.Cost(0); got != 0 {
		t.Fatalf("single-agent cost %v", got)
	}
	if !IsNashEquilibrium(s) || !IsGreedyEquilibrium(s) {
		t.Fatal("single-agent game must be trivially stable")
	}
	if s.SocialCost() != 0 {
		t.Fatal("single-agent social cost must be 0")
	}
}

func TestTwoAgentGame(t *testing.T) {
	host, err := HostFromPoints([][]float64{{0}, {5}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGame(host, 2)
	s := NewState(g, EmptyProfile(2))
	res := RunBestResponseDynamics(s, 10)
	if res.Outcome != Converged {
		t.Fatalf("outcome %v", res.Outcome)
	}
	// One agent buys the single edge: social cost α·5 + 5 + 5.
	if got, want := s.SocialCost(), 2.0*5+10; math.Abs(got-want) > 1e-9 {
		t.Fatalf("social cost %v, want %v", got, want)
	}
	if s.P.EdgeCount() != 1 {
		t.Fatalf("edge count %d", s.P.EdgeCount())
	}
}
