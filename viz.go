package gncg

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// WriteDOT renders the state's created network in Graphviz DOT format:
// one node per agent, one arc per purchase pointing from owner to bought
// node (doubly-owned edges render as two arcs), labelled with the host
// weight. Pipe through `dot -Tsvg` to visualize equilibria.
func WriteDOT(w io.Writer, s *State, name string) error {
	if name == "" {
		name = "gncg"
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n", name); err != nil {
		return err
	}
	n := s.G.N()
	for u := 0; u < n; u++ {
		if _, err := fmt.Fprintf(w, "  %d [shape=circle];\n", u); err != nil {
			return err
		}
	}
	edges := s.P.OwnedEdges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Owner != edges[j].Owner {
			return edges[i].Owner < edges[j].Owner
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		weight := s.G.Host.Weight(e.Owner, e.To)
		label := fmt.Sprintf("%.3g", weight)
		if math.IsInf(weight, 1) {
			label = "inf"
		}
		if _, err := fmt.Fprintf(w, "  %d -> %d [label=%q];\n", e.Owner, e.To, label); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
