// Package gncg is a complete implementation of Geometric Network Creation
// Games (Bilò, Friedrich, Lenzner, Melnichenko; SPAA 2019): the network
// creation game of Fabrikant et al. generalized to edge-weighted host
// graphs, where agent u buys incident edges at price α·w(u,v) and pays
// its total shortest-path distance to all other agents.
//
// The package exposes the game model (hosts, profiles, states, costs),
// every host-graph class the paper studies (general weights, metric,
// tree metric, {1,2}, points in R^d under p-norms, {1,∞}, unit), exact
// and approximate best-response solvers (via the paper's facility-
// location reduction), equilibrium checks (Nash, greedy, add-only and
// β-approximate variants), move dynamics with improving-move-cycle
// detection, social-optimum solvers, and programmatic builders for every
// construction in the paper's proofs. The cmd/experiments tool and the
// root benchmark suite regenerate the paper's Table 1 and Figures 1-10.
//
// Hosts are lazy: a Host wraps its distance space (points under a p-norm,
// a tree metric, a {1,2}/{1,∞}/unit host, or an explicit matrix) and
// computes weights on demand, so building a game on an n-point geometric
// host costs O(n) memory — 10k+ agents are practical. Classification and
// metricity checks answer structurally in O(1) for implicit spaces. The
// dense O(n²) matrix exists only after an explicit DensifyHost /
// Host.Matrix call and is memoized and shared; callers must not mutate
// it.
//
// Quick start:
//
//	host, _ := gncg.HostFromPoints([][]float64{{0, 0}, {3, 0}, {0, 4}}, 2)
//	g := gncg.NewGame(host, 1.5)
//	s := gncg.NewState(g, gncg.EmptyProfile(g.N()))
//	res := gncg.RunBestResponseDynamics(s, 1000)
//	fmt.Println(res.Outcome, gncg.IsNashEquilibrium(s), s.SocialCost())
package gncg

import (
	"fmt"
	"math"

	"gncg/internal/game"
	"gncg/internal/graph"
	"gncg/internal/metric"
	"gncg/internal/rules"
)

// Core model types, re-exported from the internal engine.
type (
	// Game couples a host graph with the edge price parameter α.
	Game = game.Game
	// Host is a complete weighted host graph.
	Host = game.Host
	// Profile is a strategy profile: S[u] is the set of nodes agent u
	// buys an edge towards.
	Profile = game.Profile
	// State is a profile bound to its game with the created network
	// materialized; all cost queries go through it.
	State = game.State
	// Move is a single-edge strategy change (buy, delete or swap).
	Move = game.Move
	// OwnedEdge names a directed purchase: Owner buys the edge to To.
	OwnedEdge = game.OwnedEdge
	// Edge is an undirected weighted edge, used for optimum candidates
	// and network descriptions.
	Edge = graph.Edge
	// ModelClass locates a host in the paper's model hierarchy (Fig. 1).
	ModelClass = metric.Class
	// Rules is a pluggable cost model: the edge-cost, distance-cost and
	// feasibility hooks that turn the one engine into the whole NCG
	// family. Games default to the paper's sum-distance model.
	Rules = game.Rules
)

// Move kinds.
const (
	Buy    = game.Buy
	Delete = game.Delete
	Swap   = game.Swap
)

// Model classes (Fig. 1).
const (
	ClassGNCG   = metric.ClassGeneral
	ClassOneInf = metric.ClassOneInf
	ClassMetric = metric.ClassMetric
	ClassOneTwo = metric.ClassOneTwo
	ClassNCG    = metric.ClassUnit
)

// NewGame returns the GNCG on host h with edge-price parameter alpha > 0,
// under the paper's sum-distance cost model.
func NewGame(h *Host, alpha float64) *Game { return game.New(h, alpha) }

// NewGameWithRules returns a game on host h under an explicit cost model
// (see RulesByName; nil means the default sum-distance model). The alpha
// parameter keeps its model-specific meaning: per-unit-weight edge price
// under "sum", flat per-edge price under "unit", per-agent budget under
// "budget".
func NewGameWithRules(h *Host, alpha float64, r Rules) *Game {
	return game.NewWithRules(h, alpha, r)
}

// RulesByName resolves a registered cost-model name — "sum" (the paper's
// model, the default), "budget" (bounded-budget NCG: alpha is a
// per-agent budget on purchased host weight, edges are otherwise free),
// "unit" (flat price alpha per edge, the classic Fabrikant model) — to
// its Rules value.
func RulesByName(name string) (Rules, error) { return rules.ByName(name) }

// RuleSetNames lists the registered cost-model names in sorted order.
func RuleSetNames() []string { return rules.Names() }

// NewState binds a profile to a game and materializes its network.
func NewState(g *Game, p Profile) *State { return game.NewState(g, p) }

// EmptyProfile returns the profile where nobody buys anything.
func EmptyProfile(n int) Profile { return game.EmptyProfile(n) }

// StarProfile returns the profile where center buys an edge to everyone.
func StarProfile(n, center int) Profile { return game.StarProfile(n, center) }

// ProfileFromOwnedEdges builds a profile from an explicit purchase list.
func ProfileFromOwnedEdges(n int, edges []OwnedEdge) (Profile, error) {
	return game.ProfileFromOwnedEdges(n, edges)
}

// ProfileFromEdgeSet assigns each undirected edge to its lower-numbered
// endpoint.
func ProfileFromEdgeSet(n int, edges []Edge) Profile {
	return game.ProfileFromEdgeSet(n, edges)
}

// HostFromMatrix builds a host from an explicit symmetric weight matrix
// (the general GNCG; +Inf entries mark unbuyable pairs).
func HostFromMatrix(w [][]float64) (*Host, error) { return game.HostFromMatrix(w) }

// HostFromPoints builds an Rd–GNCG host: points in R^d under the p-norm
// (p >= 1, or math.Inf(1) for the max norm).
func HostFromPoints(coords [][]float64, p float64) (*Host, error) {
	pts, err := metric.NewPoints(coords, p)
	if err != nil {
		return nil, err
	}
	return game.NewHost(pts), nil
}

// HostFromTree builds a T–GNCG host: the metric closure of a weighted
// tree on n nodes given by its n-1 edges.
func HostFromTree(n int, edges []Edge) (*Host, error) {
	tm, err := metric.NewTreeMetric(n, edges)
	if err != nil {
		return nil, err
	}
	return game.NewHost(tm), nil
}

// HostFromOneTwo builds a 1-2–GNCG host: weight 1 on the listed pairs,
// weight 2 elsewhere.
func HostFromOneTwo(n int, oneEdges [][2]int) (*Host, error) {
	ot, err := metric.NewOneTwo(n, oneEdges)
	if err != nil {
		return nil, err
	}
	return game.NewHost(ot), nil
}

// HostFromOneInf builds a 1-∞–GNCG host: weight 1 on the listed pairs,
// unbuyable (+Inf) elsewhere.
func HostFromOneInf(n int, oneEdges [][2]int) (*Host, error) {
	oi, err := metric.NewOneInf(n, oneEdges)
	if err != nil {
		return nil, err
	}
	return game.NewHost(oi), nil
}

// UnitHost builds the original NCG host: all weights 1.
func UnitHost(n int) *Host { return game.NewHost(metric.Unit{N: n}) }

// ClassifyHost returns the most specific model class of the host within
// tolerance eps. Hosts built from implicit spaces (points, trees, unit,
// {1,2}, {1,∞}) answer structurally in O(1); matrix-backed hosts run the
// dense validators over their memoized view.
func ClassifyHost(h *Host, eps float64) ModelClass { return h.Classify(eps) }

// IsMetricHost reports whether the host satisfies the triangle
// inequality, structurally in O(1) where the backing space allows it (see
// ClassifyHost) and via the dense O(n³) validator otherwise.
func IsMetricHost(h *Host, eps float64) bool { return h.IsMetric(eps) }

// DensifyHost materializes and memoizes the host's dense weight matrix:
// O(n²) memory, an explicit opt-in for code that genuinely needs the full
// matrix. Hosts never densify on their own — Weight, costs, dynamics and
// classification of implicit spaces all run lazily in O(n) host memory.
// The returned matrix is shared with the host; callers must not mutate
// it.
func DensifyHost(h *Host) [][]float64 { return h.Densify() }

// Validate sanity-checks a profile against a game (sizes, self-loops are
// impossible by construction; this confirms dimensions for deserialized
// data).
func Validate(g *Game, p Profile) error {
	if p.N() != g.N() {
		return fmt.Errorf("gncg: profile over %d agents, game has %d", p.N(), g.N())
	}
	return nil
}

// Inf is the +Inf weight marker used for unbuyable pairs and
// disconnected distances.
func Inf() float64 { return math.Inf(1) }
