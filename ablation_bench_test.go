// Ablation benchmarks for the design choices DESIGN.md calls out:
// the UMFL-reduction best response vs naive strategy enumeration, the
// parallel APSP vs its serial and dense (Floyd–Warshall) alternatives,
// and greedy vs exact-best-response dynamics as equilibrium finders.
package gncg_test

import (
	"testing"

	"gncg/internal/bestresponse"
	"gncg/internal/dynamics"
	"gncg/internal/game"
	"gncg/internal/gen"
	"gncg/internal/parallel"
)

// ablationState is a shared mid-sized state: 12 agents, star plus noise.
func ablationState() *game.State {
	g := game.New(game.NewHost(gen.Points(31, 12, 2, 10, 2)), 1.5)
	p := game.StarProfile(12, 0)
	p.Buy(3, 7)
	p.Buy(5, 9)
	return game.NewState(g, p)
}

// BenchmarkAblationBRviaUMFL measures the production best-response path:
// branch-and-bound over the facility-location formulation.
func BenchmarkAblationBRviaUMFL(b *testing.B) {
	s := ablationState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bestresponse.Exact(s, 1+(i%11))
	}
}

// BenchmarkAblationBRviaBruteForce measures the naive alternative the
// UMFL reduction replaces: enumerate all 2^(n-1) strategies and evaluate
// each on the real network. Same answers (tests assert this), orders of
// magnitude slower already at n = 12.
func BenchmarkAblationBRviaBruteForce(b *testing.B) {
	s := ablationState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bestresponse.BruteForce(s, 1+(i%11))
	}
}

// BenchmarkAblationAPSPParallel measures the production all-pairs path:
// one Dijkstra per source across all cores.
func BenchmarkAblationAPSPParallel(b *testing.B) {
	s := game.NewState(
		game.New(game.NewHost(gen.Points(9, 150, 2, 100, 2)), 8),
		game.StarProfile(150, 0))
	net := s.Network()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.APSP()
	}
}

// BenchmarkAblationAPSPSerial bounds the parallel speedup: the same
// Dijkstras on a single worker.
func BenchmarkAblationAPSPSerial(b *testing.B) {
	s := game.NewState(
		game.New(game.NewHost(gen.Points(9, 150, 2, 100, 2)), 8),
		game.StarProfile(150, 0))
	net := s.Network()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := make([][]float64, net.N())
		parallel.ForWorkers(net.N(), 1, func(src int) { rows[src] = net.Dijkstra(src) })
		_ = rows
	}
}

// BenchmarkAblationAPSPFloydWarshall measures the dense cubic
// alternative on the same (sparse) network.
func BenchmarkAblationAPSPFloydWarshall(b *testing.B) {
	s := game.NewState(
		game.New(game.NewHost(gen.Points(9, 150, 2, 100, 2)), 8),
		game.StarProfile(150, 0))
	net := s.Network()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.FloydWarshall()
	}
}

// BenchmarkAblationDynamicsGreedy measures greedy (single-edge)
// dynamics as an equilibrium finder on a 10-agent instance.
func BenchmarkAblationDynamicsGreedy(b *testing.B) {
	g := game.New(game.NewHost(gen.Points(13, 10, 2, 10, 2)), 1.5)
	for i := 0; i < b.N; i++ {
		s := game.NewState(g, game.StarProfile(10, 0))
		dynamics.Run(s, dynamics.GreedyMover, dynamics.RoundRobin{}, 50000)
	}
}

// BenchmarkAblationDynamicsExactBR measures exact-best-response dynamics
// on the same instance: fewer, costlier moves.
func BenchmarkAblationDynamicsExactBR(b *testing.B) {
	g := game.New(game.NewHost(gen.Points(13, 10, 2, 10, 2)), 1.5)
	for i := 0; i < b.N; i++ {
		s := game.NewState(g, game.StarProfile(10, 0))
		dynamics.Run(s, dynamics.BestResponseMover, dynamics.RoundRobin{}, 50000)
	}
}

// BenchmarkAblationDynamicsApproxBR measures the polynomial 3-approx
// responses as the mover: the paper's practical middle ground.
func BenchmarkAblationDynamicsApproxBR(b *testing.B) {
	g := game.New(game.NewHost(gen.Points(13, 10, 2, 10, 2)), 1.5)
	for i := 0; i < b.N; i++ {
		s := game.NewState(g, game.StarProfile(10, 0))
		dynamics.Run(s, dynamics.ApproxBRMover, dynamics.RoundRobin{}, 50000)
	}
}
