// Quickstart: build a small geometric network creation game, run
// best-response dynamics to a Nash equilibrium, and compare the outcome
// with the social optimum.
package main

import (
	"fmt"
	"log"

	"gncg"
)

func main() {
	// Five facilities in the plane (kilometre coordinates); edges cost
	// alpha per unit length, usage costs the summed distances.
	coords := [][]float64{
		{0, 0}, {4, 0}, {4, 3}, {0, 3}, {2, 1.5},
	}
	host, err := gncg.HostFromPoints(coords, 2)
	if err != nil {
		log.Fatal(err)
	}
	g := gncg.NewGame(host, 1.5)

	// Start from nothing and let agents play exact best responses.
	s := gncg.NewState(g, gncg.EmptyProfile(g.N()))
	res := gncg.RunBestResponseDynamics(s, 1000)
	fmt.Printf("dynamics: %s after %d moves\n", res.Outcome, res.Moves)
	fmt.Printf("is Nash equilibrium: %v\n", gncg.IsNashEquilibrium(s))

	fmt.Println("\nequilibrium network (owner -> bought node):")
	for _, e := range s.P.OwnedEdges() {
		fmt.Printf("  %d -> %d  (length %.2f)\n", e.Owner, e.To, host.Weight(e.Owner, e.To))
	}
	neCost := s.SocialCost()

	optRes, err := gncg.SocialOptimumExact(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsocial cost: equilibrium %.2f vs optimum %.2f (ratio %.4f)\n",
		neCost, optRes.Cost, neCost/optRes.Cost)
	fmt.Printf("paper bound for metric hosts (Thm 1): PoA <= (alpha+2)/2 = %.2f\n",
		(g.Alpha+2)/2)
}
