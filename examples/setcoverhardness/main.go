// Setcoverhardness: why ISPs cannot plan optimally in polynomial time.
// This example builds the paper's Thm 16 gadget — a geometric placement
// of stations in the plane whose best response encodes Minimum Set Cover
// — and shows the agent's exact best response solving the planted
// instance, while the polynomial 3-approximate response (Thm 3) gets
// within its guarantee at a fraction of the work.
package main

import (
	"fmt"
	"log"
	"sort"

	"gncg"
)

func main() {
	// Universe {0..5}, six stations to reach; candidate aggregation sites
	// correspond to sets.
	universe := 6
	sets := [][]int{
		{0, 1, 2},
		{2, 3},
		{3, 4, 5},
		{0, 5},
		{1, 4},
	}
	gadget, err := gncg.NewSetCoverGeoGadget(universe, sets, 100, 0.001, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	g := gadget.Game
	s := gncg.NewState(g, gadget.Profile())
	fmt.Printf("gadget: %d agents in the plane, agent u = %d owns nothing\n", g.N(), gadget.U)
	fmt.Printf("u's current cost: %.2f\n", s.Cost(gadget.U))

	exact := gncg.ExactBestResponse(s, gadget.U)
	chosen, extra := gadget.DecodeStrategy(exact.Strategy)
	sort.Ints(chosen)
	fmt.Printf("\nexact best response: buys sets %v (non-set purchases: %v), cost %.2f\n",
		chosen, extra, exact.Cost)
	fmt.Println("=> the chosen sets are a MINIMUM set cover: computing a best response")
	fmt.Println("   is NP-hard for the Rd-GNCG under any p-norm (Thm 16)")

	approx := gncg.ApproxBestResponse(s, gadget.U)
	fmt.Printf("\n3-approximate response (Thm 3 local search): cost %.2f (<= 3x exact: %v)\n",
		approx.Cost, approx.Cost <= 3*exact.Cost+1e-9)

	// Show the equivalence quantitatively: every cover size has a
	// distinct cost, so optimizing cost is optimizing the cover.
	fmt.Println("\ncost of buying each candidate cover:")
	for _, cover := range [][]int{{0, 2}, {0, 1, 2}, {0, 2, 3}, {0, 1, 2, 3, 4}} {
		cost := gadget.CostOfCover(s, cover)
		fmt.Printf("  sets %v (size %d): %.2f\n", cover, len(cover), cost)
	}
}
