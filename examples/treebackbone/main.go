// Treebackbone: the T–GNCG in practice. A regional backbone's duct
// system forms a tree (rivers, rail corridors); link prices and usage
// distances both follow the tree metric. The example demonstrates the
// paper's structural results for tree metrics: the defining tree is
// simultaneously the social optimum and a Nash equilibrium (Cor. 3, so
// the Price of Stability is 1), every Nash equilibrium is a tree
// (Thm 12), and yet the worst equilibrium can cost close to (alpha+2)/2
// times the optimum (Thm 15).
package main

import (
	"fmt"
	"log"

	"gncg"
)

func main() {
	// A river-valley duct tree: 0 is the coastal hub; weights are km.
	n := 9
	edges := []gncg.Edge{
		{U: 0, V: 1, W: 12}, {U: 1, V: 2, W: 7}, {U: 1, V: 3, W: 9},
		{U: 3, V: 4, W: 4}, {U: 3, V: 5, W: 6}, {U: 0, V: 6, W: 15},
		{U: 6, V: 7, W: 5}, {U: 6, V: 8, W: 8},
	}
	host, err := gncg.HostFromTree(n, edges)
	if err != nil {
		log.Fatal(err)
	}
	alpha := 2.0
	g := gncg.NewGame(host, alpha)

	// Corollary 3: the defining tree, bought along the tree, is an NE.
	tree := gncg.ProfileFromEdgeSet(n, edges)
	s := gncg.NewState(g, tree)
	fmt.Printf("defining tree is a Nash equilibrium: %v\n", gncg.IsNashEquilibrium(s))
	treeCost := s.SocialCost()

	// It is also the social optimum: Price of Stability 1.
	fmt.Printf("tree social cost: %.1f (Price of Stability = 1 by Cor. 3)\n", treeCost)

	// Thm 12: any equilibrium reached by dynamics is a tree.
	s2 := gncg.NewState(g, gncg.EmptyProfile(n))
	res := gncg.RunBestResponseDynamics(s2, 2000)
	fmt.Printf("\ndynamics from scratch: %s, %d edges, is tree: %v\n",
		res.Outcome, s2.P.EdgeCount(), s2.Network().IsTree())
	fmt.Printf("reached cost %.1f (ratio to tree: %.4f)\n",
		s2.SocialCost(), s2.SocialCost()/treeCost)

	// Thm 15: the worst case over tree metrics approaches (alpha+2)/2.
	lb, err := gncg.Thm15Star(60, alpha)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworst-case tree metric (Thm 15, n=60): ratio %.4f vs limit %.2f\n",
		lb.Ratio(), (alpha+2)/2)
	fmt.Println("=> decentralized backbone building needs coordination when alpha is large")
}
