// Fiberoptic: the paper's motivating scenario. Internet providers at
// city locations build a fiber network selfishly: each provider buys
// links at alpha times their geographic length and pays its total
// distance to every other city. The example sweeps alpha to show the
// regimes the theory predicts — dense networks when links are cheap,
// sparse near-trees when links dominate — and measures the price of
// anarchy against a heuristic optimum, including the decentralization
// penalty of Thm 15 ((alpha+2)/2 in the worst case).
package main

import (
	"fmt"
	"log"

	"gncg"
)

// Synthetic city grid: three metro clusters with suburbs, in km.
var cities = [][]float64{
	{0, 0}, {2, 1}, {1, 3}, // west metro
	{40, 5}, {42, 4}, {41, 8}, // central metro
	{80, 0}, {78, 3}, {81, 2}, // east metro
	{40, 40}, // northern hub
}

func main() {
	host, err := gncg.HostFromPoints(cities, 2)
	if err != nil {
		log.Fatal(err)
	}
	n := len(cities)

	fmt.Println("ISP fiber build-out: equilibria across the link-price parameter alpha")
	fmt.Printf("%8s  %8s  %8s  %10s  %10s  %8s  %s\n",
		"alpha", "edges", "diameter", "NE cost", "OPT cand.", "ratio", "bound (a+2)/2")
	for _, alpha := range []float64{0.25, 1, 4, 16, 64} {
		g := gncg.NewGame(host, alpha)
		// Exact best responses bootstrap from the empty network (an agent
		// buys a whole link set at once); single-edge greedy moves cannot
		// make any one purchase pay off while the network is disconnected.
		s := gncg.NewState(g, gncg.EmptyProfile(n))
		res := gncg.RunBestResponseDynamics(s, 5000)
		if res.Outcome != gncg.Converged {
			// Dynamics can cycle (no FIP, Thm 14/17); retry with a random
			// activation order until they settle.
			s = gncg.NewState(g, gncg.EmptyProfile(n))
			gncg.RunRandomOrderDynamics(s, 5000, 7)
		}
		opt := gncg.SocialOptimumHeuristic(g)
		neCost := s.SocialCost()
		fmt.Printf("%8.2f  %8d  %8.1f  %10.1f  %10.1f  %8.4f  %.2f\n",
			alpha, s.P.EdgeCount(), s.Network().Diameter(),
			neCost, opt.Cost, neCost/opt.Cost, (alpha+2)/2)
	}

	// At high alpha the equilibrium approaches a spanning tree: the MST
	// is the alpha -> infinity optimum.
	g := gncg.NewGame(host, 64)
	s := gncg.NewState(g, gncg.EmptyProfile(n))
	gncg.RunBestResponseDynamics(s, 5000)
	fmt.Printf("\nat alpha=64 the equilibrium has %d edges (a spanning tree has %d)\n",
		s.P.EdgeCount(), n-1)
	fmt.Println("links owned by each provider at alpha=64:")
	for u := 0; u < n; u++ {
		fmt.Printf("  city %d buys %v\n", u, s.P.S[u].Elems())
	}
}
