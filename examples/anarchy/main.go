// Anarchy: exact Price of Anarchy and Price of Stability on small
// instances by exhaustive equilibrium census. The paper bounds the PoA
// ((α+2)/2 for metric hosts, Thm 1) and leaves the Price of Stability
// as future work, noting PoS = 1 for tree metrics (Cor. 3). With at
// most five agents the full strategy space is enumerable, so both
// quantities are computed exactly and compared with the bounds.
package main

import (
	"fmt"
	"log"
	"runtime"

	"gncg"
	"gncg/internal/gen"
)

func main() {
	fmt.Println("exact equilibrium census on 4-agent games")
	fmt.Printf("%-22s %7s %9s %9s %9s %9s %12s\n",
		"host", "alpha", "profiles", "#NE", "PoA", "PoS", "bound (a+2)/2")

	show := func(name string, h *gncg.Host, alpha float64) {
		g := gncg.NewGame(h, alpha)
		c, err := gncg.ExhaustiveEquilibriumCensus(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %7.2f %9d %9d %9.4f %9.4f %12.2f\n",
			name, alpha, c.Profiles, c.Nash, c.PoA(), c.PoS(), (alpha+2)/2)
	}

	// Random geometric hosts across alpha.
	for _, alpha := range []float64{0.5, 1.5, 4} {
		h, err := gncg.HostFromPoints(pointCoords(3), 2)
		if err != nil {
			log.Fatal(err)
		}
		show("geometric (l2)", h, alpha)
	}

	// Tree metric: PoS must be exactly 1 (Cor. 3).
	tree, err := gncg.HostFromTree(4, []gncg.Edge{
		{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 5}, {U: 1, V: 3, W: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	show("tree metric", tree, 2)

	// The Thm 18 four-point witness: the exact PoA meets the paper's
	// closed-form lower bound.
	lb, err := gncg.Thm18FourPoint(3)
	if err != nil {
		log.Fatal(err)
	}
	c, err := gncg.ExhaustiveEquilibriumCensus(lb.Game)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nThm 18 witness at alpha=3: construction ratio %.4f, exact PoA %.4f, exact PoS %.4f\n",
		lb.Ratio(), c.PoA(), c.PoS())

	// Non-metric triangle (Thm 20): PoA exactly (alpha+2)/2.
	t20, err := gncg.Thm20Triangle(4)
	if err != nil {
		log.Fatal(err)
	}
	c20, err := gncg.ExhaustiveEquilibriumCensus(t20.Game)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Thm 20 triangle at alpha=4: exact PoA %.4f (= (4+2)/2 = 3), exact PoS %.4f\n",
		c20.PoA(), c20.PoS())

	// Beyond exhaustive reach the machinery still brackets the PoA at
	// scale: hosts are lazy (O(n) memory — no dense matrix is ever built),
	// so a 5000-agent state costs megabytes, and the certified optimum
	// lower bound α·MST + Σ d_H turns any equilibrium candidate's social
	// cost into a PoA upper bound for that state.
	n := 5000
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	big := gncg.NewGame(lazyGridHost(n), 2)
	bigState := gncg.NewState(big, gncg.StarProfile(n, 0))
	starCost := bigState.Cost(1) // one lazy shortest-path query
	runtime.ReadMemStats(&ms1)
	lbBound := gncg.SocialOptimumLowerBound(big)
	fmt.Printf("\nlazy scale: n=%d state + cost query allocated %.1f MB (dense matrix alone would be %.0f MB)\n",
		n, float64(ms1.TotalAlloc-ms0.TotalAlloc)/(1<<20), float64(8*n*n)/(1<<20))
	fmt.Printf("agent 1 star cost %.0f; star social cost / OPT lower bound = %.4f\n",
		starCost, bigState.SocialCost()/lbBound)
}

// lazyGridHost builds a 5000-point l2 host without materializing any
// O(n²) structure: coordinates on a jittered grid.
func lazyGridHost(n int) *gncg.Host {
	coords := make([][]float64, n)
	for i := range coords {
		coords[i] = []float64{float64(i % 71), float64(i / 71)}
	}
	h, err := gncg.HostFromPoints(coords, 2)
	if err != nil {
		log.Fatal(err)
	}
	return h
}

func pointCoords(seed int64) [][]float64 {
	pts := gen.Points(seed, 4, 2, 10, 2)
	return pts.Coords
}
