package gncg

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	host, err := HostFromPoints([][]float64{{0}, {1}, {3}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGame(host, 1)
	p := EmptyProfile(3)
	p.Buy(0, 1)
	p.Buy(2, 1)
	s := NewState(g, p)
	var sb strings.Builder
	if err := WriteDOT(&sb, s, "test"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`digraph "test"`,
		`0 -> 1 [label="1"]`,
		`2 -> 1 [label="2"]`,
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "1 -> 0") {
		t.Fatal("ownership direction reversed")
	}
}

func TestWriteDOTDefaultNameAndInf(t *testing.T) {
	host, err := HostFromOneInf(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGame(host, 1)
	p := EmptyProfile(2)
	p.Buy(0, 1) // unbuyable pair: weight inf
	var sb strings.Builder
	if err := WriteDOT(&sb, NewState(g, p), ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `digraph "gncg"`) {
		t.Fatal("default name not applied")
	}
	if !strings.Contains(sb.String(), `label="inf"`) {
		t.Fatal("inf weight not labelled")
	}
}
