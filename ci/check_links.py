#!/usr/bin/env python3
"""Check that markdown cross-references resolve, without touching the
network.

Usage: check_links.py FILE.md [FILE.md ...]

For every inline markdown link [text](target) and bare reference in the
given files:

  - relative targets must exist on disk, resolved against the linking
    file's directory (an optional #anchor is stripped first; anchors
    themselves are not validated);
  - in-file anchors (#section) must match a heading of the file,
    compared under GitHub's slug rules (lowercase, spaces to dashes,
    punctuation dropped);
  - http(s) and mailto targets are accepted without fetching — CI must
    not fail on someone else's outage.

Stdlib only; exits non-zero listing every broken link.
"""

import os
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def slug(heading):
    s = heading.strip().lower()
    s = re.sub(r"[^\w\- ]", "", s)
    return s.replace(" ", "-")


def headings(path):
    out = set()
    in_code = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if line.lstrip().startswith("```"):
                in_code = not in_code
                continue
            if not in_code and line.startswith("#"):
                out.add(slug(line.lstrip("#")))
    return out


def check(path):
    broken = []
    base = os.path.dirname(os.path.abspath(path))
    text = open(path, encoding="utf-8").read()
    # Strip fenced code blocks: example links inside them are not claims.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if slug(target[1:]) not in headings(path):
                broken.append((path, target, "no such heading"))
            continue
        rel = target.split("#", 1)[0]
        if not os.path.exists(os.path.join(base, rel)):
            broken.append((path, target, "no such file"))
    return broken


def main(argv):
    if len(argv) < 2:
        sys.exit("usage: check_links.py FILE.md [FILE.md ...]")
    broken = []
    for path in argv[1:]:
        broken.extend(check(path))
    for path, target, why in broken:
        print("%s: broken link %r: %s" % (path, target, why))
    if broken:
        sys.exit("%d broken link(s)" % len(broken))
    print("OK: all links in %d file(s) resolve" % (len(argv) - 1))


if __name__ == "__main__":
    main(sys.argv)
