#!/usr/bin/env python3
"""Assert that merged shard output is byte-identical to an unsharded run.

Usage: check_shards.py FULL.json SHARD.json [SHARD.json ...]

Every result cell (one JSON line carrying a "seq" field) of the shard
files, reordered by global sequence number, must equal the corresponding
cell of the full run byte-for-byte — the sweep engine's determinism
contract. Shared by the per-push CI quick sweep and the scale-nightly
workflow.
"""

import re
import sys


def cells(path):
    with open(path) as f:
        return [line.strip().rstrip(",") for line in f if '"seq"' in line]


def main(argv):
    if len(argv) < 3:
        sys.exit("usage: check_shards.py FULL.json SHARD.json [SHARD.json ...]")
    full = cells(argv[1])
    parts = []
    for path in argv[2:]:
        parts.extend(cells(path))
    parts.sort(key=lambda l: int(re.search(r'"seq": (\d+)', l).group(1)))
    if parts != full:
        for a, b in zip(full, parts):
            if a != b:
                print("DIVERGENT CELL:\nfull : %s\nmerge: %s" % (a, b))
                break
        if len(parts) != len(full):
            print("cell count: full run %d, merged shards %d" % (len(full), len(parts)))
        sys.exit("merged shard output differs from unsharded run")
    print("OK: %d cells byte-identical" % len(full))


if __name__ == "__main__":
    main(sys.argv)
